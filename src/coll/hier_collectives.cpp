#include "coll/hier_collectives.hpp"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "coll/algorithms.hpp"
#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace cmpi::coll {

// ---------------------------------------------------------------------------
// PodComm

PodComm::PodComm(fabric::PodCtx& ctx)
    : ctx_(&ctx), rank_(ctx.grank()), nranks_(ctx.nranks()) {}

PodComm::PodComm(fabric::PodCtx& ctx, std::vector<int> members)
    : ctx_(&ctx), members_(std::move(members)) {
  nranks_ = static_cast<int>(members_.size());
  const auto it =
      std::find(members_.begin(), members_.end(), ctx_->grank());
  CMPI_EXPECTS(it != members_.end());
  rank_ = static_cast<int>(it - members_.begin());
}

int PodComm::to_grank(int r) const {
  if (members_.empty()) {
    return r;
  }
  return members_[static_cast<std::size_t>(r)];
}

int PodComm::from_grank(int g) const {
  if (members_.empty()) {
    return g;
  }
  const auto it = std::find(members_.begin(), members_.end(), g);
  CMPI_EXPECTS(it != members_.end());
  return static_cast<int>(it - members_.begin());
}

Status PodComm::send(int dst, int tag, std::span<const std::byte> data) {
  const int g = to_grank(dst);
  const auto& topo = ctx_->topology();
  if (topo.same_pod(ctx_->grank(), g)) {
    return ctx_->ep().send(topo.local_of(g), tag, data);
  }
  return ctx_->fabric_send(g, tag, data);
}

Result<p2p::RecvInfo> PodComm::recv(int src, int tag,
                                    std::span<std::byte> data) {
  CMPI_EXPECTS(src >= 0);  // the algorithms never use wildcards
  const int g = to_grank(src);
  const auto& topo = ctx_->topology();
  if (topo.same_pod(ctx_->grank(), g)) {
    auto r = ctx_->ep().recv(topo.local_of(g), tag, data);
    if (!r.is_ok()) {
      return r.status();
    }
    return p2p::RecvInfo{src, r.value().tag, r.value().bytes};
  }
  auto r = ctx_->fabric_recv(g, tag, data);
  if (!r.is_ok()) {
    return r.status();
  }
  return p2p::RecvInfo{src, r.value().tag, r.value().bytes};
}

PodReqPtr PodComm::isend(int dst, int tag, std::span<const std::byte> data) {
  const int g = to_grank(dst);
  const auto& topo = ctx_->topology();
  auto req = std::make_shared<PodReq>();
  if (topo.same_pod(ctx_->grank(), g)) {
    req->kind = PodReq::Kind::kLocal;
    req->local = ctx_->ep().isend(topo.local_of(g), tag, data);
  } else {
    // Fabric sends complete locally without blocking: run it eagerly.
    req->kind = PodReq::Kind::kDone;
    req->done_status = ctx_->fabric_send(g, tag, data);
  }
  return req;
}

PodReqPtr PodComm::irecv(int src, int tag, std::span<std::byte> data) {
  const int g = to_grank(src);
  const auto& topo = ctx_->topology();
  auto req = std::make_shared<PodReq>();
  if (topo.same_pod(ctx_->grank(), g)) {
    req->kind = PodReq::Kind::kLocal;
    req->local = ctx_->ep().irecv(topo.local_of(g), tag, data);
  } else {
    // The fabric receive blocks, so defer it to wait().
    req->kind = PodReq::Kind::kFabricRecv;
    req->src_grank = g;
    req->tag = tag;
    req->buffer = data;
  }
  return req;
}

Status PodComm::wait(const PodReqPtr& req) {
  CMPI_EXPECTS(req != nullptr);
  switch (req->kind) {
    case PodReq::Kind::kLocal:
      return ctx_->ep().wait(req->local);
    case PodReq::Kind::kFabricRecv: {
      auto r = ctx_->fabric_recv(req->src_grank, req->tag, req->buffer);
      req->kind = PodReq::Kind::kDone;
      req->done_status = r.status();
      return req->done_status;
    }
    case PodReq::Kind::kDone:
      return req->done_status;
  }
  return status::internal("PodComm::wait: bad request kind");
}

// ---------------------------------------------------------------------------
// HierColl

HierColl::HierColl(fabric::PodCtx& ctx, CxlCollectives* cxl)
    : ctx_(&ctx), cxl_(cxl) {}

bool HierColl::use_cxl(std::size_t bytes, ReduceOp op) const noexcept {
  // The direct-over-pool algorithms are all-read-all: every rank issues
  // (n-1) device reads, all serialized on the pool's shared bandwidth —
  // O(n^2) device transactions per collective. That wins at small pod
  // sizes (one fence instead of log n round trips) and loses badly past a
  // handful of ranks (bench/ablation_coll_cxl), so gate on pod size too.
  return cxl_ != nullptr && op == ReduceOp::kSum &&
         bytes <= cxl_->max_bytes() &&
         ctx_->topology().ranks_per_pod <= kCxlDirectMaxRanks;
}

bool HierColl::use_cxl_fanout(std::size_t bytes) const noexcept {
  // Same all-read-all economics as use_cxl: (n-1) serialized device reads
  // per bcast vs log n ring round trips.
  return cxl_ != nullptr && bytes <= cxl_->max_bytes() &&
         ctx_->topology().ranks_per_pod <= kCxlDirectMaxRanks;
}

PodComm HierColl::router_comm() const {
  const auto& topo = ctx_->topology();
  std::vector<int> routers;
  routers.reserve(static_cast<std::size_t>(topo.pods));
  for (int p = 0; p < topo.pods; ++p) {
    routers.push_back(topo.router_of(p));
  }
  return PodComm{*ctx_, std::move(routers)};
}

template <typename T>
void HierColl::pod_reduce_to_router(std::span<T> inout, ReduceOp op) {
  const int rl = ctx_->topology().router_local;
  if constexpr (std::is_same_v<T, double>) {
    if (use_cxl(inout.size_bytes(), op)) {
      // Direct over the pool: every pod rank (router included) ends up
      // with the pod-local sum. Costs a little extra bandwidth vs a
      // tree-to-root but one fence fewer in latency.
      cxl_->allreduce_sum(inout);
      return;
    }
  }
  detail::reduce_impl(ctx_->ep(), rl, inout, op);
}

void HierColl::barrier() {
  CMPI_OBS_SPAN("coll.hier.barrier");
  if (ctx_->topology().pods == 1) {
    coll::barrier(ctx_->ep());
    return;
  }
  const int rl = ctx_->topology().router_local;
  // Fan-in to the router, dissemination among routers, fan-out release.
  std::span<double> none;
  detail::reduce_impl(ctx_->ep(), rl, none, ReduceOp::kSum);
  if (ctx_->is_router()) {
    PodComm rc = router_comm();
    detail::barrier(rc);
  }
  detail::bcast(ctx_->ep(), rl, std::span<std::byte>{});
}

void HierColl::bcast(int root, std::span<std::byte> data) {
  CMPI_OBS_SPAN_ARG("coll.hier.bcast", "bytes", data.size());
  const auto& topo = ctx_->topology();
  if (topo.pods == 1) {
    coll::bcast(ctx_->ep(), topo.local_of(root), data);
    return;
  }
  CMPI_EXPECTS(topo.contains(root));
  const int rpod = topo.pod_of(root);
  const int rl = topo.router_local;
  // Hop 1: root hands the payload to its own pod's router (pool-local).
  if (ctx_->pod() == rpod && topo.local_of(root) != rl) {
    if (ctx_->grank() == root) {
      check_ok(ctx_->ep().send(rl, kTagHier, data));
    } else if (ctx_->local_rank() == rl) {
      check_ok(ctx_->ep().recv(topo.local_of(root), kTagHier, data).status());
    }
  }
  // Hop 2: binomial tree among routers, rooted at the root's pod.
  if (ctx_->is_router()) {
    PodComm rc = router_comm();
    detail::bcast(rc, rpod, data);
  }
  // Hop 3: intra-pod fan-out from each router.
  if (use_cxl_fanout(data.size())) {
    cxl_->bcast(rl, data);
  } else {
    detail::bcast(ctx_->ep(), rl, data);
  }
}

template <typename T>
void HierColl::reduce_hier(int root, std::span<T> inout, ReduceOp op) {
  const auto& topo = ctx_->topology();
  if (topo.pods == 1) {
    coll::reduce(ctx_->ep(), topo.local_of(root), inout, op);
    return;
  }
  CMPI_EXPECTS(topo.contains(root));
  const int rpod = topo.pod_of(root);
  const int rl = topo.router_local;
  pod_reduce_to_router(inout, op);
  if (ctx_->is_router()) {
    PodComm rc = router_comm();
    detail::reduce_impl(rc, rpod, inout, op);
  }
  // Final hop: the root pod's router relays the result to the root.
  if (ctx_->pod() == rpod && topo.local_of(root) != rl) {
    if (ctx_->local_rank() == rl) {
      check_ok(ctx_->ep().send(topo.local_of(root), kTagHier + 1,
                               std::as_bytes(inout)));
    } else if (ctx_->grank() == root) {
      check_ok(ctx_->ep()
                   .recv(rl, kTagHier + 1, std::as_writable_bytes(inout))
                   .status());
    }
  }
}

void HierColl::reduce(int root, std::span<double> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.hier.reduce", "bytes", inout.size_bytes());
  reduce_hier(root, inout, op);
}
void HierColl::reduce(int root, std::span<std::int64_t> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.hier.reduce", "bytes", inout.size_bytes());
  reduce_hier(root, inout, op);
}

template <typename T>
void HierColl::allreduce_hier(std::span<T> inout, ReduceOp op) {
  const auto& topo = ctx_->topology();
  if (topo.pods == 1) {
    coll::allreduce(ctx_->ep(), inout, op);
    return;
  }
  const int rl = topo.router_local;
  pod_reduce_to_router(inout, op);
  if (ctx_->is_router()) {
    PodComm rc = router_comm();
    detail::allreduce_impl(rc, inout, op);
  }
  // Fan the global result out from each router.
  if (use_cxl_fanout(inout.size_bytes())) {
    cxl_->bcast(rl, std::as_writable_bytes(inout));
  } else {
    detail::bcast(ctx_->ep(), rl, std::as_writable_bytes(inout));
  }
}

void HierColl::allreduce(std::span<double> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.hier.allreduce", "bytes", inout.size_bytes());
  allreduce_hier(inout, op);
}
void HierColl::allreduce(std::span<std::int64_t> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.hier.allreduce", "bytes", inout.size_bytes());
  allreduce_hier(inout, op);
}

// --- Flat single-tier baselines over the same fabric ---

void HierColl::barrier_flat() {
  CMPI_OBS_SPAN("coll.flat.barrier");
  PodComm world(*ctx_);
  detail::barrier(world);
}

void HierColl::bcast_flat(int root, std::span<std::byte> data) {
  CMPI_OBS_SPAN_ARG("coll.flat.bcast", "bytes", data.size());
  PodComm world(*ctx_);
  detail::bcast(world, root, data);
}

void HierColl::reduce_flat(int root, std::span<double> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.flat.reduce", "bytes", inout.size_bytes());
  PodComm world(*ctx_);
  detail::reduce_impl(world, root, inout, op);
}

void HierColl::allreduce_flat(std::span<double> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.flat.allreduce", "bytes", inout.size_bytes());
  PodComm world(*ctx_);
  detail::allreduce_impl(world, inout, op);
}
void HierColl::allreduce_flat(std::span<std::int64_t> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.flat.allreduce", "bytes", inout.size_bytes());
  PodComm world(*ctx_);
  detail::allreduce_impl(world, inout, op);
}

}  // namespace cmpi::coll
