// Channel-templated collective algorithms.
//
// The algorithm bodies live here, templated on a Channel type so the same
// code runs over the global Endpoint (collectives.hpp wrappers) and over
// sub-communicators (core/communicator.hpp). A Channel provides:
//   int rank(); int nranks();
//   Status send(int dst, int tag, std::span<const std::byte>);
//   Result<RecvInfo> recv(int src, int tag, std::span<std::byte>);
//   RequestPtr isend(...); RequestPtr irecv(...);
//   Status wait(const RequestPtr&); Status wait_all(span<const RequestPtr>);
#pragma once

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/contracts.hpp"
#include "coll/collectives.hpp"

namespace cmpi::coll::detail {




// Tag blocks per collective so concurrent rounds never cross-match.
constexpr int kTagBarrier = kCollTagBase + 0x000;
constexpr int kTagBcast = kCollTagBase + 0x100;
constexpr int kTagReduce = kCollTagBase + 0x200;
constexpr int kTagAllreduce = kCollTagBase + 0x300;
constexpr int kTagAllgather = kCollTagBase + 0x400;
constexpr int kTagBruck = kCollTagBase + 0x500;
constexpr int kTagAlltoall = kCollTagBase + 0x600;
constexpr int kTagRedScat = kCollTagBase + 0x700;
constexpr int kTagGather = kCollTagBase + 0x800;
constexpr int kTagScatter = kCollTagBase + 0x900;
constexpr int kTagScan = kCollTagBase + 0xA00;

/// Simultaneous send+recv without deadlock.
template <typename Ch>
void sendrecv(Ch& ep, int dst, std::span<const std::byte> out,
              int src, std::span<std::byte> in, int tag) {
  const auto s = ep.isend(dst, tag, out);
  const auto r = ep.irecv(src, tag, in);
  check_ok(ep.wait(s));
  check_ok(ep.wait(r));
}

template <typename T>
void combine(std::span<T> acc, std::span<const T> in, ReduceOp op) {
  CMPI_EXPECTS(acc.size() == in.size());
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], in[i]);
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], in[i]);
      break;
  }
}

template <typename Ch, typename T>
void reduce_impl(Ch& ep, int root, std::span<T> inout,
                 ReduceOp op) {
  const int n = ep.nranks();
  const int vrank = (ep.rank() - root + n) % n;
  std::vector<T> tmp(inout.size());
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((vrank & mask) != 0) {
      const int dst = ((vrank - mask) + root) % n;
      check_ok(ep.send(dst, kTagReduce, std::as_bytes(inout)));
      return;  // contributed; done
    }
    const int partner = vrank + mask;
    if (partner < n) {
      const int src = (partner + root) % n;
      check_ok(ep.recv(src, kTagReduce,
                       std::as_writable_bytes(std::span(tmp))));
      combine(inout, std::span<const T>(tmp), op);
    }
  }
}

template <typename Ch, typename T>
void allreduce_impl(Ch& ep, std::span<T> inout, ReduceOp op) {
  const int n = ep.nranks();
  if (n == 1) {
    return;
  }
  const int rank = ep.rank();
  int pof2 = 1;
  while (pof2 * 2 <= n) {
    pof2 *= 2;
  }
  const int rem = n - pof2;
  std::vector<T> tmp(inout.size());

  // Fold-in: the first 2*rem ranks pair up so pof2 ranks remain.
  int newrank;
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      check_ok(ep.send(rank + 1, kTagAllreduce, std::as_bytes(inout)));
      newrank = -1;  // parked until fold-out
    } else {
      check_ok(ep.recv(rank - 1, kTagAllreduce,
                       std::as_writable_bytes(std::span(tmp))));
      combine(inout, std::span<const T>(tmp), op);
      newrank = rank / 2;
    }
  } else {
    newrank = rank - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner = partner_new < rem ? partner_new * 2 + 1
                                            : partner_new + rem;
      sendrecv(ep, partner, std::as_bytes(inout), partner,
               std::as_writable_bytes(std::span(tmp)), kTagAllreduce + 1);
      combine(inout, std::span<const T>(tmp), op);
    }
  }

  // Fold-out: parked even ranks receive the final result.
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      check_ok(ep.recv(rank + 1, kTagAllreduce + 2,
                       std::as_writable_bytes(inout)));
    } else {
      check_ok(ep.send(rank - 1, kTagAllreduce + 2, std::as_bytes(inout)));
    }
  }
}


template <typename Ch>
void barrier(Ch& ep) {
  const int n = ep.nranks();
  for (int k = 0, dist = 1; dist < n; ++k, dist <<= 1) {
    const int dst = (ep.rank() + dist) % n;
    const int src = (ep.rank() - dist + n) % n;
    sendrecv(ep, dst, {}, src, {}, kTagBarrier + k);
  }
}

template <typename Ch>
void bcast(Ch& ep, int root, std::span<std::byte> data) {
  const int n = ep.nranks();
  const int vrank = (ep.rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      const int src = ((vrank - mask) + root) % n;
      check_ok(ep.recv(src, kTagBcast, data));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int dst = ((vrank + mask) + root) % n;
      check_ok(ep.send(dst, kTagBcast, data));
    }
    mask >>= 1;
  }
}

template <typename Ch>
void reduce(Ch& ep, int root, std::span<double> inout,
            ReduceOp op) {
  reduce_impl(ep, root, inout, op);
}
template <typename Ch>
void reduce(Ch& ep, int root, std::span<std::int64_t> inout,
            ReduceOp op) {
  reduce_impl(ep, root, inout, op);
}

template <typename Ch>
void allreduce(Ch& ep, std::span<double> inout, ReduceOp op) {
  allreduce_impl(ep, inout, op);
}
template <typename Ch>
void allreduce(Ch& ep, std::span<std::int64_t> inout,
               ReduceOp op) {
  allreduce_impl(ep, inout, op);
}

template <typename Ch>
void allgather(Ch& ep, std::span<const std::byte> mine,
               std::span<std::byte> all) {
  const int n = ep.nranks();
  const std::size_t sz = mine.size();
  CMPI_EXPECTS(all.size() == sz * static_cast<std::size_t>(n));
  std::memcpy(all.data() + static_cast<std::size_t>(ep.rank()) * sz,
              mine.data(), sz);
  if (n == 1) {
    return;
  }
  const int right = (ep.rank() + 1) % n;
  const int left = (ep.rank() - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_block = (ep.rank() - step + n) % n;
    const int recv_block = (ep.rank() - step - 1 + n) % n;
    sendrecv(ep, right,
             all.subspan(static_cast<std::size_t>(send_block) * sz, sz), left,
             all.subspan(static_cast<std::size_t>(recv_block) * sz, sz),
             kTagAllgather + step);
  }
}

template <typename Ch>
void allgather_bruck(Ch& ep, std::span<const std::byte> mine,
                     std::span<std::byte> all) {
  const int n = ep.nranks();
  const std::size_t sz = mine.size();
  CMPI_EXPECTS(all.size() == sz * static_cast<std::size_t>(n));
  // tmp holds blocks in the rotated order rank, rank+1, ..., rank+n-1.
  std::vector<std::byte> tmp(sz * static_cast<std::size_t>(n));
  std::memcpy(tmp.data(), mine.data(), sz);
  int have = 1;
  for (int step = 0; have < n; ++step) {
    const int dist = have;  // 2^step blocks held
    const int count = std::min(have, n - have);
    const int dst = (ep.rank() - dist + n) % n;
    const int src = (ep.rank() + dist) % n;
    sendrecv(ep, dst,
             std::span<const std::byte>(tmp.data(),
                                        static_cast<std::size_t>(count) * sz),
             src,
             std::span<std::byte>(tmp.data() +
                                      static_cast<std::size_t>(have) * sz,
                                  static_cast<std::size_t>(count) * sz),
             kTagBruck + step);
    have += count;
  }
  // Un-rotate into rank order.
  for (int i = 0; i < n; ++i) {
    const int block = (ep.rank() + i) % n;
    std::memcpy(all.data() + static_cast<std::size_t>(block) * sz,
                tmp.data() + static_cast<std::size_t>(i) * sz, sz);
  }
}

template <typename Ch>
void alltoall(Ch& ep, std::span<const std::byte> send,
              std::span<std::byte> recv, std::size_t block) {
  const int n = ep.nranks();
  CMPI_EXPECTS(send.size() == block * static_cast<std::size_t>(n));
  CMPI_EXPECTS(recv.size() == block * static_cast<std::size_t>(n));
  std::memcpy(recv.data() + static_cast<std::size_t>(ep.rank()) * block,
              send.data() + static_cast<std::size_t>(ep.rank()) * block,
              block);
  for (int step = 1; step < n; ++step) {
    const int dst = (ep.rank() + step) % n;
    const int src = (ep.rank() - step + n) % n;
    sendrecv(ep, dst,
             send.subspan(static_cast<std::size_t>(dst) * block, block), src,
             recv.subspan(static_cast<std::size_t>(src) * block, block),
             kTagAlltoall + step);
  }
}

template <typename Ch>
void reduce_scatter(Ch& ep, std::span<const double> data,
                    std::span<double> out, ReduceOp op) {
  const int n = ep.nranks();
  const std::size_t block = out.size();
  CMPI_EXPECTS(data.size() == block * static_cast<std::size_t>(n));
  if (n == 1) {
    std::copy(data.begin(), data.end(), out.begin());
    return;
  }
  const int rank = ep.rank();
  const int right = (rank + 1) % n;
  const int left = (rank - 1 + n) % n;
  std::vector<double> cur(data.begin(), data.end());
  std::vector<double> tmp(block);
  // Ring scatter-reduce: after n-1 steps rank owns the full reduction of
  // block (rank + 1) % n.
  for (int step = 0; step < n - 1; ++step) {
    const int send_block = (rank - step + n) % n;
    const int recv_block = (rank - step - 1 + n) % n;
    sendrecv(
        ep, right,
        std::as_bytes(std::span<const double>(
            cur.data() + static_cast<std::size_t>(send_block) * block, block)),
        left, std::as_writable_bytes(std::span(tmp)), kTagRedScat + step);
    combine(std::span<double>(
                cur.data() + static_cast<std::size_t>(recv_block) * block,
                block),
            std::span<const double>(tmp), op);
  }
  // Final shift: deliver each completed block to its owner.
  const int done_block = (rank + 1) % n;
  sendrecv(ep, done_block,
           std::as_bytes(std::span<const double>(
               cur.data() + static_cast<std::size_t>(done_block) * block,
               block)),
           left, std::as_writable_bytes(out), kTagRedScat + n);
}

template <typename Ch>
void gather(Ch& ep, int root, std::span<const std::byte> mine,
            std::span<std::byte> all) {
  const int n = ep.nranks();
  const std::size_t sz = mine.size();
  const int vrank = (ep.rank() - root + n) % n;
  // Each subtree owner accumulates its subtree's blocks (by virtual rank)
  // into a staging buffer, then forwards the whole prefix to its parent.
  std::vector<std::byte> staged(sz * static_cast<std::size_t>(n));
  std::memcpy(staged.data(), mine.data(), sz);
  int have = 1;  // blocks for vranks [vrank, vrank + have)
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      const int parent = ((vrank - mask) + root) % n;
      check_ok(ep.send(parent, kTagGather,
                       std::span<const std::byte>(
                           staged.data(),
                           static_cast<std::size_t>(have) * sz)));
      break;
    }
    const int child_vrank = vrank + mask;
    if (child_vrank < n) {
      const int child = (child_vrank + root) % n;
      const int child_blocks = std::min(mask, n - child_vrank);
      check_ok(ep.recv(child, kTagGather,
                       std::span<std::byte>(
                           staged.data() + static_cast<std::size_t>(mask) *
                                               sz,
                           static_cast<std::size_t>(child_blocks) * sz))
                   .status());
      have += child_blocks;
    }
    mask <<= 1;
  }
  if (ep.rank() == root) {
    CMPI_EXPECTS(all.size() == sz * static_cast<std::size_t>(n));
    // Un-rotate from virtual-rank order to rank order.
    for (int v = 0; v < n; ++v) {
      const int r = (v + root) % n;
      std::memcpy(all.data() + static_cast<std::size_t>(r) * sz,
                  staged.data() + static_cast<std::size_t>(v) * sz, sz);
    }
  }
}

template <typename Ch>
void scatter(Ch& ep, int root, std::span<const std::byte> all,
             std::span<std::byte> mine) {
  const int n = ep.nranks();
  const std::size_t sz = mine.size();
  const int vrank = (ep.rank() - root + n) % n;
  std::vector<std::byte> staged(sz * static_cast<std::size_t>(n));
  int have = 0;  // blocks held for vranks [vrank, vrank + have)
  if (ep.rank() == root) {
    CMPI_EXPECTS(all.size() == sz * static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      const int r = (v + root) % n;
      std::memcpy(staged.data() + static_cast<std::size_t>(v) * sz,
                  all.data() + static_cast<std::size_t>(r) * sz, sz);
    }
    have = n;
  } else {
    // Receive this subtree's prefix from the parent.
    int mask = 1;
    while ((vrank & mask) == 0) {
      mask <<= 1;
    }
    const int parent = ((vrank - mask) + root) % n;
    have = std::min(mask, n - vrank);
    const p2p::RecvInfo info = check_ok(ep.recv(
        parent, kTagScatter,
        std::span<std::byte>(staged.data(),
                             static_cast<std::size_t>(have) * sz)));
    CMPI_ASSERT(info.bytes == static_cast<std::size_t>(have) * sz);
  }
  // Forward the upper halves to children.
  int mask = 1;
  while (mask < have) {
    mask <<= 1;
  }
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (vrank + mask < n && mask < have) {
      const int child = ((vrank + mask) + root) % n;
      const int child_blocks = have - mask;
      check_ok(ep.send(child, kTagScatter,
                       std::span<const std::byte>(
                           staged.data() + static_cast<std::size_t>(mask) *
                                               sz,
                           static_cast<std::size_t>(child_blocks) * sz)));
      have = mask;
    }
  }
  std::memcpy(mine.data(), staged.data(), sz);
}



template <typename Ch, typename T>
void scan_impl(Ch& ep, std::span<T> inout, ReduceOp op) {
  const int n = ep.nranks();
  const int rank = ep.rank();
  std::vector<T> incoming(inout.size());
  // Hillis-Steele inclusive prefix: at distance d, receive from rank-d and
  // fold it in; send our *pre-fold* partial to rank+d.
  for (int dist = 1; dist < n; dist <<= 1) {
    std::vector<T> outgoing(inout.begin(), inout.end());
    // The channel's request handle type (p2p::RequestPtr for Endpoint);
    // any shared_ptr-like handle comparable against nullptr works.
    using Req = decltype(ep.isend(0, 0, std::span<const std::byte>{}));
    Req send_req{};
    Req recv_req{};
    if (rank + dist < n) {
      send_req = ep.isend(rank + dist, kTagScan + dist,
                          std::as_bytes(std::span<const T>(outgoing)));
    }
    if (rank - dist >= 0) {
      recv_req = ep.irecv(rank - dist, kTagScan + dist,
                          std::as_writable_bytes(std::span(incoming)));
    }
    if (recv_req != nullptr) {
      check_ok(ep.wait(recv_req));
      combine(inout, std::span<const T>(incoming), op);
    }
    if (send_req != nullptr) {
      check_ok(ep.wait(send_req));
    }
  }
}


template <typename Ch>
void scan(Ch& ep, std::span<double> inout, ReduceOp op) {
  scan_impl(ep, inout, op);
}
template <typename Ch>
void scan(Ch& ep, std::span<std::int64_t> inout, ReduceOp op) {
  scan_impl(ep, inout, op);
}


}  // namespace cmpi::coll::detail
