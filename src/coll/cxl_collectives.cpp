#include "coll/cxl_collectives.hpp"

#include <cstring>
#include <vector>

#include "common/contracts.hpp"

namespace cmpi::coll {

CxlCollectives::CxlCollectives(runtime::RankCtx& ctx, const std::string& name,
                               std::size_t max_bytes)
    : ctx_(&ctx),
      max_bytes_(max_bytes),
      window_(rma::Window::create(ctx, "cxlcoll_" + name, max_bytes)) {}

void CxlCollectives::allgather(std::span<const std::byte> mine,
                               std::span<std::byte> all) {
  const int n = ctx_->nranks();
  const std::size_t sz = mine.size();
  CMPI_EXPECTS(sz <= max_bytes_);
  CMPI_EXPECTS(all.size() == sz * static_cast<std::size_t>(n));
  // Deposit own block, make it durable, rendezvous, then read peers
  // directly from the pool.
  window_.write_local(0, mine);
  window_.fence();
  for (int r = 0; r < n; ++r) {
    auto block = all.subspan(static_cast<std::size_t>(r) * sz, sz);
    if (r == ctx_->rank()) {
      std::memcpy(block.data(), mine.data(), sz);
    } else {
      window_.get(r, 0, block);
    }
  }
  // Close the epoch so the next collective may overwrite segments.
  window_.fence();
}

void CxlCollectives::bcast(int root, std::span<std::byte> data) {
  CMPI_EXPECTS(data.size() <= max_bytes_);
  if (ctx_->rank() == root) {
    window_.write_local(0, data);
  }
  window_.fence();
  if (ctx_->rank() != root) {
    window_.get(root, 0, data);
  }
  window_.fence();
}

void CxlCollectives::allreduce_sum(std::span<double> inout) {
  const int n = ctx_->nranks();
  CMPI_EXPECTS(inout.size() * sizeof(double) <= max_bytes_);
  window_.write_local(0, std::as_bytes(inout));
  window_.fence();
  std::vector<double> incoming(inout.size());
  for (int r = 0; r < n; ++r) {
    if (r == ctx_->rank()) {
      continue;
    }
    window_.get(r, 0, std::as_writable_bytes(std::span(incoming)));
    for (std::size_t i = 0; i < inout.size(); ++i) {
      inout[i] += incoming[i];
    }
    ctx_->clock().advance(static_cast<double>(inout.size()));
  }
  window_.fence();
}

}  // namespace cmpi::coll
