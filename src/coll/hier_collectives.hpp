// Hierarchical, topology-aware collectives for pod clusters (multi-pool
// scale-out).
//
// A communicator spanning pods runs every collective in three phases:
//
//   1. intra-pod: the CXL-aware algorithm inside each pod — either the
//      p2p binomial/recursive-doubling algorithms over the pod Endpoint,
//      or CxlCollectives' direct-over-pool variant when one is provided
//      and the payload fits;
//   2. inter-pod: the same algorithm among the pod ROUTERS only, over the
//      LogGP fabric (one message per pod per round instead of one per
//      rank — the routers' serial forwarding path is the bottleneck a
//      flat algorithm drowns in);
//   3. intra-pod fan-out of the result from each router.
//
// Algorithm-selection rule: HierColl switches on topology().pods — a
// single-pod cluster delegates straight to the flat coll:: entry points,
// so the 1-pod path is bit-identical to the pre-hierarchy collectives.
// The *_flat variants run the flat single-tier algorithm over the whole
// cluster through the same fabric (every cross-pod pair squeezing through
// the routers) — the honest ablation baseline for bench/fig10h.
//
// PodComm is the channel glue: a coll-algorithm channel over global (or
// subgroup) ranks that routes intra-pod pairs through the pod Endpoint
// and cross-pod pairs through the PodFabric. Cross-pod isend completes
// eagerly (fabric sends never block — send-local-completion semantics);
// cross-pod irecv defers the blocking fabric receive to wait().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/cxl_collectives.hpp"
#include "fabric/pod_cluster.hpp"

namespace cmpi::coll {

/// Tag block for the hierarchy glue hops (root<->router relays, fan-in).
inline constexpr int kTagHier = kCollTagBase + 0xB00;

/// Largest pod size where the CxlCollectives direct-over-pool algorithms
/// still win: they are all-read-all, i.e. O(pod ranks^2) serialized device
/// reads per collective, so past a handful of ranks the log-round p2p
/// algorithms are faster (bench/ablation_coll_cxl).
inline constexpr int kCxlDirectMaxRanks = 8;

/// Request handle of PodComm (nullptr-comparable, like p2p::RequestPtr).
struct PodReq {
  enum class Kind {
    kLocal,       ///< wraps a pod-Endpoint request
    kFabricRecv,  ///< deferred blocking fabric receive
    kDone,        ///< already completed (eager fabric send)
  };
  Kind kind = Kind::kDone;
  p2p::RequestPtr local;
  int src_grank = -1;  // deferred recv
  int tag = 0;
  std::span<std::byte> buffer;
  Status done_status;
};
using PodReqPtr = std::shared_ptr<PodReq>;

/// Channel over a pod cluster for the coll::detail algorithms.
class PodComm {
 public:
  /// World communicator: channel rank == global rank.
  explicit PodComm(fabric::PodCtx& ctx);
  /// Subgroup: channel rank == index into `members` (global rank ids).
  /// The caller must be a member. Used for the router tier.
  PodComm(fabric::PodCtx& ctx, std::vector<int> members);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nranks() const noexcept { return nranks_; }

  Status send(int dst, int tag, std::span<const std::byte> data);
  Result<p2p::RecvInfo> recv(int src, int tag, std::span<std::byte> data);
  PodReqPtr isend(int dst, int tag, std::span<const std::byte> data);
  PodReqPtr irecv(int src, int tag, std::span<std::byte> data);
  Status wait(const PodReqPtr& req);

 private:
  [[nodiscard]] int to_grank(int r) const;
  [[nodiscard]] int from_grank(int g) const;

  fabric::PodCtx* ctx_;
  std::vector<int> members_;  ///< empty = world (identity mapping)
  int rank_ = 0;
  int nranks_ = 0;
};

/// Hierarchical collectives over a pod cluster. Construct once per rank
/// per run; `cxl` (optional, collective construction across the pod)
/// switches the intra-pod phases to the direct-over-pool algorithms for
/// double-sum payloads that fit.
class HierColl {
 public:
  explicit HierColl(fabric::PodCtx& ctx, CxlCollectives* cxl = nullptr);

  void barrier();
  void bcast(int root, std::span<std::byte> data);
  void reduce(int root, std::span<double> inout, ReduceOp op);
  void reduce(int root, std::span<std::int64_t> inout, ReduceOp op);
  void allreduce(std::span<double> inout, ReduceOp op);
  void allreduce(std::span<std::int64_t> inout, ReduceOp op);

  /// Flat single-tier baselines over the same two-tier fabric: the
  /// pre-hierarchy algorithms on the world communicator, every cross-pod
  /// pair individually crossing the routers. Ablation for bench/fig10h.
  void barrier_flat();
  void bcast_flat(int root, std::span<std::byte> data);
  void reduce_flat(int root, std::span<double> inout, ReduceOp op);
  void allreduce_flat(std::span<double> inout, ReduceOp op);
  void allreduce_flat(std::span<std::int64_t> inout, ReduceOp op);

 private:
  template <typename T>
  void reduce_hier(int root, std::span<T> inout, ReduceOp op);
  template <typename T>
  void allreduce_hier(std::span<T> inout, ReduceOp op);
  /// Intra-pod allreduce-to-everyone of the pod's contributions (phase 1).
  template <typename T>
  void pod_reduce_to_router(std::span<T> inout, ReduceOp op);
  [[nodiscard]] bool use_cxl(std::size_t bytes, ReduceOp op) const noexcept;
  [[nodiscard]] bool use_cxl_fanout(std::size_t bytes) const noexcept;
  [[nodiscard]] PodComm router_comm() const;

  fabric::PodCtx* ctx_;
  CxlCollectives* cxl_;
};

}  // namespace cmpi::coll
