// Collective communication over cMPI point-to-point (paper §3.6).
//
// The paper leaves collectives as future work but notes that MPI libraries
// implement them on top of point-to-point using algorithms like recursive
// doubling and Bruck's algorithm — "hence the collective communications can
// directly benefit from cMPI". This module is that layer:
//
//   barrier         — dissemination algorithm, ceil(log2 n) rounds
//   bcast           — binomial tree
//   reduce          — binomial tree combine
//   allreduce       — recursive doubling (fold-in/out for non-powers of 2)
//   allgather       — ring (bandwidth-optimal) and Bruck (latency-optimal)
//   alltoall        — pairwise exchange
//   reduce_scatter  — ring algorithm, one combine-and-forward per step
//
// Every collective uses a private tag space (kCollTagBase and above) so it
// never matches application point-to-point traffic.
#pragma once

#include <cstdint>
#include <span>

#include "p2p/endpoint.hpp"

namespace cmpi::coll {

inline constexpr int kCollTagBase = 1 << 20;

enum class ReduceOp { kSum, kMin, kMax };

/// Dissemination barrier: completes when every rank has entered.
void barrier(p2p::Endpoint& ep);

/// Binomial-tree broadcast of `data` from `root` to all ranks.
void bcast(p2p::Endpoint& ep, int root, std::span<std::byte> data);

/// Element-wise reduction of `inout` onto `root` (binomial tree). Every
/// rank passes its contribution; only the root's buffer holds the result.
void reduce(p2p::Endpoint& ep, int root, std::span<double> inout,
            ReduceOp op);
void reduce(p2p::Endpoint& ep, int root, std::span<std::int64_t> inout,
            ReduceOp op);

/// Recursive-doubling allreduce; result in every rank's `inout`.
void allreduce(p2p::Endpoint& ep, std::span<double> inout, ReduceOp op);
void allreduce(p2p::Endpoint& ep, std::span<std::int64_t> inout, ReduceOp op);

/// Ring allgather: every rank contributes `mine`; `all` (nranks * mine
/// bytes) receives the concatenation in rank order.
void allgather(p2p::Endpoint& ep, std::span<const std::byte> mine,
               std::span<std::byte> all);

/// Bruck allgather: same semantics, ceil(log2 n) rounds of doubling block
/// counts — fewer rounds, better for small payloads.
void allgather_bruck(p2p::Endpoint& ep, std::span<const std::byte> mine,
                     std::span<std::byte> all);

/// Pairwise-exchange alltoall: `send` and `recv` hold nranks blocks of
/// `block` bytes each; block i of `send` goes to rank i.
void alltoall(p2p::Endpoint& ep, std::span<const std::byte> send,
              std::span<std::byte> recv, std::size_t block);

/// Ring reduce-scatter: `data` holds nranks blocks of `block_elems`
/// doubles; on return, `out` (block_elems doubles) holds the reduction of
/// every rank's block[rank].
void reduce_scatter(p2p::Endpoint& ep, std::span<const double> data,
                    std::span<double> out, ReduceOp op);

/// Binomial-tree gather: every rank contributes `mine`; on the root,
/// `all` (nranks * mine bytes) receives the concatenation in rank order.
/// Non-roots may pass an empty `all`.
void gather(p2p::Endpoint& ep, int root, std::span<const std::byte> mine,
            std::span<std::byte> all);

/// Binomial-tree scatter: the root's `all` (nranks blocks of `mine`
/// bytes) is distributed; every rank receives its block in `mine`.
void scatter(p2p::Endpoint& ep, int root, std::span<const std::byte> all,
             std::span<std::byte> mine);

/// Inclusive prefix sum (MPI_Scan): rank r ends with the reduction of
/// ranks 0..r. Hillis-Steele doubling, log2(n) rounds.
void scan(p2p::Endpoint& ep, std::span<double> inout, ReduceOp op);
void scan(p2p::Endpoint& ep, std::span<std::int64_t> inout, ReduceOp op);

}  // namespace cmpi::coll
