// Collectives implemented *directly* over CXL shared memory, rather than
// layered on point-to-point.
//
// §3.6 notes collectives can reuse cMPI's point-to-point; the only prior
// MPI-over-CXL work the paper cites (Ahn et al. 2024) instead maps a
// collective straight onto the shared pool: every rank deposits its
// contribution into a shared window and reads the others' after a
// barrier — one device write plus direct reads, no per-message queue
// protocol at all. This module provides that style for the collectives
// where it pays off, and bench/ablation_coll_cxl compares the two
// (p2p-algorithmic vs CXL-direct) across message sizes.
#pragma once

#include <span>
#include <string>

#include "rma/window.hpp"
#include "runtime/universe.hpp"

namespace cmpi::coll {

/// A reusable CXL-direct collective context: one shared window of
/// `max_bytes` per rank plus the window's fence barrier. Collective
/// construction (all ranks).
class CxlCollectives {
 public:
  CxlCollectives(runtime::RankCtx& ctx, const std::string& name,
                 std::size_t max_bytes);

  /// Allgather: every rank contributes `mine` (<= max_bytes); `all`
  /// receives nranks blocks in rank order. One coherent write + a fence +
  /// (n-1) direct reads.
  void allgather(std::span<const std::byte> mine, std::span<std::byte> all);

  /// Broadcast from `root`: one write by the root, direct reads by all.
  void bcast(int root, std::span<std::byte> data);

  /// Reduce-to-all directly over the pool: each rank deposits its vector,
  /// then every rank reads and folds all contributions locally.
  /// (All-read-all is bandwidth-heavier than recursive doubling for large
  /// vectors but latency-lighter for small ones.)
  void allreduce_sum(std::span<double> inout);

  /// The window's fence barrier (usable standalone).
  void barrier() { window_.fence(); }

  /// Collective teardown (frees the window).
  void free() { window_.free(); }

  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }

 private:
  runtime::RankCtx* ctx_;
  std::size_t max_bytes_;
  rma::Window window_;
};

}  // namespace cmpi::coll
