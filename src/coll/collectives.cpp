#include "coll/collectives.hpp"

#include "coll/algorithms.hpp"
#include "obs/obs.hpp"

// Thin non-template entry points over the channel-templated algorithms in
// coll/algorithms.hpp, instantiated for the global Endpoint. The same
// algorithms run over sub-communicators through core/communicator.hpp.
// Each entry point opens an obs span, so a trace of an application run
// shows one box per collective call with its payload size.
namespace cmpi::coll {

void barrier(p2p::Endpoint& ep) {
  CMPI_OBS_SPAN("coll.barrier");
  detail::barrier(ep);
}

void bcast(p2p::Endpoint& ep, int root, std::span<std::byte> data) {
  CMPI_OBS_SPAN_ARG("coll.bcast", "bytes", data.size());
  detail::bcast(ep, root, data);
}

void reduce(p2p::Endpoint& ep, int root, std::span<double> inout,
            ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.reduce", "elems", inout.size());
  detail::reduce(ep, root, inout, op);
}
void reduce(p2p::Endpoint& ep, int root, std::span<std::int64_t> inout,
            ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.reduce", "elems", inout.size());
  detail::reduce(ep, root, inout, op);
}

void allreduce(p2p::Endpoint& ep, std::span<double> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.allreduce", "elems", inout.size());
  detail::allreduce(ep, inout, op);
}
void allreduce(p2p::Endpoint& ep, std::span<std::int64_t> inout,
               ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.allreduce", "elems", inout.size());
  detail::allreduce(ep, inout, op);
}

void allgather(p2p::Endpoint& ep, std::span<const std::byte> mine,
               std::span<std::byte> all) {
  CMPI_OBS_SPAN_ARG("coll.allgather", "bytes", mine.size());
  detail::allgather(ep, mine, all);
}

void allgather_bruck(p2p::Endpoint& ep, std::span<const std::byte> mine,
                     std::span<std::byte> all) {
  CMPI_OBS_SPAN_ARG("coll.allgather_bruck", "bytes", mine.size());
  detail::allgather_bruck(ep, mine, all);
}

void alltoall(p2p::Endpoint& ep, std::span<const std::byte> send,
              std::span<std::byte> recv, std::size_t block) {
  CMPI_OBS_SPAN_ARG("coll.alltoall", "bytes", send.size());
  detail::alltoall(ep, send, recv, block);
}

void reduce_scatter(p2p::Endpoint& ep, std::span<const double> data,
                    std::span<double> out, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.reduce_scatter", "elems", data.size());
  detail::reduce_scatter(ep, data, out, op);
}

void gather(p2p::Endpoint& ep, int root, std::span<const std::byte> mine,
            std::span<std::byte> all) {
  CMPI_OBS_SPAN_ARG("coll.gather", "bytes", mine.size());
  detail::gather(ep, root, mine, all);
}

void scatter(p2p::Endpoint& ep, int root, std::span<const std::byte> all,
             std::span<std::byte> mine) {
  CMPI_OBS_SPAN_ARG("coll.scatter", "bytes", mine.size());
  detail::scatter(ep, root, all, mine);
}

void scan(p2p::Endpoint& ep, std::span<double> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.scan", "elems", inout.size());
  detail::scan(ep, inout, op);
}
void scan(p2p::Endpoint& ep, std::span<std::int64_t> inout, ReduceOp op) {
  CMPI_OBS_SPAN_ARG("coll.scan", "elems", inout.size());
  detail::scan(ep, inout, op);
}

}  // namespace cmpi::coll
