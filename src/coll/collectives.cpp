#include "coll/collectives.hpp"

#include "coll/algorithms.hpp"

// Thin non-template entry points over the channel-templated algorithms in
// coll/algorithms.hpp, instantiated for the global Endpoint. The same
// algorithms run over sub-communicators through core/communicator.hpp.
namespace cmpi::coll {

void barrier(p2p::Endpoint& ep) { detail::barrier(ep); }

void bcast(p2p::Endpoint& ep, int root, std::span<std::byte> data) {
  detail::bcast(ep, root, data);
}

void reduce(p2p::Endpoint& ep, int root, std::span<double> inout,
            ReduceOp op) {
  detail::reduce(ep, root, inout, op);
}
void reduce(p2p::Endpoint& ep, int root, std::span<std::int64_t> inout,
            ReduceOp op) {
  detail::reduce(ep, root, inout, op);
}

void allreduce(p2p::Endpoint& ep, std::span<double> inout, ReduceOp op) {
  detail::allreduce(ep, inout, op);
}
void allreduce(p2p::Endpoint& ep, std::span<std::int64_t> inout,
               ReduceOp op) {
  detail::allreduce(ep, inout, op);
}

void allgather(p2p::Endpoint& ep, std::span<const std::byte> mine,
               std::span<std::byte> all) {
  detail::allgather(ep, mine, all);
}

void allgather_bruck(p2p::Endpoint& ep, std::span<const std::byte> mine,
                     std::span<std::byte> all) {
  detail::allgather_bruck(ep, mine, all);
}

void alltoall(p2p::Endpoint& ep, std::span<const std::byte> send,
              std::span<std::byte> recv, std::size_t block) {
  detail::alltoall(ep, send, recv, block);
}

void reduce_scatter(p2p::Endpoint& ep, std::span<const double> data,
                    std::span<double> out, ReduceOp op) {
  detail::reduce_scatter(ep, data, out, op);
}

void gather(p2p::Endpoint& ep, int root, std::span<const std::byte> mine,
            std::span<std::byte> all) {
  detail::gather(ep, root, mine, all);
}

void scatter(p2p::Endpoint& ep, int root, std::span<const std::byte> all,
             std::span<std::byte> mine) {
  detail::scatter(ep, root, all, mine);
}

void scan(p2p::Endpoint& ep, std::span<double> inout, ReduceOp op) {
  detail::scan(ep, inout, op);
}
void scan(p2p::Endpoint& ep, std::span<std::int64_t> inout, ReduceOp op) {
  detail::scan(ep, inout, op);
}

}  // namespace cmpi::coll
