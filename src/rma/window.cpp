#include "rma/window.hpp"

#include <algorithm>

#include "common/align.hpp"
#include "common/log.hpp"
#include "obs/obs.hpp"
#include "runtime/seq_barrier.hpp"

namespace cmpi::rma {

namespace {
constexpr std::size_t kPairStride = kCacheLineSize;  // one flag per line

std::uint64_t matrix_bytes(int nranks) noexcept {
  return static_cast<std::uint64_t>(nranks) *
         static_cast<std::uint64_t>(nranks) * kPairStride;
}

struct Layout {
  std::uint64_t post;
  std::uint64_t complete;
  std::uint64_t locks;
  std::uint64_t data;
  std::size_t lock_stride;
};

Layout layout_of(std::uint64_t base, int nranks) noexcept {
  Layout l{};
  l.post = base + runtime::SeqBarrier::footprint(
                      static_cast<std::size_t>(nranks));
  l.complete = l.post + matrix_bytes(nranks);
  l.locks = l.complete + matrix_bytes(nranks);
  l.lock_stride = align_up(
      arena::BakeryLock::footprint(static_cast<std::size_t>(nranks)),
      kCacheLineSize);
  l.data = l.locks + static_cast<std::uint64_t>(nranks) * l.lock_stride;
  return l;
}
}  // namespace

std::size_t Window::footprint(int nranks, std::size_t win_size) noexcept {
  const Layout l = layout_of(0, nranks);
  return l.data +
         static_cast<std::size_t>(nranks) * align_up(win_size, kCacheLineSize);
}

Window Window::create(runtime::RankCtx& ctx, const std::string& name,
                      std::size_t win_size) {
  return create_grouped(ctx, name, win_size, ctx.rank(), ctx.nranks(),
                        /*is_root=*/ctx.rank() == 0,
                        [&ctx] { ctx.barrier(); });
}

Window Window::create_grouped(runtime::RankCtx& ctx, const std::string& name,
                              std::size_t win_size, int group_rank,
                              int group_size, bool is_root,
                              std::function<void()> group_barrier) {
  const std::string object_name = "cmpi_win_" + name;
  const std::size_t aligned_size = align_up(std::max<std::size_t>(win_size, 1),
                                            kCacheLineSize);
  arena::ObjectHandle handle;
  if (is_root) {
    handle = check_ok(ctx.arena().create(
        object_name, footprint(group_size, aligned_size)));
    // Format all synchronization structures before anyone attaches
    // (arena memory may be reused and hold stale flags).
    const Layout l = layout_of(handle.pool_offset, group_size);
    runtime::SeqBarrier::format(ctx.acc(), handle.pool_offset,
                                static_cast<std::size_t>(group_size));
    for (int o = 0; o < group_size; ++o) {
      for (int t = 0; t < group_size; ++t) {
        const std::uint64_t n = static_cast<std::uint64_t>(group_size);
        const std::uint64_t post =
            l.post + (static_cast<std::uint64_t>(o) * n +
                      static_cast<std::uint64_t>(t)) *
                         kPairStride;
        const std::uint64_t comp =
            l.complete + (static_cast<std::uint64_t>(t) * n +
                          static_cast<std::uint64_t>(o)) *
                             kPairStride;
        ctx.acc().publish_flag(post, 0);
        ctx.acc().publish_flag(comp, 0);
      }
    }
    for (int t = 0; t < group_size; ++t) {
      arena::BakeryLock::format(ctx.acc(), l.locks + t * l.lock_stride,
                                static_cast<std::size_t>(group_size));
    }
    ctx.doorbell().ring();
  }
  group_barrier();
  if (!is_root) {
    handle = check_ok(ctx.arena().open(object_name));
  }
  Window window(ctx, object_name, handle.pool_offset, aligned_size, handle,
                group_rank, group_size, group_barrier);
  group_barrier();
  return window;
}

Window::Window(runtime::RankCtx& ctx, std::string name, std::uint64_t base,
               std::size_t win_size, arena::ObjectHandle handle,
               int group_rank, int group_size,
               std::function<void()> group_barrier)
    : ctx_(&ctx),
      name_(std::move(name)),
      group_rank_(group_rank),
      group_size_(group_size),
      group_barrier_(std::move(group_barrier)),
      base_(base),
      win_size_(win_size),
      handle_(std::move(handle)),
      fence_barrier_(ctx.acc(), base,
                     static_cast<std::size_t>(group_size),
                     static_cast<std::size_t>(group_rank)),
      posts_made_(static_cast<std::size_t>(group_size), 0),
      starts_seen_(static_cast<std::size_t>(group_size), 0),
      completes_made_(static_cast<std::size_t>(group_size), 0),
      waits_seen_(static_cast<std::size_t>(group_size), 0) {
  const Layout l = layout_of(base_, group_size);
  post_offset_ = l.post;
  complete_offset_ = l.complete;
  locks_offset_ = l.locks;
  lock_stride_ = l.lock_stride;
  data_offset_ = l.data;
  target_locks_.reserve(static_cast<std::size_t>(group_size));
  for (int t = 0; t < group_size; ++t) {
    target_locks_.push_back(check_ok(arena::BakeryLock::attach(
        ctx.acc(), locks_offset_ + t * lock_stride_)));
  }
}

void Window::free() {
  group_barrier_();
  if (group_rank_ == 0) {
    check_ok(ctx_->arena().destroy(handle_));
  } else {
    check_ok(ctx_->arena().close(handle_));
  }
  group_barrier_();
}

std::uint64_t Window::segment_offset(int target) const {
  CMPI_EXPECTS(target >= 0 && target < nranks());
  return data_offset_ + static_cast<std::uint64_t>(target) * win_size_;
}

std::uint64_t Window::post_flag(int origin, int target) const {
  return post_offset_ + (static_cast<std::uint64_t>(origin) *
                             static_cast<std::uint64_t>(nranks()) +
                         static_cast<std::uint64_t>(target)) *
                            kPairStride;
}

std::uint64_t Window::complete_flag(int target, int origin) const {
  return complete_offset_ + (static_cast<std::uint64_t>(target) *
                                 static_cast<std::uint64_t>(nranks()) +
                             static_cast<std::uint64_t>(origin)) *
                                kPairStride;
}

// ---------- Data operations ----------

void Window::note_epoch_put(std::uint64_t offset, std::size_t size) {
  if (size == 0 || ctx_->device().checker() == nullptr) {
    return;
  }
  if (epoch_puts_.size() < kMaxEpochPutRanges) {
    epoch_puts_.emplace_back(offset, size);
  }
}

void Window::annotate_epoch_puts() {
  for (const auto& [offset, size] : epoch_puts_) {
    ctx_->acc().annotate_publish_range(offset, size);
  }
  epoch_puts_.clear();
}

void Window::put(int target, std::uint64_t disp,
                 std::span<const std::byte> data) {
  CMPI_EXPECTS(disp + data.size() <= win_size_);
  CMPI_OBS_COUNT("rma.put_bytes", data.size());
  CMPI_OBS_INSTANT_ARG("rma.put", "bytes", data.size());
  ctx_->charge_mpi_overhead();
  ctx_->acc().fault_sync_point("window-put");
  const std::uint64_t at = segment_offset(target) + disp;
  ctx_->acc().bulk_write(at, data);
  note_epoch_put(at, data.size());
}

void Window::get(int target, std::uint64_t disp, std::span<std::byte> out) {
  CMPI_EXPECTS(disp + out.size() <= win_size_);
  CMPI_OBS_COUNT("rma.get_bytes", out.size());
  CMPI_OBS_INSTANT_ARG("rma.get", "bytes", out.size());
  ctx_->charge_mpi_overhead();
  ctx_->acc().bulk_read(segment_offset(target) + disp, out);
}

void Window::accumulate(int target, std::uint64_t disp,
                        std::span<const double> values, AccumulateOp op) {
  CMPI_EXPECTS(disp + values.size() * sizeof(double) <= win_size_);
  ctx_->charge_mpi_overhead();
  const std::uint64_t at = segment_offset(target) + disp;
  std::vector<double> current(values.size());
  ctx_->acc().bulk_read(at, std::as_writable_bytes(std::span(current)));
  for (std::size_t i = 0; i < values.size(); ++i) {
    switch (op) {
      case AccumulateOp::kSum:
        current[i] += values[i];
        break;
      case AccumulateOp::kMin:
        current[i] = std::min(current[i], values[i]);
        break;
      case AccumulateOp::kMax:
        current[i] = std::max(current[i], values[i]);
        break;
      case AccumulateOp::kReplace:
        current[i] = values[i];
        break;
    }
  }
  // Element-wise combine cost on the CPU (~1 ns per element).
  ctx_->clock().advance(static_cast<double>(values.size()) * 1.0);
  ctx_->acc().bulk_write(at, std::as_bytes(std::span(current)));
  note_epoch_put(at, values.size() * sizeof(double));
}

void Window::get_accumulate(int target, std::uint64_t disp,
                            std::span<const double> values,
                            std::span<double> result, AccumulateOp op) {
  CMPI_EXPECTS(values.size() == result.size());
  CMPI_EXPECTS(disp + values.size() * sizeof(double) <= win_size_);
  ctx_->charge_mpi_overhead();
  const std::uint64_t at = segment_offset(target) + disp;
  ctx_->acc().bulk_read(at, std::as_writable_bytes(result));
  std::vector<double> updated(result.begin(), result.end());
  for (std::size_t i = 0; i < values.size(); ++i) {
    switch (op) {
      case AccumulateOp::kSum:
        updated[i] += values[i];
        break;
      case AccumulateOp::kMin:
        updated[i] = std::min(updated[i], values[i]);
        break;
      case AccumulateOp::kMax:
        updated[i] = std::max(updated[i], values[i]);
        break;
      case AccumulateOp::kReplace:
        updated[i] = values[i];
        break;
    }
  }
  ctx_->clock().advance(static_cast<double>(values.size()) * 1.0);
  ctx_->acc().bulk_write(at, std::as_bytes(std::span(updated)));
  note_epoch_put(at, values.size() * sizeof(double));
}

std::uint64_t Window::fetch_and_op_u64(int target, std::uint64_t disp,
                                       std::uint64_t operand,
                                       AccumulateOp op) {
  CMPI_EXPECTS(disp + sizeof(std::uint64_t) <= win_size_);
  CMPI_EXPECTS(op == AccumulateOp::kSum || op == AccumulateOp::kReplace);
  ctx_->charge_mpi_overhead();
  const std::uint64_t at = segment_offset(target) + disp;
  const std::uint64_t old = ctx_->acc().nt_load_u64(at);
  const std::uint64_t updated =
      op == AccumulateOp::kSum ? old + operand : operand;
  ctx_->acc().nt_store_u64(at, updated);
  ctx_->acc().sfence();
  return old;
}

void Window::write_local(std::uint64_t disp, std::span<const std::byte> data) {
  CMPI_EXPECTS(disp + data.size() <= win_size_);
  ctx_->acc().coherent_write(segment_offset(rank()) + disp, data);
}

void Window::read_local(std::uint64_t disp, std::span<std::byte> out) {
  CMPI_EXPECTS(disp + out.size() <= win_size_);
  ctx_->acc().coherent_read(segment_offset(rank()) + disp, out);
}

// ---------- PSCW ----------

void Window::wait_count_at_least(std::uint64_t flag_offset,
                                 std::uint64_t target) {
  cxlsim::Accessor::FlagValue seen{};
  ctx_->doorbell().wait_until([&] {
    seen = ctx_->acc().peek_flag(flag_offset);
    return seen.value >= target;
  });
  ctx_->acc().absorb_flag(seen);
}

void Window::post(std::span<const int> origins) {
  CMPI_OBS_SPAN("rma.post");
  ctx_->charge_mpi_overhead();
  // Make the target's own prior segment writes visible before exposing.
  ctx_->acc().sfence();
  for (const int origin : origins) {
    CMPI_EXPECTS(origin >= 0 && origin < nranks());
    auto& count = posts_made_[static_cast<std::size_t>(origin)];
    ++count;
    ctx_->acc().publish_flag(post_flag(origin, rank()), count);
  }
  ctx_->doorbell().ring();
}

void Window::start(std::span<const int> targets) {
  CMPI_OBS_SPAN("rma.start");
  ctx_->charge_mpi_overhead();
  for (const int target : targets) {
    CMPI_EXPECTS(target >= 0 && target < nranks());
    auto& count = starts_seen_[static_cast<std::size_t>(target)];
    ++count;
    wait_count_at_least(post_flag(rank(), target), count);
  }
}

void Window::complete(std::span<const int> targets) {
  CMPI_OBS_SPAN("rma.complete");
  ctx_->charge_mpi_overhead();
  // The first complete flag's publish covers every put of this epoch; the
  // checker verifies none of the payload is still dirty in our cache.
  annotate_epoch_puts();
  ctx_->acc().sfence();  // drain puts of this access epoch
  for (const int target : targets) {
    CMPI_EXPECTS(target >= 0 && target < nranks());
    auto& count = completes_made_[static_cast<std::size_t>(target)];
    ++count;
    ctx_->acc().publish_flag(complete_flag(target, rank()), count);
  }
  ctx_->doorbell().ring();
}

void Window::wait(std::span<const int> origins) {
  CMPI_OBS_SPAN("rma.wait");
  ctx_->charge_mpi_overhead();
  for (const int origin : origins) {
    CMPI_EXPECTS(origin >= 0 && origin < nranks());
    auto& count = waits_seen_[static_cast<std::size_t>(origin)];
    ++count;
    wait_count_at_least(complete_flag(rank(), origin), count);
  }
}

// ---------- Fence / passive target ----------

void Window::fence() {
  CMPI_OBS_SPAN("rma.fence");
  ctx_->charge_mpi_overhead();
  // The barrier's arrival publish covers this epoch's puts.
  annotate_epoch_puts();
  ctx_->acc().sfence();
  fence_barrier_.enter(ctx_->acc(), ctx_->doorbell());
}

void Window::lock(int target) {
  CMPI_EXPECTS(target >= 0 && target < nranks());
  CMPI_OBS_SPAN("rma.lock");
  ctx_->charge_mpi_overhead();
  target_locks_[static_cast<std::size_t>(target)].lock(
      ctx_->acc(), static_cast<std::size_t>(rank()));
}

Status Window::lock_for(int target, std::chrono::milliseconds timeout) {
  CMPI_EXPECTS(target >= 0 && target < nranks());
  ctx_->charge_mpi_overhead();
  runtime::FailureDetector& detector = ctx_->failure_detector();
  cxlsim::Accessor& acc = ctx_->acc();
  return target_locks_[static_cast<std::size_t>(target)].lock_for(
      acc, static_cast<std::size_t>(rank()), timeout,
      [&](std::size_t participant) {
        // Bakery participants are group ranks; the detector judges world
        // ranks. The two coincide for world-spanning windows (see header).
        return detector.dead(acc, static_cast<int>(participant));
      },
      [&] { detector.beat(acc); });
}

void Window::unlock(int target) {
  CMPI_EXPECTS(target >= 0 && target < nranks());
  CMPI_OBS_SPAN("rma.unlock");
  ctx_->charge_mpi_overhead();
  // The lock-release publish covers the epoch's puts.
  annotate_epoch_puts();
  ctx_->acc().sfence();  // puts complete before the lock releases
  target_locks_[static_cast<std::size_t>(target)].unlock(
      ctx_->acc(), static_cast<std::size_t>(rank()));
  ctx_->doorbell().ring();
}

void Window::lock_all() {
  for (int target = 0; target < nranks(); ++target) {
    lock(target);
  }
}

void Window::unlock_all() {
  for (int target = nranks() - 1; target >= 0; --target) {
    unlock(target);
  }
}

void Window::flush(int target) {
  CMPI_EXPECTS(target >= 0 && target < nranks());
  ctx_->charge_mpi_overhead();
  ctx_->acc().sfence();
}

void Window::flush_all() {
  ctx_->charge_mpi_overhead();
  ctx_->acc().sfence();
}

Window::PeerScavengeReport Window::scavenge_peer(int dead_group_rank) {
  CMPI_EXPECTS(dead_group_rank >= 0 && dead_group_rank < group_size_ &&
               dead_group_rank != group_rank_);
  PeerScavengeReport report;
  cxlsim::Accessor& acc = ctx_->acc();
  const auto dead = static_cast<std::size_t>(dead_group_rank);
  for (arena::BakeryLock& lock : target_locks_) {
    if (lock.break_participant(acc, dead)) {
      ++report.lock_tickets_broken;
    }
  }
  report.fence_slot_forged = runtime::SeqBarrier::forge_slot(
      acc, base_, static_cast<std::size_t>(group_size_), dead);
  return report;
}

}  // namespace cmpi::rma
