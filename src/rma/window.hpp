// One-sided MPI communication over CXL SHM (paper §3.2, §3.4).
//
// A Window extends MPI_Win_allocate_shared across nodes: the root rank
// creates one CXL SHM Arena object holding all ranks' segments laid out
// contiguously (segment of rank i directly follows rank i-1), so any rank
// computes any other rank's segment address from the object base and the
// rank id alone. MPI_Put/MPI_Get become direct stores/loads into the
// pool — no network transfer, no target-side progress.
//
// Synchronization (all built from single-writer flags and the bakery lock,
// because the pooled device has no cross-head atomics):
//
//  * PSCW — a post-count matrix and a complete-count matrix of timestamped
//    sequence flags, one cacheline per ordered pair so each flag has
//    exactly one writer. Target's Post(origins) increments its row;
//    origin's Start(targets) waits for the counts; Complete/Wait mirror
//    it. Counters never reset, so epochs repeat indefinitely (§3.4's
//    shared synchronization array, generalized to counting flags).
//  * Lock/Unlock — a per-target-rank Lamport bakery lock resident in the
//    window's CXL SHM, eliminating the lock-request network round trip.
//    Both MPI lock modes map to exclusive acquisition (conservative).
//  * Fence — a sequence-number barrier in the window (plus a store drain).
//
// Window object layout:
//   [0]                 fence barrier slots   (nranks * 64 B)
//   [post_offset]       post-count matrix     (nranks^2 * 64 B)
//   [complete_offset]   complete-count matrix (nranks^2 * 64 B)
//   [locks_offset]      per-target bakery locks
//   [data_offset]       segments: nranks * win_size
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "arena/bakery_lock.hpp"
#include "common/status.hpp"
#include "runtime/universe.hpp"

namespace cmpi::rma {

/// Reduction op for accumulate.
enum class AccumulateOp { kSum, kMin, kMax, kReplace };

/// Fixed-width buffer size used when broadcasting a window's object name
/// (§3.2: "the root rank then broadcasts the object name").
inline constexpr std::size_t kWindowNameCapacity = 40;

class Window {
 public:
  /// Collective creation: every rank calls with the same `name` and
  /// `win_size` (bytes per rank, rounded up to a cacheline). The root
  /// creates the arena object; everyone else opens it (the paper's
  /// root-broadcasts-name flow); two barriers close the epoch.
  static Window create(runtime::RankCtx& ctx, const std::string& name,
                       std::size_t win_size);

  /// Group-scoped creation for sub-communicators (§3.2): segments and
  /// synchronization structures are sized for `group_size` members with
  /// dense group ranks; `group_barrier` synchronizes exactly the members
  /// (the world barrier would deadlock). The root creates and formats the
  /// object; everyone attaches.
  static Window create_grouped(runtime::RankCtx& ctx,
                               const std::string& name, std::size_t win_size,
                               int group_rank, int group_size, bool is_root,
                               std::function<void()> group_barrier);

  /// Collective destruction: barrier, then the root destroys the object.
  void free();

  // --- RMA data operations (require an access epoch) ---
  /// MPI_Put: store into `target`'s segment at byte displacement `disp`.
  void put(int target, std::uint64_t disp, std::span<const std::byte> data);
  /// MPI_Get: load from `target`'s segment.
  void get(int target, std::uint64_t disp, std::span<std::byte> out);
  /// MPI_Accumulate on contiguous doubles. Epoch exclusivity (PSCW or
  /// lock) provides the element-wise atomicity MPI requires.
  void accumulate(int target, std::uint64_t disp,
                  std::span<const double> values, AccumulateOp op);

  /// MPI_Get_accumulate: fetch the target values into `result`, then
  /// apply `op` with `values`. Requires an exclusive epoch (lock/PSCW).
  void get_accumulate(int target, std::uint64_t disp,
                      std::span<const double> values,
                      std::span<double> result, AccumulateOp op);

  /// MPI_Fetch_and_op on one 64-bit integer: returns the old value and
  /// stores old+operand (kSum) or operand (kReplace). The pooled device
  /// has no atomic RMW, so this is only atomic under the window lock —
  /// lock(target) must be held (MPI requires a passive epoch here too).
  std::uint64_t fetch_and_op_u64(int target, std::uint64_t disp,
                                 std::uint64_t operand, AccumulateOp op);

  // --- Local segment access (the app's own window memory) ---
  /// Coherent write into the caller's own segment (§3.5 discipline).
  void write_local(std::uint64_t disp, std::span<const std::byte> data);
  /// Coherent read from the caller's own segment.
  void read_local(std::uint64_t disp, std::span<std::byte> out);

  // --- PSCW (§3.4) ---
  /// Target side: expose the window to `origins` (MPI_Win_post).
  void post(std::span<const int> origins);
  /// Origin side: open an access epoch to `targets` (MPI_Win_start).
  void start(std::span<const int> targets);
  /// Origin side: end the access epoch (MPI_Win_complete).
  void complete(std::span<const int> targets);
  /// Target side: wait for all origins to complete (MPI_Win_wait).
  void wait(std::span<const int> origins);

  // --- Fence ---
  /// MPI_Win_fence: drain outstanding stores, then barrier on the window.
  void fence();

  // --- Passive target (Lock/Unlock, §3.4) ---
  void lock(int target);
  /// Deadline- and failure-aware lock: beats the caller's heartbeat while
  /// queued, and if a participant ahead of it is declared dead by the
  /// failure detector, BREAKS the dead holder's bakery ticket and acquires
  /// the lock (arena::BakeryLock::lock_for). Returns kTimedOut if every
  /// contender stayed alive past the deadline. Caveat: the liveness
  /// mapping assumes group ranks equal world ranks, which holds for
  /// world-spanning windows (Window::create); for create_grouped windows
  /// with reordered members the dead-holder check is conservative (it may
  /// misattribute liveness and fall back to kTimedOut).
  [[nodiscard]] Status lock_for(int target, std::chrono::milliseconds timeout);
  void unlock(int target);
  /// MPI_Win_lock_all / unlock_all: acquire every target's lock (in rank
  /// order, so concurrent lock_all callers cannot deadlock).
  void lock_all();
  void unlock_all();

  /// MPI_Win_flush: complete outstanding puts to `target` (drain stores).
  void flush(int target);
  void flush_all();

  /// What scavenge_peer repaired in this window's synchronization state.
  struct PeerScavengeReport {
    std::uint64_t lock_tickets_broken = 0;  ///< standing bakery tickets
    bool fence_slot_forged = false;         ///< barrier slot leveled up
  };

  /// Window-local half of pool recovery (see runtime::PoolRecovery for the
  /// pool-global half): break the dead group member's standing bakery
  /// tickets on every per-target window lock — a corpse's ticket blocks
  /// all future acquirers with larger tickets — and forge its
  /// fence-barrier slot level with the survivors so fences drain past it.
  /// `dead_group_rank` is a rank within this window's group. Survivors'
  /// PSCW counts toward the corpse are not rewritten: post/start epochs
  /// are per-pair and simply stop advancing.
  PeerScavengeReport scavenge_peer(int dead_group_rank);

  [[nodiscard]] std::size_t win_size() const noexcept { return win_size_; }
  /// Members of the window's group (the communicator that created it).
  [[nodiscard]] int nranks() const noexcept { return group_size_; }
  /// This rank's dense index within the window's group.
  [[nodiscard]] int rank() const noexcept { return group_rank_; }
  /// Pool offset of `target`'s segment (contiguous layout arithmetic).
  [[nodiscard]] std::uint64_t segment_offset(int target) const;

  /// Bytes the window object occupies for a given geometry.
  static std::size_t footprint(int nranks, std::size_t win_size) noexcept;

 private:
  /// Cap on coherence-checker payload hints kept per epoch; past it the
  /// epoch is only partially annotated (a hint, not a correctness issue).
  static constexpr std::size_t kMaxEpochPutRanges = 256;

  Window(runtime::RankCtx& ctx, std::string name, std::uint64_t base,
         std::size_t win_size, arena::ObjectHandle handle, int group_rank,
         int group_size, std::function<void()> group_barrier);

  [[nodiscard]] std::uint64_t post_flag(int origin, int target) const;
  [[nodiscard]] std::uint64_t complete_flag(int target, int origin) const;
  void wait_count_at_least(std::uint64_t flag_offset, std::uint64_t target);
  /// Record a put/accumulate destination range for the coherence checker.
  void note_epoch_put(std::uint64_t offset, std::size_t size);
  /// Hand the recorded ranges to the accessor as the payload of the next
  /// epoch-closing publish, then forget them.
  void annotate_epoch_puts();

  runtime::RankCtx* ctx_;
  std::string name_;
  int group_rank_ = 0;
  int group_size_ = 0;
  std::function<void()> group_barrier_;
  std::uint64_t base_ = 0;
  std::size_t win_size_ = 0;
  arena::ObjectHandle handle_;
  std::uint64_t post_offset_ = 0;
  std::uint64_t complete_offset_ = 0;
  std::uint64_t locks_offset_ = 0;
  std::uint64_t data_offset_ = 0;
  std::size_t lock_stride_ = 0;
  runtime::SeqBarrier fence_barrier_;
  std::vector<arena::BakeryLock> target_locks_;
  // Local epoch counters (single-writer flags hold the shared values).
  std::vector<std::uint64_t> posts_made_;      // per origin
  std::vector<std::uint64_t> starts_seen_;     // per target
  std::vector<std::uint64_t> completes_made_;  // per target
  std::vector<std::uint64_t> waits_seen_;      // per origin
  // Destination ranges written this access epoch (coherence-checker hints:
  // the epoch-closing publish in complete/fence/unlock covers them).
  std::vector<std::pair<std::uint64_t, std::size_t>> epoch_puts_;
};

}  // namespace cmpi::rma
