// Sub-communicators (MPI_Comm_split).
//
// A Communicator is a subset of the universe's ranks with its own dense
// rank numbering and an isolated tag space — the abstraction §3.2's
// window-creation flow is written against ("to create a CXL SHM-based RMA
// window for a specific communicator, the root rank of the communicator
// creates a CXL SHM object ... and broadcasts the object name").
//
// Implementation: rank translation tables over the world endpoint plus a
// context id folded into the message tag (MPI's context-id envelope
// field, encoded in the tag bits our cell header already carries). All
// collective algorithms run unchanged over the Communicator because they
// are templated on the channel (coll/algorithms.hpp).
//
// Tag layout: [1 << 26 | context_id << 13 | encoded_tag] where
// encoded_tag is the user tag (< 4096) or 4096 + the collective-tag
// offset. User point-to-point tags on a communicator must be < 4096.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "coll/algorithms.hpp"
#include "p2p/endpoint.hpp"
#include "rma/window.hpp"

namespace cmpi {

class Communicator {
 public:
  static constexpr int kMaxUserTag = 4096;

  /// Built by Session::split; see there.
  Communicator(p2p::Endpoint& world, int context_id,
               std::vector<int> members, int my_index)
      : world_(&world),
        context_id_(context_id),
        members_(std::move(members)),
        my_index_(my_index) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      world_to_comm_[members_[i]] = static_cast<int>(i);
    }
  }

  [[nodiscard]] int rank() const noexcept { return my_index_; }
  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(members_.size());
  }
  [[nodiscard]] int size() const noexcept { return nranks(); }
  /// World rank of communicator member `r`.
  [[nodiscard]] int world_rank(int r) const {
    CMPI_EXPECTS(r >= 0 && r < nranks());
    return members_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int context_id() const noexcept { return context_id_; }

  // ---- Channel interface (translated ranks, context-scoped tags) ----
  Status send(int dst, int tag, std::span<const std::byte> data) {
    return world_->send(world_rank(dst), scope_tag(tag), data);
  }
  Status ssend(int dst, int tag, std::span<const std::byte> data) {
    return world_->ssend(world_rank(dst), scope_tag(tag), data);
  }
  Result<p2p::RecvInfo> recv(int src, int tag, std::span<std::byte> buffer) {
    auto result = world_->recv(translate_src(src), scope_tag(tag), buffer);
    if (result.is_ok()) {
      return translate_info(result.value());
    }
    return result;
  }
  p2p::RequestPtr isend(int dst, int tag, std::span<const std::byte> data) {
    return world_->isend(world_rank(dst), scope_tag(tag), data);
  }
  p2p::RequestPtr irecv(int src, int tag, std::span<std::byte> buffer) {
    return world_->irecv(translate_src(src), scope_tag(tag), buffer);
  }
  bool test(const p2p::RequestPtr& r) { return world_->test(r); }
  Status wait(const p2p::RequestPtr& r) { return world_->wait(r); }
  Status wait_all(std::span<const p2p::RequestPtr> rs) {
    return world_->wait_all(rs);
  }
  /// Completion info of a communicator-scoped receive, with the source
  /// translated to a communicator rank.
  [[nodiscard]] p2p::RecvInfo info_of(const p2p::RequestPtr& r) const {
    return translate_info(r->info());
  }

  // ---- Collectives over the communicator ----
  void barrier() { coll::detail::barrier(*this); }
  void bcast(int root, std::span<std::byte> data) {
    coll::detail::bcast(*this, root, data);
  }
  void reduce(int root, std::span<double> inout, coll::ReduceOp op) {
    coll::detail::reduce(*this, root, inout, op);
  }
  void allreduce(std::span<double> inout, coll::ReduceOp op) {
    coll::detail::allreduce(*this, inout, op);
  }
  void allreduce(std::span<std::int64_t> inout, coll::ReduceOp op) {
    coll::detail::allreduce(*this, inout, op);
  }
  void allgather(std::span<const std::byte> mine, std::span<std::byte> all) {
    coll::detail::allgather(*this, mine, all);
  }
  void alltoall(std::span<const std::byte> send_blocks,
                std::span<std::byte> recv_blocks, std::size_t block) {
    coll::detail::alltoall(*this, send_blocks, recv_blocks, block);
  }
  void gather(int root, std::span<const std::byte> mine,
              std::span<std::byte> all) {
    coll::detail::gather(*this, root, mine, all);
  }
  void scatter(int root, std::span<const std::byte> all,
               std::span<std::byte> mine) {
    coll::detail::scatter(*this, root, all, mine);
  }
  void scan(std::span<double> inout, coll::ReduceOp op) {
    coll::detail::scan(*this, inout, op);
  }

  // ---- One-sided over the communicator (§3.2's flow) ----
  /// Collective window creation among the members: the root creates the
  /// object under a context-unique name and BROADCASTS the name to the
  /// other members, exactly as §3.2 describes; everyone opens it.
  rma::Window create_window(runtime::RankCtx& ctx, std::size_t win_size) {
    const int root = 0;
    std::string name;
    if (rank() == root) {
      name = "comm" + std::to_string(context_id_) + "_w" +
             std::to_string(windows_created_);
    }
    ++windows_created_;
    // Broadcast the (fixed-width) name from the root.
    char buffer[rma::kWindowNameCapacity] = {};
    if (rank() == root) {
      CMPI_EXPECTS(name.size() < sizeof buffer);
      std::copy(name.begin(), name.end(), buffer);
    }
    bcast(root, {reinterpret_cast<std::byte*>(buffer), sizeof buffer});
    name.assign(buffer);
    rma::Window window = rma::Window::create_grouped(
        ctx, name, win_size, rank(), nranks(), /*is_root=*/rank() == root,
        [this] { barrier(); });
    return window;
  }

 private:
  [[nodiscard]] int scope_tag(int tag) const {
    int encoded;
    if (tag >= coll::kCollTagBase) {
      encoded = kMaxUserTag + (tag - coll::kCollTagBase);
      CMPI_EXPECTS(encoded < 2 * kMaxUserTag);
    } else {
      CMPI_EXPECTS(tag >= 0 && tag < kMaxUserTag);
      encoded = tag;
    }
    return (1 << 26) | (context_id_ << 13) | encoded;
  }

  [[nodiscard]] int translate_src(int src) const {
    return src == p2p::kAnySource ? p2p::kAnySource : world_rank(src);
  }

  [[nodiscard]] p2p::RecvInfo translate_info(p2p::RecvInfo info) const {
    const auto it = world_to_comm_.find(info.source);
    CMPI_ASSERT(it != world_to_comm_.end());
    info.source = it->second;
    info.tag = (info.tag & (kMaxUserTag - 1));
    return info;
  }

  p2p::Endpoint* world_;
  int context_id_;
  std::vector<int> members_;  // comm rank -> world rank, sorted by key
  int my_index_;
  std::map<int, int> world_to_comm_;
  int windows_created_ = 0;
};

}  // namespace cmpi
