// cMPI — MPI one-sided and two-sided inter-node communication over CXL
// memory sharing (reproduction of Wang et al., SC '25).
//
// This is the library's public entry point. A typical program:
//
//   #include "core/cmpi.hpp"
//
//   cmpi::runtime::UniverseConfig cfg;       // nodes, ranks, pool size
//   cmpi::runtime::Universe universe(cfg);   // the CXL pooled platform
//   universe.run([](cmpi::runtime::RankCtx& ctx) {
//     cmpi::Session mpi(ctx);                // MPI_Init equivalent
//     if (mpi.rank() == 0) mpi.send(1, /*tag=*/0, data);
//     else                 mpi.recv(0, 0, buffer);
//   });
//
// A Session bundles the rank's two-sided endpoint (SPSC ring matrix over
// CXL SHM), one-sided window management, and collectives. All virtual-time
// accounting is automatic; `ctx.clock().now()` reads the rank's simulated
// time.
#pragma once

#include <algorithm>
#include <chrono>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coll/collectives.hpp"
#include "core/communicator.hpp"
#include "cxlsim/coherence_checker.hpp"
#include "p2p/endpoint.hpp"
#include "rma/window.hpp"
#include "runtime/pool_recovery.hpp"
#include "runtime/universe.hpp"

namespace cmpi {

/// Wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
using p2p::kAnySource;
using p2p::kAnyTag;
using p2p::RecvInfo;
using p2p::RequestPtr;
using coll::ReduceOp;
using rma::AccumulateOp;

/// Per-rank communication session: the MPI_COMM_WORLD-equivalent handle.
/// Construct once per rank inside Universe::run (collective operation).
class Session {
 public:
  /// Collective: all ranks construct their Session together (builds the
  /// shared ring matrix; MPI_Init equivalent).
  explicit Session(runtime::RankCtx& ctx)
      : ctx_(&ctx), endpoint_(p2p::Endpoint::create(ctx)) {}

  [[nodiscard]] int rank() const noexcept { return ctx_->rank(); }
  [[nodiscard]] int size() const noexcept { return ctx_->nranks(); }
  [[nodiscard]] runtime::RankCtx& ctx() noexcept { return *ctx_; }
  [[nodiscard]] p2p::Endpoint& endpoint() noexcept { return endpoint_; }

  // ---- Two-sided (MPI_Send / MPI_Recv families) ----
  Status send(int dst, int tag, std::span<const std::byte> data) {
    return endpoint_.send(dst, tag, data);
  }
  Result<RecvInfo> recv(int src, int tag, std::span<std::byte> buffer) {
    return endpoint_.recv(src, tag, buffer);
  }
  Status ssend(int dst, int tag, std::span<const std::byte> data) {
    return endpoint_.ssend(dst, tag, data);
  }
  RequestPtr isend(int dst, int tag, std::span<const std::byte> data) {
    return endpoint_.isend(dst, tag, data);
  }
  RequestPtr issend(int dst, int tag, std::span<const std::byte> data) {
    return endpoint_.issend(dst, tag, data);
  }
  RequestPtr irecv(int src, int tag, std::span<std::byte> buffer) {
    return endpoint_.irecv(src, tag, buffer);
  }
  bool test(const RequestPtr& r) { return endpoint_.test(r); }
  Status wait(const RequestPtr& r) { return endpoint_.wait(r); }
  Status wait_all(std::span<const RequestPtr> rs) {
    return endpoint_.wait_all(rs);
  }

  // ---- Deadline- and failure-aware variants (liveness layer) ----
  // Return kPeerFailed when the watched peer's heartbeat lease expires,
  // kTimedOut when the deadline passes with peers still alive; see
  // p2p::Endpoint for the cancellation semantics.
  Status wait_for(const RequestPtr& r, std::chrono::milliseconds timeout) {
    return endpoint_.wait_for(r, timeout);
  }
  Result<RecvInfo> recv_for(int src, int tag, std::span<std::byte> buffer,
                            std::chrono::milliseconds timeout) {
    return endpoint_.recv_for(src, tag, buffer, timeout);
  }
  Status send_for(int dst, int tag, std::span<const std::byte> data,
                  std::chrono::milliseconds timeout) {
    return endpoint_.send_for(dst, tag, data, timeout);
  }
  Status ssend_for(int dst, int tag, std::span<const std::byte> data,
                   std::chrono::milliseconds timeout) {
    return endpoint_.ssend_for(dst, tag, data, timeout);
  }
  std::optional<RecvInfo> iprobe(int src, int tag) {
    return endpoint_.iprobe(src, tag);
  }
  RecvInfo probe(int src, int tag) { return endpoint_.probe(src, tag); }
  Status sendrecv(int dst, int send_tag, std::span<const std::byte> out,
                  int src, int recv_tag, std::span<std::byte> in,
                  RecvInfo* info = nullptr) {
    return endpoint_.sendrecv(dst, send_tag, out, src, recv_tag, in, info);
  }

  /// Typed convenience overloads.
  template <typename T>
  Status send_values(int dst, int tag, std::span<const T> values) {
    return send(dst, tag, std::as_bytes(values));
  }
  template <typename T>
  Result<RecvInfo> recv_values(int src, int tag, std::span<T> values) {
    return recv(src, tag, std::as_writable_bytes(values));
  }

  // ---- One-sided (MPI_Win family) ----
  /// Collective window creation (MPI_Win_allocate_shared over CXL, §3.2).
  rma::Window create_window(const std::string& name, std::size_t win_size) {
    return rma::Window::create(*ctx_, name, win_size);
  }

  // ---- Collectives (§3.6) ----
  void barrier() { coll::barrier(endpoint_); }
  void bcast(int root, std::span<std::byte> data) {
    coll::bcast(endpoint_, root, data);
  }
  void reduce(int root, std::span<double> inout, ReduceOp op) {
    coll::reduce(endpoint_, root, inout, op);
  }
  void allreduce(std::span<double> inout, ReduceOp op) {
    coll::allreduce(endpoint_, inout, op);
  }
  void allreduce(std::span<std::int64_t> inout, ReduceOp op) {
    coll::allreduce(endpoint_, inout, op);
  }
  void allgather(std::span<const std::byte> mine, std::span<std::byte> all) {
    coll::allgather(endpoint_, mine, all);
  }
  void alltoall(std::span<const std::byte> send_blocks,
                std::span<std::byte> recv_blocks, std::size_t block) {
    coll::alltoall(endpoint_, send_blocks, recv_blocks, block);
  }
  void reduce_scatter(std::span<const double> data, std::span<double> out,
                      ReduceOp op) {
    coll::reduce_scatter(endpoint_, data, out, op);
  }
  void gather(int root, std::span<const std::byte> mine,
              std::span<std::byte> all) {
    coll::gather(endpoint_, root, mine, all);
  }
  void scatter(int root, std::span<const std::byte> all,
               std::span<std::byte> mine) {
    coll::scatter(endpoint_, root, all, mine);
  }
  void scan(std::span<double> inout, ReduceOp op) {
    coll::scan(endpoint_, inout, op);
  }
  void scan(std::span<std::int64_t> inout, ReduceOp op) {
    coll::scan(endpoint_, inout, op);
  }

  /// The rank's virtual time in nanoseconds (simulated, not wall clock).
  [[nodiscard]] double now_ns() const noexcept {
    return ctx_->clock().now();
  }

  /// Cumulative two-sided communication statistics for this rank.
  [[nodiscard]] const p2p::CommStats& stats() const noexcept {
    return endpoint_.stats();
  }

  /// Coherence-protocol violations recorded so far across the whole
  /// universe (0 when the checker is disabled; see
  /// UniverseConfig::coherence_check and docs/INTERNALS.md §6). Lets a
  /// program or test assert mid-run that its pool traffic is clean.
  [[nodiscard]] std::uint64_t coherence_violations() const noexcept {
    const cxlsim::CoherenceChecker* chk = ctx_->device().checker();
    return chk == nullptr ? 0 : chk->total_violations();
  }

  // ---- Pool recovery (crash → scavenge → respawn) ----

  /// Combined outcome of one Session-level scavenge pass.
  struct RecoveryReport {
    /// Pool-global half (arena slots, arena-lock ticket, barrier slot,
    /// recovery ledger) — exactly-once across survivors.
    runtime::PoolRecovery::ScavengeReport pool;
    /// Endpoint-local half (this rank's inbound ring from the corpse,
    /// abandoned assemblies, doomed requests) — every survivor's own.
    p2p::Endpoint::PeerScavengeReport endpoint;
  };

  /// Reclaim everything a convicted-dead rank left behind, as seen from
  /// this rank: runtime::PoolRecovery::scavenge for the shared pool state
  /// (idempotent across survivors via the on-pool ledger) plus
  /// p2p::Endpoint::scavenge_peer for this rank's endpoint state (every
  /// survivor runs its own). Fails with kInvalidArgument when `dead_rank`
  /// is not convicted, kTimedOut when the arena lock could not be won.
  /// Windows are repaired separately (rma::Window::scavenge_peer) — the
  /// session does not track window lifetimes.
  Result<RecoveryReport> scavenge(
      int dead_rank,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(1000)) {
    runtime::PoolRecovery recovery(*ctx_);
    Result<runtime::PoolRecovery::ScavengeReport> pool =
        recovery.scavenge(dead_rank, timeout);
    if (!pool.is_ok()) {
      return pool.status();
    }
    RecoveryReport report;
    report.pool = pool.value();
    report.endpoint = endpoint_.scavenge_peer(dead_rank);
    return report;
  }

  /// Ranks this session knows to have failed: scripted crashes recorded by
  /// the fault injector plus peers this rank's failure detector declared
  /// dead. Sorted, deduplicated. Empty in a healthy universe.
  [[nodiscard]] std::vector<int> failed_ranks() const {
    std::vector<int> out;
    if (const cxlsim::FaultInjector* fi = ctx_->device().fault_injector()) {
      // The injector records GLOBAL ranks (a shared device serves many
      // tenants); keep only this universe's window, as local ids.
      const int base = ctx_->config().fault_rank_base;
      for (const int global : fi->crashed_ranks()) {
        if (global >= base && global < base + ctx_->nranks()) {
          out.push_back(global - base);
        }
      }
    }
    const auto detected = ctx_->failure_detector().failed_ranks();
    out.insert(out.end(), detected.begin(), detected.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // ---- Communicators (MPI_Comm_split) ----
  /// Collective: every rank calls with its `color`/`key`. Ranks with the
  /// same non-negative color form a communicator, ordered by (key, world
  /// rank). A negative color returns nullopt (MPI_UNDEFINED) — such ranks
  /// still participate in the collective split.
  std::optional<Communicator> split(int color, int key) {
    struct Entry {
      int color;
      int key;
      int world_rank;
    };
    const Entry mine{color, key, rank()};
    std::vector<Entry> entries(static_cast<std::size_t>(size()));
    coll::allgather(endpoint_, std::as_bytes(std::span(&mine, 1)),
                    std::as_writable_bytes(std::span(entries)));
    const int sequence = split_sequence_++;
    if (color < 0) {
      return std::nullopt;
    }
    // Dense index of my color among the distinct non-negative colors.
    std::vector<int> colors;
    for (const Entry& e : entries) {
      if (e.color >= 0) {
        colors.push_back(e.color);
      }
    }
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    const int color_index = static_cast<int>(
        std::lower_bound(colors.begin(), colors.end(), color) -
        colors.begin());
    constexpr int kMaxColorsPerSplit = 64;
    CMPI_EXPECTS(color_index < kMaxColorsPerSplit);
    const int context_id = sequence * kMaxColorsPerSplit + color_index + 1;
    CMPI_EXPECTS(context_id < (1 << 13));

    std::vector<Entry> mates;
    for (const Entry& e : entries) {
      if (e.color == color) {
        mates.push_back(e);
      }
    }
    std::sort(mates.begin(), mates.end(), [](const Entry& a, const Entry& b) {
      return a.key != b.key ? a.key < b.key : a.world_rank < b.world_rank;
    });
    std::vector<int> members;
    int my_index = -1;
    for (const Entry& e : mates) {
      if (e.world_rank == rank()) {
        my_index = static_cast<int>(members.size());
      }
      members.push_back(e.world_rank);
    }
    CMPI_ENSURES(my_index >= 0);
    return Communicator(endpoint_, context_id, std::move(members), my_index);
  }

 private:
  runtime::RankCtx* ctx_;
  p2p::Endpoint endpoint_;
  int split_sequence_ = 0;
};

}  // namespace cmpi
