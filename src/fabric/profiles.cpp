#include "fabric/profiles.hpp"

#include <cmath>

namespace cmpi::fabric {

// Calibration notes (targets from the paper):
//   raw one-way latency      = send_overhead + wire_latency + recv_overhead
//   MPI two-sided latency    = raw + 2 * mpi_msg_overhead
//   MPI one-sided latency    = two-sided + 2 * rma_sync_overhead
//   single-stream large-message bandwidth ≈ mtu / per_segment_overhead
//   aggregate bandwidth cap  = wire_bytes_per_ns
NicProfile tcp_ethernet() {
  NicProfile p;
  p.name = "TCP over Ethernet";
  p.loggp.send_overhead = 4000;        // kernel TCP stack, raw 16 us total
  p.loggp.wire_latency = 8000;
  p.loggp.recv_overhead = 4000;
  p.loggp.wire_bytes_per_ns = 0.1178;  // 117.8 MB/s (Table 1)
  p.loggp.mtu = 1500;
  p.loggp.per_segment_overhead = 1000;  // software packetization
  p.mpi_msg_overhead = 72000;   // OSU two-sided ≈ 160 us (§4.2)
  p.rma_sync_overhead = 290000; // OSU one-sided ≈ 630 us (§4.2)
  return p;
}

NicProfile tcp_cx6dx() {
  NicProfile p;
  p.name = "TCP over Mellanox CX-6 Dx";
  p.loggp.send_overhead = 4500;        // raw 18 us total
  p.loggp.wire_latency = 9000;
  p.loggp.recv_overhead = 4500;
  p.loggp.wire_bytes_per_ns = 11.5;    // 11.5 GB/s (Table 1)
  p.loggp.mtu = 1500;
  p.loggp.per_segment_overhead = 860;  // ~1.7 GB/s single-stream TCP
  p.mpi_msg_overhead = 18500;   // OSU two-sided ≈ 55 us (§4.2)
  p.rma_sync_overhead = 475000; // OSU one-sided ≈ 620 us (§4.2)
  return p;
}

NicProfile rocev2_cx6dx() {
  NicProfile p;
  p.name = "RoCEv2 over Mellanox CX-6 Dx";
  p.loggp.send_overhead = 400;         // kernel bypass, raw 1.6 us
  p.loggp.wire_latency = 900;
  p.loggp.recv_overhead = 300;
  p.loggp.wire_bytes_per_ns = 10.8;
  p.loggp.mtu = 4096;
  p.loggp.per_segment_overhead = 50;   // NIC segmentation
  p.mpi_msg_overhead = 1500;
  p.rma_sync_overhead = 3000;          // native RDMA, no emulation
  return p;
}

NicProfile rocev2_cx3() {
  NicProfile p;
  p.name = "RoCEv2 over Mellanox CX-3";
  p.loggp.send_overhead = 500;         // raw ~2 us
  p.loggp.wire_latency = 1100;
  p.loggp.recv_overhead = 400;
  p.loggp.wire_bytes_per_ns = 7.0;
  p.loggp.mtu = 4096;
  p.loggp.per_segment_overhead = 80;
  p.mpi_msg_overhead = 2000;
  p.rma_sync_overhead = 4000;
  return p;
}

namespace {

Status require_finite_nonneg(const char* field, double v) {
  if (!std::isfinite(v)) {
    return status::invalid_argument(std::string("NicProfile: ") + field +
                                    " must be finite");
  }
  if (v < 0) {
    return status::invalid_argument(std::string("NicProfile: ") + field +
                                    " must be >= 0, got " +
                                    std::to_string(v));
  }
  return Status::ok();
}

}  // namespace

Status validate(const NicProfile& profile) {
  const auto& g = profile.loggp;
  if (auto s = require_finite_nonneg("send_overhead", g.send_overhead);
      !s.is_ok()) {
    return s;
  }
  if (auto s = require_finite_nonneg("wire_latency", g.wire_latency); !s.is_ok()) {
    return s;
  }
  if (auto s = require_finite_nonneg("recv_overhead", g.recv_overhead);
      !s.is_ok()) {
    return s;
  }
  if (auto s = require_finite_nonneg("per_segment_overhead",
                                     g.per_segment_overhead);
      !s.is_ok()) {
    return s;
  }
  if (auto s = require_finite_nonneg("per_message_gap", g.per_message_gap);
      !s.is_ok()) {
    return s;
  }
  if (!std::isfinite(g.wire_bytes_per_ns) || g.wire_bytes_per_ns <= 0) {
    return status::invalid_argument(
        "NicProfile: wire_bytes_per_ns must be finite and > 0, got " +
        std::to_string(g.wire_bytes_per_ns));
  }
  if (g.mtu == 0) {
    return status::invalid_argument("NicProfile: mtu must be > 0");
  }
  if (auto s = require_finite_nonneg("mpi_msg_overhead",
                                     profile.mpi_msg_overhead);
      !s.is_ok()) {
    return s;
  }
  if (auto s = require_finite_nonneg("rma_sync_overhead",
                                     profile.rma_sync_overhead);
      !s.is_ok()) {
    return s;
  }
  if (profile.sndbuf == 0) {
    return status::invalid_argument("NicProfile: sndbuf must be > 0");
  }
  return Status::ok();
}

Result<NicProfile> make_profile(const std::string& name,
                                simtime::Ns one_way_latency_ns,
                                double bytes_per_ns,
                                simtime::Ns mpi_msg_overhead) {
  if (!std::isfinite(one_way_latency_ns) || one_way_latency_ns < 0) {
    return status::invalid_argument(
        "make_profile: one-way latency must be finite and >= 0, got " +
        std::to_string(one_way_latency_ns));
  }
  if (!std::isfinite(bytes_per_ns) || bytes_per_ns <= 0) {
    return status::invalid_argument(
        "make_profile: bandwidth must be finite and > 0, got " +
        std::to_string(bytes_per_ns));
  }
  if (!std::isfinite(mpi_msg_overhead) || mpi_msg_overhead < 0) {
    return status::invalid_argument(
        "make_profile: mpi_msg_overhead must be finite and >= 0, got " +
        std::to_string(mpi_msg_overhead));
  }
  NicProfile p;
  p.name = name;
  p.loggp.send_overhead = one_way_latency_ns / 4;
  p.loggp.wire_latency = one_way_latency_ns / 2;
  p.loggp.recv_overhead = one_way_latency_ns / 4;
  p.loggp.wire_bytes_per_ns = bytes_per_ns;
  p.loggp.mtu = 4096;
  p.loggp.per_segment_overhead = 0;
  p.mpi_msg_overhead = mpi_msg_overhead;
  if (auto s = validate(p); !s.is_ok()) {
    return s;
  }
  return p;
}

NicProfile infiniband_cx6() {
  NicProfile p;
  p.name = "InfiniBand over Mellanox CX-6";
  p.loggp.send_overhead = 150;         // raw ~0.6 us
  p.loggp.wire_latency = 300;
  p.loggp.recv_overhead = 150;
  p.loggp.wire_bytes_per_ns = 25.0;
  p.loggp.mtu = 4096;
  p.loggp.per_segment_overhead = 30;
  p.mpi_msg_overhead = 800;
  p.rma_sync_overhead = 1500;
  return p;
}

}  // namespace cmpi::fabric
