#include "fabric/profiles.hpp"

namespace cmpi::fabric {

// Calibration notes (targets from the paper):
//   raw one-way latency      = send_overhead + wire_latency + recv_overhead
//   MPI two-sided latency    = raw + 2 * mpi_msg_overhead
//   MPI one-sided latency    = two-sided + 2 * rma_sync_overhead
//   single-stream large-message bandwidth ≈ mtu / per_segment_overhead
//   aggregate bandwidth cap  = wire_bytes_per_ns
NicProfile tcp_ethernet() {
  NicProfile p;
  p.name = "TCP over Ethernet";
  p.loggp.send_overhead = 4000;        // kernel TCP stack, raw 16 us total
  p.loggp.wire_latency = 8000;
  p.loggp.recv_overhead = 4000;
  p.loggp.wire_bytes_per_ns = 0.1178;  // 117.8 MB/s (Table 1)
  p.loggp.mtu = 1500;
  p.loggp.per_segment_overhead = 1000;  // software packetization
  p.mpi_msg_overhead = 72000;   // OSU two-sided ≈ 160 us (§4.2)
  p.rma_sync_overhead = 290000; // OSU one-sided ≈ 630 us (§4.2)
  return p;
}

NicProfile tcp_cx6dx() {
  NicProfile p;
  p.name = "TCP over Mellanox CX-6 Dx";
  p.loggp.send_overhead = 4500;        // raw 18 us total
  p.loggp.wire_latency = 9000;
  p.loggp.recv_overhead = 4500;
  p.loggp.wire_bytes_per_ns = 11.5;    // 11.5 GB/s (Table 1)
  p.loggp.mtu = 1500;
  p.loggp.per_segment_overhead = 860;  // ~1.7 GB/s single-stream TCP
  p.mpi_msg_overhead = 18500;   // OSU two-sided ≈ 55 us (§4.2)
  p.rma_sync_overhead = 475000; // OSU one-sided ≈ 620 us (§4.2)
  return p;
}

NicProfile rocev2_cx6dx() {
  NicProfile p;
  p.name = "RoCEv2 over Mellanox CX-6 Dx";
  p.loggp.send_overhead = 400;         // kernel bypass, raw 1.6 us
  p.loggp.wire_latency = 900;
  p.loggp.recv_overhead = 300;
  p.loggp.wire_bytes_per_ns = 10.8;
  p.loggp.mtu = 4096;
  p.loggp.per_segment_overhead = 50;   // NIC segmentation
  p.mpi_msg_overhead = 1500;
  p.rma_sync_overhead = 3000;          // native RDMA, no emulation
  return p;
}

NicProfile rocev2_cx3() {
  NicProfile p;
  p.name = "RoCEv2 over Mellanox CX-3";
  p.loggp.send_overhead = 500;         // raw ~2 us
  p.loggp.wire_latency = 1100;
  p.loggp.recv_overhead = 400;
  p.loggp.wire_bytes_per_ns = 7.0;
  p.loggp.mtu = 4096;
  p.loggp.per_segment_overhead = 80;
  p.mpi_msg_overhead = 2000;
  p.rma_sync_overhead = 4000;
  return p;
}

NicProfile infiniband_cx6() {
  NicProfile p;
  p.name = "InfiniBand over Mellanox CX-6";
  p.loggp.send_overhead = 150;         // raw ~0.6 us
  p.loggp.wire_latency = 300;
  p.loggp.recv_overhead = 150;
  p.loggp.wire_bytes_per_ns = 25.0;
  p.loggp.mtu = 4096;
  p.loggp.per_segment_overhead = 30;
  p.mpi_msg_overhead = 800;
  p.rma_sync_overhead = 1500;
  return p;
}

}  // namespace cmpi::fabric
