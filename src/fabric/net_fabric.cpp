#include "fabric/net_fabric.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

#include "common/contracts.hpp"
#include "common/hash.hpp"

namespace cmpi::fabric {

NetFabric::NetFabric(const NetConfig& config) : config_(config) {
  CMPI_EXPECTS(config.nodes > 0 && config.ranks_per_node > 0);
  for (unsigned a = 0; a < config.nodes; ++a) {
    for (unsigned b = 0; b < config.nodes; ++b) {
      if (a != b) {
        wires_.emplace(std::make_pair(static_cast<int>(a),
                                      static_cast<int>(b)),
                       std::make_unique<simtime::LogGPModel>(config.profile
                                                                 .loggp));
      }
    }
  }
}

NetFabric::Pair& NetFabric::pair(int src, int dst) {
  return pairs_[{src, dst}];  // caller holds mutex_
}

simtime::Ns NetFabric::transit(int src_rank, int dst_rank, simtime::Ns start,
                               std::size_t bytes) {
  const int src_node = node_of(src_rank);
  const int dst_node = node_of(dst_rank);
  if (src_node == dst_node) {
    return start + config_.intra_node_latency +
           static_cast<double>(bytes) / config_.intra_node_bytes_per_ns;
  }
  return wires_.at({src_node, dst_node})->send(start, bytes).delivered;
}

void NetFabric::send(NetCtx& ctx, int dst, int tag,
                     std::span<const std::byte> data) {
  CMPI_EXPECTS(dst >= 0 && dst < static_cast<int>(config_.nranks()));
  const int me = ctx.rank();
  // Flow control: block while the pair's unconsumed bytes exceed sndbuf.
  // A sender that had to wait has, in effect, synchronized with the
  // receiver's progress — propagate that in virtual time.
  bool blocked = false;
  doorbell_.wait_until([&] {
    std::lock_guard lock(mutex_);
    if (pair(me, dst).inflight_bytes + data.size() <=
        config_.profile.sndbuf) {
      return true;
    }
    blocked = true;
    return false;
  });
  if (blocked) {
    std::lock_guard lock(mutex_);
    ctx.clock().observe(pair(me, dst).consumed_stamp);
  }

  const int src_node = node_of(me);
  const int dst_node = node_of(dst);
  Msg msg;
  msg.tag = tag;
  msg.data.assign(data.begin(), data.end());

  // MPI software cost + packetization on the sender CPU.
  ctx.clock().advance(config_.profile.mpi_msg_overhead);
  if (src_node == dst_node) {
    ctx.clock().advance(config_.intra_node_latency / 2);
    msg.delivered = ctx.clock().now() + config_.intra_node_latency / 2 +
                    static_cast<double>(data.size()) /
                        config_.intra_node_bytes_per_ns;
  } else {
    simtime::LogGPModel& wire = *wires_.at({src_node, dst_node});
    const simtime::MessageTiming t = wire.send(ctx.clock().now(),
                                               data.size());
    ctx.clock().observe(t.sender_done);  // CPU free after hand-off to NIC
    msg.delivered = t.delivered;
  }

  {
    std::lock_guard lock(mutex_);
    Pair& p = pair(me, dst);
    p.inflight_bytes += msg.data.size();
    p.queue.push_back(std::move(msg));
  }
  doorbell_.ring();
}

std::size_t NetFabric::recv(NetCtx& ctx, int src, int tag,
                            std::span<std::byte> data) {
  CMPI_EXPECTS(src >= 0 && src < static_cast<int>(config_.nranks()));
  const int me = ctx.rank();
  Msg msg;
  doorbell_.wait_until([&] {
    std::lock_guard lock(mutex_);
    Pair& p = pair(src, me);
    const auto it = std::find_if(p.queue.begin(), p.queue.end(),
                                 [&](const Msg& m) { return m.tag == tag; });
    if (it == p.queue.end()) {
      return false;
    }
    msg = std::move(*it);
    p.queue.erase(it);
    CMPI_ASSERT(p.inflight_bytes >= msg.data.size());
    p.inflight_bytes -= msg.data.size();
    return true;
  });
  // Data visible at delivery; then receiver-side CPU costs.
  ctx.clock().observe(msg.delivered);
  ctx.clock().advance(config_.profile.loggp.recv_overhead +
                      config_.profile.mpi_msg_overhead);
  {
    std::lock_guard lock(mutex_);
    Pair& p = pair(src, me);
    p.consumed_stamp = std::max(p.consumed_stamp, ctx.clock().now());
  }
  const std::size_t copy = std::min(data.size(), msg.data.size());
  if (copy > 0) {
    std::memcpy(data.data(), msg.data.data(), copy);
  }
  doorbell_.ring();  // wake flow-controlled senders
  return msg.data.size();
}

bool NetFabric::poll(int me, int src, int tag) {
  std::lock_guard lock(mutex_);
  Pair& p = pair(src, me);
  return std::any_of(p.queue.begin(), p.queue.end(),
                     [&](const Msg& m) { return m.tag == tag; });
}

std::vector<std::byte>& NetFabric::window_memory(const std::string& name,
                                                 std::size_t size) {
  std::lock_guard lock(window_mutex_);
  auto& buffer = windows_[name];
  if (buffer.size() < size) {
    buffer.resize(size);
  }
  return buffer;
}

// ---------- NetCtx ----------

void NetCtx::barrier() {
  // Two-phase virtual-time barrier: deposit clocks, then take the max.
  (*clock_board_)[static_cast<std::size_t>(rank_)] = clock_.now();
  sync_->arrive_and_wait();
  const simtime::Ns max_clock =
      *std::max_element(clock_board_->begin(), clock_board_->end());
  sync_->arrive_and_wait();
  clock_.observe(max_clock);
}

// ---------- NetUniverse ----------

NetUniverse::NetUniverse(const NetConfig& config)
    : config_(config), fabric_(config) {}

void NetUniverse::run(const std::function<void(NetCtx&)>& fn) {
  const unsigned nranks = config_.nranks();
  std::barrier<> sync(static_cast<std::ptrdiff_t>(nranks));
  std::vector<simtime::Ns> clock_board(nranks, 0);
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  threads.reserve(nranks);
  for (unsigned r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      NetCtx ctx;
      ctx.rank_ = static_cast<int>(r);
      ctx.nranks_ = static_cast<int>(nranks);
      ctx.fabric_ = &fabric_;
      ctx.sync_ = &sync;
      ctx.clock_board_ = &clock_board;
      try {
        fn(ctx);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        fabric_.doorbell().ring();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

// ---------- NetWindow ----------

namespace {
// Tag spaces: windows hash their name into a disjoint region far above
// user tags. Sub-tags: +0 post, +1 complete, +2 data-ack (reserved).
constexpr int kWindowTagBase = 1 << 24;
}  // namespace

NetWindow::NetWindow(NetCtx& ctx, const std::string& name,
                     std::size_t win_size)
    : ctx_(&ctx),
      name_(name),
      win_size_(win_size),
      tag_base_(kWindowTagBase +
                static_cast<int>(hash_string(name) % (1 << 20)) * 8) {
  memory_ = &ctx.fabric().window_memory(
      name, win_size * static_cast<std::size_t>(ctx.nranks()));
  ctx_->barrier();
}

std::span<std::byte> NetWindow::segment(int target) {
  return std::span<std::byte>(*memory_).subspan(
      static_cast<std::size_t>(target) * win_size_, win_size_);
}

void NetWindow::put(int target, std::uint64_t disp,
                    std::span<const std::byte> data) {
  CMPI_EXPECTS(disp + data.size() <= win_size_);
  // Functional: write through the shared buffer.
  {
    std::lock_guard lock(ctx_->fabric().window_mutex());
    std::memcpy(segment(target).data() + disp, data.data(), data.size());
  }
  // Timing: an RMA packet from origin to target.
  const auto& profile = ctx_->fabric().config().profile;
  ctx_->clock().advance(profile.mpi_msg_overhead);
  const simtime::Ns delivered = ctx_->fabric().transit(
      ctx_->rank(), target, ctx_->clock().now(), data.size());
  // Origin is free after injection, but remembers the delivery horizon so
  // complete() can wait for it.
  pending_delivery_ = std::max(pending_delivery_, delivered);
}

void NetWindow::get(int target, std::uint64_t disp,
                    std::span<std::byte> out) {
  CMPI_EXPECTS(disp + out.size() <= win_size_);
  {
    std::lock_guard lock(ctx_->fabric().window_mutex());
    std::memcpy(out.data(), segment(target).data() + disp, out.size());
  }
  // Request packet + target progress + response carrying the data.
  const auto& profile = ctx_->fabric().config().profile;
  ctx_->clock().advance(profile.mpi_msg_overhead);
  const simtime::Ns request = ctx_->fabric().transit(
      ctx_->rank(), target, ctx_->clock().now(), 64);
  const simtime::Ns response = ctx_->fabric().transit(
      target, ctx_->rank(), request + profile.rma_sync_overhead, out.size());
  ctx_->clock().observe(response);
}

void NetWindow::write_local(std::uint64_t disp,
                            std::span<const std::byte> data) {
  CMPI_EXPECTS(disp + data.size() <= win_size_);
  std::lock_guard lock(ctx_->fabric().window_mutex());
  std::memcpy(segment(ctx_->rank()).data() + disp, data.data(), data.size());
}

void NetWindow::read_local(std::uint64_t disp, std::span<std::byte> out) {
  CMPI_EXPECTS(disp + out.size() <= win_size_);
  std::lock_guard lock(ctx_->fabric().window_mutex());
  std::memcpy(out.data(), segment(ctx_->rank()).data() + disp, out.size());
}

void NetWindow::post(std::span<const int> origins) {
  for (const int origin : origins) {
    ctx_->send(origin, tag_base_ + 0, {});
  }
}

void NetWindow::start(std::span<const int> targets) {
  std::byte dummy[1];
  for (const int target : targets) {
    (void)ctx_->recv(target, tag_base_ + 0, {dummy, 0});
  }
}

void NetWindow::complete(std::span<const int> targets) {
  // All RMA packets must be on the wire before the completion message.
  ctx_->clock().observe(pending_delivery_);
  pending_delivery_ = 0;
  for (const int target : targets) {
    ctx_->send(target, tag_base_ + 1, {});
  }
}

void NetWindow::wait(std::span<const int> origins) {
  const auto& profile = ctx_->fabric().config().profile;
  std::byte dummy[1];
  for (const int origin : origins) {
    (void)ctx_->recv(origin, tag_base_ + 1, {dummy, 0});
    // Target-side progress engine services the epoch's RMA packets.
    ctx_->clock().advance(profile.rma_sync_overhead);
  }
}

}  // namespace cmpi::fabric
