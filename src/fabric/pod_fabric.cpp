#include "fabric/pod_fabric.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace cmpi::fabric {

PodFabric::PodFabric(const PodFabricConfig& config) : config_(config) {
  const int pods = config_.topo.pods;
  inboxes_.resize(static_cast<std::size_t>(config_.topo.nranks()));
  egress_.reserve(static_cast<std::size_t>(pods));
  router_busy_.reserve(static_cast<std::size_t>(pods));
  for (int p = 0; p < pods; ++p) {
    egress_.push_back(
        std::make_unique<simtime::LogGPModel>(config_.profile.loggp));
    // Rate 1.0: reservations are denominated directly in nanoseconds of
    // router CPU/NIC-injection time.
    router_busy_.push_back(std::make_unique<simtime::BusyResource>(1.0));
  }
}

Result<std::unique_ptr<PodFabric>> PodFabric::create(
    const PodFabricConfig& config) {
  if (auto s = config.topo.validate(); !s.is_ok()) {
    return s;
  }
  if (auto s = validate(config.profile); !s.is_ok()) {
    return s;
  }
  if (!std::isfinite(config.pod_hop_latency) || config.pod_hop_latency < 0) {
    return status::invalid_argument(
        "PodFabric: pod_hop_latency must be finite and >= 0");
  }
  if (!std::isfinite(config.pod_hop_bytes_per_ns) ||
      config.pod_hop_bytes_per_ns <= 0) {
    return status::invalid_argument(
        "PodFabric: pod_hop_bytes_per_ns must be finite and > 0");
  }
  if (!std::isfinite(config.router_fwd_ns) || config.router_fwd_ns < 0) {
    return status::invalid_argument(
        "PodFabric: router_fwd_ns must be finite and >= 0");
  }
  return std::unique_ptr<PodFabric>(new PodFabric(config));
}

bool PodFabric::router_down(int pod) const {
  return router_down_ && router_down_(pod);
}

void PodFabric::set_router_down_probe(std::function<bool(int pod)> probe) {
  router_down_ = std::move(probe);
}

Status PodFabric::send(simtime::VClock& clock, int src, int dst, int tag,
                       std::span<const std::byte> data) {
  const auto& topo = config_.topo;
  CMPI_EXPECTS(topo.contains(src));
  CMPI_EXPECTS(topo.contains(dst));
  CMPI_EXPECTS(!topo.same_pod(src, dst));
  const int spod = topo.pod_of(src);
  const int dpod = topo.pod_of(dst);
  if (router_down(spod)) {
    return status::peer_failed("pod " + std::to_string(spod) +
                               " router failed (egress)");
  }
  if (router_down(dpod)) {
    return status::peer_failed("pod " + std::to_string(dpod) +
                               " router failed (ingress)");
  }

  const simtime::Ns sent = clock.now();
  clock.advance(config_.profile.mpi_msg_overhead);
  const auto fwd_cost = static_cast<std::size_t>(
      config_.router_fwd_ns + hop_transfer_ns(data.size()));
  if (!topo.is_router(src)) {
    // Stage the payload through the pool to the router.
    clock.advance(config_.pod_hop_latency + hop_transfer_ns(data.size()));
  }
  const simtime::Ns ready =
      router_busy_[static_cast<std::size_t>(spod)]->reserve(clock.now(),
                                                            fwd_cost);
  if (topo.is_router(src)) {
    clock.observe(ready);
  }
  const simtime::MessageTiming t =
      egress_[static_cast<std::size_t>(spod)]->send(ready, data.size());
  if (topo.is_router(src)) {
    clock.observe(t.sender_done);
  }
  simtime::Ns delivered = t.delivered;
  if (!topo.is_router(dst)) {
    delivered = router_busy_[static_cast<std::size_t>(dpod)]->reserve(
                    delivered, fwd_cost) +
                config_.pod_hop_latency;
  }

  {
    std::lock_guard lock(mutex_);
    Msg m;
    m.src = src;
    m.tag = tag;
    m.seq = next_seq_++;
    m.sent = sent;
    m.delivered = delivered;
    m.data.assign(data.begin(), data.end());
    inboxes_[static_cast<std::size_t>(dst)].push_back(std::move(m));
  }
  CMPI_OBS_COUNT("pods.fabric.messages", 1);
  CMPI_OBS_COUNT("pods.fabric.bytes", data.size());
  doorbell_.ring();
  return Status::ok();
}

Result<PodRecvInfo> PodFabric::recv(simtime::VClock& clock, int me, int src,
                                    int tag, std::span<std::byte> data) {
  const auto& topo = config_.topo;
  CMPI_EXPECTS(topo.contains(me));
  CMPI_EXPECTS(src < 0 || topo.contains(src));

  Msg got;
  bool have = false;
  bool failed = false;
  doorbell_.wait_until([&] {
    std::lock_guard lock(mutex_);
    auto& box = inboxes_[static_cast<std::size_t>(me)];
    auto best = box.end();
    for (auto it = box.begin(); it != box.end(); ++it) {
      if (src >= 0 && it->src != src) {
        continue;
      }
      if (tag >= 0 && it->tag != tag) {
        continue;
      }
      if (best == box.end() || it->delivered < best->delivered ||
          (it->delivered == best->delivered && it->seq < best->seq)) {
        best = it;
      }
    }
    if (best != box.end()) {
      got = std::move(*best);
      box.erase(best);
      have = true;
      return true;
    }
    // Nothing queued: fail only for a sourced recv whose path is dead.
    // In-flight messages already crossed the boundary and stay
    // deliverable; a wildcard recv keeps waiting for live sources.
    if (src >= 0 &&
        (router_down(topo.pod_of(src)) || router_down(topo.pod_of(me)))) {
      failed = true;
      return true;
    }
    return false;
  });
  if (!have) {
    CMPI_OBS_FLIGHT("pod router failed");
    return status::peer_failed("pod router on the path from rank " +
                               std::to_string(src) + " failed");
  }

  clock.observe(got.delivered);
  clock.advance(config_.profile.loggp.recv_overhead +
                config_.profile.mpi_msg_overhead);
  const std::size_t n = std::min(data.size(), got.data.size());
  std::copy_n(got.data.begin(), n, data.begin());
  CMPI_OBS_HIST("pods.fabric.transit_ns",
                static_cast<std::uint64_t>(got.delivered - got.sent));
  return PodRecvInfo{got.src, got.tag, got.data.size()};
}

bool PodFabric::poll(int me, int src, int tag) {
  std::lock_guard lock(mutex_);
  const auto& box = inboxes_[static_cast<std::size_t>(me)];
  return std::any_of(box.begin(), box.end(), [&](const Msg& m) {
    return (src < 0 || m.src == src) && (tag < 0 || m.tag == tag);
  });
}

void PodFabric::reset_timing() {
  for (auto& e : egress_) {
    e->reset();
  }
  for (auto& r : router_busy_) {
    r->reset();
  }
}

}  // namespace cmpi::fabric
