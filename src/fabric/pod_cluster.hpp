// A cluster of CXL pods: N runtime::Universes (one shared pool each)
// stitched together by a PodFabric through per-pod router ranks.
//
// PodCluster owns one Universe per pod (each with its own DaxDevice — the
// pools are physically separate; that is the point) and a PodFabric for
// the cross-pod tier. run(fn) starts every pod's rank threads and hands
// each rank a PodCtx carrying both tiers: the pod-local p2p::Endpoint
// (CXL pool) and the fabric (router path). Global ranks are pod-major
// (runtime::PodTopology).
//
// Fault containment: each pod's fault plan addresses global rank ids
// (fault_rank_base = pod * ranks_per_pod), crashes are absorbed at the
// Universe rank boundary as today, and the fabric's router-down probe is
// wired to the owning pod's failure record — so a dead router fails
// cross-pod traffic fast while sibling pods (separate devices, separate
// failure domains) never notice.
#pragma once

#include <barrier>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "fabric/pod_fabric.hpp"
#include "p2p/endpoint.hpp"
#include "runtime/topology.hpp"
#include "runtime/universe.hpp"

namespace cmpi::fabric {

struct PodClusterConfig {
  runtime::PodTopology topo;
  /// Cross-pod NIC + pool-hop + router costs (see PodFabricConfig).
  NicProfile profile = tcp_cx6dx();
  simtime::Ns pod_hop_latency = 2200;
  double pod_hop_bytes_per_ns = 9.5;
  simtime::Ns router_fwd_ns = 3000;
  /// Template for every pod's Universe. nranks() must equal
  /// topo.ranks_per_pod; shared_device must be empty (each pod gets its
  /// own pool device); fault_plan/fault_rank_base are overridden per pod.
  runtime::UniverseConfig pod;
  /// Per-pod fault plans, keyed by pod index. Crash/poison entries
  /// address GLOBAL rank ids.
  std::map<int, cxlsim::FaultPlan> fault_plans;
};

class PodCluster;

/// Everything one rank of a pod cluster needs: the pod-local runtime
/// context + endpoint, the cross-pod fabric, and its global address.
class PodCtx {
 public:
  [[nodiscard]] runtime::RankCtx& local() noexcept { return *rc_; }
  [[nodiscard]] p2p::Endpoint& ep() noexcept { return *ep_; }
  [[nodiscard]] PodFabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] const runtime::PodTopology& topology() const noexcept {
    return fabric_->topology();
  }
  [[nodiscard]] simtime::VClock& clock() noexcept { return rc_->clock(); }

  [[nodiscard]] int grank() const noexcept { return grank_; }
  [[nodiscard]] int nranks() const noexcept {
    return fabric_->topology().nranks();
  }
  [[nodiscard]] int pod() const noexcept {
    return fabric_->topology().pod_of(grank_);
  }
  [[nodiscard]] int local_rank() const noexcept {
    return fabric_->topology().local_of(grank_);
  }
  [[nodiscard]] bool is_router() const noexcept {
    return fabric_->topology().is_router(grank_);
  }

  /// Cross-pod message through the routers (pods must differ).
  Status fabric_send(int dst_grank, int tag, std::span<const std::byte> data) {
    return fabric_->send(rc_->clock(), grank_, dst_grank, tag, data);
  }
  /// Cross-pod receive; src_grank may be kAnyPodSource.
  Result<PodRecvInfo> fabric_recv(int src_grank, int tag,
                                  std::span<std::byte> data) {
    return fabric_->recv(rc_->clock(), grank_, src_grank, tag, data);
  }

  /// Virtual-time barrier across ALL ranks of ALL pods (functional sync +
  /// clock max). Fault-free paths only: a crashed rank never arrives.
  void cluster_barrier();

 private:
  friend class PodCluster;
  PodCtx() = default;

  runtime::RankCtx* rc_ = nullptr;
  p2p::Endpoint* ep_ = nullptr;
  PodFabric* fabric_ = nullptr;
  int grank_ = 0;
  std::barrier<>* sync_ = nullptr;
  std::vector<simtime::Ns>* clock_board_ = nullptr;
};

class PodCluster {
 public:
  /// Validates topology, profile, and pod-template geometry
  /// (kInvalidArgument) and publishes the topology descriptor to the obs
  /// gauges (topology.pods / ranks_per_pod / router_local_rank / nranks).
  static Result<std::unique_ptr<PodCluster>> create(
      const PodClusterConfig& config);

  /// One thread per rank across every pod; blocks until all return.
  /// Scripted rank crashes are absorbed per pod (runtime::Universe); the
  /// first other exception is re-thrown after all pods finish.
  void run(const std::function<void(PodCtx&)>& fn);

  [[nodiscard]] const runtime::PodTopology& topology() const noexcept {
    return config_.topo;
  }
  [[nodiscard]] PodFabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] runtime::Universe& pod(int p) noexcept {
    return *universes_[static_cast<std::size_t>(p)];
  }

  /// Failed ranks across all pods, as GLOBAL rank ids (sorted).
  [[nodiscard]] std::vector<int> failed_ranks() const;

  /// Respawn a crashed rank (global id) for the next run() epoch; see
  /// runtime::Universe::respawn.
  void respawn(int grank);

 private:
  explicit PodCluster(const PodClusterConfig& config);

  PodClusterConfig config_;
  std::vector<std::unique_ptr<runtime::Universe>> universes_;
  std::unique_ptr<PodFabric> fabric_;
};

}  // namespace cmpi::fabric
