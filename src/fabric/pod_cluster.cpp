#include "fabric/pod_cluster.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace cmpi::fabric {

void PodCtx::cluster_barrier() {
  // NetCtx-style two-phase clock board: deposit, sync, take the max, sync
  // (so no one overwrites the board before everyone has read it).
  (*clock_board_)[static_cast<std::size_t>(grank_)] = rc_->clock().now();
  sync_->arrive_and_wait();
  simtime::Ns horizon = 0;
  for (const simtime::Ns t : *clock_board_) {
    horizon = std::max(horizon, t);
  }
  sync_->arrive_and_wait();
  rc_->clock().observe(horizon);
}

PodCluster::PodCluster(const PodClusterConfig& config) : config_(config) {}

Result<std::unique_ptr<PodCluster>> PodCluster::create(
    const PodClusterConfig& config) {
  PodFabricConfig fc;
  fc.topo = config.topo;
  fc.profile = config.profile;
  fc.pod_hop_latency = config.pod_hop_latency;
  fc.pod_hop_bytes_per_ns = config.pod_hop_bytes_per_ns;
  fc.router_fwd_ns = config.router_fwd_ns;
  auto fabric = PodFabric::create(fc);
  if (!fabric.is_ok()) {
    return fabric.status();
  }
  if (static_cast<int>(config.pod.nranks()) != config.topo.ranks_per_pod) {
    return status::invalid_argument(
        "PodCluster: pod template has " + std::to_string(config.pod.nranks()) +
        " ranks but topology says ranks_per_pod = " +
        std::to_string(config.topo.ranks_per_pod));
  }
  if (config.pod.shared_device != nullptr) {
    return status::invalid_argument(
        "PodCluster: pods own their pool devices; pod.shared_device must be "
        "empty");
  }
  for (const auto& [p, plan] : config.fault_plans) {
    if (p < 0 || p >= config.topo.pods) {
      return status::invalid_argument("PodCluster: fault plan for pod " +
                                      std::to_string(p) +
                                      " outside the topology");
    }
  }

  auto cluster = std::unique_ptr<PodCluster>(new PodCluster(config));
  cluster->fabric_ = std::move(fabric).value();
  cluster->universes_.reserve(static_cast<std::size_t>(config.topo.pods));
  for (int p = 0; p < config.topo.pods; ++p) {
    runtime::UniverseConfig u = config.pod;
    u.fault_rank_base = config.topo.global_rank(p, 0);
    if (const auto it = config.fault_plans.find(p);
        it != config.fault_plans.end()) {
      u.fault_plan = it->second;
    }
    cluster->universes_.push_back(std::make_unique<runtime::Universe>(u));
  }

  // Router-down probe: a pod's router is down when its own universe has
  // recorded the router's local rank as failed (injector or detector).
  const runtime::PodTopology topo = config.topo;
  std::vector<runtime::Universe*> pods;
  pods.reserve(cluster->universes_.size());
  for (const auto& u : cluster->universes_) {
    pods.push_back(u.get());
  }
  cluster->fabric_->set_router_down_probe([topo, pods](int pod) {
    const auto failed = pods[static_cast<std::size_t>(pod)]->failed_ranks();
    return std::find(failed.begin(), failed.end(), topo.router_local) !=
           failed.end();
  });

  // Publish the topology descriptor: high-water gauges, so it lands in
  // every metrics snapshot, the bench telemetry digest, and flight dumps.
  CMPI_OBS_GAUGE_MAX("topology.pods",
                     static_cast<std::uint64_t>(config.topo.pods));
  CMPI_OBS_GAUGE_MAX("topology.ranks_per_pod",
                     static_cast<std::uint64_t>(config.topo.ranks_per_pod));
  CMPI_OBS_GAUGE_MAX("topology.router_local_rank",
                     static_cast<std::uint64_t>(config.topo.router_local));
  CMPI_OBS_GAUGE_MAX("topology.nranks",
                     static_cast<std::uint64_t>(config.topo.nranks()));
  return cluster;
}

void PodCluster::run(const std::function<void(PodCtx&)>& fn) {
  const int pods = config_.topo.pods;
  const int nranks = config_.topo.nranks();
  std::barrier<> sync(nranks);
  std::vector<simtime::Ns> clock_board(static_cast<std::size_t>(nranks), 0);

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> hosts;
  hosts.reserve(static_cast<std::size_t>(pods));
  for (int p = 0; p < pods; ++p) {
    hosts.emplace_back([&, p] {
      try {
        universes_[static_cast<std::size_t>(p)]->run(
            [&](runtime::RankCtx& rc) {
              p2p::Endpoint ep = p2p::Endpoint::create(rc);
              PodCtx ctx;
              ctx.rc_ = &rc;
              ctx.ep_ = &ep;
              ctx.fabric_ = fabric_.get();
              ctx.grank_ = config_.topo.global_rank(p, rc.rank());
              ctx.sync_ = &sync;
              ctx.clock_board_ = &clock_board;
              fn(ctx);
            });
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Wake fabric waiters so sibling pods blocked on cross-pod recvs
        // can re-check their predicates instead of sleeping to the
        // recheck interval.
        fabric_->doorbell().ring();
      }
    });
  }
  for (auto& h : hosts) {
    h.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

std::vector<int> PodCluster::failed_ranks() const {
  std::vector<int> out;
  for (int p = 0; p < config_.topo.pods; ++p) {
    for (const int local : universes_[static_cast<std::size_t>(p)]
                               ->failed_ranks()) {
      out.push_back(config_.topo.global_rank(p, local));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void PodCluster::respawn(int grank) {
  CMPI_EXPECTS(config_.topo.contains(grank));
  universes_[static_cast<std::size_t>(config_.topo.pod_of(grank))]->respawn(
      config_.topo.local_of(grank));
}

}  // namespace cmpi::fabric
