// Cross-pod transport: the modeled fabric stitching CXL pods together
// through one router rank per pod.
//
// Each pod is a shared CXL pool (runtime::Universe); only its router rank
// owns a NIC. A cross-pod message therefore crosses three tiers:
//
//   source rank --pool hop--> source router --NIC/LogGP--> dest router
//                                                 --pool hop--> dest rank
//
// Timing model per tier:
//
//  * pool hop: pod_hop_latency + bytes/pod_hop_bytes_per_ns, charged on
//    the sender's clock (source side — the sender stages the payload into
//    its pool) or added to delivery (destination side — the dest router
//    forwards into its pool after the wire).
//  * router forwarding: the router's CPU + NIC-injection path is a serial
//    resource. Every message through a pod boundary reserves
//    router_fwd_ns + bytes/pod_hop_bytes_per_ns on that pod's router
//    BusyResource (rate 1.0, so "bytes" are nanoseconds). This is what a
//    flat algorithm pays for: R ranks sending through one router serialize
//    there, while a hierarchical algorithm sends once per pod.
//  * wire: the pod's egress NIC is a per-pod LogGPModel (shared
//    BusyResource wire), so concurrent cross-pod streams from one pod
//    contend for the NIC rate.
//
// Functionally: one mutex + per-destination inbox deques + a Doorbell.
// There is NO flow control on the cross-pod path (routers would need a
// credit protocol; unbounded inboxes keep the model deadlock-free and the
// collectives below self-limit in-flight data).
//
// Failure: PodCluster installs a router-down probe. A send fails fast with
// kPeerFailed when either boundary router is known dead; a sourced recv
// fails when the path to its source is dead. Messages that crossed before
// the crash stay deliverable — they already left the dead host.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "fabric/profiles.hpp"
#include "runtime/doorbell.hpp"
#include "runtime/topology.hpp"
#include "simtime/busy_resource.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::fabric {

struct PodFabricConfig {
  runtime::PodTopology topo;
  /// Inter-pod NIC profile (one egress NIC per pod).
  NicProfile profile = tcp_cx6dx();
  /// Pool hop between a rank and its pod's router (CXL load/store tier):
  /// one-way latency and bandwidth of staging a payload through the pool.
  simtime::Ns pod_hop_latency = 2200;
  double pod_hop_bytes_per_ns = 9.5;
  /// Serial per-message forwarding cost on a router (matching, address
  /// translation, NIC doorbell). The aggregation bottleneck.
  simtime::Ns router_fwd_ns = 3000;
};

struct PodRecvInfo {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

/// Receive wildcard: match any source pod rank / any tag.
inline constexpr int kAnyPodSource = -1;
inline constexpr int kAnyPodTag = -1;

class PodFabric {
 public:
  /// Validates the topology and the NIC profile (kInvalidArgument — this
  /// is the user-config entry point; the timing model must never see a
  /// malformed profile).
  static Result<std::unique_ptr<PodFabric>> create(
      const PodFabricConfig& config);

  /// Sender-side transit of a cross-pod message (pod_of(src) must differ
  /// from pod_of(dst)). Charges `clock`, reserves the source router +
  /// egress wire + destination router, enqueues for `dst`. Fails fast
  /// with kPeerFailed when a boundary router is known dead.
  Status send(simtime::VClock& clock, int src, int dst, int tag,
              std::span<const std::byte> data);

  /// Receive the matching message with the EARLIEST virtual delivery time
  /// (ties broken by send order) — this defines wildcard ordering across
  /// the router deterministically in virtual time, not host scheduling.
  /// src may be kAnyPodSource, tag may be kAnyPodTag. Blocks. Truncating
  /// copy into `data`. kPeerFailed when src's path died with no matching
  /// message queued.
  Result<PodRecvInfo> recv(simtime::VClock& clock, int me, int src, int tag,
                           std::span<std::byte> data);

  /// True if a matching message is queued (no time charge, no blocking).
  bool poll(int me, int src, int tag);

  /// Installed by PodCluster: returns true when `pod`'s router rank is
  /// known to have failed. Sends/recvs crossing that pod fail fast.
  void set_router_down_probe(std::function<bool(int pod)> probe);

  /// Drop accumulated wire/router reservations (bench iteration
  /// boundaries). Queued messages are unaffected.
  void reset_timing();

  [[nodiscard]] const PodFabricConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const runtime::PodTopology& topology() const noexcept {
    return config_.topo;
  }
  [[nodiscard]] runtime::Doorbell& doorbell() noexcept { return doorbell_; }

 private:
  explicit PodFabric(const PodFabricConfig& config);

  struct Msg {
    int src = 0;
    int tag = 0;
    std::uint64_t seq = 0;       ///< global send order (tie-break)
    simtime::Ns sent = 0;        ///< sender clock at send entry
    simtime::Ns delivered = 0;   ///< visible at the destination rank
    std::vector<std::byte> data;
  };

  [[nodiscard]] bool router_down(int pod) const;
  /// Pool-hop transfer time for `bytes` (latency excluded).
  [[nodiscard]] simtime::Ns hop_transfer_ns(std::size_t bytes) const noexcept {
    return static_cast<simtime::Ns>(bytes) / config_.pod_hop_bytes_per_ns;
  }

  PodFabricConfig config_;
  runtime::Doorbell doorbell_;
  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 0;
  /// Inbox per destination global rank (all sources interleaved; recv
  /// scans for the earliest delivery).
  std::vector<std::deque<Msg>> inboxes_;
  /// Per-pod egress NIC (LogGP wire shared by the pod's cross-pod sends).
  std::vector<std::unique_ptr<simtime::LogGPModel>> egress_;
  /// Per-pod router forwarding serialization (rate 1.0: bytes == ns).
  std::vector<std::unique_ptr<simtime::BusyResource>> router_busy_;
  std::function<bool(int pod)> router_down_;
};

}  // namespace cmpi::fabric
