// Modeled network transports — the paper's baselines (TCP over Ethernet,
// TCP over Mellanox CX-6 Dx, RoCE, InfiniBand).
//
// The benches compare cMPI against MPI-over-TCP on the same OSU-style
// drivers, so this module provides the same communication surface (blocking
// send/recv, one-sided windows with PSCW/lock sync) over a *modeled* NIC:
// bytes move through an in-memory channel; time is charged via the LogGP
// model of fabric/profiles.hpp. Key modeled behaviours:
//
//  * the wire between a node pair is a shared BusyResource, so multi-pair
//    aggregate bandwidth saturates at the NIC rate (Fig. 5/7's TCP curves),
//  * after packetization the sender's CPU is free (NIC offload) — senders
//    keep injecting while the wire streams, which is why TCP scales for
//    large messages where the CPU-driven CXL path does not (§4.2),
//  * flow control: at most `sndbuf` unconsumed bytes per pair, so a slow
//    receiver exerts backpressure (and propagates its virtual time),
//  * one-sided over TCP is *emulated* RMA: puts/gets become packets that
//    the target services only in its progress engine — modeled by the
//    profile's rma_sync_overhead, reproducing the ~620-630 us one-sided
//    latencies of §4.2.
//
// NetUniverse mirrors runtime::Universe: rank threads, virtual clocks, a
// virtual-time barrier — but no CXL device.
#pragma once

#include <barrier>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "fabric/profiles.hpp"
#include "runtime/doorbell.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::fabric {

struct NetConfig {
  unsigned nodes = 2;
  unsigned ranks_per_node = 1;
  NicProfile profile = tcp_ethernet();
  /// Intra-node messages use host shared memory, not the NIC.
  simtime::Ns intra_node_latency = 400;
  double intra_node_bytes_per_ns = 10.0;

  [[nodiscard]] unsigned nranks() const noexcept {
    return nodes * ranks_per_node;
  }
};

class NetCtx;

/// Shared state of the modeled network: wires, in-flight messages,
/// window memories. Thread-safe.
class NetFabric {
 public:
  explicit NetFabric(const NetConfig& config);

  struct Msg {
    int tag = 0;
    std::vector<std::byte> data;
    simtime::Ns delivered = 0;  ///< at receiver NIC, before o_r
  };

  /// Sender-side transit: charges the sender's clock, reserves the wire,
  /// enqueues the message. Blocks (functionally) on flow control.
  void send(NetCtx& ctx, int dst, int tag, std::span<const std::byte> data);

  /// Receive the first matching message (FIFO per (src,tag)). Blocks.
  /// Returns the payload size. `data` may be smaller (truncated copy).
  std::size_t recv(NetCtx& ctx, int src, int tag, std::span<std::byte> data);

  /// True if a matching message is queued (no time charge).
  bool poll(int me, int src, int tag);

  [[nodiscard]] const NetConfig& config() const noexcept { return config_; }
  [[nodiscard]] runtime::Doorbell& doorbell() noexcept { return doorbell_; }

  /// Named shared buffer backing a NetWindow (created on first use).
  std::vector<std::byte>& window_memory(const std::string& name,
                                        std::size_t size);
  std::mutex& window_mutex() noexcept { return window_mutex_; }

  /// Virtual-time transit cost of `bytes` from src to dst starting at
  /// `start`, reserving wire bandwidth. Returns delivery time.
  simtime::Ns transit(int src_rank, int dst_rank, simtime::Ns start,
                      std::size_t bytes);

  [[nodiscard]] int node_of(int rank) const noexcept {
    return rank / static_cast<int>(config_.ranks_per_node);
  }

 private:
  struct Pair {
    std::deque<Msg> queue;
    std::size_t inflight_bytes = 0;
    simtime::Ns consumed_stamp = 0;  ///< receiver clock at last recv
  };

  Pair& pair(int src, int dst);

  NetConfig config_;
  runtime::Doorbell doorbell_;
  std::mutex mutex_;
  std::map<std::pair<int, int>, Pair> pairs_;
  /// One directional wire per ordered node pair (full duplex NIC).
  std::map<std::pair<int, int>, std::unique_ptr<simtime::LogGPModel>> wires_;
  std::mutex window_mutex_;
  std::map<std::string, std::vector<std::byte>> windows_;
};

/// Per-rank context inside NetUniverse::run.
class NetCtx {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] int node() const noexcept { return fabric_->node_of(rank_); }
  [[nodiscard]] simtime::VClock& clock() noexcept { return clock_; }
  [[nodiscard]] NetFabric& fabric() noexcept { return *fabric_; }

  /// Blocking MPI-style operations over the modeled NIC.
  void send(int dst, int tag, std::span<const std::byte> data) {
    fabric_->send(*this, dst, tag, data);
  }
  std::size_t recv(int src, int tag, std::span<std::byte> data) {
    return fabric_->recv(*this, src, tag, data);
  }

  /// Virtual-time barrier across all ranks (functional sync + clock max).
  void barrier();

 private:
  friend class NetUniverse;
  NetCtx() = default;

  int rank_ = 0;
  int nranks_ = 0;
  simtime::VClock clock_;
  NetFabric* fabric_ = nullptr;
  std::barrier<>* sync_ = nullptr;
  std::vector<simtime::Ns>* clock_board_ = nullptr;
};

class NetUniverse {
 public:
  explicit NetUniverse(const NetConfig& config);

  /// One thread per rank; re-throws the first rank exception.
  void run(const std::function<void(NetCtx&)>& fn);

  [[nodiscard]] NetFabric& fabric() noexcept { return fabric_; }

 private:
  NetConfig config_;
  NetFabric fabric_;
};

/// One-sided window over the modeled network: MPICH-style *emulated* RMA.
/// Data functionally lives in a fabric-shared buffer; timing models the
/// RMA packets plus target-side progress servicing.
class NetWindow {
 public:
  /// Collective: all ranks call with the same name/size.
  NetWindow(NetCtx& ctx, const std::string& name, std::size_t win_size);

  void put(int target, std::uint64_t disp, std::span<const std::byte> data);
  void get(int target, std::uint64_t disp, std::span<std::byte> out);
  void write_local(std::uint64_t disp, std::span<const std::byte> data);
  void read_local(std::uint64_t disp, std::span<std::byte> out);

  // PSCW over network messages.
  void post(std::span<const int> origins);
  void start(std::span<const int> targets);
  void complete(std::span<const int> targets);
  void wait(std::span<const int> origins);

  void fence() { ctx_->barrier(); }

  [[nodiscard]] std::size_t win_size() const noexcept { return win_size_; }

 private:
  [[nodiscard]] std::span<std::byte> segment(int target);

  NetCtx* ctx_;
  std::string name_;
  std::size_t win_size_;
  std::vector<std::byte>* memory_;
  int tag_base_;
  /// Latest delivery horizon of this epoch's outstanding puts.
  simtime::Ns pending_delivery_ = 0;
};

}  // namespace cmpi::fabric
