// Interconnect profiles for the network baselines, calibrated to Table 1
// of the paper and to the MPI-level latencies its figures report.
//
// Raw-transport numbers (latency, bandwidth) come straight from Table 1.
// MPI-over-transport overheads are calibrated from the OSU-level results:
// the paper measures ~55 us small-message two-sided latency over TCP/CX-6
// Dx (vs 18 us raw iperf) and ~160 us over commodity Ethernet (vs 16 us
// raw), the difference being socket-progress, copies, and rendezvous
// machinery inside MPICH's TCP netmod. One-sided over TCP is slower still
// (~620-630 us regardless of NIC) because RMA is emulated with packet
// round-trips serviced only when the target enters its progress engine —
// `rma_sync_overhead` models that target-side progress delay.
#pragma once

#include <string>

#include "common/status.hpp"
#include "simtime/loggp.hpp"

namespace cmpi::fabric {

struct NicProfile {
  std::string name;
  simtime::LogGPParams loggp;
  /// Extra per-message MPI software cost (matching, request bookkeeping,
  /// socket syscalls) charged at each side on top of LogGP overheads.
  simtime::Ns mpi_msg_overhead = 0;
  /// Target-side progress delay for emulated one-sided operations: the
  /// origin's synchronization completes only after the target's progress
  /// engine services the RMA packets.
  simtime::Ns rma_sync_overhead = 0;
  /// Socket/QP send-buffer: max bytes in flight per pair before the
  /// sender blocks on the receiver (flow control). Large enough that a
  /// streaming sender pipelines several max-size (4 MiB) messages.
  std::size_t sndbuf = 16 * 1024 * 1024;
};

/// TCP over a standard Ethernet NIC: 16 us, 117.8 MB/s (Table 1).
NicProfile tcp_ethernet();

/// TCP over Mellanox CX-6 Dx (high-end SmartNIC): 18 us, 11.5 GB/s.
NicProfile tcp_cx6dx();

/// RoCEv2 over Mellanox CX-6 Dx: 1.6 us, 10.8 GB/s.
NicProfile rocev2_cx6dx();

/// RoCEv2 over Mellanox CX-3 (low-end SmartNIC): ~2 us, 7.0 GB/s.
NicProfile rocev2_cx3();

/// InfiniBand over Mellanox CX-6: ~0.6 us, 25 GB/s.
NicProfile infiniband_cx6();

/// Validates a profile before it reaches the timing model. Pod routers
/// build profiles from user topology config, so malformed latency or
/// bandwidth must surface as kInvalidArgument — not trip the LogGPModel
/// precondition asserts. Checks every LogGP field is finite and
/// non-negative, wire_bytes_per_ns > 0, mtu > 0, and the MPI/RMA
/// overheads and sndbuf are sane.
Status validate(const NicProfile& profile);

/// Builds a validated profile from the two numbers users actually know:
/// one-way latency and bandwidth. The latency is split 1/4 send overhead,
/// 1/2 wire, 1/4 recv overhead (the shape of the calibrated profiles
/// above); mtu is 4096 with no per-segment software cost. Returns
/// kInvalidArgument for non-finite, negative-latency, or
/// non-positive-bandwidth inputs.
Result<NicProfile> make_profile(const std::string& name,
                                simtime::Ns one_way_latency_ns,
                                double bytes_per_ns,
                                simtime::Ns mpi_msg_overhead = 0);

}  // namespace cmpi::fabric
