#include "arena/capi.hpp"

#include <string>

namespace cmpi::arena {
namespace {

thread_local Arena* tls_arena = nullptr;
thread_local bool tls_initialized = false;
thread_local std::string tls_last_error;

int fail(std::string message) noexcept {
  tls_last_error = std::move(message);
  return -1;
}

int require_ready(const char* who) noexcept {
  if (tls_arena == nullptr) {
    return fail(std::string(who) + ": no arena context registered");
  }
  if (!tls_initialized) {
    return fail(std::string(who) + ": cxl_shm_init not called");
  }
  return 0;
}

}  // namespace

void cxl_shm_set_context(Arena* arena_for_this_thread) noexcept {
  tls_arena = arena_for_this_thread;
  if (arena_for_this_thread == nullptr) {
    tls_initialized = false;
  }
}

int cxl_shm_init() noexcept {
  if (tls_arena == nullptr) {
    return fail("cxl_shm_init: no arena context registered");
  }
  tls_initialized = true;
  return 0;
}

int cxl_shm_finalize() noexcept {
  if (!tls_initialized) {
    return fail("cxl_shm_finalize: not initialized");
  }
  tls_initialized = false;
  return 0;
}

int cxl_shm_create(const char* name, std::size_t size,
                   CxlShmObject** obj_handle) noexcept {
  if (const int rc = require_ready("cxl_shm_create"); rc != 0) {
    return rc;
  }
  if (name == nullptr || obj_handle == nullptr) {
    return fail("cxl_shm_create: null argument");
  }
  auto result = tls_arena->create(name, size);
  if (!result.is_ok()) {
    return fail("cxl_shm_create: " + result.status().to_string());
  }
  *obj_handle = new CxlShmObject{std::move(result).value()};
  return 0;
}

int cxl_shm_open(const char* name, CxlShmObject** obj_handle) noexcept {
  if (const int rc = require_ready("cxl_shm_open"); rc != 0) {
    return rc;
  }
  if (name == nullptr || obj_handle == nullptr) {
    return fail("cxl_shm_open: null argument");
  }
  auto result = tls_arena->open(name);
  if (!result.is_ok()) {
    return fail("cxl_shm_open: " + result.status().to_string());
  }
  *obj_handle = new CxlShmObject{std::move(result).value()};
  return 0;
}

int cxl_shm_destroy(CxlShmObject* obj_handle) noexcept {
  if (const int rc = require_ready("cxl_shm_destroy"); rc != 0) {
    return rc;
  }
  if (obj_handle == nullptr) {
    return fail("cxl_shm_destroy: null handle");
  }
  const Status status = tls_arena->destroy(obj_handle->handle);
  delete obj_handle;
  if (!status.is_ok()) {
    return fail("cxl_shm_destroy: " + status.to_string());
  }
  return 0;
}

int cxl_shm_close(CxlShmObject* obj_handle) noexcept {
  if (const int rc = require_ready("cxl_shm_close"); rc != 0) {
    return rc;
  }
  if (obj_handle == nullptr) {
    return fail("cxl_shm_close: null handle");
  }
  const Status status = tls_arena->close(obj_handle->handle);
  delete obj_handle;
  if (!status.is_ok()) {
    return fail("cxl_shm_close: " + status.to_string());
  }
  return 0;
}

std::uint64_t cxl_shm_obj_offset(const CxlShmObject* obj_handle) noexcept {
  return obj_handle == nullptr ? 0 : obj_handle->handle.pool_offset;
}

std::size_t cxl_shm_obj_size(const CxlShmObject* obj_handle) noexcept {
  return obj_handle == nullptr ? 0 : obj_handle->handle.size;
}

const char* cxl_shm_last_error() noexcept { return tls_last_error.c_str(); }

}  // namespace cmpi::arena
