#include "arena/famfs_lite.hpp"

#include <cstring>

#include "common/align.hpp"

namespace cmpi::arena {

namespace {

template <typename T>
void read_pod(cxlsim::Accessor& acc, std::uint64_t at, T& out) {
  acc.coherent_read(at, {reinterpret_cast<std::byte*>(&out), sizeof(T)});
}

template <typename T>
void write_pod(cxlsim::Accessor& acc, std::uint64_t at, const T& in) {
  acc.coherent_write(at,
                     {reinterpret_cast<const std::byte*>(&in), sizeof(T)});
}

}  // namespace

Result<FamfsLite> FamfsLite::format_master(cxlsim::Accessor& acc,
                                           std::uint64_t base,
                                           std::uint64_t size) {
  if (!is_aligned(base, kCacheLineSize)) {
    return status::invalid_argument("famfs base must be cacheline aligned");
  }
  const std::uint64_t table_offset = align_up(sizeof(Superblock),
                                              kCacheLineSize);
  const std::uint64_t data_offset =
      align_up(table_offset + kMaxFiles * sizeof(FileEntry), kCacheLineSize);
  if (data_offset + kCacheLineSize > size) {
    return status::invalid_argument("famfs region too small");
  }
  FamfsLite fs(acc, base, /*master=*/true);
  FileEntry empty{};
  for (std::size_t slot = 0; slot < kMaxFiles; ++slot) {
    fs.write_entry(slot, empty);
  }
  Superblock sb{};
  sb.magic = kMagic;
  sb.total_size = size;
  sb.table_offset = table_offset;
  sb.data_offset = data_offset;
  sb.bump = data_offset;
  sb.file_count = 0;
  fs.write_super(sb);
  return fs;
}

Result<FamfsLite> FamfsLite::attach_client(cxlsim::Accessor& acc,
                                           std::uint64_t base) {
  FamfsLite fs(acc, base, /*master=*/false);
  const Superblock sb = fs.read_super();
  if (sb.magic != kMagic) {
    return status::not_found("no famfs filesystem at this base");
  }
  return fs;
}

FamfsLite::Superblock FamfsLite::read_super() {
  Superblock sb{};
  read_pod(*acc_, base_, sb);
  return sb;
}

void FamfsLite::write_super(const Superblock& sb) {
  write_pod(*acc_, base_, sb);
}

FamfsLite::FileEntry FamfsLite::read_entry(std::size_t slot) {
  CMPI_EXPECTS(slot < kMaxFiles);
  FileEntry entry{};
  read_pod(*acc_,
           base_ + read_super().table_offset + slot * sizeof(FileEntry),
           entry);
  return entry;
}

void FamfsLite::write_entry(std::size_t slot, const FileEntry& entry) {
  CMPI_EXPECTS(slot < kMaxFiles);
  // Table offset is immutable after format; avoid re-reading the super
  // when we already know the geometry (format path calls this before the
  // super exists).
  const std::uint64_t table_offset = align_up(sizeof(Superblock),
                                              kCacheLineSize);
  write_pod(*acc_, base_ + table_offset + slot * sizeof(FileEntry), entry);
}

Result<FamfsLite::FileHandle> FamfsLite::create(std::string_view name,
                                                std::uint64_t size) {
  if (!master_) {
    return status::unsupported(
        "famfs: only the master node may create files (§3.1)");
  }
  if (name.empty() || name.size() > kMaxNameLen || size == 0) {
    return status::invalid_argument("bad famfs file name or size");
  }
  Superblock sb = read_super();
  std::size_t free_slot = kMaxFiles;
  for (std::size_t slot = 0; slot < kMaxFiles; ++slot) {
    const FileEntry entry = read_entry(slot);
    if (entry.used != 0 && name == std::string_view(entry.name)) {
      return status::already_exists("famfs file exists");
    }
    if (entry.used == 0 && free_slot == kMaxFiles) {
      free_slot = slot;
    }
  }
  if (free_slot == kMaxFiles) {
    return status::capacity_exceeded("famfs file table full");
  }
  const std::uint64_t alloc = align_up(size, kCacheLineSize);
  if (sb.bump + alloc > sb.total_size) {
    return status::out_of_memory("famfs extent space exhausted");
  }
  FileEntry entry{};
  entry.used = 1;
  entry.offset = sb.bump;
  entry.size = size;
  std::memcpy(entry.name, name.data(), name.size());
  write_entry(free_slot, entry);
  sb.bump += alloc;
  sb.file_count += 1;
  write_super(sb);
  return FileHandle{std::string(name), base_ + entry.offset, size,
                    free_slot};
}

Result<FamfsLite::FileHandle> FamfsLite::open(std::string_view name) {
  for (std::size_t slot = 0; slot < kMaxFiles; ++slot) {
    const FileEntry entry = read_entry(slot);
    if (entry.used != 0 && name == std::string_view(entry.name)) {
      return FileHandle{std::string(name), base_ + entry.offset, entry.size,
                        slot};
    }
  }
  return status::not_found("famfs file not found");
}

Status FamfsLite::remove(std::string_view name) {
  if (!master_) {
    return status::unsupported(
        "famfs: only the master node may remove files (§3.1)");
  }
  for (std::size_t slot = 0; slot < kMaxFiles; ++slot) {
    FileEntry entry = read_entry(slot);
    if (entry.used != 0 && name == std::string_view(entry.name)) {
      entry.used = 0;
      write_entry(slot, entry);
      Superblock sb = read_super();
      sb.file_count -= 1;
      write_super(sb);
      return Status::ok();
    }
  }
  return status::not_found("famfs file not found");
}

std::uint64_t FamfsLite::files_in_use() { return read_super().file_count; }

}  // namespace cmpi::arena
