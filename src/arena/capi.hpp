// The POSIX-SHM-flavoured C API of Table 2. The paper designs the Arena's
// surface to mirror shm_open/shm_unlink so MPI integration only needs
// API-level changes; we reproduce that surface verbatim:
//
//   cxl_shm_init / cxl_shm_finalize
//   cxl_shm_create(name, size, *obj_handle)
//   cxl_shm_open(name, *obj_handle)
//   cxl_shm_destroy(*obj_handle)
//   cxl_shm_close(*obj_handle)
//
// In the real system cxl_shm_init mmaps the dax device; in the simulation
// the equivalent of the mapping is the rank's (Accessor, Arena) pair, which
// the runtime registers per thread via cxl_shm_set_context before user code
// runs. All functions return 0 on success, -1 on failure (errno-style), and
// cxl_shm_last_error() reports the failure detail.
#pragma once

#include <cstddef>
#include <cstdint>

#include "arena/arena.hpp"

namespace cmpi::arena {

/// Opaque object handle of the C API.
struct CxlShmObject {
  ObjectHandle handle;
};

/// Register the calling thread's arena (runtime/test bootstrap). Pass
/// nullptr to clear. The arena must outlive the registration.
void cxl_shm_set_context(Arena* arena_for_this_thread) noexcept;

/// Table 2: initialize and "mmap" the CXL SHM arena for this thread.
/// Fails (-1) when no context was registered.
int cxl_shm_init() noexcept;

/// Table 2: clean up; closes nothing by itself (handles are independent).
int cxl_shm_finalize() noexcept;

/// Table 2: create a new object with the specified size.
int cxl_shm_create(const char* name, std::size_t size,
                   CxlShmObject** obj_handle) noexcept;

/// Table 2: open an existing object by name.
int cxl_shm_open(const char* name, CxlShmObject** obj_handle) noexcept;

/// Table 2: delete an object from the CXL SHM Arena (frees the handle).
int cxl_shm_destroy(CxlShmObject* obj_handle) noexcept;

/// Table 2: close and release an object handle (frees the handle).
int cxl_shm_close(CxlShmObject* obj_handle) noexcept;

/// Pool offset / size accessors for a handle (the simulation's stand-in
/// for "base address + offset" pointer arithmetic).
std::uint64_t cxl_shm_obj_offset(const CxlShmObject* obj_handle) noexcept;
std::size_t cxl_shm_obj_size(const CxlShmObject* obj_handle) noexcept;

/// Human-readable description of the last C-API failure on this thread.
const char* cxl_shm_last_error() noexcept;

}  // namespace cmpi::arena
