// FamfsLite — a minimal model of the Famfs shared-memory-filesystem design
// the paper contrasts the CXL SHM Arena against (§3.1).
//
// Famfs (Micron) manages disaggregated shared memory as a filesystem with
// a client/master architecture: only the MASTER node may create or delete
// files; clients can only open existing ones. The paper rejects that
// restriction for MPI ("any node may need to create SHM objects") and
// notes Famfs' APIs differ from POSIX SHM, complicating integration.
//
// This module exists to make the comparison concrete and testable: it
// implements the same named-object service over the same pool, but with
// Famfs' architectural restriction. bench/ablation-style tests show the
// functional consequence: a non-master rank creating an RMA window or
// queue object must round-trip through the master, while the Arena serves
// it locally under the bakery lock.
//
// Layout: a superblock plus a flat file table (name, offset, size),
// master-mutated only; clients read the table with the §3.5 coherence
// discipline. Allocation is an append-only log (Famfs files are
// pre-allocated extents; deletion support is similarly minimal).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "cxlsim/accessor.hpp"

namespace cmpi::arena {

class FamfsLite {
 public:
  struct FileHandle {
    std::string name;
    std::uint64_t pool_offset = 0;
    std::uint64_t size = 0;
    std::size_t slot = 0;
  };

  static constexpr std::size_t kMaxFiles = 256;
  static constexpr std::size_t kMaxNameLen = 47;

  /// Format a filesystem on [base, base+size); the caller becomes the
  /// master. Exactly one master per filesystem.
  static Result<FamfsLite> format_master(cxlsim::Accessor& acc,
                                         std::uint64_t base,
                                         std::uint64_t size);

  /// Attach as a client (may open, may NOT create or remove).
  static Result<FamfsLite> attach_client(cxlsim::Accessor& acc,
                                         std::uint64_t base);

  [[nodiscard]] bool is_master() const noexcept { return master_; }

  /// Create a file. Master only — clients get kUnsupported, the §3.1
  /// restriction that disqualifies this design for MPI.
  Result<FileHandle> create(std::string_view name, std::uint64_t size);

  /// Open an existing file (any node).
  Result<FileHandle> open(std::string_view name);

  /// Remove a file. Master only. Space is not reclaimed (append-only
  /// extent log, as in the real system's early revisions).
  Status remove(std::string_view name);

  [[nodiscard]] std::uint64_t files_in_use();

 private:
  struct Superblock {
    std::uint64_t magic;
    std::uint64_t total_size;
    std::uint64_t table_offset;  // from base
    std::uint64_t data_offset;   // from base
    std::uint64_t bump;          // next free byte, from base
    std::uint64_t file_count;
  };
  struct FileEntry {
    std::uint64_t used;
    std::uint64_t offset;  // from base
    std::uint64_t size;
    char name[kMaxNameLen + 1];
    char pad[128 - 3 * 8 - (kMaxNameLen + 1)];
  };
  static_assert(sizeof(FileEntry) == 128);

  static constexpr std::uint64_t kMagic = 0x46414D46534C4954ULL;

  FamfsLite(cxlsim::Accessor& acc, std::uint64_t base, bool master)
      : acc_(&acc), base_(base), master_(master) {}

  Superblock read_super();
  void write_super(const Superblock& sb);
  FileEntry read_entry(std::size_t slot);
  void write_entry(std::size_t slot, const FileEntry& entry);

  cxlsim::Accessor* acc_;
  std::uint64_t base_;
  bool master_;
};

}  // namespace cmpi::arena
