#include "arena/arena.hpp"

#include <cstdio>
#include <cstring>

#include "common/align.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "cxlsim/coherence_checker.hpp"
#include "obs/obs.hpp"

namespace cmpi::arena {

namespace {

template <typename T>
void read_pod(cxlsim::Accessor& acc, std::uint64_t pool_offset, T& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  acc.coherent_read(pool_offset,
                    {reinterpret_cast<std::byte*>(&out), sizeof(T)});
}

template <typename T>
void write_pod(cxlsim::Accessor& acc, std::uint64_t pool_offset, const T& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  acc.coherent_write(pool_offset,
                     {reinterpret_cast<const std::byte*>(&in), sizeof(T)});
}

}  // namespace

std::uint64_t Arena::metadata_footprint(const Params& params) {
  const auto index = MultilevelHash::create(params.levels,
                                            params.level1_buckets);
  CMPI_EXPECTS(index.is_ok());
  const std::uint64_t header = align_up(sizeof(Header), kCacheLineSize);
  const std::uint64_t lock = BakeryLock::footprint(params.max_participants);
  const std::uint64_t slots = index.value().total_slots() * sizeof(Slot);
  return align_up(header + lock + slots, kCacheLineSize);
}

Result<Arena> Arena::format(cxlsim::Accessor& acc, std::uint64_t base,
                            std::uint64_t size, std::size_t participant,
                            const Params& params,
                            std::uint64_t incarnation) {
  if (!is_aligned(base, kCacheLineSize)) {
    return status::invalid_argument("arena base must be cacheline aligned");
  }
  auto index = MultilevelHash::create(params.levels, params.level1_buckets);
  if (!index.is_ok()) {
    return index.status();
  }
  const std::uint64_t header_bytes = align_up(sizeof(Header), kCacheLineSize);
  const std::uint64_t lock_offset = header_bytes;
  const std::uint64_t slots_offset =
      lock_offset + BakeryLock::footprint(params.max_participants);
  const std::uint64_t slots_bytes = index.value().total_slots() * sizeof(Slot);
  const std::uint64_t objects_offset =
      align_up(slots_offset + slots_bytes, kCacheLineSize);
  if (objects_offset + kCacheLineSize > size) {
    return status::invalid_argument(
        "arena too small for its metadata (need > " +
        std::to_string(objects_offset) + " bytes)");
  }

  Header header{};
  header.magic = kHeaderMagic;
  header.version = kVersion;
  header.arena_size = size;
  header.levels = params.levels;
  header.level1_buckets = params.level1_buckets;
  header.slots_total = index.value().total_slots();
  header.lock_offset = lock_offset;
  header.slots_offset = slots_offset;
  header.objects_offset = objects_offset;
  header.objects_size = align_down(size - objects_offset, kCacheLineSize);
  header.free_head = objects_offset;
  header.max_participants = params.max_participants;

  // Zero the slot region (status == free). Bulk NT stores: format is a
  // one-time bootstrap, not a benchmarked path.
  std::byte zeros[4096] = {};
  std::uint64_t cleared = 0;
  while (cleared < slots_bytes) {
    const std::uint64_t n = std::min<std::uint64_t>(sizeof zeros,
                                                    slots_bytes - cleared);
    acc.nt_store(base + slots_offset + cleared,
                 {zeros, static_cast<std::size_t>(n)});
    cleared += n;
  }
  acc.sfence();

  const BakeryLock lock_view =
      BakeryLock::format(acc, base + lock_offset, params.max_participants);

  // One free block spanning the whole object region.
  FreeBlock initial{};
  initial.magic = kFreeMagic;
  initial.size = header.objects_size;
  initial.next = 0;
  write_pod(acc, base + objects_offset, initial);

  // Header last: attachers spin on the magic.
  write_pod(acc, base, header);

  log_info("arena: formatted at %#lx: %lu slots over %lu levels, %lu MiB objects",
           static_cast<unsigned long>(base),
           static_cast<unsigned long>(header.slots_total),
           static_cast<unsigned long>(header.levels),
           static_cast<unsigned long>(header.objects_size >> 20));
  return Arena(acc, base, participant, incarnation, header,
               std::move(index).value(), lock_view);
}

namespace {

/// Hex rendering for fsck diagnostics (pool offsets read naturally in hex).
std::string hex(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

std::string Arena::fsck_location(std::uint64_t base, const Header& header,
                                 std::uint64_t at) {
  // Self-locating diagnostic: the corrupt slot's pool-absolute offset plus
  // the owning region, so a multi-tenant operator can attribute the
  // corruption to one tenant's arena without replaying the walk.
  return "free block at pool offset " + hex(base + at) + " (arena base " +
         hex(base) + ", object region [" + hex(base + header.objects_offset) +
         ", " + hex(base + header.objects_offset + header.objects_size) + "))";
}

Status Arena::validate_free_list(cxlsim::Accessor& acc, std::uint64_t base,
                                 const Header& header) {
  // Every free block is at least one cacheline, so a healthy list can
  // never have more blocks than this; a walk longer than the bound has a
  // cycle even if the address-order check were somehow defeated.
  const std::uint64_t max_blocks = header.objects_size / kCacheLineSize;
  // Lock-free scan: like open()'s optimistic probe, racing a locked
  // writer's transient dirty window is benign (attach is a structural
  // sanity check, not a consistency point).
  cxlsim::CoherenceChecker::ToleranceScope tolerate_optimistic_scan;
  std::uint64_t at = header.free_head;
  std::uint64_t prev = 0;
  std::uint64_t steps = 0;
  while (at != 0) {
    if (++steps > max_blocks) {
      return status::corrupt_pool(
          "free list longer than the object region can hold: cycle "
          "suspected, last link " + fsck_location(base, header, at));
    }
    if (at < header.objects_offset ||
        at + sizeof(FreeBlock) > header.objects_offset + header.objects_size ||
        !is_aligned(at, kCacheLineSize)) {
      return status::corrupt_pool(fsck_location(base, header, at) +
                                  " outside the object region");
    }
    if (at <= prev) {
      // The list is address-ordered by construction; a backward or
      // self-referencing link is a cycle or a torn write.
      return status::corrupt_pool("free list not address-ordered at " +
                                  fsck_location(base, header, at));
    }
    FreeBlock block{};
    read_pod(acc, base + at, block);
    if (block.magic != kFreeMagic) {
      return status::corrupt_pool(fsck_location(base, header, at) +
                                  " has a bad magic");
    }
    if (block.size < kCacheLineSize ||
        at + block.size > header.objects_offset + header.objects_size) {
      return status::corrupt_pool(fsck_location(base, header, at) +
                                  " has an impossible size " +
                                  std::to_string(block.size));
    }
    prev = at;
    at = block.next;
  }
  return Status::ok();
}

Result<Arena> Arena::attach(cxlsim::Accessor& acc, std::uint64_t base,
                            std::size_t participant,
                            std::uint64_t incarnation) {
  Header header{};
  read_pod(acc, base, header);
  if (header.magic != kHeaderMagic) {
    return status::not_found("no arena formatted at this base");
  }
  if (header.version != kVersion) {
    return status::invalid_argument("arena version mismatch");
  }
  if (Status fsck = validate_free_list(acc, base, header); !fsck.is_ok()) {
    CMPI_OBS_INSTANT("arena.fsck_failed");
    CMPI_OBS_FLIGHT("arena: attach found a corrupt free list");
    return fsck;
  }
  auto index = MultilevelHash::create(header.levels, header.level1_buckets);
  if (!index.is_ok()) {
    return index.status();
  }
  Result<BakeryLock> lock_view =
      BakeryLock::attach(acc, base + header.lock_offset);
  if (!lock_view.is_ok()) {
    return lock_view.status();
  }
  return Arena(acc, base, participant, incarnation, header,
               std::move(index).value(), std::move(lock_view).value());
}

Arena::Arena(cxlsim::Accessor& acc, std::uint64_t base,
             std::size_t participant, std::uint64_t incarnation,
             const Header& header, MultilevelHash index, BakeryLock lock_view)
    : acc_(&acc),
      base_(base),
      participant_(participant),
      incarnation_(incarnation),
      slots_offset_(header.slots_offset),
      objects_offset_(header.objects_offset),
      objects_size_(header.objects_size),
      index_(std::move(index)),
      lock_(lock_view) {}

Arena::Header Arena::read_header() {
  Header header{};
  read_pod(*acc_, base_, header);
  return header;
}

void Arena::write_free_head(std::uint64_t value) {
  Header header = read_header();
  header.free_head = value;
  write_pod(*acc_, base_, header);
}

std::uint64_t Arena::slot_pool_offset(std::size_t slot_index) const {
  return base_ + slots_offset_ + slot_index * sizeof(Slot);
}

Arena::Slot Arena::read_slot(std::size_t slot_index) {
  Slot slot{};
  read_pod(*acc_, slot_pool_offset(slot_index), slot);
  return slot;
}

void Arena::write_slot(std::size_t slot_index, const Slot& slot) {
  write_pod(*acc_, slot_pool_offset(slot_index), slot);
}

Arena::FreeBlock Arena::read_free_block(std::uint64_t offset_from_base) {
  FreeBlock block{};
  read_pod(*acc_, base_ + offset_from_base, block);
  CMPI_ASSERT(block.magic == kFreeMagic);
  return block;
}

void Arena::write_free_block(std::uint64_t offset_from_base,
                             const FreeBlock& block) {
  write_pod(*acc_, base_ + offset_from_base, block);
}

Arena::Probe Arena::probe(std::string_view name, std::uint64_t name_hash) {
  Probe result;
  for (std::size_t level = 0; level < index_.levels(); ++level) {
    const std::size_t slot_index = index_.slot_of(name, level);
    const Slot slot = read_slot(slot_index);
    if (slot.status == kSlotUsed) {
      if (slot.name_hash == name_hash &&
          name == std::string_view(slot.name)) {
        result.found = slot_index;
        return result;
      }
    } else if (!result.first_free.has_value()) {
      result.first_free = slot_index;
    }
  }
  return result;
}

ObjectHandle Arena::make_handle(std::string_view name, std::size_t slot_index,
                                const Slot& slot) const {
  ObjectHandle handle;
  handle.name = std::string(name);
  handle.arena_offset = slot.offset;
  handle.pool_offset = base_ + slot.offset;
  handle.size = slot.size;
  handle.slot_index = slot_index;
  handle.open = true;
  return handle;
}

namespace {

Status validate_create_args(std::string_view name, std::uint64_t size) {
  if (name.empty() || name.size() > Arena::kMaxNameLen) {
    return status::invalid_argument("object name must be 1.." +
                                    std::to_string(Arena::kMaxNameLen) +
                                    " chars");
  }
  if (size == 0) {
    return status::invalid_argument("object size must be nonzero");
  }
  return Status::ok();
}

/// lock_for demands a verdict for every participant it may wait behind;
/// callers without a failure detector wait the full deadline.
bool nobody_dead(std::size_t) { return false; }

}  // namespace

Result<ObjectHandle> Arena::create(std::string_view name, std::uint64_t size,
                                   Ownership ownership) {
  if (Status valid = validate_create_args(name, size); !valid.is_ok()) {
    return valid;
  }
  BakeryLock::Guard guard(lock_, *acc_, participant_);
  return create_locked(name, size, ownership);
}

Result<ObjectHandle> Arena::create_for(
    std::string_view name, std::uint64_t size, Ownership ownership,
    std::chrono::milliseconds timeout,
    const BakeryLock::DeadPredicate& peer_dead) {
  if (Status valid = validate_create_args(name, size); !valid.is_ok()) {
    return valid;
  }
  if (Status locked = lock_.lock_for(*acc_, participant_, timeout,
                                     peer_dead ? peer_dead : nobody_dead);
      !locked.is_ok()) {
    return locked;
  }
  Result<ObjectHandle> out = create_locked(name, size, ownership);
  lock_.unlock(*acc_, participant_);
  return out;
}

Result<ObjectHandle> Arena::create_locked(std::string_view name,
                                          std::uint64_t size,
                                          Ownership ownership) {
  const std::uint64_t name_hash = hash_string(name);
  const std::uint64_t alloc_size = align_up(size, kCacheLineSize);
  const Probe where = probe(name, name_hash);
  if (where.found.has_value()) {
    return status::already_exists("object '" + std::string(name) +
                                  "' already exists");
  }
  if (!where.first_free.has_value()) {
    return status::capacity_exceeded(
        "all hash levels occupied for object '" + std::string(name) + "'");
  }
  auto offset = allocate_locked(alloc_size);
  if (!offset.is_ok()) {
    return offset.status();
  }

  Slot slot{};
  slot.status = kSlotUsed;
  slot.name_hash = name_hash;
  slot.offset = offset.value();
  slot.size = size;
  slot.refcount = 1;
  slot.owner_rank = ownership == Ownership::kShared
                        ? kNoOwner
                        : static_cast<std::uint64_t>(participant_);
  slot.owner_incarnation = incarnation_;
  std::memcpy(slot.name, name.data(), name.size());
  write_slot(*where.first_free, slot);
  return make_handle(name, *where.first_free, slot);
}

Result<ObjectHandle> Arena::open(std::string_view name) {
  if (name.empty() || name.size() > kMaxNameLen) {
    return status::invalid_argument("bad object name");
  }
  const std::uint64_t name_hash = hash_string(name);
  // Lock-free probe (paper: lookups are parallel). The refcount bump takes
  // the lock and re-validates, so racing a locked writer's transient dirty
  // window is benign — tell the coherence checker to tolerate it.
  Probe where;
  {
    cxlsim::CoherenceChecker::ToleranceScope tolerate_optimistic_probe;
    where = probe(name, name_hash);
  }
  if (!where.found.has_value()) {
    return status::not_found("object '" + std::string(name) + "' not found");
  }
  BakeryLock::Guard guard(lock_, *acc_, participant_);
  Slot slot = read_slot(*where.found);
  if (slot.status != kSlotUsed || slot.name_hash != name_hash ||
      name != std::string_view(slot.name)) {
    return status::not_found("object '" + std::string(name) +
                             "' vanished during open");
  }
  slot.refcount += 1;
  write_slot(*where.found, slot);
  return make_handle(name, *where.found, slot);
}

Status Arena::close(ObjectHandle& handle) {
  if (!handle.open) {
    return status::closed("handle already closed");
  }
  BakeryLock::Guard guard(lock_, *acc_, participant_);
  Slot slot = read_slot(handle.slot_index);
  if (slot.status == kSlotUsed && slot.refcount > 0) {
    slot.refcount -= 1;
    write_slot(handle.slot_index, slot);
  }
  handle.open = false;
  return Status::ok();
}

Status Arena::destroy(ObjectHandle& handle) {
  if (!handle.open) {
    return status::closed("handle already closed");
  }
  BakeryLock::Guard guard(lock_, *acc_, participant_);
  return destroy_locked(handle);
}

Status Arena::destroy_for(ObjectHandle& handle,
                          std::chrono::milliseconds timeout,
                          const BakeryLock::DeadPredicate& peer_dead) {
  if (!handle.open) {
    return status::closed("handle already closed");
  }
  if (Status locked = lock_.lock_for(*acc_, participant_, timeout,
                                     peer_dead ? peer_dead : nobody_dead);
      !locked.is_ok()) {
    return locked;
  }
  Status out = destroy_locked(handle);
  lock_.unlock(*acc_, participant_);
  return out;
}

Status Arena::destroy_locked(ObjectHandle& handle) {
  Slot slot = read_slot(handle.slot_index);
  if (slot.status != kSlotUsed ||
      handle.name != std::string_view(slot.name)) {
    handle.open = false;
    return status::not_found("object '" + handle.name +
                             "' already destroyed");
  }
  const std::uint64_t alloc_size = align_up(slot.size, kCacheLineSize);
  slot.status = kSlotFree;
  slot.refcount = 0;
  write_slot(handle.slot_index, slot);
  free_locked(slot.offset, alloc_size);
  handle.open = false;
  return Status::ok();
}

Result<std::uint64_t> Arena::allocate_locked(std::uint64_t size) {
  CMPI_EXPECTS(is_aligned(size, kCacheLineSize));
  Header header = read_header();
  std::uint64_t prev = 0;  // 0 = head pointer itself
  std::uint64_t at = header.free_head;
  while (at != 0) {
    FreeBlock block = read_free_block(at);
    if (block.size >= size) {
      std::uint64_t replacement;
      if (block.size >= size + kCacheLineSize) {
        // Split: the remainder becomes the free block.
        const std::uint64_t rest = at + size;
        FreeBlock remainder{kFreeMagic, block.size - size, block.next};
        write_free_block(rest, remainder);
        replacement = rest;
      } else {
        replacement = block.next;
      }
      if (prev == 0) {
        header.free_head = replacement;
        write_pod(*acc_, base_, header);
      } else {
        FreeBlock prev_block = read_free_block(prev);
        prev_block.next = replacement;
        write_free_block(prev, prev_block);
      }
      return at;
    }
    prev = at;
    at = block.next;
  }
  return status::out_of_memory("arena object region exhausted");
}

void Arena::free_locked(std::uint64_t offset_from_base, std::uint64_t size) {
  CMPI_EXPECTS(is_aligned(size, kCacheLineSize));
  CMPI_EXPECTS(offset_from_base >= objects_offset_);
  CMPI_EXPECTS(offset_from_base + size <= objects_offset_ + objects_size_);
  Header header = read_header();

  // Find the address-ordered insertion point.
  std::uint64_t prev = 0;
  std::uint64_t next = header.free_head;
  while (next != 0 && next < offset_from_base) {
    prev = next;
    next = read_free_block(next).next;
  }

  std::uint64_t block_offset = offset_from_base;
  std::uint64_t block_size = size;

  // Coalesce with the following block.
  if (next != 0 && offset_from_base + size == next) {
    const FreeBlock next_block = read_free_block(next);
    block_size += next_block.size;
    next = next_block.next;
  }

  // Coalesce with the preceding block, else link from it (or the head).
  if (prev != 0) {
    FreeBlock prev_block = read_free_block(prev);
    if (prev + prev_block.size == block_offset) {
      prev_block.size += block_size;
      prev_block.next = next;
      write_free_block(prev, prev_block);
      return;
    }
    prev_block.next = block_offset;
    write_free_block(prev, prev_block);
  } else {
    header.free_head = block_offset;
    write_pod(*acc_, base_, header);
  }
  write_free_block(block_offset, FreeBlock{kFreeMagic, block_size, next});
}

std::uint64_t Arena::free_bytes() {
  BakeryLock::Guard guard(lock_, *acc_, participant_);
  std::uint64_t total = 0;
  std::uint64_t at = read_header().free_head;
  while (at != 0) {
    const FreeBlock block = read_free_block(at);
    total += block.size;
    at = block.next;
  }
  return total;
}

Arena::ScavengeStats Arena::scavenge_locked(std::size_t dead_participant,
                                            std::uint64_t dead_incarnation) {
  ScavengeStats stats;
  const std::uint64_t dead = static_cast<std::uint64_t>(dead_participant);
  for (std::size_t i = 0; i < index_.total_slots(); ++i) {
    Slot slot = read_slot(i);
    if (slot.status != kSlotUsed || slot.owner_rank != dead ||
        slot.owner_incarnation > dead_incarnation) {
      continue;
    }
    const std::uint64_t alloc_size = align_up(slot.size, kCacheLineSize);
    if (std::strncmp(slot.name, kRendezvousNamePrefix.data(),
                     kRendezvousNamePrefix.size()) == 0) {
      stats.rendezvous_slots += 1;
    }
    slot.status = kSlotFree;
    slot.refcount = 0;
    write_slot(i, slot);
    free_locked(slot.offset, alloc_size);
    stats.bytes += alloc_size;
    stats.slots += 1;
  }
  return stats;
}

std::uint64_t Arena::used_slots() {
  std::uint64_t used = 0;
  for (std::size_t i = 0; i < index_.total_slots(); ++i) {
    if (read_slot(i).status == kSlotUsed) {
      ++used;
    }
  }
  return used;
}

}  // namespace cmpi::arena
