// Multi-level hash index geometry (paper §3.1, following Broder & Karlin's
// multilevel adaptive hashing).
//
// The metadata region of the CXL SHM Arena is a flat array of fixed-size
// slots, logically partitioned into L levels. Level l holds a prime number
// of buckets (one slot per bucket); level 1 is sized by the caller and each
// deeper level takes the next prime down, so the levels are nearly equal in
// size but use independent hash functions. A key probes exactly one slot
// per level — at most L probes, no dynamic resizing, and probes of distinct
// levels are independent (parallelizable).
//
// The paper's production configuration: 10 levels, level 1 capped at
// 200,000 slots -> primes 199,999 down to 199,873, 1,999,260 slots total.
// This class is pure geometry/index math (host-side, immutable); the slots
// themselves live in CXL SHM and are accessed by the Arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace cmpi::arena {

class MultilevelHash {
 public:
  /// Build the level geometry. `level1_buckets` is rounded down to the
  /// nearest prime; each deeper level uses the next prime below the
  /// previous level. Errors if the parameters collapse (too few buckets
  /// for the requested level count).
  static Result<MultilevelHash> create(std::size_t levels,
                                       std::size_t level1_buckets);

  /// Paper configuration: 10 levels, level-1 cap 200,000.
  static MultilevelHash paper_config();

  [[nodiscard]] std::size_t levels() const noexcept {
    return bucket_counts_.size();
  }

  /// Total number of slots across all levels.
  [[nodiscard]] std::size_t total_slots() const noexcept { return total_; }

  /// Bucket count of level `l` (0-based).
  [[nodiscard]] std::size_t level_buckets(std::size_t l) const {
    CMPI_EXPECTS(l < bucket_counts_.size());
    return bucket_counts_[l];
  }

  /// Global slot index a key probes at level `l` (0-based): the levels are
  /// flattened contiguously, level 0 first.
  [[nodiscard]] std::size_t slot_of(std::string_view key, std::size_t l) const;

  /// All L probe positions for a key, in level order.
  [[nodiscard]] std::vector<std::size_t> probe_sequence(
      std::string_view key) const;

 private:
  explicit MultilevelHash(std::vector<std::size_t> bucket_counts);

  std::vector<std::size_t> bucket_counts_;
  std::vector<std::size_t> level_starts_;
  std::size_t total_ = 0;
};

}  // namespace cmpi::arena
