// CXL SHM Arena (paper §3.1): user-space management of named shared-memory
// objects over the raw dax pool.
//
// The dax device is just a flat byte range — no files, no directory, no
// lifecycle. The Arena imposes:
//
//   [ header | bakery lock | metadata slots (multi-level hash) | shm_objects ]
//
// * header      — geometry + allocator root, written at format time.
// * bakery lock — serializes create/destroy/refcount updates across nodes
//                 (the pool has no cross-host atomics).
// * metadata    — a fixed-capacity multi-level hash of 128-byte slots, one
//                 slot per bucket; a name probes one slot per level. Lookups
//                 are lock-free; insertions take the lock.
// * shm_objects — object payloads, managed by an address-ordered first-fit
//                 free list with coalescing; blocks are cacheline-aligned
//                 (§3.7) so object flushes never false-share.
//
// Every word of arena state lives in CXL SHM and is accessed with the §3.5
// coherence discipline (coherent_write after mutation, coherent_read before
// inspection), so arenas work across simulated nodes and across forked
// processes alike.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "arena/bakery_lock.hpp"
#include "arena/multilevel_hash.hpp"
#include "common/status.hpp"
#include "cxlsim/accessor.hpp"

namespace cmpi::arena {

/// An opened/created SHM object. Offsets are relative to the arena base
/// (the paper stores base-relative offsets so every process can apply its
/// own mmap address); pool_offset is the absolute pool address for use
/// with an Accessor.
struct ObjectHandle {
  std::string name;
  std::uint64_t arena_offset = 0;
  std::uint64_t pool_offset = 0;
  std::uint64_t size = 0;
  std::size_t slot_index = 0;
  bool open = false;
};

/// Who is responsible for an object's storage after a crash.
/// * kOwned  — the object belongs to the creating participant; when that
///             participant is convicted dead, PoolRecovery::scavenge frees
///             the slot and its bytes.
/// * kShared — communication infrastructure (queue matrix, RMA window)
///             that must survive any single member's death; scavenge
///             leaves it alone.
enum class Ownership { kOwned, kShared };

/// Name prefix of the p2p layer's rendezvous payload slots (large-message
/// one-copy path; see p2p::Endpoint). The arena treats names as opaque
/// except in scavenge_locked, which counts reclaimed slots carrying this
/// prefix so pool recovery can report how many in-flight large-message
/// payloads died with a rank.
inline constexpr std::string_view kRendezvousNamePrefix = "cmpi.rdvz.";

class Arena {
 public:
  struct Params {
    std::size_t levels = 10;
    std::size_t level1_buckets = 1009;  ///< paper production value: 200,000
    std::size_t max_participants = 64;  ///< bakery lock width
  };

  /// Format a fresh arena occupying [base, base + size) of the pool and
  /// attach to it. Exactly one caller formats; everyone else attaches.
  /// `incarnation` stamps objects this participant creates (bumped by
  /// Universe::respawn after a crash; 0 for standalone arenas).
  static Result<Arena> format(cxlsim::Accessor& acc, std::uint64_t base,
                              std::uint64_t size, std::size_t participant,
                              const Params& params,
                              std::uint64_t incarnation = 0);

  /// Attach to an arena formatted by another rank/process. Validates the
  /// on-pool free list with a bounded walk (block count can never exceed
  /// objects_size / cacheline) and fails with kCorruptPool for a cyclic,
  /// out-of-bounds or magic-less chain — an unbounded walk would hang on
  /// exactly the corruption a crashed writer leaves behind.
  static Result<Arena> attach(cxlsim::Accessor& acc, std::uint64_t base,
                              std::size_t participant,
                              std::uint64_t incarnation = 0);

  /// Create a new named object of `size` bytes (rounded up to cacheline).
  /// Fails with kAlreadyExists, kCapacityExceeded (all hash levels taken
  /// for this name) or kOutOfMemory (no free block). kOwned objects are
  /// reclaimed by scavenge when this participant dies; pass kShared for
  /// infrastructure that must outlive any one member.
  Result<ObjectHandle> create(std::string_view name, std::uint64_t size,
                              Ownership ownership = Ownership::kOwned);

  /// Open an existing object by name. Lock-free probe; takes the lock only
  /// to bump the refcount.
  Result<ObjectHandle> open(std::string_view name);

  /// Drop a reference taken by create/open.
  Status close(ObjectHandle& handle);

  /// Remove the object's name and free its space. Like shm_unlink, this is
  /// valid while other ranks hold handles — their handles dangle, exactly
  /// the hazard the real system has. Closes `handle` too.
  Status destroy(ObjectHandle& handle);

  /// Deadline-bounded create/destroy for callers on a data path that must
  /// not block forever behind a crashed lock holder (the p2p rendezvous
  /// path allocates per-message slots). Waits at most `timeout` for the
  /// arena lock and returns kTimedOut on expiry; `peer_dead`, when given,
  /// lets the wait break a convicted corpse's ticket instead of timing
  /// out (see BakeryLock::lock_for).
  Result<ObjectHandle> create_for(
      std::string_view name, std::uint64_t size, Ownership ownership,
      std::chrono::milliseconds timeout,
      const BakeryLock::DeadPredicate& peer_dead = {});
  Status destroy_for(ObjectHandle& handle, std::chrono::milliseconds timeout,
                     const BakeryLock::DeadPredicate& peer_dead = {});

  // --- Introspection (tests, stats) ---
  [[nodiscard]] const MultilevelHash& index() const noexcept { return index_; }
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t objects_offset() const noexcept {
    return objects_offset_;
  }
  [[nodiscard]] std::uint64_t objects_size() const noexcept {
    return objects_size_;
  }
  /// Total bytes currently on the free list (walks it; takes the lock).
  std::uint64_t free_bytes();
  /// Number of occupied metadata slots (full scan; test helper).
  std::uint64_t used_slots();

  /// The lock serializing arena mutations. Exposed so PoolRecovery can
  /// hold one critical section across reclamation + its recovery ledger.
  [[nodiscard]] BakeryLock& shm_lock() noexcept { return lock_; }
  [[nodiscard]] std::size_t participant() const noexcept {
    return participant_;
  }

  /// What scavenge_locked reclaimed.
  struct ScavengeStats {
    std::uint64_t bytes = 0;  ///< object bytes returned to the free list
    std::uint64_t slots = 0;  ///< metadata slots freed
    /// Of `slots`, how many were in-flight rendezvous payload slots
    /// (names starting with kRendezvousNamePrefix).
    std::uint64_t rendezvous_slots = 0;
  };

  /// Reclaim every kOwned object created by `dead_participant` under an
  /// incarnation <= `dead_incarnation` (a respawned rank's newer objects
  /// are left alone). Full slot-table walk; the CALLER must hold the
  /// arena lock — PoolRecovery wraps this together with its exactly-once
  /// ledger update in one critical section.
  ScavengeStats scavenge_locked(std::size_t dead_participant,
                                std::uint64_t dead_incarnation);

  /// Bytes of metadata overhead for a given Params and arena size
  /// (everything before shm_objects).
  static std::uint64_t metadata_footprint(const Params& params);

  /// Maximum object name length (NUL excluded).
  static constexpr std::size_t kMaxNameLen = 47;

 private:
  // ---- On-pool structures (trivially copyable, fixed layout) ----
  struct Header {
    std::uint64_t magic;
    std::uint64_t version;
    std::uint64_t arena_size;
    std::uint64_t levels;
    std::uint64_t level1_buckets;
    std::uint64_t slots_total;
    std::uint64_t lock_offset;     // from base
    std::uint64_t slots_offset;    // from base
    std::uint64_t objects_offset;  // from base
    std::uint64_t objects_size;
    std::uint64_t free_head;       // from base; 0 = empty list
    std::uint64_t max_participants;
  };

  struct Slot {
    std::uint64_t status;  // 0 free, 1 used
    std::uint64_t name_hash;
    std::uint64_t offset;  // from base
    std::uint64_t size;
    std::uint64_t refcount;
    std::uint64_t owner_rank;         // kNoOwner for kShared objects
    std::uint64_t owner_incarnation;  // creator's incarnation at create
    char name[kMaxNameLen + 1];
    char pad[128 - 7 * sizeof(std::uint64_t) - (kMaxNameLen + 1)];
  };
  static_assert(sizeof(Slot) == 128);

  /// owner_rank value marking an object nobody's death reclaims.
  static constexpr std::uint64_t kNoOwner = ~std::uint64_t{0};

  struct FreeBlock {
    std::uint64_t magic;
    std::uint64_t size;
    std::uint64_t next;  // from base; 0 = end
  };

  static constexpr std::uint64_t kHeaderMagic = 0x43584C4152454E41ULL;
  static constexpr std::uint64_t kFreeMagic = 0x46524545424C4BULL;
  // v2: Slot carries owner_rank + owner_incarnation for PoolRecovery.
  static constexpr std::uint64_t kVersion = 2;
  static constexpr std::uint64_t kSlotUsed = 1;
  static constexpr std::uint64_t kSlotFree = 0;

  Arena(cxlsim::Accessor& acc, std::uint64_t base, std::size_t participant,
        std::uint64_t incarnation, const Header& header, MultilevelHash index,
        BakeryLock lock_view);

  /// Bounded structural scan of the free list (no lock; callers are either
  /// the single format-time writer or attach, which tolerates a transient
  /// dirty window the same way open()'s optimistic probe does).
  static Status validate_free_list(cxlsim::Accessor& acc, std::uint64_t base,
                                   const Header& header);

  /// Renders a corrupt slot for fsck diagnostics: pool-absolute offset plus
  /// the owning arena's base and object region, so multi-tenant operators
  /// can attribute corruption without replaying the walk.
  static std::string fsck_location(std::uint64_t base, const Header& header,
                                   std::uint64_t at);

  // Raw pool IO for the fixed structures.
  Header read_header();
  void write_free_head(std::uint64_t value);
  Slot read_slot(std::size_t slot_index);
  void write_slot(std::size_t slot_index, const Slot& slot);
  FreeBlock read_free_block(std::uint64_t offset_from_base);
  void write_free_block(std::uint64_t offset_from_base, const FreeBlock& block);
  [[nodiscard]] std::uint64_t slot_pool_offset(std::size_t slot_index) const;

  /// First-fit allocation from the free list. Caller holds the lock.
  /// Returns base-relative offset.
  /// create/destroy bodies, run with the arena lock already held.
  Result<ObjectHandle> create_locked(std::string_view name, std::uint64_t size,
                                     Ownership ownership);
  Status destroy_locked(ObjectHandle& handle);

  Result<std::uint64_t> allocate_locked(std::uint64_t size);
  /// Address-ordered free with coalescing. Caller holds the lock.
  void free_locked(std::uint64_t offset_from_base, std::uint64_t size);

  /// Probe result for a name.
  struct Probe {
    std::optional<std::size_t> found;       // slot with matching used name
    std::optional<std::size_t> first_free;  // first free slot on the path
  };
  Probe probe(std::string_view name, std::uint64_t name_hash);

  ObjectHandle make_handle(std::string_view name, std::size_t slot_index,
                           const Slot& slot) const;

  cxlsim::Accessor* acc_;
  std::uint64_t base_;
  std::size_t participant_;
  std::uint64_t incarnation_;
  std::uint64_t slots_offset_;
  std::uint64_t objects_offset_;
  std::uint64_t objects_size_;
  MultilevelHash index_;
  BakeryLock lock_;
};

}  // namespace cmpi::arena
