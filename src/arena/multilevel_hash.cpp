#include "arena/multilevel_hash.hpp"

#include "common/hash.hpp"
#include "common/primes.hpp"

namespace cmpi::arena {

Result<MultilevelHash> MultilevelHash::create(std::size_t levels,
                                              std::size_t level1_buckets) {
  if (levels == 0) {
    return status::invalid_argument("need at least one hash level");
  }
  if (level1_buckets < 2 + levels) {
    return status::invalid_argument("level-1 bucket count too small");
  }
  std::vector<std::size_t> counts;
  counts.reserve(levels);
  std::uint64_t prime = prev_prime(level1_buckets);
  for (std::size_t l = 0; l < levels; ++l) {
    if (prime < 2) {
      return status::invalid_argument("ran out of primes for hash levels");
    }
    counts.push_back(static_cast<std::size_t>(prime));
    if (l + 1 < levels) {
      prime = prev_prime(prime - 1);
    }
  }
  return MultilevelHash(std::move(counts));
}

MultilevelHash MultilevelHash::paper_config() {
  return check_ok(create(/*levels=*/10, /*level1_buckets=*/200000));
}

MultilevelHash::MultilevelHash(std::vector<std::size_t> bucket_counts)
    : bucket_counts_(std::move(bucket_counts)) {
  level_starts_.reserve(bucket_counts_.size());
  for (const std::size_t count : bucket_counts_) {
    level_starts_.push_back(total_);
    total_ += count;
  }
}

std::size_t MultilevelHash::slot_of(std::string_view key,
                                    std::size_t l) const {
  CMPI_EXPECTS(l < bucket_counts_.size());
  // Level index doubles as the hash seed, giving each level an independent
  // hash function over the same key.
  const std::uint64_t h = hash_string(key, /*seed=*/l + 1);
  return level_starts_[l] + static_cast<std::size_t>(h % bucket_counts_[l]);
}

std::vector<std::size_t> MultilevelHash::probe_sequence(
    std::string_view key) const {
  std::vector<std::size_t> seq;
  seq.reserve(levels());
  for (std::size_t l = 0; l < levels(); ++l) {
    seq.push_back(slot_of(key, l));
  }
  return seq;
}

}  // namespace cmpi::arena
