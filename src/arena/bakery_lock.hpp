// Lamport bakery lock resident in CXL SHM.
//
// The pooled device offers no cross-host atomic read-modify-write (§3.5),
// so mutual exclusion across nodes must be built from plain loads and
// stores. The bakery algorithm needs exactly that: per-participant
// `choosing` and `number` words, written only by their owner and read by
// everyone. All accesses use the non-temporal u64 path (never cached), so
// the lock needs no explicit flushes; the `number` word carries a virtual
// timestamp so that lock hand-off propagates time between rank clocks.
//
// Used for: CXL SHM Arena create/destroy serialization, and the paper's
// Lock-Unlock one-sided synchronization (§3.4, "placing the window lock in
// CXL SHM").
//
// The lock view itself is a value object (offsets only); each caller passes
// its own Accessor. Participants are dense ids in [0, max_participants).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/align.hpp"
#include "common/status.hpp"
#include "cxlsim/accessor.hpp"

namespace cmpi::arena {

class BakeryLock {
 public:
  /// Bytes of CXL SHM the lock occupies for `max_participants`.
  static constexpr std::size_t footprint(std::size_t max_participants) noexcept {
    return kHeaderBytes + max_participants * kSlotBytes;
  }

  /// One-time initialization of the lock's CXL SHM (single caller, before
  /// any lock/unlock).
  static BakeryLock format(cxlsim::Accessor& acc, std::uint64_t base,
                           std::size_t max_participants);

  /// Attach to an already-formatted lock. Validates the on-pool header
  /// (magic word + participant-count range) and returns kInvalidArgument
  /// describing the mismatch when `base` does not hold a formatted lock —
  /// a wrong base offset otherwise manifests as a silent hang inside
  /// lock() against garbage tickets.
  static Result<BakeryLock> attach(cxlsim::Accessor& acc, std::uint64_t base);

  /// Acquire for `participant`. Blocks (yielding) until the lock is held.
  void lock(cxlsim::Accessor& acc, std::size_t participant) const;

  /// Judges whether a participant id belongs to a dead rank (see
  /// runtime::FailureDetector; the caller owns the participant-to-rank
  /// mapping). Consulted while waiting behind that participant.
  using DeadPredicate = std::function<bool(std::size_t)>;

  /// Deadline- and failure-aware acquire. Waits at most `timeout`; while
  /// blocked behind a participant that `peer_dead` judges dead, BREAKS the
  /// dead holder's doorway/ticket by clearing its choosing and number
  /// slots — the one sanctioned violation of the single-writer discipline,
  /// sound because a dead verdict is sticky (the fenced-off rank never
  /// writes again). `beat`, when non-empty, is invoked each wait iteration
  /// so the caller stays visibly alive (FailureDetector::beat is
  /// throttled; pass it directly). Returns kTimedOut if the deadline
  /// expires (own slots are cleaned up first — the caller holds nothing),
  /// Status::ok once the lock is held.
  [[nodiscard]] Status lock_for(cxlsim::Accessor& acc, std::size_t participant,
                                std::chrono::milliseconds timeout,
                                const DeadPredicate& peer_dead,
                                const std::function<void()>& beat = {}) const;

  /// Release. Precondition: `participant` holds the lock.
  ///
  /// Releasing is a publish point: data written inside the critical
  /// section becomes visible to the next holder via the `number` flag
  /// hand-off. Callers that want the coherence checker to recognize that
  /// payload must annotate it on their Accessor (annotate_publish_range)
  /// before calling unlock() — as rma::Window::unlock does for its
  /// passive-epoch puts.
  void unlock(cxlsim::Accessor& acc, std::size_t participant) const;

  /// Try to acquire without waiting behind other tickets. Returns false if
  /// any other participant is competing.
  [[nodiscard]] bool try_lock(cxlsim::Accessor& acc,
                              std::size_t participant) const;

  /// Break a dead participant's doorway and ticket outright (the same
  /// clearing lock_for performs while waiting behind a corpse, exposed for
  /// PoolRecovery's scavenge pass — a stale ticket blocks every FUTURE
  /// acquirer whose drawn ticket is larger, even ones that never wait
  /// behind the dead rank directly). Only sound when the participant's
  /// rank has a sticky dead verdict: its slots have no writer left.
  /// Returns true when a ticket or doorway flag was actually standing.
  bool break_participant(cxlsim::Accessor& acc, std::size_t participant) const;

  /// True if `participant` currently advertises a drawn ticket or an open
  /// doorway (peek only; for recovery accounting and tests).
  [[nodiscard]] bool participant_active(cxlsim::Accessor& acc,
                                        std::size_t participant) const;

  [[nodiscard]] std::size_t max_participants() const noexcept {
    return max_participants_;
  }

  /// RAII guard.
  class Guard {
   public:
    Guard(const BakeryLock& lock_view, cxlsim::Accessor& acc,
          std::size_t participant)
        : lock_(lock_view), acc_(acc), participant_(participant) {
      lock_.lock(acc_, participant_);
    }
    ~Guard() { lock_.unlock(acc_, participant_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    const BakeryLock& lock_;
    cxlsim::Accessor& acc_;
    std::size_t participant_;
  };

 private:
  static constexpr std::size_t kHeaderBytes = kCacheLineSize;
  static constexpr std::size_t kSlotBytes = kCacheLineSize;
  // Header cacheline: participant count at +0, magic word at +8.
  static constexpr std::size_t kMagicOffset = 8;
  static constexpr std::uint64_t kMagic = 0x62616b6572796c6bULL;  // "bakerylk"
  /// Sanity ceiling for the attach-time participant-count check (far above
  /// any real universe; a corrupt header mostly reads as huge garbage).
  static constexpr std::uint64_t kMaxAttachParticipants = 65536;
  // Within a slot: choosing flag at +0, number flag at +16 (both
  // timestamped 16-byte flags).
  static constexpr std::size_t kChoosingOffset = 0;
  static constexpr std::size_t kNumberOffset = 16;

  BakeryLock(std::uint64_t base, std::size_t max_participants)
      : base_(base), max_participants_(max_participants) {}

  [[nodiscard]] std::uint64_t slot(std::size_t participant) const noexcept {
    return base_ + kHeaderBytes + participant * kSlotBytes;
  }

  std::uint64_t base_;
  std::size_t max_participants_;
};

}  // namespace cmpi::arena
