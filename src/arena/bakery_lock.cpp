#include "arena/bakery_lock.hpp"

#include <string>
#include <thread>

namespace cmpi::arena {

namespace {
constexpr std::uint64_t kFlagClear = 0;
constexpr std::uint64_t kChoosingSet = 1;
}  // namespace

BakeryLock BakeryLock::format(cxlsim::Accessor& acc, std::uint64_t base,
                              std::size_t max_participants) {
  CMPI_EXPECTS(max_participants > 0);
  CMPI_EXPECTS(max_participants <= kMaxAttachParticipants);
  CMPI_EXPECTS(is_aligned(base, kCacheLineSize));
  acc.nt_store_u64(base, max_participants);
  acc.nt_store_u64(base + kMagicOffset, kMagic);
  BakeryLock lock(base, max_participants);
  for (std::size_t p = 0; p < max_participants; ++p) {
    acc.publish_flag(lock.slot(p) + kChoosingOffset, kFlagClear);
    acc.publish_flag(lock.slot(p) + kNumberOffset, kFlagClear);
  }
  return lock;
}

Result<BakeryLock> BakeryLock::attach(cxlsim::Accessor& acc,
                                      std::uint64_t base) {
  if (!is_aligned(base, kCacheLineSize)) {
    return status::invalid_argument(
        "bakery attach: base " + std::to_string(base) +
        " is not cacheline-aligned");
  }
  const std::uint64_t magic = acc.nt_load_u64(base + kMagicOffset);
  if (magic != kMagic) {
    return status::invalid_argument(
        "bakery attach: no lock formatted at offset " + std::to_string(base) +
        " (magic " + std::to_string(magic) + ", want " +
        std::to_string(kMagic) + ")");
  }
  const std::uint64_t n = acc.nt_load_u64(base);
  if (n == 0 || n > kMaxAttachParticipants) {
    return status::invalid_argument(
        "bakery attach: header at offset " + std::to_string(base) +
        " claims " + std::to_string(n) + " participants (valid: 1.." +
        std::to_string(kMaxAttachParticipants) + ")");
  }
  return BakeryLock(base, static_cast<std::size_t>(n));
}

void BakeryLock::lock(cxlsim::Accessor& acc, std::size_t participant) const {
  CMPI_EXPECTS(participant < max_participants_);
  // Doorway: pick a ticket one greater than every ticket currently drawn.
  acc.publish_flag(slot(participant) + kChoosingOffset, kChoosingSet);
  std::uint64_t max_ticket = 0;
  for (std::size_t j = 0; j < max_participants_; ++j) {
    const auto number = acc.peek_flag(slot(j) + kNumberOffset);
    max_ticket = std::max(max_ticket, number.value);
  }
  const std::uint64_t my_ticket = max_ticket + 1;
  acc.publish_flag(slot(participant) + kNumberOffset, my_ticket);
  acc.publish_flag(slot(participant) + kChoosingOffset, kFlagClear);

  // Wait for every lower-priority ticket holder.
  for (std::size_t j = 0; j < max_participants_; ++j) {
    if (j == participant) {
      continue;
    }
    // First wait until j is out of the doorway.
    for (;;) {
      const auto choosing = acc.peek_flag(slot(j) + kChoosingOffset);
      if (choosing.value == kFlagClear) {
        acc.absorb_flag(choosing);
        break;
      }
      std::this_thread::yield();
    }
    // Then wait until j either is not competing or has lower priority
    // (larger ticket, or equal ticket and larger id).
    for (;;) {
      const auto number = acc.peek_flag(slot(j) + kNumberOffset);
      const bool j_waits_behind =
          number.value == kFlagClear || number.value > my_ticket ||
          (number.value == my_ticket && j > participant);
      if (j_waits_behind) {
        acc.absorb_flag(number);
        break;
      }
      std::this_thread::yield();
    }
  }
  acc.fault_sync_point("lock-acquired");
}

Status BakeryLock::lock_for(cxlsim::Accessor& acc, std::size_t participant,
                            std::chrono::milliseconds timeout,
                            const DeadPredicate& peer_dead,
                            const std::function<void()>& beat) const {
  CMPI_EXPECTS(participant < max_participants_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Doorway, as in lock(): the scan is bounded, only the waits below can
  // block.
  acc.publish_flag(slot(participant) + kChoosingOffset, kChoosingSet);
  std::uint64_t max_ticket = 0;
  for (std::size_t j = 0; j < max_participants_; ++j) {
    const auto number = acc.peek_flag(slot(j) + kNumberOffset);
    max_ticket = std::max(max_ticket, number.value);
  }
  const std::uint64_t my_ticket = max_ticket + 1;
  acc.publish_flag(slot(participant) + kNumberOffset, my_ticket);
  acc.publish_flag(slot(participant) + kChoosingOffset, kFlagClear);

  // Shared cleanup for the timeout path: withdraw our own ticket so later
  // acquirers don't wait behind a caller that gave up.
  const auto give_up = [&](std::size_t stuck_behind) {
    acc.publish_flag(slot(participant) + kNumberOffset, kFlagClear);
    return status::timed_out(
        "bakery lock_for: participant " + std::to_string(participant) +
        " gave up waiting behind participant " +
        std::to_string(stuck_behind));
  };
  const auto wait_tick = [&](std::size_t j) -> bool {
    // Returns whether the dead participant's slots were just broken (the
    // caller should re-peek rather than yield).
    if (peer_dead && peer_dead(j)) {
      // Break the dead participant's doorway and ticket. Its rank is
      // fenced off (sticky verdict), so these slots have no writer left;
      // clearing them is what lets the bakery queue drain past a crash.
      acc.publish_flag(slot(j) + kChoosingOffset, kFlagClear);
      acc.publish_flag(slot(j) + kNumberOffset, kFlagClear);
      return true;
    }
    if (beat) {
      beat();
    }
    std::this_thread::yield();
    return false;
  };

  for (std::size_t j = 0; j < max_participants_; ++j) {
    if (j == participant) {
      continue;
    }
    for (;;) {
      const auto choosing = acc.peek_flag(slot(j) + kChoosingOffset);
      if (choosing.value == kFlagClear) {
        acc.absorb_flag(choosing);
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return give_up(j);
      }
      wait_tick(j);
    }
    for (;;) {
      const auto number = acc.peek_flag(slot(j) + kNumberOffset);
      const bool j_waits_behind =
          number.value == kFlagClear || number.value > my_ticket ||
          (number.value == my_ticket && j > participant);
      if (j_waits_behind) {
        acc.absorb_flag(number);
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return give_up(j);
      }
      wait_tick(j);
    }
  }
  acc.fault_sync_point("lock-acquired");
  return Status::ok();
}

bool BakeryLock::try_lock(cxlsim::Accessor& acc,
                          std::size_t participant) const {
  CMPI_EXPECTS(participant < max_participants_);
  acc.publish_flag(slot(participant) + kChoosingOffset, kChoosingSet);
  std::uint64_t max_ticket = 0;
  bool contended = false;
  for (std::size_t j = 0; j < max_participants_; ++j) {
    if (j == participant) {
      continue;
    }
    const auto choosing = acc.peek_flag(slot(j) + kChoosingOffset);
    const auto number = acc.peek_flag(slot(j) + kNumberOffset);
    if (choosing.value != kFlagClear || number.value != kFlagClear) {
      contended = true;
    }
    max_ticket = std::max(max_ticket, number.value);
  }
  if (contended) {
    acc.publish_flag(slot(participant) + kChoosingOffset, kFlagClear);
    return false;
  }
  acc.publish_flag(slot(participant) + kNumberOffset, max_ticket + 1);
  acc.publish_flag(slot(participant) + kChoosingOffset, kFlagClear);
  // Between our scan and our ticket publication another participant may
  // have entered the doorway; fall back to the full wait, which is brief
  // because our ticket is already drawn.
  lock(acc, participant);
  // lock() re-publishes choosing/number; our earlier publication only
  // shortens its doorway. Correctness is the bakery invariant itself.
  return true;
}

void BakeryLock::unlock(cxlsim::Accessor& acc, std::size_t participant) const {
  CMPI_EXPECTS(participant < max_participants_);
  acc.publish_flag(slot(participant) + kNumberOffset, kFlagClear);
}

bool BakeryLock::participant_active(cxlsim::Accessor& acc,
                                    std::size_t participant) const {
  CMPI_EXPECTS(participant < max_participants_);
  return acc.peek_flag(slot(participant) + kChoosingOffset).value !=
             kFlagClear ||
         acc.peek_flag(slot(participant) + kNumberOffset).value != kFlagClear;
}

bool BakeryLock::break_participant(cxlsim::Accessor& acc,
                                   std::size_t participant) const {
  CMPI_EXPECTS(participant < max_participants_);
  const bool was_active = participant_active(acc, participant);
  if (was_active) {
    acc.publish_flag(slot(participant) + kChoosingOffset, kFlagClear);
    acc.publish_flag(slot(participant) + kNumberOffset, kFlagClear);
  }
  return was_active;
}

}  // namespace cmpi::arena
