#include "arena/bakery_lock.hpp"

#include <thread>

namespace cmpi::arena {

namespace {
constexpr std::uint64_t kFlagClear = 0;
constexpr std::uint64_t kChoosingSet = 1;
}  // namespace

BakeryLock BakeryLock::format(cxlsim::Accessor& acc, std::uint64_t base,
                              std::size_t max_participants) {
  CMPI_EXPECTS(max_participants > 0);
  CMPI_EXPECTS(is_aligned(base, kCacheLineSize));
  acc.nt_store_u64(base, max_participants);
  BakeryLock lock(base, max_participants);
  for (std::size_t p = 0; p < max_participants; ++p) {
    acc.publish_flag(lock.slot(p) + kChoosingOffset, kFlagClear);
    acc.publish_flag(lock.slot(p) + kNumberOffset, kFlagClear);
  }
  return lock;
}

BakeryLock BakeryLock::attach(cxlsim::Accessor& acc, std::uint64_t base) {
  const std::uint64_t n = acc.nt_load_u64(base);
  CMPI_ENSURES(n > 0);
  return BakeryLock(base, static_cast<std::size_t>(n));
}

void BakeryLock::lock(cxlsim::Accessor& acc, std::size_t participant) const {
  CMPI_EXPECTS(participant < max_participants_);
  // Doorway: pick a ticket one greater than every ticket currently drawn.
  acc.publish_flag(slot(participant) + kChoosingOffset, kChoosingSet);
  std::uint64_t max_ticket = 0;
  for (std::size_t j = 0; j < max_participants_; ++j) {
    const auto number = acc.peek_flag(slot(j) + kNumberOffset);
    max_ticket = std::max(max_ticket, number.value);
  }
  const std::uint64_t my_ticket = max_ticket + 1;
  acc.publish_flag(slot(participant) + kNumberOffset, my_ticket);
  acc.publish_flag(slot(participant) + kChoosingOffset, kFlagClear);

  // Wait for every lower-priority ticket holder.
  for (std::size_t j = 0; j < max_participants_; ++j) {
    if (j == participant) {
      continue;
    }
    // First wait until j is out of the doorway.
    for (;;) {
      const auto choosing = acc.peek_flag(slot(j) + kChoosingOffset);
      if (choosing.value == kFlagClear) {
        acc.absorb_flag(choosing);
        break;
      }
      std::this_thread::yield();
    }
    // Then wait until j either is not competing or has lower priority
    // (larger ticket, or equal ticket and larger id).
    for (;;) {
      const auto number = acc.peek_flag(slot(j) + kNumberOffset);
      const bool j_waits_behind =
          number.value == kFlagClear || number.value > my_ticket ||
          (number.value == my_ticket && j > participant);
      if (j_waits_behind) {
        acc.absorb_flag(number);
        break;
      }
      std::this_thread::yield();
    }
  }
}

bool BakeryLock::try_lock(cxlsim::Accessor& acc,
                          std::size_t participant) const {
  CMPI_EXPECTS(participant < max_participants_);
  acc.publish_flag(slot(participant) + kChoosingOffset, kChoosingSet);
  std::uint64_t max_ticket = 0;
  bool contended = false;
  for (std::size_t j = 0; j < max_participants_; ++j) {
    if (j == participant) {
      continue;
    }
    const auto choosing = acc.peek_flag(slot(j) + kChoosingOffset);
    const auto number = acc.peek_flag(slot(j) + kNumberOffset);
    if (choosing.value != kFlagClear || number.value != kFlagClear) {
      contended = true;
    }
    max_ticket = std::max(max_ticket, number.value);
  }
  if (contended) {
    acc.publish_flag(slot(participant) + kChoosingOffset, kFlagClear);
    return false;
  }
  acc.publish_flag(slot(participant) + kNumberOffset, max_ticket + 1);
  acc.publish_flag(slot(participant) + kChoosingOffset, kFlagClear);
  // Between our scan and our ticket publication another participant may
  // have entered the doorway; fall back to the full wait, which is brief
  // because our ticket is already drawn.
  lock(acc, participant);
  // lock() re-publishes choosing/number; our earlier publication only
  // shortens its doorway. Correctness is the bakery invariant itself.
  return true;
}

void BakeryLock::unlock(cxlsim::Accessor& acc, std::size_t participant) const {
  CMPI_EXPECTS(participant < max_participants_);
  acc.publish_flag(slot(participant) + kNumberOffset, kFlagClear);
}

}  // namespace cmpi::arena
