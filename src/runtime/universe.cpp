#include "runtime/universe.hpp"

#include <algorithm>
#include <bit>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"
#include "cxlsim/coherence_checker.hpp"
#include "obs/obs.hpp"
#include "runtime/config_validate.hpp"
#include "runtime/pool_recovery.hpp"

namespace cmpi::runtime {

namespace {
thread_local RankCtx* tls_ctx = nullptr;
}  // namespace

RankCtx* RankCtx::current() noexcept { return tls_ctx; }

Universe::Universe(const UniverseConfig& config)
    : config_(config), doorbell_(config.doorbell_recheck) {
  CMPI_EXPECTS(config.nodes > 0);
  CMPI_EXPECTS(config.ranks_per_node > 0);
  CMPI_EXPECTS(config.cell_payload >= kCacheLineSize);
  CMPI_EXPECTS(is_aligned(config.cell_payload, kCacheLineSize));
  CMPI_EXPECTS(config.ring_cells >= 2);
  CMPI_EXPECTS(config.failure_lease.count() > 0);
  CMPI_EXPECTS(config.doorbell_recheck.count() > 0);
  if (const Status knobs = validate(config); !knobs.is_ok()) {
    throw std::invalid_argument(knobs.message());
  }

  // Settle the telemetry configuration (CMPI_TRACE / CMPI_METRICS /
  // CMPI_FLIGHT / CMPI_OBS) before any instrumented traffic. Idempotent:
  // only the first Universe of the process reads the environment.
  obs::configure_from_env();

  // The rings require a power-of-two cell count (index wraparound);
  // accept any requested geometry and round up.
  config_.ring_cells = std::bit_ceil(config_.ring_cells);

  // Every rank must have a bakery-lock slot in the arena.
  config_.arena_params.max_participants =
      std::max<std::size_t>(config_.arena_params.max_participants,
                            config_.nranks());

  if (config_.shared_device != nullptr) {
    // Service mode: a tenant universe over a region of an existing pool.
    // Device-global policy (fault plans, MTRR cacheability) belongs to
    // the device owner (the pool service), not to any one tenant.
    device_ = config_.shared_device;
    CMPI_EXPECTS(config_.fault_plan.empty());
    CMPI_EXPECTS(!config_.uncachable_pool);
    region_base_ = config_.region_base;
    region_size_ = config_.region_size != 0
                       ? config_.region_size
                       : device_->size() - region_base_;
    CMPI_EXPECTS(is_aligned(region_base_, 4096));
    CMPI_EXPECTS(region_base_ + region_size_ <= device_->size());
  } else {
    CMPI_EXPECTS(config_.region_base == 0);
    device_ = check_ok(cxlsim::DaxDevice::create(
        config_.pool_size, std::max(4u, config_.nodes), config_.timing));
    region_base_ = 0;
    region_size_ = device_->size();
  }
  // Settle coherence checking before any pool traffic (kAuto keeps
  // whatever the CMPI_COHERENCE_CHECK environment variable selected in
  // DaxDevice::create).
  if (config_.coherence_check == CoherenceChecking::kEnabled) {
    device_->enable_coherence_checker();
  } else if (config_.coherence_check == CoherenceChecking::kDisabled) {
    device_->disable_coherence_checker();
  }
  if (config_.uncachable_pool) {
    check_ok(device_->set_cacheability(0, device_->size(),
                                       cxlsim::Cacheability::kUncachable));
  }
  node_caches_.reserve(config_.nodes);
  for (unsigned n = 0; n < config_.nodes; ++n) {
    node_caches_.push_back(
        std::make_unique<cxlsim::CacheSim>(*device_, config_.cache_geometry));
  }

  const std::uint64_t region_end = region_base_ + region_size_;
  barrier_base_ = region_base_ + kBarrierOffset;
  const std::uint64_t barrier_end =
      barrier_base_ + SeqBarrier::footprint(config_.nranks());
  // Heartbeat slots, the recovery ledger and the aggregated p2p doorbell
  // matrix ride in the same reserved region as the barrier; the arena
  // starts at the next 4 KiB boundary. Everything is region-relative so a
  // tenant's whole footprint — metadata included — lives in its fault
  // domain.
  hb_base_ = barrier_end;
  recovery_base_ = hb_base_ + FailureDetector::footprint(config_.nranks());
  doorbell_base_ = recovery_base_ + PoolRecovery::footprint(config_.nranks());
  arena_base_ = align_up(
      doorbell_base_ + AggDoorbell::footprint(config_.nranks()), 4096);
  CMPI_EXPECTS(arena_base_ + arena::Arena::metadata_footprint(
                                 config_.arena_params) <
               region_end);

  // Bootstrap with a scratch accessor: format the barrier array, the
  // heartbeat slots and the arena. Bootstrap state is flushed out of the
  // scratch cache so every node starts clean.
  simtime::VClock boot_clock;
  cxlsim::CacheSim boot_cache(*device_, {.sets = 64, .ways = 4});
  cxlsim::Accessor boot(*device_, boot_cache, boot_clock);
  configure_accessor(boot);
  SeqBarrier::format(boot, barrier_base_, config_.nranks());
  FailureDetector::format(boot, hb_base_, config_.nranks());
  PoolRecovery::format(boot, recovery_base_, config_.nranks());
  AggDoorbell::format(boot, doorbell_base_, config_.nranks());
  check_ok(arena::Arena::format(boot, arena_base_, region_end - arena_base_,
                                /*participant=*/0, config_.arena_params));
  boot_cache.writeback_all();
  // Install the fault plan only after bootstrap so formatting traffic is
  // never counted toward crash-at-Nth schedules or flagged as poisoned.
  if (!config_.fault_plan.empty()) {
    device_->install_fault_plan(config_.fault_plan);
  }
  incarnations_.assign(config_.nranks(), 0);
  rank_crashed_.assign(config_.nranks(), false);
  node_dead_.assign(config_.nodes, false);
  recovery_counters_ = std::make_unique<RecoveryCounters>();
  obs_registration_ = obs::ProviderRegistration(
      [counters = recovery_counters_.get()] {
        const auto load = [](const std::atomic<std::uint64_t>& a) {
          return a.load(std::memory_order_relaxed);
        };
        return std::vector<obs::Sample>{
            {"recovery.crc_failures", load(counters->crc_failures)},
            {"recovery.naks_sent", load(counters->naks_sent)},
            {"recovery.retransmits", load(counters->retransmits)},
            {"recovery.retransmit_rejects",
             load(counters->retransmit_rejects)},
            {"recovery.stale_fenced", load(counters->stale_fenced)},
            {"recovery.scavenges", load(counters->scavenges)},
            {"recovery.ring_cells_tombstoned",
             load(counters->ring_cells_tombstoned)},
            {"recovery.rendezvous_slots_scavenged",
             load(counters->rendezvous_slots_scavenged)},
        };
      });
  if (config_.shared_device != nullptr) {
    obs_domain_registration_ = obs::ProviderRegistration(
        [counters = &domain_counters_, tenant = config_.tenant_id] {
          const std::uint64_t writes =
              counters->writes_outside.load(std::memory_order_relaxed);
          const std::uint64_t reads =
              counters->reads_outside.load(std::memory_order_relaxed);
          const std::string prefix =
              "tenant." + std::to_string(tenant) + ".";
          return std::vector<obs::Sample>{
              {"tenant.out_of_domain_writes", writes},
              {"tenant.out_of_domain_reads", reads},
              {prefix + "out_of_domain_writes", writes},
              {prefix + "out_of_domain_reads", reads},
          };
        });
  }
  log_info("universe: %u nodes x %u ranks, pool %zu MiB, region [%#lx, %#lx), "
           "arena at %#lx",
           config_.nodes, config_.ranks_per_node, device_->size() >> 20,
           static_cast<unsigned long>(region_base_),
           static_cast<unsigned long>(region_base_ + region_size_),
           static_cast<unsigned long>(arena_base_));
}

void Universe::configure_accessor(cxlsim::Accessor& acc) noexcept {
  if (config_.tenant_id > 0) {
    acc.set_wfq_class(static_cast<unsigned>(config_.tenant_id));
  }
  if (config_.shared_device != nullptr) {
    acc.set_fault_domain(region_base_, region_size_, &domain_counters_);
  }
}

void Universe::run(const std::function<void(RankCtx&)>& fn) {
  const unsigned nranks = config_.nranks();
  std::vector<std::thread> threads;
  threads.reserve(nranks);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (unsigned r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      RankCtx ctx;
      ctx.rank_ = static_cast<int>(r);
      ctx.nranks_ = static_cast<int>(nranks);
      ctx.node_ = static_cast<int>(r / config_.ranks_per_node);
      ctx.doorbell_ = &doorbell_;
      ctx.device_ = device_.get();
      ctx.config_ = &config_;
      ctx.incarnations_ = &incarnations_;
      ctx.recovery_counters_ = recovery_counters_.get();
      ctx.barrier_base_ = barrier_base_;
      ctx.recovery_base_ = recovery_base_;
      ctx.doorbell_base_ = doorbell_base_;
      ctx.acc_ = std::make_unique<cxlsim::Accessor>(
          *device_, *node_caches_[static_cast<std::size_t>(ctx.node_)],
          ctx.clock_);
      configure_accessor(*ctx.acc_);
      cxlsim::CoherenceChecker::set_current_rank(static_cast<int>(r));
      cxlsim::FaultInjector::set_current_rank(static_cast<int>(r));
      cxlsim::FaultInjector::set_rank_base(config_.fault_rank_base);
      // Rank/node/clock context for the obs layer (metrics shard, trace
      // ring, log prefix); torn down when the thread leaves the lambda.
      obs::RankScope obs_scope(ctx.rank_, ctx.node_, &ctx.clock_,
                               config_.tenant_id);
      try {
        ctx.arena_ = std::make_unique<arena::Arena>(
            check_ok(arena::Arena::attach(*ctx.acc_, arena_base_, r,
                                          incarnations_[r])));
        ctx.init_barrier_ = std::make_unique<SeqBarrier>(
            *ctx.acc_, barrier_base_, nranks, r);
        ctx.detector_ = std::make_unique<FailureDetector>(
            hb_base_, nranks, r, config_.failure_lease);
        tls_ctx = &ctx;
        fn(ctx);
      } catch (const cxlsim::RankCrashed& crash) {
        // Scripted fault, not a bug: the rank's "host" died. It stops
        // beating its heartbeat and never reaches another sync point; the
        // survivors detect it via their leases. Recorded by the injector,
        // reported in teardown — deliberately NOT re-thrown as the run's
        // error.
        log_warn("universe: rank %d crashed (fault injection): %s",
                 crash.rank(), crash.what());
        {
          // When the last rank of a node dies the simulated host is gone:
          // its private cache's dirty lines vanish with it. DROP them —
          // writing them back would leak post-crash state into the pool.
          std::lock_guard lock(failures_mutex_);
          rank_crashed_[r] = true;
          const auto node = static_cast<std::size_t>(ctx.node_);
          bool all_dead = true;
          for (unsigned rr = static_cast<unsigned>(node) *
                             config_.ranks_per_node;
               rr < (static_cast<unsigned>(node) + 1) * config_.ranks_per_node;
               ++rr) {
            all_dead = all_dead && rank_crashed_[rr];
          }
          if (all_dead) {
            node_dead_[node] = true;
            node_caches_[node]->drop_all();
          }
        }
        doorbell_.ring();
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Wake any ranks blocked on this one.
        doorbell_.ring();
      }
      // Fold this rank's liveness verdicts into the universe-level record
      // (survives the RankCtx, which dies with the thread).
      if (ctx.detector_ != nullptr) {
        const auto dead = ctx.detector_->failed_ranks();
        if (!dead.empty()) {
          std::lock_guard lock(failures_mutex_);
          for (int d : dead) {
            if (std::find(detected_failures_.begin(),
                          detected_failures_.end(),
                          d) == detected_failures_.end()) {
              detected_failures_.push_back(d);
            }
          }
        }
      }
      tls_ctx = nullptr;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Leave the pool coherent for the next run() or for inspection. Dead
  // nodes' caches are dropped, not flushed: a crashed host never gets to
  // write back its dirty lines.
  for (std::size_t n = 0; n < node_caches_.size(); ++n) {
    if (node_dead_[n]) {
      node_caches_[n]->drop_all();
    } else {
      node_caches_[n]->writeback_all();
    }
  }
  // Surface protocol violations the checker recorded during this run.
  if (cxlsim::CoherenceChecker* chk = device_->checker();
      chk != nullptr && chk->total_violations() > 0) {
    log_warn("universe: coherence checker recorded %s",
             chk->summary_string().c_str());
    const auto violations = chk->violations();
    const std::size_t shown = std::min<std::size_t>(violations.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& v = violations[i];
      log_warn("universe:   [%.*s] rank %d @%#llx (%s): %s",
               static_cast<int>(
                   cxlsim::CoherenceChecker::kind_name(v.kind).size()),
               cxlsim::CoherenceChecker::kind_name(v.kind).data(), v.rank,
               static_cast<unsigned long long>(v.offset), v.op,
               v.detail.c_str());
    }
    if (violations.size() > shown) {
      log_warn("universe:   ... %zu more", violations.size() - shown);
    }
    CMPI_OBS_FLIGHT("universe: coherence checker recorded violations");
  }
  // Surface injected faults the same way.
  if (cxlsim::FaultInjector* fi = device_->fault_injector();
      fi != nullptr && fi->total_events() > 0) {
    log_warn("universe: fault injector fired: %s",
             fi->summary_string().c_str());
    const auto events = fi->events();
    const std::size_t shown = std::min<std::size_t>(events.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& e = events[i];
      log_warn("universe:   [%.*s] rank %d @%#llx: %s",
               static_cast<int>(
                   cxlsim::FaultInjector::kind_name(e.kind).size()),
               cxlsim::FaultInjector::kind_name(e.kind).data(), e.rank,
               static_cast<unsigned long long>(e.offset), e.detail.c_str());
    }
    if (events.size() > shown) {
      log_warn("universe:   ... %zu more", events.size() - shown);
    }
  }
  bool any_failed = false;
  {
    std::lock_guard lock(failures_mutex_);
    for (int d : detected_failures_) {
      log_warn("universe: failure detector declared rank %d dead", d);
    }
    any_failed = !detected_failures_.empty() ||
                 std::find(rank_crashed_.begin(), rank_crashed_.end(), true) !=
                     rank_crashed_.end();
  }
  if (any_failed) {
    CMPI_OBS_FLIGHT("universe: teardown with failed ranks");
  }
  // Write CMPI_METRICS / CMPI_TRACE artifacts even when re-throwing — a
  // failed run is exactly when the telemetry is wanted.
  obs::export_artifacts();
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void Universe::respawn(int rank) {
  CMPI_EXPECTS(rank >= 0 && static_cast<unsigned>(rank) < config_.nranks());
  const auto r = static_cast<std::size_t>(rank);
  incarnations_[r] += 1;
  if (cxlsim::FaultInjector* fi = device_->fault_injector()) {
    fi->absolve(config_.fault_rank_base + rank);
  }
  {
    std::lock_guard lock(failures_mutex_);
    detected_failures_.erase(std::remove(detected_failures_.begin(),
                                         detected_failures_.end(), rank),
                             detected_failures_.end());
    rank_crashed_[r] = false;
    node_dead_[r / config_.ranks_per_node] = false;
  }
  // Repair the rank's liveness and barrier slots with a scratch accessor
  // (respawn runs between run() epochs; no rank threads are live). The
  // heartbeat restarts from zero; the barrier slot is forged level with
  // the survivors so the next incarnation — whose SeqBarrier constructor
  // restores its sequence from this slot — rejoins in step even if no
  // survivor ran a scavenge.
  simtime::VClock clock;
  cxlsim::CacheSim cache(*device_, {.sets = 64, .ways = 4});
  cxlsim::Accessor acc(*device_, cache, clock);
  configure_accessor(acc);
  FailureDetector::reset_slot(acc, hb_base_, r);
  SeqBarrier::forge_slot(acc, barrier_base_, config_.nranks(), r);
  cache.writeback_all();
  log_info("universe: rank %d respawned as incarnation %u", rank,
           incarnations_[r]);
}

RecoveryStats Universe::recovery_stats() const {
  const RecoveryCounters& c = *recovery_counters_;
  RecoveryStats out;
  out.crc_failures = c.crc_failures.load();
  out.naks_sent = c.naks_sent.load();
  out.retransmits = c.retransmits.load();
  out.retransmit_rejects = c.retransmit_rejects.load();
  out.stale_fenced = c.stale_fenced.load();
  out.scavenges = c.scavenges.load();
  out.ring_cells_tombstoned = c.ring_cells_tombstoned.load();
  out.rendezvous_slots_scavenged = c.rendezvous_slots_scavenged.load();
  return out;
}

std::vector<int> Universe::failed_ranks() const {
  std::vector<int> out;
  if (const cxlsim::FaultInjector* fi = device_->fault_injector()) {
    // The injector's record is global; keep only this universe's rank
    // namespace and translate back to local ids.
    const int base = config_.fault_rank_base;
    const int limit = base + static_cast<int>(config_.nranks());
    for (const int global : fi->crashed_ranks()) {
      if (global >= base && global < limit) {
        out.push_back(global - base);
      }
    }
  }
  {
    std::lock_guard lock(failures_mutex_);
    out.insert(out.end(), detected_failures_.begin(),
               detected_failures_.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace cmpi::runtime
