#include "runtime/universe.hpp"

#include <algorithm>
#include <bit>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "cxlsim/coherence_checker.hpp"

namespace cmpi::runtime {

namespace {
thread_local RankCtx* tls_ctx = nullptr;
}  // namespace

RankCtx* RankCtx::current() noexcept { return tls_ctx; }

Universe::Universe(const UniverseConfig& config) : config_(config) {
  CMPI_EXPECTS(config.nodes > 0);
  CMPI_EXPECTS(config.ranks_per_node > 0);
  CMPI_EXPECTS(config.cell_payload >= kCacheLineSize);
  CMPI_EXPECTS(is_aligned(config.cell_payload, kCacheLineSize));
  CMPI_EXPECTS(config.ring_cells >= 2);

  // The rings require a power-of-two cell count (index wraparound);
  // accept any requested geometry and round up.
  config_.ring_cells = std::bit_ceil(config_.ring_cells);

  // Every rank must have a bakery-lock slot in the arena.
  config_.arena_params.max_participants =
      std::max<std::size_t>(config_.arena_params.max_participants,
                            config_.nranks());

  device_ = check_ok(cxlsim::DaxDevice::create(
      config_.pool_size, std::max(4u, config_.nodes), config_.timing));
  // Settle coherence checking before any pool traffic (kAuto keeps
  // whatever the CMPI_COHERENCE_CHECK environment variable selected in
  // DaxDevice::create).
  if (config_.coherence_check == CoherenceChecking::kEnabled) {
    device_->enable_coherence_checker();
  } else if (config_.coherence_check == CoherenceChecking::kDisabled) {
    device_->disable_coherence_checker();
  }
  if (config_.uncachable_pool) {
    check_ok(device_->set_cacheability(0, device_->size(),
                                       cxlsim::Cacheability::kUncachable));
  }
  node_caches_.reserve(config_.nodes);
  for (unsigned n = 0; n < config_.nodes; ++n) {
    node_caches_.push_back(
        std::make_unique<cxlsim::CacheSim>(*device_, config_.cache_geometry));
  }

  const std::uint64_t barrier_end =
      kBarrierBase + SeqBarrier::footprint(config_.nranks());
  arena_base_ = align_up(barrier_end, 4096);
  CMPI_EXPECTS(arena_base_ + arena::Arena::metadata_footprint(
                                 config_.arena_params) <
               device_->size());

  // Bootstrap with a scratch accessor: format the barrier array and the
  // arena. Bootstrap state is flushed out of the scratch cache so every
  // node starts clean.
  simtime::VClock boot_clock;
  cxlsim::CacheSim boot_cache(*device_, {.sets = 64, .ways = 4});
  cxlsim::Accessor boot(*device_, boot_cache, boot_clock);
  SeqBarrier::format(boot, kBarrierBase, config_.nranks());
  check_ok(arena::Arena::format(boot, arena_base_,
                                device_->size() - arena_base_,
                                /*participant=*/0, config_.arena_params));
  boot_cache.writeback_all();
  log_info("universe: %u nodes x %u ranks, pool %zu MiB, arena at %#lx",
           config_.nodes, config_.ranks_per_node, device_->size() >> 20,
           static_cast<unsigned long>(arena_base_));
}

void Universe::run(const std::function<void(RankCtx&)>& fn) {
  const unsigned nranks = config_.nranks();
  std::vector<std::thread> threads;
  threads.reserve(nranks);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (unsigned r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      RankCtx ctx;
      ctx.rank_ = static_cast<int>(r);
      ctx.nranks_ = static_cast<int>(nranks);
      ctx.node_ = static_cast<int>(r / config_.ranks_per_node);
      ctx.doorbell_ = &doorbell_;
      ctx.device_ = device_.get();
      ctx.config_ = &config_;
      ctx.acc_ = std::make_unique<cxlsim::Accessor>(
          *device_, *node_caches_[static_cast<std::size_t>(ctx.node_)],
          ctx.clock_);
      cxlsim::CoherenceChecker::set_current_rank(static_cast<int>(r));
      try {
        ctx.arena_ = std::make_unique<arena::Arena>(
            check_ok(arena::Arena::attach(*ctx.acc_, arena_base_, r)));
        ctx.init_barrier_ = std::make_unique<SeqBarrier>(
            *ctx.acc_, kBarrierBase, nranks, r);
        tls_ctx = &ctx;
        fn(ctx);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Wake any ranks blocked on this one.
        doorbell_.ring();
      }
      tls_ctx = nullptr;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Leave the pool coherent for the next run() or for inspection.
  for (auto& cache : node_caches_) {
    cache->writeback_all();
  }
  // Surface protocol violations the checker recorded during this run.
  if (cxlsim::CoherenceChecker* chk = device_->checker();
      chk != nullptr && chk->total_violations() > 0) {
    log_warn("universe: coherence checker recorded %s",
             chk->summary_string().c_str());
    const auto violations = chk->violations();
    const std::size_t shown = std::min<std::size_t>(violations.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& v = violations[i];
      log_warn("universe:   [%.*s] rank %d @%#llx (%s): %s",
               static_cast<int>(
                   cxlsim::CoherenceChecker::kind_name(v.kind).size()),
               cxlsim::CoherenceChecker::kind_name(v.kind).data(), v.rank,
               static_cast<unsigned long long>(v.offset), v.op,
               v.detail.c_str());
    }
    if (violations.size() > shown) {
      log_warn("universe:   ... %zu more", violations.size() - shown);
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace cmpi::runtime
