// The simulated MPI universe: a CXL pooled-memory device, N nodes (each a
// private cache-coherence domain), and ranks running as threads pinned to
// nodes. Equivalent to the paper's testbed of dual-socket servers attached
// to Niagara 2.0 — scaled by configuration instead of hardware.
//
// Pool layout (all cMPI-visible state lives in the pool, like the real
// system's dax device):
//
//   [0, 4 KiB)        bootstrap page (universe magic + geometry echo)
//   [4 KiB, ...)      initialization-barrier slot array (§3.4)
//   [hb_base, ...)    heartbeat slots, one cacheline per rank (liveness)
//   [recovery_base, ) PoolRecovery ledger (epoch + per-rank stamps)
//   [doorbell_base, ) aggregated p2p doorbell matrix (AggDoorbell)
//   [arena_base, )    CXL SHM Arena — every queue/window/flag object
//
// Universe::run(fn) launches one thread per rank, builds each rank's
// context (accessor over the node cache, virtual clock, attached arena)
// and calls fn. Exceptions in any rank are re-thrown after join — except
// scripted rank crashes (cxlsim::RankCrashed from the fault injector),
// which model a died host: the rank simply stops, the survivors keep
// running, and the crash is reported in the teardown summary and via
// failed_ranks() instead of being re-thrown.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "arena/arena.hpp"
#include "common/units.hpp"
#include "cxlsim/accessor.hpp"
#include "cxlsim/cache_sim.hpp"
#include "cxlsim/dax_device.hpp"
#include "obs/metrics.hpp"
#include "runtime/doorbell.hpp"
#include "runtime/failure_detector.hpp"
#include "runtime/seq_barrier.hpp"
#include "simtime/vclock.hpp"
#include "tune/options.hpp"

namespace cmpi::runtime {

/// Tri-state for the coherence-protocol checker (cxlsim/coherence_checker).
enum class CoherenceChecking {
  kAuto,      ///< follow the CMPI_COHERENCE_CHECK environment variable
  kEnabled,   ///< always interpose the checker
  kDisabled,  ///< never interpose, even if the environment asks for it
};

/// Which progress engine the p2p endpoints run (see p2p::Endpoint).
enum class ProgressEngine {
  /// Doorbell-aggregated delivery: the receiver polls its AggDoorbell row
  /// and visits only active peers, reaping cells in amortized batches.
  kDoorbell,
  /// The pre-doorbell engine: linear scan of every peer ring with per-cell
  /// publishes. Kept as the message-rate ablation baseline.
  kLegacyScan,
};

struct UniverseConfig {
  unsigned nodes = 2;
  unsigned ranks_per_node = 1;
  std::size_t pool_size = 64_MiB;
  arena::Arena::Params arena_params{
      .levels = 10, .level1_buckets = 1009, .max_participants = 64};
  cxlsim::CxlTimingParams timing{};
  cxlsim::CacheSim::Geometry cache_geometry{};
  /// Fixed software cost charged per MPI-level call (argument checking,
  /// request bookkeeping) — the residual MPICH overhead.
  simtime::Ns mpi_call_overhead = 800;
  /// Payload capacity of one message cell (§4.3; MPICH default 16 KiB, the
  /// paper's tuned value 64 KiB).
  std::size_t cell_payload = 16_KiB;
  /// Cells per pairwise SPSC ring. Rounded up to a power of two at
  /// Universe construction (the ring's free-running u64 indices need
  /// cells to divide 2^64 so `index % cells` survives wraparound).
  std::size_t ring_cells = 8;
  /// Eager/rendezvous switchover for two-sided sends (bytes). A message
  /// strictly larger than this takes the one-copy rendezvous path: the
  /// payload is parked in an arena slot and announced through the ring
  /// with small RTS descriptors, and the receiver pulls it straight into
  /// the user buffer (see p2p::Endpoint). 0 selects the default — one
  /// cell payload; SIZE_MAX disables rendezvous (eager chunking always).
  std::size_t rendezvous_threshold = 0;
  /// Cap on the rendezvous segment quantum — the pipeline granularity the
  /// sender announces RTS descriptors at (bytes). 0 selects the default
  /// (p2p::Endpoint::kRendezvousSegmentBytes, 128 KiB). Nonzero values
  /// must lie in [4 KiB, 16 MiB] (see runtime::validate).
  std::size_t rendezvous_quantum = 0;
  /// Un-FINished rendezvous slots allowed in flight toward one
  /// destination. 0 selects the default
  /// (p2p::Endpoint::kMaxRendezvousInflight, 8); nonzero must be <= 64.
  std::size_t rendezvous_inflight = 0;
  /// Telemetry-driven self-tuning (see src/tune): off by default
  /// (Tuning::kAuto follows CMPI_TUNE). When the controller is on, the
  /// three knobs above become per-destination starting points instead of
  /// fixed values.
  tune::TuneOptions tune{};
  /// p2p progress engine (doorbell-aggregated by default; kLegacyScan is
  /// the message-rate ablation baseline).
  ProgressEngine progress_engine = ProgressEngine::kDoorbell;
  /// §3.5's rejected alternative to software coherence: mark the whole
  /// pool uncachable via MTRR. Correct but drastically slower past the
  /// PCIe MPS (see bench/ablation_coherence_mode and Fig. 11).
  bool uncachable_pool = false;
  /// Coherence-protocol checking (off by default; the test suite turns it
  /// on for every test via CMPI_COHERENCE_CHECK=1). When enabled, every
  /// missing flush/fence/invalidate in a protocol layer is recorded and
  /// summarized at the end of run(); see Universe::coherence_checker().
  CoherenceChecking coherence_check = CoherenceChecking::kAuto;
  /// Scripted fault plan (rank crashes, poisoned ranges, degraded link);
  /// empty by default — no injector is installed and every hook stays a
  /// null-check. See cxlsim/fault_injector.hpp.
  cxlsim::FaultPlan fault_plan{};
  /// Heartbeat lease for the per-rank failure detector: a peer whose
  /// heartbeat counter does not advance for this long (wall-clock) is
  /// declared dead by deadline-aware blocking calls.
  std::chrono::milliseconds failure_lease{250};
  /// Doorbell predicate re-check interval; bounds how stale a lease check
  /// made from a wait loop can be. Must be well under failure_lease.
  std::chrono::milliseconds doorbell_recheck{1};

  // --- Service mode (multi-tenant; see runtime/pool_service.hpp) ---
  /// Attach to an existing shared device instead of creating one. The
  /// universe then occupies [region_base, region_base + region_size) of
  /// the pool: every on-pool structure (bootstrap page, barrier,
  /// heartbeats, recovery ledger, doorbell matrix, arena) is laid out
  /// region-relative, and each rank accessor is fenced to the region with
  /// blast-radius counters. pool_size/uncachable_pool/fault_plan are the
  /// *device owner's* business and must stay at their defaults here.
  std::shared_ptr<cxlsim::DaxDevice> shared_device;
  std::uint64_t region_base = 0;
  std::size_t region_size = 0;  ///< 0 = rest of the pool
  /// Tenant id for telemetry (flight-dump suffix, per-tenant metrics) and
  /// the WFQ bandwidth class. 0 = untenanted (the standalone default).
  int tenant_id = 0;
  /// Base of this universe's global-rank namespace for fault targeting:
  /// plan entries address rank `fault_rank_base + local`. 0 standalone.
  int fault_rank_base = 0;

  [[nodiscard]] unsigned nranks() const noexcept {
    return nodes * ranks_per_node;
  }
};

class Universe;

/// Monotonic host-side counters for the recovery layer, shared by every
/// rank of a Universe and accumulated across run() epochs. Incremented by
/// the p2p retransmission path and PoolRecovery; snapshot via
/// Universe::recovery_stats().
struct RecoveryCounters {
  std::atomic<std::uint64_t> crc_failures{0};   ///< chunks failing verify
  std::atomic<std::uint64_t> naks_sent{0};      ///< receiver NAKs issued
  std::atomic<std::uint64_t> retransmits{0};    ///< sender resends served
  std::atomic<std::uint64_t> retransmit_rejects{0};  ///< staging evicted
  std::atomic<std::uint64_t> stale_fenced{0};   ///< dead-incarnation msgs dropped
  std::atomic<std::uint64_t> scavenges{0};      ///< scavenge passes performed
  std::atomic<std::uint64_t> ring_cells_tombstoned{0};  ///< cells drained dead
  /// In-flight rendezvous payload slots reclaimed: by pool scavenge (a
  /// dead sender's slots) plus by survivors dropping slots whose receiver
  /// died before sending FIN.
  std::atomic<std::uint64_t> rendezvous_slots_scavenged{0};
};

/// Plain-value snapshot of RecoveryCounters.
struct RecoveryStats {
  std::uint64_t crc_failures = 0;
  std::uint64_t naks_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t retransmit_rejects = 0;
  std::uint64_t stale_fenced = 0;
  std::uint64_t scavenges = 0;
  std::uint64_t ring_cells_tombstoned = 0;
  std::uint64_t rendezvous_slots_scavenged = 0;
};

/// Everything one rank thread needs. Owned by the Universe; valid only for
/// the duration of the rank function.
class RankCtx {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] int node() const noexcept { return node_; }

  [[nodiscard]] cxlsim::Accessor& acc() noexcept { return *acc_; }
  [[nodiscard]] simtime::VClock& clock() noexcept { return clock_; }
  [[nodiscard]] Doorbell& doorbell() noexcept { return *doorbell_; }
  [[nodiscard]] arena::Arena& arena() noexcept { return *arena_; }
  [[nodiscard]] cxlsim::DaxDevice& device() noexcept { return *device_; }
  /// This rank's heartbeat-lease failure detector (liveness layer).
  [[nodiscard]] FailureDetector& failure_detector() noexcept {
    return *detector_;
  }
  [[nodiscard]] const UniverseConfig& config() const noexcept {
    return *config_;
  }

  /// This rank's incarnation number: 0 for the first life, bumped by each
  /// Universe::respawn. Stamped into every message cell so receivers can
  /// fence out traffic published by a dead incarnation.
  [[nodiscard]] std::uint32_t incarnation() const noexcept {
    return (*incarnations_)[static_cast<std::size_t>(rank_)];
  }
  /// Current incarnation of any rank (what this universe expects live
  /// traffic from `rank` to be stamped with).
  [[nodiscard]] std::uint32_t incarnation(int rank) const noexcept {
    return (*incarnations_)[static_cast<std::size_t>(rank)];
  }

  /// Base offset of the initialization-barrier slot array.
  [[nodiscard]] std::uint64_t barrier_base() const noexcept {
    return barrier_base_;
  }
  /// Base offset of the PoolRecovery ledger (epoch + per-rank stamps).
  [[nodiscard]] std::uint64_t recovery_base() const noexcept {
    return recovery_base_;
  }
  /// Base offset of the aggregated p2p doorbell matrix (AggDoorbell).
  [[nodiscard]] std::uint64_t doorbell_base() const noexcept {
    return doorbell_base_;
  }
  /// Shared recovery counters (see RecoveryCounters).
  [[nodiscard]] RecoveryCounters& recovery_counters() noexcept {
    return *recovery_counters_;
  }

  /// Enter the cross-node initialization barrier (§3.4).
  void barrier() {
    init_barrier_->enter(*acc_, *doorbell_);
  }

  /// Charge the fixed per-call MPI software overhead.
  void charge_mpi_overhead() noexcept {
    clock_.advance(config_->mpi_call_overhead);
  }

  /// The context of the calling rank thread (nullptr outside Universe::run).
  static RankCtx* current() noexcept;

 private:
  friend class Universe;
  RankCtx() = default;

  int rank_ = 0;
  int nranks_ = 0;
  int node_ = 0;
  simtime::VClock clock_;
  std::unique_ptr<cxlsim::Accessor> acc_;
  std::unique_ptr<arena::Arena> arena_;
  std::unique_ptr<SeqBarrier> init_barrier_;
  std::unique_ptr<FailureDetector> detector_;
  Doorbell* doorbell_ = nullptr;
  cxlsim::DaxDevice* device_ = nullptr;
  const UniverseConfig* config_ = nullptr;
  const std::vector<std::uint32_t>* incarnations_ = nullptr;
  RecoveryCounters* recovery_counters_ = nullptr;
  std::uint64_t barrier_base_ = 0;
  std::uint64_t recovery_base_ = 0;
  std::uint64_t doorbell_base_ = 0;
};

class Universe {
 public:
  explicit Universe(const UniverseConfig& config);

  /// Launch one thread per rank and run `fn` in each. Blocks until all
  /// ranks return; the first rank exception (if any) is re-thrown.
  void run(const std::function<void(RankCtx&)>& fn);

  [[nodiscard]] cxlsim::DaxDevice& device() noexcept { return *device_; }
  [[nodiscard]] const UniverseConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t arena_base() const noexcept {
    return arena_base_;
  }
  [[nodiscard]] Doorbell& doorbell() noexcept { return doorbell_; }

  /// Node cache of a given node id (tests/teardown).
  [[nodiscard]] cxlsim::CacheSim& node_cache(int node) noexcept {
    return *node_caches_[static_cast<std::size_t>(node)];
  }

  /// The coherence checker, or nullptr when checking is off. Violations
  /// accumulate across run() calls; tests assert on summary().total().
  [[nodiscard]] cxlsim::CoherenceChecker* coherence_checker() noexcept {
    return device_->checker();
  }

  /// The fault injector, or nullptr when config.fault_plan was empty.
  /// Events accumulate across run() calls (like the coherence checker).
  [[nodiscard]] cxlsim::FaultInjector* fault_injector() noexcept {
    return device_->fault_injector();
  }

  /// Ranks known to have failed: scripted crashes recorded by the fault
  /// injector plus peers declared dead by any rank's failure detector.
  /// Sorted, deduplicated. Accumulates across run() calls.
  [[nodiscard]] std::vector<int> failed_ranks() const;

  /// Base offset of the per-rank heartbeat slot array.
  [[nodiscard]] std::uint64_t heartbeat_base() const noexcept {
    return hb_base_;
  }
  /// Base offset of the PoolRecovery ledger.
  [[nodiscard]] std::uint64_t recovery_base() const noexcept {
    return recovery_base_;
  }
  /// Base offset of the aggregated p2p doorbell matrix.
  [[nodiscard]] std::uint64_t doorbell_base() const noexcept {
    return doorbell_base_;
  }

  /// Restart a crashed rank for the NEXT run() epoch under a bumped
  /// incarnation: forgives the injector's crash record, withdraws the rank
  /// from the detector-merged failure record, zeroes its heartbeat slot
  /// and forges its barrier slot level with the survivors so it rejoins in
  /// step. Stale pool state from the dead incarnation is fenced at the
  /// endpoint match path via the incarnation stamp (and reclaimed by
  /// PoolRecovery::scavenge if a survivor ran one). Must be called between
  /// run() epochs — never while rank threads are live.
  void respawn(int rank);

  /// Current incarnation of a rank (0 until its first respawn).
  [[nodiscard]] std::uint32_t incarnation(int rank) const {
    return incarnations_[static_cast<std::size_t>(rank)];
  }

  /// Snapshot of the recovery-layer counters (NAKs, retransmissions,
  /// fenced stale messages, scavenges). Accumulates across run() epochs.
  [[nodiscard]] RecoveryStats recovery_stats() const;

  /// Base/size of this universe's pool region ([0, device size) when it
  /// owns the whole device).
  [[nodiscard]] std::uint64_t region_base() const noexcept {
    return region_base_;
  }
  [[nodiscard]] std::uint64_t region_size() const noexcept {
    return region_size_;
  }

  /// Blast-radius counters of this universe's fault-domain fence: accesses
  /// its ranks made OUTSIDE [region_base, region_base + region_size).
  /// Always zero in whole-device mode (the fence is off) and, if tenant
  /// isolation holds, in service mode too.
  struct DomainStats {
    std::uint64_t writes_outside = 0;
    std::uint64_t reads_outside = 0;
  };
  [[nodiscard]] DomainStats domain_stats() const noexcept {
    return {domain_counters_.writes_outside.load(std::memory_order_relaxed),
            domain_counters_.reads_outside.load(std::memory_order_relaxed)};
  }

 private:
  /// Offset of the barrier array inside the region (the region's first
  /// 4 KiB is the bootstrap page).
  static constexpr std::uint64_t kBarrierOffset = 4096;

  /// Apply this universe's tenant attribution to an accessor: WFQ
  /// bandwidth class and, in service mode, the region fault-domain fence.
  void configure_accessor(cxlsim::Accessor& acc) noexcept;

  UniverseConfig config_;
  std::shared_ptr<cxlsim::DaxDevice> device_;
  std::uint64_t region_base_ = 0;
  std::uint64_t region_size_ = 0;
  std::uint64_t barrier_base_ = 0;
  /// Blast-radius counters shared by every rank accessor of the universe.
  cxlsim::DomainCounters domain_counters_;
  std::vector<std::unique_ptr<cxlsim::CacheSim>> node_caches_;
  Doorbell doorbell_;
  std::uint64_t hb_base_ = 0;
  std::uint64_t recovery_base_ = 0;
  std::uint64_t doorbell_base_ = 0;
  std::uint64_t arena_base_ = 0;
  /// Peers declared dead by rank detectors, merged at thread exit.
  mutable std::mutex failures_mutex_;
  std::vector<int> detected_failures_;
  /// Ranks whose threads unwound via RankCrashed (cleared by respawn).
  std::vector<bool> rank_crashed_;
  /// Nodes whose every rank has crashed: the "host" is dead, its private
  /// cache must be DROPPED, never written back (a dead host's writeback
  /// would leak post-crash state into the pool).
  std::vector<bool> node_dead_;
  std::vector<std::uint32_t> incarnations_;
  std::unique_ptr<RecoveryCounters> recovery_counters_;
  // Exposes the recovery counters to the obs metrics registry as the
  // recovery.* family; declared after the counters so the provider's final
  // read at unregistration still sees them alive.
  obs::ProviderRegistration obs_registration_;
  // Service mode only: exposes the blast-radius counters as tenant.* (the
  // aggregate across tenants) plus a tenant.<id>.* copy for per-tenant
  // isolation dashboards.
  obs::ProviderRegistration obs_domain_registration_;
};

}  // namespace cmpi::runtime
