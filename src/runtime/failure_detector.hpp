// Heartbeat-based failure detection over the CXL pool.
//
// A crashed host cannot be observed directly through pooled memory — it
// simply stops writing. Detection therefore follows the classic lease
// scheme, built from the same single-writer no-RMW discipline as the
// sequence barrier (§3.4): every rank owns one heartbeat cacheline in the
// pool and publishes a monotonically increasing counter into it; a peer
// whose counter has not advanced for a full lease (wall-clock) is declared
// dead. Verdicts are sticky — a pooled-memory host that missed its lease
// is fenced off by software even if it later resumes (its locks may
// already have been broken; see BakeryLock::lock_for).
//
// Heartbeats are written from the deadline-aware blocking loops
// (Endpoint::wait_for, BakeryLock::lock_for via its beat callback, ...),
// throttled to a fraction of the lease so a blocked-but-alive rank stays
// visibly alive without flooding the pool. Plain (deadline-free) blocking
// calls neither beat nor check: the liveness layer is pay-for-use, and a
// universe that never supplies a deadline runs byte-identically to one
// built before this layer existed.
//
// Detection latency is ~lease; the lease must comfortably exceed the
// doorbell re-check interval (which bounds how often waiters get to beat)
// and any scheduling hiccup of a healthy rank thread.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/align.hpp"
#include "common/status.hpp"
#include "cxlsim/accessor.hpp"

namespace cmpi::runtime {

class FailureDetector {
 public:
  /// Bytes of CXL SHM for `ranks` heartbeat slots (one cacheline each).
  static constexpr std::size_t footprint(std::size_t ranks) noexcept {
    return ranks * kCacheLineSize;
  }

  /// One-time zeroing of the slots (bootstrap, before any beat()).
  static void format(cxlsim::Accessor& acc, std::uint64_t base,
                     std::size_t ranks);

  /// View for one rank. `base` must match format's.
  FailureDetector(std::uint64_t base, std::size_t ranks, std::size_t my_rank,
                  std::chrono::milliseconds lease);

  /// Publish this rank's heartbeat if at least lease/8 has elapsed since
  /// the previous publish (call freely from wait loops; almost always a
  /// no-op). The publish is a plain single-writer flag — no RMW.
  void beat(cxlsim::Accessor& acc);

  /// Liveness verdict for `rank`. A peer is declared dead when its
  /// heartbeat counter has not advanced for a full lease since this
  /// detector first observed it. Sticky: once dead, always dead. A rank is
  /// never its own peer (always alive), and out-of-range ids are alive.
  [[nodiscard]] bool dead(cxlsim::Accessor& acc, int rank);

  /// Status form of the verdict: kPeerFailed naming the rank, or ok.
  Status check_peer(cxlsim::Accessor& acc, int rank);

  /// Ranks this detector has declared dead, ascending.
  [[nodiscard]] std::vector<int> failed_ranks() const;

  [[nodiscard]] std::chrono::milliseconds lease() const noexcept {
    return lease_;
  }
  [[nodiscard]] std::size_t ranks() const noexcept { return ranks_; }

  using Clock = std::chrono::steady_clock;

  /// Test seam: substitute the wall clock used for lease arithmetic. The
  /// lease boundary ("exactly at the edge") cannot be pinned against the
  /// real clock; tests inject a fake to hit it deterministically.
  void debug_set_clock(std::function<Clock::time_point()> now_fn) {
    now_fn_ = std::move(now_fn);
  }

  /// Reset one rank's heartbeat slot to zero (Universe::respawn, before
  /// the rank's next incarnation starts beating). Survivor detectors keep
  /// their sticky verdict on the OLD incarnation — only detectors created
  /// after the respawn observe the slot fresh.
  static void reset_slot(cxlsim::Accessor& acc, std::uint64_t base,
                         std::size_t rank) {
    acc.publish_flag(base + rank * kCacheLineSize, 0);
  }

 private:

  [[nodiscard]] std::uint64_t slot(std::size_t rank) const noexcept {
    return base_ + rank * kCacheLineSize;
  }

  /// Last observation of one peer's heartbeat.
  struct PeerState {
    std::uint64_t value = 0;
    Clock::time_point changed{};
    bool observed = false;
    bool dead = false;
  };

  std::uint64_t base_;
  std::size_t ranks_;
  std::size_t my_rank_;
  std::chrono::milliseconds lease_;
  std::chrono::milliseconds beat_interval_;
  [[nodiscard]] Clock::time_point now() const {
    return now_fn_ ? now_fn_() : Clock::now();
  }

  std::uint64_t my_counter_ = 0;
  Clock::time_point last_beat_{};
  bool ever_beat_ = false;
  std::vector<PeerState> peers_;
  std::function<Clock::time_point()> now_fn_;
};

}  // namespace cmpi::runtime
