// Shared-pool fsck + reclamation after a rank death (the recovery layer
// the ROADMAP's production north star requires on top of PR 2's
// detection).
//
// A crashed host cannot clean up after itself: its arena allocations,
// bakery-lock tickets and barrier occupancy sit in the pool forever unless
// a survivor reclaims them. PoolRecovery::scavenge(dead_rank) is that
// reclamation pass — callable by ANY survivor once the FailureDetector
// (or the fault injector, for scripted crashes) has convicted the rank:
//
//   1. acquire the arena lock with the dead-aware lock_for (breaking the
//      corpse's ticket if it died inside the critical section),
//   2. consult the on-pool recovery ledger: if another survivor already
//      scavenged this incarnation of the rank, return without touching
//      anything (exactly-once semantics, serialized by the arena lock),
//   3. walk the arena slot table freeing every kOwned object of the dead
//      incarnation (Arena::scavenge_locked),
//   4. break the dead rank's remaining arena-lock ticket outright (a
//      stale ticket blocks all future acquirers with larger tickets),
//   5. forge the dead rank's barrier slot level with the survivors
//      (SeqBarrier::forge_slot) so collectives drain past the corpse,
//   6. publish the per-rank ledger stamp and bump the global recovery
//      epoch — still inside the critical section.
//
// The ledger lives in its own reserved pool region (between the heartbeat
// slots and the arena): one cacheline holding the global recovery epoch,
// plus one cacheline per rank holding "scavenged through incarnation + 1".
// All ledger traffic is single-writer-under-lock timestamped flags — the
// recovery path needs only the same flush + invalidate discipline as every
// other layer, no cross-node atomics (see DESIGN.md).
//
// Ring cells and RMA window words are NOT touched here: the runtime layer
// cannot reach into p2p/rma (layering). Endpoint::scavenge_peer and
// Window::scavenge_peer do the structure-local repairs; core::Session ties
// them together.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/align.hpp"
#include "common/status.hpp"
#include "cxlsim/accessor.hpp"
#include "runtime/universe.hpp"

namespace cmpi::runtime {

class PoolRecovery {
 public:
  /// Bytes of CXL SHM for the ledger: the global epoch cacheline plus one
  /// per-rank stamp cacheline.
  static constexpr std::size_t footprint(std::size_t ranks) noexcept {
    return (1 + ranks) * kCacheLineSize;
  }

  /// One-time zeroing of the ledger (bootstrap, done by the Universe).
  static void format(cxlsim::Accessor& acc, std::uint64_t base,
                     std::size_t ranks);

  /// View for the calling rank (valid for the RankCtx's lifetime).
  explicit PoolRecovery(RankCtx& ctx) : ctx_(&ctx) {}

  /// What one scavenge pass did.
  struct ScavengeReport {
    /// False when another survivor had already scavenged this incarnation
    /// — nothing was touched, `epoch` is the current epoch.
    bool performed = false;
    /// Global recovery epoch after (or at, when !performed) this call.
    std::uint64_t epoch = 0;
    std::uint64_t arena_bytes_reclaimed = 0;
    std::uint64_t arena_slots_reclaimed = 0;
    /// Of the arena slots, how many held in-flight rendezvous payloads
    /// (large messages the dead rank published but no receiver FINished).
    std::uint64_t rendezvous_slots_reclaimed = 0;
    std::uint64_t lock_tickets_broken = 0;
    bool barrier_slot_forged = false;
    /// The dead rank's column of aggregated-doorbell slots was zeroed
    /// (stale rings gone; its next incarnation restarts the counters).
    bool doorbell_cleared = false;
  };

  /// Reclaim the pool state of `dead_rank`'s current incarnation. The rank
  /// must already be convicted (FailureDetector verdict or injector crash
  /// record); a scavenge of a live rank would race its writes, so an
  /// unconvicted target fails with kInvalidArgument. Waits at most
  /// `timeout` for the arena lock (kTimedOut on expiry).
  Result<ScavengeReport> scavenge(int dead_rank,
                                  std::chrono::milliseconds timeout);

  /// Current global recovery epoch (number of scavenge passes ever
  /// performed on this pool). Survivors that cache the last epoch they
  /// acted on observe each repair exactly once.
  [[nodiscard]] std::uint64_t recovery_epoch();

  /// Ledger stamp for one rank: 0 if never scavenged, otherwise
  /// (incarnation scavenged through) + 1.
  [[nodiscard]] std::uint64_t scavenged_through(int rank);

 private:
  [[nodiscard]] std::uint64_t epoch_slot() const noexcept {
    return ctx_->recovery_base();
  }
  [[nodiscard]] std::uint64_t rank_slot(int rank) const noexcept {
    return ctx_->recovery_base() +
           (1 + static_cast<std::uint64_t>(rank)) * kCacheLineSize;
  }

  RankCtx* ctx_;
};

}  // namespace cmpi::runtime
