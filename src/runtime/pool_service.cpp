#include "runtime/pool_service.hpp"

#include <algorithm>
#include <thread>

#include "common/align.hpp"
#include "common/log.hpp"
#include "obs/obs.hpp"

namespace cmpi::runtime {

TenantSession& TenantSession::operator=(TenantSession&& other) noexcept {
  if (this != &other) {
    leave();
    service_ = other.service_;
    universe_ = std::move(other.universe_);
    tenant_id_ = other.tenant_id_;
    rank_base_ = other.rank_base_;
    base_ = other.base_;
    size_ = other.size_;
    share_ = other.share_;
    other.service_ = nullptr;
  }
  return *this;
}

void TenantSession::leave() {
  if (service_ == nullptr) {
    return;
  }
  PoolService* service = service_;
  service_ = nullptr;
  service->release(*this);
  universe_.reset();
}

PoolService::PoolService(const PoolServiceConfig& config)
    : config_(config), jitter_rng_(config.backoff.jitter_seed) {
  CMPI_EXPECTS(config_.max_tenants > 0);
  CMPI_EXPECTS(config_.backoff.initial.count() > 0);
  CMPI_EXPECTS(config_.backoff.cap >= config_.backoff.initial);
  CMPI_EXPECTS(config_.backoff.multiplier >= 1.0);
  if (!config_.now_fn) {
    config_.now_fn = [] { return std::chrono::steady_clock::now(); };
  }
  if (!config_.sleep_fn) {
    config_.sleep_fn = [](std::chrono::microseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
  obs::configure_from_env();
  device_ = check_ok(cxlsim::DaxDevice::create(
      config_.pool_size, std::max(4u, config_.heads), config_.timing));
  if (!config_.fault_plan.empty()) {
    device_->install_fault_plan(config_.fault_plan);
  }
  CMPI_EXPECTS(device_->size() > kServiceReserved);
  free_.push_back({kServiceReserved, device_->size() - kServiceReserved});
  obs_registration_ = obs::ProviderRegistration([this] {
    const AdmissionStats stats = admission_stats();
    return std::vector<obs::Sample>{
        {"svc.admissions", stats.admissions},
        {"svc.rejections", stats.rejections},
        {"svc.retries", stats.retries},
        {"svc.leaves", stats.leaves},
        {"svc.active_tenants", stats.active_tenants},
    };
  });
  log_info("pool service: %zu MiB pool, %zu tenant slots",
           device_->size() >> 20, config_.max_tenants);
}

std::uint64_t PoolService::allocate_region_locked(std::uint64_t size) {
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].size < size) {
      continue;
    }
    const std::uint64_t base = free_[i].base;
    free_[i].base += size;
    free_[i].size -= size;
    if (free_[i].size == 0) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return base;
  }
  return 0;  // the service page occupies offset 0: never a valid region
}

void PoolService::free_region_locked(std::uint64_t base, std::uint64_t size) {
  const auto at = std::lower_bound(
      free_.begin(), free_.end(), base,
      [](const FreeRegion& r, std::uint64_t b) { return r.base < b; });
  auto it = free_.insert(at, {base, size});
  // Coalesce with the successor, then the predecessor.
  if (const auto next = it + 1;
      next != free_.end() && it->base + it->size == next->base) {
    it->size += next->size;
    it = free_.erase(next) - 1;
  }
  if (it != free_.begin()) {
    const auto prev = it - 1;
    if (prev->base + prev->size == it->base) {
      prev->size += it->size;
      free_.erase(it);
    }
  }
}

Result<TenantSession> PoolService::join(const TenantConfig& tenant) {
  CMPI_EXPECTS(tenant.nodes > 0 && tenant.ranks_per_node > 0);
  CMPI_EXPECTS(tenant.bandwidth_share >= 0.0 && tenant.bandwidth_share < 1.0);
  const std::uint64_t size = align_up(tenant.region_size, std::size_t{4096});

  TenantSession session;
  {
    std::lock_guard lock(mutex_);
    if (active_tenants_ >= config_.max_tenants) {
      ++rejections_;
      return status::admission_rejected(
          "pool service at capacity: " + std::to_string(active_tenants_) +
          "/" + std::to_string(config_.max_tenants) + " tenants admitted");
    }
    if (tenant.bandwidth_share > 0.0 &&
        reserved_bandwidth_ + tenant.bandwidth_share > 1.0 + 1e-9) {
      ++rejections_;
      return status::admission_rejected(
          "bandwidth oversubscribed: " +
          std::to_string(reserved_bandwidth_) + " reserved, " +
          std::to_string(tenant.bandwidth_share) + " requested");
    }
    const std::uint64_t base = allocate_region_locked(size);
    if (base == 0) {
      ++rejections_;
      return status::admission_rejected(
          "no free region of " + std::to_string(size) + " bytes");
    }
    session.service_ = this;
    session.tenant_id_ = next_tenant_id_++;
    session.rank_base_ = next_rank_base_;
    next_rank_base_ +=
        static_cast<int>(tenant.nodes * tenant.ranks_per_node);
    session.base_ = base;
    session.size_ = size;
    session.share_ = tenant.bandwidth_share;
    ++active_tenants_;
    ++admissions_;
    reserved_bandwidth_ += tenant.bandwidth_share;
  }
  if (session.share_ > 0.0) {
    device_->timing().set_bandwidth_share(
        static_cast<unsigned>(session.tenant_id_), session.share_);
  }

  // Region bookkeeping done — format the tenant's universe outside the
  // admission lock (bootstrap traffic may be slow and touches only the
  // tenant's own region).
  UniverseConfig cfg;
  cfg.nodes = tenant.nodes;
  cfg.ranks_per_node = tenant.ranks_per_node;
  cfg.arena_params = tenant.arena_params;
  cfg.cache_geometry = config_.cache_geometry;
  cfg.cell_payload = tenant.cell_payload;
  cfg.ring_cells = tenant.ring_cells;
  cfg.rendezvous_threshold = tenant.rendezvous_threshold;
  cfg.failure_lease = tenant.failure_lease;
  cfg.shared_device = device_;
  cfg.region_base = session.base_;
  cfg.region_size = session.size_;
  cfg.tenant_id = session.tenant_id_;
  cfg.fault_rank_base = session.rank_base_;
  session.universe_ = std::make_unique<Universe>(cfg);
  log_info("pool service: tenant %d admitted, region [%#lx, %#lx), share %.2f",
           session.tenant_id_, static_cast<unsigned long>(session.base_),
           static_cast<unsigned long>(session.base_ + session.size_),
           session.share_);
  return session;
}

Result<TenantSession> PoolService::join_for(
    const TenantConfig& tenant, std::chrono::milliseconds deadline) {
  const auto start = config_.now_fn();
  const auto limit = start + deadline;
  std::chrono::microseconds next{config_.backoff.initial};
  for (;;) {
    Result<TenantSession> attempt = join(tenant);
    if (attempt.is_ok() ||
        attempt.status().code() != ErrorCode::kAdmissionRejected) {
      return attempt;
    }
    const auto now = config_.now_fn();
    if (now >= limit) {
      return status::timed_out("join_for deadline elapsed; last rejection: " +
                               attempt.status().message());
    }
    // Jittered exponential backoff, clipped to the remaining deadline so
    // a late retry never overshoots it.
    std::chrono::microseconds delay;
    {
      std::lock_guard lock(mutex_);
      std::uniform_real_distribution<double> jitter(0.5, 1.0);
      delay = std::chrono::microseconds(static_cast<std::int64_t>(
          static_cast<double>(next.count()) * jitter(jitter_rng_)));
      ++retries_;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(limit - now);
    delay = std::min(delay, remaining);
    if (delay.count() > 0) {
      config_.sleep_fn(delay);
    }
    next = std::min(
        config_.backoff.cap,
        std::chrono::microseconds(static_cast<std::int64_t>(
            static_cast<double>(next.count()) * config_.backoff.multiplier)));
  }
}

void PoolService::release(TenantSession& session) {
  if (session.share_ > 0.0) {
    device_->timing().clear_bandwidth_share(
        static_cast<unsigned>(session.tenant_id_));
  }
  std::lock_guard lock(mutex_);
  free_region_locked(session.base_, session.size_);
  CMPI_EXPECTS(active_tenants_ > 0);
  --active_tenants_;
  reserved_bandwidth_ = std::max(0.0, reserved_bandwidth_ - session.share_);
  ++leaves_;
  log_info("pool service: tenant %d left, region [%#lx, %#lx) reclaimed",
           session.tenant_id_, static_cast<unsigned long>(session.base_),
           static_cast<unsigned long>(session.base_ + session.size_));
}

AdmissionStats PoolService::admission_stats() const {
  std::lock_guard lock(mutex_);
  AdmissionStats out;
  out.admissions = admissions_;
  out.rejections = rejections_;
  out.retries = retries_;
  out.leaves = leaves_;
  out.active_tenants = active_tenants_;
  return out;
}

}  // namespace cmpi::runtime
