#include "runtime/seq_barrier.hpp"

#include <algorithm>

namespace cmpi::runtime {

void SeqBarrier::format(cxlsim::Accessor& acc, std::uint64_t base,
                        std::size_t ranks) {
  CMPI_EXPECTS(is_aligned(base, kCacheLineSize));
  for (std::size_t r = 0; r < ranks; ++r) {
    acc.publish_flag(base + r * kCacheLineSize, 0);
  }
}

void SeqBarrier::enter(cxlsim::Accessor& acc, Doorbell& doorbell) {
  acc.fault_sync_point("barrier-enter");
  ++sequence_;
  acc.publish_flag(slot(my_rank_), sequence_);
  doorbell.ring();
  for (std::size_t r = 0; r < ranks_; ++r) {
    if (r == my_rank_) {
      continue;
    }
    cxlsim::Accessor::FlagValue seen{};
    doorbell.wait_until([&] {
      seen = acc.peek_flag(slot(r));
      return seen.value >= sequence_;
    });
    acc.absorb_flag(seen);
  }
}

bool SeqBarrier::forge_slot(cxlsim::Accessor& acc, std::uint64_t base,
                            std::size_t ranks, std::size_t dead_rank) {
  CMPI_EXPECTS(dead_rank < ranks);
  std::uint64_t max_seq = 0;
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r == dead_rank) {
      continue;
    }
    max_seq = std::max(max_seq,
                       acc.peek_flag(base + r * kCacheLineSize).value);
  }
  const std::uint64_t dead_slot = base + dead_rank * kCacheLineSize;
  if (acc.peek_flag(dead_slot).value >= max_seq) {
    return false;
  }
  acc.publish_flag(dead_slot, max_seq);
  return true;
}

Status SeqBarrier::enter_for(cxlsim::Accessor& acc, Doorbell& doorbell,
                             FailureDetector& detector,
                             std::chrono::milliseconds timeout) {
  acc.fault_sync_point("barrier-enter");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  ++sequence_;
  acc.publish_flag(slot(my_rank_), sequence_);
  doorbell.ring();
  for (std::size_t r = 0; r < ranks_; ++r) {
    if (r == my_rank_) {
      continue;
    }
    cxlsim::Accessor::FlagValue seen{};
    bool peer_dead = false;
    const bool arrived = doorbell.wait_until(
        [&] {
          detector.beat(acc);
          seen = acc.peek_flag(slot(r));
          if (seen.value >= sequence_) {
            return true;
          }
          if (detector.dead(acc, static_cast<int>(r))) {
            peer_dead = true;
            return true;  // stop waiting; reported below
          }
          return false;
        },
        deadline);
    if (peer_dead) {
      return status::peer_failed(
          "barrier: rank " + std::to_string(r) +
          " died before entering epoch " + std::to_string(sequence_));
    }
    if (!arrived) {
      return status::timed_out(
          "barrier: rank " + std::to_string(r) +
          " missing from epoch " + std::to_string(sequence_) +
          " at the deadline");
    }
    acc.absorb_flag(seen);
  }
  return Status::ok();
}

}  // namespace cmpi::runtime
