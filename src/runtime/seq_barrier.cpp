#include "runtime/seq_barrier.hpp"

namespace cmpi::runtime {

void SeqBarrier::format(cxlsim::Accessor& acc, std::uint64_t base,
                        std::size_t ranks) {
  CMPI_EXPECTS(is_aligned(base, kCacheLineSize));
  for (std::size_t r = 0; r < ranks; ++r) {
    acc.publish_flag(base + r * kCacheLineSize, 0);
  }
}

void SeqBarrier::enter(cxlsim::Accessor& acc, Doorbell& doorbell) {
  ++sequence_;
  acc.publish_flag(slot(my_rank_), sequence_);
  doorbell.ring();
  for (std::size_t r = 0; r < ranks_; ++r) {
    if (r == my_rank_) {
      continue;
    }
    cxlsim::Accessor::FlagValue seen{};
    doorbell.wait_until([&] {
      seen = acc.peek_flag(slot(r));
      return seen.value >= sequence_;
    });
    acc.absorb_flag(seen);
  }
}

}  // namespace cmpi::runtime
