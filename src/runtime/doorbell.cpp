#include "runtime/doorbell.hpp"

#include "common/contracts.hpp"

namespace cmpi::runtime {

void AggDoorbell::format(cxlsim::Accessor& acc, std::uint64_t base,
                         std::size_t ranks) {
  CMPI_EXPECTS(is_aligned(base, kCacheLineSize));
  for (std::size_t receiver = 0; receiver < ranks; ++receiver) {
    for (std::size_t sender = 0; sender < ranks; ++sender) {
      acc.nt_store_u64(base + receiver * row_stride(ranks) +
                           sender * sizeof(std::uint64_t),
                       0);
    }
  }
}

void AggDoorbell::clear_sender(cxlsim::Accessor& acc, std::uint64_t base,
                               std::size_t ranks, int dead_rank) {
  CMPI_EXPECTS(dead_rank >= 0 && static_cast<std::size_t>(dead_rank) < ranks);
  for (std::size_t receiver = 0; receiver < ranks; ++receiver) {
    acc.hint_store_u64(base + receiver * row_stride(ranks) +
                           static_cast<std::uint64_t>(dead_rank) *
                               sizeof(std::uint64_t),
                       0);
  }
}

}  // namespace cmpi::runtime
