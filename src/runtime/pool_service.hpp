// Multi-tenant pool service: admission control and tenant fault domains
// over one shared CXL pooled-memory device.
//
// The paper shares one pool among cooperating ranks of a single job; the
// service generalizes that to many independent *tenants* (jobs) attached
// to the same device, the deployment model AMD's pooled-memory papers and
// CXLMemSim's interposition shim anticipate. Three mechanisms make that
// safe:
//
//   * Fault domains — each tenant's Universe occupies a private region
//     [base, base + size) of the pool and every one of its structures
//     (bootstrap page, barrier slots, heartbeats, recovery ledger,
//     doorbell rows, arena with its lock tickets and ring cells) is laid
//     out inside it. Crash recovery (PoolRecovery scavenge) and Arena
//     fsck therefore operate only on the convicted tenant's region, and
//     each rank accessor carries a blast-radius fence (see
//     cxlsim::Accessor::set_fault_domain) that counts any access leaving
//     the region — the service's proof obligation that isolation held.
//
//   * Admission control — join() reserves a region and a tenant slot, or
//     fails fast with kAdmissionRejected when the service is at capacity
//     (tenant count, region space, or bandwidth oversubscription).
//     join_for() is the caller-side retry loop: jittered exponential
//     backoff between attempts, bounded by a deadline. Both the clock and
//     the sleep are injectable so tests drive the whole state machine on
//     a fake clock.
//
//   * Bandwidth shares — a tenant may reserve a fraction of device
//     streaming bandwidth, enforced by weighted fair queueing in the
//     device timing model (simtime::BusyResource::set_share): a
//     saturating neighbour cannot push a guaranteed tenant below its
//     share, while idle guarantees lapse so the server stays
//     work-conserving.
//
// Fault plans are installed once, by the service, and target *global*
// ranks: tenant-local rank r of the tenant whose fault_rank_base is B is
// global rank B + r (bases are handed out monotonically and never
// reused). See bench/churn_tenants.cpp for the chaos harness built on
// top.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "runtime/universe.hpp"

namespace cmpi::runtime {

/// What a joining tenant asks for.
struct TenantConfig {
  unsigned nodes = 2;
  unsigned ranks_per_node = 1;
  /// Pool bytes for the tenant's region (its whole fault domain: barrier,
  /// heartbeats, ledger, doorbells and arena all live inside). Rounded up
  /// to 4 KiB.
  std::size_t region_size = 4_MiB;
  /// Guaranteed fraction of device streaming bandwidth (WFQ share).
  /// 0 = best effort. The sum over admitted tenants must stay <= 1.
  double bandwidth_share = 0.0;
  /// Forwarded to the tenant's UniverseConfig. The arena defaults are
  /// deliberately smaller than UniverseConfig's whole-pool defaults: a
  /// tenant region is a few MiB, not a whole 64 MiB pool.
  arena::Arena::Params arena_params{
      .levels = 4, .level1_buckets = 61, .max_participants = 16};
  std::size_t cell_payload = 16_KiB;
  std::size_t ring_cells = 8;
  std::size_t rendezvous_threshold = 0;
  std::chrono::milliseconds failure_lease{250};
};

/// Caller-side retry policy for join_for: attempt k (0-based) waits
/// jitter * min(cap, initial * multiplier^k), jitter uniform in
/// [0.5, 1.0] from a deterministic per-service RNG. Delays are therefore
/// jittered (desynchronizing competing joiners), bounded by cap, and
/// never exceed the remaining deadline.
struct BackoffPolicy {
  std::chrono::microseconds initial{200};
  std::chrono::microseconds cap{10000};
  double multiplier = 2.0;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

struct PoolServiceConfig {
  std::size_t pool_size = 64_MiB;
  /// Device heads (ports); sized for the largest tenant's node count.
  unsigned heads = 4;
  /// Hard cap on concurrently admitted tenants.
  std::size_t max_tenants = 8;
  cxlsim::CxlTimingParams timing{};
  cxlsim::CacheSim::Geometry cache_geometry{};
  /// Installed once on the shared device (global rank ids; see above).
  cxlsim::FaultPlan fault_plan{};
  BackoffPolicy backoff{};
  /// Injectable time source / sleep for join_for (fake-clock tests).
  /// Defaults: steady_clock / sleep_for.
  std::function<std::chrono::steady_clock::time_point()> now_fn;
  std::function<void(std::chrono::microseconds)> sleep_fn;
};

/// Plain-value snapshot of the service's admission counters.
struct AdmissionStats {
  std::uint64_t admissions = 0;   ///< successful joins
  std::uint64_t rejections = 0;   ///< kAdmissionRejected returned
  std::uint64_t retries = 0;      ///< backoff sleeps taken inside join_for
  std::uint64_t leaves = 0;       ///< sessions released
  std::uint64_t active_tenants = 0;
};

class PoolService;

/// A tenant's admission handle: owns the tenant's Universe and returns
/// the region/share/slot to the service when destroyed (leave). Movable,
/// not copyable.
class TenantSession {
 public:
  TenantSession(TenantSession&& other) noexcept { *this = std::move(other); }
  TenantSession& operator=(TenantSession&& other) noexcept;
  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;
  ~TenantSession() { leave(); }

  [[nodiscard]] Universe& universe() noexcept { return *universe_; }
  [[nodiscard]] int tenant_id() const noexcept { return tenant_id_; }
  /// Global rank of this tenant's local rank r (fault-plan targeting).
  [[nodiscard]] int global_rank(int local) const noexcept {
    return rank_base_ + local;
  }
  [[nodiscard]] std::uint64_t region_base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t region_size() const noexcept { return size_; }

  /// Release the region/share/slot now (idempotent; also run by ~TenantSession).
  void leave();

 private:
  friend class PoolService;
  TenantSession() = default;

  PoolService* service_ = nullptr;
  std::unique_ptr<Universe> universe_;
  int tenant_id_ = 0;
  int rank_base_ = 0;
  std::uint64_t base_ = 0;
  std::uint64_t size_ = 0;
  double share_ = 0.0;
};

class PoolService {
 public:
  explicit PoolService(const PoolServiceConfig& config);
  PoolService(const PoolService&) = delete;
  PoolService& operator=(const PoolService&) = delete;

  /// One admission attempt: returns a live session, or kAdmissionRejected
  /// when the service is at capacity (tenant slots, region space, or
  /// bandwidth oversubscription). Thread-safe.
  Result<TenantSession> join(const TenantConfig& tenant);

  /// join() with caller-side retry: jittered exponential backoff between
  /// rejected attempts, until `deadline` elapses (then kTimedOut carrying
  /// the last rejection's message). Non-admission errors return
  /// immediately.
  Result<TenantSession> join_for(const TenantConfig& tenant,
                                 std::chrono::milliseconds deadline);

  [[nodiscard]] cxlsim::DaxDevice& device() noexcept { return *device_; }
  /// The shared device's fault injector (installed iff the config had a
  /// plan), for runtime poisoning in chaos tests.
  [[nodiscard]] cxlsim::FaultInjector* fault_injector() noexcept {
    return device_->fault_injector();
  }

  [[nodiscard]] AdmissionStats admission_stats() const;

 private:
  friend class TenantSession;

  struct FreeRegion {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
  };

  /// First 64 KiB of the pool is the service's own reserved page (never
  /// handed to a tenant).
  static constexpr std::uint64_t kServiceReserved = 64 * 1024;

  /// Take a region of `size` bytes (first fit), or size 0 when none fits.
  std::uint64_t allocate_region_locked(std::uint64_t size);
  void free_region_locked(std::uint64_t base, std::uint64_t size);
  void release(TenantSession& session);

  PoolServiceConfig config_;
  std::shared_ptr<cxlsim::DaxDevice> device_;

  mutable std::mutex mutex_;
  std::vector<FreeRegion> free_;  // address-ordered, coalesced
  std::size_t active_tenants_ = 0;
  double reserved_bandwidth_ = 0.0;
  int next_tenant_id_ = 1;
  int next_rank_base_ = 0;
  std::mt19937_64 jitter_rng_;
  std::uint64_t admissions_ = 0;
  std::uint64_t rejections_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t leaves_ = 0;
  obs::ProviderRegistration obs_registration_;
};

}  // namespace cmpi::runtime
