#include "runtime/pool_recovery.hpp"

#include <string>

#include "arena/bakery_lock.hpp"
#include "runtime/seq_barrier.hpp"

namespace cmpi::runtime {

void PoolRecovery::format(cxlsim::Accessor& acc, std::uint64_t base,
                          std::size_t ranks) {
  CMPI_EXPECTS(is_aligned(base, kCacheLineSize));
  for (std::size_t i = 0; i < 1 + ranks; ++i) {
    acc.publish_flag(base + i * kCacheLineSize, 0);
  }
}

std::uint64_t PoolRecovery::recovery_epoch() {
  return ctx_->acc().peek_flag(epoch_slot()).value;
}

std::uint64_t PoolRecovery::scavenged_through(int rank) {
  CMPI_EXPECTS(rank >= 0 && rank < ctx_->nranks());
  return ctx_->acc().peek_flag(rank_slot(rank)).value;
}

Result<PoolRecovery::ScavengeReport> PoolRecovery::scavenge(
    int dead_rank, std::chrono::milliseconds timeout) {
  RankCtx& ctx = *ctx_;
  cxlsim::Accessor& acc = ctx.acc();
  if (dead_rank < 0 || dead_rank >= ctx.nranks() ||
      dead_rank == ctx.rank()) {
    return status::invalid_argument("scavenge: bad dead rank " +
                                    std::to_string(dead_rank));
  }
  // Conviction gate: scavenging a live rank would race its writes. Accept
  // either this rank's detector verdict or the injector's crash record
  // (a scripted crash is ground truth the detector may not have caught
  // yet; both are sticky until respawn).
  const cxlsim::FaultInjector* injector = ctx.device().fault_injector();
  const bool convicted =
      ctx.failure_detector().dead(acc, dead_rank) ||
      (injector != nullptr && injector->rank_crashed(dead_rank));
  if (!convicted) {
    return status::invalid_argument(
        "scavenge: rank " + std::to_string(dead_rank) +
        " is not convicted dead (detector + injector both silent)");
  }

  arena::Arena& arena = ctx.arena();
  arena::BakeryLock& lock = arena.shm_lock();
  FailureDetector& detector = ctx.failure_detector();
  const auto dead_pred = [&](std::size_t participant) {
    // Universe arenas use rank ids as participant ids.
    return detector.dead(acc, static_cast<int>(participant)) ||
           (injector != nullptr &&
            injector->rank_crashed(static_cast<int>(participant)));
  };

  ScavengeReport report;
  // A standing ticket now can only be the corpse's (it will never clear
  // it); count it before our own doorway traffic starts churning slots.
  const bool dead_ticket_standing =
      lock.participant_active(acc, static_cast<std::size_t>(dead_rank));

  if (Status locked =
          lock.lock_for(acc, arena.participant(), timeout, dead_pred,
                        [&] { detector.beat(acc); });
      !locked.is_ok()) {
    return locked;
  }

  const std::uint64_t dead_incarnation = ctx.incarnation(dead_rank);
  const std::uint64_t stamp = acc.peek_flag(rank_slot(dead_rank)).value;
  if (stamp >= dead_incarnation + 1) {
    // Another survivor already scavenged this incarnation: observe, don't
    // repeat (the exactly-once contract of the ledger).
    report.performed = false;
    report.epoch = acc.peek_flag(epoch_slot()).value;
    lock.unlock(acc, arena.participant());
    return report;
  }

  const arena::Arena::ScavengeStats arena_stats =
      arena.scavenge_locked(static_cast<std::size_t>(dead_rank),
                            dead_incarnation);
  report.arena_bytes_reclaimed = arena_stats.bytes;
  report.arena_slots_reclaimed = arena_stats.slots;
  report.rendezvous_slots_reclaimed = arena_stats.rendezvous_slots;

  // Break what is left of the corpse's arena-lock state. lock_for already
  // broke its ticket if we waited BEHIND it; a stale ticket LARGER than
  // ours would still be standing and would block every future acquirer.
  lock.break_participant(acc, static_cast<std::size_t>(dead_rank));
  report.lock_tickets_broken = dead_ticket_standing ? 1 : 0;

  report.barrier_slot_forged = SeqBarrier::forge_slot(
      acc, ctx.barrier_base(), static_cast<std::size_t>(ctx.nranks()),
      static_cast<std::size_t>(dead_rank));

  // Zero the corpse's column of aggregated-doorbell slots: its stale rings
  // must not keep waking receivers, and its next incarnation's counters
  // restart from zero (receivers force a revisit of every peer ring at
  // endpoint construction, so no wake-up is lost by the reset).
  AggDoorbell::clear_sender(acc, ctx.doorbell_base(),
                            static_cast<std::size_t>(ctx.nranks()),
                            dead_rank);
  report.doorbell_cleared = true;

  // Ledger last, still inside the critical section: stamp the rank, bump
  // the global epoch. Single writer under the arena lock — plain
  // timestamped flags, no RMW.
  acc.publish_flag(rank_slot(dead_rank), dead_incarnation + 1);
  report.epoch = acc.peek_flag(epoch_slot()).value + 1;
  acc.publish_flag(epoch_slot(), report.epoch);
  lock.unlock(acc, arena.participant());

  report.performed = true;
  ctx.recovery_counters().scavenges.fetch_add(1);
  if (arena_stats.rendezvous_slots > 0) {
    ctx.recovery_counters().rendezvous_slots_scavenged.fetch_add(
        arena_stats.rendezvous_slots);
  }
  return report;
}

}  // namespace cmpi::runtime
