#include "runtime/failure_detector.hpp"

#include <algorithm>
#include <string>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace cmpi::runtime {

void FailureDetector::format(cxlsim::Accessor& acc, std::uint64_t base,
                             std::size_t ranks) {
  for (std::size_t r = 0; r < ranks; ++r) {
    acc.publish_flag(base + r * kCacheLineSize, 0);
  }
}

FailureDetector::FailureDetector(std::uint64_t base, std::size_t ranks,
                                 std::size_t my_rank,
                                 std::chrono::milliseconds lease)
    : base_(base),
      ranks_(ranks),
      my_rank_(my_rank),
      lease_(lease),
      // Beat at lease/8 so a healthy waiter refreshes its slot several
      // times per lease even with scheduling jitter; floor of 1 ms keeps
      // tiny test leases from spinning the publish path.
      beat_interval_(std::max(lease / 8, std::chrono::milliseconds(1))),
      peers_(ranks) {
  CMPI_EXPECTS(my_rank < ranks);
  CMPI_EXPECTS(lease.count() > 0);
}

void FailureDetector::beat(cxlsim::Accessor& acc) {
  const auto at = now();
  if (ever_beat_ && at - last_beat_ < beat_interval_) {
    return;
  }
  ever_beat_ = true;
  last_beat_ = at;
  acc.publish_flag(slot(my_rank_), ++my_counter_);
}

bool FailureDetector::dead(cxlsim::Accessor& acc, int rank) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_ ||
      static_cast<std::size_t>(rank) == my_rank_) {
    return false;
  }
  PeerState& peer = peers_[static_cast<std::size_t>(rank)];
  if (peer.dead) {
    return true;
  }
  const std::uint64_t seen = acc.peek_flag(slot(static_cast<std::size_t>(rank))).value;
  const auto at = now();
  if (!peer.observed || seen != peer.value) {
    // First look, or the counter advanced: (re)start the lease.
    peer.observed = true;
    peer.value = seen;
    peer.changed = at;
    return false;
  }
  // Strictly greater: a heartbeat observed exactly at the lease edge
  // still counts as alive (conviction requires a full lease of silence).
  if (at - peer.changed > lease_) {
    peer.dead = true;
    CMPI_OBS_COUNT("runtime.peer_convictions", 1);
    CMPI_OBS_INSTANT_ARG("runtime.peer_convicted", "peer",
                         static_cast<std::uint64_t>(rank));
    CMPI_OBS_FLIGHT("runtime: failure detector convicted a peer");
  }
  return peer.dead;
}

Status FailureDetector::check_peer(cxlsim::Accessor& acc, int rank) {
  if (dead(acc, rank)) {
    return status::peer_failed("rank " + std::to_string(rank) +
                               " missed its heartbeat lease");
  }
  return Status::ok();
}

std::vector<int> FailureDetector::failed_ranks() const {
  std::vector<int> out;
  for (std::size_t r = 0; r < ranks_; ++r) {
    if (peers_[r].dead) {
      out.push_back(static_cast<int>(r));
    }
  }
  return out;
}

}  // namespace cmpi::runtime
