#include "runtime/topology.hpp"

#include <string>

namespace cmpi::runtime {

Status PodTopology::validate() const {
  if (pods < 1) {
    return status::invalid_argument("PodTopology: pods must be >= 1, got " +
                                    std::to_string(pods));
  }
  if (ranks_per_pod < 1) {
    return status::invalid_argument(
        "PodTopology: ranks_per_pod must be >= 1, got " +
        std::to_string(ranks_per_pod));
  }
  if (router_local < 0 || router_local >= ranks_per_pod) {
    return status::invalid_argument(
        "PodTopology: router_local " + std::to_string(router_local) +
        " outside [0, " + std::to_string(ranks_per_pod) + ")");
  }
  return Status::ok();
}

}  // namespace cmpi::runtime
