// Wake-up channels for rank threads.
//
// Two kinds live here:
//
//  * Doorbell — the functional (host-side) wake-up channel. Virtual time
//    handles *modeled* waiting (clocks jump via flag stamps); this doorbell
//    handles *wall-clock* waiting so that spin loops don't burn the
//    (single) host core. Every protocol-level flag publication rings it; a
//    waiting rank re-checks its predicate on each ring. A timeout re-check
//    guards against lost wake-ups from writers outside the doorbell's
//    scope (e.g. forked processes).
//
//  * AggDoorbell — the *modeled* (pool-resident) aggregated doorbell the
//    message-rate engine polls instead of scanning every peer ring. One
//    u64 slot per (receiver, sender) pair, written only by that sender
//    (the pooled device has no cross-host atomic RMW, so a shared bitmask
//    is out — single-writer counter slots are the §3.3 answer). A
//    receiver's slots are packed into one row, cacheline-aligned, so for
//    ≤8 peers the whole poll is one line. Senders bump their slot on the
//    ring's empty→non-empty edge; the receiver compares each slot against
//    a host-local `seen` copy and visits only peers whose slot moved.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/align.hpp"
#include "cxlsim/accessor.hpp"

namespace cmpi::runtime {

class Doorbell {
 public:
  /// `recheck` bounds how long a waiter can miss an out-of-scope wake-up
  /// (and therefore the granularity of failure-detector lease checks made
  /// from wait loops). The 1 ms default matches the historical constant.
  explicit Doorbell(std::chrono::milliseconds recheck =
                        std::chrono::milliseconds(1)) noexcept
      : recheck_(recheck) {}

  [[nodiscard]] std::chrono::milliseconds recheck_interval() const noexcept {
    return recheck_;
  }

  /// Wake all current waiters.
  void ring() noexcept {
    {
      std::lock_guard lock(mutex_);
      ++generation_;
    }
    cv_.notify_all();
  }

  /// Block until `pred()` is true, re-evaluating after every ring (and at
  /// least every recheck interval).
  template <typename Pred>
  void wait_until(Pred pred) {
    if (pred()) {
      return;
    }
    std::unique_lock lock(mutex_);
    for (;;) {
      const std::uint64_t seen = generation_;
      lock.unlock();
      if (pred()) {
        return;
      }
      lock.lock();
      cv_.wait_for(lock, recheck_, [&] { return generation_ != seen; });
    }
  }

  /// Deadline overload: block until `pred()` is true or `deadline` passes.
  /// Returns whether the predicate was satisfied — false means the
  /// deadline expired with the predicate still false (the caller maps this
  /// to ErrorCode::kTimedOut). The predicate is always evaluated at least
  /// once, and once more after the deadline (a last-instant ring between
  /// the final check and the deadline must not be lost).
  template <typename Pred>
  [[nodiscard]] bool wait_until(
      Pred pred, std::chrono::steady_clock::time_point deadline) {
    if (pred()) {
      return true;
    }
    std::unique_lock lock(mutex_);
    for (;;) {
      const std::uint64_t seen = generation_;
      lock.unlock();
      if (pred()) {
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return pred();
      }
      lock.lock();
      const auto next = std::min(
          deadline, std::chrono::steady_clock::now() + recheck_);
      cv_.wait_until(lock, next, [&] { return generation_ != seen; });
    }
  }

  /// Arm a wait: the current generation, to pass to wait_past() AFTER
  /// re-checking the wake condition. The epoch/wait_past pair closes the
  /// classic check-then-sleep race that wait_once() has: a ring landing
  /// between the caller's last condition check and the sleep bumps the
  /// generation past `seen`, so wait_past returns immediately instead of
  /// stalling a full recheck interval.
  [[nodiscard]] std::uint64_t epoch() {
    std::lock_guard lock(mutex_);
    return generation_;
  }

  /// Block until a ring newer than `seen` (or one recheck interval),
  /// whichever comes first. Correct arming order: seen = epoch(); check
  /// the wake condition (run the progress engine); wait_past(seen).
  void wait_past(std::uint64_t seen) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, recheck_, [&] { return generation_ != seen; });
  }

  /// Block until the next ring (or one recheck interval), whichever comes
  /// first. CAUTION: the generation is snapshotted *inside* this call, so
  /// a ring between the caller's last condition check and this call is
  /// absorbed silently — a check-then-sleep caller can stall one full
  /// recheck interval per lost wake-up. Use epoch()/wait_past() for
  /// condition-driven loops; this remains only as a plain bounded sleep.
  void wait_once() { wait_past(epoch()); }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  std::chrono::milliseconds recheck_;
};

/// Pool-resident aggregated doorbell (see file header). All accesses go
/// through the caller's Accessor: sender slots are fire-and-forget hint
/// stores (hint_store_u64), receiver polls are time-free peeks — a failed
/// poll is waiting, not work, and the hint word orders against nothing
/// (the periodic fallback scan in the p2p progress loop bounds the cost of
/// a stale read).
class AggDoorbell {
 public:
  /// Bytes of one receiver's row of sender slots, cacheline-padded so two
  /// receivers' rows never share a line.
  static constexpr std::size_t row_stride(std::size_t ranks) noexcept {
    return align_up(ranks * sizeof(std::uint64_t), kCacheLineSize);
  }

  /// Bytes of CXL SHM the doorbell matrix occupies.
  static constexpr std::size_t footprint(std::size_t ranks) noexcept {
    return ranks * row_stride(ranks);
  }

  /// One-time zeroing (bootstrap, done by the Universe).
  static void format(cxlsim::Accessor& acc, std::uint64_t base,
                     std::size_t ranks);

  AggDoorbell(std::uint64_t base, int nranks) noexcept
      : base_(base), nranks_(nranks) {}

  /// Pool offset of the slot `sender` writes to wake `receiver`.
  [[nodiscard]] std::uint64_t slot(int receiver, int sender) const noexcept {
    return base_ +
           static_cast<std::uint64_t>(receiver) *
               row_stride(static_cast<std::size_t>(nranks_)) +
           static_cast<std::uint64_t>(sender) * sizeof(std::uint64_t);
  }

  /// Sender side: post `value` (a monotonic per-sender counter) into the
  /// (receiver, sender) slot. Single-writer — only `sender` ever stores
  /// here, so no RMW is needed.
  void ring(cxlsim::Accessor& acc, int receiver, int sender,
            std::uint64_t value) {
    acc.hint_store_u64(slot(receiver, sender), value);
  }

  /// Receiver side: time-free poll of one slot.
  [[nodiscard]] std::uint64_t peek(cxlsim::Accessor& acc, int receiver,
                                   int sender) {
    return acc.peek_u64(slot(receiver, sender));
  }

  /// Survivor side: zero every slot the dead sender owns (its column), so
  /// the corpse's stale rings cannot linger and its next incarnation
  /// restarts the counter cleanly. Called by PoolRecovery::scavenge under
  /// the arena lock (exactly-once per incarnation).
  static void clear_sender(cxlsim::Accessor& acc, std::uint64_t base,
                           std::size_t ranks, int dead_rank);

 private:
  std::uint64_t base_;
  int nranks_;
};

}  // namespace cmpi::runtime
