// Functional wake-up channel for rank threads.
//
// Virtual time handles *modeled* waiting (clocks jump via flag stamps); this
// doorbell handles *wall-clock* waiting so that spin loops don't burn the
// (single) host core. Every protocol-level flag publication rings it; a
// waiting rank re-checks its predicate on each ring. A timeout re-check
// guards against lost wake-ups from writers outside the doorbell's scope
// (e.g. forked processes).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace cmpi::runtime {

class Doorbell {
 public:
  /// `recheck` bounds how long a waiter can miss an out-of-scope wake-up
  /// (and therefore the granularity of failure-detector lease checks made
  /// from wait loops). The 1 ms default matches the historical constant.
  explicit Doorbell(std::chrono::milliseconds recheck =
                        std::chrono::milliseconds(1)) noexcept
      : recheck_(recheck) {}

  [[nodiscard]] std::chrono::milliseconds recheck_interval() const noexcept {
    return recheck_;
  }

  /// Wake all current waiters.
  void ring() noexcept {
    {
      std::lock_guard lock(mutex_);
      ++generation_;
    }
    cv_.notify_all();
  }

  /// Block until `pred()` is true, re-evaluating after every ring (and at
  /// least every recheck interval).
  template <typename Pred>
  void wait_until(Pred pred) {
    if (pred()) {
      return;
    }
    std::unique_lock lock(mutex_);
    for (;;) {
      const std::uint64_t seen = generation_;
      lock.unlock();
      if (pred()) {
        return;
      }
      lock.lock();
      cv_.wait_for(lock, recheck_, [&] { return generation_ != seen; });
    }
  }

  /// Deadline overload: block until `pred()` is true or `deadline` passes.
  /// Returns whether the predicate was satisfied — false means the
  /// deadline expired with the predicate still false (the caller maps this
  /// to ErrorCode::kTimedOut). The predicate is always evaluated at least
  /// once, and once more after the deadline (a last-instant ring between
  /// the final check and the deadline must not be lost).
  template <typename Pred>
  [[nodiscard]] bool wait_until(
      Pred pred, std::chrono::steady_clock::time_point deadline) {
    if (pred()) {
      return true;
    }
    std::unique_lock lock(mutex_);
    for (;;) {
      const std::uint64_t seen = generation_;
      lock.unlock();
      if (pred()) {
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return pred();
      }
      lock.lock();
      const auto next = std::min(
          deadline, std::chrono::steady_clock::now() + recheck_);
      cv_.wait_until(lock, next, [&] { return generation_ != seen; });
    }
  }

  /// Block until the next ring (or one recheck interval), whichever comes
  /// first. For callers whose predicate requires running their own
  /// progress engine between checks.
  void wait_once() {
    std::unique_lock lock(mutex_);
    const std::uint64_t seen = generation_;
    cv_.wait_for(lock, recheck_, [&] { return generation_ != seen; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  std::chrono::milliseconds recheck_;
};

}  // namespace cmpi::runtime
