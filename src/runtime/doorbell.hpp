// Functional wake-up channel for rank threads.
//
// Virtual time handles *modeled* waiting (clocks jump via flag stamps); this
// doorbell handles *wall-clock* waiting so that spin loops don't burn the
// (single) host core. Every protocol-level flag publication rings it; a
// waiting rank re-checks its predicate on each ring. A timeout re-check
// guards against lost wake-ups from writers outside the doorbell's scope
// (e.g. forked processes).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace cmpi::runtime {

class Doorbell {
 public:
  /// Wake all current waiters.
  void ring() noexcept {
    {
      std::lock_guard lock(mutex_);
      ++generation_;
    }
    cv_.notify_all();
  }

  /// Block until `pred()` is true, re-evaluating after every ring (and at
  /// least every millisecond).
  template <typename Pred>
  void wait_until(Pred pred) {
    if (pred()) {
      return;
    }
    std::unique_lock lock(mutex_);
    for (;;) {
      const std::uint64_t seen = generation_;
      lock.unlock();
      if (pred()) {
        return;
      }
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(1),
                   [&] { return generation_ != seen; });
    }
  }

  /// Block until the next ring (or ~1 ms), whichever comes first. For
  /// callers whose predicate requires running their own progress engine
  /// between checks.
  void wait_once() {
    std::unique_lock lock(mutex_);
    const std::uint64_t seen = generation_;
    cv_.wait_for(lock, std::chrono::milliseconds(1),
                 [&] { return generation_ != seen; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
};

}  // namespace cmpi::runtime
