#include "runtime/config_validate.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/units.hpp"
#include "runtime/universe.hpp"

namespace cmpi::runtime {

namespace {
constexpr std::size_t kMinThreshold = 512;
constexpr std::size_t kMinQuantum = 4_KiB;
constexpr std::size_t kMaxQuantum = 16_MiB;
constexpr std::size_t kMaxInflight = 64;
}  // namespace

Status validate(const UniverseConfig& config) {
  const std::size_t threshold = config.rendezvous_threshold;
  if (threshold != 0 && threshold != ~std::size_t{0} &&
      threshold < kMinThreshold) {
    return status::invalid_argument(
        "UniverseConfig: rendezvous_threshold must be 0 (default), SIZE_MAX "
        "(rendezvous off) or >= " +
        std::to_string(kMinThreshold) + " bytes, got " +
        std::to_string(threshold));
  }
  const std::size_t quantum = config.rendezvous_quantum;
  if (quantum != 0 && (quantum < kMinQuantum || quantum > kMaxQuantum)) {
    return status::invalid_argument(
        "UniverseConfig: rendezvous_quantum must be 0 (default) or in [" +
        std::to_string(kMinQuantum) + ", " + std::to_string(kMaxQuantum) +
        "] bytes, got " + std::to_string(quantum));
  }
  if (config.rendezvous_inflight > kMaxInflight) {
    return status::invalid_argument(
        "UniverseConfig: rendezvous_inflight must be 0 (default) or in [1, " +
        std::to_string(kMaxInflight) + "], got " +
        std::to_string(config.rendezvous_inflight));
  }
  if (!(config.tune.period_ns > 0) || !std::isfinite(config.tune.period_ns)) {
    return status::invalid_argument(
        "UniverseConfig: tune.period_ns must be finite and > 0, got " +
        std::to_string(config.tune.period_ns));
  }
  return Status::ok();
}

}  // namespace cmpi::runtime
