// Two-level pod topology descriptor (multi-pool scale-out).
//
// One *pod* is one shared CXL pool — today's Universe. A cluster is a set
// of identical pods stitched together over the fabric transports through
// one *router rank* per pod: the rank (at a fixed pod-local index) whose
// host carries the pod's NIC and forwards every cross-pod message.
//
// Addressing: ranks are numbered pod-major, so global rank
//   g = pod * ranks_per_pod + local
// and the mapping round-trips by construction. The descriptor is pure
// arithmetic — no device, no fabric — so every layer (runtime, fabric,
// coll, bench) can share it without dependency cycles. Validation returns
// a real Status (router configs come from user topology input, not from
// compile-time constants).
#pragma once

#include "common/status.hpp"

namespace cmpi::runtime {

struct PodTopology {
  int pods = 1;            ///< number of CXL pools
  int ranks_per_pod = 1;   ///< ranks sharing each pool
  int router_local = 0;    ///< pod-local rank carrying the pod's NIC

  /// kInvalidArgument unless pods >= 1, ranks_per_pod >= 1 and
  /// 0 <= router_local < ranks_per_pod.
  [[nodiscard]] Status validate() const;

  [[nodiscard]] int nranks() const noexcept { return pods * ranks_per_pod; }

  // --- global rank <-> (pod, local) translation ---
  [[nodiscard]] int pod_of(int grank) const noexcept {
    return grank / ranks_per_pod;
  }
  [[nodiscard]] int local_of(int grank) const noexcept {
    return grank % ranks_per_pod;
  }
  [[nodiscard]] int global_rank(int pod, int local) const noexcept {
    return pod * ranks_per_pod + local;
  }

  // --- router addressing ---
  [[nodiscard]] int router_of(int pod) const noexcept {
    return global_rank(pod, router_local);
  }
  [[nodiscard]] bool is_router(int grank) const noexcept {
    return local_of(grank) == router_local;
  }

  [[nodiscard]] bool contains(int grank) const noexcept {
    return grank >= 0 && grank < nranks();
  }

  [[nodiscard]] bool same_pod(int a, int b) const noexcept {
    return pod_of(a) == pod_of(b);
  }
};

}  // namespace cmpi::runtime
