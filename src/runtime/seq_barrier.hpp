// Sequence-number barrier over CXL SHM (paper §3.4, "initialization
// barrier").
//
// The classic sense-reversing barrier needs an atomic increment on a shared
// counter — unavailable across CXL heads. cMPI's refactored barrier instead
// gives each rank its own slot in a shared barrier array: a rank entering
// the barrier increments a private sequence number, publishes it to its
// slot, and spin-waits until every other slot is >= its own sequence
// number. Single-writer slots need no atomicity; the timestamped flag in
// each slot also propagates virtual time, so a barrier correctly
// synchronizes rank clocks (the slowest rank's time wins).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/align.hpp"
#include "common/status.hpp"
#include "cxlsim/accessor.hpp"
#include "runtime/doorbell.hpp"
#include "runtime/failure_detector.hpp"

namespace cmpi::runtime {

class SeqBarrier {
 public:
  /// Bytes of CXL SHM for `ranks` slots (one cacheline each).
  static constexpr std::size_t footprint(std::size_t ranks) noexcept {
    return ranks * kCacheLineSize;
  }

  /// One-time zeroing of the slots (bootstrap, before any enter()).
  static void format(cxlsim::Accessor& acc, std::uint64_t base,
                     std::size_t ranks);

  /// View for one rank. `base` must match format's. The rank's local
  /// sequence number is restored from its own slot, so a re-attached view
  /// (e.g. a new Universe::run epoch over the same pool) stays in step
  /// with the persistent barrier array.
  SeqBarrier(cxlsim::Accessor& acc, std::uint64_t base, std::size_t ranks,
             std::size_t my_rank)
      : base_(base), ranks_(ranks), my_rank_(my_rank) {
    CMPI_EXPECTS(my_rank < ranks);
    sequence_ = acc.peek_flag(slot(my_rank)).value;
  }

  /// Enter the barrier and block until all ranks have entered it at least
  /// as many times.
  ///
  /// The barrier publishes only its own slot flag; it is also the publish
  /// point for any payload the caller wrote before entering (e.g. a
  /// Window fence epoch). Callers that want the coherence checker to
  /// recognize such payload must annotate it on their Accessor
  /// (annotate_publish_range) before calling enter() — the slot's
  /// publish_flag then both flushes and vouches for those ranges.
  void enter(cxlsim::Accessor& acc, Doorbell& doorbell);

  /// Deadline- and failure-aware enter: publishes this rank's arrival,
  /// then waits at most `timeout` for the peers, beating the caller's
  /// heartbeat while waiting. Returns kPeerFailed naming the first peer
  /// the detector declares dead, kTimedOut if the deadline expires with
  /// peers still missing, Status::ok otherwise. On failure the barrier
  /// epoch is torn — this rank has entered but not synchronized — so the
  /// caller must abandon the collective operation, not retry the wait.
  [[nodiscard]] Status enter_for(cxlsim::Accessor& acc, Doorbell& doorbell,
                                 FailureDetector& detector,
                                 std::chrono::milliseconds timeout);

  /// Number of times this rank has entered the barrier.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return sequence_; }

  /// Recovery: release a dead rank's barrier occupancy by forging its slot
  /// to the maximum sequence any survivor has published. Survivors then
  /// never wait on the corpse, and a respawned rank (whose constructor
  /// restores its sequence from this slot) rejoins in step with the
  /// group. Sound for the same reason ticket-breaking is: the dead rank's
  /// verdict is sticky, so its slot has no writer left. Returns true when
  /// the slot actually lagged and was forged.
  static bool forge_slot(cxlsim::Accessor& acc, std::uint64_t base,
                         std::size_t ranks, std::size_t dead_rank);

 private:
  [[nodiscard]] std::uint64_t slot(std::size_t rank) const noexcept {
    return base_ + rank * kCacheLineSize;
  }

  std::uint64_t base_;
  std::size_t ranks_;
  std::size_t my_rank_;
  std::uint64_t sequence_ = 0;  // local, per §3.4
};

}  // namespace cmpi::runtime
