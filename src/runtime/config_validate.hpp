// UniverseConfig knob validation (the fabric::validate pattern): a
// malformed knob comes back as kInvalidArgument naming the offending
// field — never a silent clamp, never a bare assert. Universe's
// constructor runs this and throws std::invalid_argument with the same
// message; callers who want the Status call validate() themselves first.
#pragma once

#include "common/status.hpp"

namespace cmpi::runtime {

struct UniverseConfig;

/// Bounds (also the documentation of what "in range" means):
///   * rendezvous_threshold: 0 (default), or >= 512 bytes (a smaller
///     switchover sends sub-cell messages through slab bookkeeping that
///     costs more than the copy it saves). SIZE_MAX = rendezvous off.
///   * rendezvous_quantum: 0 (default), or in [4 KiB, 16 MiB].
///   * rendezvous_inflight: 0 (default), or in [1, 64].
///   * tune.period_ns: > 0 and finite.
///   * tune.mode kEnabled with a legacy-scan progress engine is fine;
///     every combination of engine and tuning is legal.
[[nodiscard]] Status validate(const UniverseConfig& config);

}  // namespace cmpi::runtime
