#include "osu/report.hpp"

#include <algorithm>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace cmpi::osu {

FigureTable::FigureTable(std::string title, std::string row_label,
                         std::string value_unit)
    : title_(std::move(title)),
      row_label_(std::move(row_label)),
      value_unit_(std::move(value_unit)) {}

void FigureTable::add_series(const std::string& name) {
  if (std::find(series_order_.begin(), series_order_.end(), name) ==
      series_order_.end()) {
    series_order_.push_back(name);
    data_[name];
  }
}

void FigureTable::set(const std::string& series, std::size_t row_key,
                      double value) {
  add_series(series);
  if (std::find(row_order_.begin(), row_order_.end(), row_key) ==
      row_order_.end()) {
    row_order_.push_back(row_key);
  }
  data_[series][row_key] = value;
}

double FigureTable::at(const std::string& series, std::size_t row_key) const {
  const auto s = data_.find(series);
  CMPI_EXPECTS(s != data_.end());
  const auto v = s->second.find(row_key);
  CMPI_EXPECTS(v != s->second.end());
  return v->second;
}

namespace {

std::string format_value(double v) {
  char buf[32];
  if (v >= 1000) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (v >= 10) {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

}  // namespace

void FigureTable::print(std::ostream& os) const {
  os << "\n== " << title_ << " (" << value_unit_ << ") ==\n";
  // Column widths.
  std::size_t key_width = row_label_.size();
  for (const std::size_t key : row_order_) {
    key_width = std::max(key_width, format_size(key).size());
  }
  std::vector<std::size_t> widths;
  for (const auto& name : series_order_) {
    std::size_t w = name.size();
    for (const std::size_t key : row_order_) {
      const auto it = data_.at(name).find(key);
      if (it != data_.at(name).end()) {
        w = std::max(w, format_value(it->second).size());
      }
    }
    widths.push_back(w);
  }
  // Header.
  os << "  " << row_label_;
  os << std::string(key_width - row_label_.size(), ' ');
  for (std::size_t i = 0; i < series_order_.size(); ++i) {
    os << "  " << std::string(widths[i] - series_order_[i].size(), ' ')
       << series_order_[i];
  }
  os << "\n";
  // Rows.
  for (const std::size_t key : row_order_) {
    const std::string label = format_size(key);
    os << "  " << label << std::string(key_width - label.size(), ' ');
    for (std::size_t i = 0; i < series_order_.size(); ++i) {
      const auto& column = data_.at(series_order_[i]);
      const auto it = column.find(key);
      const std::string cell =
          it == column.end() ? "-" : format_value(it->second);
      os << "  " << std::string(widths[i] - cell.size(), ' ') << cell;
    }
    os << "\n";
  }
  os.flush();
}

void FigureTable::print_csv(std::ostream& os) const {
  os << row_label_;
  for (const auto& name : series_order_) {
    os << "," << name;
  }
  os << "\n";
  for (const std::size_t key : row_order_) {
    os << key;
    for (const auto& name : series_order_) {
      const auto& column = data_.at(name);
      const auto it = column.find(key);
      os << ",";
      if (it != column.end()) {
        os << it->second;
      }
    }
    os << "\n";
  }
  os.flush();
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void FigureTable::print_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& metadata) const {
  os << "{\n";
  os << "  \"title\": \"" << json_escape(title_) << "\",\n";
  os << "  \"row_label\": \"" << json_escape(row_label_) << "\",\n";
  os << "  \"unit\": \"" << json_escape(value_unit_) << "\",\n";
  os << "  \"metadata\": {";
  for (std::size_t i = 0; i < metadata.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(metadata[i].first)
       << "\": \"" << json_escape(metadata[i].second) << "\"";
  }
  os << (metadata.empty() ? "" : "\n  ") << "},\n";
  if (!telemetry_.empty()) {
    os << "  \"telemetry\": {";
    for (std::size_t i = 0; i < telemetry_.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", telemetry_[i].second);
      os << (i == 0 ? "\n" : ",\n") << "    \""
         << json_escape(telemetry_[i].first) << "\": " << buf;
    }
    os << "\n  },\n";
  }
  os << "  \"series\": {";
  bool first_series = true;
  for (const auto& name : series_order_) {
    os << (first_series ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": [";
    first_series = false;
    const auto& column = data_.at(name);
    bool first_row = true;
    for (const std::size_t key : row_order_) {
      const auto it = column.find(key);
      if (it == column.end()) {
        continue;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", it->second);
      os << (first_row ? "\n" : ",\n") << "      {\"size\": " << key
         << ", \"value\": " << buf << "}";
      first_row = false;
    }
    os << (first_row ? "]" : "\n    ]");
  }
  os << (series_order_.empty() ? "" : "\n  ") << "}\n";
  os << "}\n";
  os.flush();
}

double max_ratio(const FigureTable& table, const std::string& numerator,
                 const std::string& denominator) {
  double best = 0;
  for (const std::size_t key : table.rows()) {
    const double a = table.at(numerator, key);
    const double b = table.at(denominator, key);
    if (b > 0) {
      best = std::max(best, a / b);
    }
  }
  return best;
}

}  // namespace cmpi::osu
