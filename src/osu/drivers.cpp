#include "osu/drivers.hpp"

#include <algorithm>
#include <array>
#include <mutex>
#include <span>

#include "core/cmpi.hpp"
#include "queue/queue_matrix.hpp"

namespace cmpi::osu {
namespace {

constexpr int kBwTag = 11;
constexpr int kAckTag = 12;

std::vector<std::byte> make_payload(std::size_t size) {
  std::vector<std::byte> data(std::max<std::size_t>(size, 1));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i & 0xFF);
  }
  data.resize(size);
  return data;
}

/// Collects one value per sweep size from rank 0.
class ResultBoard {
 public:
  explicit ResultBoard(std::size_t n) : values_(n, 0.0) {}
  void set(std::size_t i, double v) {
    std::lock_guard lock(mutex_);
    values_[i] = v;
  }
  std::vector<double> take() { return values_; }

 private:
  std::mutex mutex_;
  std::vector<double> values_;
};

}  // namespace

int window_for(const SweepParams& params, std::size_t size) {
  const std::size_t w = params.window_bytes / std::max<std::size_t>(size, 1);
  return static_cast<int>(std::clamp<std::size_t>(w, 2, 32));
}

std::vector<std::size_t> osu_sizes(std::size_t max) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= max; s *= 2) {
    sizes.push_back(s);
  }
  return sizes;
}

runtime::UniverseConfig bench_universe_config(const SweepParams& params) {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = static_cast<unsigned>(params.procs) / 2;
  cfg.cell_payload = params.cell_payload;
  cfg.ring_cells = params.ring_cells;
  cfg.rendezvous_threshold = params.rendezvous_threshold;
  cfg.rendezvous_quantum = params.rendezvous_quantum;
  cfg.rendezvous_inflight = params.rendezvous_inflight;
  cfg.tune = params.tune;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 127;
  // Pool: ring matrix + windows + metadata, with generous slack. The memfd
  // is sparse, so an over-sized pool costs only touched pages.
  const std::size_t matrix = queue::QueueMatrix::footprint(
      params.procs, params.ring_cells, params.cell_payload);
  const std::size_t max_size =
      params.sizes.empty()
          ? 1
          : *std::max_element(params.sizes.begin(), params.sizes.end());
  cfg.pool_size =
      std::max<std::size_t>(256_MiB,
                            2 * matrix + 4 * static_cast<std::size_t>(
                                                 params.procs) *
                                             max_size +
                                64_MiB);
  return cfg;
}

// ---------------- cMPI over CXL ----------------

std::vector<double> cxl_twosided_bw_mbps(const SweepParams& params) {
  CMPI_EXPECTS(params.procs >= 2 && params.procs % 2 == 0);
  runtime::Universe universe(bench_universe_config(params));
  ResultBoard board(params.sizes.size());
  const int pairs = params.procs / 2;
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const bool is_sender = ctx.rank() < pairs;
    const int peer = is_sender ? ctx.rank() + pairs : ctx.rank() - pairs;
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t size = params.sizes[si];
      const int window = window_for(params, size);
      const auto payload = make_payload(size);
      std::vector<std::byte> inbox(size);
      std::byte ack[4];
      ctx.barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        if (is_sender) {
          std::vector<p2p::RequestPtr> reqs;
          reqs.reserve(static_cast<std::size_t>(window));
          for (int w = 0; w < window; ++w) {
            reqs.push_back(mpi.isend(peer, kBwTag, payload));
          }
          check_ok(mpi.wait_all(reqs));
          check_ok(mpi.recv(peer, kAckTag, ack).status());
        } else {
          std::vector<p2p::RequestPtr> reqs;
          reqs.reserve(static_cast<std::size_t>(window));
          for (int w = 0; w < window; ++w) {
            reqs.push_back(mpi.irecv(peer, kBwTag, inbox));
          }
          check_ok(mpi.wait_all(reqs));
          check_ok(mpi.send(peer, kAckTag, ack));
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double elapsed = ctx.clock().now() - start;
        const double bytes = static_cast<double>(pairs) * params.iters *
                             window * static_cast<double>(size);
        board.set(si, bytes / elapsed * 1e3);  // MB/s
      }
    }
  });
  return board.take();
}

std::vector<double> cxl_twosided_latency_us(const SweepParams& params) {
  CMPI_EXPECTS(params.procs >= 2 && params.procs % 2 == 0);
  runtime::Universe universe(bench_universe_config(params));
  ResultBoard board(params.sizes.size());
  const int pairs = params.procs / 2;
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const bool is_sender = ctx.rank() < pairs;
    const int peer = is_sender ? ctx.rank() + pairs : ctx.rank() - pairs;
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t size = params.sizes[si];
      const auto payload = make_payload(size);
      std::vector<std::byte> inbox(size);
      ctx.barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        if (is_sender) {
          check_ok(mpi.send(peer, kBwTag, payload));
          check_ok(mpi.recv(peer, kBwTag, inbox).status());
        } else {
          check_ok(mpi.recv(peer, kBwTag, inbox).status());
          check_ok(mpi.send(peer, kBwTag, payload));
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double elapsed = ctx.clock().now() - start;
        board.set(si, elapsed / params.iters / 2.0 / 1e3);  // one-way us
      }
    }
  });
  return board.take();
}

std::vector<double> cxl_onesided_bw_mbps(const SweepParams& params) {
  CMPI_EXPECTS(params.procs >= 2 && params.procs % 2 == 0);
  runtime::Universe universe(bench_universe_config(params));
  ResultBoard board(params.sizes.size());
  const int pairs = params.procs / 2;
  const std::size_t max_size =
      *std::max_element(params.sizes.begin(), params.sizes.end());
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    rma::Window win = mpi.create_window("osu_bw", max_size);
    const bool is_origin = ctx.rank() < pairs;
    const int peer = is_origin ? ctx.rank() + pairs : ctx.rank() - pairs;
    const std::array<int, 1> peer_group{peer};
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t size = params.sizes[si];
      const int window = window_for(params, size);
      const auto payload = make_payload(size);
      ctx.barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        if (is_origin) {
          win.start(peer_group);
          for (int w = 0; w < window; ++w) {
            win.put(peer, 0, payload);
          }
          win.complete(peer_group);
        } else {
          win.post(peer_group);
          win.wait(peer_group);
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double elapsed = ctx.clock().now() - start;
        const double bytes = static_cast<double>(pairs) * params.iters *
                             window * static_cast<double>(size);
        board.set(si, bytes / elapsed * 1e3);
      }
    }
    win.free();
  });
  return board.take();
}

std::vector<double> cxl_onesided_latency_us(const SweepParams& params) {
  CMPI_EXPECTS(params.procs >= 2 && params.procs % 2 == 0);
  runtime::Universe universe(bench_universe_config(params));
  ResultBoard board(params.sizes.size());
  const int pairs = params.procs / 2;
  const std::size_t max_size =
      *std::max_element(params.sizes.begin(), params.sizes.end());
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    rma::Window win = mpi.create_window("osu_lat", max_size);
    const bool is_origin = ctx.rank() < pairs;
    const int peer = is_origin ? ctx.rank() + pairs : ctx.rank() - pairs;
    const std::array<int, 1> peer_group{peer};
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t size = params.sizes[si];
      const auto payload = make_payload(size);
      ctx.barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        if (is_origin) {
          win.start(peer_group);
          win.put(peer, 0, payload);
          win.complete(peer_group);
        } else {
          win.post(peer_group);
          win.wait(peer_group);
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double elapsed = ctx.clock().now() - start;
        board.set(si, elapsed / params.iters / 1e3);  // per-op us
      }
    }
    win.free();
  });
  return board.take();
}

double cxl_msgrate_fanin(const MsgRateParams& params) {
  CMPI_EXPECTS(params.senders >= 1 && params.size >= 1);
  const int receiver = params.senders;  // last rank; one rank per node
  runtime::UniverseConfig cfg;
  cfg.nodes = static_cast<unsigned>(params.senders + 1);
  cfg.ranks_per_node = 1;
  // Small cells: at 8-byte payloads the per-cell protocol cost IS the
  // benchmark; a 64 KiB cell would only waste pool space.
  cfg.cell_payload = 4 * 1024;
  cfg.ring_cells = params.ring_cells;
  cfg.progress_engine = params.legacy_scan
                            ? runtime::ProgressEngine::kLegacyScan
                            : runtime::ProgressEngine::kDoorbell;
  const std::size_t matrix = queue::QueueMatrix::footprint(
      params.senders + 1, cfg.ring_cells, cfg.cell_payload);
  cfg.pool_size = std::max<std::size_t>(64_MiB, 2 * matrix + 32_MiB);
  runtime::Universe universe(cfg);
  ResultBoard board(1);
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const bool is_receiver = ctx.rank() == receiver;
    const auto payload = make_payload(params.size);
    std::byte ack[4] = {};
    const std::size_t per_iter =
        static_cast<std::size_t>(params.senders) *
        static_cast<std::size_t>(params.window);
    ctx.barrier();
    double start = 0;
    for (int it = -params.warmup; it < params.iters; ++it) {
      if (it == 0) {
        ctx.barrier();
        start = ctx.clock().now();
      }
      if (is_receiver) {
        std::vector<std::byte> inboxes(per_iter * params.size);
        std::vector<p2p::RequestPtr> reqs;
        reqs.reserve(per_iter);
        for (int s = 0; s < params.senders; ++s) {
          for (int w = 0; w < params.window; ++w) {
            const std::size_t slot =
                static_cast<std::size_t>(s) *
                    static_cast<std::size_t>(params.window) +
                static_cast<std::size_t>(w);
            reqs.push_back(mpi.irecv(
                s, kBwTag,
                std::span<std::byte>(inboxes)
                    .subspan(slot * params.size, params.size)));
          }
        }
        check_ok(mpi.wait_all(reqs));
        for (int s = 0; s < params.senders; ++s) {
          check_ok(mpi.send(s, kAckTag, ack));
        }
      } else {
        std::vector<p2p::RequestPtr> reqs;
        reqs.reserve(static_cast<std::size_t>(params.window));
        for (int w = 0; w < params.window; ++w) {
          reqs.push_back(mpi.isend(receiver, kBwTag, payload));
        }
        check_ok(mpi.wait_all(reqs));
        check_ok(mpi.recv(receiver, kAckTag, ack).status());
      }
    }
    ctx.barrier();
    if (is_receiver) {
      const double elapsed_ns = ctx.clock().now() - start;
      const double msgs =
          static_cast<double>(per_iter) * static_cast<double>(params.iters);
      board.set(0, msgs / elapsed_ns * 1e9);  // messages/second
    }
  });
  return board.take()[0];
}

// ---------------- MPI over a modeled NIC ----------------

namespace {

fabric::NetConfig net_config(const fabric::NicProfile& profile,
                             const SweepParams& params) {
  fabric::NetConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = static_cast<unsigned>(params.procs) / 2;
  cfg.profile = profile;
  return cfg;
}

}  // namespace

std::vector<double> net_twosided_bw_mbps(const fabric::NicProfile& profile,
                                         const SweepParams& params) {
  CMPI_EXPECTS(params.procs >= 2 && params.procs % 2 == 0);
  fabric::NetUniverse universe(net_config(profile, params));
  ResultBoard board(params.sizes.size());
  const int pairs = params.procs / 2;
  universe.run([&](fabric::NetCtx& ctx) {
    const bool is_sender = ctx.rank() < pairs;
    const int peer = is_sender ? ctx.rank() + pairs : ctx.rank() - pairs;
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t size = params.sizes[si];
      const int window = window_for(params, size);
      const auto payload = make_payload(size);
      std::vector<std::byte> inbox(size);
      std::byte ack[4];
      ctx.barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        if (is_sender) {
          for (int w = 0; w < window; ++w) {
            ctx.send(peer, kBwTag, payload);
          }
          ctx.recv(peer, kAckTag, ack);
        } else {
          for (int w = 0; w < window; ++w) {
            ctx.recv(peer, kBwTag, inbox);
          }
          ctx.send(peer, kAckTag, ack);
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double elapsed = ctx.clock().now() - start;
        const double bytes = static_cast<double>(pairs) * params.iters *
                             window * static_cast<double>(size);
        board.set(si, bytes / elapsed * 1e3);
      }
    }
  });
  return board.take();
}

std::vector<double> net_twosided_latency_us(const fabric::NicProfile& profile,
                                            const SweepParams& params) {
  CMPI_EXPECTS(params.procs >= 2 && params.procs % 2 == 0);
  fabric::NetUniverse universe(net_config(profile, params));
  ResultBoard board(params.sizes.size());
  const int pairs = params.procs / 2;
  universe.run([&](fabric::NetCtx& ctx) {
    const bool is_sender = ctx.rank() < pairs;
    const int peer = is_sender ? ctx.rank() + pairs : ctx.rank() - pairs;
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t size = params.sizes[si];
      const auto payload = make_payload(size);
      std::vector<std::byte> inbox(size);
      ctx.barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        if (is_sender) {
          ctx.send(peer, kBwTag, payload);
          ctx.recv(peer, kBwTag, inbox);
        } else {
          ctx.recv(peer, kBwTag, inbox);
          ctx.send(peer, kBwTag, payload);
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double elapsed = ctx.clock().now() - start;
        board.set(si, elapsed / params.iters / 2.0 / 1e3);
      }
    }
  });
  return board.take();
}

std::vector<double> net_onesided_bw_mbps(const fabric::NicProfile& profile,
                                         const SweepParams& params) {
  CMPI_EXPECTS(params.procs >= 2 && params.procs % 2 == 0);
  fabric::NetUniverse universe(net_config(profile, params));
  ResultBoard board(params.sizes.size());
  const int pairs = params.procs / 2;
  const std::size_t max_size =
      *std::max_element(params.sizes.begin(), params.sizes.end());
  universe.run([&](fabric::NetCtx& ctx) {
    fabric::NetWindow win(ctx, "osu_bw", max_size);
    const bool is_origin = ctx.rank() < pairs;
    const int peer = is_origin ? ctx.rank() + pairs : ctx.rank() - pairs;
    const std::array<int, 1> peer_group{peer};
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t size = params.sizes[si];
      const int window = window_for(params, size);
      const auto payload = make_payload(size);
      ctx.barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        if (is_origin) {
          win.start(peer_group);
          for (int w = 0; w < window; ++w) {
            win.put(peer, 0, payload);
          }
          win.complete(peer_group);
        } else {
          win.post(peer_group);
          win.wait(peer_group);
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double elapsed = ctx.clock().now() - start;
        const double bytes = static_cast<double>(pairs) * params.iters *
                             window * static_cast<double>(size);
        board.set(si, bytes / elapsed * 1e3);
      }
    }
  });
  return board.take();
}

std::vector<double> net_onesided_latency_us(const fabric::NicProfile& profile,
                                            const SweepParams& params) {
  CMPI_EXPECTS(params.procs >= 2 && params.procs % 2 == 0);
  fabric::NetUniverse universe(net_config(profile, params));
  ResultBoard board(params.sizes.size());
  const int pairs = params.procs / 2;
  const std::size_t max_size =
      *std::max_element(params.sizes.begin(), params.sizes.end());
  universe.run([&](fabric::NetCtx& ctx) {
    fabric::NetWindow win(ctx, "osu_lat", max_size);
    const bool is_origin = ctx.rank() < pairs;
    const int peer = is_origin ? ctx.rank() + pairs : ctx.rank() - pairs;
    const std::array<int, 1> peer_group{peer};
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t size = params.sizes[si];
      const auto payload = make_payload(size);
      ctx.barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        if (is_origin) {
          win.start(peer_group);
          win.put(peer, 0, payload);
          win.complete(peer_group);
        } else {
          win.post(peer_group);
          win.wait(peer_group);
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        const double elapsed = ctx.clock().now() - start;
        board.set(si, elapsed / params.iters / 1e3);
      }
    }
  });
  return board.take();
}

}  // namespace cmpi::osu
