// Figure/table reporting for the bench binaries: aligned text tables with
// one row per message size and one column per series (transport x procs),
// plus optional CSV for plotting. Every bench prints the same rows/series
// the paper's figure plots.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cmpi::osu {

class FigureTable {
 public:
  /// `title`: e.g. "Figure 7: bandwidth of two-sided MPI communication".
  /// `row_label`: e.g. "Size"; `value_unit`: e.g. "MB/s".
  FigureTable(std::string title, std::string row_label,
              std::string value_unit);

  /// Register a series column (insertion order preserved).
  void add_series(const std::string& name);

  /// Record one value. Rows appear in first-set order.
  void set(const std::string& series, std::size_t row_key, double value);

  /// Aligned text table.
  void print(std::ostream& os) const;

  /// CSV (same data, machine-readable).
  void print_csv(std::ostream& os) const;

  /// JSON document for plotting/regression tooling:
  ///   {"title": ..., "row_label": ..., "unit": ...,
  ///    "metadata": {...}, "telemetry": {...}?,
  ///    "series": {name: [{"size": N, "value": V}..]}}
  /// `metadata` carries run parameters (rendezvous threshold, cell size,
  /// iteration counts) so a checked-in artefact is self-describing.
  void print_json(
      std::ostream& os,
      const std::vector<std::pair<std::string, std::string>>& metadata =
          {}) const;

  /// Attach a run-telemetry section (obs metrics digest: cache hit rate,
  /// retransmits, rendezvous slot reuse). Emitted by print_json as a
  /// "telemetry" object when non-empty; insertion order preserved.
  void set_telemetry(std::vector<std::pair<std::string, double>> telemetry) {
    telemetry_ = std::move(telemetry);
  }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>&
  telemetry() const noexcept {
    return telemetry_;
  }

  [[nodiscard]] double at(const std::string& series,
                          std::size_t row_key) const;
  [[nodiscard]] const std::vector<std::size_t>& rows() const noexcept {
    return row_order_;
  }

 private:
  std::string title_;
  std::string row_label_;
  std::string value_unit_;
  std::vector<std::string> series_order_;
  std::vector<std::size_t> row_order_;
  std::map<std::string, std::map<std::size_t, double>> data_;
  std::vector<std::pair<std::string, double>> telemetry_;
};

/// "who wins" annotation helper: max ratio of series a over series b
/// across rows where both exist (used for the paper's headline "up to Nx"
/// claims).
double max_ratio(const FigureTable& table, const std::string& numerator,
                 const std::string& denominator);

}  // namespace cmpi::osu
