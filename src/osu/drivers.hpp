// OSU-Micro-Benchmark-style drivers (paper §4.2).
//
// The paper measures cMPI with the OSU suite: streaming multi-pair
// bandwidth and ping-pong latency for two-sided communication, and the
// one-sided put benchmarks extended to N origin / N target processes.
// These drivers reproduce that protocol over both backends:
//
//   * cxl_*  — the real cMPI stack (Universe + Session / rma::Window),
//   * net_*  — the modeled network baselines (NetUniverse + NetWindow).
//
// Protocol per data point, faithful to OSU:
//   bandwidth: each sender streams `window` back-to-back messages per
//     iteration, then waits for a 4-byte ack (two-sided) or closes the
//     epoch (one-sided). Aggregate MB/s = total bytes / max rank time.
//   latency: ping-pong (two-sided) or put+epoch (one-sided); reported
//     one-way/per-op average in microseconds.
//
// `procs` processes split half senders (ranks [0, procs/2)) on node 0 and
// half receivers on node 1, matching the paper's two-server testbed. All
// times are virtual (see simtime/vclock.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "fabric/net_fabric.hpp"
#include "runtime/universe.hpp"

namespace cmpi::osu {

struct SweepParams {
  std::vector<std::size_t> sizes;  ///< message sizes to sweep
  int procs = 2;                   ///< total processes (even)
  int iters = 10;                  ///< timed iterations per size
  int warmup = 2;                  ///< untimed iterations per size
  /// Cap on per-iteration bytes per pair: window = clamp(window_bytes /
  /// size, 2, 32) keeps wall-clock bounded across the sweep.
  std::size_t window_bytes = 1024 * 1024;
  /// cMPI message-cell payload (§4.3; the paper's tuned value is 64 KiB).
  std::size_t cell_payload = 64 * 1024;
  std::size_t ring_cells = 8;
  /// Two-sided rendezvous threshold: 0 = library default (one cell
  /// payload); SIZE_MAX effectively disables the large-message path so a
  /// sweep can measure the eager-only baseline.
  std::size_t rendezvous_threshold = 0;
  /// Rendezvous pipeline quantum / inflight depth (0 = library defaults) —
  /// the knobs bench/autotune sweeps alongside the Fig 9 axes.
  std::size_t rendezvous_quantum = 0;
  std::size_t rendezvous_inflight = 0;
  /// Self-tuning options forwarded to the UniverseConfig (kAuto = follow
  /// the CMPI_TUNE environment, as everywhere else).
  tune::TuneOptions tune{};
};

/// Message window for a given size (OSU window, adaptively bounded).
int window_for(const SweepParams& params, std::size_t size);

/// Standard OSU size ladder 1 B .. 8 MiB (powers of two).
std::vector<std::size_t> osu_sizes(std::size_t max = 8u * 1024 * 1024);

// ---- cMPI over CXL SHM ----
std::vector<double> cxl_twosided_bw_mbps(const SweepParams& params);
std::vector<double> cxl_twosided_latency_us(const SweepParams& params);
std::vector<double> cxl_onesided_bw_mbps(const SweepParams& params);
std::vector<double> cxl_onesided_latency_us(const SweepParams& params);

// ---- MPI over a modeled NIC ----
std::vector<double> net_twosided_bw_mbps(const fabric::NicProfile& profile,
                                         const SweepParams& params);
std::vector<double> net_twosided_latency_us(const fabric::NicProfile& profile,
                                            const SweepParams& params);
std::vector<double> net_onesided_bw_mbps(const fabric::NicProfile& profile,
                                         const SweepParams& params);
std::vector<double> net_onesided_latency_us(const fabric::NicProfile& profile,
                                            const SweepParams& params);

/// UniverseConfig sized for a bench sweep (pool large enough for the ring
/// matrix and windows at the given proc count / cell size).
runtime::UniverseConfig bench_universe_config(const SweepParams& params);

// ---- Small-message message rate (OSU osu_mbw_mr-style fan-in) ----
//
// N senders (one per node) stream `window` back-to-back `size`-byte
// messages each at ONE receiver per iteration, then wait for a 4-byte
// ack. This is the progress-engine stress case: the receiver's match
// path and per-peer scan — not the copy cost — dominate, which is what
// the doorbell-aggregated engine (p2p::Endpoint) exists to fix.
struct MsgRateParams {
  std::size_t size = 8;   ///< payload bytes per message
  int senders = 16;       ///< fan-in width (total ranks = senders + 1)
  int window = 64;        ///< messages per sender per iteration
  int iters = 10;         ///< timed iterations
  int warmup = 2;         ///< untimed iterations
  std::size_t ring_cells = 64;
  /// Run the pre-doorbell linear-scan progress engine instead
  /// (ProgressEngine::kLegacyScan) — the before/after ablation knob.
  bool legacy_scan = false;
};

/// Aggregate messages/second observed by the receiver (virtual time).
double cxl_msgrate_fanin(const MsgRateParams& params);

// ---- Hierarchical collectives over a pod cluster (bench/fig10h) ----

/// Which allreduce algorithm the hierarchy sweep runs.
enum class HierMode {
  kHier,    ///< three-phase hierarchical (pod reduce, router tree, fan-out)
  kFlat,    ///< flat recursive doubling over the same two-tier fabric
  kDirect,  ///< pre-hierarchy coll::allreduce on the pod Endpoint
            ///< (pods == 1 only — the bit-identity reference)
};

struct HierAllreduceParams {
  int pods = 4;
  int ranks_per_pod = 32;
  std::vector<std::size_t> sizes;  ///< payload bytes (multiples of 8)
  int iters = 3;
  int warmup = 1;
  HierMode mode = HierMode::kHier;
  /// Switch the intra-pod phases to CxlCollectives' direct-over-pool
  /// algorithms when the payload fits (kHier, multi-pod only).
  bool use_cxl_intra = true;
  std::size_t cell_payload = 4096;
  std::size_t ring_cells = 8;
};

/// Allreduce latency across `pods` CXL pools of `ranks_per_pod` ranks each,
/// stitched by per-pod routers (fabric::PodCluster). Every iteration is
/// verified against the closed-form sum. Returns the average virtual
/// microseconds per operation, one entry per size.
std::vector<double> hier_allreduce_latency_us(const HierAllreduceParams& params);

}  // namespace cmpi::osu
