// Hierarchy sweep driver (bench/fig10h): allreduce latency over a
// fabric::PodCluster, with the algorithm (hierarchical / flat / direct)
// selected per run so the bench compares like-for-like over the SAME
// fabric timing model.
#include "osu/drivers.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>
#include <vector>

#include "coll/hier_collectives.hpp"
#include "common/contracts.hpp"
#include "fabric/pod_cluster.hpp"
#include "queue/queue_matrix.hpp"

namespace cmpi::osu {
namespace {

/// Pod-Universe template for the hierarchy sweep: the pool must hold the
/// intra-pod ring matrix plus the CxlCollectives window (ranks * max
/// payload) with slack. The memfd is sparse, so over-sizing is cheap.
runtime::UniverseConfig hier_pod_config(const HierAllreduceParams& params,
                                        std::size_t max_size) {
  runtime::UniverseConfig cfg;
  if (params.ranks_per_pod % 2 == 0) {
    cfg.nodes = 2;
    cfg.ranks_per_node = static_cast<unsigned>(params.ranks_per_pod) / 2;
  } else {
    cfg.nodes = 1;
    cfg.ranks_per_node = static_cast<unsigned>(params.ranks_per_pod);
  }
  cfg.cell_payload = params.cell_payload;
  cfg.ring_cells = params.ring_cells;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 127;
  const std::size_t matrix = queue::QueueMatrix::footprint(
      params.ranks_per_pod, params.ring_cells, params.cell_payload);
  cfg.pool_size = std::max<std::size_t>(
      64_MiB, 2 * matrix +
                  4 * static_cast<std::size_t>(params.ranks_per_pod) *
                      std::max<std::size_t>(max_size, 8) +
                  32_MiB);
  return cfg;
}

}  // namespace

std::vector<double> hier_allreduce_latency_us(
    const HierAllreduceParams& params) {
  CMPI_EXPECTS(!params.sizes.empty());
  CMPI_EXPECTS(params.iters > 0);
  CMPI_EXPECTS(params.mode != HierMode::kDirect || params.pods == 1);
  const std::size_t max_size =
      *std::max_element(params.sizes.begin(), params.sizes.end());

  fabric::PodClusterConfig cfg;
  cfg.topo.pods = params.pods;
  cfg.topo.ranks_per_pod = params.ranks_per_pod;
  cfg.topo.router_local = 0;
  cfg.pod = hier_pod_config(params, max_size);
  auto cluster = check_ok(fabric::PodCluster::create(cfg));

  const int nranks = cfg.topo.nranks();
  // Every rank contributes (grank + 1): closed-form global sum for the
  // per-iteration correctness check.
  const double expected =
      static_cast<double>(nranks) * (static_cast<double>(nranks) + 1.0) / 2.0;

  std::vector<double> out(params.sizes.size(), 0.0);
  std::mutex out_mutex;
  cluster->run([&](fabric::PodCtx& ctx) {
    // CxlCollectives construction is collective across the pod, so the
    // decision must be uniform. Single-pod runs never reach the intra-pod
    // phases, so skip it there to keep kHier/kDirect paths identical.
    std::optional<coll::CxlCollectives> cxl;
    if (params.mode == HierMode::kHier && params.use_cxl_intra &&
        params.pods > 1) {
      cxl.emplace(ctx.local(), "hier_bench", max_size);
    }
    coll::HierColl hier(ctx, cxl ? &*cxl : nullptr);
    for (std::size_t si = 0; si < params.sizes.size(); ++si) {
      const std::size_t n =
          std::max<std::size_t>(params.sizes[si] / sizeof(double), 1);
      std::vector<double> buf(n);
      ctx.cluster_barrier();
      double start = 0;
      for (int it = -params.warmup; it < params.iters; ++it) {
        if (it == 0) {
          ctx.cluster_barrier();
          start = ctx.clock().now();
        }
        std::fill(buf.begin(), buf.end(),
                  static_cast<double>(ctx.grank() + 1));
        const std::span<double> inout(buf);
        switch (params.mode) {
          case HierMode::kHier:
            hier.allreduce(inout, coll::ReduceOp::kSum);
            break;
          case HierMode::kFlat:
            hier.allreduce_flat(inout, coll::ReduceOp::kSum);
            break;
          case HierMode::kDirect:
            coll::allreduce(ctx.ep(), inout, coll::ReduceOp::kSum);
            break;
        }
        CMPI_EXPECTS(std::abs(buf[0] - expected) < 1e-9 * expected);
      }
      // The closing barrier maxes every clock, so grank 0 reports the
      // cluster-wide completion time.
      ctx.cluster_barrier();
      if (ctx.grank() == 0) {
        const double total_ns = ctx.clock().now() - start;
        std::lock_guard lock(out_mutex);
        out[si] = total_ns / params.iters / 1000.0;
      }
    }
    if (cxl) {
      cxl->free();
    }
  });
  return out;
}

}  // namespace cmpi::osu
