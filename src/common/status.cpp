#include "common/status.hpp"

namespace cmpi {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case ErrorCode::kCapacityExceeded:
      return "CAPACITY_EXCEEDED";
    case ErrorCode::kClosed:
      return "CLOSED";
    case ErrorCode::kTruncated:
      return "TRUNCATED";
    case ErrorCode::kUnsupported:
      return "UNSUPPORTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kTimedOut:
      return "TIMED_OUT";
    case ErrorCode::kPeerFailed:
      return "PEER_FAILED";
    case ErrorCode::kDataPoisoned:
      return "DATA_POISONED";
    case ErrorCode::kCorruptPool:
      return "CORRUPT_POOL";
    case ErrorCode::kAdmissionRejected:
      return "ADMISSION_REJECTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) {
    return "OK";
  }
  std::string out{error_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cmpi
