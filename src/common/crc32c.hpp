// CRC32C (Castagnoli) over byte spans, used for end-to-end payload
// integrity on staged message chunks: the sender stamps the checksum into
// the ring cell header, the receiver verifies it after copying the chunk
// out of the pool, and a mismatch (torn cell, media poison that slipped
// past the device model, stray write) becomes a retryable NAK instead of
// silent corruption.
//
// Two implementations, picked once at startup:
//   - hardware: SSE4.2 `crc32` (x86-64) or the ARMv8 CRC32 extension,
//     detected at runtime so the same binary runs on hosts without them;
//   - software: slice-by-8 table, no ISA dependence.
// The checksum is host-side work only — it charges no virtual time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cmpi {

namespace detail {
/// Lazily built 8x256 lookup table for the Castagnoli polynomial
/// (0x1EDC6F41, reflected 0x82F63B78).
const std::uint32_t* crc32c_table() noexcept;

/// Portable slice-by-8 implementation. Exposed so tests can check that the
/// hardware path agrees with it bit-for-bit.
std::uint32_t crc32c_sw(std::span<const std::byte> data,
                        std::uint32_t seed) noexcept;

/// True when the running CPU has a usable CRC32C instruction (SSE4.2 on
/// x86-64, the CRC extension on ARMv8) and the hardware path is active.
bool crc32c_hw_available() noexcept;

/// Hardware implementation; only callable when crc32c_hw_available().
std::uint32_t crc32c_hw(std::span<const std::byte> data,
                        std::uint32_t seed) noexcept;

/// Fused copy+CRC, software path (exposed for the agreement test).
std::uint32_t copy_and_crc32c_sw(std::byte* dst, const std::byte* src,
                                 std::size_t n, std::uint32_t seed) noexcept;

/// Fused copy+CRC, hardware path; only callable when crc32c_hw_available().
std::uint32_t copy_and_crc32c_hw(std::byte* dst, const std::byte* src,
                                 std::size_t n, std::uint32_t seed) noexcept;
}  // namespace detail

/// CRC32C of `data`, continuing from `seed` (pass the previous result to
/// checksum a message in chunks). The empty span returns `seed` unchanged.
std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed = 0) noexcept;

/// Copies `src` into `dst` while computing CRC32C of the bytes in the same
/// traversal. Equivalent to `memcpy(dst, src, src.size())` followed by
/// `crc32c(src, seed)` but touches the payload once instead of twice — the
/// eager send path uses this to build its staging copy and the checksum in
/// a single pass. `dst` must hold at least `src.size()` bytes and must not
/// overlap `src`.
std::uint32_t copy_and_crc32c(std::byte* dst, std::span<const std::byte> src,
                              std::uint32_t seed = 0) noexcept;

}  // namespace cmpi
