// CRC32C (Castagnoli) over byte spans, used for end-to-end payload
// integrity on staged message chunks: the sender stamps the checksum into
// the ring cell header, the receiver verifies it after copying the chunk
// out of the pool, and a mismatch (torn cell, media poison that slipped
// past the device model, stray write) becomes a retryable NAK instead of
// silent corruption.
//
// Software slice-by-8 implementation: no ISA dependence (the simulated
// pool runs on whatever host builds the tests) and fast enough that the
// checksum never shows up next to the modeled CXL latencies. The checksum
// is host-side work only — it charges no virtual time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cmpi {

namespace detail {
/// Lazily built 8x256 lookup table for the Castagnoli polynomial
/// (0x1EDC6F41, reflected 0x82F63B78).
const std::uint32_t* crc32c_table() noexcept;
}  // namespace detail

/// CRC32C of `data`, continuing from `seed` (pass the previous result to
/// checksum a message in chunks). The empty span returns `seed` unchanged.
std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed = 0) noexcept;

}  // namespace cmpi
