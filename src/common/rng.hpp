// Deterministic RNG (xoshiro256**) for workload generators and property
// tests. std::mt19937 would work but is heavier and its distributions are
// implementation-defined; this keeps every benchmark and test reproducible
// bit-for-bit across standard libraries.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"
#include "common/hash.hpp"

namespace cmpi {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = mix64(x);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    CMPI_EXPECTS(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform value in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    CMPI_EXPECTS(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cmpi
