#include "common/crc32c.hpp"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CMPI_CRC32C_X86 1
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define CMPI_CRC32C_ARM 1
#endif

namespace cmpi {
namespace detail {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

std::array<std::uint32_t, 8 * 256> build_table() noexcept {
  std::array<std::uint32_t, 8 * 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = table[i];
    for (std::size_t slice = 1; slice < 8; ++slice) {
      crc = table[crc & 0xFFu] ^ (crc >> 8);
      table[slice * 256 + i] = crc;
    }
  }
  return table;
}

std::uint64_t load_u64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// One slice-by-8 step: folds the 8 bytes at `p` into the running
/// (pre-inverted) crc state.
std::uint32_t slice8_step(const std::uint32_t* table, std::uint32_t crc,
                          const std::byte* p) noexcept {
  std::uint32_t lo = crc;
  lo ^= static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
  const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                           (static_cast<std::uint32_t>(p[5]) << 8) |
                           (static_cast<std::uint32_t>(p[6]) << 16) |
                           (static_cast<std::uint32_t>(p[7]) << 24);
  return table[7 * 256 + (lo & 0xFFu)] ^ table[6 * 256 + ((lo >> 8) & 0xFFu)] ^
         table[5 * 256 + ((lo >> 16) & 0xFFu)] ^
         table[4 * 256 + ((lo >> 24) & 0xFFu)] ^ table[3 * 256 + (hi & 0xFFu)] ^
         table[2 * 256 + ((hi >> 8) & 0xFFu)] ^
         table[1 * 256 + ((hi >> 16) & 0xFFu)] ^
         table[0 * 256 + ((hi >> 24) & 0xFFu)];
}

}  // namespace

const std::uint32_t* crc32c_table() noexcept {
  static const std::array<std::uint32_t, 8 * 256> table = build_table();
  return table.data();
}

std::uint32_t crc32c_sw(std::span<const std::byte> data,
                        std::uint32_t seed) noexcept {
  const std::uint32_t* table = crc32c_table();
  std::uint32_t crc = ~seed;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    crc = slice8_step(table, crc, p);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = table[(crc ^ static_cast<std::uint32_t>(*p++)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t copy_and_crc32c_sw(std::byte* dst, const std::byte* src,
                                 std::size_t n, std::uint32_t seed) noexcept {
  const std::uint32_t* table = crc32c_table();
  std::uint32_t crc = ~seed;
  while (n >= 8) {
    std::memcpy(dst, src, 8);
    crc = slice8_step(table, crc, src);
    src += 8;
    dst += 8;
    n -= 8;
  }
  while (n-- > 0) {
    *dst++ = *src;
    crc =
        table[(crc ^ static_cast<std::uint32_t>(*src++)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

#if defined(CMPI_CRC32C_X86)

bool crc32c_hw_available() noexcept {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::span<const std::byte> data, std::uint32_t seed) noexcept {
  std::uint64_t crc = ~seed;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    crc = _mm_crc32_u64(crc, load_u64(p));
    p += 8;
    n -= 8;
  }
  std::uint32_t crc32 = static_cast<std::uint32_t>(crc);
  while (n-- > 0) {
    crc32 = _mm_crc32_u8(crc32, static_cast<unsigned char>(*p++));
  }
  return ~crc32;
}

__attribute__((target("sse4.2"))) std::uint32_t copy_and_crc32c_hw(
    std::byte* dst, const std::byte* src, std::size_t n,
    std::uint32_t seed) noexcept {
  std::uint64_t crc = ~seed;
  while (n >= 8) {
    const std::uint64_t v = load_u64(src);
    std::memcpy(dst, &v, sizeof(v));
    crc = _mm_crc32_u64(crc, v);
    src += 8;
    dst += 8;
    n -= 8;
  }
  std::uint32_t crc32 = static_cast<std::uint32_t>(crc);
  while (n-- > 0) {
    *dst++ = *src;
    crc32 = _mm_crc32_u8(crc32, static_cast<unsigned char>(*src++));
  }
  return ~crc32;
}

#elif defined(CMPI_CRC32C_ARM)

bool crc32c_hw_available() noexcept {
  // __ARM_FEATURE_CRC32 means the compiler already targets a CPU with the
  // CRC extension, so no runtime probe is needed.
  return true;
}

std::uint32_t crc32c_hw(std::span<const std::byte> data,
                        std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    crc = __crc32cd(crc, load_u64(p));
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __crc32cb(crc, static_cast<std::uint8_t>(*p++));
  }
  return ~crc;
}

std::uint32_t copy_and_crc32c_hw(std::byte* dst, const std::byte* src,
                                 std::size_t n, std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  while (n >= 8) {
    const std::uint64_t v = load_u64(src);
    std::memcpy(dst, &v, sizeof(v));
    crc = __crc32cd(crc, v);
    src += 8;
    dst += 8;
    n -= 8;
  }
  while (n-- > 0) {
    *dst++ = *src;
    crc = __crc32cb(crc, static_cast<std::uint8_t>(*src++));
  }
  return ~crc;
}

#else

bool crc32c_hw_available() noexcept { return false; }

std::uint32_t crc32c_hw(std::span<const std::byte> data,
                        std::uint32_t seed) noexcept {
  return crc32c_sw(data, seed);
}

std::uint32_t copy_and_crc32c_hw(std::byte* dst, const std::byte* src,
                                 std::size_t n, std::uint32_t seed) noexcept {
  return copy_and_crc32c_sw(dst, src, n, seed);
}

#endif

}  // namespace detail

std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed) noexcept {
  if (detail::crc32c_hw_available()) {
    return detail::crc32c_hw(data, seed);
  }
  return detail::crc32c_sw(data, seed);
}

std::uint32_t copy_and_crc32c(std::byte* dst, std::span<const std::byte> src,
                              std::uint32_t seed) noexcept {
  if (detail::crc32c_hw_available()) {
    return detail::copy_and_crc32c_hw(dst, src.data(), src.size(), seed);
  }
  return detail::copy_and_crc32c_sw(dst, src.data(), src.size(), seed);
}

}  // namespace cmpi
