#include "common/crc32c.hpp"

#include <array>

namespace cmpi {
namespace detail {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

std::array<std::uint32_t, 8 * 256> build_table() noexcept {
  std::array<std::uint32_t, 8 * 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = table[i];
    for (std::size_t slice = 1; slice < 8; ++slice) {
      crc = table[crc & 0xFFu] ^ (crc >> 8);
      table[slice * 256 + i] = crc;
    }
  }
  return table;
}

}  // namespace

const std::uint32_t* crc32c_table() noexcept {
  static const std::array<std::uint32_t, 8 * 256> table = build_table();
  return table.data();
}

}  // namespace detail

std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed) noexcept {
  const std::uint32_t* table = detail::crc32c_table();
  std::uint32_t crc = ~seed;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  // Slice-by-8 over the aligned middle.
  while (n >= 8) {
    std::uint32_t lo = crc;
    lo ^= static_cast<std::uint32_t>(p[0]) |
          (static_cast<std::uint32_t>(p[1]) << 8) |
          (static_cast<std::uint32_t>(p[2]) << 16) |
          (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    crc = table[7 * 256 + (lo & 0xFFu)] ^
          table[6 * 256 + ((lo >> 8) & 0xFFu)] ^
          table[5 * 256 + ((lo >> 16) & 0xFFu)] ^
          table[4 * 256 + ((lo >> 24) & 0xFFu)] ^
          table[3 * 256 + (hi & 0xFFu)] ^
          table[2 * 256 + ((hi >> 8) & 0xFFu)] ^
          table[1 * 256 + ((hi >> 16) & 0xFFu)] ^
          table[0 * 256 + ((hi >> 24) & 0xFFu)];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = table[(crc ^ static_cast<std::uint32_t>(*p++)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace cmpi
