#include "common/cli.hpp"

#include <cctype>
#include <cstdlib>

namespace cmpi {

Result<CliArgs> CliArgs::parse(int argc, const char* const* argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      return status::invalid_argument("expected --key[=value], got '" +
                                      std::string(arg) + "'");
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      args.values_.emplace(std::string(body), "1");
    } else {
      args.values_.emplace(std::string(body.substr(0, eq)),
                           std::string(body.substr(eq + 1)));
    }
  }
  return args;
}

std::string CliArgs::get_string(std::string_view key,
                                std::string_view def) const {
  consumed_.emplace(key);
  const auto it = values_.find(key);
  return it == values_.end() ? std::string(def) : it->second;
}

std::int64_t CliArgs::get_int(std::string_view key, std::int64_t def) const {
  consumed_.emplace(key);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "cmpi: flag --%s expects an integer, got '%s'\n",
                 std::string(key).c_str(), it->second.c_str());
    std::abort();
  }
  return value;
}

std::size_t CliArgs::get_size(std::string_view key, std::size_t def) const {
  consumed_.emplace(key);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  auto parsed = parse_size(it->second);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "cmpi: flag --%s: %s\n", std::string(key).c_str(),
                 parsed.status().to_string().c_str());
    std::abort();
  }
  return parsed.value();
}

bool CliArgs::get_bool(std::string_view key, bool def) const {
  consumed_.emplace(key);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return it->second == "1" || it->second == "true";
}

std::vector<std::string> CliArgs::unused_flags() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (consumed_.find(key) == consumed_.end()) {
      out.push_back(key);
    }
  }
  return out;
}

Result<std::size_t> parse_size(std::string_view text) {
  if (text.empty()) {
    return status::invalid_argument("empty size");
  }
  std::size_t multiplier = 1;
  std::string_view digits = text;
  switch (text.back()) {
    case 'K':
    case 'k':
      multiplier = 1024;
      digits.remove_suffix(1);
      break;
    case 'M':
    case 'm':
      multiplier = 1024UL * 1024;
      digits.remove_suffix(1);
      break;
    case 'G':
    case 'g':
      multiplier = 1024UL * 1024 * 1024;
      digits.remove_suffix(1);
      break;
    default:
      break;
  }
  if (digits.empty()) {
    return status::invalid_argument("no digits in size '" + std::string(text) +
                                    "'");
  }
  std::size_t value = 0;
  for (const char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return status::invalid_argument("malformed size '" + std::string(text) +
                                      "'");
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value * multiplier;
}

}  // namespace cmpi
