// Alignment arithmetic used throughout the CXL SHM layers. The paper's
// constraints: dax mappings are 2 MiB aligned, SHM objects are cacheline
// (64 B) aligned to make flushing and non-temporal access efficient (§3.7).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/contracts.hpp"

namespace cmpi {

/// Cache line size of the simulated hosts (x86-64).
inline constexpr std::size_t kCacheLineSize = 64;

/// dax device mapping granularity (devdax requires 2 MiB aligned mappings).
inline constexpr std::size_t kDaxAlignment = 2 * 1024 * 1024;

/// True iff `value` is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Round `value` up to the next multiple of `alignment` (a power of two).
constexpr std::size_t align_up(std::size_t value, std::size_t alignment) noexcept {
  return (value + alignment - 1) & ~(alignment - 1);
}

/// Round `value` down to a multiple of `alignment` (a power of two).
constexpr std::size_t align_down(std::size_t value, std::size_t alignment) noexcept {
  return value & ~(alignment - 1);
}

/// True iff `value` is a multiple of `alignment` (a power of two).
constexpr bool is_aligned(std::size_t value, std::size_t alignment) noexcept {
  return (value & (alignment - 1)) == 0;
}

constexpr bool is_aligned(const void* ptr, std::size_t alignment) noexcept {
  return is_aligned(reinterpret_cast<std::uintptr_t>(ptr), alignment);
}

/// Number of cache lines touched by the byte range [offset, offset + size).
constexpr std::size_t cache_lines_spanned(std::size_t offset,
                                          std::size_t size) noexcept {
  if (size == 0) {
    return 0;
  }
  const std::size_t first = align_down(offset, kCacheLineSize);
  const std::size_t last = align_down(offset + size - 1, kCacheLineSize);
  return (last - first) / kCacheLineSize + 1;
}

/// Integral ceiling division.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace cmpi
