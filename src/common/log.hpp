// Minimal leveled logger. Default level is Warn so tests and benches stay
// quiet; set CMPI_LOG=debug|info|warn|error (or call set_log_level) to
// change it. Thread-safe: each message is written with a single fprintf.
#pragma once

#include <cstdarg>
#include <string_view>

namespace cmpi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global log threshold.
void set_log_level(LogLevel level) noexcept;

/// Current global log threshold (initialized from $CMPI_LOG on first use).
LogLevel log_level() noexcept;

/// Install per-thread log context: messages from this thread gain a
/// "r<rank> @<t>ns" prefix, with <t> taken from `now_ns` at format time
/// (pass nullptr if no clock is available). rank < 0 clears the context.
/// The runtime installs this on every rank thread.
void log_set_thread_context(int rank, double (*now_ns)()) noexcept;

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args) noexcept;
}  // namespace detail

#if defined(__GNUC__)
#define CMPI_PRINTF_LIKE __attribute__((format(printf, 1, 2)))
#else
#define CMPI_PRINTF_LIKE
#endif

void log_debug(const char* fmt, ...) CMPI_PRINTF_LIKE;
void log_info(const char* fmt, ...) CMPI_PRINTF_LIKE;
void log_warn(const char* fmt, ...) CMPI_PRINTF_LIKE;
void log_error(const char* fmt, ...) CMPI_PRINTF_LIKE;

#undef CMPI_PRINTF_LIKE

}  // namespace cmpi
