// String hashing for the CXL SHM Arena metadata index. Each hash level uses
// a distinct seed so that keys colliding at one level are spread
// independently at the next (the property multi-level hashing relies on).
#pragma once

#include <cstdint>
#include <string_view>

namespace cmpi {

/// 64-bit finalizer from splitmix64; good avalanche, cheap, constexpr.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the bytes of `key`, then mixed with `seed`. Distinct seeds
/// give effectively independent hash functions for the same key.
constexpr std::uint64_t hash_string(std::string_view key,
                                    std::uint64_t seed = 0) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h ^ mix64(seed));
}

/// Hash an integer with a seed (used for deterministic workload generators).
constexpr std::uint64_t hash_u64(std::uint64_t value,
                                 std::uint64_t seed = 0) noexcept {
  return mix64(value ^ mix64(seed));
}

}  // namespace cmpi
