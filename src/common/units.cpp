#include "common/units.hpp"

#include <cstdio>

namespace cmpi {

std::string format_size(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1_MiB && bytes % 1_MiB == 0) {
    std::snprintf(buf, sizeof buf, "%zuM", bytes / 1_MiB);
  } else if (bytes >= 1_KiB && bytes % 1_KiB == 0) {
    std::snprintf(buf, sizeof buf, "%zuK", bytes / 1_KiB);
  } else {
    std::snprintf(buf, sizeof buf, "%zu", bytes);
  }
  return buf;
}

std::string format_duration_ns(double nanoseconds) {
  char buf[48];
  if (nanoseconds < 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f ns", nanoseconds);
  } else if (nanoseconds < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", nanoseconds / 1e3);
  } else if (nanoseconds < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", nanoseconds / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", nanoseconds / 1e9);
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_second) {
  char buf[48];
  if (bytes_per_second < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1f KB/s", bytes_per_second / 1e3);
  } else if (bytes_per_second < 1e9) {
    std::snprintf(buf, sizeof buf, "%.1f MB/s", bytes_per_second / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_second / 1e9);
  }
  return buf;
}

}  // namespace cmpi
