// Tiny command-line flag parser for the bench/example binaries:
// --key=value or --flag (boolean). Unknown flags are an error so typos in
// sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace cmpi {

class CliArgs {
 public:
  /// Parse argv. Returns an error for malformed arguments (not starting
  /// with "--"). Does not validate flag names; get_* track which keys were
  /// consumed and unused_flags() reports leftovers.
  static Result<CliArgs> parse(int argc, const char* const* argv);

  /// String flag with default.
  std::string get_string(std::string_view key, std::string_view def) const;

  /// Integer flag with default; dies on non-numeric values.
  std::int64_t get_int(std::string_view key, std::int64_t def) const;

  /// Size flag accepting suffixes K/M/G (binary units), e.g. --cell=64K.
  std::size_t get_size(std::string_view key, std::size_t def) const;

  /// Boolean flag: present without value or with value 1/true.
  bool get_bool(std::string_view key, bool def = false) const;

  /// Flags that were supplied but never consumed by a get_* call.
  std::vector<std::string> unused_flags() const;

 private:
  mutable std::set<std::string, std::less<>> consumed_;
  std::map<std::string, std::string, std::less<>> values_;
};

/// Parse "64K"/"8M"/"512" into bytes. Returns error on malformed input.
Result<std::size_t> parse_size(std::string_view text);

}  // namespace cmpi
