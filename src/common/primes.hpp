// Prime number helpers for the multi-level hash table. The paper sizes each
// hash level with a distinct prime bucket count (level 1 starts at the
// largest prime <= 200,000 and each deeper level takes the next prime down),
// so we need prev-prime iteration.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"

namespace cmpi {

/// Deterministic primality test; exact for all 64-bit inputs we use
/// (trial division — table sizes are at most a few hundred thousand).
constexpr bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) {
    return false;
  }
  if (n % 2 == 0) {
    return n == 2;
  }
  if (n % 3 == 0) {
    return n == 3;
  }
  for (std::uint64_t i = 5; i * i <= n; i += 6) {
    if (n % i == 0 || n % (i + 2) == 0) {
      return false;
    }
  }
  return true;
}

/// Largest prime <= n. Precondition: n >= 2.
constexpr std::uint64_t prev_prime(std::uint64_t n) noexcept {
  CMPI_EXPECTS(n >= 2);
  while (!is_prime(n)) {
    --n;
  }
  return n;
}

/// Smallest prime >= n. Precondition: n >= 2.
constexpr std::uint64_t next_prime(std::uint64_t n) noexcept {
  CMPI_EXPECTS(n >= 2);
  while (!is_prime(n)) {
    ++n;
  }
  return n;
}

}  // namespace cmpi
