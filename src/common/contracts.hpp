// Contract checking macros in the spirit of the C++ Core Guidelines'
// Expects()/Ensures() (I.5/I.7). Violations are programming errors, so they
// abort with a diagnostic rather than throwing: a violated precondition in a
// message-passing runtime means shared state may already be corrupt.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cmpi::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) noexcept {
  std::fprintf(stderr, "cmpi: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace cmpi::detail

/// Precondition check: argument/state requirements at function entry.
#define CMPI_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                        \
          : ::cmpi::detail::contract_failure("precondition", #cond,     \
                                             __FILE__, __LINE__))

/// Postcondition check: guarantees the implementation must uphold.
#define CMPI_ENSURES(cond)                                              \
  ((cond) ? static_cast<void>(0)                                        \
          : ::cmpi::detail::contract_failure("postcondition", #cond,    \
                                             __FILE__, __LINE__))

/// Internal invariant check (always on; the runtime is a simulator whose
/// value is correctness, not peak native speed).
#define CMPI_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                        \
          : ::cmpi::detail::contract_failure("invariant", #cond,        \
                                             __FILE__, __LINE__))
