// Status / Result error handling for recoverable failures (out of arena
// space, name collisions, closed endpoints). Programming errors use the
// contract macros instead; see contracts.hpp.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/contracts.hpp"

namespace cmpi {

/// Error categories used across the library. Mirrors the failure surface a
/// POSIX-SHM-style API needs (Table 2 of the paper) plus runtime errors.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed a malformed value
  kNotFound,          ///< named object does not exist
  kAlreadyExists,     ///< named object already exists
  kOutOfMemory,       ///< arena/pool exhausted
  kCapacityExceeded,  ///< fixed-capacity structure (hash table, ring) full
  kClosed,            ///< object/endpoint already closed or finalized
  kTruncated,         ///< receive buffer smaller than the incoming message
  kUnsupported,       ///< operation not supported by the (simulated) device
  kInternal,          ///< invariant failure surfaced as a recoverable error
  kTimedOut,          ///< deadline expired before the operation completed
  kPeerFailed,        ///< a peer rank crashed or stopped responding
  kDataPoisoned,      ///< read touched a poisoned (media-error) range
  kCorruptPool,       ///< on-pool metadata failed a structural validity scan
  kAdmissionRejected, ///< pool service at capacity; retry with backoff
};

/// Human-readable name for an error code.
std::string_view error_code_name(ErrorCode code) noexcept;

/// A success-or-error value. Cheap to copy on the success path (no message
/// allocated); failures carry a code and a context message.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() noexcept = default;

  /// Failure with a code and diagnostic message.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    CMPI_EXPECTS(code != ErrorCode::kOk);
  }

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value or a Status error. Minimal expected<T, Status>.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    CMPI_EXPECTS(!std::get<Status>(data_).is_ok());
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }

  /// Status of the operation; Status::ok() when a value is present.
  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(data_);
  }

  /// Access the value. Precondition: is_ok().
  [[nodiscard]] T& value() & {
    CMPI_EXPECTS(is_ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    CMPI_EXPECTS(is_ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    CMPI_EXPECTS(is_ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

namespace status {

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status out_of_memory(std::string msg) {
  return {ErrorCode::kOutOfMemory, std::move(msg)};
}
inline Status capacity_exceeded(std::string msg) {
  return {ErrorCode::kCapacityExceeded, std::move(msg)};
}
inline Status closed(std::string msg) {
  return {ErrorCode::kClosed, std::move(msg)};
}
inline Status truncated(std::string msg) {
  return {ErrorCode::kTruncated, std::move(msg)};
}
inline Status unsupported(std::string msg) {
  return {ErrorCode::kUnsupported, std::move(msg)};
}
inline Status internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status timed_out(std::string msg) {
  return {ErrorCode::kTimedOut, std::move(msg)};
}
inline Status peer_failed(std::string msg) {
  return {ErrorCode::kPeerFailed, std::move(msg)};
}
inline Status data_poisoned(std::string msg) {
  return {ErrorCode::kDataPoisoned, std::move(msg)};
}
inline Status corrupt_pool(std::string msg) {
  return {ErrorCode::kCorruptPool, std::move(msg)};
}
inline Status admission_rejected(std::string msg) {
  return {ErrorCode::kAdmissionRejected, std::move(msg)};
}

}  // namespace status

/// Abort-on-error helper for call sites where failure is a programming error
/// (tests, examples, initialization paths with validated inputs).
inline void check_ok(const Status& s) {
  if (!s.is_ok()) {
    std::fprintf(stderr, "cmpi: unexpected failure: %s\n",
                 s.to_string().c_str());
    std::abort();
  }
}

template <typename T>
T check_ok(Result<T> r) {
  check_ok(r.status());
  return std::move(r).value();
}

}  // namespace cmpi
