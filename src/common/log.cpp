#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cmpi {
namespace {

LogLevel level_from_env() noexcept {
  const char* env = std::getenv("CMPI_LOG");
  if (env == nullptr) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  // Direct fprintf, not log_warn: this runs during the level storage's
  // own static initialization.
  std::fprintf(stderr,
               "[cmpi W] unrecognized CMPI_LOG value \"%s\""
               " (expected debug|info|warn|error); using warn\n",
               env);
  return LogLevel::kWarn;
}

thread_local int t_log_rank = -1;
thread_local double (*t_log_now_ns)() = nullptr;

std::atomic<int>& level_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(
      level_storage().load(std::memory_order_relaxed));
}

void log_set_thread_context(int rank, double (*now_ns)()) noexcept {
  t_log_rank = rank;
  t_log_now_ns = rank >= 0 ? now_ns : nullptr;
}

namespace detail {

void vlog(LogLevel level, const char* fmt, std::va_list args) noexcept {
  if (level < log_level()) {
    return;
  }
  char body[1024];
  std::vsnprintf(body, sizeof body, fmt, args);
  if (t_log_rank >= 0 && t_log_now_ns != nullptr) {
    std::fprintf(stderr, "[cmpi %s r%d @%.0fns] %s\n", level_tag(level),
                 t_log_rank, t_log_now_ns(), body);
  } else if (t_log_rank >= 0) {
    std::fprintf(stderr, "[cmpi %s r%d] %s\n", level_tag(level), t_log_rank,
                 body);
  } else {
    std::fprintf(stderr, "[cmpi %s] %s\n", level_tag(level), body);
  }
}

}  // namespace detail

#define CMPI_DEFINE_LOG_FN(name, level)            \
  void name(const char* fmt, ...) {                \
    std::va_list args;                             \
    va_start(args, fmt);                           \
    detail::vlog(level, fmt, args);                \
    va_end(args);                                  \
  }

CMPI_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
CMPI_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
CMPI_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
CMPI_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef CMPI_DEFINE_LOG_FN

}  // namespace cmpi
