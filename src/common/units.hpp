// Byte-size literals and formatting helpers shared by the benches and the
// timing models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cmpi {

inline constexpr std::size_t operator""_KiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024;
}
inline constexpr std::size_t operator""_MiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024 * 1024;
}
inline constexpr std::size_t operator""_GiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024 * 1024 * 1024;
}

/// "8", "1K", "64K", "8M" — the message-size labels OSU-style tables use.
std::string format_size(std::size_t bytes);

/// "123.4 ns" / "12.3 us" / "4.5 ms" with three significant digits.
std::string format_duration_ns(double nanoseconds);

/// "117.8 MB/s" / "9.90 GB/s" (decimal units, like the paper's tables).
std::string format_bandwidth(double bytes_per_second);

}  // namespace cmpi
