#include "queue/spsc_ring.hpp"

#include <bit>
#include <cstddef>
#include <cstring>

namespace cmpi::queue {

void SpscRing::format(cxlsim::Accessor& acc, std::uint64_t base,
                      std::size_t cells, std::size_t cell_payload) {
  CMPI_EXPECTS(is_aligned(base, kCacheLineSize));
  CMPI_EXPECTS(cells >= 2);
  CMPI_EXPECTS(cell_payload >= kCacheLineSize);
  CMPI_EXPECTS(is_aligned(cell_payload, kCacheLineSize));
  acc.publish_flag(base + kTailOffset, 0);
  acc.publish_flag(base + kHeadOffset, 0);
  acc.nt_store_u64(base + kConstOffset, cells);
  acc.nt_store_u64(base + kConstOffset + 8, cell_payload);
}

SpscRing SpscRing::attach(cxlsim::Accessor& acc, std::uint64_t base) {
  const std::uint64_t cells = acc.nt_load_u64(base + kConstOffset);
  const std::uint64_t cell_payload = acc.nt_load_u64(base + kConstOffset + 8);
  CMPI_ENSURES(cells >= 2);
  CMPI_ENSURES(cell_payload >= kCacheLineSize);
  return SpscRing(base, cells, cell_payload);
}

bool SpscRing::can_enqueue(cxlsim::Accessor& acc) {
  if (tail_local_ - peer_head_ < cells_) {
    return true;
  }
  const auto head = acc.peek_flag(base_ + kHeadOffset);
  if (head.value != peer_head_) {
    acc.clock().advance(acc.device().timing().params().nt_load_latency);
    peer_head_ = head.value;
    if (tail_local_ - peer_head_ < cells_) {
      // The producer was blocked on this specific cell being freed:
      // absorb the consumer's per-cell release stamp.
      const std::uint64_t freed = acc.nt_load_u64(
          cell_base(tail_local_) + offsetof(CellHeader, freed_stamp));
      acc.clock().observe(std::bit_cast<simtime::Ns>(freed));
    }
  }
  return tail_local_ - peer_head_ < cells_;
}

bool SpscRing::try_enqueue(cxlsim::Accessor& acc, const CellHeader& header,
                           std::span<const std::byte> payload) {
  CMPI_EXPECTS(payload.size() <= cell_payload_);
  CMPI_EXPECTS(header.chunk_bytes == payload.size());
  if (!can_enqueue(acc)) {
    return false;
  }
  const std::uint64_t cell = cell_base(tail_local_);
  // Payload first, then drain, so the header's per-cell stamp covers it.
  if (!payload.empty()) {
    acc.bulk_write(cell + sizeof(CellHeader), payload);
  }
  acc.sfence();
  CellHeader stamped = header;
  stamped.stamp = std::bit_cast<std::uint64_t>(acc.clock().now());
  acc.nt_store(cell, {reinterpret_cast<const std::byte*>(&stamped),
                      sizeof(CellHeader)});
  ++tail_local_;
  acc.publish_flag(base_ + kTailOffset, tail_local_);
  return true;
}

bool SpscRing::can_dequeue(cxlsim::Accessor& acc) {
  if (peer_tail_ != head_local_) {
    return true;
  }
  const auto tail = acc.peek_flag(base_ + kTailOffset);
  if (tail.value != peer_tail_) {
    // Charge the flag read, but take causality from the per-cell stamp at
    // dequeue time — the tail stamp reflects only the newest publish.
    acc.clock().advance(
        acc.device().timing().params().nt_load_latency);
    peer_tail_ = tail.value;
  }
  return peer_tail_ != head_local_;
}

std::optional<CellHeader> SpscRing::peek(cxlsim::Accessor& acc) {
  if (!can_dequeue(acc)) {
    return std::nullopt;
  }
  CellHeader header{};
  acc.nt_load(cell_base(head_local_),
              {reinterpret_cast<std::byte*>(&header), sizeof(CellHeader)});
  acc.clock().observe(std::bit_cast<simtime::Ns>(header.stamp));
  return header;
}

bool SpscRing::try_dequeue(cxlsim::Accessor& acc, CellHeader& header_out,
                           std::span<std::byte> payload_out) {
  if (!can_dequeue(acc)) {
    return false;
  }
  const std::uint64_t cell = cell_base(head_local_);
  acc.nt_load(cell, {reinterpret_cast<std::byte*>(&header_out),
                     sizeof(CellHeader)});
  acc.clock().observe(std::bit_cast<simtime::Ns>(header_out.stamp));
  CMPI_ASSERT(header_out.chunk_bytes <= cell_payload_);
  if (!payload_out.empty()) {
    CMPI_EXPECTS(payload_out.size() >= header_out.chunk_bytes);
    acc.bulk_read(cell + sizeof(CellHeader),
                  payload_out.subspan(0, header_out.chunk_bytes));
  }
  // Release stamp for a producer blocked on this very cell.
  acc.node_cache().nt_store_u64(
      cell + offsetof(CellHeader, freed_stamp),
      std::bit_cast<std::uint64_t>(acc.clock().now()));
  ++head_local_;
  acc.publish_flag(base_ + kHeadOffset, head_local_);
  return true;
}

}  // namespace cmpi::queue
