#include "queue/spsc_ring.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.hpp"
#include "obs/obs.hpp"

namespace cmpi::queue {

void SpscRing::format(cxlsim::Accessor& acc, std::uint64_t base,
                      std::size_t cells, std::size_t cell_payload) {
  CMPI_EXPECTS(is_aligned(base, kCacheLineSize));
  CMPI_EXPECTS(cells >= 2 && cells <= kMaxCells);
  CMPI_EXPECTS(std::has_single_bit(cells));
  CMPI_EXPECTS(cell_payload >= kCacheLineSize &&
               cell_payload <= kMaxCellPayload);
  CMPI_EXPECTS(is_aligned(cell_payload, kCacheLineSize));
  acc.publish_flag(base + kTailOffset, 0);
  acc.publish_flag(base + kHeadOffset, 0);
  acc.nt_store_u64(base + kConstOffset, cells);
  acc.nt_store_u64(base + kConstOffset + 8, cell_payload);
}

Result<SpscRing> SpscRing::attach(cxlsim::Accessor& acc, std::uint64_t base) {
  if (!is_aligned(base, kCacheLineSize)) {
    return status::invalid_argument("ring base is not cacheline-aligned");
  }
  if (base + kCellsOffset > acc.device().size()) {
    return status::invalid_argument("ring base outside the pool");
  }
  const std::uint64_t cells = acc.nt_load_u64(base + kConstOffset);
  const std::uint64_t cell_payload = acc.nt_load_u64(base + kConstOffset + 8);
  if (cells < 2 || cells > kMaxCells ||
      !std::has_single_bit(cells)) {
    return status::invalid_argument(
        "ring constants corrupt: cells=" + std::to_string(cells) +
        " (want a power of two in [2, " + std::to_string(kMaxCells) + "])");
  }
  if (cell_payload < kCacheLineSize || cell_payload > kMaxCellPayload ||
      !is_aligned(cell_payload, kCacheLineSize)) {
    return status::invalid_argument(
        "ring constants corrupt: cell_payload=" + std::to_string(cell_payload) +
        " (want a cacheline multiple in [64, " +
        std::to_string(kMaxCellPayload) + "])");
  }
  if (base + footprint(cells, cell_payload) > acc.device().size()) {
    return status::invalid_argument(
        "ring footprint exceeds the pool: base=" + std::to_string(base) +
        " cells=" + std::to_string(cells) +
        " cell_payload=" + std::to_string(cell_payload));
  }
  SpscRing ring(base, cells, cell_payload);
  // Resume from the published counters: a freshly formatted ring has both
  // at zero, a re-attach (respawn / second run epoch) picks up exactly
  // where the last published state left the FIFO.
  const std::uint64_t tail = acc.peek_flag(base + kTailOffset).value;
  const std::uint64_t head = acc.peek_flag(base + kHeadOffset).value;
  if (tail - head > cells) {
    return status::corrupt_pool(
        "ring counters corrupt: tail=" + std::to_string(tail) +
        " head=" + std::to_string(head) + " capacity=" +
        std::to_string(cells));
  }
  ring.tail_local_ = tail;
  ring.head_local_ = head;
  ring.peer_head_ = head;
  ring.peer_tail_ = tail;
  ring.published_tail_ = tail;
  ring.head_published_ = head;
  return ring;
}

bool SpscRing::can_enqueue(cxlsim::Accessor& acc) {
  if (tail_local_ - peer_head_ < cells_) {
    return true;
  }
  const auto head = acc.peek_flag(base_ + kHeadOffset);
  if (head.value != peer_head_) {
    acc.clock().advance(acc.device().timing().params().nt_load_latency);
    peer_head_ = head.value;
    if (tail_local_ - peer_head_ < cells_) {
      // The producer was blocked on this specific cell being freed:
      // absorb the consumer's per-cell release stamp.
      const std::uint64_t freed = acc.nt_load_u64(
          cell_base(tail_local_) + offsetof(CellHeader, freed_stamp));
      acc.clock().observe(std::bit_cast<simtime::Ns>(freed));
    }
  }
  return tail_local_ - peer_head_ < cells_;
}

bool SpscRing::try_enqueue(cxlsim::Accessor& acc, const CellHeader& header,
                           std::span<const std::byte> payload) {
  if (!stage_cell(acc, header, payload, /*compute_crc=*/true)) {
    return false;
  }
  publish_staged(acc);
  return true;
}

bool SpscRing::try_enqueue_prehashed(cxlsim::Accessor& acc,
                                     const CellHeader& header,
                                     std::span<const std::byte> payload) {
  if (!stage_cell(acc, header, payload, /*compute_crc=*/false)) {
    return false;
  }
  publish_staged(acc);
  return true;
}

bool SpscRing::try_stage(cxlsim::Accessor& acc, const CellHeader& header,
                         std::span<const std::byte> payload) {
  return stage_cell(acc, header, payload, /*compute_crc=*/true);
}

bool SpscRing::try_stage_prehashed(cxlsim::Accessor& acc,
                                   const CellHeader& header,
                                   std::span<const std::byte> payload) {
  return stage_cell(acc, header, payload, /*compute_crc=*/false);
}

bool SpscRing::stage_cell(cxlsim::Accessor& acc, const CellHeader& header,
                          std::span<const std::byte> payload,
                          bool compute_crc) {
  CMPI_EXPECTS(payload.size() <= cell_payload_);
  CMPI_EXPECTS(header.chunk_bytes == payload.size());
  if (!can_enqueue(acc)) {
    return false;
  }
  const std::uint64_t cell = cell_base(tail_local_);
  // Payload now; header (and its durability stamp) at publish time, after
  // the batch fence, so the stamp covers the payload. The second and later
  // cells of a batch share the first one's flush sweep.
  if (!payload.empty()) {
    acc.bulk_write(cell + sizeof(CellHeader), payload,
                   staged_.empty() ? cxlsim::Accessor::BulkCharge::kFull
                                   : cxlsim::Accessor::BulkCharge::kBatched);
  }
  Staged staged;
  staged.header = header;
  staged.header.generation = static_cast<std::uint32_t>(tail_local_);
  if (compute_crc) {
    staged.header.payload_crc = crc32c(payload);
  }
  staged.payload_bytes = static_cast<std::uint32_t>(payload.size());
  staged_.push_back(staged);
  ++tail_local_;
  CMPI_OBS_COUNT("ring.enqueues", 1);
  CMPI_OBS_GAUGE_MAX("ring.occupancy_hwm", tail_local_ - peer_head_);
  if ((header.flags & kRetransmit) != 0) {
    CMPI_OBS_COUNT("ring.retransmit_cells", 1);
  }
  return true;
}

bool SpscRing::publish_staged(cxlsim::Accessor& acc) {
  if (staged_.empty()) {
    return false;
  }
  // One drain for the whole batch: every header stamp below covers every
  // staged payload.
  acc.sfence();
  std::uint64_t index = published_tail_;
  for (Staged& staged : staged_) {
    const std::uint64_t cell = cell_base(index);
    staged.header.stamp = std::bit_cast<std::uint64_t>(acc.clock().now());
    acc.nt_store(cell, {reinterpret_cast<const std::byte*>(&staged.header),
                        sizeof(CellHeader)});
    // Coherence-checker hint: the tail publish covers this cell (header +
    // payload); the consumer reads it after observing the flag.
    acc.annotate_publish_range(cell,
                               sizeof(CellHeader) + staged.payload_bytes);
    ++index;
  }
  CMPI_ASSERT(index == tail_local_);
  CMPI_OBS_HIST("ring.cells_per_publish",
                static_cast<std::int64_t>(staged_.size()));
  const std::uint64_t before = published_tail_;
  acc.publish_flag(base_ + kTailOffset, tail_local_);
  published_tail_ = tail_local_;
  staged_.clear();
  // Empty→non-empty edge: if the consumer's published head says it had
  // drained everything visible before this batch, it may have concluded
  // "empty" and gone idle — the caller must ring its doorbell. The peek is
  // time-free; a consumer that merely lags its head publish flushes it
  // before concluding empty (see defer_head_publish), so a false here
  // guarantees the consumer still sees a non-empty ring.
  const std::uint64_t head = acc.peek_flag(base_ + kHeadOffset).value;
  last_publish_edge_ = head == before;
  return last_publish_edge_;
}

bool SpscRing::can_dequeue(cxlsim::Accessor& acc) {
  if (peer_tail_ != head_local_) {
    return true;
  }
  const auto tail = acc.peek_flag(base_ + kTailOffset);
  if (tail.value != peer_tail_) {
    // Charge the flag read, but take causality from the per-cell stamp at
    // dequeue time — the tail stamp reflects only the newest publish.
    acc.clock().advance(
        acc.device().timing().params().nt_load_latency);
    peer_tail_ = tail.value;
  }
  return peer_tail_ != head_local_;
}

std::optional<CellHeader> SpscRing::peek(cxlsim::Accessor& acc) {
  if (peeked_.has_value()) {
    // Same unconsumed cell as the previous peek: time-free re-read (the
    // header cannot change until we consume the cell).
    return peeked_;
  }
  if (!can_dequeue(acc)) {
    return std::nullopt;
  }
  CellHeader header{};
  if (fused_reads_) {
    // Fused small-cell read: one streaming load spans the header line and
    // the first payload line. Adjacent-line fills pipeline, so the pair
    // costs one line-fill latency (plus a few ns of device occupancy)
    // instead of two — and a small-message dequeue then needs no separate
    // payload read at all.
    const std::size_t inline_bytes = std::min(cell_payload_, kCacheLineSize);
    std::array<std::byte, sizeof(CellHeader) + kCacheLineSize> fused;
    acc.nt_load(cell_base(head_local_),
                std::span(fused.data(), sizeof(CellHeader) + inline_bytes));
    std::memcpy(&header, fused.data(), sizeof(CellHeader));
    std::memcpy(peeked_inline_.data(), fused.data() + sizeof(CellHeader),
                inline_bytes);
    peeked_inline_bytes_ = inline_bytes;
  } else {
    acc.nt_load(cell_base(head_local_),
                {reinterpret_cast<std::byte*>(&header), sizeof(CellHeader)});
    peeked_inline_bytes_ = 0;
  }
  acc.clock().observe(std::bit_cast<simtime::Ns>(header.stamp));
  peeked_ = header;
  return peeked_;
}

bool SpscRing::try_dequeue(cxlsim::Accessor& acc, CellHeader& header_out,
                           std::span<std::byte> payload_out) {
  std::size_t inline_bytes = 0;
  if (peeked_.has_value()) {
    // peek() already charged the header read for this cell (and, under
    // fused reads, prefetched the first payload line alongside it).
    header_out = *peeked_;
    inline_bytes = peeked_inline_bytes_;
    peeked_.reset();
    peeked_inline_bytes_ = 0;
  } else if (!can_dequeue(acc)) {
    return false;
  } else {
    acc.nt_load(cell_base(head_local_),
                {reinterpret_cast<std::byte*>(&header_out),
                 sizeof(CellHeader)});
    acc.clock().observe(std::bit_cast<simtime::Ns>(header_out.stamp));
  }
  const std::uint64_t cell = cell_base(head_local_);
  CMPI_ASSERT(header_out.chunk_bytes <= cell_payload_);
  last_intact_ =
      header_out.generation == static_cast<std::uint32_t>(head_local_);
  if (!payload_out.empty()) {
    CMPI_EXPECTS(payload_out.size() >= header_out.chunk_bytes);
    const auto chunk = payload_out.subspan(0, header_out.chunk_bytes);
    if (header_out.chunk_bytes <= inline_bytes) {
      // The whole chunk rode in with the fused peek: host-side copy only,
      // no second pool read, no invalidate sweep.
      std::memcpy(chunk.data(), peeked_inline_.data(), header_out.chunk_bytes);
    } else {
      // In a deferred-head reap batch, cells after the first share the
      // batch's single invalidate sweep.
      acc.bulk_read(cell + sizeof(CellHeader), chunk,
                    head_defer_ && read_setup_charged_
                        ? cxlsim::Accessor::BulkCharge::kBatched
                        : cxlsim::Accessor::BulkCharge::kFull);
      read_setup_charged_ = true;
    }
    // End-to-end integrity: the CRC is over what we actually copied out,
    // so corruption anywhere between the producer's staging copy and this
    // read is caught here. Host-side work only — no virtual time charged.
    last_intact_ = last_intact_ && crc32c(chunk) == header_out.payload_crc;
  }
  // Release stamp for a producer blocked on this very cell.
  acc.node_cache().nt_store_u64(
      cell + offsetof(CellHeader, freed_stamp),
      std::bit_cast<std::uint64_t>(acc.clock().now()));
  ++head_local_;
  CMPI_OBS_COUNT("ring.dequeues", 1);
  mid_message_ = (header_out.flags & kLastChunk) == 0;
  if (head_defer_) {
    // Batched reaping: the caller publishes via flush_head() at the end of
    // the reap batch (and always before concluding the ring is empty).
    return true;
  }
  // The head publish covers no cached payload (the freed stamp above is an
  // NT store), so no annotate_publish_range is needed here.
  acc.publish_flag(base_ + kHeadOffset, head_local_);
  head_published_ = head_local_;
  return true;
}

void SpscRing::flush_head(cxlsim::Accessor& acc) {
  read_setup_charged_ = false;
  if (head_published_ == head_local_) {
    return;
  }
  acc.publish_flag(base_ + kHeadOffset, head_local_);
  head_published_ = head_local_;
}

bool SpscRing::abandoned_mid_message(cxlsim::Accessor& acc) {
  return mid_message_ && !can_dequeue(acc);
}

SpscRing::ScavengeCounts SpscRing::scavenge_producer(cxlsim::Accessor& acc) {
  ScavengeCounts counts;
  std::vector<std::byte> scratch(cell_payload_);
  while (can_dequeue(acc)) {
    const std::uint64_t cell = cell_base(head_local_);
    CellHeader header{};
    if (peeked_.has_value()) {
      header = *peeked_;
      peeked_.reset();
      peeked_inline_bytes_ = 0;
    } else {
      acc.nt_load(cell, {reinterpret_cast<std::byte*>(&header),
                         sizeof(CellHeader)});
      acc.clock().observe(std::bit_cast<simtime::Ns>(header.stamp));
    }
    // Do not trust the header: a torn cell's chunk_bytes could index out
    // of the cell. Validate generation first and clamp the payload walk.
    const bool generation_ok =
        header.generation == static_cast<std::uint32_t>(head_local_);
    const bool bounds_ok = header.chunk_bytes <= cell_payload_;
    bool intact = generation_ok && bounds_ok;
    if (intact && header.chunk_bytes > 0) {
      const auto chunk = std::span<std::byte>(scratch)
                             .subspan(0, header.chunk_bytes);
      acc.bulk_read(cell + sizeof(CellHeader), chunk);
      intact = crc32c(chunk) == header.payload_crc;
    }
    counts.drained += 1;
    counts.torn += intact ? 0 : 1;
    acc.node_cache().nt_store_u64(
        cell + offsetof(CellHeader, freed_stamp),
        std::bit_cast<std::uint64_t>(acc.clock().now()));
    ++head_local_;
  }
  mid_message_ = false;
  last_intact_ = true;
  if (counts.drained > 0 || head_published_ != head_local_) {
    acc.publish_flag(base_ + kHeadOffset, head_local_);
    head_published_ = head_local_;
  }
  if (acc.poison_pending()) {
    // Poison encountered while draining a dead producer's cells is part of
    // what scavenge discards — it must not leak into the next receive.
    (void)acc.take_poison_status("ring scavenge");
  }
  return counts;
}

void SpscRing::debug_rebase_counters(cxlsim::Accessor& acc,
                                     std::uint64_t count) {
  acc.publish_flag(base_ + kTailOffset, count);
  acc.publish_flag(base_ + kHeadOffset, count);
  tail_local_ = count;
  head_local_ = count;
  peer_head_ = count;
  peer_tail_ = count;
  published_tail_ = count;
  head_published_ = count;
  staged_.clear();
  read_setup_charged_ = false;
  peeked_.reset();
  peeked_inline_bytes_ = 0;
  mid_message_ = false;
}

}  // namespace cmpi::queue
