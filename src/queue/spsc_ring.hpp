// Single-Producer Single-Consumer message ring in CXL SHM (paper §3.3).
//
// MPICH's shared-memory channel uses MPSC/MPMC receive queues whose
// lock-free implementations need atomic RMW — which the pooled CXL device
// cannot provide across heads. cMPI's answer is a matrix of SPSC rings,
// one per (sender, receiver) pair: with exactly one producer and one
// consumer, head and tail are single-writer words and plain NT
// stores/loads (plus flushes for payload) suffice.
//
// Ring layout in CXL SHM (every section cacheline-separated so the
// producer-written and consumer-written lines never false-share):
//
//   +0    tail flag  (producer publishes: count of cells ever enqueued)
//   +64   head flag  (consumer publishes: count of cells ever dequeued)
//   +128  u64 capacity, u64 cell_payload  (constants, set at format)
//   +192  cells: capacity * (64-byte header + cell_payload)
//
// Cell header (64 B):
//   u32 src_rank, u32 src_incarnation, u32 tag, u32 payload_crc,
//   u64 total_bytes, u64 chunk_offset, u32 chunk_bytes,
//   u32 flags (bit0: last chunk), u32 msg_seq, u32 generation,
//   u64 stamp, u64 freed_stamp
//
// The recovery fields make every cell scannable after a crash:
// `generation` is the low half of the free-running enqueue index, so a
// cell whose generation disagrees with the slot it occupies is torn or
// stale; `payload_crc` (CRC32C, stamped by the ring at enqueue, verified
// at dequeue) catches payload corruption end to end; `src_incarnation`
// lets the consumer fence out messages published by a dead incarnation of
// the producer after a respawn (see runtime::PoolRecovery).
//
// `stamp` is the producer's virtual time when THIS cell's payload was
// durable in the pool; `freed_stamp` is the consumer's time when it
// finished with the cell. Each side absorbs the *per-cell* stamp of the
// cell it touches, never the head/tail flag's stamp: the flags only carry
// the newest publish time, and absorbing that would serialize an in-flight
// pipeline into batch-lockstep and halve streaming throughput.
//
// A message larger than cell_payload is split into consecutive cells
// (§4.3); the SPSC FIFO guarantees chunks arrive in order and contiguously.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/align.hpp"
#include "common/status.hpp"
#include "cxlsim/accessor.hpp"

namespace cmpi::queue {

/// On-pool cell header.
struct CellHeader {
  std::uint32_t src_rank;
  std::uint32_t src_incarnation;  ///< producer's incarnation at enqueue
  std::uint32_t tag;
  std::uint32_t payload_crc;   ///< CRC32C of the chunk payload (ring-stamped)
  std::uint64_t total_bytes;   ///< size of the whole message
  std::uint64_t chunk_offset;  ///< offset of this chunk within the message
  std::uint32_t chunk_bytes;   ///< payload bytes in this cell
  std::uint32_t flags;         ///< kLastChunk | kSyncSend | kRetransmit
  std::uint32_t msg_seq;       ///< per-(src,dst) message sequence number
  std::uint32_t generation;   ///< low half of the enqueue index (ring-stamped)
  std::uint64_t stamp;        ///< producer vtime bits (set by the ring)
  std::uint64_t freed_stamp;  ///< consumer vtime bits when the cell freed
};
static_assert(sizeof(CellHeader) == kCacheLineSize);

inline constexpr std::uint32_t kLastChunk = 1;
/// The message is a synchronous send: the receiver acknowledges the match
/// (MPI_Ssend semantics, implemented in the p2p layer).
inline constexpr std::uint32_t kSyncSend = 2;
/// The message is a retransmission of an earlier sequence number (the
/// receiver NAKed a corrupt payload; see p2p::Endpoint).
inline constexpr std::uint32_t kRetransmit = 4;
/// The cell is a rendezvous RTS descriptor: the payload is a small
/// p2p-layer descriptor pointing at the message body parked in an arena
/// slot, not message data (large-message one-copy path; see p2p::Endpoint).
/// `total_bytes` still carries the real message size for matching/probing.
inline constexpr std::uint32_t kRendezvous = 8;

class SpscRing {
 public:
  /// Bytes one ring occupies.
  static constexpr std::size_t footprint(std::size_t cells,
                                         std::size_t cell_payload) noexcept {
    return kCellsOffset + cells * (sizeof(CellHeader) + cell_payload);
  }

  /// Geometry limits. `cells` must be a power of two: the ring indices are
  /// free-running u64 counters and `index % cells` stays contiguous across
  /// the 2^64 wraparound only when cells divides 2^64.
  static constexpr std::size_t kMaxCells = std::size_t{1} << 20;
  static constexpr std::size_t kMaxCellPayload = std::size_t{1} << 30;

  /// One-time initialization (bootstrap rank).
  static void format(cxlsim::Accessor& acc, std::uint64_t base,
                     std::size_t cells, std::size_t cell_payload);

  /// Attach a view (producer or consumer side). Validates the on-pool
  /// geometry constants (range, alignment, device bounds) and fails with a
  /// Status for a corrupted or mis-formatted ring — cell_base arithmetic
  /// on garbage constants would index out of bounds. The view's local
  /// counters are restored from the published head/tail flags, so a
  /// re-attach (respawned rank, second Universe::run epoch) resumes
  /// exactly at the published state: cells a crashed producer staged but
  /// never published are simply lost, as a real crash would lose them.
  static Result<SpscRing> attach(cxlsim::Accessor& acc, std::uint64_t base);

  [[nodiscard]] std::size_t capacity() const noexcept { return cells_; }
  [[nodiscard]] std::size_t cell_payload() const noexcept {
    return cell_payload_;
  }

  // ---- Producer side ----
  /// True if a cell is free. Peeking is time-free; the head stamp is
  /// absorbed when a previously-full ring drains (try_enqueue success after
  /// observing space).
  [[nodiscard]] bool can_enqueue(cxlsim::Accessor& acc);

  /// Enqueue one chunk. Returns false (and does nothing) if the ring is
  /// full. `payload.size()` must be <= cell_payload. Publishes any
  /// previously staged cells along with this one (FIFO order preserved).
  bool try_enqueue(cxlsim::Accessor& acc, const CellHeader& header,
                   std::span<const std::byte> payload);

  /// Same as try_enqueue, but trusts `header.payload_crc` as supplied by
  /// the caller instead of computing CRC32C over `payload` here. The p2p
  /// eager path computes the checksum while building its staging copy
  /// (one fused pass over the payload) and hands it in, so the ring does
  /// not traverse the bytes a second time.
  bool try_enqueue_prehashed(cxlsim::Accessor& acc, const CellHeader& header,
                             std::span<const std::byte> payload);

  // ---- Producer side: staged batches ----
  // The message-rate path amortizes the per-cell publish cost: stage K
  // cells (payload copies only), then publish_staged() makes them all
  // visible under ONE fence + ONE tail-flag store. Headers are written at
  // publish time so every cell's stamp still covers its durable payload.
  // Staged-but-unpublished cells are lost on a crash, exactly like a real
  // producer dying between memcpy and store-release.

  /// Stage one chunk without publishing it. Same contract as try_enqueue
  /// (false when the ring is full), but the consumer cannot see the cell
  /// until publish_staged().
  bool try_stage(cxlsim::Accessor& acc, const CellHeader& header,
                 std::span<const std::byte> payload);
  /// try_stage with a caller-computed CRC (see try_enqueue_prehashed).
  bool try_stage_prehashed(cxlsim::Accessor& acc, const CellHeader& header,
                           std::span<const std::byte> payload);
  /// Cells staged but not yet published.
  [[nodiscard]] std::size_t staged_pending() const noexcept {
    return staged_.size();
  }
  /// Publish all staged cells: one fence, per-cell header stores, one tail
  /// flag. Returns the empty→non-empty edge verdict: true when the
  /// published head shows the consumer had drained everything published
  /// before this batch — it may have concluded "empty" and gone idle, so
  /// the producer must ring the receiver's doorbell. False with nothing
  /// staged.
  bool publish_staged(cxlsim::Accessor& acc);
  /// Edge verdict of the most recent publish (publish_staged directly, or
  /// the one embedded in try_enqueue). Lets callers that publish per cell
  /// drive the same doorbell decision as the batched path.
  [[nodiscard]] bool last_publish_edge() const noexcept {
    return last_publish_edge_;
  }

  // ---- Consumer side ----
  /// True if a cell is available to dequeue.
  [[nodiscard]] bool can_dequeue(cxlsim::Accessor& acc);

  /// Peek the header of the next cell without consuming it. Returns
  /// nullopt when empty. Charges header-read time only on a fresh cell:
  /// the header is cached until the cell is consumed, so iprobe/probe
  /// polling loops re-peeking the same cell advance virtual time by zero.
  std::optional<CellHeader> peek(cxlsim::Accessor& acc);

  /// Dequeue the next cell into `payload_out` (must be >= chunk_bytes of
  /// the peeked header; pass empty to discard). Returns false when empty.
  bool try_dequeue(cxlsim::Accessor& acc, CellHeader& header_out,
                   std::span<std::byte> payload_out);

  // ---- Consumer side: batched reaping ----
  /// When deferred, try_dequeue skips the per-cell head publish (and
  /// amortizes the invalidate sweep across the batch); the consumer must
  /// call flush_head() at the end of each reap batch — in particular
  /// BEFORE concluding the ring is empty, or the producer's
  /// empty→non-empty edge detection can miss a wake-up.
  void defer_head_publish(bool on) noexcept { head_defer_ = on; }
  /// Publish the head if any dequeues are pending publication.
  void flush_head(cxlsim::Accessor& acc);

  /// Fused small-cell reads (consumer side). When enabled, peek() pulls
  /// the header line AND the first payload line with one streaming load —
  /// adjacent-line fills pipeline, so the pair costs one line-fill
  /// latency instead of two (see Accessor::nt_load) — and a dequeue whose
  /// chunk fits the prefetched line skips the separate payload read (and
  /// its invalidate sweep) entirely. This is the dominant per-message
  /// receiver cost at small sizes. Enabled by the doorbell progress
  /// engine on its fault-free hot path; the legacy-scan ablation and the
  /// fault/recovery paths keep the pre-change split reads.
  void enable_fused_small_reads(bool on) noexcept { fused_reads_ = on; }

  /// Consumer-side crash symptom: the last dequeued cell was a non-final
  /// chunk of a multi-cell message and no successor cell has arrived — the
  /// message sits half-written in the ring. On its own this only means the
  /// producer is slow; the p2p layer combines it with the failure
  /// detector's verdict on the producer to decide that the message is
  /// abandoned and the assembled prefix must be discarded.
  [[nodiscard]] bool abandoned_mid_message(cxlsim::Accessor& acc);

  /// True when the payload copied out by the last try_dequeue matched the
  /// header's CRC32C and the cell's generation matched its slot. A false
  /// reading means the cell was torn or the payload corrupted in the pool;
  /// the p2p layer turns this into a NAK + retransmission.
  [[nodiscard]] bool last_dequeue_intact() const noexcept {
    return last_intact_;
  }

  /// Free-running enqueue index of the producer view (the generation the
  /// next enqueued cell will carry).
  [[nodiscard]] std::uint64_t tail_index() const noexcept {
    return tail_local_;
  }
  /// Free-running dequeue index of the consumer view.
  [[nodiscard]] std::uint64_t head_index() const noexcept {
    return head_local_;
  }

  /// Consumer-side tally from scavenge_producer().
  struct ScavengeCounts {
    std::uint64_t drained = 0;  ///< published cells consumed and discarded
    std::uint64_t torn = 0;     ///< cells failing the generation/CRC scan
  };

  /// Survivor-side fsck of a dead producer's ring: consume every published
  /// cell, validating generation + CRC without trusting the header (a torn
  /// header cannot index out of bounds here), and publish the advanced
  /// head so the ring is empty and reusable by the producer's next
  /// incarnation. The consumer view stays coherent for subsequent traffic.
  ScavengeCounts scavenge_producer(cxlsim::Accessor& acc);

  /// Test hook: re-base both the shared flags and this view's local
  /// counters to `count`, as if `count` cells had already flowed through
  /// the ring. Call on an idle ring, on every attached view, with the same
  /// value (used to exercise the 2^64 index wraparound).
  void debug_rebase_counters(cxlsim::Accessor& acc, std::uint64_t count);

  // On-pool layout (public: recovery tooling and fault-injection tests
  // compute cell addresses from these).
  static constexpr std::uint64_t kTailOffset = 0;
  static constexpr std::uint64_t kHeadOffset = kCacheLineSize;
  static constexpr std::uint64_t kConstOffset = 2 * kCacheLineSize;
  static constexpr std::uint64_t kCellsOffset = 3 * kCacheLineSize;

 private:
  SpscRing(std::uint64_t base, std::size_t cells, std::size_t cell_payload)
      : base_(base), cells_(cells), cell_payload_(cell_payload) {}

  /// A staged-but-unpublished cell: the payload is already in the pool,
  /// the header (with its durability stamp) is written at publish time.
  struct Staged {
    CellHeader header;
    std::uint32_t payload_bytes;
  };

  bool stage_cell(cxlsim::Accessor& acc, const CellHeader& header,
                  std::span<const std::byte> payload, bool compute_crc);

  [[nodiscard]] std::uint64_t cell_base(std::uint64_t index) const noexcept {
    return base_ + kCellsOffset +
           (index % cells_) * (sizeof(CellHeader) + cell_payload_);
  }

  std::uint64_t base_;
  std::size_t cells_;
  std::size_t cell_payload_;
  // Producer- and consumer-local cached counters. Each side only trusts its
  // own counter plus the peer's published flag.
  std::uint64_t tail_local_ = 0;  // producer: cells enqueued
  std::uint64_t head_local_ = 0;  // consumer: cells dequeued
  std::uint64_t peer_head_ = 0;   // producer's last view of head
  std::uint64_t peer_tail_ = 0;   // consumer's last view of tail
  /// Header of the not-yet-consumed cell at head_local_, cached by peek()
  /// so repeated polls of the same cell are time-free.
  std::optional<CellHeader> peeked_;
  /// Consumer-side: fused reads enabled (see enable_fused_small_reads).
  bool fused_reads_ = false;
  /// Consumer-side: first payload line of the peeked cell, prefetched by
  /// the fused peek. Valid for the cell in peeked_ iff
  /// peeked_inline_bytes_ > 0; consumed or discarded with peeked_.
  std::array<std::byte, kCacheLineSize> peeked_inline_{};
  std::size_t peeked_inline_bytes_ = 0;
  /// Consumer-side: the most recently dequeued cell lacked kLastChunk, so
  /// the next cell is owed as part of the same message.
  bool mid_message_ = false;
  /// Consumer-side: generation/CRC verdict of the last dequeued cell.
  bool last_intact_ = true;
  /// Producer-side: cells staged ahead of the published tail.
  std::vector<Staged> staged_;
  /// Producer-side: value the tail flag currently holds in the pool
  /// (tail_local_ minus the staged cells).
  std::uint64_t published_tail_ = 0;
  /// Producer-side: edge verdict of the most recent publish.
  bool last_publish_edge_ = false;
  /// Consumer-side: value the head flag currently holds in the pool.
  std::uint64_t head_published_ = 0;
  /// Consumer-side: head publishes are batched (see defer_head_publish).
  bool head_defer_ = false;
  /// Consumer-side: the current reap batch has already paid the invalidate
  /// sweep's setup cost (reset by flush_head).
  bool read_setup_charged_ = false;
};

}  // namespace cmpi::queue
