// The pairwise message-queue matrix (paper §3.3).
//
// One SPSC ring per ordered (sender, receiver) pair, laid out contiguously
// inside a single CXL SHM Arena object so any rank can locate any ring from
// the object's base address and the pair's index — the same "contiguous
// layout + local arithmetic" trick the paper uses for windows and queues.
// Index: ring(receiver, sender) = receiver * nranks + sender.
//
// The bootstrap rank creates and formats the object; everyone else opens
// it by name (the paper broadcasts the name; our ranks share the constant).
// Each rank keeps its own QueueMatrix instance because ring views cache
// producer/consumer counters.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arena/arena.hpp"
#include "queue/spsc_ring.hpp"

namespace cmpi::queue {

class QueueMatrix {
 public:
  static constexpr const char* kObjectName = "cmpi_pt2pt_queue_matrix";

  /// Bytes the whole matrix occupies.
  static std::size_t footprint(int nranks, std::size_t cells,
                               std::size_t cell_payload) noexcept;

  /// Root path: create the arena object and format every ring.
  static Result<QueueMatrix> create(arena::Arena& arena,
                                    cxlsim::Accessor& acc, int nranks,
                                    std::size_t cells,
                                    std::size_t cell_payload);

  /// Non-root path: open the existing object.
  static Result<QueueMatrix> open(arena::Arena& arena, cxlsim::Accessor& acc,
                                  int nranks);

  /// Ring this rank produces into, toward `to` (caller must be the only
  /// producer, i.e. `from` == own rank; the matrix does not check).
  SpscRing& ring(cxlsim::Accessor& acc, int receiver, int sender);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] std::size_t cell_payload() const noexcept {
    return cell_payload_;
  }
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }

  /// Pool offset of one ring (layout arithmetic; public so recovery
  /// tooling and fault-injection tests can target specific cells).
  [[nodiscard]] std::uint64_t ring_base(int receiver, int sender) const;

 private:
  QueueMatrix(std::uint64_t base, int nranks, std::size_t cells,
              std::size_t cell_payload);

  std::uint64_t base_;
  int nranks_;
  std::size_t cells_;
  std::size_t cell_payload_;
  std::size_t ring_stride_;
  /// Lazily attached ring views (nranks^2, most never touched).
  std::vector<std::optional<SpscRing>> views_;
};

}  // namespace cmpi::queue
