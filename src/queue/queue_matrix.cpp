#include "queue/queue_matrix.hpp"

namespace cmpi::queue {

std::size_t QueueMatrix::footprint(int nranks, std::size_t cells,
                                   std::size_t cell_payload) noexcept {
  const std::size_t stride =
      align_up(SpscRing::footprint(cells, cell_payload), kCacheLineSize);
  return static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks) *
         stride;
}

QueueMatrix::QueueMatrix(std::uint64_t base, int nranks, std::size_t cells,
                         std::size_t cell_payload)
    : base_(base),
      nranks_(nranks),
      cells_(cells),
      cell_payload_(cell_payload),
      ring_stride_(
          align_up(SpscRing::footprint(cells, cell_payload), kCacheLineSize)),
      views_(static_cast<std::size_t>(nranks) *
             static_cast<std::size_t>(nranks)) {}

Result<QueueMatrix> QueueMatrix::create(arena::Arena& arena,
                                        cxlsim::Accessor& acc, int nranks,
                                        std::size_t cells,
                                        std::size_t cell_payload) {
  if (nranks <= 0) {
    return status::invalid_argument("nranks must be positive");
  }
  auto handle = arena.create(kObjectName,
                             footprint(nranks, cells, cell_payload));
  if (!handle.is_ok()) {
    return handle.status();
  }
  QueueMatrix matrix(handle.value().pool_offset, nranks, cells, cell_payload);
  for (int r = 0; r < nranks; ++r) {
    for (int s = 0; s < nranks; ++s) {
      SpscRing::format(acc, matrix.ring_base(r, s), cells, cell_payload);
    }
  }
  return matrix;
}

Result<QueueMatrix> QueueMatrix::open(arena::Arena& arena,
                                      cxlsim::Accessor& acc, int nranks) {
  auto handle = arena.open(kObjectName);
  if (!handle.is_ok()) {
    return handle.status();
  }
  // Ring geometry is read from the first ring's constants.
  auto probe = SpscRing::attach(acc, handle.value().pool_offset);
  if (!probe.is_ok()) {
    return probe.status();
  }
  return QueueMatrix(handle.value().pool_offset, nranks,
                     probe.value().capacity(), probe.value().cell_payload());
}

std::uint64_t QueueMatrix::ring_base(int receiver, int sender) const {
  CMPI_EXPECTS(receiver >= 0 && receiver < nranks_);
  CMPI_EXPECTS(sender >= 0 && sender < nranks_);
  return base_ + (static_cast<std::uint64_t>(receiver) *
                      static_cast<std::uint64_t>(nranks_) +
                  static_cast<std::uint64_t>(sender)) *
                     ring_stride_;
}

SpscRing& QueueMatrix::ring(cxlsim::Accessor& acc, int receiver, int sender) {
  auto& view = views_[static_cast<std::size_t>(receiver) *
                          static_cast<std::size_t>(nranks_) +
                      static_cast<std::size_t>(sender)];
  if (!view.has_value()) {
    // The geometry was validated when the matrix was created/opened; a
    // failure here means the pool was corrupted underneath us.
    view.emplace(check_ok(SpscRing::attach(acc, ring_base(receiver, sender))));
  }
  return *view;
}

}  // namespace cmpi::queue
