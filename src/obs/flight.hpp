// Flight recorder (cmpi::obs).
//
// On a failure the process can still explain itself: flight_dump()
// writes the last N trace events plus a metrics snapshot to stderr (and,
// when CMPI_FLIGHT names a file, a JSON copy — first dump wins, so the
// file holds the earliest failure). Triggered from failure paths only:
// kPeerFailed cancellation, kCorruptPool attach, coherence-checker
// violations, failure-detector convictions, teardown with failures.
// Rate-limited to a handful of dumps per process so a failure storm
// can't flood stderr.
#pragma once

namespace cmpi::obs {

inline constexpr int kMaxFlightDumps = 4;

/// Emit a flight dump tagged with `reason` (immortal string preferred,
/// but the value is only read during the call). No-op when the flight
/// recorder is disabled or the per-process dump budget is exhausted.
void flight_dump(const char* reason);

/// Number of dumps emitted so far (tests).
[[nodiscard]] int flight_dump_count() noexcept;

/// Reset the dump budget (tests).
void flight_reset_for_test() noexcept;

}  // namespace cmpi::obs
