// cmpi::obs — unified telemetry: metrics registry, virtual-time trace
// recorder, flight-recorder dumps. Master header; the hot layers include
// this and speak only through the CMPI_OBS_* macros below.
//
// Cost model (the contract every layer relies on):
//   * Compiled out: building with -DCMPI_OBS=0 removes every macro body —
//     instrumented code is byte-identical to uninstrumented.
//   * Compiled in, disabled (the default): each macro is one relaxed
//     atomic-bool load plus a branch the compiler is told to predict
//     not-taken. No allocation, no locks, no stores.
//   * Enabled: counter bumps are relaxed adds on a per-rank-sharded slot;
//     trace appends take the owning ring's uncontended mutex.
//
// Enablement comes from the environment (read once, idempotently, by the
// first Universe):
//   CMPI_TRACE=out.json    record spans/instants, export Chrome trace
//                          JSON at Universe teardown (load in Perfetto)
//   CMPI_METRICS=out.json  aggregate metrics, export JSON at teardown
//   CMPI_FLIGHT=1|path     flight-recorder dumps on failure (default on
//                          whenever tracing is on; path adds a JSON copy)
//   CMPI_OBS=0             master kill switch for all of the above
// or programmatically via configure() (tests, benches).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simtime/vclock.hpp"

// Compile-time gate. Default on: the runtime check is cheap enough for
// production builds, and the perf-smoke CI gate holds with it compiled in.
#ifndef CMPI_OBS
#define CMPI_OBS 1
#endif

namespace cmpi::obs {

struct Config {
  bool metrics = false;
  bool trace = false;
  bool flight = false;
  std::string metrics_path;      // empty: no teardown metrics file
  std::string trace_path;        // empty: no teardown trace file
  std::string flight_path;       // empty: flight dumps go to stderr only
  std::size_t trace_capacity = std::size_t{1} << 14;  // events per rank
  std::size_t flight_events = 64;  // tail length in a flight dump
};

/// Apply a configuration (tests/benches). Flips the runtime enable bits;
/// call before ranks start recording.
void configure(const Config& config);

/// Read CMPI_TRACE / CMPI_METRICS / CMPI_FLIGHT / CMPI_OBS once per
/// process and configure() accordingly. Idempotent; later calls are
/// no-ops (including after an explicit configure(), which also counts).
void configure_from_env();

/// Active configuration.
[[nodiscard]] const Config& config();

namespace detail {
extern std::atomic<bool> g_metrics_on;
extern std::atomic<bool> g_trace_on;
extern std::atomic<bool> g_flight_on;
}  // namespace detail

[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool flight_enabled() noexcept {
  return detail::g_flight_on.load(std::memory_order_relaxed);
}

/// Per-thread identity installed by RankScope on rank threads.
struct RankInfo {
  int rank = -1;
  int node = 0;
  int tenant = 0;  // pool-service tenant id; 0 = untenanted
  const simtime::VClock* clock = nullptr;
  TraceRing* ring = nullptr;
  std::size_t shard = 0;  // metrics shard; 0 for non-rank threads
};

namespace detail {
extern thread_local RankInfo t_rank;
}  // namespace detail

/// Current rank's virtual time, 0 on threads without a clock.
[[nodiscard]] inline simtime::Ns now_ns() noexcept {
  const simtime::VClock* clock = detail::t_rank.clock;
  return clock != nullptr ? clock->now() : 0;
}

/// Installs this thread's rank identity (metrics shard, trace ring, log
/// prefix context) for the scope's lifetime; restores the previous
/// identity on exit. The runtime wraps each rank thread's body in one.
class RankScope {
 public:
  RankScope(int rank, int node, const simtime::VClock* clock,
            int tenant = 0);
  ~RankScope();
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  RankInfo saved_;
};

/// Append an event to the calling thread's trace ring (no-op when the
/// thread has none). `name`/`arg_name` must be immortal strings.
inline void trace_event(char phase, const char* name,
                        const char* arg_name = nullptr,
                        std::uint64_t arg = 0) noexcept {
  TraceRing* ring = detail::t_rank.ring;
  if (ring != nullptr) {
    ring->append(TraceEvent{name, arg_name, now_ns(), arg, phase});
  }
}

/// RAII span: 'B' at construction, matching 'E' at destruction. The ring
/// is captured at construction so the pair stays matched even if tracing
/// toggles mid-span.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, const char* arg_name = nullptr,
                     std::uint64_t arg = 0) noexcept {
#if CMPI_OBS
    if (__builtin_expect(trace_enabled(), 0)) {
      ring_ = detail::t_rank.ring;
      if (ring_ != nullptr) {
        name_ = name;
        ring_->append(TraceEvent{name, arg_name, now_ns(), arg, 'B'});
      }
    }
#else
    (void)name;
    (void)arg_name;
    (void)arg;
#endif
  }
  ~SpanGuard() {
#if CMPI_OBS
    if (ring_ != nullptr) {
      ring_->append(TraceEvent{name_, nullptr, now_ns(), 0, 'E'});
    }
#endif
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
#if CMPI_OBS
  TraceRing* ring_ = nullptr;
  const char* name_ = nullptr;
#endif
};

/// Write the configured teardown artifacts (CMPI_METRICS / CMPI_TRACE
/// files). Overwrites: the recorder state is cumulative, so the last
/// writer produces the complete picture. Called by Universe::run().
void export_artifacts();

}  // namespace cmpi::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. All hot-path hooks go through these so that
// -DCMPI_OBS=0 compiles them away entirely.

#define CMPI_OBS_CONCAT_IMPL(a, b) a##b
#define CMPI_OBS_CONCAT(a, b) CMPI_OBS_CONCAT_IMPL(a, b)

#if CMPI_OBS

/// Bump counter `name` (string literal) by `n`.
#define CMPI_OBS_COUNT(name, n)                                       \
  do {                                                                \
    if (__builtin_expect(::cmpi::obs::metrics_enabled(), 0)) {        \
      static ::cmpi::obs::Counter& cmpi_obs_counter_cached =          \
          ::cmpi::obs::MetricsRegistry::instance().counter(name);     \
      cmpi_obs_counter_cached.add(n);                                 \
    }                                                                 \
  } while (0)

/// Record `v` into high-water gauge `name`.
#define CMPI_OBS_GAUGE_MAX(name, v)                                   \
  do {                                                                \
    if (__builtin_expect(::cmpi::obs::metrics_enabled(), 0)) {        \
      static ::cmpi::obs::Gauge& cmpi_obs_gauge_cached =              \
          ::cmpi::obs::MetricsRegistry::instance().gauge(name);       \
      cmpi_obs_gauge_cached.record(v);                                \
    }                                                                 \
  } while (0)

/// Record sample `v` (virtual ns) into histogram `name`.
#define CMPI_OBS_HIST(name, v)                                        \
  do {                                                                \
    if (__builtin_expect(::cmpi::obs::metrics_enabled(), 0)) {        \
      static ::cmpi::obs::Histogram& cmpi_obs_hist_cached =           \
          ::cmpi::obs::MetricsRegistry::instance().histogram(name);   \
      cmpi_obs_hist_cached.record(v);                                 \
    }                                                                 \
  } while (0)

/// Instant event on this rank's trace timeline.
#define CMPI_OBS_INSTANT(name)                                        \
  do {                                                                \
    if (__builtin_expect(::cmpi::obs::trace_enabled(), 0)) {          \
      ::cmpi::obs::trace_event('i', name);                            \
    }                                                                 \
  } while (0)

/// Instant event with one numeric argument (arg_name a string literal).
#define CMPI_OBS_INSTANT_ARG(name, arg_name, arg)                     \
  do {                                                                \
    if (__builtin_expect(::cmpi::obs::trace_enabled(), 0)) {          \
      ::cmpi::obs::trace_event('i', name, arg_name,                   \
                               static_cast<std::uint64_t>(arg));      \
    }                                                                 \
  } while (0)

/// Span covering the rest of the enclosing scope.
#define CMPI_OBS_SPAN(name) \
  ::cmpi::obs::SpanGuard CMPI_OBS_CONCAT(cmpi_obs_span_, __COUNTER__)(name)

/// Span with one numeric argument attached to the 'B' event.
#define CMPI_OBS_SPAN_ARG(name, arg_name, arg)                     \
  ::cmpi::obs::SpanGuard CMPI_OBS_CONCAT(cmpi_obs_span_,           \
                                         __COUNTER__)(            \
      name, arg_name, static_cast<std::uint64_t>(arg))

/// Flight-recorder trigger (failure paths only — never hot).
#define CMPI_OBS_FLIGHT(reason)                                       \
  do {                                                                \
    if (__builtin_expect(::cmpi::obs::flight_enabled(), 0)) {         \
      ::cmpi::obs::flight_dump(reason);                               \
    }                                                                 \
  } while (0)

#else  // !CMPI_OBS

#define CMPI_OBS_COUNT(name, n) \
  do {                          \
  } while (0)
#define CMPI_OBS_GAUGE_MAX(name, v) \
  do {                              \
  } while (0)
#define CMPI_OBS_HIST(name, v) \
  do {                         \
  } while (0)
#define CMPI_OBS_INSTANT(name) \
  do {                         \
  } while (0)
#define CMPI_OBS_INSTANT_ARG(name, arg_name, arg) \
  do {                                            \
  } while (0)
#define CMPI_OBS_SPAN(name) \
  do {                      \
  } while (0)
#define CMPI_OBS_SPAN_ARG(name, arg_name, arg) \
  do {                                         \
  } while (0)
#define CMPI_OBS_FLIGHT(reason) \
  do {                          \
  } while (0)

#endif  // CMPI_OBS
