#include "obs/obs.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "common/log.hpp"

namespace cmpi::obs {

namespace detail {
std::atomic<bool> g_metrics_on{false};
std::atomic<bool> g_trace_on{false};
std::atomic<bool> g_flight_on{false};
thread_local RankInfo t_rank{};
}  // namespace detail

namespace {

std::mutex g_config_mutex;
Config g_config;
bool g_configured = false;

// Truthy for "1"/"true"/"on"; a value with a '.' or '/' is a path (also
// truthy). "0"/"false"/"off" disable.
bool env_truthy(const char* v) noexcept {
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0);
}

bool env_is_path(const char* v) noexcept {
  return std::strchr(v, '.') != nullptr || std::strchr(v, '/') != nullptr;
}

void apply_locked(const Config& config) {
  g_config = config;
  g_configured = true;
  TraceRecorder::instance().set_capacity(config.trace_capacity);
  detail::g_metrics_on.store(config.metrics, std::memory_order_relaxed);
  detail::g_trace_on.store(config.trace, std::memory_order_relaxed);
  detail::g_flight_on.store(config.flight, std::memory_order_relaxed);
}

}  // namespace

void configure(const Config& config) {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  apply_locked(config);
}

void configure_from_env() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  if (g_configured) {
    return;
  }
  Config config;
  const char* master = std::getenv("CMPI_OBS");
  const bool killed = master != nullptr && !env_truthy(master);
  if (!killed) {
    if (const char* trace = std::getenv("CMPI_TRACE")) {
      if (env_truthy(trace)) {
        config.trace = true;
        if (env_is_path(trace)) {
          config.trace_path = trace;
        }
      }
    }
    if (const char* metrics = std::getenv("CMPI_METRICS")) {
      if (env_truthy(metrics)) {
        config.metrics = true;
        if (env_is_path(metrics)) {
          config.metrics_path = metrics;
        }
      }
    }
    // Flight dumps ride along with tracing unless explicitly toggled.
    config.flight = config.trace;
    if (const char* flight = std::getenv("CMPI_FLIGHT")) {
      config.flight = env_truthy(flight);
      if (config.flight && env_is_path(flight)) {
        config.flight_path = flight;
      }
    }
  }
  apply_locked(config);
}

const Config& config() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  return g_config;
}

std::size_t shard_index() noexcept { return detail::t_rank.shard; }

RankScope::RankScope(int rank, int node, const simtime::VClock* clock,
                     int tenant)
    : saved_(detail::t_rank) {
  RankInfo info;
  info.rank = rank;
  info.node = node;
  info.tenant = tenant;
  info.clock = clock;
  // Shard 0 stays the home of non-rank threads so rank 0 never shares a
  // cacheline with stray helpers.
  info.shard = static_cast<std::size_t>(rank + 1) % kMetricShards;
  if (trace_enabled() || flight_enabled()) {
    info.ring = &TraceRecorder::instance().ring(node, rank);
  }
  detail::t_rank = info;
  log_set_thread_context(rank, [] { return static_cast<double>(now_ns()); });
}

RankScope::~RankScope() {
  detail::t_rank = saved_;
  if (saved_.rank >= 0) {
    log_set_thread_context(saved_.rank,
                           [] { return static_cast<double>(now_ns()); });
  } else {
    log_set_thread_context(-1, nullptr);
  }
}

void export_artifacts() {
  Config snapshot_config;
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    snapshot_config = g_config;
  }
  if (snapshot_config.metrics && !snapshot_config.metrics_path.empty()) {
    std::ofstream out(snapshot_config.metrics_path);
    if (out) {
      MetricsRegistry::instance().write_json(out);
    } else {
      log_warn("obs: cannot write CMPI_METRICS file '%s'",
               snapshot_config.metrics_path.c_str());
    }
  }
  if (snapshot_config.trace && !snapshot_config.trace_path.empty()) {
    std::ofstream out(snapshot_config.trace_path);
    if (out) {
      TraceRecorder::instance().write_chrome_json(out);
    } else {
      log_warn("obs: cannot write CMPI_TRACE file '%s'",
               snapshot_config.trace_path.c_str());
    }
  }
}

}  // namespace cmpi::obs
