// Metrics registry (cmpi::obs).
//
// One process-wide registry of named metric families:
//
//   * Counter   — monotonically increasing u64, sharded per rank so the
//                 hot layers never contend on one cacheline,
//   * Gauge     — high-water mark (max) of a u64, sharded the same way,
//   * Histogram — log2-bucketed distribution of virtual-time durations
//                 (or any non-negative quantity), plus count and sum.
//
// Two ways for data to reach a snapshot:
//
//   1. Native instruments: a layer resolves a family once
//      (`registry.counter("ring.enqueues")`) and bumps it from the hot
//      path. Resolution takes the registry mutex; the bump itself is a
//      relaxed atomic add on this rank's shard.
//   2. Snapshot providers: a pre-existing stats struct (CacheSim::Stats,
//      p2p::CommStats, runtime::RecoveryCounters) registers a callback
//      that renders its current values as named samples. Snapshots sum
//      providers into the same namespace as native counters, so the
//      legacy structs become registered metric families instead of
//      parallel one-offs. When a provider unregisters (its owner dies),
//      its final samples are folded into a retired accumulator — totals
//      stay cumulative across short-lived owners (per-run endpoints,
//      bootstrap caches).
//
// Family objects are never destroyed once created (callers cache
// references); reset_for_test() zeroes values in place.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cmpi::obs {

/// Shard count for counters/gauges. Rank r writes shard (r + 1) % kShards
/// (shard 0 doubles as the home of non-rank threads); collisions only
/// share a cacheline, never lose counts.
inline constexpr std::size_t kMetricShards = 32;

/// Shard index of the calling thread (from the installed RankScope; 0 for
/// threads outside any rank). Defined in obs.cpp.
[[nodiscard]] std::size_t shard_index() noexcept;

class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    slots_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const Slot& s : slots_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }
  void reset() noexcept {
    for (Slot& s : slots_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kMetricShards> slots_{};
};

/// High-water gauge: record() keeps the maximum ever seen.
class Gauge {
 public:
  void record(std::uint64_t v) noexcept {
    std::atomic<std::uint64_t>& slot = slots_[shard_index()].v;
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    std::uint64_t best = 0;
    for (const Slot& s : slots_) {
      best = std::max(best, s.v.load(std::memory_order_relaxed));
    }
    return best;
  }
  void reset() noexcept {
    for (Slot& s : slots_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kMetricShards> slots_{};
};

/// Log2-bucket histogram: a sample v lands in bucket bit_width(v), so
/// bucket b holds samples in [2^(b-1), 2^b). Values are virtual
/// nanoseconds in every current use, but any non-negative double works
/// (negative samples clamp to 0).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] std::array<std::uint64_t, kBuckets> buckets() const noexcept;
  /// Upper bound of the bucket holding the q-quantile sample (q in
  /// [0, 1]): a conservative estimate with at most 2x overshoot, which is
  /// what a log2 histogram can promise. 0 on an empty histogram. p50 =
  /// quantile(0.5), p99 = quantile(0.99) — what the tune controller reads.
  [[nodiscard]] double quantile(double q) const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// One value a snapshot provider contributes, summed by name.
struct Sample {
  std::string name;
  std::uint64_t value = 0;
};

using Provider = std::function<std::vector<Sample>()>;

/// Point-in-time view of every family (see MetricsRegistry::snapshot).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  /// Same semantics as Histogram::quantile, over this snapshot.
  [[nodiscard]] double quantile(double q) const noexcept;
};

struct MetricsSnapshot {
  /// Native counters + live provider samples + retired provider totals,
  /// summed per name.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value by name (0 when absent) — test/report convenience.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Get-or-create. The returned reference is valid for the process
  /// lifetime — cache it in a function-local static on hot paths.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Register a snapshot provider; returns a token for unregistration.
  /// The callback runs under the registry mutex whenever snapshot() is
  /// taken, from an arbitrary thread — it must read only data that is
  /// safe to read concurrently (atomics, or internally-locked state).
  std::uint64_t register_provider(Provider fn);
  /// Unregister, folding the provider's final samples into the retired
  /// accumulator so totals stay cumulative.
  void unregister_provider(std::uint64_t token);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Snapshot rendered as a JSON document:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {"count": N, "sum": S, "buckets": [...]}}}
  /// Histogram bucket arrays are trimmed to the last non-empty bucket.
  void write_json(std::ostream& os) const;

  /// Zero every family and drop retired accumulations; live providers and
  /// family objects survive (cached references stay valid).
  void reset_for_test();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // unique_ptr values keep family addresses stable across rehash.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::uint64_t, Provider> providers_;
  std::map<std::string, std::uint64_t> retired_;
  std::uint64_t next_token_ = 1;
};

/// RAII provider registration that survives a move of its owner (the
/// moved-from copy forgets the token, so unregistration happens exactly
/// once). Registering with an empty token (0) is a no-op handle.
class ProviderRegistration {
 public:
  ProviderRegistration() = default;
  explicit ProviderRegistration(Provider fn)
      : token_(MetricsRegistry::instance().register_provider(std::move(fn))) {}
  ProviderRegistration(ProviderRegistration&& other) noexcept
      : token_(other.token_) {
    other.token_ = 0;
  }
  ProviderRegistration& operator=(ProviderRegistration&& other) noexcept {
    if (this != &other) {
      release();
      token_ = other.token_;
      other.token_ = 0;
    }
    return *this;
  }
  ProviderRegistration(const ProviderRegistration&) = delete;
  ProviderRegistration& operator=(const ProviderRegistration&) = delete;
  ~ProviderRegistration() { release(); }

 private:
  void release() noexcept {
    if (token_ != 0) {
      MetricsRegistry::instance().unregister_provider(token_);
      token_ = 0;
    }
  }
  std::uint64_t token_ = 0;
};

}  // namespace cmpi::obs
