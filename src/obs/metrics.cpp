#include "metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace cmpi::obs {

void Histogram::record(double v) noexcept {
  const double clamped = v < 0 ? 0 : v;
  // Bucket by the bit width of the integer part: bucket 0 holds [0, 1),
  // bucket b holds [2^(b-1), 2^b). Durations beyond 2^63 ns saturate.
  const auto n = clamped >= 9.2e18 ? ~std::uint64_t{0}
                                   : static_cast<std::uint64_t>(clamped);
  const auto bucket = static_cast<std::size_t>(std::bit_width(n));
  buckets_[std::min(bucket, kBuckets - 1)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ += clamped;  // C++20 atomic<double> fetch-add, relaxed is fine here
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) {
    return 0;
  }
  const double clamped = q < 0 ? 0 : (q > 1 ? 1 : q);
  // Rank of the quantile sample, 1-based: ceil(q * count), floored at 1
  // so quantile(0) is the smallest recorded bucket.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count)));
  rank = std::max<std::uint64_t>(1, std::min(rank, count));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Bucket b holds [2^(b-1), 2^b) (bucket 0: [0, 1)); report the
      // upper bound.
      return std::ldexp(1.0, static_cast<int>(b));
    }
  }
  // count said there are samples the buckets do not show — only possible
  // mid-record from another thread; the last bucket is the safe answer.
  return std::ldexp(1.0, static_cast<int>(buckets.size() - 1));
}

double Histogram::quantile(double q) const noexcept {
  HistogramSnapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.buckets = buckets();
  return snap.quantile(q);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: rank threads may bump counters during static
  // destruction of other objects.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::register_provider(Provider fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t token = next_token_++;
  providers_.emplace(token, std::move(fn));
  return token;
}

void MetricsRegistry::unregister_provider(std::uint64_t token) {
  Provider fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = providers_.find(token);
    if (it == providers_.end()) {
      return;
    }
    fn = std::move(it->second);
    providers_.erase(it);
  }
  // Run the final read outside the lock: the provider's owner is being
  // destroyed on this thread, so the callback is still safe to call, and
  // keeping it out of the lock avoids ordering surprises with snapshot().
  std::vector<Sample> last = fn();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Sample& s : last) {
    retired_[s.name] += s.value;
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] += c->total();
  }
  for (const auto& [name, value] : retired_) {
    snap.counters[name] += value;
  }
  for (const auto& [token, fn] : providers_) {
    (void)token;
    for (const Sample& s : fn()) {
      snap.counters[s.name] += s.value;
    }
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = std::max(snap.gauges[name], g->max());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot& hs = snap.histograms[name];
    hs.count = h->count();
    hs.sum = h->sum();
    hs.buckets = h->buckets();
  }
  return snap;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  const MetricsSnapshot snap = snapshot();
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << value;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << value;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", h.sum);
    os << buf << ", \"buckets\": [";
    std::size_t last = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] != 0) {
        last = i + 1;
      }
    }
    for (std::size_t i = 0; i < last; ++i) {
      os << (i == 0 ? "" : ", ") << h.buckets[i];
    }
    os << "]}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

void MetricsRegistry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    (void)name;
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h->reset();
  }
  retired_.clear();
}

}  // namespace cmpi::obs
