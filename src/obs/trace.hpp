// Trace recorder (cmpi::obs).
//
// Each rank owns a bounded ring of span/instant events stamped with
// virtual time. Rings are keyed by (node, rank) and survive respawn, so
// a crashed rank's pre-crash events and its successor incarnation's
// events land on the same timeline. The whole recording exports as
// Chrome trace_event JSON (one pid per simulated node, one tid per
// rank) that chrome://tracing and ui.perfetto.dev load directly.
//
// Event names must be string literals (or otherwise immortal): the ring
// stores the pointer, not a copy — that keeps an event at 32 bytes and
// the record path allocation-free.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>
#include <vector>

namespace cmpi::obs {

struct TraceEvent {
  const char* name = nullptr;      // immortal string (literal)
  const char* arg_name = nullptr;  // optional, immortal string
  double ts_ns = 0;                // virtual time
  std::uint64_t arg = 0;
  char phase = 'i';  // 'B' span begin, 'E' span end, 'i' instant
};

/// One rank's bounded event ring. The owning rank thread appends; other
/// threads only read (flight dumps, export after join) — every access
/// goes through the ring mutex, which is only ever touched when tracing
/// is enabled.
class TraceRing {
 public:
  explicit TraceRing(int node, int rank, std::size_t capacity)
      : node_(node), rank_(rank), capacity_(capacity ? capacity : 1) {}

  void append(TraceEvent ev) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() < capacity_) {
      events_.push_back(ev);
    } else {
      events_[next_ % capacity_] = ev;
      dropped_ += 1;
    }
    ++next_;
  }

  /// Events in append order, oldest first.
  [[nodiscard]] std::vector<TraceEvent> ordered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    if (events_.size() < capacity_) {
      out = events_;
    } else {
      const std::size_t head = next_ % capacity_;
      out.insert(out.end(), events_.begin() + static_cast<long>(head),
                 events_.end());
      out.insert(out.end(), events_.begin(),
                 events_.begin() + static_cast<long>(head));
    }
    return out;
  }

  [[nodiscard]] int node() const noexcept { return node_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

 private:
  const int node_;
  const int rank_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t next_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Process-wide collection of rank rings.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Get-or-create the ring for (node, rank). Stable address for the
  /// process lifetime; respawned incarnations reuse their predecessor's
  /// ring.
  TraceRing& ring(int node, int rank);

  /// Ring capacity used for rings created after this call.
  void set_capacity(std::size_t events);

  /// Emit the whole recording as Chrome trace_event JSON. Repairs what a
  /// bounded ring can break: per-tid timestamps are clamped monotone
  /// (virtual clocks only move forward, but belt and braces), 'E' events
  /// whose 'B' was overwritten are dropped, and spans still open at the
  /// end get a synthetic 'E' so viewers don't render them to infinity.
  void write_chrome_json(std::ostream& os) const;

  /// Most recent `limit` events across all rings, oldest first — the
  /// flight recorder's view.
  [[nodiscard]] std::vector<std::pair<const TraceRing*, TraceEvent>>
  tail(std::size_t limit) const;

  /// Drop all rings (cached TraceRing pointers become invalid — only for
  /// tests that re-run recordings from scratch).
  void reset_for_test();

 private:
  TraceRecorder() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::size_t capacity_ = 1 << 14;
};

}  // namespace cmpi::obs
