#include "trace.hpp"

#include <algorithm>
#include <cstdio>

namespace cmpi::obs {

TraceRecorder& TraceRecorder::instance() {
  // Leaked on purpose, same rationale as MetricsRegistry.
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

TraceRing& TraceRecorder::ring(int node, int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& r : rings_) {
    if (r->node() == node && r->rank() == rank) {
      return *r;
    }
  }
  rings_.push_back(std::make_unique<TraceRing>(node, rank, capacity_));
  return *rings_.back();
}

void TraceRecorder::set_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = events ? events : 1;
}

std::vector<std::pair<const TraceRing*, TraceEvent>> TraceRecorder::tail(
    std::size_t limit) const {
  std::vector<std::pair<const TraceRing*, TraceEvent>> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& r : rings_) {
      for (const TraceEvent& ev : r->ordered()) {
        all.emplace_back(r.get(), ev);
      }
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second.ts_ns < b.second.ts_ns;
  });
  if (all.size() > limit) {
    all.erase(all.begin(), all.end() - static_cast<long>(limit));
  }
  return all;
}

namespace {

void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

void write_ts_us(std::ostream& os, double ts_ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", ts_ns / 1000.0);
  os << buf;
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  std::vector<const TraceRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) {
      rings.push_back(r.get());
    }
  }
  std::sort(rings.begin(), rings.end(),
            [](const TraceRing* a, const TraceRing* b) {
              return a->rank() < b->rank();
            });

  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto comma = [&] {
    os << (first ? "" : ",\n");
    first = false;
  };

  // Metadata: name each pid after its simulated node, each tid after its
  // rank. One metadata pair per ring; duplicate process_name entries for
  // a shared node are harmless to the viewers.
  for (const TraceRing* r : rings) {
    comma();
    os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << r->node()
       << ", \"tid\": " << r->rank() << ", \"args\": {\"name\": \"node "
       << r->node() << "\"}}";
    comma();
    os << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << r->node()
       << ", \"tid\": " << r->rank() << ", \"args\": {\"name\": \"rank "
       << r->rank() << "\"}}";
  }

  for (const TraceRing* r : rings) {
    const std::vector<TraceEvent> events = r->ordered();
    std::vector<TraceEvent> open;  // B events awaiting their E
    double last_ts = 0;
    bool have_ts = false;
    for (const TraceEvent& ev : events) {
      TraceEvent out = ev;
      if (have_ts) {
        out.ts_ns = std::max(out.ts_ns, last_ts);
      }
      last_ts = out.ts_ns;
      have_ts = true;
      if (out.phase == 'E') {
        if (open.empty()) {
          // Its B was overwritten by the bounded ring: drop rather than
          // let the viewer pair it with an unrelated B.
          continue;
        }
        open.pop_back();
      } else if (out.phase == 'B') {
        open.push_back(out);
      }
      comma();
      os << "{\"ph\": \"" << out.phase << "\", \"name\": ";
      write_escaped(os, out.name);
      os << ", \"pid\": " << r->node() << ", \"tid\": " << r->rank()
         << ", \"ts\": ";
      write_ts_us(os, out.ts_ns);
      if (out.phase == 'i') {
        os << ", \"s\": \"t\"";
      }
      if (out.arg_name != nullptr) {
        os << ", \"args\": {";
        write_escaped(os, out.arg_name);
        os << ": " << out.arg << "}";
      }
      os << "}";
    }
    // Close spans left open (rank crashed mid-span, or the recording
    // simply stopped) at the last timestamp seen on this tid.
    while (!open.empty()) {
      const TraceEvent& b = open.back();
      comma();
      os << "{\"ph\": \"E\", \"name\": ";
      write_escaped(os, b.name);
      os << ", \"pid\": " << r->node() << ", \"tid\": " << r->rank()
         << ", \"ts\": ";
      write_ts_us(os, last_ts);
      os << "}";
      open.pop_back();
    }
  }
  os << "\n], \"displayTimeUnit\": \"ns\"}\n";
}

void TraceRecorder::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
}

}  // namespace cmpi::obs
