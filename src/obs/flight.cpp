#include "obs/flight.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/obs.hpp"

namespace cmpi::obs {

namespace {

std::atomic<int> g_dumps{0};
std::mutex g_dump_mutex;  // serializes whole dumps so they don't interleave

void render_tail(std::ostream& os, std::size_t limit) {
  const auto events = TraceRecorder::instance().tail(limit);
  for (const auto& [ring, ev] : events) {
    char line[192];
    std::snprintf(line, sizeof(line), "  [n%d/r%d] %12.1fns %c %s",
                  ring->node(), ring->rank(), ev.ts_ns, ev.phase, ev.name);
    os << line;
    if (ev.arg_name != nullptr) {
      os << " " << ev.arg_name << "=" << ev.arg;
    }
    os << "\n";
  }
  if (events.empty()) {
    os << "  (no trace events recorded — tracing off?)\n";
  }
}

}  // namespace

void flight_dump(const char* reason) {
  if (!flight_enabled()) {
    return;
  }
  const int n = g_dumps.fetch_add(1, std::memory_order_relaxed);
  if (n >= kMaxFlightDumps) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_dump_mutex);
  const Config cfg = config();

  std::ostringstream text;
  text << "=== cmpi flight recorder dump " << (n + 1) << "/" << kMaxFlightDumps
       << " — " << reason << " ===\n";
  text << "last " << cfg.flight_events << " events (virtual time order):\n";
  render_tail(text, cfg.flight_events);
  text << "metrics snapshot:\n";
  MetricsRegistry::instance().write_json(text);
  text << "=== end flight dump ===\n";
  const std::string rendered = text.str();
  std::fwrite(rendered.data(), 1, rendered.size(), stderr);

  // First dump wins the file: the earliest failure is the interesting one.
  if (n == 0 && !cfg.flight_path.empty()) {
    std::ofstream out(cfg.flight_path);
    if (out) {
      out << "{\"reason\": \"" << reason << "\",\n\"metrics\": ";
      MetricsRegistry::instance().write_json(out);
      out << "}\n";
    }
  }
}

int flight_dump_count() noexcept {
  const int n = g_dumps.load(std::memory_order_relaxed);
  return n > kMaxFlightDumps ? kMaxFlightDumps : n;
}

void flight_reset_for_test() noexcept {
  g_dumps.store(0, std::memory_order_relaxed);
}

}  // namespace cmpi::obs
