#include "obs/flight.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>

#include "obs/obs.hpp"

namespace cmpi::obs {

namespace {

std::atomic<int> g_dumps{0};
std::mutex g_dump_mutex;  // serializes whole dumps so they don't interleave
/// Tenant ids that already claimed their JSON file this process (guarded
/// by g_dump_mutex). Key 0 is the untenanted base file.
std::set<int> g_file_claimed;

/// Per-tenant JSON file name: "flight.json" stays as-is for tenant 0 and
/// becomes "flight.tenant3.json" for tenant 3, so concurrent tenant
/// failures each keep their own first-failure dump instead of racing for
/// one file.
std::string tenant_file_path(const std::string& base, int tenant) {
  if (tenant <= 0) {
    return base;
  }
  const std::string suffix = ".tenant" + std::to_string(tenant);
  const std::size_t dot = base.find_last_of('.');
  const std::size_t slash = base.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

void render_tail(std::ostream& os, std::size_t limit) {
  const auto events = TraceRecorder::instance().tail(limit);
  for (const auto& [ring, ev] : events) {
    char line[192];
    std::snprintf(line, sizeof(line), "  [n%d/r%d] %12.1fns %c %s",
                  ring->node(), ring->rank(), ev.ts_ns, ev.phase, ev.name);
    os << line;
    if (ev.arg_name != nullptr) {
      os << " " << ev.arg_name << "=" << ev.arg;
    }
    os << "\n";
  }
  if (events.empty()) {
    os << "  (no trace events recorded — tracing off?)\n";
  }
}

}  // namespace

void flight_dump(const char* reason) {
  if (!flight_enabled()) {
    return;
  }
  const int n = g_dumps.fetch_add(1, std::memory_order_relaxed);
  if (n >= kMaxFlightDumps) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_dump_mutex);
  const Config cfg = config();

  std::ostringstream text;
  text << "=== cmpi flight recorder dump " << (n + 1) << "/" << kMaxFlightDumps
       << " — " << reason << " ===\n";
  text << "last " << cfg.flight_events << " events (virtual time order):\n";
  render_tail(text, cfg.flight_events);
  text << "metrics snapshot:\n";
  MetricsRegistry::instance().write_json(text);
  text << "=== end flight dump ===\n";
  const std::string rendered = text.str();
  std::fwrite(rendered.data(), 1, rendered.size(), stderr);

  // First dump wins the file — per tenant: each tenant's earliest failure
  // lands in its own suffixed JSON, so concurrent tenant failures don't
  // race for a single file. The dump *budget* above stays global.
  const int tenant = detail::t_rank.tenant;
  if (!cfg.flight_path.empty() && g_file_claimed.insert(tenant).second) {
    std::ofstream out(tenant_file_path(cfg.flight_path, tenant));
    if (out) {
      out << "{\"reason\": \"" << reason << "\",\n\"tenant\": " << tenant
          << ",\n\"metrics\": ";
      MetricsRegistry::instance().write_json(out);
      out << "}\n";
    }
  }
}

int flight_dump_count() noexcept {
  const int n = g_dumps.load(std::memory_order_relaxed);
  return n > kMaxFlightDumps ? kMaxFlightDumps : n;
}

void flight_reset_for_test() noexcept {
  std::lock_guard<std::mutex> lock(g_dump_mutex);
  g_dumps.store(0, std::memory_order_relaxed);
  g_file_claimed.clear();
}

}  // namespace cmpi::obs
