// Simulated CXL pooled-memory device exposed as a dax-style mapping.
//
// The paper's platform (Niagara 2.0) is a multi-headed device: up to four
// hosts each attach through a dedicated CXL port and the host kernel exposes
// the pool as a /dev/daxX.Y character device that processes mmap. We
// reproduce that topology with a memfd: the memfd is the pool's backing
// DRAM, each simulated node "attaches a head" and maps it. Because it is a
// real file descriptor, forked processes can map the same pool — the
// multiprocess example demonstrates genuine cross-address-space sharing.
//
// What the device does NOT provide (faithfully to the hardware):
//   * cross-host cache coherence — each node's CacheSim sits between its
//     ranks and the pool; stores stay in the node cache until flushed,
//   * cross-host atomic read-modify-write — the accessor API offers none.
//
// A small control block (separate mapping, not part of the pool the Arena
// manages) holds the process-shared lock that serializes bulk pool copies
// and the MTRR-style cacheability registers.
#pragma once

#include <pthread.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/align.hpp"
#include "common/status.hpp"
#include "cxlsim/timing.hpp"

namespace cmpi::cxlsim {

class CacheSim;
class CoherenceChecker;
class FaultInjector;
struct FaultPlan;

/// Cacheability attribute of a physical range, as programmed via MTRRs in
/// the paper's §3.5 study.
enum class Cacheability : std::uint8_t {
  kWriteBack = 0,   ///< normal cached access; coherence needs explicit flushes
  kUncachable = 1,  ///< every access goes straight to the device
};

/// MTRR-style range registers: a handful of variable ranges over the pool.
struct MtrrTable {
  static constexpr std::size_t kMaxRanges = 8;
  struct Range {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    Cacheability type = Cacheability::kWriteBack;
  };
  std::array<Range, kMaxRanges> ranges{};
  std::uint32_t count = 0;
};

/// The simulated pooled-memory device. Create once, then attach one head
/// per simulated node. Thread-safe where noted.
class DaxDevice {
 public:
  /// Create a pool of `size` bytes (rounded up to the 2 MiB dax mapping
  /// granularity). `heads` is the number of ports the platform exposes
  /// (Niagara 2.0: 4).
  static Result<std::unique_ptr<DaxDevice>> create(
      std::size_t size, unsigned heads = 4,
      const CxlTimingParams& timing = CxlTimingParams{});

  ~DaxDevice();
  DaxDevice(const DaxDevice&) = delete;
  DaxDevice& operator=(const DaxDevice&) = delete;

  /// The mapped pool, as the host kernel would hand it to mmap callers.
  [[nodiscard]] std::span<std::byte> pool() noexcept {
    return {pool_base_, size_};
  }
  [[nodiscard]] std::span<const std::byte> pool() const noexcept {
    return {pool_base_, size_};
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] unsigned heads() const noexcept { return heads_; }

  /// Backing fd, so forked processes can re-map the same pool.
  [[nodiscard]] int fd() const noexcept { return pool_fd_; }

  /// Program a cacheability range (MTRR write). Returns an error when the
  /// register file is full or the range is malformed. Not thread-safe with
  /// concurrent accesses (matches real MTRR reprogramming discipline).
  Status set_cacheability(std::uint64_t offset, std::uint64_t size,
                          Cacheability type);

  /// Effective cacheability of a byte offset (first matching range wins;
  /// default is write-back).
  [[nodiscard]] Cacheability cacheability(std::uint64_t offset) const noexcept;

  /// Timing model shared by all heads (device DIMMs + link are the shared
  /// resources that create contention).
  [[nodiscard]] CxlTimingModel& timing() noexcept { return timing_; }

  // --- Back-Invalidate hardware coherence (only active when
  //     timing().params().hw_coherence; see timing.hpp) ---
  /// Attach/detach a node cache to the coherence domain (CacheSim does
  /// this automatically). The registry is per-process.
  void register_cache(CacheSim* cache);
  void unregister_cache(CacheSim* cache);
  /// Number of attached caches (sizes the snoop cost).
  [[nodiscard]] std::size_t attached_caches() const;

  /// BI ownership acquisition for a line-aligned offset: every cache
  /// except `self` writes back a dirty copy and invalidates.
  void bi_write_acquire(std::uint64_t line_offset, CacheSim* self);
  /// BI shared acquisition: dirty peers write back (and keep the line).
  void bi_read_acquire(std::uint64_t line_offset, CacheSim* self);

  // --- Coherence-protocol checking (see coherence_checker.hpp) ---
  /// Attach a checker (idempotent). Enable before any pool traffic: lines
  /// cached earlier are tracked conservatively but without version history.
  /// Also enabled automatically by create() when the CMPI_COHERENCE_CHECK
  /// environment variable is set to anything but "0" (how the test suite
  /// turns it on globally).
  CoherenceChecker& enable_coherence_checker();
  void disable_coherence_checker();
  /// The attached checker, or nullptr when checking is off (the default).
  [[nodiscard]] CoherenceChecker* checker() const noexcept {
    return checker_.get();
  }

  // --- Fault injection (see fault_injector.hpp) ---
  /// Install a fault plan (replacing any earlier one). Install before the
  /// pool traffic the plan targets; typically done by Universe from
  /// UniverseConfig::fault_plan.
  FaultInjector& install_fault_plan(FaultPlan plan);
  void clear_fault_plan();
  /// The attached injector, or nullptr when no plan is installed (the
  /// default — a plan-free device pays one pointer compare per access).
  [[nodiscard]] FaultInjector* fault_injector() const noexcept {
    return fault_injector_.get();
  }

  /// Serialize a bulk pool copy against other bulk copies. Process-shared.
  /// u64-sized flag accesses use lock-free atomics instead and do not take
  /// this lock.
  class PoolGuard {
   public:
    explicit PoolGuard(DaxDevice& device) : mutex_(&device.ctrl_->pool_mutex) {
      pthread_mutex_lock(mutex_);
    }
    ~PoolGuard() { pthread_mutex_unlock(mutex_); }
    PoolGuard(const PoolGuard&) = delete;
    PoolGuard& operator=(const PoolGuard&) = delete;

   private:
    pthread_mutex_t* mutex_;
  };

 private:
  struct CtrlBlock {
    pthread_mutex_t pool_mutex;
    MtrrTable mtrr;
  };

  DaxDevice(int pool_fd, std::byte* pool_base, std::size_t size, int ctrl_fd,
            CtrlBlock* ctrl, unsigned heads, const CxlTimingParams& timing);

  int pool_fd_ = -1;
  std::byte* pool_base_ = nullptr;
  std::size_t size_ = 0;
  int ctrl_fd_ = -1;
  CtrlBlock* ctrl_ = nullptr;
  unsigned heads_ = 0;
  CxlTimingModel timing_;
  mutable std::mutex cache_registry_mutex_;
  std::vector<CacheSim*> caches_;
  std::unique_ptr<CoherenceChecker> checker_;
  std::unique_ptr<FaultInjector> fault_injector_;
};

}  // namespace cmpi::cxlsim
