#include "cxlsim/cache_sim.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/hash.hpp"
#include "cxlsim/coherence_checker.hpp"

namespace cmpi::cxlsim {

CacheSim::CacheSim(DaxDevice& device, Geometry geometry)
    : device_(device), geometry_(geometry) {
  CMPI_EXPECTS(geometry.sets > 0 && geometry.ways > 0);
  lines_.resize(geometry_.sets * geometry_.ways);
  device_.register_cache(this);
  obs_registration_ = obs::ProviderRegistration([this] {
    const Stats s = stats();
    return std::vector<obs::Sample>{{"cache.hits", s.hits},
                                    {"cache.misses", s.misses},
                                    {"cache.evictions", s.evictions},
                                    {"cache.writebacks", s.writebacks}};
  });
}

CacheSim::~CacheSim() { device_.unregister_cache(this); }

void CacheSim::bi_acquire_range(std::uint64_t offset, std::size_t size,
                                bool for_write) {
  if (!device_.timing().params().hw_coherence || size == 0) {
    return;
  }
  const std::uint64_t first = align_down(offset, kCacheLineSize);
  const std::uint64_t last = align_down(offset + size - 1, kCacheLineSize);
  for (std::uint64_t at = first; at <= last; at += kCacheLineSize) {
    if (for_write) {
      device_.bi_write_acquire(at, this);
    } else {
      device_.bi_read_acquire(at, this);
    }
  }
}

void CacheSim::external_invalidate(std::uint64_t line_offset) {
  std::lock_guard lock(mutex_);
  if (Line* line = find_line(line_offset); line != nullptr) {
    writeback_line(*line);
    line->valid = false;
    if (CoherenceChecker* chk = device_.checker()) {
      chk->on_invalidate(this, line_offset);
    }
  }
}

void CacheSim::external_writeback(std::uint64_t line_offset) {
  std::lock_guard lock(mutex_);
  if (Line* line = find_line(line_offset); line != nullptr && line->dirty) {
    writeback_line(*line);
  }
}

std::size_t CacheSim::set_index(std::uint64_t line_offset) const noexcept {
  // Hash the line index so pathological strides still spread across sets.
  return static_cast<std::size_t>(hash_u64(line_offset / kCacheLineSize) %
                                  geometry_.sets);
}

CacheSim::Line* CacheSim::find_line(std::uint64_t line_offset) {
  Line* base = &lines_[set_index(line_offset) * geometry_.ways];
  for (std::size_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].valid && base[w].tag == line_offset) {
      base[w].lru = ++lru_clock_;
      return &base[w];
    }
  }
  return nullptr;
}

void CacheSim::pool_read(std::uint64_t offset, std::span<std::byte> dst) {
  DaxDevice::PoolGuard guard(device_);
  std::memcpy(dst.data(), device_.pool().data() + offset, dst.size());
}

void CacheSim::pool_write(std::uint64_t offset,
                          std::span<const std::byte> src) {
  DaxDevice::PoolGuard guard(device_);
  std::memcpy(device_.pool().data() + offset, src.data(), src.size());
}

void CacheSim::writeback_line(Line& line) {
  CMPI_ASSERT(line.valid);
  if (line.dirty) {
    pool_write(line.tag, {line.data, kCacheLineSize});
    line.dirty = false;
    ++stats_.writebacks;
    if (CoherenceChecker* chk = device_.checker()) {
      chk->on_writeback(this, line.tag);
    }
  }
}

CacheSim::Line& CacheSim::fill_line(std::uint64_t line_offset) {
  Line* base = &lines_[set_index(line_offset) * geometry_.ways];
  // Pick an invalid way, else the LRU victim.
  Line* victim = &base[0];
  for (std::size_t w = 0; w < geometry_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) {
      victim = &base[w];
    }
  }
  if (victim->valid) {
    writeback_line(*victim);
    ++stats_.evictions;
    if (CoherenceChecker* chk = device_.checker()) {
      chk->on_invalidate(this, victim->tag);
    }
  }
  victim->tag = line_offset;
  victim->valid = true;
  victim->dirty = false;
  victim->lru = ++lru_clock_;
  pool_read(line_offset, {victim->data, kCacheLineSize});
  ++stats_.misses;
  return *victim;
}

void CacheSim::read(std::uint64_t offset, std::span<std::byte> dst) {
  CMPI_EXPECTS(offset + dst.size() <= device_.size());
  bi_acquire_range(offset, dst.size(), /*for_write=*/false);
  std::lock_guard lock(mutex_);
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::uint64_t at = offset + done;
    const std::uint64_t line_offset = align_down(at, kCacheLineSize);
    const std::size_t in_line = at - line_offset;
    const std::size_t chunk =
        std::min(dst.size() - done, kCacheLineSize - in_line);
    Line* line = find_line(line_offset);
    const bool hit = line != nullptr;
    if (hit) {
      ++stats_.hits;
    } else {
      line = &fill_line(line_offset);
    }
    if (CoherenceChecker* chk = device_.checker()) {
      chk->on_cached_read(this, line_offset, hit);
    }
    std::memcpy(dst.data() + done, line->data + in_line, chunk);
    done += chunk;
  }
}

void CacheSim::write(std::uint64_t offset, std::span<const std::byte> src) {
  CMPI_EXPECTS(offset + src.size() <= device_.size());
  bi_acquire_range(offset, src.size(), /*for_write=*/true);
  std::lock_guard lock(mutex_);
  std::size_t done = 0;
  while (done < src.size()) {
    const std::uint64_t at = offset + done;
    const std::uint64_t line_offset = align_down(at, kCacheLineSize);
    const std::size_t in_line = at - line_offset;
    const std::size_t chunk =
        std::min(src.size() - done, kCacheLineSize - in_line);
    Line* line = find_line(line_offset);
    if (line != nullptr) {
      ++stats_.hits;
    } else {
      // Write-allocate: fill first so partial-line writes merge with the
      // pool's current contents.
      line = &fill_line(line_offset);
    }
    std::memcpy(line->data + in_line, src.data() + done, chunk);
    line->dirty = true;
    if (CoherenceChecker* chk = device_.checker()) {
      chk->on_cached_write(this, line_offset);
    }
    done += chunk;
  }
}

void CacheSim::memset(std::uint64_t offset, std::byte value,
                      std::size_t size) {
  std::byte chunk[kCacheLineSize];
  std::memset(chunk, static_cast<int>(value), sizeof chunk);
  std::size_t done = 0;
  while (done < size) {
    const std::size_t n = std::min(size - done, kCacheLineSize);
    write(offset + done, {chunk, n});
    done += n;
  }
}

CacheSim::FlushResult CacheSim::clflush(std::uint64_t offset,
                                        std::size_t size) {
  CMPI_EXPECTS(offset + size <= device_.size());
  std::lock_guard lock(mutex_);
  FlushResult result{};
  if (size == 0) {
    return result;
  }
  const std::uint64_t first = align_down(offset, kCacheLineSize);
  const std::uint64_t last = align_down(offset + size - 1, kCacheLineSize);
  for (std::uint64_t at = first; at <= last; at += kCacheLineSize) {
    ++result.lines_touched;
    if (Line* line = find_line(at); line != nullptr) {
      if (line->dirty) {
        writeback_line(*line);
        ++result.lines_written_back;
      }
      line->valid = false;
      if (CoherenceChecker* chk = device_.checker()) {
        chk->on_invalidate(this, at);
      }
    }
  }
  return result;
}

CacheSim::FlushResult CacheSim::clwb(std::uint64_t offset, std::size_t size) {
  CMPI_EXPECTS(offset + size <= device_.size());
  std::lock_guard lock(mutex_);
  FlushResult result{};
  if (size == 0) {
    return result;
  }
  const std::uint64_t first = align_down(offset, kCacheLineSize);
  const std::uint64_t last = align_down(offset + size - 1, kCacheLineSize);
  for (std::uint64_t at = first; at <= last; at += kCacheLineSize) {
    ++result.lines_touched;
    if (Line* line = find_line(at); line != nullptr && line->dirty) {
      writeback_line(*line);
      ++result.lines_written_back;
    }
  }
  return result;
}

void CacheSim::nt_store(std::uint64_t offset, std::span<const std::byte> src) {
  CMPI_EXPECTS(offset + src.size() <= device_.size());
  bi_acquire_range(offset, src.size(), /*for_write=*/true);
  std::lock_guard lock(mutex_);
  if (!src.empty()) {
    // Evict any cached copies so the cache never shadows the NT data.
    const std::uint64_t first = align_down(offset, kCacheLineSize);
    const std::uint64_t last =
        align_down(offset + src.size() - 1, kCacheLineSize);
    for (std::uint64_t at = first; at <= last; at += kCacheLineSize) {
      if (Line* line = find_line(at); line != nullptr) {
        writeback_line(*line);
        line->valid = false;
        if (CoherenceChecker* chk = device_.checker()) {
          chk->on_invalidate(this, at);
        }
      }
    }
  }
  pool_write(offset, src);
  if (CoherenceChecker* chk = device_.checker()) {
    chk->on_pool_write(this, offset, src.size());
  }
}

void CacheSim::nt_load(std::uint64_t offset, std::span<std::byte> dst) {
  CMPI_EXPECTS(offset + dst.size() <= device_.size());
  bi_acquire_range(offset, dst.size(), /*for_write=*/false);
  std::lock_guard lock(mutex_);
  pool_read(offset, dst);
  if (CoherenceChecker* chk = device_.checker()) {
    chk->on_pool_read(this, offset, dst.size());
  }
  if (dst.empty()) {
    return;
  }
  // The node's own coherent domain satisfies loads of locally dirty lines.
  const std::uint64_t first = align_down(offset, kCacheLineSize);
  const std::uint64_t last =
      align_down(offset + dst.size() - 1, kCacheLineSize);
  for (std::uint64_t at = first; at <= last; at += kCacheLineSize) {
    Line* line = find_line(at);
    if (line == nullptr || !line->dirty) {
      continue;
    }
    const std::uint64_t lo = std::max<std::uint64_t>(at, offset);
    const std::uint64_t hi =
        std::min<std::uint64_t>(at + kCacheLineSize, offset + dst.size());
    std::memcpy(dst.data() + (lo - offset), line->data + (lo - at), hi - lo);
  }
}

std::uint64_t CacheSim::nt_load_u64(std::uint64_t offset) {
  CMPI_EXPECTS(is_aligned(offset, sizeof(std::uint64_t)));
  CMPI_EXPECTS(offset + sizeof(std::uint64_t) <= device_.size());
  const auto* cell = reinterpret_cast<const std::atomic<std::uint64_t>*>(
      device_.pool().data() + offset);
  const std::uint64_t value = cell->load(std::memory_order_acquire);
  if (CoherenceChecker* chk = device_.checker()) {
    chk->on_pool_read_u64(this, offset);
  }
  return value;
}

void CacheSim::nt_store_u64(std::uint64_t offset, std::uint64_t value) {
  CMPI_EXPECTS(is_aligned(offset, sizeof(std::uint64_t)));
  CMPI_EXPECTS(offset + sizeof(std::uint64_t) <= device_.size());
  auto* cell = reinterpret_cast<std::atomic<std::uint64_t>*>(
      device_.pool().data() + offset);
  cell->store(value, std::memory_order_release);
  if (CoherenceChecker* chk = device_.checker()) {
    chk->on_pool_write_u64(this, offset);
  }
}

void CacheSim::writeback_all() {
  std::lock_guard lock(mutex_);
  CoherenceChecker* chk = device_.checker();
  for (Line& line : lines_) {
    if (line.valid) {
      writeback_line(line);
      line.valid = false;
      if (chk != nullptr) {
        chk->on_invalidate(this, line.tag);
      }
    }
  }
}

void CacheSim::drop_all() {
  std::lock_guard lock(mutex_);
  CoherenceChecker* chk = device_.checker();
  for (Line& line : lines_) {
    if (line.valid && chk != nullptr) {
      chk->on_invalidate(this, line.tag);
    }
    line.valid = false;
    line.dirty = false;
  }
}

CacheSim::Stats CacheSim::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace cmpi::cxlsim
