// Per-node cache simulator.
//
// This is what makes the coherence problem of §3.5 real in the
// reproduction: the pooled device has no cross-host coherence, so each
// simulated node owns a private set-associative write-back cache that sits
// between its ranks and the pool. A store lands in the node cache (dirty)
// and is invisible to other nodes until written back by clflush/clwb or by
// capacity eviction; a load can return stale node-cached data until the
// line is invalidated. Software (the cMPI layers) must flush after writes
// and invalidate before reads, exactly as the paper's software-based cache
// coherence does.
//
// All ranks of a node share the node cache (intra-node coherence is the
// host's own coherent domain), hence the internal mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/align.hpp"
#include "common/status.hpp"
#include "cxlsim/dax_device.hpp"
#include "obs/metrics.hpp"

namespace cmpi::cxlsim {

class CacheSim {
 public:
  struct Geometry {
    std::size_t sets = 2048;
    std::size_t ways = 8;
  };  // default: 2048 * 8 * 64 B = 1 MiB per node

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
  };

  /// Result of a flush-family operation, for the timing layer.
  struct FlushResult {
    std::size_t lines_touched = 0;      ///< lines the instruction spanned
    std::size_t lines_written_back = 0; ///< dirty lines that hit the device
  };

  CacheSim(DaxDevice& device, Geometry geometry);
  explicit CacheSim(DaxDevice& device) : CacheSim(device, Geometry{}) {}
  ~CacheSim();
  CacheSim(const CacheSim&) = delete;
  CacheSim& operator=(const CacheSim&) = delete;

  // --- Cached (write-back) accesses ---
  /// Read through the node cache; may return data that is stale with
  /// respect to the pool if this node cached the lines earlier.
  void read(std::uint64_t offset, std::span<std::byte> dst);

  /// Write into the node cache (write-allocate); the pool is NOT updated
  /// until the lines are flushed or evicted.
  void write(std::uint64_t offset, std::span<const std::byte> src);

  /// memset through the cache (the §2 micro-benchmark's operation).
  void memset(std::uint64_t offset, std::byte value, std::size_t size);

  // --- Flush family ---
  /// Write back dirty lines in the range and invalidate them (clflush /
  /// clflushopt semantics; the two differ only in timing).
  FlushResult clflush(std::uint64_t offset, std::size_t size);

  /// Write back dirty lines but keep them valid (clwb semantics).
  FlushResult clwb(std::uint64_t offset, std::size_t size);

  // --- Non-temporal (cache-bypassing) accesses ---
  /// Store directly to the pool. Any node-cached copy of the spanned lines
  /// is written back first and invalidated, so the cache never shadows an
  /// NT store.
  void nt_store(std::uint64_t offset, std::span<const std::byte> src);

  /// Load directly from the pool, bypassing (and not filling) the cache.
  /// If this node holds a dirty copy of a spanned line, the dirty data is
  /// returned instead (the local coherent domain would satisfy the load).
  void nt_load(std::uint64_t offset, std::span<std::byte> dst);

  /// Lock-free 8-byte pool accesses for synchronization flags. `offset`
  /// must be 8-byte aligned and the line must be accessed exclusively with
  /// NT u64 ops (protocol discipline; enforced by the callers).
  std::uint64_t nt_load_u64(std::uint64_t offset);
  void nt_store_u64(std::uint64_t offset, std::uint64_t value);

  /// Write back everything and drop all lines (wbinvd-style; used at node
  /// teardown and in tests).
  void writeback_all();

  /// Drop all lines WITHOUT writing back (power-loss style; tests only).
  void drop_all();

  // --- Back-Invalidate snoop handlers (device-initiated; only used when
  //     the device runs with hw_coherence, §3.5) ---
  /// Another cache takes ownership of the line: write back if dirty and
  /// invalidate our copy.
  void external_invalidate(std::uint64_t line_offset);
  /// Another cache reads the line: write back our dirty copy (keep it).
  void external_writeback(std::uint64_t line_offset);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Geometry& geometry() const noexcept { return geometry_; }

 private:
  /// Hardware-coherence pre-pass over every line an access spans: acquire
  /// ownership (write) or shared state (read) from peer caches. No-op
  /// unless the device runs with hw_coherence.
  void bi_acquire_range(std::uint64_t offset, std::size_t size,
                        bool for_write);

  struct Line {
    std::uint64_t tag = 0;  ///< line-aligned pool offset
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
    std::byte data[kCacheLineSize]{};
  };

  Line* find_line(std::uint64_t line_offset);
  Line& fill_line(std::uint64_t line_offset);
  void writeback_line(Line& line);
  void pool_read(std::uint64_t offset, std::span<std::byte> dst);
  void pool_write(std::uint64_t offset, std::span<const std::byte> src);
  std::size_t set_index(std::uint64_t line_offset) const noexcept;

  DaxDevice& device_;
  const Geometry geometry_;
  mutable std::mutex mutex_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  std::uint64_t lru_clock_ = 0;
  Stats stats_;
  // Exposes stats() to the obs metrics registry as the cache.* family;
  // the registration folds the final values in when this cache dies.
  obs::ProviderRegistration obs_registration_;
};

}  // namespace cmpi::cxlsim
