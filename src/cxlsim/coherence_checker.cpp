#include "cxlsim/coherence_checker.hpp"

#include <algorithm>
#include <cstdio>

namespace cmpi::cxlsim {

namespace {

/// Rank attribution and stale-tolerance are per *thread*: a rank thread is
/// the unit that owns an Accessor, and suppression scopes must not leak
/// across ranks.
thread_local int tls_rank = -1;
thread_local int tls_tolerate_stale = 0;

std::uint64_t line_of(std::uint64_t offset) noexcept {
  return align_down(offset, kCacheLineSize);
}

}  // namespace

std::string_view CoherenceChecker::kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kStaleRead:
      return "stale-read";
    case Kind::kLostUpdate:
      return "lost-update";
    case Kind::kTornPublish:
      return "torn-publish";
    case Kind::kFenceOrder:
      return "fence-order";
  }
  return "unknown";
}

void CoherenceChecker::set_current_rank(int rank) noexcept { tls_rank = rank; }

int CoherenceChecker::current_rank() noexcept { return tls_rank; }

CoherenceChecker::ToleranceScope::ToleranceScope() noexcept {
  ++tls_tolerate_stale;
}

CoherenceChecker::ToleranceScope::~ToleranceScope() { --tls_tolerate_stale; }

CoherenceChecker::Copy* CoherenceChecker::find_copy(
    LineState& state, const CacheSim* cache) noexcept {
  for (Copy& copy : state.copies) {
    if (copy.cache == cache) {
      return &copy;
    }
  }
  return nullptr;
}

void CoherenceChecker::maybe_gc(LineMap::iterator it) {
  if (it->second.copies.empty() && it->second.flag_words.empty()) {
    lines_.erase(it);
  }
}

void CoherenceChecker::record(Kind kind, std::uint64_t offset, const char* op,
                              std::string detail) {
  if (kind == Kind::kStaleRead && tls_tolerate_stale > 0) {
    return;
  }
  ++summary_.by_kind[static_cast<std::size_t>(kind)];
  if (log_.size() < kMaxStoredViolations) {
    log_.push_back(Violation{kind, tls_rank, offset, op, std::move(detail)});
  }
}

void CoherenceChecker::check_read_observes(const LineState& state,
                                           const CacheSim* cache,
                                           std::uint64_t line_offset,
                                           std::uint64_t observed_version,
                                           const char* op) {
  for (const Copy& copy : state.copies) {
    if (copy.cache != cache && copy.dirty &&
        copy.version > observed_version) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "read observes version %llu but the line is dirty at "
                    "version %llu in another node's cache (missing "
                    "writeback+invalidate)",
                    static_cast<unsigned long long>(observed_version),
                    static_cast<unsigned long long>(copy.version));
      record(Kind::kStaleRead, line_offset, op, buf);
    }
  }
}

void CoherenceChecker::on_cached_read(const CacheSim* cache,
                                      std::uint64_t line_offset, bool hit) {
  std::lock_guard lock(mutex_);
  LineState& state = lines_[line_offset];
  Copy* own = find_copy(state, cache);
  std::uint64_t observed = state.pool;
  if (hit && own != nullptr) {
    observed = own->version;
    if (!own->dirty && own->version < state.pool) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "cached hit on version %llu but the pool holds version "
                    "%llu (missing invalidate before read)",
                    static_cast<unsigned long long>(own->version),
                    static_cast<unsigned long long>(state.pool));
      record(Kind::kStaleRead, line_offset, "cached-load", buf);
    }
  } else {
    // Miss (or a hit on a line cached before the checker was enabled):
    // the fill observes the pool's current version.
    if (own == nullptr) {
      state.copies.push_back(Copy{cache, state.pool, false});
    } else {
      own->version = state.pool;
    }
  }
  check_read_observes(state, cache, line_offset, observed, "cached-load");
}

void CoherenceChecker::on_cached_write(const CacheSim* cache,
                                       std::uint64_t line_offset) {
  std::lock_guard lock(mutex_);
  LineState& state = lines_[line_offset];
  for (const Copy& copy : state.copies) {
    if (copy.cache != cache && copy.dirty) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "store to a line concurrently dirty (version %llu) in "
                    "another node's cache; one writeback will clobber the "
                    "other",
                    static_cast<unsigned long long>(copy.version));
      record(Kind::kLostUpdate, line_offset, "cached-store", buf);
    }
  }
  const std::uint64_t version = ++state.latest;
  if (Copy* own = find_copy(state, cache); own != nullptr) {
    own->version = version;
    own->dirty = true;
  } else {
    state.copies.push_back(Copy{cache, version, true});
  }
  // The line now carries plain data; any flag registration is obsolete.
  state.flag_words.clear();
}

void CoherenceChecker::on_writeback(const CacheSim* cache,
                                    std::uint64_t line_offset) {
  std::lock_guard lock(mutex_);
  const auto it = lines_.find(line_offset);
  if (it == lines_.end()) {
    return;
  }
  if (Copy* own = find_copy(it->second, cache); own != nullptr) {
    it->second.pool = std::max(it->second.pool, own->version);
    own->dirty = false;
  }
}

void CoherenceChecker::on_invalidate(const CacheSim* cache,
                                     std::uint64_t line_offset) {
  std::lock_guard lock(mutex_);
  const auto it = lines_.find(line_offset);
  if (it == lines_.end()) {
    return;
  }
  std::erase_if(it->second.copies,
                [cache](const Copy& copy) { return copy.cache == cache; });
  maybe_gc(it);
}

void CoherenceChecker::on_pool_write(const CacheSim* cache,
                                     std::uint64_t offset, std::size_t size) {
  if (size == 0) {
    return;
  }
  std::lock_guard lock(mutex_);
  const std::uint64_t first = line_of(offset);
  const std::uint64_t last = line_of(offset + size - 1);
  for (std::uint64_t at = first; at <= last; at += kCacheLineSize) {
    const auto it = lines_.find(at);
    if (it == lines_.end()) {
      // Nobody caches the line and no flag lives there: versions restart
      // from zero consistently, so there is nothing to track. This keeps
      // the map bounded under streaming workloads.
      continue;
    }
    LineState& state = it->second;
    for (const Copy& copy : state.copies) {
      if (copy.cache != cache && copy.dirty) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "NT store overwrites a line dirty (version %llu) in "
                      "another node's cache; its writeback will clobber "
                      "this store",
                      static_cast<unsigned long long>(copy.version));
        record(Kind::kLostUpdate, at, "nt-store", buf);
      }
    }
    state.pool = ++state.latest;
    state.flag_words.clear();
    maybe_gc(it);
  }
}

void CoherenceChecker::on_pool_read(const CacheSim* cache,
                                    std::uint64_t offset, std::size_t size) {
  if (size == 0) {
    return;
  }
  std::lock_guard lock(mutex_);
  const std::uint64_t first = line_of(offset);
  const std::uint64_t last = line_of(offset + size - 1);
  for (std::uint64_t at = first; at <= last; at += kCacheLineSize) {
    const auto it = lines_.find(at);
    if (it == lines_.end()) {
      continue;
    }
    LineState& state = it->second;
    std::uint64_t observed = state.pool;
    // CacheSim::nt_load merges the node's own dirty lines into the result.
    if (const Copy* own = find_copy(state, cache);
        own != nullptr && own->dirty) {
      observed = std::max(observed, own->version);
    }
    check_read_observes(state, cache, at, observed, "nt-load");
  }
}

void CoherenceChecker::on_pool_write_u64(const CacheSim* cache,
                                         std::uint64_t offset) {
  std::lock_guard lock(mutex_);
  const auto it = lines_.find(line_of(offset));
  if (it == lines_.end()) {
    return;
  }
  LineState& state = it->second;
  for (const Copy& copy : state.copies) {
    if (copy.dirty) {
      char buf[160];
      std::snprintf(
          buf, sizeof buf,
          "8-byte flag store to a line cached dirty (version %llu) in %s "
          "cache; a later writeback clobbers the flag",
          static_cast<unsigned long long>(copy.version),
          copy.cache == cache ? "this node's own" : "another node's");
      record(Kind::kLostUpdate, offset, "flag-store", buf);
    }
  }
  state.pool = ++state.latest;
  maybe_gc(it);
}

void CoherenceChecker::on_pool_read_u64(const CacheSim* cache,
                                        std::uint64_t offset) {
  std::lock_guard lock(mutex_);
  const auto it = lines_.find(line_of(offset));
  if (it == lines_.end()) {
    return;
  }
  LineState& state = it->second;
  // The lock-free 8-byte load reads the pool directly; it bypasses even the
  // node's own dirty copy, so any dirty copy anywhere makes it stale.
  if (const Copy* own = find_copy(state, cache);
      own != nullptr && own->dirty && own->version > state.pool) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "8-byte flag load bypasses this node's own dirty cached "
                  "copy (version %llu vs pool %llu)",
                  static_cast<unsigned long long>(own->version),
                  static_cast<unsigned long long>(state.pool));
    record(Kind::kStaleRead, offset, "flag-load", buf);
  }
  check_read_observes(state, cache, line_of(offset), state.pool, "flag-load");
}

void CoherenceChecker::on_cache_detached(const CacheSim* cache) {
  std::lock_guard lock(mutex_);
  for (auto it = lines_.begin(); it != lines_.end();) {
    std::erase_if(it->second.copies,
                  [cache](const Copy& copy) { return copy.cache == cache; });
    if (it->second.copies.empty() && it->second.flag_words.empty()) {
      it = lines_.erase(it);
    } else {
      ++it;
    }
  }
}

void CoherenceChecker::on_publish(
    const CacheSim* cache, std::uint64_t flag_offset,
    std::span<const std::pair<std::uint64_t, std::size_t>> payload) {
  std::lock_guard lock(mutex_);
  LineState& flag_line = lines_[line_of(flag_offset)];
  if (std::find(flag_line.flag_words.begin(), flag_line.flag_words.end(),
                flag_offset) == flag_line.flag_words.end()) {
    flag_line.flag_words.push_back(flag_offset);
  }
  for (const auto& [offset, size] : payload) {
    if (size == 0) {
      continue;
    }
    const std::uint64_t first = line_of(offset);
    const std::uint64_t last = line_of(offset + size - 1);
    for (std::uint64_t at = first; at <= last; at += kCacheLineSize) {
      const auto it = lines_.find(at);
      if (it == lines_.end()) {
        continue;
      }
      if (const Copy* own = find_copy(it->second, cache);
          own != nullptr && own->dirty) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "flag @%#llx published while a covered payload line "
                      "is still dirty in the publisher's cache (missing "
                      "flush before publish)",
                      static_cast<unsigned long long>(flag_offset));
        record(Kind::kTornPublish, at, "publish", buf);
      }
    }
  }
}

void CoherenceChecker::on_flag_store(const CacheSim* /*cache*/,
                                     std::uint64_t offset, bool fenced) {
  if (fenced) {
    return;
  }
  std::lock_guard lock(mutex_);
  const auto it = lines_.find(line_of(offset));
  if (it == lines_.end()) {
    return;
  }
  for (const std::uint64_t base : it->second.flag_words) {
    if (offset == base || offset == base + sizeof(std::uint64_t)) {
      record(Kind::kFenceOrder, offset, "flag-store",
             "flag word updated with unfenced writes outstanding (publish "
             "before sfence)");
      return;
    }
  }
}

CoherenceChecker::Summary CoherenceChecker::summary() const {
  std::lock_guard lock(mutex_);
  return summary_;
}

std::uint64_t CoherenceChecker::total_violations() const {
  std::lock_guard lock(mutex_);
  return summary_.total();
}

std::vector<CoherenceChecker::Violation> CoherenceChecker::violations() const {
  std::lock_guard lock(mutex_);
  return log_;
}

std::string CoherenceChecker::summary_string() const {
  const Summary s = summary();
  char buf[192];
  std::snprintf(
      buf, sizeof buf,
      "%llu violation(s) (stale-read %llu, lost-update %llu, torn-publish "
      "%llu, fence-order %llu)",
      static_cast<unsigned long long>(s.total()),
      static_cast<unsigned long long>(s.count(Kind::kStaleRead)),
      static_cast<unsigned long long>(s.count(Kind::kLostUpdate)),
      static_cast<unsigned long long>(s.count(Kind::kTornPublish)),
      static_cast<unsigned long long>(s.count(Kind::kFenceOrder)));
  return buf;
}

void CoherenceChecker::clear() {
  std::lock_guard lock(mutex_);
  lines_.clear();
  log_.clear();
  summary_ = Summary{};
}

}  // namespace cmpi::cxlsim
