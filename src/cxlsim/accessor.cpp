#include "cxlsim/accessor.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "common/align.hpp"
#include "cxlsim/coherence_checker.hpp"
#include "obs/obs.hpp"

namespace cmpi::cxlsim {

namespace {

/// Number of whole cache lines an access spans.
std::size_t lines_of(std::uint64_t offset, std::size_t size) noexcept {
  return cache_lines_spanned(offset, size);
}

/// Per-line cost of a Back-Invalidate coherence transaction: snoop every
/// other attached cache plus the device-directory lookup (§3.5's
/// scalability argument — grows with the coherence domain).
simtime::Ns bi_line_cost(DaxDevice& device) noexcept {
  const auto& p = device.timing().params();
  if (!p.hw_coherence) {
    return 0;
  }
  const std::size_t others =
      device.attached_caches() > 0 ? device.attached_caches() - 1 : 0;
  return p.bi_snoop_base + p.bi_directory_lookup +
         static_cast<simtime::Ns>(others) * p.bi_snoop_per_cache;
}

}  // namespace

void Accessor::store(std::uint64_t offset, std::span<const std::byte> src) {
  fault_access(offset, src.size(), /*is_read=*/false);
  const auto& p = device_.timing().params();
  if (is_uncachable(offset)) {
    cache_.nt_store(offset, src);
    clock_.advance(device_.timing().uncached_cost(src.size()));
    return;
  }
  cache_.write(offset, src);
  // Stores retire through the write buffer; per-line cost is a cache hit
  // (plus the BI ownership transaction under hardware coherence).
  clock_.advance(static_cast<simtime::Ns>(lines_of(offset, src.size())) *
                 (p.cache_hit_latency + bi_line_cost(device_)));
}

void Accessor::load(std::uint64_t offset, std::span<std::byte> dst) {
  fault_access(offset, dst.size(), /*is_read=*/true);
  const auto& p = device_.timing().params();
  if (is_uncachable(offset)) {
    cache_.nt_load(offset, dst);
    clock_.advance(device_.timing().uncached_cost(dst.size()));
    return;
  }
  const auto before = cache_.stats();
  cache_.read(offset, dst);
  const auto after = cache_.stats();
  const auto misses = after.misses - before.misses;
  const auto hits = after.hits - before.hits;
  // Under hardware coherence every miss is also a BI snoop round. A
  // degraded link (fault injection) stretches the fill, not the hit.
  clock_.advance(static_cast<simtime::Ns>(misses) *
                     (p.line_fill_latency * fault_latency_multiplier() +
                      bi_line_cost(device_)) +
                 static_cast<simtime::Ns>(hits) * p.cache_hit_latency);
}

void Accessor::memset(std::uint64_t offset, std::byte value,
                      std::size_t size) {
  fault_access(offset, size, /*is_read=*/false);
  const auto& p = device_.timing().params();
  if (is_uncachable(offset)) {
    // One UC op for the whole range: the regime (write-combining vs TLP
    // splitting) depends on the total size, Fig. 11.
    std::byte chunk[kCacheLineSize];
    std::fill(std::begin(chunk), std::end(chunk), value);
    std::size_t done = 0;
    while (done < size) {
      const std::size_t n = std::min(size - done, sizeof chunk);
      cache_.nt_store(offset + done, {chunk, n});
      done += n;
    }
    clock_.advance(device_.timing().uncached_cost(size));
    return;
  }
  cache_.memset(offset, value, size);
  clock_.advance(static_cast<simtime::Ns>(lines_of(offset, size)) *
                 p.cache_hit_latency);
}

void Accessor::charge_flush(const CacheSim::FlushResult& result,
                            simtime::Ns per_line_cost) {
  const auto& p = device_.timing().params();
  if (result.lines_touched == 0) {
    return;
  }
  // A degraded link (fault injection) stretches the write-back drain.
  const double link = fault_latency_multiplier();
  CMPI_OBS_COUNT("cxl.flush_lines", result.lines_touched);
  clock_.advance(p.flush_base +
                 static_cast<simtime::Ns>(result.lines_touched) *
                     per_line_cost * link);
  if (result.lines_written_back > 0) {
    CMPI_OBS_COUNT("cxl.flush_writebacks", result.lines_written_back);
    const simtime::Ns start = clock_.now();
    const simtime::Ns done = device_.timing().reserve_device(
        start, result.lines_written_back * kCacheLineSize,
        /*is_read=*/false, wfq_class_);
    CMPI_OBS_HIST("cxl.dev_write_wait_ns", done - start);
    pending_drain_ =
        std::max(pending_drain_, done + p.line_write_latency * link);
    writes_since_fence_ = true;
  }
}

void Accessor::clflush(std::uint64_t offset, std::size_t size) {
  charge_flush(cache_.clflush(offset, size),
               device_.timing().params().clflush_per_line);
}

void Accessor::clflushopt(std::uint64_t offset, std::size_t size) {
  charge_flush(cache_.clflush(offset, size),
               device_.timing().params().clflushopt_per_line);
}

void Accessor::clwb(std::uint64_t offset, std::size_t size) {
  charge_flush(cache_.clwb(offset, size),
               device_.timing().params().clflushopt_per_line);
}

void Accessor::sfence() {
  clock_.advance(device_.timing().params().fence_cost);
  clock_.observe(pending_drain_);
  writes_since_fence_ = false;
}

void Accessor::lfence() {
  clock_.advance(device_.timing().params().fence_cost);
}

void Accessor::coherent_write(std::uint64_t offset,
                              std::span<const std::byte> src) {
  store(offset, src);
  clflushopt(offset, src.size());
  sfence();
}

void Accessor::coherent_read(std::uint64_t offset, std::span<std::byte> dst) {
  lfence();
  // Invalidate any stale node-cached copy (write-back of locally dirty
  // lines is the defined clflush behaviour; the coherence discipline says
  // reader and writer ranges don't overlap concurrently).
  clflush(offset, dst.size());
  sfence();
  load(offset, dst);
}

void Accessor::nt_store(std::uint64_t offset, std::span<const std::byte> src) {
  fault_access(offset, src.size(), /*is_read=*/false);
  const auto& p = device_.timing().params();
  cache_.nt_store(offset, src);
  if (src.size() <= sizeof(std::uint64_t)) {
    clock_.advance(p.nt_store_latency);
  } else {
    const simtime::Ns done = device_.timing().reserve_device(
        clock_.now(), src.size(), /*is_read=*/false, wfq_class_);
    pending_drain_ = std::max(pending_drain_, done + p.line_write_latency);
    writes_since_fence_ = true;
    clock_.advance(static_cast<simtime::Ns>(lines_of(offset, src.size())) *
                   p.cache_hit_latency);
  }
}

void Accessor::nt_load(std::uint64_t offset, std::span<std::byte> dst) {
  fault_access(offset, dst.size(), /*is_read=*/true);
  const auto& p = device_.timing().params();
  cache_.nt_load(offset, dst);
  if (dst.size() <= sizeof(std::uint64_t)) {
    clock_.advance(p.nt_load_latency);
  } else {
    const simtime::Ns done = device_.timing().reserve_device(
        clock_.now(), dst.size(), /*is_read=*/true, wfq_class_);
    clock_.observe(done + p.line_fill_latency);
  }
}

std::uint64_t Accessor::nt_load_u64(std::uint64_t offset) {
  fault_access(offset, sizeof(std::uint64_t), /*is_read=*/true);
  clock_.advance(device_.timing().params().nt_load_latency);
  return cache_.nt_load_u64(offset);
}

void Accessor::nt_store_u64(std::uint64_t offset, std::uint64_t value) {
  fault_access(offset, sizeof(std::uint64_t), /*is_read=*/false);
  clock_.advance(device_.timing().params().nt_store_latency);
  if (CoherenceChecker* chk = device_.checker()) {
    chk->on_flag_store(&cache_, offset, /*fenced=*/!writes_since_fence_);
  }
  cache_.nt_store_u64(offset, value);
}

void Accessor::hint_store_u64(std::uint64_t offset, std::uint64_t value) {
  fault_access(offset, sizeof(std::uint64_t), /*is_read=*/false);
  if (CoherenceChecker* chk = device_.checker()) {
    // A hint word covers no payload, so it needs no fence: report it as
    // fenced so the checker doesn't flag the (by-design) missing sfence.
    chk->on_flag_store(&cache_, offset, /*fenced=*/true);
  }
  clock_.advance(device_.timing().params().cache_hit_latency);
  cache_.nt_store_u64(offset, value);
}

std::uint64_t Accessor::peek_u64(std::uint64_t offset) {
  CMPI_EXPECTS(is_aligned(offset, sizeof(std::uint64_t)));
  fault_poll_read(offset, sizeof(std::uint64_t));
  return cache_.nt_load_u64(offset);
}

void Accessor::bulk_write(std::uint64_t offset, std::span<const std::byte> src,
                          BulkCharge charge) {
  if (src.empty()) {
    return;
  }
  fault_access(offset, src.size(), /*is_read=*/false);
  if (is_uncachable(offset)) {
    // UC region: no streaming, no write-combining past the MPS (§4.5).
    cache_.nt_store(offset, src);
    clock_.advance(device_.timing().uncached_cost(src.size()));
    return;
  }
  const auto& p = device_.timing().params();
  CxlTimingModel::StreamScope stream(device_.timing());
  const simtime::Ns start = clock_.now();
  // §3.5 discipline: every bulk write ends with a flush round (the
  // clflushopt sweep's setup cost; the per-line flush work is what limits
  // the flushed streaming rate and is folded into the device reservation).
  // Batched ops share their batch's single sweep, so only the first op of
  // the batch pays the setup.
  const simtime::Ns setup = charge == BulkCharge::kFull ? p.flush_base : 0;
  clock_.advance(setup + device_.timing().cpu_copy_cost(src.size()));
  const simtime::Ns done =
      device_.timing().reserve_device(start, src.size(), /*is_read=*/false,
                                     wfq_class_);
  CMPI_OBS_COUNT("cxl.bulk_write_bytes", src.size());
  CMPI_OBS_HIST("cxl.dev_write_wait_ns", done - start);
  pending_drain_ = std::max(pending_drain_, done + p.line_write_latency);
  writes_since_fence_ = true;
  cache_.nt_store(offset, src);
}

void Accessor::bulk_read(std::uint64_t offset, std::span<std::byte> dst,
                         BulkCharge charge) {
  if (dst.empty()) {
    return;
  }
  fault_access(offset, dst.size(), /*is_read=*/true);
  if (is_uncachable(offset)) {
    cache_.nt_load(offset, dst);
    clock_.advance(device_.timing().uncached_cost(dst.size()));
    return;
  }
  const auto& p = device_.timing().params();
  CxlTimingModel::StreamScope stream(device_.timing());
  const simtime::Ns start = clock_.now();
  // §3.5 discipline: invalidate (flush) before the read so no stale lines
  // satisfy it; batched ops share the batch's single invalidate sweep.
  const simtime::Ns setup = charge == BulkCharge::kFull ? p.flush_base : 0;
  clock_.advance(setup + device_.timing().cpu_copy_cost(dst.size()));
  const simtime::Ns done =
      device_.timing().reserve_device(start, dst.size(), /*is_read=*/true,
                                     wfq_class_);
  CMPI_OBS_COUNT("cxl.bulk_read_bytes", dst.size());
  CMPI_OBS_HIST("cxl.dev_read_wait_ns", done - start);
  clock_.observe(done + p.line_fill_latency);
  cache_.nt_load(offset, dst);
}

void Accessor::annotate_publish_range(std::uint64_t offset,
                                      std::size_t size) {
  if (device_.checker() != nullptr && size > 0) {
    publish_ranges_.emplace_back(offset, size);
  }
}

void Accessor::publish_flag(std::uint64_t offset, std::uint64_t value) {
  CMPI_EXPECTS(is_aligned(offset, sizeof(std::uint64_t)));
  fault_access(offset, kFlagBytes, /*is_read=*/false);
  if (CoherenceChecker* chk = device_.checker()) {
    // Check the annotated payload BEFORE the internal sfence: a dirty
    // payload line here means the publish would race its own data.
    chk->on_publish(&cache_, offset, publish_ranges_);
  }
  publish_ranges_.clear();
  sfence();  // release: all prior writes are covered by the stamp
  // Stamp first, value second: a reader that sees the new value (acquire)
  // is guaranteed to see at least this stamp.
  cache_.nt_store_u64(offset + sizeof(std::uint64_t),
                      std::bit_cast<std::uint64_t>(clock_.now()));
  clock_.advance(device_.timing().params().nt_store_latency);
  cache_.nt_store_u64(offset, value);
}

Accessor::FlagValue Accessor::peek_flag(std::uint64_t offset) {
  CMPI_EXPECTS(is_aligned(offset, sizeof(std::uint64_t)));
  // Poll read: poison still surfaces, but polling is not counted toward
  // crash-at-Nth schedules (iteration counts are wall-clock dependent).
  fault_poll_read(offset, kFlagBytes);
  FlagValue out;
  out.value = cache_.nt_load_u64(offset);
  out.stamp = std::bit_cast<simtime::Ns>(
      cache_.nt_load_u64(offset + sizeof(std::uint64_t)));
  return out;
}

void Accessor::absorb_flag(const FlagValue& flag) {
  clock_.advance(device_.timing().params().nt_load_latency);
  clock_.observe(flag.stamp);
}

Status Accessor::take_poison_status(std::string_view context) {
  if (!poison_seen_) {
    return Status::ok();
  }
  poison_seen_ = false;
  return status::data_poisoned(
      std::string(context) + ": read touched poisoned pool offset " +
      std::to_string(poison_offset_));
}

}  // namespace cmpi::cxlsim
