// Scriptable fault injection for the simulated CXL pool.
//
// The paper's platform is a shared pooled-memory device: a crashed host
// leaves its bakery-lock slots, barrier flags and half-written ring cells
// behind in the pool forever, and media errors surface as poisoned lines
// (cf. CXLMemSim and the pooled-memory failure taxonomy in Jain et al.).
// The injector reproduces those behaviours in the simulator so the
// detection/recovery layers above (runtime::FailureDetector, the
// deadline-aware blocking variants) can be tested deterministically:
//
//   * crash faults — a rank dies at its Nth pool access, or when it
//     reaches a named sync point ("barrier-enter", "lock-acquired",
//     "window-put", ...). The rank thread unwinds via a RankCrashed
//     exception that Universe::run catches at the rank boundary and
//     reports (it is NOT re-thrown: a simulated host crash is an observed
//     event, not a test error),
//   * poisoned ranges — reads overlapping a poisoned byte range are
//     recorded and surfaced to the layer above as ErrorCode::kDataPoisoned
//     (see Accessor::take_poison_status),
//   * degraded link — a latency multiplier applied to flush write-backs
//     and line fills, modeling a CXL link that renegotiated to a lower
//     speed.
//
// Like the CoherenceChecker, the injector is an interposition layer owned
// by the DaxDevice: Accessor calls its hooks only under a null-check, so a
// universe with no fault plan pays a single pointer compare per access —
// nothing else changes. Faults are attributed to ranks via the same
// thread-local rank id scheme (set_current_rank).
//
// Thread model: hooks are called from rank threads; the injector has its
// own mutex and never calls back into caches or accessors.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cmpi::cxlsim {

/// Thrown on the faulted rank's thread when its scripted crash fires.
/// Universe::run catches it at the rank boundary, records the death and
/// does not re-throw; any other catcher should treat it the same way.
class RankCrashed : public std::runtime_error {
 public:
  RankCrashed(int rank, const std::string& where)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " crashed (injected) at " + where),
        rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

/// A scripted set of faults, installed before the pool traffic it targets
/// (typically via UniverseConfig::fault_plan).
struct FaultPlan {
  /// Kill `rank` when it makes its `nth` pool access (1-based; every
  /// Accessor operation that touches the pool counts as one access).
  struct CrashAtAccess {
    int rank = -1;
    std::uint64_t nth = 1;
  };
  /// Kill `rank` when it reaches the `occurrence`-th arrival (1-based) at
  /// the named sync point. Layers report sync points via
  /// Accessor::fault_sync_point; see docs/INTERNALS.md for the names.
  struct CrashAtSync {
    int rank = -1;
    std::string point;
    std::uint64_t occurrence = 1;
  };
  /// Reads overlapping [offset, offset + size) observe poison.
  struct PoisonRange {
    std::uint64_t offset = 0;
    std::size_t size = 0;
  };

  std::vector<CrashAtAccess> crash_at_access;
  std::vector<CrashAtSync> crash_at_sync;
  std::vector<PoisonRange> poison;
  /// Multiplier (>= 1.0) on flush write-back and line-fill latencies.
  double degraded_link_multiplier = 1.0;

  [[nodiscard]] bool empty() const noexcept {
    return crash_at_access.empty() && crash_at_sync.empty() &&
           poison.empty() && degraded_link_multiplier == 1.0;
  }
};

class FaultInjector {
 public:
  enum class Kind : std::uint8_t {
    kCrash = 0,
    kPoisonedRead = 1,
  };
  static constexpr std::size_t kKindCount = 2;

  /// Short stable name for an event kind ("crash", "poisoned-read").
  static std::string_view kind_name(Kind kind) noexcept;

  /// One injected fault that actually fired.
  struct Event {
    Kind kind = Kind::kCrash;
    int rank = -1;             ///< rank the fault hit
    std::uint64_t offset = 0;  ///< pool offset (poison) or access count
    std::string detail;        ///< human-readable specifics
  };

  /// Events beyond this many are counted but not stored.
  static constexpr std::size_t kMaxStoredEvents = 1024;

  explicit FaultInjector(FaultPlan plan);

  /// Tag the calling thread with its MPI rank for fault targeting.
  /// Universe::run does this for every rank thread; standalone tests call
  /// it manually. -1 (the default) means "not a rank thread" — no crash
  /// fault ever targets it.
  static void set_current_rank(int rank) noexcept;
  [[nodiscard]] static int current_rank() noexcept;

  /// Tag the calling thread with its tenant's rank-namespace base
  /// (multi-tenant pool service): the thread's *global* rank — the id
  /// fault plans target and crash records carry — is base + local rank.
  /// Defaults to 0, so single-universe setups are unaffected. Every
  /// local-rank query made from the thread (rank_crashed) is translated
  /// through its base; host-side callers holding global ids use the
  /// results of crashed_ranks() directly.
  static void set_rank_base(int base) noexcept;
  [[nodiscard]] static int rank_base() noexcept;

  // --- Accessor hooks ---
  /// Count one pool access by the calling rank; throws RankCrashed when
  /// the rank's scripted access-count crash fires.
  void on_access();
  /// A named sync point reached by the calling rank; throws RankCrashed
  /// when the rank's scripted sync-point crash fires.
  void on_sync_point(std::string_view point);
  /// A read of [offset, offset + size): returns true (and records the
  /// event) when the range overlaps poison.
  [[nodiscard]] bool check_poison(std::uint64_t offset, std::size_t size);
  /// Latency multiplier for flush write-backs and line fills (1.0 when no
  /// degraded-link fault is scripted).
  [[nodiscard]] double latency_multiplier() const noexcept {
    return plan_.degraded_link_multiplier;
  }

  /// Forgive a rank's crash record (Universe::respawn): the rank's next
  /// incarnation counts accesses from zero and is no longer reported by
  /// crashed_ranks(). The event log keeps the original death. Scripted
  /// one-shot crashes that already fired do not re-fire (access/sync
  /// counters are NOT reset — the schedule positions were consumed).
  void absolve(int rank);

  /// Poison [offset, offset + size) at runtime. Plan-file poison ranges
  /// must be known before the pool is laid out; this seam lets a test
  /// target an address it computed after creation (e.g. one ring cell's
  /// payload) while traffic is already flowing.
  void poison(std::uint64_t offset, std::size_t size);

  // --- Results ---
  /// Global ranks whose scripted crash fired, ascending.
  [[nodiscard]] std::vector<int> crashed_ranks() const;
  /// Whether the rank — local to the calling thread's rank-namespace
  /// base — has a standing crash record.
  [[nodiscard]] bool rank_crashed(int rank) const;
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::uint64_t count(Kind kind) const;
  /// Stored events (up to kMaxStoredEvents), in firing order.
  [[nodiscard]] std::vector<Event> events() const;
  /// One-line report, e.g. "2 faults fired (crash 1, poisoned-read 1)".
  [[nodiscard]] std::string summary_string() const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void record(Kind kind, int rank, std::uint64_t offset, std::string detail);

  FaultPlan plan_;
  /// True once any poison range exists (keeps the common no-poison read
  /// path lock-free; see check_poison).
  std::atomic<bool> poison_possible_{false};
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> access_counts_;  // per rank, grown on demand
  std::vector<std::uint64_t> sync_counts_;    // per CrashAtSync plan entry
  std::vector<bool> crashed_;                 // per rank, grown on demand
  std::vector<Event> log_;
  std::uint64_t by_kind_[kKindCount] = {0, 0};
};

}  // namespace cmpi::cxlsim
