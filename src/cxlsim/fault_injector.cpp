#include "cxlsim/fault_injector.hpp"

#include <algorithm>

namespace cmpi::cxlsim {

namespace {
thread_local int tls_fault_rank = -1;
thread_local int tls_fault_rank_base = 0;

/// Global rank of the calling thread (-1 when it is not a rank thread).
int tls_global_rank() noexcept {
  return tls_fault_rank < 0 ? -1 : tls_fault_rank_base + tls_fault_rank;
}
}  // namespace

void FaultInjector::set_current_rank(int rank) noexcept {
  tls_fault_rank = rank;
}

int FaultInjector::current_rank() noexcept { return tls_fault_rank; }

void FaultInjector::set_rank_base(int base) noexcept {
  tls_fault_rank_base = base;
}

int FaultInjector::rank_base() noexcept { return tls_fault_rank_base; }

std::string_view FaultInjector::kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kCrash:
      return "crash";
    case Kind::kPoisonedRead:
      return "poisoned-read";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), sync_counts_(plan_.crash_at_sync.size(), 0) {
  poison_possible_.store(!plan_.poison.empty(), std::memory_order_release);
}

void FaultInjector::record(Kind kind, int rank, std::uint64_t offset,
                           std::string detail) {
  ++by_kind_[static_cast<std::size_t>(kind)];
  if (log_.size() < kMaxStoredEvents) {
    log_.push_back(Event{kind, rank, offset, std::move(detail)});
  }
}

void FaultInjector::on_access() {
  const int rank = tls_global_rank();
  if (rank < 0) {
    return;
  }
  std::unique_lock lock(mutex_);
  const auto r = static_cast<std::size_t>(rank);
  if (r >= access_counts_.size()) {
    access_counts_.resize(r + 1, 0);
  }
  if (r < crashed_.size() && crashed_[r]) {
    return;  // already dead; destructor-path accesses must not re-throw
  }
  const std::uint64_t count = ++access_counts_[r];
  for (const FaultPlan::CrashAtAccess& fault : plan_.crash_at_access) {
    if (fault.rank == rank && fault.nth == count) {
      if (r >= crashed_.size()) {
        crashed_.resize(r + 1, false);
      }
      crashed_[r] = true;
      const std::string where =
          "pool access #" + std::to_string(count);
      record(Kind::kCrash, rank, count, where);
      lock.unlock();
      throw RankCrashed(rank, where);
    }
  }
}

void FaultInjector::on_sync_point(std::string_view point) {
  const int rank = tls_global_rank();
  if (rank < 0) {
    return;
  }
  std::unique_lock lock(mutex_);
  const auto r = static_cast<std::size_t>(rank);
  if (r < crashed_.size() && crashed_[r]) {
    return;
  }
  for (std::size_t i = 0; i < plan_.crash_at_sync.size(); ++i) {
    const FaultPlan::CrashAtSync& fault = plan_.crash_at_sync[i];
    if (fault.rank != rank || fault.point != point) {
      continue;
    }
    if (++sync_counts_[i] != fault.occurrence) {
      continue;
    }
    if (r >= crashed_.size()) {
      crashed_.resize(r + 1, false);
    }
    crashed_[r] = true;
    const std::string where = "sync point '" + fault.point + "' (arrival " +
                              std::to_string(fault.occurrence) + ")";
    record(Kind::kCrash, rank, 0, where);
    lock.unlock();
    throw RankCrashed(rank, where);
  }
}

bool FaultInjector::check_poison(std::uint64_t offset, std::size_t size) {
  // Lock-free fast path for plans with no poison at all; once any range
  // exists (scripted or runtime-added) the scan runs under the mutex so
  // poison() can append ranges while traffic flows.
  if (size == 0 || !poison_possible_.load(std::memory_order_acquire)) {
    return false;
  }
  std::lock_guard lock(mutex_);
  for (const FaultPlan::PoisonRange& range : plan_.poison) {
    if (offset < range.offset + range.size && range.offset < offset + size) {
      record(Kind::kPoisonedRead, tls_global_rank(), offset,
             "read [" + std::to_string(offset) + ", " +
                 std::to_string(offset + size) + ") overlaps poison at " +
                 std::to_string(range.offset));
      return true;
    }
  }
  return false;
}

void FaultInjector::poison(std::uint64_t offset, std::size_t size) {
  std::lock_guard lock(mutex_);
  plan_.poison.push_back({offset, size});
  poison_possible_.store(true, std::memory_order_release);
}

void FaultInjector::absolve(int rank) {
  std::lock_guard lock(mutex_);
  const auto r = static_cast<std::size_t>(rank);
  if (rank >= 0 && r < crashed_.size()) {
    crashed_[r] = false;
  }
}

std::vector<int> FaultInjector::crashed_ranks() const {
  std::lock_guard lock(mutex_);
  std::vector<int> out;
  for (std::size_t r = 0; r < crashed_.size(); ++r) {
    if (crashed_[r]) {
      out.push_back(static_cast<int>(r));
    }
  }
  return out;
}

bool FaultInjector::rank_crashed(int rank) const {
  if (rank < 0) {
    return false;
  }
  // Translate through the caller's rank-namespace base: a tenant rank
  // asking about its local peer must land on that peer's global record.
  const auto r = static_cast<std::size_t>(rank + tls_fault_rank_base);
  std::lock_guard lock(mutex_);
  return r < crashed_.size() && crashed_[r];
}

std::uint64_t FaultInjector::total_events() const {
  std::lock_guard lock(mutex_);
  std::uint64_t sum = 0;
  for (const std::uint64_t n : by_kind_) {
    sum += n;
  }
  return sum;
}

std::uint64_t FaultInjector::count(Kind kind) const {
  std::lock_guard lock(mutex_);
  return by_kind_[static_cast<std::size_t>(kind)];
}

std::vector<FaultInjector::Event> FaultInjector::events() const {
  std::lock_guard lock(mutex_);
  return log_;
}

std::string FaultInjector::summary_string() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const std::uint64_t n : by_kind_) {
    total += n;
  }
  std::string out = std::to_string(total) + " fault";
  if (total != 1) {
    out += 's';
  }
  out += " fired (";
  for (std::size_t k = 0; k < kKindCount; ++k) {
    if (k > 0) {
      out += ", ";
    }
    out += kind_name(static_cast<Kind>(k));
    out += ' ';
    out += std::to_string(by_kind_[k]);
  }
  out += ')';
  return out;
}

}  // namespace cmpi::cxlsim
