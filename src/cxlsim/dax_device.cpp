#include "cxlsim/dax_device.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/log.hpp"
#include "cxlsim/cache_sim.hpp"
#include "cxlsim/coherence_checker.hpp"
#include "cxlsim/fault_injector.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace cmpi::cxlsim {
namespace {

int make_memfd(const char* name, std::size_t size) {
#if defined(__linux__)
  const int fd = static_cast<int>(syscall(SYS_memfd_create, name, 0));
#else
  (void)name;
  const int fd = -1;
  errno = ENOSYS;
#endif
  if (fd < 0) {
    return -1;
  }
  if (ftruncate(fd, static_cast<off_t>(size)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

Result<std::unique_ptr<DaxDevice>> DaxDevice::create(
    std::size_t size, unsigned heads, const CxlTimingParams& timing) {
  if (size == 0) {
    return status::invalid_argument("pool size must be nonzero");
  }
  if (heads == 0) {
    return status::invalid_argument("device needs at least one head");
  }
  const std::size_t pool_size = align_up(size, kDaxAlignment);

  const int pool_fd = make_memfd("cmpi-cxl-pool", pool_size);
  if (pool_fd < 0) {
    return status::internal(std::string("memfd_create(pool): ") +
                            std::strerror(errno));
  }
  void* pool_base = mmap(nullptr, pool_size, PROT_READ | PROT_WRITE,
                         MAP_SHARED, pool_fd, 0);
  if (pool_base == MAP_FAILED) {
    close(pool_fd);
    return status::internal(std::string("mmap(pool): ") +
                            std::strerror(errno));
  }

  const int ctrl_fd = make_memfd("cmpi-cxl-ctrl", sizeof(CtrlBlock));
  if (ctrl_fd < 0) {
    munmap(pool_base, pool_size);
    close(pool_fd);
    return status::internal(std::string("memfd_create(ctrl): ") +
                            std::strerror(errno));
  }
  void* ctrl_raw = mmap(nullptr, sizeof(CtrlBlock), PROT_READ | PROT_WRITE,
                        MAP_SHARED, ctrl_fd, 0);
  if (ctrl_raw == MAP_FAILED) {
    munmap(pool_base, pool_size);
    close(pool_fd);
    close(ctrl_fd);
    return status::internal(std::string("mmap(ctrl): ") +
                            std::strerror(errno));
  }

  auto* ctrl = new (ctrl_raw) CtrlBlock{};
  pthread_mutexattr_t attr;
  pthread_mutexattr_init(&attr);
  pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  pthread_mutex_init(&ctrl->pool_mutex, &attr);
  pthread_mutexattr_destroy(&attr);

  log_info("cxlsim: created pooled device: %zu MiB, %u heads",
           pool_size >> 20, heads);
  auto device = std::unique_ptr<DaxDevice>(
      new DaxDevice(pool_fd, static_cast<std::byte*>(pool_base), pool_size,
                    ctrl_fd, ctrl, heads, timing));
  if (const char* env = std::getenv("CMPI_COHERENCE_CHECK");
      env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    device->enable_coherence_checker();
  }
  return device;
}

DaxDevice::DaxDevice(int pool_fd, std::byte* pool_base, std::size_t size,
                     int ctrl_fd, CtrlBlock* ctrl, unsigned heads,
                     const CxlTimingParams& timing)
    : pool_fd_(pool_fd),
      pool_base_(pool_base),
      size_(size),
      ctrl_fd_(ctrl_fd),
      ctrl_(ctrl),
      heads_(heads),
      timing_(timing) {}

DaxDevice::~DaxDevice() {
  if (ctrl_ != nullptr) {
    pthread_mutex_destroy(&ctrl_->pool_mutex);
    munmap(ctrl_, sizeof(CtrlBlock));
  }
  if (ctrl_fd_ >= 0) {
    close(ctrl_fd_);
  }
  if (pool_base_ != nullptr) {
    munmap(pool_base_, size_);
  }
  if (pool_fd_ >= 0) {
    close(pool_fd_);
  }
}

Status DaxDevice::set_cacheability(std::uint64_t offset, std::uint64_t size,
                                   Cacheability type) {
  if (size == 0 || offset + size > size_) {
    return status::invalid_argument("MTRR range outside the pool");
  }
  MtrrTable& table = ctrl_->mtrr;
  // Reprogramming an existing range replaces it.
  for (std::uint32_t i = 0; i < table.count; ++i) {
    if (table.ranges[i].offset == offset && table.ranges[i].size == size) {
      table.ranges[i].type = type;
      return Status::ok();
    }
  }
  if (table.count == MtrrTable::kMaxRanges) {
    return status::capacity_exceeded("MTRR register file full");
  }
  table.ranges[table.count++] = {offset, size, type};
  return Status::ok();
}

CoherenceChecker& DaxDevice::enable_coherence_checker() {
  if (checker_ == nullptr) {
    checker_ = std::make_unique<CoherenceChecker>();
  }
  return *checker_;
}

void DaxDevice::disable_coherence_checker() { checker_.reset(); }

FaultInjector& DaxDevice::install_fault_plan(FaultPlan plan) {
  fault_injector_ = std::make_unique<FaultInjector>(std::move(plan));
  return *fault_injector_;
}

void DaxDevice::clear_fault_plan() { fault_injector_.reset(); }

void DaxDevice::register_cache(CacheSim* cache) {
  std::lock_guard lock(cache_registry_mutex_);
  caches_.push_back(cache);
}

void DaxDevice::unregister_cache(CacheSim* cache) {
  if (checker_ != nullptr) {
    checker_->on_cache_detached(cache);
  }
  std::lock_guard lock(cache_registry_mutex_);
  std::erase(caches_, cache);
}

std::size_t DaxDevice::attached_caches() const {
  std::lock_guard lock(cache_registry_mutex_);
  return caches_.size();
}

void DaxDevice::bi_write_acquire(std::uint64_t line_offset, CacheSim* self) {
  std::lock_guard lock(cache_registry_mutex_);
  for (CacheSim* cache : caches_) {
    if (cache != self) {
      cache->external_invalidate(line_offset);
    }
  }
}

void DaxDevice::bi_read_acquire(std::uint64_t line_offset, CacheSim* self) {
  std::lock_guard lock(cache_registry_mutex_);
  for (CacheSim* cache : caches_) {
    if (cache != self) {
      cache->external_writeback(line_offset);
    }
  }
}

Cacheability DaxDevice::cacheability(std::uint64_t offset) const noexcept {
  const MtrrTable& table = ctrl_->mtrr;
  for (std::uint32_t i = 0; i < table.count; ++i) {
    const auto& r = table.ranges[i];
    if (offset >= r.offset && offset < r.offset + r.size) {
      return r.type;
    }
  }
  return Cacheability::kWriteBack;
}

}  // namespace cmpi::cxlsim
