#include "cxlsim/timing.hpp"

#include <algorithm>
#include <cmath>

#include "common/align.hpp"

namespace cmpi::cxlsim {

simtime::Ns CxlTimingModel::cpu_copy_cost(std::size_t bytes) const noexcept {
  if (bytes == 0) {
    return 0;
  }
  double rate = params_.cpu_copy_bytes_per_ns;
  if (bytes > params_.contention_threshold) {
    // Working set exceeds the cache-friendly size: concurrent streams evict
    // each other and contend for DIMM row buffers. The slowdown grows with
    // how far past the threshold the message is (log2 scale, saturating)
    // and with the number of other active streams.
    const double excess =
        std::min(1.0, std::log2(static_cast<double>(bytes) /
                                static_cast<double>(
                                    params_.contention_threshold)) /
                          params_.contention_span_log2);
    const int others = std::max(0, active_streams() - 1);
    rate /= 1.0 + params_.contention_alpha * excess *
                      static_cast<double>(others);
  }
  return static_cast<double>(bytes) / rate;
}

simtime::Ns CxlTimingModel::uncached_cost(std::size_t total_size) const noexcept {
  const std::size_t lines = ceil_div(std::max<std::size_t>(total_size, 1),
                                     kCacheLineSize);
  const simtime::Ns per_line = total_size > params_.pcie_mps
                                   ? params_.uc_line_cost_large
                                   : params_.uc_line_cost_small;
  return static_cast<simtime::Ns>(lines) * per_line;
}

}  // namespace cmpi::cxlsim
