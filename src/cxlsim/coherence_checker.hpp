// Dynamic coherence-protocol checker for the simulated CXL pool.
//
// The pooled device has no cross-host cache coherence, so every protocol
// layer (SPSC rings, PSCW flags, the bakery lock, the sequence barrier)
// must manage coherence in software: flush after writes, invalidate before
// reads, fence before publishing a flag (§3.5). The checker turns that
// discipline into a machine-checked property: CacheSim and Accessor report
// every line-granular event (cached read/write, writeback, invalidate,
// NT access, flag publish) and the checker replays them against an
// event-sourced model of which cache holds which version of every line.
//
// Violation taxonomy:
//   * kStaleRead    — a load observed data older than a version another
//                     node's cache holds dirty (no intervening writeback +
//                     invalidate), or a cached hit on a copy the pool has
//                     since overtaken.
//   * kLostUpdate   — a store to a line concurrently dirty in another
//                     node's cache; whichever writeback lands last silently
//                     clobbers the other write.
//   * kTornPublish  — a flag publish whose annotated payload lines were
//                     still dirty in the publisher's cache (the flag becomes
//                     visible before the data it covers).
//   * kFenceOrder   — a raw store to a registered flag word while the rank
//                     had unfenced writes outstanding (publish before
//                     sfence).
//
// The checker is an interposition layer: it never alters functional or
// timing behaviour, it only records. It is owned by the DaxDevice, enabled
// via UniverseConfig::coherence_check or the CMPI_COHERENCE_CHECK
// environment variable (the test suite sets it for every test), and off by
// default so benchmarks pay nothing.
//
// Thread model: hooks are called from rank threads (often with a CacheSim
// mutex held); the checker has its own mutex and never calls back into a
// cache, so lock order is always cache -> checker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/align.hpp"

namespace cmpi::cxlsim {

class CacheSim;

class CoherenceChecker {
 public:
  enum class Kind : std::uint8_t {
    kStaleRead = 0,
    kLostUpdate = 1,
    kTornPublish = 2,
    kFenceOrder = 3,
  };
  static constexpr std::size_t kKindCount = 4;

  /// Short stable name for a violation kind ("stale-read", ...).
  static std::string_view kind_name(Kind kind) noexcept;

  struct Violation {
    Kind kind = Kind::kStaleRead;
    int rank = -1;               ///< observing rank (-1: outside a rank thread)
    std::uint64_t offset = 0;    ///< pool byte offset of the access
    const char* op = "";         ///< operation label ("cached-load", ...)
    std::string detail;          ///< human-readable specifics
  };

  struct Summary {
    std::uint64_t by_kind[kKindCount] = {0, 0, 0, 0};

    [[nodiscard]] std::uint64_t total() const noexcept {
      std::uint64_t sum = 0;
      for (const std::uint64_t n : by_kind) {
        sum += n;
      }
      return sum;
    }
    [[nodiscard]] std::uint64_t count(Kind kind) const noexcept {
      return by_kind[static_cast<std::size_t>(kind)];
    }
  };

  /// Violations beyond this many are counted in the summary but not stored.
  static constexpr std::size_t kMaxStoredViolations = 1024;

  /// Tag the calling thread with its MPI rank for violation attribution.
  /// Universe::run does this for every rank thread; standalone tests call
  /// it manually. -1 (the default) means "not a rank thread".
  static void set_current_rank(int rank) noexcept;
  [[nodiscard]] static int current_rank() noexcept;

  /// RAII scope that suppresses kStaleRead reports on the calling thread.
  /// For deliberately optimistic reads that are re-validated later (the
  /// arena's lock-free name probe races a locked writer's transient dirty
  /// window by design).
  class ToleranceScope {
   public:
    ToleranceScope() noexcept;
    ~ToleranceScope();
    ToleranceScope(const ToleranceScope&) = delete;
    ToleranceScope& operator=(const ToleranceScope&) = delete;
  };

  // --- CacheSim hooks (line_offset is cacheline-aligned) ---
  void on_cached_read(const CacheSim* cache, std::uint64_t line_offset,
                      bool hit);
  void on_cached_write(const CacheSim* cache, std::uint64_t line_offset);
  /// A dirty line's data reached the pool (clflush/clwb/eviction/wbinvd).
  void on_writeback(const CacheSim* cache, std::uint64_t line_offset);
  /// A (possibly clean) line left the cache.
  void on_invalidate(const CacheSim* cache, std::uint64_t line_offset);
  /// Multi-byte NT store landed in the pool (own copies already evicted).
  void on_pool_write(const CacheSim* cache, std::uint64_t offset,
                     std::size_t size);
  /// Multi-byte NT load from the pool (own dirty lines merged by CacheSim).
  void on_pool_read(const CacheSim* cache, std::uint64_t offset,
                    std::size_t size);
  /// Lock-free 8-byte flag accesses (no merge with any cache).
  void on_pool_write_u64(const CacheSim* cache, std::uint64_t offset);
  void on_pool_read_u64(const CacheSim* cache, std::uint64_t offset);
  /// A cache left the coherence domain; forget its copies.
  void on_cache_detached(const CacheSim* cache);

  // --- Accessor hooks ---
  /// A timestamped flag publish. Registers the 16-byte flag for
  /// fence-order checking and verifies every annotated payload range is
  /// clean in the publisher's cache.
  void on_publish(
      const CacheSim* cache, std::uint64_t flag_offset,
      std::span<const std::pair<std::uint64_t, std::size_t>> payload);
  /// A raw Accessor::nt_store_u64. `fenced` is false when the rank has
  /// unfenced writes outstanding.
  void on_flag_store(const CacheSim* cache, std::uint64_t offset, bool fenced);

  // --- Results ---
  [[nodiscard]] Summary summary() const;
  [[nodiscard]] std::uint64_t total_violations() const;
  /// Stored violations (up to kMaxStoredViolations), in discovery order.
  [[nodiscard]] std::vector<Violation> violations() const;
  /// One-line report, e.g. "4 violations (stale-read 2, ... )".
  [[nodiscard]] std::string summary_string() const;
  void clear();

 private:
  /// One cache's copy of a line, by version.
  struct Copy {
    const CacheSim* cache = nullptr;
    std::uint64_t version = 0;  ///< version of `latest` the copy reflects
    bool dirty = false;
  };

  /// Event-sourced state of one 64-byte pool line.
  struct LineState {
    std::uint64_t latest = 0;  ///< newest version written anywhere
    std::uint64_t pool = 0;    ///< newest version the pool itself holds
    std::vector<Copy> copies;
    /// 8-byte-aligned offsets of flag value-words registered by publishes
    /// on this line (cleared when the line is rewritten as plain data).
    std::vector<std::uint64_t> flag_words;
  };

  using LineMap = std::unordered_map<std::uint64_t, LineState>;

  static Copy* find_copy(LineState& state, const CacheSim* cache) noexcept;
  /// Drop map entries that carry no information (no copies, no flags):
  /// recreating them later at version zero preserves detection.
  void maybe_gc(LineMap::iterator it);
  void record(Kind kind, std::uint64_t offset, const char* op,
              std::string detail);
  /// Shared stale-read rule: report if any *other* cache holds the line
  /// dirty at a version newer than what this access can observe.
  void check_read_observes(const LineState& state, const CacheSim* cache,
                           std::uint64_t line_offset,
                           std::uint64_t observed_version, const char* op);

  mutable std::mutex mutex_;
  LineMap lines_;
  std::vector<Violation> log_;
  Summary summary_;
};

}  // namespace cmpi::cxlsim
