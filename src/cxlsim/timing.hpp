// Timing model of the simulated CXL pooled-memory platform.
//
// Calibration sources (all from the paper):
//   Table 1 — 8 B access latency 790 ns (cached, no flush), 2.2 us (with
//             flush); streaming bandwidth 9.9 GB/s (cached) / 9.5 GB/s
//             (flushed); host DRAM 100 ns / 132.8 GB/s.
//   §4.5 / Fig. 11 — clflushopt up to 4x cheaper than clflush per line;
//             both ~2-3 us for a single line; MTRR-uncachable accesses
//             jump past 4096 us once the size exceeds the PCIe MPS
//             write-combining regime (~2 KiB).
//   §4.2 — CXL one-sided bandwidth saturates ~8.6 GB/s at 16 procs and
//             declines past 16 KiB messages (memory-hierarchy contention);
//             two-sided peaks ~30% lower because every byte crosses the
//             device twice.
#pragma once

#include <atomic>
#include <cstddef>

#include "simtime/busy_resource.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::cxlsim {

struct CxlTimingParams {
  // --- Transaction latencies (ns) ---
  simtime::Ns line_fill_latency = 790;    ///< cold 64 B read from the pool
  simtime::Ns line_write_latency = 430;   ///< posted 64 B write to the pool
  simtime::Ns cache_hit_latency = 2;      ///< node-local cache hit
  simtime::Ns clflush_per_line = 480;     ///< serialized flush round
  simtime::Ns clflushopt_per_line = 120;  ///< overlapped flush round
  simtime::Ns flush_base = 1300;          ///< first-flush setup + drain
  simtime::Ns fence_cost = 50;            ///< sfence/lfence issue cost
  simtime::Ns nt_store_latency = 1000;    ///< 8 B non-temporal store
  simtime::Ns nt_load_latency = 900;      ///< 8 B non-temporal load

  // --- Uncachable (MTRR=UC) path, §4.5 ---
  /// PCIe Maximum Payload Size: below this, the write-combining buffer
  /// coalesces UC stores into efficient TLPs; above it every line becomes
  /// a separate serialized TLP exchange.
  std::size_t pcie_mps = 2048;
  simtime::Ns uc_line_cost_small = 1050;   ///< per 64 B line, size <= MPS
  simtime::Ns uc_line_cost_large = 32000;  ///< per 64 B line, size > MPS

  // --- Streaming rates (bytes per ns == GB/s) ---
  double device_bytes_per_ns = 9.9;   ///< device DIMMs + CXL link cap
  double read_cost_factor = 0.65;     ///< device reads cheaper than writes
  double cpu_copy_bytes_per_ns = 2.0; ///< single-stream CPU mov to/from pool
  double local_mem_bytes_per_ns = 132.8;  ///< host-local DRAM streaming

  // --- CXL 3.0 Back-Invalidate hardware coherence (§3.5) ---
  /// When true, the device keeps node caches coherent in hardware: plain
  /// cached accesses are globally visible with no software flushes, but
  /// every miss/ownership change pays a snoop transaction whose cost
  /// grows with the number of attached caches (and a directory lookup in
  /// device DRAM — the paper's argument for why a precise snoop filter
  /// does not scale to large pooled memory).
  bool hw_coherence = false;
  simtime::Ns bi_snoop_base = 300;       ///< issue a BI transaction
  simtime::Ns bi_snoop_per_cache = 250;  ///< per additional attached cache
  simtime::Ns bi_directory_lookup = 300; ///< directory access in device DRAM

  // --- Memory-hierarchy contention for large working sets (§4.2) ---
  /// Messages at or below this size are cache-friendly; beyond it, multiple
  /// concurrent streams degrade each other's effective CPU copy rate.
  std::size_t contention_threshold = 16 * 1024;
  double contention_alpha = 0.8;       ///< strength of cross-stream slowdown
  double contention_span_log2 = 9.0;   ///< slowdown saturates at thr << 9 (8 MiB)
};

/// Shared timing state of the device: the streaming-bandwidth server that
/// all heads contend on and the gauge of concurrently active bulk streams.
/// Thread-safe.
class CxlTimingModel {
 public:
  explicit CxlTimingModel(const CxlTimingParams& params)
      : params_(params), device_(params.device_bytes_per_ns) {}

  [[nodiscard]] const CxlTimingParams& params() const noexcept {
    return params_;
  }

  /// Reserve device streaming bandwidth for a bulk transfer of `bytes`
  /// becoming ready at `ready`; returns completion time. Reads consume
  /// less device service time than writes (row-buffer-friendly).
  /// `wfq_class` attributes the transfer for weighted fair queueing
  /// (0 = unattributed, the single-tenant default).
  simtime::Ns reserve_device(simtime::Ns ready, std::size_t bytes,
                             bool is_read, unsigned wfq_class = 0) {
    const auto cost_bytes = static_cast<std::size_t>(
        is_read ? static_cast<double>(bytes) * params_.read_cost_factor
                : static_cast<double>(bytes));
    return device_.reserve_for(wfq_class, ready, cost_bytes);
  }

  /// Guarantee `fraction` of device bandwidth to a WFQ class (tenant).
  /// See simtime::BusyResource::set_share.
  void set_bandwidth_share(unsigned wfq_class, double fraction) {
    device_.set_share(wfq_class, fraction);
  }
  /// Withdraw a class's bandwidth guarantee (tenant leave).
  void clear_bandwidth_share(unsigned wfq_class) {
    device_.clear_share(wfq_class);
  }
  /// Registered bandwidth guarantee of a class (0.0 when none).
  [[nodiscard]] double bandwidth_share(unsigned wfq_class) const {
    return device_.share(wfq_class);
  }

  /// CPU-side cost of copying `bytes` between host memory and the pool,
  /// including the large-working-set contention penalty for the current
  /// number of active streams.
  [[nodiscard]] simtime::Ns cpu_copy_cost(std::size_t bytes) const noexcept;

  /// RAII gauge of concurrently active bulk copy streams.
  class StreamScope {
   public:
    explicit StreamScope(CxlTimingModel& model) noexcept : model_(&model) {
      model_->active_streams_.fetch_add(1, std::memory_order_relaxed);
    }
    ~StreamScope() {
      model_->active_streams_.fetch_sub(1, std::memory_order_relaxed);
    }
    StreamScope(const StreamScope&) = delete;
    StreamScope& operator=(const StreamScope&) = delete;

   private:
    CxlTimingModel* model_;
  };

  [[nodiscard]] int active_streams() const noexcept {
    return active_streams_.load(std::memory_order_relaxed);
  }

  /// Cost of an uncachable access of `total_size` bytes starting inside a
  /// UC MTRR range (per-line serialized TLPs; regime depends on size).
  [[nodiscard]] simtime::Ns uncached_cost(std::size_t total_size) const noexcept;

  /// Drop accumulated busy state (benchmark iteration boundaries).
  void reset() { device_.reset(); }

 private:
  const CxlTimingParams params_;
  simtime::BusyResource device_;
  std::atomic<int> active_streams_{0};
};

}  // namespace cmpi::cxlsim
