// Per-rank access path to the simulated CXL pool.
//
// Every CXL SHM touch in the upper layers (arena metadata, message cells,
// RMA windows, synchronization flags) goes through an Accessor, which
// performs the functional operation on the owning node's CacheSim and
// charges the rank's virtual clock according to the device timing model.
//
// Operation classes, mirroring §3.5 of the paper:
//   * cached load/store/memset — write-back, may be stale/invisible until
//     flushed; per-line latency charges (control-plane sized data),
//   * clflush / clflushopt / clwb + sfence/lfence — software coherence,
//   * non-temporal ops — bypass the cache; u64 variants are the lock-free
//     synchronization-flag primitives (head/tail pointers, PSCW flags),
//   * bulk_write / bulk_read — streaming payload copies with the pipelined
//     CPU + device bandwidth model (and contention gauge),
//   * timestamped flags — an 8-byte value plus an 8-byte virtual-time stamp
//     published together, the mechanism that propagates causality between
//     rank clocks (see simtime/vclock.hpp).
//
// An Accessor is owned by exactly one rank thread; it is not thread-safe
// (the CacheSim and device underneath are).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "cxlsim/cache_sim.hpp"
#include "cxlsim/dax_device.hpp"
#include "cxlsim/fault_injector.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::cxlsim {

/// Blast-radius counters for a tenant fault domain (see
/// Accessor::set_fault_domain). Shared by every accessor of one tenant;
/// a multi-tenant pool service asserts these stay zero to prove that a
/// tenant's traffic — including its crash recovery and fsck — never
/// touched another tenant's region.
struct DomainCounters {
  std::atomic<std::uint64_t> writes_outside{0};
  std::atomic<std::uint64_t> reads_outside{0};
};

class Accessor {
 public:
  Accessor(DaxDevice& device, CacheSim& node_cache, simtime::VClock& clock)
      : device_(device), cache_(node_cache), clock_(clock) {}

  Accessor(const Accessor&) = delete;
  Accessor& operator=(const Accessor&) = delete;

  // --- Cached (write-back) accesses; per-line latency charges ---
  void store(std::uint64_t offset, std::span<const std::byte> src);
  void load(std::uint64_t offset, std::span<std::byte> dst);
  void memset(std::uint64_t offset, std::byte value, std::size_t size);

  // --- Flush family ---
  void clflush(std::uint64_t offset, std::size_t size);
  void clflushopt(std::uint64_t offset, std::size_t size);
  void clwb(std::uint64_t offset, std::size_t size);

  /// Store fence: waits (in virtual time) for outstanding write-backs to
  /// reach the device.
  void sfence();
  /// Load fence: ordering cost only.
  void lfence();

  // --- §3.5 composite coherence helpers ---
  /// "After every write, flush + fence": cached store, clflushopt, sfence.
  void coherent_write(std::uint64_t offset, std::span<const std::byte> src);
  /// "Before every read, fence + flush": lfence, invalidate, cached load.
  void coherent_read(std::uint64_t offset, std::span<std::byte> dst);

  // --- Non-temporal accesses ---
  void nt_store(std::uint64_t offset, std::span<const std::byte> src);
  void nt_load(std::uint64_t offset, std::span<std::byte> dst);
  std::uint64_t nt_load_u64(std::uint64_t offset);
  void nt_store_u64(std::uint64_t offset, std::uint64_t value);

  /// Poll-read one bare u64 without charging time (failed polls are
  /// waiting, not work — the doorbell-word analogue of peek_flag).
  [[nodiscard]] std::uint64_t peek_u64(std::uint64_t offset);

  /// Fire-and-forget hint store of one u64 (doorbell words). The value is
  /// a monotonic wake-up hint that carries no payload and orders against
  /// nothing: a reader that misses it only sleeps until its next periodic
  /// re-check. Charges a store-buffer retire (cache-hit latency), not a
  /// full NT-store round, and does not join the sfence drain set.
  void hint_store_u64(std::uint64_t offset, std::uint64_t value);

  /// Whether a bulk op pays the flush/invalidate sweep's setup cost.
  /// kBatched is for the second and later ops of one reap/publish batch:
  /// the sweep is issued once for the whole batch, so only the first op
  /// charges flush_base (per-byte costs are always charged).
  enum class BulkCharge { kFull, kBatched };

  // --- Streaming payload copies (message cells, RMA data) ---
  /// Local buffer -> pool. Functionally non-temporal (immediately visible
  /// to other heads); charges the CPU copy cost and reserves device write
  /// bandwidth. Device completion is folded into the next sfence.
  void bulk_write(std::uint64_t offset, std::span<const std::byte> src,
                  BulkCharge charge = BulkCharge::kFull);
  /// Pool -> local buffer; charges CPU copy and device read bandwidth.
  void bulk_read(std::uint64_t offset, std::span<std::byte> dst,
                 BulkCharge charge = BulkCharge::kFull);

  // --- Timestamped synchronization flags ---
  /// Layout: [u64 value][u64 vtime bits]; 16 bytes, 8-byte aligned.
  static constexpr std::size_t kFlagBytes = 16;

  struct FlagValue {
    std::uint64_t value = 0;
    simtime::Ns stamp = 0;
  };

  /// Publish value + the caller's current virtual time. Issues an sfence
  /// first so the stamp covers all prior writes (release semantics).
  void publish_flag(std::uint64_t offset, std::uint64_t value);

  /// Read a flag without charging time (failed polls are waiting, not
  /// work; see the runtime's wait loops).
  [[nodiscard]] FlagValue peek_flag(std::uint64_t offset);

  /// Charge one NT-load round and absorb the publisher's stamp into this
  /// rank's clock. Call exactly once per observed transition.
  void absorb_flag(const FlagValue& flag);

  /// Coherence-checker hint: declare that the NEXT publish_flag covers
  /// `[offset, offset + size)` as payload (the reader will consume that
  /// range after observing the flag). The checker verifies the range is
  /// clean in the publisher's cache at publish time ("torn publish"
  /// detection). No-op when checking is off; never affects timing.
  void annotate_publish_range(std::uint64_t offset, std::size_t size);

  // --- Fault injection (see fault_injector.hpp) ---
  /// Report a named sync point to the fault injector (no-op when no plan
  /// is installed). Protocol layers call this at scripted kill locations:
  /// "barrier-enter", "lock-acquired", "window-put", ... May throw
  /// RankCrashed on the scripted rank.
  void fault_sync_point(std::string_view point) {
    if (FaultInjector* fi = device_.fault_injector()) {
      fi->on_sync_point(point);
    }
  }

  /// Whether any read this Accessor performed since the last
  /// take_poison_status touched a poisoned range (sticky; cleared by
  /// take_poison_status). Always false when no fault plan is installed.
  [[nodiscard]] bool poison_pending() const noexcept { return poison_seen_; }

  /// Consume the sticky poison flag: returns kDataPoisoned naming the
  /// first poisoned offset when set (and clears it), Status::ok otherwise.
  /// The §3.5 discipline for media errors: check after reading a range
  /// whose integrity the caller must vouch for.
  Status take_poison_status(std::string_view context);

  // --- Multi-tenant pool service hooks (see runtime/pool_service.hpp) ---
  /// Attribute this accessor's device bandwidth to a WFQ class (tenant).
  /// 0 (the default) is unattributed — no guarantee, classic sharing.
  void set_wfq_class(unsigned cls) noexcept { wfq_class_ = cls; }
  [[nodiscard]] unsigned wfq_class() const noexcept { return wfq_class_; }

  /// Declare this accessor's tenant fault domain [base, base + size):
  /// every access outside the range bumps the matching blast-radius
  /// counter (the access still performs — the counters *detect* isolation
  /// breaches, they do not mask them). `counters` must outlive the
  /// accessor. size == 0 disables the fence (the single-tenant default).
  void set_fault_domain(std::uint64_t base, std::uint64_t size,
                        DomainCounters* counters) noexcept {
    domain_base_ = base;
    domain_size_ = size;
    domain_counters_ = counters;
  }

  [[nodiscard]] simtime::VClock& clock() noexcept { return clock_; }
  [[nodiscard]] DaxDevice& device() noexcept { return device_; }
  [[nodiscard]] CacheSim& node_cache() noexcept { return cache_; }

 private:
  [[nodiscard]] bool is_uncachable(std::uint64_t offset) const noexcept {
    return device_.cacheability(offset) == Cacheability::kUncachable;
  }
  void charge_flush(const CacheSim::FlushResult& result,
                    simtime::Ns per_line_cost);

  /// Fault hook at the top of every data operation: counts the access for
  /// crash-at-Nth scheduling (may throw RankCrashed) and, on reads, tags
  /// poison overlap. Polling reads (peek_flag) check poison but are not
  /// counted — their iteration count is wall-clock dependent, and crash
  /// schedules must stay deterministic.
  void fault_access(std::uint64_t offset, std::size_t size, bool is_read) {
    domain_check(offset, size, is_read);
    if (FaultInjector* fi = device_.fault_injector()) {
      fi->on_access();
      if (is_read && fi->check_poison(offset, size) && !poison_seen_) {
        poison_seen_ = true;
        poison_offset_ = offset;
      }
    }
  }
  void fault_poll_read(std::uint64_t offset, std::size_t size) {
    domain_check(offset, size, /*is_read=*/true);
    if (FaultInjector* fi = device_.fault_injector()) {
      if (fi->check_poison(offset, size) && !poison_seen_) {
        poison_seen_ = true;
        poison_offset_ = offset;
      }
    }
  }
  /// Blast-radius fence: count accesses leaving the tenant fault domain.
  /// One compare on the common (in-domain or un-fenced) path.
  void domain_check(std::uint64_t offset, std::size_t size,
                    bool is_read) noexcept {
    if (domain_size_ == 0) {
      return;
    }
    if (offset >= domain_base_ && offset + size <= domain_base_ + domain_size_) {
      return;
    }
    auto& counter = is_read ? domain_counters_->reads_outside
                            : domain_counters_->writes_outside;
    counter.fetch_add(1, std::memory_order_relaxed);
  }
  /// Degraded-link multiplier on flush write-back / line-fill latencies.
  [[nodiscard]] double fault_latency_multiplier() const noexcept {
    const FaultInjector* fi = device_.fault_injector();
    return fi == nullptr ? 1.0 : fi->latency_multiplier();
  }

  DaxDevice& device_;
  CacheSim& cache_;
  simtime::VClock& clock_;
  /// Latest device completion stamp of writes this rank issued but has not
  /// yet fenced (flush write-backs, NT stores, bulk writes).
  simtime::Ns pending_drain_ = 0;
  /// Functional mirror of pending_drain_ for the coherence checker: true
  /// while this rank has issued writes (flush write-backs, bulk/NT stores)
  /// not yet covered by an sfence. Unlike the timing predicate it does not
  /// depend on where the virtual clock happens to sit.
  bool writes_since_fence_ = false;
  /// Payload ranges accumulated by annotate_publish_range, consumed by the
  /// next publish_flag.
  std::vector<std::pair<std::uint64_t, std::size_t>> publish_ranges_;
  /// Sticky media-error flag: a read touched a poisoned range (fault
  /// injection); consumed by take_poison_status.
  bool poison_seen_ = false;
  std::uint64_t poison_offset_ = 0;
  /// WFQ class for device-bandwidth attribution (0 = unattributed).
  unsigned wfq_class_ = 0;
  /// Tenant fault domain; size 0 = fence disabled.
  std::uint64_t domain_base_ = 0;
  std::uint64_t domain_size_ = 0;
  DomainCounters* domain_counters_ = nullptr;
};

}  // namespace cmpi::cxlsim
