// Self-tuning configuration carried by runtime::UniverseConfig.
//
// Deliberately dependency-free (std only): runtime/universe.hpp embeds a
// TuneOptions value, and the heavier tune machinery (Policy, Controller,
// DispatchTable) must stay out of that include graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cmpi::tune {

/// Tri-state enable for the runtime controller, mirroring
/// runtime::CoherenceChecking: tests force it on/off in code, everything
/// else follows the environment.
enum class Tuning {
  kAuto,      ///< follow the CMPI_TUNE environment variable (off unset)
  kEnabled,   ///< always run the per-rank controller
  kDisabled,  ///< never run it, even if the environment asks
};

struct TuneOptions {
  Tuning mode = Tuning::kAuto;
  /// Virtual-time controller poll period (nanoseconds). Each rank's
  /// endpoint re-evaluates its per-destination knobs at most this often
  /// from the progress path.
  double period_ns = 200'000;  // 200 us virtual
  /// Warm-start dispatch table (bench/autotune output). Empty = follow
  /// CMPI_TUNE_TABLE; unset there too = no prior (AIMD rules only).
  std::string table_path;
  /// Seed for the controller's exploration jitter. 0 = derive from
  /// CMPI_FAULT_SEED (so the CI fault matrix perturbs exploration the
  /// same way it perturbs kill schedules), falling back to a fixed
  /// default. The per-rank controller mixes its rank in, so ranks
  /// explore independently but reproducibly.
  std::uint64_t seed = 0;
};

}  // namespace cmpi::tune
