// Environment/UniverseConfig resolution for the tuning subsystem: is the
// controller on, which dispatch table warms it up, which seed drives its
// exploration. Kept apart from Policy/Controller so those stay pure and
// unit-testable (no getenv inside either).
#pragma once

#include <cstdint>
#include <memory>

#include "tune/dispatch_table.hpp"
#include "tune/options.hpp"

namespace cmpi::tune {

/// kAuto follows CMPI_TUNE (unset/"0" = off); kEnabled/kDisabled win
/// outright.
[[nodiscard]] bool tuning_enabled(const TuneOptions& options);

/// The warm-start dispatch table for these options: options.table_path,
/// else CMPI_TUNE_TABLE, else none (nullptr). Tables are loaded once per
/// path and shared process-wide (every rank endpoint asks). A missing or
/// malformed file logs a warning once and returns nullptr — tuning
/// degrades to pure AIMD, it never fails the run.
[[nodiscard]] std::shared_ptr<const DispatchTable> shared_table(
    const TuneOptions& options);

/// Exploration seed: options.seed, else CMPI_FAULT_SEED, else a fixed
/// default — mixed with the rank so each controller's stream is distinct
/// but reproducible.
[[nodiscard]] std::uint64_t resolve_seed(const TuneOptions& options, int rank);

}  // namespace cmpi::tune
