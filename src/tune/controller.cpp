#include "tune/controller.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace cmpi::tune {

GlobalSignals gather_global_signals(std::uint64_t retransmits) {
  GlobalSignals g;
  g.retransmits = retransmits;
  if (!obs::metrics_enabled()) {
    return g;
  }
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::instance().snapshot();
  const auto hits = static_cast<double>(snap.counter("cache.hits"));
  const auto misses = static_cast<double>(snap.counter("cache.misses"));
  if (hits + misses > 0) {
    g.cache_hit_rate = hits / (hits + misses);
  }
  const auto it = snap.gauges.find("p2p.unexpected_queue_depth");
  if (it != snap.gauges.end()) {
    g.queue_depth_hw = it->second;
  }
  return g;
}

Controller::Controller(const ControllerConfig& config,
                       const DispatchTable* table)
    : config_(config),
      table_(table),
      rng_(config.seed),
      next_poll_ns_(config.period_ns) {}

void Controller::journal_change(simtime::Ns now, int dst,
                                Decision::Knob knob, std::uint64_t from,
                                std::uint64_t to, const char* reason) {
  if (journal_.size() < kMaxJournalEntries) {
    journal_.push_back(Decision{now, dst, knob, from, to, reason});
  }
  CMPI_OBS_INSTANT_ARG("tune.decision", "to", to);
}

void Controller::poll(simtime::Ns now, Policy& policy,
                      const GlobalSignals& global) {
  ++polls_;
  next_poll_ns_ = now + config_.period_ns;
  if (dests_.empty()) {
    dests_.resize(static_cast<std::size_t>(policy.ndests()));
  }
  // Fresh retransmits anywhere in the universe mean the data path is
  // re-reading slabs / re-staging cells: treat it like backpressure on
  // every destination this poll.
  const bool retransmitting = global.retransmits > last_retransmits_;
  last_retransmits_ = global.retransmits;
  // A collapsed device cache means wider pipelines only add conflict
  // misses; hold quantum growth until it recovers.
  const bool cache_cold =
      global.cache_hit_rate >= 0 && global.cache_hit_rate < 0.25;

  for (int dst = 0; dst < policy.ndests(); ++dst) {
    DestState& state = dests_[static_cast<std::size_t>(dst)];
    const DestSignals& cur = policy.signals(dst);
    const DestSignals delta{
        cur.eager_messages - state.last.eager_messages,
        cur.eager_bytes - state.last.eager_bytes,
        cur.rdvz_messages - state.last.rdvz_messages,
        cur.rdvz_bytes - state.last.rdvz_bytes,
        cur.ring_full - state.last.ring_full,
        cur.inflight_blocked - state.last.inflight_blocked,
    };
    state.last = cur;
    const std::uint64_t msgs = delta.eager_messages + delta.rdvz_messages;
    if (msgs == 0 && delta.ring_full == 0 && delta.inflight_blocked == 0) {
      state.pending_polls = 0;  // idle destination: nothing to learn
      continue;
    }
    KnobSettings& knobs = policy.mutable_settings(dst);

    // --- Rendezvous threshold: dispatch-table prior + hysteresis band ---
    if (table_ != nullptr && msgs > 0) {
      const std::uint64_t avg_bytes =
          (delta.eager_bytes + delta.rdvz_bytes) / msgs;
      const DispatchEntry* prior = table_->lookup(
          static_cast<std::size_t>(avg_bytes), config_.cell_payload);
      if (prior != nullptr && prior->rendezvous_threshold != 0) {
        const std::size_t candidate =
            std::clamp(prior->rendezvous_threshold, config_.min_threshold,
                       config_.max_threshold);
        const auto curv = static_cast<double>(knobs.rendezvous_threshold);
        const bool outside_band =
            static_cast<double>(candidate) >
                curv * (1.0 + config_.hysteresis_ratio) ||
            static_cast<double>(candidate) <
                curv * (1.0 - config_.hysteresis_ratio);
        if (candidate != knobs.rendezvous_threshold && outside_band) {
          if (candidate == state.pending_threshold) {
            ++state.pending_polls;
          } else {
            state.pending_threshold = candidate;
            state.pending_polls = 1;
          }
          if (state.pending_polls >= config_.hysteresis_polls) {
            journal_change(now, dst, Decision::Knob::kThreshold,
                           knobs.rendezvous_threshold, candidate, "prior");
            knobs.rendezvous_threshold = candidate;
            state.pending_polls = 0;
          }
        } else {
          state.pending_polls = 0;
        }
      }
    }

    // --- Pipeline quantum: AIMD ---
    // Multiplicative decrease on MEDIA pressure (fresh retransmits or a
    // collapsed cache): smaller segments shrink the re-read unit and the
    // conflict-miss footprint. Additive increase while rendezvous traffic
    // flows; ring-full accelerates the increase rather than reversing it —
    // a full ring on the rendezvous path means RTS descriptor slots are
    // the bottleneck, so each descriptor should cover MORE payload (the
    // announced-ahead window is ring_cells x quantum bytes).
    if (retransmitting || cache_cold) {
      const std::size_t halved =
          std::max(config_.min_quantum, knobs.pipeline_quantum / 2);
      if (halved != knobs.pipeline_quantum) {
        journal_change(now, dst, Decision::Knob::kQuantum,
                       knobs.pipeline_quantum, halved, "backpressure");
        knobs.pipeline_quantum = halved;
      }
    } else if (delta.rdvz_messages > 0) {
      const std::size_t step = delta.ring_full > 0 ? 2 * config_.quantum_step
                                                   : config_.quantum_step;
      const std::size_t grown =
          std::min(config_.max_quantum, knobs.pipeline_quantum + step);
      if (grown != knobs.pipeline_quantum) {
        journal_change(now, dst, Decision::Knob::kQuantum,
                       knobs.pipeline_quantum, grown, "aimd-increase");
        knobs.pipeline_quantum = grown;
      }
    }

    // --- Inflight depth: AIMD ---
    if (retransmitting) {
      const std::size_t halved =
          std::max(config_.min_inflight, knobs.inflight_depth / 2);
      if (halved != knobs.inflight_depth) {
        journal_change(now, dst, Decision::Knob::kInflight,
                       knobs.inflight_depth, halved, "backpressure");
        knobs.inflight_depth = halved;
      }
    } else if (delta.inflight_blocked > 0) {
      const std::size_t grown =
          std::min(config_.max_inflight, knobs.inflight_depth + 1);
      if (grown != knobs.inflight_depth) {
        journal_change(now, dst, Decision::Knob::kInflight,
                       knobs.inflight_depth, grown, "inflight-stall");
        knobs.inflight_depth = grown;
      }
    }

    // --- Exploration jitter (seeded; the only randomness in here) ---
    // One quantum step up or down, clamped: keeps the AIMD loop sampling
    // its neighbourhood so a stale plateau is eventually re-measured.
    if (delta.rdvz_messages > 0 && rng_.next_bool(config_.explore_prob)) {
      const bool up = rng_.next_bool(0.5);
      const std::size_t nudged =
          up ? std::min(config_.max_quantum,
                        knobs.pipeline_quantum + config_.quantum_step)
             : std::max(config_.min_quantum,
                        knobs.pipeline_quantum -
                            std::min(knobs.pipeline_quantum,
                                     config_.quantum_step));
      if (nudged != knobs.pipeline_quantum) {
        journal_change(now, dst, Decision::Knob::kQuantum,
                       knobs.pipeline_quantum, nudged, "explore");
        knobs.pipeline_quantum = nudged;
      }
    }
  }
}

}  // namespace cmpi::tune
