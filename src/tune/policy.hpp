// tune::Policy — the knob handle every p2p::Endpoint data-path decision
// routes through.
//
// Two modes:
//
//   * static (tuning off): every accessor returns the defaults resolved
//     from UniverseConfig at Endpoint construction — exactly the
//     constants the code used before this subsystem existed. No
//     per-destination state is consulted, so behaviour is bit-identical
//     to a build without tuning.
//   * adaptive (tuning on): a per-destination KnobSettings vector,
//     mutated between polls by tune::Controller and read by the hot
//     paths with plain loads (policy and endpoint live on the same rank
//     thread; nothing here is shared).
//
// The policy also owns the per-destination traffic signals (eager vs
// rendezvous split, ring-full backpressure, inflight-budget stalls) the
// endpoint feeds from its send paths. They are maintained in BOTH modes:
// the controller consumes them when tuning is on, and the per-destination
// telemetry split is available to benches/tests either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace cmpi::tune {

/// The adaptable knobs, per destination. Zero is never a valid resolved
/// value — construction fills every field from the endpoint's defaults.
struct KnobSettings {
  /// Eager/rendezvous switchover (bytes; strictly-greater goes rendezvous).
  std::size_t rendezvous_threshold = 0;
  /// Cap on the rendezvous segment quantum (was kRendezvousSegmentBytes).
  std::size_t pipeline_quantum = 0;
  /// Un-FINished rendezvous slots allowed in flight toward one
  /// destination (was kMaxRendezvousInflight).
  std::size_t inflight_depth = 0;
  /// Producer-side publish batch bounds (cells / staged payload bytes).
  /// Routed through the policy like the rest; the current controller
  /// leaves them at their defaults (adapting them interacts with the
  /// kill-point determinism discipline — see publish_per_cell_).
  std::size_t publish_batch_cells = 0;
  std::size_t publish_batch_bytes = 0;

  friend bool operator==(const KnobSettings&, const KnobSettings&) = default;
};

/// Per-destination traffic signals. Plain counters: bumped and read on
/// the owning rank thread only (the cross-thread aggregate lives in
/// p2p::CommStats).
struct DestSignals {
  std::uint64_t eager_messages = 0;
  std::uint64_t eager_bytes = 0;
  std::uint64_t rdvz_messages = 0;
  std::uint64_t rdvz_bytes = 0;
  /// Send attempts that hit a full ring (eager chunk or RTS descriptor).
  std::uint64_t ring_full = 0;
  /// Rendezvous sends stalled on the per-destination inflight budget.
  std::uint64_t inflight_blocked = 0;
};

class Policy {
 public:
  Policy() = default;

  static Policy make_static(int ndests, const KnobSettings& defaults) {
    return Policy(ndests, defaults, /*adaptive=*/false);
  }
  static Policy make_adaptive(int ndests, const KnobSettings& defaults) {
    return Policy(ndests, defaults, /*adaptive=*/true);
  }

  [[nodiscard]] bool adaptive() const noexcept { return adaptive_; }
  [[nodiscard]] int ndests() const noexcept {
    return static_cast<int>(signals_.size());
  }
  [[nodiscard]] const KnobSettings& defaults() const noexcept {
    return defaults_;
  }

  /// The knobs governing traffic toward `dst`. Static mode: the defaults,
  /// unconditionally (per_dest_ is never even allocated).
  [[nodiscard]] const KnobSettings& settings(int dst) const noexcept {
    if (!adaptive_) {
      return defaults_;
    }
    return per_dest_[static_cast<std::size_t>(dst)];
  }
  /// Controller-side mutable view (adaptive mode only).
  [[nodiscard]] KnobSettings& mutable_settings(int dst) noexcept {
    CMPI_EXPECTS(adaptive_);
    return per_dest_[static_cast<std::size_t>(dst)];
  }

  [[nodiscard]] DestSignals& signals(int dst) noexcept {
    return signals_[static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] const DestSignals& signals(int dst) const noexcept {
    return signals_[static_cast<std::size_t>(dst)];
  }

 private:
  Policy(int ndests, const KnobSettings& defaults, bool adaptive)
      : defaults_(defaults),
        adaptive_(adaptive),
        signals_(static_cast<std::size_t>(ndests)) {
    if (adaptive_) {
      per_dest_.assign(static_cast<std::size_t>(ndests), defaults_);
    }
  }

  KnobSettings defaults_{};
  bool adaptive_ = false;
  std::vector<KnobSettings> per_dest_;
  std::vector<DestSignals> signals_;
};

}  // namespace cmpi::tune
