// tune::Controller — the per-rank runtime half of the self-tuning loop.
//
// Polled on a virtual-time period from the endpoint's progress path, the
// controller reads the per-destination traffic signals (eager/rendezvous
// split, ring-full backpressure, inflight-budget stalls) plus a global
// signal digest (retransmits from the recovery counters; cache hit rate
// and queue-depth high-water from the cmpi::obs metrics registry when
// metrics are on) and adapts each destination's knobs:
//
//   * rendezvous threshold — dispatch-table prior keyed by the observed
//     size profile, applied through a hysteresis band: a new candidate
//     must (a) repeat for `hysteresis_polls` consecutive polls and
//     (b) differ from the current value by more than `hysteresis_ratio`
//     before it flips, so a profile oscillating near a class boundary
//     does not thrash the data path.
//   * pipeline quantum — AIMD: additive increase (one quantum_step, or
//     two when the ring is full: a full ring on the rendezvous path means
//     RTS descriptor slots are the bottleneck, so each should cover more
//     payload) while rendezvous traffic flows; multiplicative halve on
//     media pressure (fresh retransmits or a collapsed cache hit rate).
//   * inflight depth — AIMD: +1 when sends stall on the inflight budget,
//     halve on fresh retransmits.
//
// Every change is journaled (and emitted as a trace instant, so Perfetto
// shows each policy flip on the rank's track). Exploration jitter — an
// occasional one-step quantum perturbation that keeps the AIMD loop from
// freezing in a local plateau — draws from a seeded Rng, so a run under
// CMPI_FAULT_SEED makes the same decisions every time: same seed + same
// signal sequence => the same journal, asserted by the regression test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "simtime/vclock.hpp"
#include "tune/dispatch_table.hpp"
#include "tune/policy.hpp"

namespace cmpi::tune {

struct ControllerConfig {
  simtime::Ns period_ns = 200'000;  ///< virtual poll period
  // Knob bounds. The endpoint derives them from its geometry (cell
  // payload, arena size); the defaults suit the 16 KiB-cell test config.
  std::size_t min_threshold = 4096;
  std::size_t max_threshold = std::size_t{1} << 20;
  std::size_t min_quantum = 4096;
  std::size_t max_quantum = std::size_t{512} << 10;
  std::size_t min_inflight = 2;
  std::size_t max_inflight = 32;
  /// Additive quantum increase per clean poll (one cell payload).
  std::size_t quantum_step = 16384;
  /// Consecutive polls a threshold candidate must persist before it flips.
  int hysteresis_polls = 2;
  /// Relative band around the current threshold inside which candidates
  /// are ignored (|new - cur| <= ratio * cur keeps cur).
  double hysteresis_ratio = 0.25;
  /// Per-poll probability of an exploration nudge on the quantum.
  double explore_prob = 0.05;
  /// Exploration/tie-break RNG seed (already rank-mixed by the caller).
  std::uint64_t seed = 1;
  /// Ring-cell payload of the endpoint's universe: selects the matching
  /// dispatch-table rows (0 = take any row).
  std::size_t cell_payload = 0;
};

/// Cross-destination inputs, gathered once per poll by the caller (the
/// tests drive this directly, which is what makes the determinism
/// regression test hermetic).
struct GlobalSignals {
  /// Cumulative recovery-layer retransmits (universe-wide).
  std::uint64_t retransmits = 0;
  /// Device cache hit rate in [0,1]; < 0 = unknown (metrics off).
  double cache_hit_rate = -1.0;
  /// High-water queue depth gauge; 0 = unknown.
  std::uint64_t queue_depth_hw = 0;
};

/// Reads the obs metrics registry into the fields GlobalSignals wants
/// (cache hit rate, queue-depth high-water). Leaves them at "unknown"
/// when metrics are disabled. `retransmits` is the caller's business
/// (the recovery counters are not obs-gated).
GlobalSignals gather_global_signals(std::uint64_t retransmits);

/// One journaled knob change.
struct Decision {
  simtime::Ns at_ns = 0;
  int dst = -1;
  enum class Knob : std::uint8_t { kThreshold, kQuantum, kInflight };
  Knob knob = Knob::kQuantum;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  /// Static string: "prior", "aimd-increase", "backpressure",
  /// "inflight-stall", "explore".
  const char* reason = "";

  friend bool operator==(const Decision&, const Decision&) = default;
};

class Controller {
 public:
  Controller(const ControllerConfig& config, const DispatchTable* table);

  /// True when `now` has reached the next poll time. Cheap (one compare):
  /// the progress path calls this every iteration.
  [[nodiscard]] bool due(simtime::Ns now) const noexcept {
    return now >= next_poll_ns_;
  }

  /// Run one control round: consume the signal deltas accumulated in
  /// `policy` since the last poll and adjust its per-destination knobs.
  void poll(simtime::Ns now, Policy& policy, const GlobalSignals& global);

  [[nodiscard]] const std::vector<Decision>& journal() const noexcept {
    return journal_;
  }
  [[nodiscard]] std::uint64_t polls() const noexcept { return polls_; }
  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct DestState {
    DestSignals last;               // signal snapshot at the previous poll
    std::size_t pending_threshold = 0;  // candidate awaiting hysteresis
    int pending_polls = 0;
  };

  void journal_change(simtime::Ns now, int dst, Decision::Knob knob,
                      std::uint64_t from, std::uint64_t to,
                      const char* reason);

  ControllerConfig config_;
  const DispatchTable* table_;  // warm-start prior; may be nullptr
  Rng rng_;
  simtime::Ns next_poll_ns_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t last_retransmits_ = 0;
  std::vector<DestState> dests_;
  std::vector<Decision> journal_;
};

/// Journal cap: the controller stops journaling (but keeps adapting)
/// past this many decisions, bounding host memory on very long runs.
inline constexpr std::size_t kMaxJournalEntries = 65536;

}  // namespace cmpi::tune
