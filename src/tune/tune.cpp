#include "tune/tune.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

#include "common/hash.hpp"
#include "common/log.hpp"

namespace cmpi::tune {

bool tuning_enabled(const TuneOptions& options) {
  switch (options.mode) {
    case Tuning::kEnabled:
      return true;
    case Tuning::kDisabled:
      return false;
    case Tuning::kAuto:
      break;
  }
  const char* env = std::getenv("CMPI_TUNE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::shared_ptr<const DispatchTable> shared_table(
    const TuneOptions& options) {
  std::string path = options.table_path;
  if (path.empty()) {
    if (const char* env = std::getenv("CMPI_TUNE_TABLE")) {
      path = env;
    }
  }
  if (path.empty()) {
    return nullptr;
  }
  static std::mutex mutex;
  static std::map<std::string, std::shared_ptr<const DispatchTable>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(path);
  if (it != cache.end()) {
    return it->second;
  }
  Result<DispatchTable> loaded = DispatchTable::load(path);
  std::shared_ptr<const DispatchTable> table;
  if (loaded.is_ok()) {
    table = std::make_shared<const DispatchTable>(std::move(loaded).value());
  } else {
    log_warn("tune: dispatch table unusable, running without prior: %s",
             loaded.status().message().c_str());
  }
  cache.emplace(path, table);  // negative results cached too: warn once
  return table;
}

std::uint64_t resolve_seed(const TuneOptions& options, int rank) {
  std::uint64_t base = options.seed;
  if (base == 0) {
    if (const char* env = std::getenv("CMPI_FAULT_SEED")) {
      base = static_cast<std::uint64_t>(std::atoll(env));
    }
  }
  if (base == 0) {
    base = 0x9e3779b97f4a7c15ULL;  // fixed default: still deterministic
  }
  return mix64(base ^ (static_cast<std::uint64_t>(rank) + 1) * 0x100000001b3ULL);
}

}  // namespace cmpi::tune
