// Per-size-class dispatch table: the offline autotuner's product and the
// runtime controller's warm-start prior.
//
// bench/autotune sweeps the Fig 9 axes (cell size x rendezvous threshold
// x procs, plus a pipeline-quantum mini-sweep) on the simulator and
// writes the winning policy per message-size class to
// bench/baselines/dispatch_table.json, with provenance metadata (axes,
// resolution) so the artifact records how it was produced. The
// controller looks its observed per-destination traffic profile up here
// before falling back to pure AIMD adjustment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace cmpi::tune {

/// Winning policy for messages of size <= max_bytes (classes are
/// half-open, sorted ascending; the last class catches everything). The
/// table holds one entry per (size class x cell payload): the winning
/// protocol flips with the cell size (small cells tax the eager path's
/// per-cell costs), so a single per-class row would mislead any universe
/// built with a different ring geometry than the probe's.
struct DispatchEntry {
  std::size_t max_bytes = 0;
  /// Build-time knob: the cell payload this row was measured with. The
  /// runtime controller cannot change it (the ring matrix is laid out at
  /// Universe creation) — it selects the row matching its own geometry.
  std::size_t cell_payload = 0;
  std::size_t rendezvous_threshold = 0;
  std::size_t pipeline_quantum = 0;
  std::size_t inflight_depth = 0;
  /// The winning measurement (MB/s at this class's probe size).
  double mbps = 0;

  friend bool operator==(const DispatchEntry&,
                         const DispatchEntry&) = default;
};

class DispatchTable {
 public:
  DispatchTable() = default;
  explicit DispatchTable(std::vector<DispatchEntry> entries);

  /// Parse a dispatch_table.json written by save(). Tolerates unknown
  /// keys; kInvalidArgument on anything structurally unusable.
  static Result<DispatchTable> load(const std::string& path);

  /// The class covering `bytes` (first entry with max_bytes >= bytes,
  /// else the last entry); nullptr on an empty table. When `cell_payload`
  /// is non-zero, rows measured with that cell payload are preferred and
  /// other rows are used only when no matching row covers `bytes`.
  [[nodiscard]] const DispatchEntry* lookup(
      std::size_t bytes, std::size_t cell_payload = 0) const noexcept;

  [[nodiscard]] const std::vector<DispatchEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Provenance key/value pairs (sweep axes, resolution, generator).
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  provenance() const noexcept {
    return provenance_;
  }
  void set_provenance(
      std::vector<std::pair<std::string, std::string>> provenance) {
    provenance_ = std::move(provenance);
  }

  /// Write the JSON document save()/load() round-trip.
  void save(std::ostream& os) const;

 private:
  std::vector<DispatchEntry> entries_;  // sorted by max_bytes
  std::vector<std::pair<std::string, std::string>> provenance_;
};

}  // namespace cmpi::tune
