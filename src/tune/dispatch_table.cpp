#include "tune/dispatch_table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cmpi::tune {

DispatchTable::DispatchTable(std::vector<DispatchEntry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const DispatchEntry& a, const DispatchEntry& b) {
              return a.max_bytes < b.max_bytes;
            });
}

const DispatchEntry* DispatchTable::lookup(
    std::size_t bytes, std::size_t cell_payload) const noexcept {
  if (entries_.empty()) {
    return nullptr;
  }
  const DispatchEntry* covering = nullptr;       // smallest class, matching cell
  const DispatchEntry* covering_any = nullptr;   // smallest class, any cell
  const DispatchEntry* largest_match = nullptr;  // catch-all, matching cell
  for (const DispatchEntry& e : entries_) {  // ascending by max_bytes
    const bool cell_ok = cell_payload == 0 || e.cell_payload == cell_payload;
    if (cell_ok) {
      largest_match = &e;
    }
    if (bytes <= e.max_bytes) {
      if (cell_ok && covering == nullptr) {
        covering = &e;
      }
      if (covering_any == nullptr) {
        covering_any = &e;
      }
    }
  }
  if (covering != nullptr) {
    return covering;
  }
  if (largest_match != nullptr) {
    return largest_match;  // bytes beyond every matching class
  }
  return covering_any != nullptr ? covering_any : &entries_.back();
}

namespace {

/// Minimal scanner for the exact document save() writes (the same
/// approach as the perf-smoke baseline reader): a stream of quoted keys,
/// with numbers bound to the most recent key. Object nesting is tracked
/// only to split "provenance" strings from "classes" numbers.
struct Scanner {
  std::istream& in;

  void skip_space() {
    while (in.good() &&
           std::isspace(static_cast<unsigned char>(in.peek())) != 0) {
      in.get();
    }
  }

  bool next_token(std::string& key, std::string& value, bool& is_string) {
    char c;
    while (in.get(c)) {
      if (c != '"') {
        continue;
      }
      key.clear();
      while (in.get(c) && c != '"') {
        key += c;
      }
      skip_space();
      if (in.peek() != ':') {
        continue;  // a bare string value, not a key
      }
      in.get();  // ':'
      skip_space();
      const int p = in.peek();
      if (p == '"') {
        in.get();
        value.clear();
        while (in.get(c) && c != '"') {
          value += c;
        }
        is_string = true;
        return true;
      }
      if ((p >= '0' && p <= '9') || p == '-' || p == '.') {
        value.clear();
        while (in.good()) {
          const int d = in.peek();
          if ((d >= '0' && d <= '9') || d == '.' || d == 'e' || d == '-' ||
              d == '+') {
            value += static_cast<char>(in.get());
          } else {
            break;
          }
        }
        is_string = false;
        return true;
      }
      // '{', '[' etc: the key opened a container; report it valueless.
      value.clear();
      is_string = false;
      return true;
    }
    return false;
  }
};

}  // namespace

Result<DispatchTable> DispatchTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return status::invalid_argument("dispatch table: cannot open " + path);
  }
  std::vector<DispatchEntry> entries;
  std::vector<std::pair<std::string, std::string>> provenance;
  Scanner scan{in};
  std::string key;
  std::string value;
  bool is_string = false;
  enum class Section { kNone, kProvenance, kClasses } section = Section::kNone;
  DispatchEntry current;
  bool current_open = false;
  const auto flush = [&] {
    if (current_open) {
      entries.push_back(current);
      current = DispatchEntry{};
      current_open = false;
    }
  };
  // Integral fields must round-trip exactly: SIZE_MAX (an "always eager"
  // threshold) overflows a double, so take the strtoull path unless the
  // literal really is floating-point.
  const auto as_size = [](const std::string& v) -> std::size_t {
    if (v.find_first_of(".eE") == std::string::npos) {
      return static_cast<std::size_t>(std::strtoull(v.c_str(), nullptr, 10));
    }
    return static_cast<std::size_t>(std::atof(v.c_str()));
  };
  while (scan.next_token(key, value, is_string)) {
    if (key == "provenance") {
      section = Section::kProvenance;
      continue;
    }
    if (key == "classes") {
      section = Section::kClasses;
      continue;
    }
    if (section == Section::kProvenance && !value.empty()) {
      provenance.emplace_back(key, value);
      continue;
    }
    if (section != Section::kClasses || value.empty()) {
      continue;
    }
    if (key == "max_bytes") {
      flush();  // max_bytes leads every class object
      current_open = true;
      current.max_bytes = as_size(value);
    } else if (key == "cell_payload") {
      current.cell_payload = as_size(value);
    } else if (key == "rendezvous_threshold") {
      current.rendezvous_threshold = as_size(value);
    } else if (key == "pipeline_quantum") {
      current.pipeline_quantum = as_size(value);
    } else if (key == "inflight_depth") {
      current.inflight_depth = as_size(value);
    } else if (key == "mbps") {
      current.mbps = std::atof(value.c_str());
    }
  }
  flush();
  if (entries.empty()) {
    return status::invalid_argument("dispatch table: no classes in " + path);
  }
  DispatchTable table(std::move(entries));
  table.set_provenance(std::move(provenance));
  return table;
}

void DispatchTable::save(std::ostream& os) const {
  os << "{\n  \"provenance\": {";
  bool first = true;
  for (const auto& [k, v] : provenance_) {
    os << (first ? "\n    " : ",\n    ") << '"' << k << "\": \"" << v << '"';
    first = false;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"classes\": [";
  first = true;
  for (const DispatchEntry& e : entries_) {
    char mbps[32];
    std::snprintf(mbps, sizeof mbps, "%.1f", e.mbps);
    os << (first ? "\n" : ",\n")
       << "    {\"max_bytes\": " << e.max_bytes
       << ", \"cell_payload\": " << e.cell_payload
       << ", \"rendezvous_threshold\": " << e.rendezvous_threshold
       << ", \"pipeline_quantum\": " << e.pipeline_quantum
       << ", \"inflight_depth\": " << e.inflight_depth << ", \"mbps\": " << mbps
       << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace cmpi::tune
