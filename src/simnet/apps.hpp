// Application communication skeletons for the strong-scaling study
// (paper §4.4, Fig. 10): NPB CG (class D) and miniAMR, replayed over the
// discrete-event simulator with per-transport interconnect parameters
// taken from the §4.2 measurements — the same methodology the paper uses
// with SimGrid.
//
// The skeletons reproduce each app's communication *pattern* and a
// calibrated compute load, not the numerics:
//   CG      — 2D processor grid; per inner iteration one SpMV with a
//             row-wise reduce (log2 columns exchanges) and a transpose
//             exchange, plus two 8-byte dot-product allreduces. Strong
//             scaling: the matrix is fixed, per-rank work shrinks.
//   miniAMR — 3D block-structured mesh, fixed blocks per rank (the paper
//             runs block size 4^3, so communication dominates); per step
//             six face halo exchanges and a periodic summation allreduce.
#pragma once

#include <string>

#include "simnet/engine.hpp"

namespace cmpi::simnet {

/// Interconnect characteristics of one transport, as measured by the OSU
/// sweeps in this repository (bench/fig7/fig8).
struct TransportProfile {
  std::string name;
  simtime::Ns inter_latency;    ///< small-message one-way MPI latency
  double inter_bytes_per_ns;    ///< saturated two-sided bandwidth
};

/// Defaults measured on this repository's cMPI / fabric stacks.
TransportProfile cxl_shm_profile();
TransportProfile tcp_cx6dx_profile();
TransportProfile tcp_ethernet_profile();

struct ClusterConfig {
  int nodes = 2;
  int ranks_per_node = 8;  ///< paper: eight MPI processes per node
  TransportProfile transport = cxl_shm_profile();
  simtime::Ns intra_latency = 400;
  double intra_bytes_per_ns = 10.0;
  double flops_per_ns_per_rank = 2.0;  ///< per-core sustained GFLOP/s

  // --- Pod tier (multi-pool scale-out) ---
  /// 0 = one flat pool spanning all nodes (the original behavior). When
  /// > 0, nodes are grouped into pods of this many nodes; `transport` is
  /// then the intra-pod tier and cross-pod traffic leaves through one
  /// router node per pod (the pod's first node, rank 0 of the pod) over
  /// `pod_transport`, paying an intra-pod hop to reach the router plus a
  /// serial per-message forwarding cost there.
  int nodes_per_pod = 0;
  TransportProfile pod_transport = tcp_cx6dx_profile();
  /// Serial per-message forwarding cost at a pod router (FCFS).
  simtime::Ns router_fwd_ns = 3000;
  /// Pod-aware hierarchical allreduce (intra-pod recursive doubling,
  /// router tree across pods, intra-pod broadcast); false = flat
  /// recursive doubling across all ranks — the ablation baseline.
  bool hierarchical_collectives = true;

  [[nodiscard]] int pods() const noexcept {
    return nodes_per_pod > 0 ? nodes / nodes_per_pod : 1;
  }
};

struct AppResult {
  simtime::Ns total_time = 0;  ///< simulated end time (slowest rank)
  simtime::Ns comm_time = 0;   ///< average per-rank time in communication
  [[nodiscard]] double comm_fraction() const noexcept {
    return total_time > 0 ? comm_time / total_time : 0.0;
  }
};

struct CgParams {
  std::int64_t na = 1500000;  ///< class D rows
  int nonzer = 21;            ///< class D nonzeros per row parameter
  int outer_iters = 15;       ///< truncated outer loop (shape-preserving)
  int inner_iters = 25;       ///< CG iterations per outer step
};

struct MiniAmrParams {
  int blocks_per_rank = 8;
  int block_size = 4;   ///< paper input: 4 in x, y, z
  int variables = 40;   ///< miniAMR default
  int comm_vars = 4;    ///< variables exchanged per halo message
  double flops_per_cell_var = 80.0;  ///< all stages of one timestep
  int timesteps = 200;
  int summary_every = 10;  ///< allreduce cadence
};

AppResult run_cg(const ClusterConfig& cluster, const CgParams& params);
AppResult run_miniamr(const ClusterConfig& cluster,
                      const MiniAmrParams& params);

}  // namespace cmpi::simnet
