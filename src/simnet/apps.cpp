#include "simnet/apps.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/hash.hpp"

namespace cmpi::simnet {

// The paper configures SimGrid with interconnect-level latency/bandwidth
// (its miniAMR discussion compares "16 us vs 18 us" — the raw Table 1
// numbers, not the MPI-level OSU latencies). We do the same, using the
// Table 1 rows this repository's bench/table1_interconnects reproduces.
TransportProfile cxl_shm_profile() {
  return {"CXL SHM", 2200, 9.5};  // flushed access latency / bandwidth
}

TransportProfile tcp_cx6dx_profile() {
  return {"TCP over Mellanox CX-6 Dx", 18000, 11.5};
}

TransportProfile tcp_ethernet_profile() {
  return {"TCP over Ethernet", 16000, 0.1178};
}

namespace {

/// Topology + instrumented communication helpers shared by the skeletons.
class Cluster {
 public:
  Cluster(SimEngine& engine, const ClusterConfig& config)
      : engine_(engine),
        config_(config),
        nranks_(config.nodes * config.ranks_per_node),
        pods_(config.pods()),
        ranks_per_pod_(nranks_ / pods_),
        router_busy_(static_cast<std::size_t>(pods_), 0.0),
        comm_ns_(static_cast<std::size_t>(nranks_), 0.0) {
    if (config.nodes_per_pod > 0) {
      CMPI_EXPECTS(config.nodes % config.nodes_per_pod == 0);
    }
    // One uplink per node: the paper's platform gives every host its own
    // CXL port (Fig. 1, "bandwidth fairness") and every server one NIC,
    // so a node's egress bandwidth is the shared resource.
    uplinks_.reserve(static_cast<std::size_t>(config.nodes));
    for (int node = 0; node < config.nodes; ++node) {
      uplinks_.push_back(engine.make_link(
          config.transport.inter_latency,
          config.transport.inter_bytes_per_ns));
    }
    intra_links_.reserve(static_cast<std::size_t>(config.nodes));
    for (int node = 0; node < config.nodes; ++node) {
      intra_links_.push_back(engine.make_link(config.intra_latency,
                                              config.intra_bytes_per_ns));
    }
    // One egress NIC per pod: the cross-pod tier. All of a pod's outbound
    // cross-pod traffic shares it (FCFS), like the pod's router NIC.
    pod_uplinks_.reserve(static_cast<std::size_t>(pods_));
    for (int pod = 0; pod < pods_; ++pod) {
      pod_uplinks_.push_back(
          engine.make_link(config.pod_transport.inter_latency,
                           config.pod_transport.inter_bytes_per_ns));
    }
  }

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] int node_of(int rank) const noexcept {
    return rank / config_.ranks_per_node;
  }
  [[nodiscard]] int pods() const noexcept { return pods_; }
  [[nodiscard]] int pod_of(int rank) const noexcept {
    return rank / ranks_per_pod_;
  }
  [[nodiscard]] bool cross_pod(int src, int dst) const noexcept {
    return pod_of(src) != pod_of(dst);
  }

  Link* link_between(int src, int dst) {
    const int a = node_of(src);
    const int b = node_of(dst);
    if (a == b) {
      return intra_links_[static_cast<std::size_t>(a)];
    }
    if (cross_pod(src, dst)) {
      return pod_uplinks_[static_cast<std::size_t>(pod_of(src))];
    }
    return uplinks_[static_cast<std::size_t>(a)];
  }

  /// Compute for `flops` floating-point operations.
  void compute(SimProcess& self, double flops) {
    self.delay(flops / config_.flops_per_ns_per_rank);
  }

  /// Serialize one message through a pod router's forwarding path (FCFS;
  /// the engine is sequential, so mutating the shared busy-until stamp in
  /// causal order is deterministic).
  void wait_router(SimProcess& self, int pod) {
    simtime::Ns& busy = router_busy_[static_cast<std::size_t>(pod)];
    const simtime::Ns begin = std::max(self.now(), busy);
    busy = begin + config_.router_fwd_ns;
    if (busy > self.now()) {
      self.delay(busy - self.now());
    }
  }

  /// Intra-pod hop cost of staging `bytes` to/from the pod's router node.
  [[nodiscard]] simtime::Ns router_hop_ns(std::size_t bytes) const noexcept {
    return config_.transport.inter_latency +
           static_cast<simtime::Ns>(bytes) /
               config_.transport.inter_bytes_per_ns;
  }

  /// One-directional instrumented send (uninstrumented cost is the
  /// receiver's). Cross-pod messages stage to the router first.
  void send_to(SimProcess& self, int peer, std::size_t bytes, int tag) {
    const simtime::Ns before = self.now();
    if (cross_pod(self.id(), peer)) {
      self.delay(router_hop_ns(bytes));
      wait_router(self, pod_of(self.id()));
    }
    self.send(peer, tag, bytes, link_between(self.id(), peer));
    comm_ns_[static_cast<std::size_t>(self.id())] += self.now() - before;
  }

  /// One-directional instrumented receive. Cross-pod messages pay the
  /// destination router's forwarding + the hop into the pod.
  void recv_from(SimProcess& self, int peer, std::size_t bytes, int tag) {
    const simtime::Ns before = self.now();
    (void)self.recv(peer, tag);
    if (cross_pod(self.id(), peer)) {
      wait_router(self, pod_of(self.id()));
      self.delay(router_hop_ns(bytes));
    }
    comm_ns_[static_cast<std::size_t>(self.id())] += self.now() - before;
  }

  /// Instrumented simultaneous exchange with `peer`.
  void sendrecv(SimProcess& self, int peer, std::size_t bytes, int tag) {
    const simtime::Ns before = self.now();
    const bool cross = cross_pod(self.id(), peer);
    if (cross) {
      self.delay(router_hop_ns(bytes));
      wait_router(self, pod_of(self.id()));
    }
    self.send(peer, tag, bytes, link_between(self.id(), peer));
    (void)self.recv(peer, tag);
    if (cross) {
      wait_router(self, pod_of(self.id()));
      self.delay(router_hop_ns(bytes));
    }
    comm_ns_[static_cast<std::size_t>(self.id())] += self.now() - before;
  }

  /// Instrumented allreduce of `bytes` (power-of-two rank counts, which
  /// the study's 8-per-node configurations satisfy). Flat recursive
  /// doubling, or the pod-hierarchical algorithm when configured.
  void allreduce(SimProcess& self, std::size_t bytes, int tag_base) {
    if (pods_ > 1 && config_.hierarchical_collectives) {
      allreduce_hier(self, bytes, tag_base);
      return;
    }
    const simtime::Ns before = self.now();
    for (int mask = 1; mask < nranks_; mask <<= 1) {
      const int partner = self.id() ^ mask;
      if (partner < nranks_) {
        const bool cross = cross_pod(self.id(), partner);
        if (cross) {
          self.delay(router_hop_ns(bytes));
          wait_router(self, pod_of(self.id()));
        }
        self.send(partner, tag_base + mask, bytes,
                  link_between(self.id(), partner));
        (void)self.recv(partner, tag_base + mask);
        if (cross) {
          wait_router(self, pod_of(self.id()));
          self.delay(router_hop_ns(bytes));
        }
      }
    }
    comm_ns_[static_cast<std::size_t>(self.id())] += self.now() - before;
  }

  /// Hierarchical allreduce: recursive doubling inside the pod, a
  /// recursive-doubling exchange among pod routers (rank 0 of each pod),
  /// then a binomial broadcast from the router. Requires power-of-two
  /// pods and ranks per pod.
  void allreduce_hier(SimProcess& self, std::size_t bytes, int tag_base) {
    CMPI_EXPECTS((pods_ & (pods_ - 1)) == 0);
    CMPI_EXPECTS((ranks_per_pod_ & (ranks_per_pod_ - 1)) == 0);
    const simtime::Ns before = self.now();
    const int pod = pod_of(self.id());
    const int local = self.id() - pod * ranks_per_pod_;
    const int base = pod * ranks_per_pod_;
    // Phase 1: intra-pod recursive doubling (every rank gets the pod sum).
    for (int mask = 1; mask < ranks_per_pod_; mask <<= 1) {
      const int partner = base + (local ^ mask);
      self.send(partner, tag_base + mask, bytes,
                link_between(self.id(), partner));
      (void)self.recv(partner, tag_base + mask);
    }
    // Phase 2: routers exchange pod sums across pods.
    if (local == 0) {
      for (int mask = 1; mask < pods_; mask <<= 1) {
        const int partner = (pod ^ mask) * ranks_per_pod_;
        wait_router(self, pod);
        self.send(partner, tag_base + 0x1000 + mask, bytes,
                  pod_uplinks_[static_cast<std::size_t>(pod)]);
        (void)self.recv(partner, tag_base + 0x1000 + mask);
        wait_router(self, pod);
      }
    }
    // Phase 3: binomial broadcast of the global sum from the router.
    int mask = 1;
    while (mask < ranks_per_pod_) {
      if ((local & mask) != 0) {
        (void)self.recv(base + (local - mask), tag_base + 0x2000 + mask);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (local + mask < ranks_per_pod_) {
        const int dst = base + local + mask;
        self.send(dst, tag_base + 0x2000 + mask, bytes,
                  link_between(self.id(), dst));
      }
      mask >>= 1;
    }
    comm_ns_[static_cast<std::size_t>(self.id())] += self.now() - before;
  }

  [[nodiscard]] double average_comm_ns() const {
    double sum = 0;
    for (const double c : comm_ns_) {
      sum += c;
    }
    return sum / static_cast<double>(comm_ns_.size());
  }

 private:
  SimEngine& engine_;
  ClusterConfig config_;
  int nranks_;
  int pods_;
  int ranks_per_pod_;
  std::vector<Link*> uplinks_;
  std::vector<Link*> intra_links_;
  std::vector<Link*> pod_uplinks_;
  /// Per-pod router forwarding busy-until stamps (serial FCFS path).
  std::vector<simtime::Ns> router_busy_;
  std::vector<double> comm_ns_;
};

/// Deterministic per-(rank, step) compute jitter: real applications are
/// never perfectly balanced, and the resulting neighbor-wait time is a
/// transport-independent component of measured communication time — the
/// reason the paper's miniAMR transport deltas are a few percent despite
/// order-of-magnitude latency differences.
double jitter(int rank, int step, double amplitude) {
  const std::uint64_t h = hash_u64(static_cast<std::uint64_t>(rank) << 32 |
                                   static_cast<std::uint64_t>(step));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + amplitude * (2.0 * unit - 1.0);
}

/// Heavy-tailed multiplier (mean ~1.3, max ~3.7): the block-refinement
/// imbalance of an AMR code.
double heavy_jitter(int rank, int step) {
  const std::uint64_t h = hash_u64(static_cast<std::uint64_t>(rank) << 32 |
                                   static_cast<std::uint64_t>(step));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  return 0.7 + 3.0 * unit * unit * unit * unit;
}

}  // namespace

AppResult run_cg(const ClusterConfig& cluster_config, const CgParams& params) {
  SimEngine engine;
  Cluster cluster(engine, cluster_config);
  const int n = cluster.nranks();

  // NPB CG processor grid: npcols x nprows, npcols >= nprows.
  int log2n = 0;
  while ((1 << (log2n + 1)) <= n) {
    ++log2n;
  }
  CMPI_EXPECTS((1 << log2n) == n);  // 8 ranks/node keeps this a power of 2
  const int npcols = 1 << ((log2n + 1) / 2);
  const int nprows = n / npcols;

  // Effective nonzeros after NPB's makea fill-in; sized so class D does
  // ~0.8 GFLOP per inner iteration (matching published operation counts).
  const double nnz =
      static_cast<double>(params.na) * params.nonzer * 12.7;
  const double flops_per_inner =
      2.0 * nnz / n + 10.0 * static_cast<double>(params.na) / n;
  const std::size_t reduce_bytes =
      static_cast<std::size_t>(params.na) / static_cast<std::size_t>(n) * 8;

  for (int r = 0; r < n; ++r) {
    engine.spawn([&, r](SimProcess& self) {
      const int row = r / npcols;
      const int col = r % npcols;
      for (int outer = 0; outer < params.outer_iters; ++outer) {
        for (int inner = 0; inner < params.inner_iters; ++inner) {
          // SpMV + vector updates (with mild load imbalance).
          cluster.compute(self, flops_per_inner * jitter(r, inner, 0.05));
          // Row-wise partial-vector reduction: log2(npcols) exchanges.
          for (int mask = 1; mask < npcols; mask <<= 1) {
            const int partner = row * npcols + (col ^ mask);
            cluster.sendrecv(self, partner, reduce_bytes, 100 + mask);
          }
          // Transpose exchange of the rank's vector segment. The partner
          // function must be an involution so both sides pair up: matrix
          // transpose for square grids, a half-row swap for rectangular
          // ones (stand-in for NPB's exch_proc).
          if (npcols != nprows) {
            const int partner = row * npcols + (col ^ (npcols / 2));
            cluster.sendrecv(self, partner, reduce_bytes, 200);
          } else if (col != row) {
            cluster.sendrecv(self, col * npcols + row, reduce_bytes, 200);
          }
          // Two dot-product allreduces (rho, alpha denominators).
          cluster.allreduce(self, 8, 300);
          cluster.allreduce(self, 8, 600);
        }
      }
    });
  }
  AppResult result;
  result.total_time = engine.run();
  result.comm_time = cluster.average_comm_ns();
  return result;
}

AppResult run_miniamr(const ClusterConfig& cluster_config,
                      const MiniAmrParams& params) {
  SimEngine engine;
  Cluster cluster(engine, cluster_config);
  const int n = cluster.nranks();

  // Nearly-cubic 3D rank grid.
  int px = 1;
  int py = 1;
  int pz = 1;
  int remaining = n;
  while (remaining % 2 == 0) {
    if (px <= py && px <= pz) {
      px *= 2;
    } else if (py <= pz) {
      py *= 2;
    } else {
      pz *= 2;
    }
    remaining /= 2;
  }
  CMPI_EXPECTS(remaining == 1);

  // Face halo message: blocks on the face x block-face cells x exchanged
  // variables. With the paper's block size of 4, faces are tiny and every
  // transport is latency-bound per message.
  const double blocks_per_face =
      std::cbrt(static_cast<double>(params.blocks_per_rank));
  const std::size_t face_bytes = static_cast<std::size_t>(
      blocks_per_face * blocks_per_face * params.block_size *
      params.block_size * params.comm_vars * 8);
  // Stencil update over all stages of a timestep: fixed per-rank work
  // regardless of node count (each process owns a constant number of
  // blocks, §4.4).
  const double cells = static_cast<double>(params.blocks_per_rank) *
                       params.block_size * params.block_size *
                       params.block_size;
  const double flops_per_step =
      cells * params.variables * params.flops_per_cell_var;

  for (int r = 0; r < n; ++r) {
    engine.spawn([&, r](SimProcess& self) {
      const int x = r % px;
      const int y = (r / px) % py;
      const int z = r / (px * py);
      for (int step = 0; step < params.timesteps; ++step) {
        // AMR refinement makes load heavy-tailed: most measured "MPI
        // time" is waiting for slower neighbors, which is what keeps the
        // paper's transport deltas at a few percent (§4.4).
        cluster.compute(self, flops_per_step * heavy_jitter(r, step));
        // Six-direction halo exchange (non-periodic boundaries).
        const int neighbors[6] = {
            x > 0 ? r - 1 : -1,
            x + 1 < px ? r + 1 : -1,
            y > 0 ? r - px : -1,
            y + 1 < py ? r + px : -1,
            z > 0 ? r - px * py : -1,
            z + 1 < pz ? r + px * py : -1,
        };
        for (int d = 0; d < 6; ++d) {
          if (neighbors[d] >= 0) {
            // Tag by axis (d/2): the two sides of one face exchange use
            // the same tag, and the (src, dst) pair disambiguates the
            // +/- directions.
            cluster.sendrecv(self, neighbors[d], face_bytes, 1000 + d / 2);
          }
        }
        if ((step + 1) % params.summary_every == 0) {
          cluster.allreduce(self, 8 * params.variables, 2000);
        }
      }
    });
  }
  AppResult result;
  result.total_time = engine.run();
  result.comm_time = cluster.average_comm_ns();
  return result;
}

}  // namespace cmpi::simnet
