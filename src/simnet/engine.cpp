#include "simnet/engine.hpp"

#include "common/log.hpp"

namespace cmpi::simnet {

namespace {
/// Thrown inside process threads when the engine is destroyed early.
struct Aborted {};
}  // namespace

// ---------------- SimProcess ----------------

simtime::Ns SimProcess::now() const noexcept { return engine_->now_; }

void SimProcess::delay(simtime::Ns dt) {
  CMPI_EXPECTS(dt >= 0);
  engine_->schedule_wake(*this, engine_->now_ + dt);
  std::unique_lock lock(mutex_);
  engine_->park(*this, lock);
}

void SimProcess::send(int dst, int tag, std::size_t bytes, Link* link) {
  const simtime::Ns delivered =
      link != nullptr ? link->transit(engine_->now_, bytes) : engine_->now_;
  engine_->mail_[{dst, id_, tag}].push_back(
      SimEngine::Msg{id_, tag, bytes, delivered});
  engine_->schedule_delivery(dst, delivered);
}

std::size_t SimProcess::recv(int src, int tag) {
  auto& queue = engine_->mail_[{id_, src, tag}];
  if (!queue.empty()) {
    const SimEngine::Msg msg = queue.front();
    queue.pop_front();
    if (msg.delivered > engine_->now_) {
      // Arrived in the simulated future: wait for it.
      engine_->schedule_wake(*this, msg.delivered);
      std::unique_lock lock(mutex_);
      engine_->park(*this, lock);
    }
    return msg.bytes;
  }
  // Nothing queued: park until a matching delivery.
  engine_->recv_waiters_[id_] = this;
  engine_->recv_filters_[id_] = {src, tag};
  std::unique_lock lock(mutex_);
  engine_->park(*this, lock);
  // The engine moved the matched message into pending_.
  return pending_bytes_;
}

// ---------------- SimEngine ----------------

SimEngine::~SimEngine() {
  // Wake any still-parked processes so their threads can exit.
  aborting_ = true;
  for (auto& process : processes_) {
    std::lock_guard lock(process->mutex_);
    process->runnable_ = true;
    process->cv_.notify_all();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

Link* SimEngine::make_link(simtime::Ns latency, double bytes_per_ns) {
  links_.push_back(std::make_unique<Link>(latency, bytes_per_ns));
  return links_.back().get();
}

int SimEngine::spawn(std::function<void(SimProcess&)> fn) {
  CMPI_EXPECTS(!started_);
  const int id = static_cast<int>(processes_.size());
  auto process = std::make_unique<SimProcess>();
  process->engine_ = this;
  process->id_ = id;
  processes_.push_back(std::move(process));
  bodies_.push_back(std::move(fn));
  return id;
}

void SimEngine::schedule_wake(SimProcess& process, simtime::Ns at) {
  events_.push(Event{at, seq_++, Event::Kind::kWake, &process, -1});
}

void SimEngine::schedule_delivery(int dst, simtime::Ns at) {
  events_.push(Event{at, seq_++, Event::Kind::kDelivery, nullptr, dst});
}

void SimEngine::park(SimProcess& process, std::unique_lock<std::mutex>& lock) {
  process.runnable_ = false;
  {
    std::lock_guard engine_lock(engine_mutex_);
    control_with_engine_ = true;
  }
  engine_cv_.notify_all();
  process.cv_.wait(lock, [&] { return process.runnable_; });
  if (aborting_) {
    throw Aborted{};
  }
}

void SimEngine::resume(SimProcess& process) {
  {
    std::lock_guard engine_lock(engine_mutex_);
    control_with_engine_ = false;
  }
  {
    std::lock_guard lock(process.mutex_);
    process.runnable_ = true;
  }
  process.cv_.notify_all();
  std::unique_lock engine_lock(engine_mutex_);
  engine_cv_.wait(engine_lock, [&] { return control_with_engine_; });
}

simtime::Ns SimEngine::run() {
  CMPI_EXPECTS(!started_);
  started_ = true;
  // Launch process threads, parked until their first wake event.
  threads_.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    SimProcess* process = processes_[i].get();
    auto body = bodies_[i];
    threads_.emplace_back([this, process, body] {
      {
        std::unique_lock lock(process->mutex_);
        process->cv_.wait(lock, [&] { return process->runnable_; });
      }
      if (!aborting_) {
        try {
          body(*process);
        } catch (const Aborted&) {
          // engine teardown
        }
      }
      process->finished_ = true;
      {
        std::lock_guard engine_lock(engine_mutex_);
        control_with_engine_ = true;
      }
      engine_cv_.notify_all();
    });
    schedule_wake(*process, 0);
  }

  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    now_ = event.time;
    if (event.kind == Event::Kind::kWake) {
      if (!event.process->finished_) {
        resume(*event.process);
      }
      continue;
    }
    // Delivery: wake the dst's parked receiver if a matching message is
    // now available.
    const auto waiter = recv_waiters_.find(event.dst);
    if (waiter == recv_waiters_.end()) {
      continue;  // receiver not parked; recv() will find the message
    }
    SimProcess* process = waiter->second;
    const auto [src, tag] = recv_filters_.at(event.dst);
    auto& queue = mail_[{event.dst, src, tag}];
    if (queue.empty() || queue.front().delivered > now_) {
      continue;
    }
    process->pending_bytes_ = queue.front().bytes;
    queue.pop_front();
    recv_waiters_.erase(waiter);
    recv_filters_.erase(event.dst);
    resume(*process);
  }
  // Every process must have run to completion; a parked leftover means a
  // mismatched send/recv pairing in the model — fail loudly, not silently.
  for (const auto& process : processes_) {
    if (!process->finished_) {
      log_error("simnet: process %d deadlocked (unmatched recv)",
                process->id_);
      CMPI_ASSERT(process->finished_);
    }
  }
  return now_;
}

}  // namespace cmpi::simnet
