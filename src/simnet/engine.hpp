// Discrete-event simulator in the style of SimGrid (paper §4.1/§4.4).
//
// The paper's CXL platform connects at most four hosts, so its strong-
// scaling study (Fig. 10) feeds measured interconnect latency/bandwidth
// into SimGrid and replays application communication patterns at larger
// node counts. This engine reproduces that methodology: a sequential
// process-interaction DES with a global simulated clock.
//
//   * SimEngine  — event queue ordered by (time, sequence); deterministic.
//   * SimProcess — a simulated actor; runs on its own OS thread but the
//     engine resumes exactly one process at a time (classic SimGrid-style
//     cooperative execution; correct and deterministic on any core count).
//   * Link      — latency + FCFS bandwidth queueing (shared wire).
//   * Mailbox   — (dst, tag)-addressed message queues with delivery times.
//
// Processes use delay() for compute, send()/recv() for messages; the apps
// layer builds halo exchanges and collectives on top.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::simnet {

class SimEngine;

/// A network link: propagation latency plus a shared bandwidth pipe with
/// FCFS queueing (reservations happen in causal order because the engine
/// is sequential).
class Link {
 public:
  Link(simtime::Ns latency, double bytes_per_ns)
      : latency_(latency), bytes_per_ns_(bytes_per_ns) {
    CMPI_EXPECTS(bytes_per_ns > 0);
  }

  /// Delivery time of `bytes` entering the link at `start`.
  simtime::Ns transit(simtime::Ns start, std::size_t bytes) {
    const simtime::Ns begin = std::max(start, busy_until_);
    busy_until_ = begin + static_cast<simtime::Ns>(bytes) / bytes_per_ns_;
    return busy_until_ + latency_;
  }

  [[nodiscard]] simtime::Ns latency() const noexcept { return latency_; }
  [[nodiscard]] double bytes_per_ns() const noexcept { return bytes_per_ns_; }

 private:
  simtime::Ns latency_;
  double bytes_per_ns_;
  simtime::Ns busy_until_ = 0;
};

/// Handle the process function receives; all simulation interaction goes
/// through it.
class SimProcess {
 public:
  /// Simulated id (dense, assigned at spawn).
  [[nodiscard]] int id() const noexcept { return id_; }
  /// Current simulated time.
  [[nodiscard]] simtime::Ns now() const noexcept;

  /// Consume `dt` simulated nanoseconds (compute).
  void delay(simtime::Ns dt);

  /// Asynchronously send `bytes` to process `dst` with `tag` over `link`
  /// (nullptr = zero-cost local delivery). The sender continues
  /// immediately; model sender-side CPU cost with delay() if needed.
  void send(int dst, int tag, std::size_t bytes, Link* link);

  /// Block until a message (src, tag) is delivered; returns its size.
  std::size_t recv(int src, int tag);

 private:
  friend class SimEngine;
  SimEngine* engine_ = nullptr;
  int id_ = 0;
  std::size_t pending_bytes_ = 0;  ///< size of the message recv matched

  // Parking support.
  std::mutex mutex_;
  std::condition_variable cv_;
  bool runnable_ = false;
  bool finished_ = false;
};

class SimEngine {
 public:
  SimEngine() = default;
  ~SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Create a link owned by the engine.
  Link* make_link(simtime::Ns latency, double bytes_per_ns);

  /// Spawn a process; returns its id (dense from 0).
  int spawn(std::function<void(SimProcess&)> fn);

  /// Run the simulation until every process finishes. Returns the final
  /// simulated time.
  simtime::Ns run();

  [[nodiscard]] simtime::Ns now() const noexcept { return now_; }

 private:
  friend class SimProcess;

  struct Msg {
    int src;
    int tag;
    std::size_t bytes;
    simtime::Ns delivered;
  };

  struct Event {
    simtime::Ns time;
    std::uint64_t seq;
    enum class Kind { kWake, kDelivery } kind;
    SimProcess* process;  // kWake: whom to resume
    int dst;              // kDelivery: mailbox owner

    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  void schedule_wake(SimProcess& process, simtime::Ns at);
  void schedule_delivery(int dst, simtime::Ns at);
  /// Run `process` on the engine thread's behalf until it parks/finishes.
  void resume(SimProcess& process);
  /// Called from a process thread: park until resumed. Engine regains
  /// control.
  void park(SimProcess& process, std::unique_lock<std::mutex>& lock);

  simtime::Ns now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::unique_ptr<SimProcess>> processes_;
  std::vector<std::thread> threads_;
  std::vector<std::function<void(SimProcess&)>> bodies_;
  std::vector<std::unique_ptr<Link>> links_;
  /// Mailboxes: (dst, src, tag) -> delivered messages + waiting process.
  std::map<std::tuple<int, int, int>, std::deque<Msg>> mail_;
  std::map<int, SimProcess*> recv_waiters_;  // dst -> parked receiver
  std::map<int, std::pair<int, int>> recv_filters_;  // dst -> (src, tag)

  // Engine <-> process handoff.
  std::mutex engine_mutex_;
  std::condition_variable engine_cv_;
  bool control_with_engine_ = true;
  bool started_ = false;
  bool aborting_ = false;
};

}  // namespace cmpi::simnet
