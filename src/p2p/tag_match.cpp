#include "p2p/tag_match.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "common/contracts.hpp"

namespace cmpi::p2p {

void PostedRecvQueue::post(RequestPtr req, int src, int tag) {
  buckets_[key(src, tag)].push_back(Entry{next_order_++, std::move(req)});
  ++size_;
}

void PostedRecvQueue::repost_front(RequestPtr req, int src, int tag) {
  buckets_[key(src, tag)].push_front(Entry{--front_order_, std::move(req)});
  ++size_;
}

RequestPtr PostedRecvQueue::take_match(int src, int tag,
                                       std::size_t* probe_len) {
  CMPI_EXPECTS(src != kAnySource && tag != kAnyTag);
  // The only four filters an arrival can satisfy. Per-bucket order is
  // ascending (post appends increasing stamps, repost_front prepends
  // decreasing ones), so each bucket's FRONT is its earliest entry and the
  // global earliest match is the minimum over the four fronts.
  const std::array<std::uint64_t, 4> candidates = {
      key(src, tag), key(kAnySource, tag), key(src, kAnyTag),
      key(kAnySource, kAnyTag)};
  std::deque<Entry>* best = nullptr;
  std::size_t probed = 0;
  for (const std::uint64_t k : candidates) {
    const auto it = buckets_.find(k);
    if (it == buckets_.end() || it->second.empty()) {
      continue;
    }
    ++probed;
    if (best == nullptr || it->second.front().order < best->front().order) {
      best = &it->second;
    }
  }
  if (probe_len != nullptr) {
    *probe_len = probed;
  }
  if (best == nullptr) {
    return nullptr;
  }
  RequestPtr req = std::move(best->front().req);
  best->pop_front();
  --size_;
  return req;
}

RequestPtr PostedRecvQueue::remove(const Request* req) {
  for (auto& [k, bucket] : buckets_) {
    const auto it =
        std::find_if(bucket.begin(), bucket.end(),
                     [&](const Entry& e) { return e.req.get() == req; });
    if (it != bucket.end()) {
      RequestPtr owned = std::move(it->req);
      bucket.erase(it);
      --size_;
      return owned;
    }
  }
  return nullptr;
}

std::vector<RequestPtr> PostedRecvQueue::remove_if(
    const std::function<bool(const RequestPtr&)>& pred) {
  std::vector<Entry> taken;
  for (auto& [k, bucket] : buckets_) {
    for (auto it = bucket.begin(); it != bucket.end();) {
      if (pred(it->req)) {
        taken.push_back(std::move(*it));
        it = bucket.erase(it);
        --size_;
      } else {
        ++it;
      }
    }
  }
  std::sort(taken.begin(), taken.end(),
            [](const Entry& a, const Entry& b) { return a.order < b.order; });
  std::vector<RequestPtr> out;
  out.reserve(taken.size());
  for (Entry& e : taken) {
    out.push_back(std::move(e.req));
  }
  return out;
}

void UnexpectedQueue::push(UnexpectedMsgPtr msg) {
  buckets_[key(msg->source, msg->tag)].push_back(msg);
  arrival_.push_back(std::move(msg));
}

UnexpectedMsgPtr UnexpectedQueue::find_match(int src, int tag,
                                             bool require_full,
                                             std::size_t* probe_len) const {
  const auto matchable = [&](const UnexpectedMsg& m) {
    return !m.retry_pending && (m.full() || !require_full);
  };
  std::size_t probed = 0;
  if (src != kAnySource && tag != kAnyTag) {
    // Fully-specified filter: one bucket, already in arrival order for
    // this envelope (the only order MPI requires between these messages).
    const auto it = buckets_.find(key(src, tag));
    if (it != buckets_.end()) {
      for (const UnexpectedMsgPtr& msg : it->second) {
        ++probed;
        if (matchable(*msg)) {
          if (probe_len != nullptr) {
            *probe_len = probed;
          }
          return msg;
        }
      }
    }
    if (probe_len != nullptr) {
      *probe_len = probed;
    }
    return nullptr;
  }
  // Wildcard filter: the global list is the arrival order merged across
  // all envelopes — deterministic and identical to the pre-sharding scan.
  for (const UnexpectedMsgPtr& msg : arrival_) {
    ++probed;
    if (tags_match(src, tag, msg->source, msg->tag) && matchable(*msg)) {
      if (probe_len != nullptr) {
        *probe_len = probed;
      }
      return msg;
    }
  }
  if (probe_len != nullptr) {
    *probe_len = probed;
  }
  return nullptr;
}

bool UnexpectedQueue::remove(const UnexpectedMsg* msg) {
  const auto at = std::find_if(
      arrival_.begin(), arrival_.end(),
      [&](const UnexpectedMsgPtr& m) { return m.get() == msg; });
  if (at == arrival_.end()) {
    return false;
  }
  const auto it = buckets_.find(key((*at)->source, (*at)->tag));
  CMPI_ASSERT(it != buckets_.end());
  std::erase_if(it->second,
                [&](const UnexpectedMsgPtr& m) { return m.get() == msg; });
  arrival_.erase(at);
  return true;
}

std::size_t UnexpectedQueue::remove_if(
    const std::function<bool(const UnexpectedMsgPtr&)>& pred) {
  std::size_t removed = 0;
  for (auto it = arrival_.begin(); it != arrival_.end();) {
    if (pred(*it)) {
      const auto bucket = buckets_.find(key((*it)->source, (*it)->tag));
      CMPI_ASSERT(bucket != buckets_.end());
      const UnexpectedMsg* raw = it->get();
      std::erase_if(bucket->second, [&](const UnexpectedMsgPtr& m) {
        return m.get() == raw;
      });
      it = arrival_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace cmpi::p2p
