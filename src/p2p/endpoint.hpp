// Two-sided MPI communication over CXL SHM (paper §3.3).
//
// An Endpoint is one rank's view of the pairwise SPSC ring matrix plus the
// MPI-level machinery MPICH layers on top of its shared-memory channel:
//
//   * tag matching with MPI_ANY_SOURCE / MPI_ANY_TAG wildcards,
//   * posted-receive queue and unexpected-message queue,
//   * blocking send/recv and nonblocking isend/irecv + test/wait,
//   * a progress engine that drains incoming rings (into posted buffers
//     when matched, into unexpected buffers otherwise) and pushes pending
//     outbound chunks when rings have space,
//   * chunking: a message larger than one cell's payload travels as
//     consecutive cells (§4.3) — FIFO per ring keeps chunks contiguous.
//
// MPI semantics notes: a send completes when its buffer has been fully
// copied into cells (local completion, like MPICH eager); message order is
// preserved per (sender, receiver, tag-match) pair; receive buffers must
// stay valid until wait/test reports completion.
//
// End-to-end payload integrity (recovery layer): every chunk carries a
// CRC32C and a per-pair sequence number. A receiver that observes a
// corrupt payload (CRC mismatch or a poisoned-line read) does not complete
// the receive — it sends a NAK control message carrying the sequence
// number, and the sender retransmits the message from a bounded staging
// copy it kept after local completion (kRetransmit flag, same sequence
// number, same tag). Retries are bounded (kMaxRetransmits); when the
// sender's staging copy has been evicted it answers with a REJECT and the
// receive surfaces kDataPoisoned. The protocol is NAK-only — no positive
// acknowledgements — so a clean run pays nothing on the wire.
// Retransmission may reorder a message relative to other same-tag traffic
// from the same sender (as with any NAK protocol without resequencing).
//
// Incarnation fencing: chunks also carry the sender's incarnation number.
// A message published by a previous incarnation of a since-respawned rank
// is consumed and discarded whole at the match path (never delivered, never
// acked) — late writes of the dead incarnation cannot leak into the new
// epoch's traffic.
//
// Message-rate engine (doorbell-aggregated progress): the progress loop
// does not scan every peer ring. Each sender bumps its slot in the
// receiver's pool-resident AggDoorbell row on the ring's empty→non-empty
// edge (detected at tail publish from the consumer's published head);
// the receiver polls its one cacheline-packed row with time-free peeks
// and visits only peers whose slot moved, reaping up to kReapBatchCells
// cells per visit with ONE head publish and one invalidate-sweep setup
// per batch. Senders with no fault injector configured batch cell
// publication the same way (one fence + one tail store per staged
// batch), and a burst of nonblocking sends parks its final partial batch
// across calls — flushed at every progress/test/wait entry and in the
// destructor — so an isend storm coalesces into few publishes.
// Matching is sharded (see tag_match.hpp). A rotating scan start plus the
// per-visit reap bound round-robins saturating senders fairly. A periodic
// full scan (every kFullScanInterval calls) plus the flush-head-before-
// concluding-empty discipline bound the staleness of the unfenced
// doorbell hint; UniverseConfig::progress_engine = kLegacyScan keeps the
// pre-doorbell linear-scan engine alive as the ablation baseline.
//
// Large-message fast path (one-copy rendezvous): a message larger than
// the configured threshold (UniverseConfig::rendezvous_threshold; default
// one cell payload) skips cell chunking entirely. The sender parks the
// payload in a per-message arena slab and announces it through the ring
// with small RTS descriptor cells (kRendezvous flag), one per
// kRendezvousSegmentBytes segment so the receiver pulls segment k while
// the sender writes k+1. The receiver reads each segment straight from
// the pool into the user buffer — one copy end to end instead of the
// eager path's copy-in/copy-out — and FINishes the message with a control
// cell so the sender can recycle the slab (a small per-destination slot
// cache amortizes arena allocation). Integrity is per-segment CRC32C with
// bounded re-reads in place of NAK retransmissions (the slab IS the
// staging copy); a dead sender's slabs are reclaimed by pool scavenge
// (arena::kRendezvousNamePrefix), a dead receiver's un-FINished slots by
// scavenge_peer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "arena/arena.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "p2p/tag_match.hpp"
#include "queue/queue_matrix.hpp"
#include "runtime/universe.hpp"
#include "tune/controller.hpp"
#include "tune/policy.hpp"

namespace cmpi::p2p {

/// Completion information of a receive (MPI_Status equivalent).
struct RecvInfo {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

/// Per-endpoint communication statistics (user traffic; internal
/// synchronous-send acks are excluded). Times are virtual nanoseconds.
///
/// Fields are atomics so teardown paths (Universe summary, metrics
/// snapshots, monitoring threads) can read them while the owning rank is
/// still progressing. The copy operations take a relaxed field-by-field
/// snapshot, so `CommStats s = ep.stats();` keeps working.
struct CommStats {
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> messages_received{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  /// Messages that arrived before a matching receive was posted.
  std::atomic<std::uint64_t> unexpected_messages{0};
  /// Messages sent through the large-message rendezvous path.
  std::atomic<std::uint64_t> rendezvous_sent{0};
  /// Payload bytes of those rendezvous messages (bytes_sent minus this is
  /// the eager-path byte volume).
  std::atomic<std::uint64_t> rendezvous_bytes{0};
  /// User messages staged through the eager (cell-chunked) path, and
  /// their payload bytes. eager + rendezvous covers every user send, so
  /// the per-path split is visible without subtraction.
  std::atomic<std::uint64_t> eager_messages{0};
  std::atomic<std::uint64_t> eager_bytes{0};
  /// Rendezvous-eligible messages delivered eagerly instead (arena slot
  /// unavailable, or the arena lock deadline expired behind a corpse).
  std::atomic<std::uint64_t> rendezvous_fallbacks{0};
  /// Producer-side publish flushes (each one fence + one tail store
  /// covering a whole staged batch; per-cell publishes count as batches
  /// of one).
  std::atomic<std::uint64_t> publish_batches{0};
  /// Cells covered by those flushes. cells_published / publish_batches is
  /// the producer batching rate — 1.0 means batching never engaged.
  std::atomic<std::uint64_t> cells_published{0};
  /// Aggregated-doorbell slots this rank rang (cell publishes that hit the
  /// ring's empty→non-empty edge, so the receiver had to be woken).
  std::atomic<std::uint64_t> doorbell_rings{0};
  /// Cell publishes into an already non-empty ring: no doorbell needed.
  /// suppressed / (rings + suppressed) is the doorbell coalesce rate.
  std::atomic<std::uint64_t> doorbell_suppressed{0};
  /// Virtual time spent inside wait()/wait_all().
  std::atomic<double> wait_ns{0};

  CommStats() = default;
  CommStats(const CommStats& other) { *this = other; }
  CommStats& operator=(const CommStats& other) {
    messages_sent = other.messages_sent.load(std::memory_order_relaxed);
    messages_received =
        other.messages_received.load(std::memory_order_relaxed);
    bytes_sent = other.bytes_sent.load(std::memory_order_relaxed);
    bytes_received = other.bytes_received.load(std::memory_order_relaxed);
    unexpected_messages =
        other.unexpected_messages.load(std::memory_order_relaxed);
    rendezvous_sent = other.rendezvous_sent.load(std::memory_order_relaxed);
    rendezvous_bytes = other.rendezvous_bytes.load(std::memory_order_relaxed);
    eager_messages = other.eager_messages.load(std::memory_order_relaxed);
    eager_bytes = other.eager_bytes.load(std::memory_order_relaxed);
    rendezvous_fallbacks =
        other.rendezvous_fallbacks.load(std::memory_order_relaxed);
    publish_batches = other.publish_batches.load(std::memory_order_relaxed);
    cells_published = other.cells_published.load(std::memory_order_relaxed);
    doorbell_rings = other.doorbell_rings.load(std::memory_order_relaxed);
    doorbell_suppressed =
        other.doorbell_suppressed.load(std::memory_order_relaxed);
    wait_ns = other.wait_ns.load(std::memory_order_relaxed);
    return *this;
  }
};

/// Nonblocking operation handle. Created by isend/irecv; completed by the
/// progress engine; interrogated with test/wait.
class Request {
 public:
  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] const Status& result() const noexcept { return result_; }
  [[nodiscard]] const RecvInfo& info() const noexcept { return info_; }

 private:
  friend class Endpoint;
  enum class Kind { kSend, kRecv };

  Kind kind = Kind::kSend;
  // send fields
  int peer = kAnySource;  // send: dst; recv: src filter
  int tag = kAnyTag;
  std::span<const std::byte> send_data{};
  std::size_t bytes_pushed = 0;
  bool staged = false;               // all chunks enqueued into cells
  bool synchronous = false;          // Ssend: wait for the receiver's ack
  std::shared_ptr<Request> ack;      // internal ack receive (Ssend only)
  std::uint32_t seq = 0;             // per-(src,dst) message sequence
  std::uint32_t force_flags = 0;     // extra CellHeader flags (retransmit)
  std::vector<std::byte> owned;      // payload owned by the request itself
                                     // (control messages, retransmissions,
                                     // eager staging copies)
  /// Per-cell CRC32Cs computed while building `owned` (one fused
  /// copy+checksum pass); the ring enqueues prehashed from these.
  std::vector<std::uint32_t> chunk_crcs;
  // rendezvous send fields (large-message one-copy path)
  bool rendezvous = false;           // path decided at isend/issend time
  std::optional<arena::ObjectHandle> rdvz_slot;  // slab while announcing
  std::size_t rdvz_written = 0;      // slab bytes already written
  std::uint32_t rdvz_seg_crc = 0;    // CRC of the written-but-unannounced seg
  /// Segment quantum latched at the first announcement attempt: a tuner
  /// moving the pipeline-quantum knob between attempts must not shift the
  /// segment boundaries of a half-announced message (the staged CRC is
  /// per-segment).
  std::size_t rdvz_quantum = 0;
  // recv fields
  std::span<std::byte> recv_buffer{};
  bool matched = false;
  // common
  bool complete_ = false;
  Status result_;
  RecvInfo info_;
};

using RequestPtr = std::shared_ptr<Request>;

class Endpoint {
 public:
  /// Retransmissions of one message before the receiver gives up and
  /// surfaces kDataPoisoned.
  static constexpr int kMaxRetransmits = 3;
  /// Completed sends (per destination) whose payloads stay staged for
  /// possible retransmission; older copies are evicted.
  static constexpr std::size_t kRetransmitStagingDepth = 8;
  /// Byte budget of the per-destination retransmit staging. A long
  /// one-way stream of large eager messages must not grow host memory
  /// without bound, so the depth bound above is joined by this byte
  /// bound; the newest copy always stays staged.
  static constexpr std::size_t kRetransmitStagingBytes = std::size_t{1} << 20;
  /// One rendezvous RTS descriptor is published per this many payload
  /// bytes, so the receiver pulls segment k while the sender writes k+1
  /// (a single end-of-message announcement would serialize the two sides
  /// and lose to eager pipelining at low rank counts).
  static constexpr std::size_t kRendezvousSegmentBytes = std::size_t{128}
                                                        << 10;
  /// Rendezvous slots staged toward one destination whose FIN is still
  /// outstanding; further large sends to that destination wait (bounds
  /// pool consumption under a one-way stream).
  static constexpr std::size_t kMaxRendezvousInflight = 8;
  /// FINished slots kept per destination for reuse (skips the arena
  /// create/destroy round-trip on the next large message). Sized to the
  /// inflight cap: an OSU-style window of concurrent sends returns that
  /// many slots at once, and a smaller cache would destroy and re-create
  /// the excess every iteration (measured 3.6x bandwidth loss at 128 KiB
  /// with a depth-2 cache under an 8-message window).
  static constexpr std::size_t kRendezvousSlotCacheDepth =
      kMaxRendezvousInflight;
  /// Cells reaped from one peer ring per doorbell visit before the
  /// progress loop moves on (fairness bound) — and therefore the span of
  /// one deferred head publish / one amortized invalidate-sweep setup.
  static constexpr std::size_t kReapBatchCells = 16;
  /// Producer-side batch bounds: staged cells are published when either
  /// the cell count or the staged payload bytes reach these. A final
  /// partial batch is left parked across nonblocking sends, so a burst of
  /// isends coalesces into one fence + tail store; it is flushed at every
  /// engine entry (progress/test/wait) and in the destructor, and any
  /// blocked or ring-full exit publishes eagerly. The byte bound keeps
  /// large-cell streams pipelining per cell instead of collapsing into
  /// batch-lockstep.
  static constexpr std::size_t kPublishBatchCells = 16;
  static constexpr std::size_t kPublishBatchBytes = std::size_t{16} << 10;
  /// Every this-many progress() calls the engine drains ALL peer rings
  /// regardless of doorbell state: belt-and-braces bound on the staleness
  /// of the unfenced doorbell hint word.
  static constexpr std::uint64_t kFullScanInterval = 64;

  /// Collective construction: every rank of the universe calls this during
  /// initialization. Rank 0 creates and formats the ring matrix in the
  /// arena (or re-opens it if a previous epoch of this pool already built
  /// it — a respawned universe run attaches to the surviving rings);
  /// everyone else opens it; the §3.4 barrier closes the epoch.
  static Endpoint create(runtime::RankCtx& ctx);

  /// Flushes library-generated control traffic (ssend acks, NAKs,
  /// retransmissions) still queued behind a full ring — the peer's
  /// blocking call is waiting on exactly that traffic, so dropping it
  /// here would wedge the peer forever. Bounded; skipped entirely on a
  /// crashed rank's unwind (a corpse must not touch the pool).
  ~Endpoint();
  Endpoint(Endpoint&&) = default;
  Endpoint& operator=(Endpoint&&) = delete;
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // --- Blocking operations ---
  /// MPI_Send: blocks until the message is fully staged into cells.
  Status send(int dst, int tag, std::span<const std::byte> data);
  /// MPI_Recv: blocks until a matching message has fully arrived.
  Result<RecvInfo> recv(int src, int tag, std::span<std::byte> buffer);

  /// MPI_Ssend: blocks until the receiver has matched the message (not
  /// just until the data is staged into cells).
  Status ssend(int dst, int tag, std::span<const std::byte> data);

  // --- Nonblocking operations ---
  RequestPtr isend(int dst, int tag, std::span<const std::byte> data);
  /// MPI_Issend: completes only after the receiver matched the message.
  RequestPtr issend(int dst, int tag, std::span<const std::byte> data);
  RequestPtr irecv(int src, int tag, std::span<std::byte> buffer);

  /// MPI_Test: advance progress; true if the request finished.
  bool test(const RequestPtr& request);
  /// MPI_Wait: block until the request finishes; returns its status.
  Status wait(const RequestPtr& request);
  /// MPI_Waitall.
  Status wait_all(std::span<const RequestPtr> requests);

  // --- Deadline- and failure-aware blocking (liveness layer) ---
  //
  // The plain blocking calls above trust every peer to stay alive; these
  // variants beat this rank's heartbeat while waiting, watch the peer's
  // lease, and never outlive their deadline. On failure the request is
  // cancelled as cleanly as the wire allows (see each case below) and the
  // verdict is recorded as the request's result:
  //   * kPeerFailed — the specific peer the request depends on is dead
  //     (never returned for a kAnySource receive: no single peer to blame),
  //   * kTimedOut — deadline expired with every watched peer still alive.
  // One cancellation is NOT clean: a send whose chunks are partially
  // staged into the ring cannot be withdrawn without corrupting the FIFO
  // for the (live) consumer; wait_for then returns kTimedOut but leaves
  // the request pending (wait on it again, or let the universe tear down).
  Status wait_for(const RequestPtr& request, std::chrono::milliseconds timeout);
  /// Deadline recv: a timed-out posted receive is withdrawn (the caller's
  /// buffer is released; chunks of a half-arrived match are discarded).
  Result<RecvInfo> recv_for(int src, int tag, std::span<std::byte> buffer,
                            std::chrono::milliseconds timeout);
  /// Deadline send (completes on full staging, like send).
  Status send_for(int dst, int tag, std::span<const std::byte> data,
                  std::chrono::milliseconds timeout);
  /// Deadline ssend: kPeerFailed when the receiver dies before matching.
  Status ssend_for(int dst, int tag, std::span<const std::byte> data,
                   std::chrono::milliseconds timeout);

  /// MPI_Iprobe: is a matching message available (fully or partially
  /// arrived)? Does not consume it.
  std::optional<RecvInfo> iprobe(int src, int tag);

  /// MPI_Probe: block until a matching message is available; returns its
  /// envelope without consuming it.
  RecvInfo probe(int src, int tag);

  /// MPI_Sendrecv: simultaneous exchange without deadlock.
  Status sendrecv(int dst, int send_tag, std::span<const std::byte> out,
                  int src, int recv_tag, std::span<std::byte> in,
                  RecvInfo* info = nullptr);

  /// Pump the progress engine once (drain rings, push pending sends).
  void progress();

  /// Cumulative communication statistics for this rank. Safe to read from
  /// other threads while this rank progresses (atomic fields).
  [[nodiscard]] const CommStats& stats() const noexcept { return *stats_; }

  /// Sizes of the internal bookkeeping containers. Test hook: soak tests
  /// assert these stay bounded over many messages (completed requests must
  /// not accumulate in the endpoint).
  struct DebugQueueSizes {
    std::size_t posted_recvs = 0;
    std::size_t unexpected = 0;
    std::size_t matched_keepalive = 0;
    std::size_t pending_ssends = 0;
    std::size_t send_queued = 0;  // across all destinations
    std::size_t staged_bytes = 0;  // retransmit staging, all destinations
    std::size_t rendezvous_inflight = 0;  // slots awaiting FIN, all dsts
    std::size_t rendezvous_cached = 0;    // recycled slots held, all dsts
  };
  [[nodiscard]] DebugQueueSizes debug_queue_sizes() const noexcept;

  /// Sender-side in-flight rendezvous slots toward `dst` (fully announced,
  /// FIN not yet received). Lets fault-injection tests aim poison at the
  /// slab bytes a deferred (unexpected-message) pull will read.
  struct DebugRdvzSlot {
    std::uint32_t seq = 0;
    std::uint64_t pool_offset = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] std::vector<DebugRdvzSlot> debug_rendezvous_inflight(
      int dst) const;
  /// Effective eager/rendezvous switchover in bytes (resolved from the
  /// UniverseConfig at construction).
  [[nodiscard]] std::size_t rendezvous_threshold() const noexcept {
    return rdvz_threshold_;
  }
  /// Live knob settings toward `dst`. Static mode (tuning off) returns the
  /// construction-time defaults for every destination.
  [[nodiscard]] const tune::KnobSettings& knobs(int dst) const noexcept {
    return policy_.settings(dst);
  }
  /// The periodic knob controller, or null when tuning is off. Exposes the
  /// decision journal to tests and benches.
  [[nodiscard]] const tune::Controller* tune_controller() const noexcept {
    return controller_.get();
  }

  /// What scavenge_peer reclaimed from this endpoint's view of a corpse.
  struct PeerScavengeReport {
    std::uint64_t cells_drained = 0;   ///< published ring cells discarded
    std::uint64_t cells_torn = 0;      ///< cells failing generation/CRC
    std::uint64_t requests_failed = 0; ///< requests completed kPeerFailed
    /// Our rendezvous slots toward the corpse destroyed here (in-flight
    /// slots whose FIN will never come, plus idle cached slots).
    std::uint64_t rendezvous_slots_freed = 0;
  };

  /// Endpoint-local half of pool recovery (the pool-global half is
  /// runtime::PoolRecovery; core::Session ties them together). Every
  /// survivor runs this for itself against a convicted-dead peer:
  /// drain/tombstone the corpse's inbound ring (half-written cells are
  /// detected by generation + CRC and discarded), abandon the half-
  /// assembled inbound message, fail outstanding requests that depend on
  /// the corpse with kPeerFailed, and drop retransmit staging + retry
  /// state keyed to it.
  PeerScavengeReport scavenge_peer(int dead_rank);

  /// Pool offset of the ring `sender` produces toward `receiver` (layout
  /// arithmetic; lets fault-injection tests target specific cells).
  [[nodiscard]] std::uint64_t debug_ring_base(int receiver, int sender) const {
    return matrix_.ring_base(receiver, sender);
  }
  [[nodiscard]] std::size_t cell_payload() const noexcept {
    return matrix_.cell_payload();
  }

  [[nodiscard]] int rank() const noexcept { return ctx_->rank(); }
  [[nodiscard]] int nranks() const noexcept { return ctx_->nranks(); }

 private:
  Endpoint(runtime::RankCtx& ctx, queue::QueueMatrix matrix);

  // (RdvzSegment and UnexpectedMsg moved to tag_match.hpp: the sharded
  // unexpected queue owns the message type.)

  /// Per-source assembly state: where the chunks of the in-flight incoming
  /// message are being delivered.
  struct Assembly {
    bool active = false;
    Request* request = nullptr;                  // matched posted recv
    std::shared_ptr<UnexpectedMsg> unexpected;   // or unexpected buffer
    std::size_t total = 0;
    std::size_t received = 0;
    std::uint32_t seq = 0;          // sender's msg_seq (retry/NAK key)
    std::uint32_t src_incarnation = 0;  // incarnation of the first chunk
    bool truncated = false;
    bool synchronous = false;
    bool corrupt = false;           // a chunk failed the generation/CRC scan
    bool fenced = false;            // stale incarnation: discard whole msg
    bool control = false;           // NAK/REJECT/FIN: consumed, not delivered
    bool rendezvous = false;        // cells are RTS descriptors, not payload
    std::uint32_t ssend_counter = 0;
    std::vector<std::byte> control_data;  // control message payload
    /// Media error recorded while chunks were drained (kDataPoisoned).
    Status data_error;
  };

  /// Sender-side staged copy of a locally-completed message, kept for
  /// NAK-triggered retransmission (bounded per destination).
  struct StagedCopy {
    std::uint32_t seq = 0;
    int tag = 0;
    bool synchronous = false;
    std::vector<std::byte> data;
    /// Per-cell CRCs carried over from the fused staging pass, so a
    /// retransmission enqueues prehashed too.
    std::vector<std::uint32_t> chunk_crcs;
  };

  /// Sender-side rendezvous slot fully announced toward a destination,
  /// awaiting that receiver's FIN before the slab can be recycled.
  struct RdvzInflight {
    std::uint32_t seq = 0;
    arena::ObjectHandle slot;
    /// Sender's virtual time when the last RTS was published (obs: the
    /// RTS→FIN lifetime histogram).
    simtime::Ns staged_ns = 0;
  };

  /// Receiver-side state of a message awaiting retransmission, keyed by
  /// (source rank, msg_seq).
  struct RetryState {
    int attempts = 0;       // NAKs sent so far for this message
    int tag = 0;
    bool synchronous = false;
    std::uint32_t ssend_counter = 0;  // reused across retransmits
    std::weak_ptr<Request> request;        // re-posted matched receive
    std::weak_ptr<UnexpectedMsg> unexpected;  // or parked unexpected msg
  };

  void send_ssend_ack(int src, std::uint32_t counter);

  /// What one bounded drain visit of a peer ring left behind.
  struct DrainOutcome {
    bool more = false;         ///< hit the reap cap with cells still queued
    bool drained_any = false;  ///< consumed at least one cell
  };
  DrainOutcome drain_source(int src, std::size_t max_cells);
  void push_sends(int dst);

  /// wait() minus the MPI library-entry charge — the shared blocking loop
  /// for wait() (one charge per request) and wait_all() (one charge per
  /// call, like MPI_Waitall).
  Status wait_uncharged(const RequestPtr& request);
  bool match_unexpected(Request& request);

  /// Publish any staged cells on `ring` toward `dst` now (one fence + one
  /// tail store for the whole batch) and ring/suppress the doorbell from
  /// the batch's empty→non-empty verdict.
  void publish_now(int dst, queue::SpscRing& ring);
  /// Publish every ring with a parked partial batch (see
  /// kPublishBatchCells): the flush point batched nonblocking sends rely
  /// on. Rings the host doorbell when anything went out, so a receiver
  /// sleeping between our stage and our flush is not lost.
  void flush_publishes();
  /// Account one cell publish toward `dst`: ring the destination's
  /// aggregated doorbell slot on an empty→non-empty edge, count a
  /// suppressed ring otherwise.
  void note_publish(int dst, bool edge);

  // --- Large-message rendezvous path ---
  /// Outcome of one attempt to advance a rendezvous send.
  enum class RdvzPush {
    kBlocked,   ///< ring full or inflight budget exhausted; retry later
    kStaged,    ///< fully announced; the slot moved to the inflight list
    kFallback,  ///< no slab available; deliver this message eagerly
  };
  RdvzPush push_rendezvous(int dst, queue::SpscRing& ring, Request& req);
  /// Slab for one outgoing message: recycled from the per-destination
  /// cache when a FINished slot is large enough, freshly created
  /// (deadline-bounded; see Arena::create_for) otherwise.
  Result<arena::ObjectHandle> acquire_rdvz_slot(int dst, std::uint64_t bytes);
  /// Return a slot to the per-destination cache, destroying the overflow.
  void release_rdvz_slot(int dst, arena::ObjectHandle slot);
  void destroy_rdvz_slot(arena::ObjectHandle slot);
  /// Receiver side: pull one segment from the sender's slab into its
  /// place in `buffer` (bytes beyond the buffer are consumed via scratch
  /// and reported as truncation), verifying the segment CRC with bounded
  /// re-reads in place of the eager path's NAK retransmissions.
  void pull_rendezvous_segment(std::uint64_t seg_pool_offset,
                               std::size_t msg_offset, std::size_t seg_bytes,
                               std::uint32_t seg_crc,
                               std::span<std::byte> buffer, bool& corrupt,
                               bool& truncated);

  /// Build the staging copy + per-cell CRCs for an eligible eager user
  /// send in one fused pass over the payload (common/crc32c), and point
  /// the request's send_data at the copy.
  void prepare_eager_staging(Request& request);
  /// Keep a copy of a just-staged user payload for retransmission (moves
  /// the request's staging copy; call after send_data is dropped).
  void stage_for_retransmit(int dst, Request& request);
  /// Queue a 4-byte NAK/REJECT control message carrying `seq`.
  void send_control(int dst, int tag, std::uint32_t seq);
  /// Sender side: act on an arrived NAK or REJECT.
  void handle_control(int src, int tag, std::span<const std::byte> payload);
  /// Sender side: re-send a staged copy (kRetransmit flag, original seq).
  void queue_retransmit(int dst, const StagedCopy& copy);
  /// Receiver side, at a corrupt last chunk: un-match / park the message,
  /// send a NAK, and record retry state. False when the retry budget is
  /// exhausted (caller surfaces the error instead).
  bool begin_retry(int src, int tag, Assembly& assembly);
  /// Receiver side, at a kRetransmit first chunk: attach the assembly to
  /// the waiting request / parked unexpected message from the retry map.
  void attach_retransmit(int src, const queue::CellHeader& header,
                         Assembly& assembly);
  void complete_recv(Request& request, int src, int tag, std::size_t bytes,
                     Status status);
  /// kPeerFailed when the one peer `request` depends on is dead, ok
  /// otherwise (kAnySource receives depend on no single peer).
  Status check_request_liveness(const Request& request);
  /// Withdraw `request` from the endpoint's bookkeeping and complete it
  /// with `verdict`. Returns false (leaving the request pending) only for
  /// the partially-staged-send case, where withdrawal would corrupt the
  /// ring FIFO for a live consumer.
  bool cancel_request(const RequestPtr& request, Status verdict);

  runtime::RankCtx* ctx_;
  queue::QueueMatrix matrix_;
  std::vector<Assembly> assembly_;                  // per source
  std::vector<std::deque<RequestPtr>> send_queues_; // per destination
  std::vector<std::uint32_t> ssend_sent_;           // per destination
  std::vector<std::uint32_t> ssend_seen_;           // per source
  std::vector<std::uint32_t> send_seq_;             // per destination
  std::vector<std::deque<StagedCopy>> staged_copies_;  // per destination
  std::vector<std::size_t> staged_bytes_;              // per destination
  /// Rendezvous sender state, per destination: slots awaiting FIN and the
  /// recycled-slot cache.
  std::vector<std::deque<RdvzInflight>> rdvz_inflight_;
  std::vector<std::deque<arena::ObjectHandle>> rdvz_slot_cache_;
  std::size_t rdvz_threshold_ = 0;   // resolved switchover (bytes)
  /// Knob routing (tune subsystem): every tunable constant above reaches
  /// the hot paths through policy_. Static mode hands back the
  /// construction-time defaults for every destination — bit-identical to
  /// reading the constants — while adaptive mode gives the controller a
  /// per-destination copy to steer.
  tune::Policy policy_;
  /// Periodic AIMD controller; null unless tuning is enabled, so the off
  /// path costs exactly one pointer test per progress() call.
  std::unique_ptr<tune::Controller> controller_;
  /// Warm-start dispatch table, shared across endpoints reading the same
  /// file; owned here because the controller keeps a raw pointer to it.
  std::shared_ptr<const tune::DispatchTable> table_;
  std::uint64_t rdvz_name_counter_ = 0;  // unique slab names
  /// Messages awaiting retransmission, keyed (source, msg_seq).
  std::map<std::pair<int, std::uint32_t>, RetryState> retry_;
  PostedRecvQueue posted_recvs_;  // sharded, matched in post order
  UnexpectedQueue unexpected_;    // sharded + global arrival order
  /// Aggregated doorbell state (tentpole). dbell_next_[dst] is the value
  /// this rank's NEXT ring toward dst will store (monotonic across
  /// respawns: seeded from the pool word + 1). dbell_seen_[src] is the
  /// last value of src's slot this rank has fully drained behind;
  /// slot != seen means src published since our last complete drain.
  runtime::AggDoorbell dbell_;
  std::vector<std::uint64_t> dbell_next_;  // per destination
  std::vector<std::uint64_t> dbell_seen_;  // per source
  /// A reap-capped visit left cells behind: revisit next progress() even
  /// if the doorbell slot has not moved again.
  std::vector<std::uint8_t> drain_pending_;
  /// Per destination: push_sends parked a partial staged batch on this
  /// ring (cleared by the publish that drains it).
  std::vector<std::uint8_t> publish_dirty_;
  int scan_start_ = 0;             // rotating fairness offset
  std::uint64_t progress_calls_ = 0;
  bool legacy_ = false;            // kLegacyScan ablation engine
  /// Publish every cell individually (legacy engine, or any fault
  /// injector configured: scripted kill points assert exact per-sync-point
  /// published-cell counts, which batching would coarsen).
  bool publish_per_cell_ = false;
  /// Keeps matched-but-incomplete posted receives alive while their chunks
  /// stream in (the assembly holds a raw pointer).
  std::vector<RequestPtr> matched_keepalive_;
  /// Synchronous sends fully staged into cells, awaiting the match ack.
  std::vector<RequestPtr> pending_ssends_;
  /// Heap-held so the address is stable across Endpoint moves (the obs
  /// provider below captures it) and the defaulted move ctor still works.
  std::unique_ptr<CommStats> stats_;
  /// Exposes stats_ to the obs metrics registry as the p2p.* family.
  obs::ProviderRegistration obs_registration_;
  std::vector<std::byte> scratch_;  // truncated-chunk staging
};

}  // namespace cmpi::p2p
