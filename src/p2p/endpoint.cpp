#include "p2p/endpoint.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace cmpi::p2p {

Endpoint Endpoint::create(runtime::RankCtx& ctx) {
  const auto& cfg = ctx.config();
  std::optional<queue::QueueMatrix> matrix;
  if (ctx.rank() == 0) {
    matrix = check_ok(queue::QueueMatrix::create(
        ctx.arena(), ctx.acc(), ctx.nranks(), cfg.ring_cells,
        cfg.cell_payload));
  }
  ctx.barrier();  // §3.4: creation epoch closes before anyone opens
  if (ctx.rank() != 0) {
    matrix = check_ok(
        queue::QueueMatrix::open(ctx.arena(), ctx.acc(), ctx.nranks()));
  }
  ctx.barrier();
  return Endpoint(ctx, std::move(*matrix));
}

Endpoint::Endpoint(runtime::RankCtx& ctx, queue::QueueMatrix matrix)
    : ctx_(&ctx),
      matrix_(std::move(matrix)),
      assembly_(static_cast<std::size_t>(ctx.nranks())),
      send_queues_(static_cast<std::size_t>(ctx.nranks())),
      ssend_sent_(static_cast<std::size_t>(ctx.nranks()), 0),
      ssend_seen_(static_cast<std::size_t>(ctx.nranks()), 0) {}

namespace {
/// Internal tag space for synchronous-send acknowledgements: per-pair
/// sequence numbers folded into a reserved range above user and
/// collective tags. FIFO per pair keeps sender and receiver counters in
/// step.
constexpr int kSsendAckBase = 1 << 23;
constexpr std::uint32_t kSsendAckRange = 1u << 20;

int ssend_ack_tag(std::uint32_t counter) {
  return kSsendAckBase + static_cast<int>(counter % kSsendAckRange);
}

bool is_internal_tag(int tag) { return tag >= kSsendAckBase; }
}  // namespace

// ---------- Send path ----------

RequestPtr Endpoint::isend(int dst, int tag,
                           std::span<const std::byte> data) {
  CMPI_EXPECTS(dst >= 0 && dst < nranks());
  CMPI_EXPECTS(tag >= 0);
  ctx_->charge_mpi_overhead();
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kSend;
  request->peer = dst;
  request->tag = tag;
  request->send_data = data;
  if (!is_internal_tag(tag)) {
    ++stats_.messages_sent;
    stats_.bytes_sent += data.size();
  }
  send_queues_[static_cast<std::size_t>(dst)].push_back(request);
  push_sends(dst);
  return request;
}

Status Endpoint::send(int dst, int tag, std::span<const std::byte> data) {
  return wait(isend(dst, tag, data));
}

RequestPtr Endpoint::issend(int dst, int tag,
                            std::span<const std::byte> data) {
  CMPI_EXPECTS(dst >= 0 && dst < nranks());
  CMPI_EXPECTS(tag >= 0);
  ctx_->charge_mpi_overhead();
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kSend;
  request->peer = dst;
  request->tag = tag;
  request->send_data = data;
  ++stats_.messages_sent;
  stats_.bytes_sent += data.size();
  request->synchronous = true;
  // Post the internal ack receive before the data can possibly arrive.
  const std::uint32_t counter =
      ssend_sent_[static_cast<std::size_t>(dst)]++;
  request->ack = irecv(dst, ssend_ack_tag(counter), {});
  send_queues_[static_cast<std::size_t>(dst)].push_back(request);
  push_sends(dst);
  return request;
}

Status Endpoint::ssend(int dst, int tag, std::span<const std::byte> data) {
  return wait(issend(dst, tag, data));
}

void Endpoint::push_sends(int dst) {
  auto& pending = send_queues_[static_cast<std::size_t>(dst)];
  queue::SpscRing& ring = matrix_.ring(ctx_->acc(), dst, rank());
  const std::size_t cell = matrix_.cell_payload();
  while (!pending.empty()) {
    Request& req = *pending.front();
    const std::size_t total = req.send_data.size();
    bool made_progress = false;
    while (req.bytes_pushed < total || (total == 0 && !req.staged)) {
      const std::size_t chunk =
          std::min(cell, total - req.bytes_pushed);
      const bool last = req.bytes_pushed + chunk == total;
      queue::CellHeader header{};
      header.src_rank = static_cast<std::uint64_t>(rank());
      header.tag = static_cast<std::uint64_t>(req.tag);
      header.total_bytes = total;
      header.chunk_offset = req.bytes_pushed;
      header.chunk_bytes = chunk;
      header.flags = (last ? queue::kLastChunk : 0) |
                     (req.synchronous ? queue::kSyncSend : 0);
      if (!ring.try_enqueue(ctx_->acc(), header,
                            req.send_data.subspan(req.bytes_pushed, chunk))) {
        break;
      }
      made_progress = true;
      req.bytes_pushed += chunk;
      if (last) {
        req.staged = true;
        break;
      }
    }
    if (made_progress) {
      ctx_->doorbell().ring();
    }
    if (!req.staged) {
      return;  // ring full; resume in a later progress() call
    }
    // All chunks are in cells now; drop the reference to the caller's
    // buffer so a completed request cannot dangle into freed memory.
    req.send_data = {};
    if (req.synchronous) {
      // Completion comes with the receiver's match ack (progress()).
      pending_ssends_.push_back(pending.front());
    } else {
      req.complete_ = true;
    }
    pending.pop_front();
  }
}

void Endpoint::send_ssend_ack(int src, std::uint32_t counter) {
  // Zero-byte internal message; its tag encodes the per-pair sequence.
  const RequestPtr ack = isend(src, ssend_ack_tag(counter), {});
  // Zero-byte sends stage immediately unless the ring is full; either way
  // the send queue's progress machinery owns it now.
  (void)ack;
}

// ---------- Receive path ----------

RequestPtr Endpoint::irecv(int src, int tag, std::span<std::byte> buffer) {
  CMPI_EXPECTS(src == kAnySource || (src >= 0 && src < nranks()));
  CMPI_EXPECTS(tag == kAnyTag || tag >= 0);
  ctx_->charge_mpi_overhead();
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kRecv;
  request->peer = src;
  request->tag = tag;
  request->recv_buffer = buffer;
  if (!match_unexpected(*request)) {
    posted_recvs_.push_back(request);
  }
  return request;
}

Result<RecvInfo> Endpoint::recv(int src, int tag,
                                std::span<std::byte> buffer) {
  const RequestPtr request = irecv(src, tag, buffer);
  const Status status = wait(request);
  if (!status.is_ok()) {
    return status;
  }
  return request->info();
}

bool Endpoint::match_unexpected(Request& request) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    UnexpectedMsg& msg = **it;
    if (!msg.full() ||
        !tags_match(request.peer, request.tag, msg.source, msg.tag)) {
      continue;
    }
    const std::size_t copy = std::min(msg.total, request.recv_buffer.size());
    // One extra host copy — the cost of an unexpected arrival, same as in
    // MPICH. The CXL-side copy was already charged when the chunk was
    // drained.
    if (copy > 0) {
      std::memcpy(request.recv_buffer.data(), msg.data.data(), copy);
      ctx_->clock().advance(
          static_cast<double>(copy) /
          ctx_->device().timing().params().local_mem_bytes_per_ns);
    }
    const bool truncated = msg.total > request.recv_buffer.size();
    Status delivery = Status::ok();
    if (!msg.data_error.is_ok()) {
      delivery = msg.data_error;  // poison recorded at drain time
    } else if (truncated) {
      delivery = status::truncated("message larger than recv buffer");
    }
    complete_recv(request, msg.source, msg.tag, copy, std::move(delivery));
    if (msg.synchronous) {
      // The sender's Ssend may complete now: the message is matched.
      send_ssend_ack(msg.source, msg.ssend_counter);
    }
    unexpected_.erase(it);
    return true;
  }
  return false;
}

void Endpoint::complete_recv(Request& request, int src, int tag,
                             std::size_t bytes, Status status) {
  if (!is_internal_tag(tag)) {
    ++stats_.messages_received;
    stats_.bytes_received += bytes;
  }
  request.info_.source = src;
  request.info_.tag = tag;
  request.info_.bytes = bytes;
  request.result_ = std::move(status);
  request.complete_ = true;
  request.recv_buffer = {};  // done with the caller's buffer
}

void Endpoint::drain_source(int src) {
  queue::SpscRing& ring = matrix_.ring(ctx_->acc(), rank(), src);
  Assembly& assembly = assembly_[static_cast<std::size_t>(src)];
  bool drained_any = false;
  for (;;) {
    const std::optional<queue::CellHeader> header = ring.peek(ctx_->acc());
    if (!header.has_value()) {
      break;
    }
    const int tag = static_cast<int>(header->tag);
    if (!assembly.active) {
      // First chunk of a new message: match against posted receives.
      assembly.active = true;
      assembly.total = header->total_bytes;
      assembly.received = 0;
      assembly.truncated = false;
      assembly.request = nullptr;
      assembly.unexpected = nullptr;
      assembly.synchronous = (header->flags & queue::kSyncSend) != 0;
      if (assembly.synchronous) {
        // Arrival order mirrors the sender's issend order (FIFO ring).
        assembly.ssend_counter =
            ssend_seen_[static_cast<std::size_t>(src)]++;
      }
      auto posted = std::find_if(
          posted_recvs_.begin(), posted_recvs_.end(), [&](const RequestPtr& r) {
            return tags_match(r->peer, r->tag, src, tag);
          });
      if (posted != posted_recvs_.end()) {
        assembly.request = posted->get();
        assembly.request->matched = true;
        // Keep the shared_ptr alive through assembly.
        assembly.unexpected = nullptr;
        matched_keepalive_.push_back(*posted);
        posted_recvs_.erase(posted);
      } else {
        auto msg = std::make_shared<UnexpectedMsg>();
        if (!is_internal_tag(tag)) {
          ++stats_.unexpected_messages;
        }
        msg->source = src;
        msg->tag = tag;
        msg->total = header->total_bytes;
        msg->data.resize(header->total_bytes);
        msg->synchronous = assembly.synchronous;
        msg->ssend_counter = assembly.ssend_counter;
        assembly.unexpected = msg;
        unexpected_.push_back(msg);
      }
    }

    // Deliver this chunk.
    queue::CellHeader consumed{};
    if (assembly.request != nullptr) {
      std::span<std::byte> buffer = assembly.request->recv_buffer;
      if (header->chunk_offset + header->chunk_bytes <= buffer.size()) {
        ring.try_dequeue(ctx_->acc(), consumed,
                         buffer.subspan(header->chunk_offset,
                                        header->chunk_bytes));
      } else {
        // Truncation: consume through a scratch buffer, keep what fits.
        scratch_.resize(header->chunk_bytes);
        ring.try_dequeue(ctx_->acc(), consumed, scratch_);
        assembly.truncated = true;
        if (header->chunk_offset < buffer.size()) {
          const std::size_t fits = buffer.size() - header->chunk_offset;
          std::memcpy(buffer.data() + header->chunk_offset, scratch_.data(),
                      fits);
        }
      }
    } else if (assembly.unexpected != nullptr) {
      ring.try_dequeue(
          ctx_->acc(), consumed,
          std::span<std::byte>(assembly.unexpected->data)
              .subspan(header->chunk_offset, header->chunk_bytes));
      assembly.unexpected->received += header->chunk_bytes;
    } else {
      // Detached: the matched receive was cancelled (deadline/failure)
      // mid-assembly. Keep the FIFO coherent by consuming and discarding
      // the rest of the message.
      scratch_.resize(header->chunk_bytes);
      ring.try_dequeue(ctx_->acc(), consumed, scratch_);
    }
    if (ctx_->acc().poison_pending() && assembly.data_error.is_ok()) {
      assembly.data_error = ctx_->acc().take_poison_status(
          "recv payload from rank " + std::to_string(src));
    }
    assembly.received += header->chunk_bytes;
    drained_any = true;

    if ((header->flags & queue::kLastChunk) != 0) {
      CMPI_ASSERT(assembly.received == assembly.total);
      if (assembly.request != nullptr) {
        Request& req = *assembly.request;
        Status delivery = Status::ok();
        if (!assembly.data_error.is_ok()) {
          delivery = assembly.data_error;
        } else if (assembly.truncated) {
          delivery = status::truncated("message larger than recv buffer");
        }
        complete_recv(req, src, tag,
                      std::min(assembly.total, req.recv_buffer.size()),
                      std::move(delivery));
        std::erase_if(matched_keepalive_, [&](const RequestPtr& r) {
          return r.get() == &req;
        });
        if (assembly.synchronous) {
          send_ssend_ack(src, assembly.ssend_counter);
        }
      } else if (assembly.unexpected != nullptr) {
        assembly.unexpected->data_error = assembly.data_error;
        // The unexpected message is now complete: a posted wildcard may
        // have been waiting for it.
        auto posted = std::find_if(
            posted_recvs_.begin(), posted_recvs_.end(),
            [&](const RequestPtr& r) {
              return tags_match(r->peer, r->tag, src, tag);
            });
        if (posted != posted_recvs_.end()) {
          RequestPtr req = *posted;
          posted_recvs_.erase(posted);
          const bool found = match_unexpected(*req);
          CMPI_ASSERT(found);
        }
      }
      // (Detached assemblies complete silently — the message was consumed
      // on behalf of a cancelled receive.)
      assembly = Assembly{};
    }
  }
  if (drained_any) {
    ctx_->doorbell().ring();
  }
}

// ---------- Progress / completion ----------

void Endpoint::progress() {
  for (int src = 0; src < nranks(); ++src) {
    if (src != rank()) {
      drain_source(src);
    }
  }
  for (int dst = 0; dst < nranks(); ++dst) {
    if (!send_queues_[static_cast<std::size_t>(dst)].empty()) {
      push_sends(dst);
    }
  }
  // Synchronous sends complete once their match ack arrived. Drop the
  // internal ack request with the pending entry — a completed Ssend held
  // by the caller must not pin endpoint bookkeeping.
  std::erase_if(pending_ssends_, [](const RequestPtr& req) {
    if (req->ack != nullptr && req->ack->complete_) {
      req->ack.reset();
      req->complete_ = true;
      return true;
    }
    return false;
  });
  // Defensive sweep: a matched receive is normally unpinned the moment its
  // last chunk completes it (drain_source), but nothing else guarantees
  // that, so keep the invariant "no completed request lingers" here too.
  std::erase_if(matched_keepalive_,
                [](const RequestPtr& req) { return req->complete_; });
}

Endpoint::DebugQueueSizes Endpoint::debug_queue_sizes() const noexcept {
  DebugQueueSizes sizes;
  sizes.posted_recvs = posted_recvs_.size();
  sizes.unexpected = unexpected_.size();
  sizes.matched_keepalive = matched_keepalive_.size();
  sizes.pending_ssends = pending_ssends_.size();
  for (const auto& queue : send_queues_) {
    sizes.send_queued += queue.size();
  }
  return sizes;
}

bool Endpoint::test(const RequestPtr& request) {
  CMPI_EXPECTS(request != nullptr);
  ctx_->charge_mpi_overhead();
  if (request->complete_) {
    return true;
  }
  progress();
  return request->complete_;
}

Status Endpoint::wait(const RequestPtr& request) {
  CMPI_EXPECTS(request != nullptr);
  ctx_->charge_mpi_overhead();
  const double entered = ctx_->clock().now();
  while (!request->complete_) {
    progress();
    if (request->complete_) {
      break;
    }
    ctx_->doorbell().wait_once();
  }
  stats_.wait_ns += ctx_->clock().now() - entered;
  return request->result_;
}

Status Endpoint::wait_all(std::span<const RequestPtr> requests) {
  Status first_error;
  for (const RequestPtr& r : requests) {
    const Status s = wait(r);
    if (!s.is_ok() && first_error.is_ok()) {
      first_error = s;
    }
  }
  return first_error;
}

Status Endpoint::check_request_liveness(const Request& request) {
  const int peer = request.peer;
  if (peer == kAnySource) {
    return Status::ok();  // no single peer to watch
  }
  runtime::FailureDetector& detector = ctx_->failure_detector();
  if (!detector.dead(ctx_->acc(), peer)) {
    return Status::ok();
  }
  if (request.kind == Request::Kind::kRecv) {
    return status::peer_failed(
        request.matched
            ? "recv: rank " + std::to_string(peer) + " died mid-message"
            : "recv: rank " + std::to_string(peer) +
                  " died before sending a match");
  }
  return status::peer_failed(
      request.staged
          ? "send: rank " + std::to_string(peer) +
                " died before acknowledging the match"
          : "send: rank " + std::to_string(peer) +
                " died with its receive ring full");
}

bool Endpoint::cancel_request(const RequestPtr& request, Status verdict) {
  Request& req = *request;
  const bool peer_dead = verdict.code() == ErrorCode::kPeerFailed;
  if (req.kind == Request::Kind::kRecv) {
    std::erase_if(posted_recvs_,
                  [&](const RequestPtr& r) { return r.get() == &req; });
    if (req.matched) {
      // Detach the half-delivered assembly; if the producer is still
      // alive, drain_source discards the remaining chunks into scratch.
      for (Assembly& a : assembly_) {
        if (a.request == &req) {
          a.request = nullptr;
        }
      }
      std::erase_if(matched_keepalive_,
                    [&](const RequestPtr& r) { return r.get() == &req; });
    }
  } else {
    auto& queue = send_queues_[static_cast<std::size_t>(req.peer)];
    const auto queued = std::find_if(
        queue.begin(), queue.end(),
        [&](const RequestPtr& r) { return r.get() == &req; });
    if (queued != queue.end()) {
      if (req.bytes_pushed > 0 && !req.staged && !peer_dead) {
        // Chunks already sit in the ring: withdrawing would desynchronize
        // the live consumer's assembly. The deadline verdict stands, but
        // the request must stay pending.
        return false;
      }
      queue.erase(queued);
    }
    if (req.synchronous) {
      std::erase_if(pending_ssends_,
                    [&](const RequestPtr& r) { return r.get() == &req; });
      if (req.ack != nullptr) {
        // Withdraw the internal ack receive with its Ssend.
        std::erase_if(posted_recvs_, [&](const RequestPtr& r) {
          return r.get() == req.ack.get();
        });
        req.ack->complete_ = true;
        req.ack.reset();
      }
    }
  }
  req.send_data = {};
  req.recv_buffer = {};
  req.result_ = std::move(verdict);
  req.complete_ = true;
  return true;
}

Status Endpoint::wait_for(const RequestPtr& request,
                          std::chrono::milliseconds timeout) {
  CMPI_EXPECTS(request != nullptr);
  ctx_->charge_mpi_overhead();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const double entered = ctx_->clock().now();
  runtime::FailureDetector& detector = ctx_->failure_detector();
  while (!request->complete_) {
    progress();
    if (request->complete_) {
      break;
    }
    detector.beat(ctx_->acc());
    Status alive = check_request_liveness(*request);
    if (!alive.is_ok()) {
      // A dead peer cancels unconditionally — there is no live consumer
      // left for a partially-staged send to corrupt.
      cancel_request(request, std::move(alive));
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      Status timed = status::timed_out(
          (request->kind == Request::Kind::kRecv ? "recv" : "send") +
          std::string(" involving rank ") + std::to_string(request->peer) +
          " missed its deadline");
      if (!cancel_request(request, timed)) {
        stats_.wait_ns += ctx_->clock().now() - entered;
        return timed;  // request left pending (see header)
      }
      break;
    }
    ctx_->doorbell().wait_once();
  }
  stats_.wait_ns += ctx_->clock().now() - entered;
  return request->result_;
}

Result<RecvInfo> Endpoint::recv_for(int src, int tag,
                                    std::span<std::byte> buffer,
                                    std::chrono::milliseconds timeout) {
  const RequestPtr request = irecv(src, tag, buffer);
  const Status status = wait_for(request, timeout);
  if (!status.is_ok()) {
    return status;
  }
  return request->info();
}

Status Endpoint::send_for(int dst, int tag, std::span<const std::byte> data,
                          std::chrono::milliseconds timeout) {
  return wait_for(isend(dst, tag, data), timeout);
}

Status Endpoint::ssend_for(int dst, int tag, std::span<const std::byte> data,
                           std::chrono::milliseconds timeout) {
  return wait_for(issend(dst, tag, data), timeout);
}

RecvInfo Endpoint::probe(int src, int tag) {
  std::optional<RecvInfo> found;
  ctx_->doorbell().wait_until([&] {
    found = iprobe(src, tag);
    return found.has_value();
  });
  return *found;
}

Status Endpoint::sendrecv(int dst, int send_tag,
                          std::span<const std::byte> out, int src,
                          int recv_tag, std::span<std::byte> in,
                          RecvInfo* info) {
  const RequestPtr send_req = isend(dst, send_tag, out);
  const RequestPtr recv_req = irecv(src, recv_tag, in);
  const Status send_status = wait(send_req);
  const Status recv_status = wait(recv_req);
  if (info != nullptr) {
    *info = recv_req->info();
  }
  return send_status.is_ok() ? recv_status : send_status;
}

std::optional<RecvInfo> Endpoint::iprobe(int src, int tag) {
  ctx_->charge_mpi_overhead();
  progress();
  for (const auto& msg : unexpected_) {
    if (tags_match(src, tag, msg->source, msg->tag)) {
      RecvInfo info;
      info.source = msg->source;
      info.tag = msg->tag;
      info.bytes = msg->total;
      return info;
    }
  }
  return std::nullopt;
}

}  // namespace cmpi::p2p
