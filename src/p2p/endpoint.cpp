#include "p2p/endpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>

#include "common/crc32c.hpp"
#include "common/log.hpp"
#include "cxlsim/fault_injector.hpp"
#include "obs/obs.hpp"
#include "tune/tune.hpp"

namespace cmpi::p2p {

Endpoint Endpoint::create(runtime::RankCtx& ctx) {
  const auto& cfg = ctx.config();
  std::optional<queue::QueueMatrix> matrix;
  if (ctx.rank() == 0) {
    // Open-before-create: in a second Universe::run epoch over the same
    // pool (crash → scavenge → respawn) the matrix already exists; its
    // ring views re-attach at the published counters.
    Result<queue::QueueMatrix> existing =
        queue::QueueMatrix::open(ctx.arena(), ctx.acc(), ctx.nranks());
    if (existing.is_ok()) {
      matrix = std::move(existing).value();
    } else {
      matrix = check_ok(queue::QueueMatrix::create(
          ctx.arena(), ctx.acc(), ctx.nranks(), cfg.ring_cells,
          cfg.cell_payload));
    }
  }
  ctx.barrier();  // §3.4: creation epoch closes before anyone opens
  if (ctx.rank() != 0) {
    matrix = check_ok(
        queue::QueueMatrix::open(ctx.arena(), ctx.acc(), ctx.nranks()));
  }
  ctx.barrier();
  return Endpoint(ctx, std::move(*matrix));
}

Endpoint::Endpoint(runtime::RankCtx& ctx, queue::QueueMatrix matrix)
    : ctx_(&ctx),
      matrix_(std::move(matrix)),
      assembly_(static_cast<std::size_t>(ctx.nranks())),
      send_queues_(static_cast<std::size_t>(ctx.nranks())),
      ssend_sent_(static_cast<std::size_t>(ctx.nranks()), 0),
      ssend_seen_(static_cast<std::size_t>(ctx.nranks()), 0),
      send_seq_(static_cast<std::size_t>(ctx.nranks()), 0),
      staged_copies_(static_cast<std::size_t>(ctx.nranks())),
      staged_bytes_(static_cast<std::size_t>(ctx.nranks()), 0),
      rdvz_inflight_(static_cast<std::size_t>(ctx.nranks())),
      rdvz_slot_cache_(static_cast<std::size_t>(ctx.nranks())),
      dbell_(ctx.doorbell_base(), ctx.nranks()),
      dbell_next_(static_cast<std::size_t>(ctx.nranks()), 1),
      dbell_seen_(static_cast<std::size_t>(ctx.nranks()), 0),
      drain_pending_(static_cast<std::size_t>(ctx.nranks()), 0),
      publish_dirty_(static_cast<std::size_t>(ctx.nranks()), 0),
      stats_(std::make_unique<CommStats>()) {
  const std::size_t configured = ctx.config().rendezvous_threshold;
  rdvz_threshold_ = configured == 0 ? matrix_.cell_payload() : configured;
  // Resolve every tunable knob into the policy defaults. With tuning off
  // the static policy hands these back unchanged from every settings()
  // call — the data path is bit-identical to reading the constants.
  tune::KnobSettings defaults;
  defaults.rendezvous_threshold = rdvz_threshold_;
  defaults.pipeline_quantum = ctx.config().rendezvous_quantum == 0
                                  ? kRendezvousSegmentBytes
                                  : ctx.config().rendezvous_quantum;
  defaults.inflight_depth = ctx.config().rendezvous_inflight == 0
                                ? kMaxRendezvousInflight
                                : ctx.config().rendezvous_inflight;
  defaults.publish_batch_cells = kPublishBatchCells;
  defaults.publish_batch_bytes = kPublishBatchBytes;
  if (tune::tuning_enabled(ctx.config().tune)) {
    policy_ = tune::Policy::make_adaptive(ctx.nranks(), defaults);
    table_ = tune::shared_table(ctx.config().tune);
    tune::ControllerConfig tuner;
    tuner.period_ns = ctx.config().tune.period_ns;
    // Below one cell payload the eager path is a single enqueue and
    // rendezvous can only lose; keep the threshold floor there. The
    // quantum floor tracks the cell payload too so a tuned-down segment
    // still fills whole bulk pieces.
    tuner.min_threshold = std::max(tuner.min_threshold,
                                   matrix_.cell_payload());
    tuner.min_quantum = std::max(tuner.min_quantum, matrix_.cell_payload());
    tuner.cell_payload = matrix_.cell_payload();
    tuner.seed = tune::resolve_seed(ctx.config().tune, ctx.rank());
    controller_ = std::make_unique<tune::Controller>(tuner, table_.get());
  } else {
    policy_ = tune::Policy::make_static(ctx.nranks(), defaults);
  }
  legacy_ =
      ctx.config().progress_engine == runtime::ProgressEngine::kLegacyScan;
  // Batched cell publication coarsens which cells are visible at a
  // scripted kill point; the fault/recovery tests assert exact per-sync-
  // point published-cell counts, so any configured injector keeps the
  // per-cell publish discipline (perf runs carry no injector).
  publish_per_cell_ = legacy_ || ctx.device().fault_injector() != nullptr;
  if (!legacy_) {
    for (int r = 0; r < ctx.nranks(); ++r) {
      if (r == ctx.rank()) {
        continue;
      }
      const auto s = static_cast<std::size_t>(r);
      // Sender side: the pool word survives respawns; continuing past it
      // keeps the slot monotonic whether or not scavenge cleared it.
      dbell_next_[s] = dbell_.peek(ctx.acc(), r, ctx.rank()) + 1;
      // Receiver side: start one behind so the first progress() visits
      // every peer once (cells published before we attached have no edge
      // ring coming).
      dbell_seen_[s] = dbell_.peek(ctx.acc(), ctx.rank(), r) - 1;
    }
  }
  obs_registration_ = obs::ProviderRegistration([stats = stats_.get()] {
    return std::vector<obs::Sample>{
        {"p2p.messages_sent",
         stats->messages_sent.load(std::memory_order_relaxed)},
        {"p2p.messages_received",
         stats->messages_received.load(std::memory_order_relaxed)},
        {"p2p.bytes_sent", stats->bytes_sent.load(std::memory_order_relaxed)},
        {"p2p.bytes_received",
         stats->bytes_received.load(std::memory_order_relaxed)},
        {"p2p.unexpected_messages",
         stats->unexpected_messages.load(std::memory_order_relaxed)},
        {"p2p.rendezvous_sent",
         stats->rendezvous_sent.load(std::memory_order_relaxed)},
        {"p2p.rendezvous_bytes",
         stats->rendezvous_bytes.load(std::memory_order_relaxed)},
        {"p2p.eager_messages",
         stats->eager_messages.load(std::memory_order_relaxed)},
        {"p2p.eager_bytes",
         stats->eager_bytes.load(std::memory_order_relaxed)},
        {"p2p.rendezvous_fallbacks",
         stats->rendezvous_fallbacks.load(std::memory_order_relaxed)},
        {"p2p.publish_batches",
         stats->publish_batches.load(std::memory_order_relaxed)},
        {"p2p.cells_published",
         stats->cells_published.load(std::memory_order_relaxed)},
        {"p2p.doorbell_rings",
         stats->doorbell_rings.load(std::memory_order_relaxed)},
        {"p2p.doorbell_suppressed",
         stats->doorbell_suppressed.load(std::memory_order_relaxed)},
        {"p2p.wait_ns",
         static_cast<std::uint64_t>(
             stats->wait_ns.load(std::memory_order_relaxed))}};
  });
}

namespace {
/// Internal tag space for synchronous-send acknowledgements: per-pair
/// sequence numbers folded into a reserved range above user and
/// collective tags. FIFO per pair keeps sender and receiver counters in
/// step.
constexpr int kSsendAckBase = 1 << 23;
constexpr std::uint32_t kSsendAckRange = 1u << 20;

/// Retransmission control tags, above the ssend-ack range. Both carry a
/// 4-byte payload: the msg_seq of the message they speak about.
constexpr int kNakTag = kSsendAckBase + static_cast<int>(kSsendAckRange);
constexpr int kRejectTag = kNakTag + 1;
/// Rendezvous FIN: the receiver finished pulling message msg_seq (4-byte
/// payload) from the sender's slab; the sender may recycle the slot.
constexpr int kRdvzFinTag = kRejectTag + 1;

int ssend_ack_tag(std::uint32_t counter) {
  return kSsendAckBase + static_cast<int>(counter % kSsendAckRange);
}

bool is_internal_tag(int tag) { return tag >= kSsendAckBase; }

/// On-ring payload of one rendezvous RTS cell: where in the pool one
/// segment of the message lives. The cell header still carries the real
/// message envelope (tag, total_bytes, msg_seq) for matching/probing.
struct RdvzDescriptor {
  std::uint64_t slot_offset = 0;  ///< absolute pool offset of the slab
  std::uint64_t seg_offset = 0;   ///< segment's offset within the message
  std::uint64_t total_bytes = 0;  ///< message size (header cross-check)
  std::uint32_t seg_bytes = 0;
  std::uint32_t seg_crc = 0;      ///< CRC32C of the segment in the slab
};
static_assert(sizeof(RdvzDescriptor) == 32);

/// Deadline for arena-lock acquisition on the rendezvous data path: long
/// enough to never fire behind live contention, short enough that a lock
/// wedged under a corpse degrades the send to eager instead of hanging it.
constexpr std::chrono::milliseconds kRdvzLockTimeout{100};

/// Bounded sub-chunk for slab bulk transfers. One monolithic multi-MiB op
/// would saturate the memory-hierarchy contention penalty (the very
/// collapse Fig. 5 shows for naive one-sided bulk ops), while tiny ops
/// drown in per-op flush setup. The cell payload is the granularity §4.3
/// already tuned for exactly this copy-size trade-off, so slab transfers
/// move at the same stride the eager path would have used — floored at
/// the contention threshold so a small-cell configuration doesn't drag
/// the large-message path down with it.
std::size_t rdvz_bulk_chunk(std::size_t cell_payload,
                            const cxlsim::CxlTimingParams& params) {
  return std::max<std::size_t>(cell_payload, params.contention_threshold);
}
}  // namespace

Endpoint::~Endpoint() {
  // A receiver can complete its last user-facing call with library
  // control traffic (ssend acks, NAKs, retransmissions) still queued
  // behind a momentarily full ring. The peer's blocking call is waiting
  // on exactly that traffic — and is therefore draining its ring — so a
  // short bounded flush always terminates when the peer is alive, and
  // dropping the traffic instead would wedge the peer forever.
  if (send_queues_.empty()) {
    return;  // moved-from shell
  }
  const cxlsim::FaultInjector* injector = ctx_->device().fault_injector();
  if (injector != nullptr && injector->rank_crashed(rank())) {
    return;  // a corpse must not touch the pool during unwind
  }
  try {
    // Batched nonblocking sends may have parked their final publish; the
    // endpoint going away is the last flush point there is.
    flush_publishes();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(1);
    for (;;) {
      // Arm before checking: a peer's drain landing between the check and
      // the sleep below must not be lost (see Doorbell::epoch).
      const std::uint64_t armed = ctx_->doorbell().epoch();
      const auto has_control = [](const auto& pending) {
        return std::any_of(pending.begin(), pending.end(),
                           [](const RequestPtr& r) {
                             return is_internal_tag(r->tag) ||
                                    (r->force_flags & queue::kRetransmit) != 0;
                           });
      };
      bool control_pending = false;
      for (int dst = 0; dst < nranks(); ++dst) {
        auto& pending = send_queues_[static_cast<std::size_t>(dst)];
        if (!has_control(pending) ||
            (injector != nullptr && injector->rank_crashed(dst))) {
          continue;  // abandoned user sends are the application's problem
        }
        push_sends(dst);
        control_pending = control_pending || has_control(pending);
      }
      flush_publishes();  // push_sends defers its tail publish
      if (!control_pending) {
        break;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        log_warn("endpoint teardown: control traffic still unstaged after "
                 "1 s; peer gone — dropping it");
        break;
      }
      ctx_->doorbell().wait_past(armed);
    }
    // Best-effort FIN collection: receivers FIN the moment a rendezvous
    // message is delivered, so a FIN for a still-inflight slot is usually
    // already sitting in our inbound ring. One non-blocking drain pass
    // recycles those slots into the cache. Slots whose FIN never arrived
    // stay allocated on purpose — a live peer may still pull them; pool
    // scavenge reclaims them if we die, pool teardown otherwise.
    for (int src = 0; src < nranks(); ++src) {
      if (src == rank() ||
          rdvz_inflight_[static_cast<std::size_t>(src)].empty() ||
          (injector != nullptr && injector->rank_crashed(src))) {
        continue;
      }
      drain_source(src, std::numeric_limits<std::size_t>::max());
    }
    // A crashed receiver will never FIN: its inflight slots are ours to
    // destroy (its own pool state is the scavenger's job, these slabs are
    // ours).
    if (injector != nullptr) {
      for (int dst = 0; dst < nranks(); ++dst) {
        if (!injector->rank_crashed(dst)) {
          continue;
        }
        auto& inflight = rdvz_inflight_[static_cast<std::size_t>(dst)];
        for (RdvzInflight& entry : inflight) {
          destroy_rdvz_slot(std::move(entry.slot));
        }
        inflight.clear();
      }
    }
    // Cached (FINished) slots are idle and ours: destroy them so repeated
    // sessions over one pool do not bleed arena space.
    for (auto& cache : rdvz_slot_cache_) {
      for (arena::ObjectHandle& slot : cache) {
        destroy_rdvz_slot(std::move(slot));
      }
      cache.clear();
    }
  } catch (...) {
    // Best-effort: a fault-plan crash firing inside the flush (the
    // injector has already recorded it) must not escape a destructor.
  }
}

// ---------- Send path ----------

RequestPtr Endpoint::isend(int dst, int tag,
                           std::span<const std::byte> data) {
  CMPI_EXPECTS(dst >= 0 && dst < nranks());
  CMPI_EXPECTS(tag >= 0);
  ctx_->charge_mpi_overhead();
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kSend;
  request->peer = dst;
  request->tag = tag;
  request->send_data = data;
  request->rendezvous =
      !is_internal_tag(tag) &&
      data.size() > policy_.settings(dst).rendezvous_threshold;
  request->seq = send_seq_[static_cast<std::size_t>(dst)]++;
  if (!is_internal_tag(tag)) {
    ++stats_->messages_sent;
    stats_->bytes_sent += data.size();
  }
  CMPI_OBS_SPAN_ARG(
      request->rendezvous ? "p2p.isend_rdvz" : "p2p.isend_eager", "bytes",
      data.size());
  send_queues_[static_cast<std::size_t>(dst)].push_back(request);
  push_sends(dst);
  return request;
}

Status Endpoint::send(int dst, int tag, std::span<const std::byte> data) {
  return wait(isend(dst, tag, data));
}

RequestPtr Endpoint::issend(int dst, int tag,
                            std::span<const std::byte> data) {
  CMPI_EXPECTS(dst >= 0 && dst < nranks());
  CMPI_EXPECTS(tag >= 0);
  ctx_->charge_mpi_overhead();
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kSend;
  request->peer = dst;
  request->tag = tag;
  request->send_data = data;
  request->rendezvous =
      data.size() > policy_.settings(dst).rendezvous_threshold;
  request->seq = send_seq_[static_cast<std::size_t>(dst)]++;
  ++stats_->messages_sent;
  stats_->bytes_sent += data.size();
  CMPI_OBS_SPAN_ARG(
      request->rendezvous ? "p2p.issend_rdvz" : "p2p.issend_eager", "bytes",
      data.size());
  request->synchronous = true;
  // Post the internal ack receive before the data can possibly arrive.
  const std::uint32_t counter =
      ssend_sent_[static_cast<std::size_t>(dst)]++;
  request->ack = irecv(dst, ssend_ack_tag(counter), {});
  send_queues_[static_cast<std::size_t>(dst)].push_back(request);
  push_sends(dst);
  return request;
}

Status Endpoint::ssend(int dst, int tag, std::span<const std::byte> data) {
  return wait(issend(dst, tag, data));
}

void Endpoint::push_sends(int dst) {
  auto& pending = send_queues_[static_cast<std::size_t>(dst)];
  queue::SpscRing& ring = matrix_.ring(ctx_->acc(), dst, rank());
  const std::size_t cell = matrix_.cell_payload();
  const tune::KnobSettings& knobs = policy_.settings(dst);
  tune::DestSignals& signals = policy_.signals(dst);
  // Bytes staged-but-unpublished by THIS call (the cell-count threshold
  // reads ring.staged_pending() directly).
  std::size_t batch_bytes = 0;
  while (!pending.empty()) {
    Request& req = *pending.front();
    if (req.rendezvous) {
      const RdvzPush outcome = push_rendezvous(dst, ring, req);
      if (outcome == RdvzPush::kBlocked) {
        publish_now(dst, ring);
        return;  // ring/slot budget full; resume in a later progress()
      }
      if (outcome == RdvzPush::kFallback) {
        continue;  // re-enter this same request through the eager path
      }
      // Staged: the payload lives in the slab until the receiver's FIN;
      // the caller's buffer is no longer referenced.
      req.send_data = {};
    } else {
      prepare_eager_staging(req);
      const std::size_t total = req.send_data.size();
      bool made_progress = false;
      while (req.bytes_pushed < total || (total == 0 && !req.staged)) {
        const std::size_t chunk =
            std::min(cell, total - req.bytes_pushed);
        const bool last = req.bytes_pushed + chunk == total;
        queue::CellHeader header{};
        header.src_rank = static_cast<std::uint32_t>(rank());
        header.src_incarnation = ctx_->incarnation();
        header.tag = static_cast<std::uint32_t>(req.tag);
        header.msg_seq = req.seq;
        header.total_bytes = total;
        header.chunk_offset = req.bytes_pushed;
        header.chunk_bytes = static_cast<std::uint32_t>(chunk);
        header.flags = (last ? queue::kLastChunk : 0u) |
                       (req.synchronous ? queue::kSyncSend : 0u) |
                       req.force_flags;
        const auto payload = req.send_data.subspan(req.bytes_pushed, chunk);
        if (!req.chunk_crcs.empty()) {
          // The fused staging pass already checksummed each cell chunk;
          // hand the CRC in so the ring skips its own pass.
          header.payload_crc = req.chunk_crcs[req.bytes_pushed / cell];
        }
        const bool prehashed = !req.chunk_crcs.empty();
        bool enqueued;
        if (publish_per_cell_) {
          enqueued = prehashed
                         ? ring.try_enqueue_prehashed(ctx_->acc(), header,
                                                      payload)
                         : ring.try_enqueue(ctx_->acc(), header, payload);
          if (enqueued) {
            ++stats_->publish_batches;  // a batch of one, for the ablation
            ++stats_->cells_published;
            note_publish(dst, ring.last_publish_edge());
          }
        } else {
          enqueued = prehashed
                         ? ring.try_stage_prehashed(ctx_->acc(), header,
                                                    payload)
                         : ring.try_stage(ctx_->acc(), header, payload);
        }
        if (!enqueued) {
          ++signals.ring_full;
          break;
        }
        made_progress = true;
        req.bytes_pushed += chunk;
        batch_bytes += chunk;
        if (!publish_per_cell_ &&
            (ring.staged_pending() >= knobs.publish_batch_cells ||
             batch_bytes >= knobs.publish_batch_bytes)) {
          publish_now(dst, ring);
          batch_bytes = 0;
        }
        // Scripted kill location for the recovery tests: the chunk is
        // durably in the ring but the message may be incomplete — exactly
        // the partial state a host dying mid-send leaves behind. Any run
        // with a fault injector takes the per-cell publish path above, so
        // the chunk IS published when this fires.
        ctx_->acc().fault_sync_point("p2p-chunk-staged");
        if (last) {
          req.staged = true;
          break;
        }
      }
      if (made_progress) {
        ctx_->doorbell().ring();
      }
      if (!req.staged) {
        publish_now(dst, ring);
        return;  // ring full; resume in a later progress() call
      }
      // All chunks are in cells now; drop the reference to the payload
      // before staging moves it, so a completed request cannot dangle.
      req.send_data = {};
      stage_for_retransmit(dst, req);
      if (!is_internal_tag(req.tag) && req.force_flags == 0) {
        // User message fully staged through the eager path (control
        // traffic and retransmissions excluded, mirroring messages_sent).
        ++stats_->eager_messages;
        stats_->eager_bytes += total;
        ++signals.eager_messages;
        signals.eager_bytes += total;
      }
    }
    if (req.synchronous) {
      // Completion comes with the receiver's match ack (progress()).
      pending_ssends_.push_back(pending.front());
    } else {
      req.complete_ = true;
    }
    pending.pop_front();
  }
  // Tail of a fully-staged call: park the final partial batch instead of
  // publishing, so a burst of back-to-back nonblocking sends coalesces
  // into one fence + tail store. Every path that returns control to a
  // consumer of this data flushes first — progress()/test()/wait entry
  // and the destructor — so a parked batch never outlives the next
  // engine entry. (Blocked and ring-full exits above still publish
  // eagerly: the consumer must drain for us to make progress.)
  if (ring.staged_pending() > 0) {
    publish_dirty_[static_cast<std::size_t>(dst)] = 1;
  }
}

void Endpoint::publish_now(int dst, queue::SpscRing& ring) {
  publish_dirty_[static_cast<std::size_t>(dst)] = 0;
  const std::size_t batch = ring.staged_pending();
  if (batch == 0) {
    return;
  }
  const bool edge = ring.publish_staged(ctx_->acc());
  ++stats_->publish_batches;
  stats_->cells_published += batch;
  note_publish(dst, edge);
}

void Endpoint::flush_publishes() {
  bool published = false;
  for (int dst = 0; dst < nranks(); ++dst) {
    if (publish_dirty_[static_cast<std::size_t>(dst)] == 0) {
      continue;
    }
    queue::SpscRing& ring = matrix_.ring(ctx_->acc(), dst, rank());
    published = published || ring.staged_pending() > 0;
    publish_now(dst, ring);
  }
  if (published) {
    // The stage-time host-doorbell ring may have fired before the cells
    // were visible; re-ring now that they are, so a receiver that woke,
    // found nothing, and re-armed is not stranded.
    ctx_->doorbell().ring();
  }
}

void Endpoint::note_publish(int dst, bool edge) {
  if (legacy_) {
    return;  // the legacy engine scans every ring; no doorbell traffic
  }
  if (edge) {
    const auto d = static_cast<std::size_t>(dst);
    dbell_.ring(ctx_->acc(), dst, rank(), dbell_next_[d]++);
    ++stats_->doorbell_rings;
  } else {
    ++stats_->doorbell_suppressed;
  }
}

Endpoint::RdvzPush Endpoint::push_rendezvous(int dst, queue::SpscRing& ring,
                                             Request& req) {
  const std::size_t total = req.send_data.size();
  const tune::KnobSettings& knobs = policy_.settings(dst);
  tune::DestSignals& signals = policy_.signals(dst);
  auto& inflight = rdvz_inflight_[static_cast<std::size_t>(dst)];
  if (!req.rdvz_slot.has_value()) {
    if (inflight.size() >= knobs.inflight_depth) {
      ++signals.inflight_blocked;
      return RdvzPush::kBlocked;  // wait for the receiver's FINs
    }
    Result<arena::ObjectHandle> slot = acquire_rdvz_slot(dst, total);
    if (!slot.is_ok()) {
      // Pool pressure, or the arena lock is wedged behind a corpse:
      // deliver through the eager path instead of failing the send.
      req.rendezvous = false;
      ++stats_->rendezvous_fallbacks;
      return RdvzPush::kFallback;
    }
    req.rdvz_slot = std::move(slot).value();
  }
  cxlsim::Accessor& acc = ctx_->acc();
  const std::uint64_t slab = req.rdvz_slot->pool_offset;
  const std::size_t piece_max =
      rdvz_bulk_chunk(matrix_.cell_payload(), acc.device().timing().params());
  // Segment quantum: small enough that even a just-over-threshold message
  // pipelines a few segments deep against the receiver (single-segment
  // delivery would serialize writer and reader and lose the eager path's
  // per-cell overlap), large enough that the per-segment RTS/fence cost
  // stays amortized on multi-MiB messages. Only the sender chooses — the
  // receiver follows whatever bounds each RTS descriptor carries. The cap
  // is the per-destination pipeline quantum (default
  // kRendezvousSegmentBytes); floored at piece_max so a tuned-down
  // quantum still covers one bulk piece. Latched per message: the knob
  // moving between resumed announcement attempts must not shift the
  // segment boundaries the staged CRC was computed over.
  if (req.rdvz_quantum == 0) {
    req.rdvz_quantum =
        std::clamp((total / 8 + piece_max - 1) / piece_max * piece_max,
                   piece_max, std::max(piece_max, knobs.pipeline_quantum));
  }
  const std::size_t seg_quantum = req.rdvz_quantum;
  bool enqueued_any = false;
  while (req.bytes_pushed < total) {
    const std::size_t seg_begin = req.bytes_pushed;
    const std::size_t seg = std::min(seg_quantum, total - seg_begin);
    if (req.rdvz_written <= seg_begin) {
      // Write the segment into the slab in bounded sub-chunks, folding
      // the CRC in as the bytes stream past (host-side, charge-free).
      std::uint32_t crc = 0;
      for (std::size_t off = 0; off < seg; off += piece_max) {
        const std::size_t piece = std::min(piece_max, seg - off);
        const auto piece_span = req.send_data.subspan(seg_begin + off, piece);
        acc.bulk_write(slab + seg_begin + off, piece_span);
        crc = crc32c(piece_span, crc);
      }
      req.rdvz_seg_crc = crc;
      req.rdvz_written = seg_begin + seg;
      // Scripted kill location: slab writes issued but the RTS never
      // published — the receiver never learns of this segment and the
      // slot is reclaimed by pool scavenge.
      acc.fault_sync_point("p2p-rdvz-slab-written");
    }
    if (!ring.can_enqueue(acc)) {
      ++signals.ring_full;
      break;  // the written segment is announced on a later attempt
    }
    RdvzDescriptor desc;
    desc.slot_offset = slab;
    desc.seg_offset = seg_begin;
    desc.total_bytes = total;
    desc.seg_bytes = static_cast<std::uint32_t>(seg);
    desc.seg_crc = req.rdvz_seg_crc;
    const bool last = seg_begin + seg == total;
    queue::CellHeader header{};
    header.src_rank = static_cast<std::uint32_t>(rank());
    header.src_incarnation = ctx_->incarnation();
    header.tag = static_cast<std::uint32_t>(req.tag);
    header.msg_seq = req.seq;
    header.total_bytes = total;
    header.chunk_offset = seg_begin;
    header.chunk_bytes = static_cast<std::uint32_t>(sizeof(desc));
    header.flags = queue::kRendezvous | (last ? queue::kLastChunk : 0u) |
                   (req.synchronous ? queue::kSyncSend : 0u);
    // The RTS publish covers the slab segment too: try_enqueue's sfence
    // drains the pending slab writes before the tail flag moves, so the
    // receiver's slab reads causally follow a durable segment.
    acc.annotate_publish_range(slab + seg_begin, seg);
    const bool enqueued = ring.try_enqueue(
        acc, header,
        {reinterpret_cast<const std::byte*>(&desc), sizeof(desc)});
    CMPI_ASSERT(enqueued);  // can_enqueue held above
    ++stats_->publish_batches;  // RTS cells publish per-cell by design:
    ++stats_->cells_published;  // segment pipelining needs each durable now
    note_publish(dst, ring.last_publish_edge());
    enqueued_any = true;
    req.bytes_pushed = seg_begin + seg;
    // Scripted kill location: the RTS is durable — the receiver can pull
    // this segment from the slab even if the sender dies now.
    acc.fault_sync_point("p2p-rdvz-rts");
  }
  if (enqueued_any) {
    ctx_->doorbell().ring();
  }
  if (req.bytes_pushed < total) {
    return RdvzPush::kBlocked;  // ring full mid-announcement
  }
  req.staged = true;
  CMPI_OBS_INSTANT_ARG("p2p.rdvz_rts_complete", "seq", req.seq);
  inflight.push_back(RdvzInflight{req.seq, std::move(*req.rdvz_slot),
                                  ctx_->clock().now()});
  req.rdvz_slot.reset();
  ++stats_->rendezvous_sent;
  stats_->rendezvous_bytes += total;
  ++signals.rdvz_messages;
  signals.rdvz_bytes += total;
  return RdvzPush::kStaged;
}

Result<arena::ObjectHandle> Endpoint::acquire_rdvz_slot(int dst,
                                                        std::uint64_t bytes) {
  auto& cache = rdvz_slot_cache_[static_cast<std::size_t>(dst)];
  for (auto it = cache.begin(); it != cache.end(); ++it) {
    if (it->size >= bytes) {
      arena::ObjectHandle slot = std::move(*it);
      cache.erase(it);
      CMPI_OBS_COUNT("p2p.rdvz_slot_reuse", 1);
      return slot;
    }
  }
  CMPI_OBS_COUNT("p2p.rdvz_slot_create", 1);
  // Unique name per allocation: recycled slots keep their original name,
  // so the counter never collides even across reuse.
  const std::string name = std::string(arena::kRendezvousNamePrefix) +
                           std::to_string(rank()) + "." +
                           std::to_string(dst) + "." +
                           std::to_string(rdvz_name_counter_++);
  const cxlsim::FaultInjector* injector = ctx_->device().fault_injector();
  return ctx_->arena().create_for(
      name, bytes, arena::Ownership::kOwned, kRdvzLockTimeout,
      [injector](std::size_t participant) {
        return injector != nullptr &&
               injector->rank_crashed(static_cast<int>(participant));
      });
}

void Endpoint::destroy_rdvz_slot(arena::ObjectHandle slot) {
  const cxlsim::FaultInjector* injector = ctx_->device().fault_injector();
  const Status destroyed = ctx_->arena().destroy_for(
      slot, kRdvzLockTimeout, [injector](std::size_t participant) {
        return injector != nullptr &&
               injector->rank_crashed(static_cast<int>(participant));
      });
  if (!destroyed.is_ok() && destroyed.code() != ErrorCode::kNotFound) {
    // Deliberate leak on a wedged arena lock: scavenging whoever holds it
    // unblocks future destroys, and the slab is reclaimed with us if we
    // die, or at pool teardown.
    log_warn("rendezvous slot '%s' not destroyed: %s", slot.name.c_str(),
             destroyed.message().c_str());
  }
}

void Endpoint::release_rdvz_slot(int dst, arena::ObjectHandle slot) {
  auto& cache = rdvz_slot_cache_[static_cast<std::size_t>(dst)];
  cache.push_back(std::move(slot));
  while (cache.size() > kRendezvousSlotCacheDepth) {
    arena::ObjectHandle victim = std::move(cache.front());
    cache.pop_front();
    destroy_rdvz_slot(std::move(victim));
  }
}

void Endpoint::pull_rendezvous_segment(std::uint64_t seg_pool_offset,
                                       std::size_t msg_offset,
                                       std::size_t seg_bytes,
                                       std::uint32_t seg_crc,
                                       std::span<std::byte> buffer,
                                       bool& corrupt, bool& truncated) {
  cxlsim::Accessor& acc = ctx_->acc();
  if (msg_offset + seg_bytes > buffer.size()) {
    truncated = true;
  }
  const std::size_t piece_max =
      rdvz_bulk_chunk(matrix_.cell_payload(), acc.device().timing().params());
  // The slab stays live until we FIN, so a CRC mismatch here is repaired
  // by re-reading in place — the rendezvous analogue of the eager path's
  // NAK/retransmit loop, with the same attempt budget.
  for (std::size_t attempt = 0; attempt <= kMaxRetransmits; ++attempt) {
    std::uint32_t crc = 0;
    for (std::size_t off = 0; off < seg_bytes; off += piece_max) {
      const std::size_t piece = std::min(piece_max, seg_bytes - off);
      const std::size_t at = msg_offset + off;
      const bool fits = at + piece <= buffer.size();
      std::span<std::byte> dst;
      if (fits) {
        dst = buffer.subspan(at, piece);
      } else {
        // Truncation: consume through scratch, keep the bytes that fit.
        scratch_.resize(piece);
        dst = std::span<std::byte>(scratch_).subspan(0, piece);
      }
      acc.bulk_read(seg_pool_offset + off, dst);
      crc = crc32c(dst, crc);
      if (!fits && at < buffer.size()) {
        std::memcpy(buffer.data() + at, dst.data(), buffer.size() - at);
      }
    }
    if (crc == seg_crc) {
      return;
    }
    ctx_->recovery_counters().crc_failures.fetch_add(1);
    if (acc.poison_pending()) {
      break;  // media poison is sticky; re-reading cannot clear it
    }
  }
  corrupt = true;
}

void Endpoint::send_ssend_ack(int src, std::uint32_t counter) {
  // Zero-byte internal message; its tag encodes the per-pair sequence.
  const RequestPtr ack = isend(src, ssend_ack_tag(counter), {});
  // Zero-byte sends stage immediately unless the ring is full; either way
  // the send queue's progress machinery owns it now.
  (void)ack;
}

// ---------- Payload integrity: NAK / retransmission ----------

void Endpoint::prepare_eager_staging(Request& req) {
  // Only user payloads get a staging copy: internal messages carry no
  // data worth retransmitting, a retransmission already owns its copy,
  // and a repeat call (ring was full last attempt) finds `owned` built.
  if (req.send_data.empty() || !req.owned.empty() ||
      is_internal_tag(req.tag) || req.force_flags != 0 ||
      !req.chunk_crcs.empty()) {
    return;
  }
  // One fused pass replaces three (memcpy for staging, CRC in the ring's
  // enqueue, and the eventual retransmit source): copy into the staging
  // buffer while folding the CRC per cell chunk, then push the cells
  // straight out of that copy with try_enqueue_prehashed. Host-side
  // bookkeeping (like a NIC retaining its DMA buffer) — no virtual time.
  const std::size_t total = req.send_data.size();
  const std::size_t cell = matrix_.cell_payload();
  req.owned.resize(total);
  req.chunk_crcs.reserve((total + cell - 1) / cell);
  for (std::size_t off = 0; off < total; off += cell) {
    const std::size_t chunk = std::min(cell, total - off);
    req.chunk_crcs.push_back(copy_and_crc32c(
        req.owned.data() + off, req.send_data.subspan(off, chunk)));
  }
  req.send_data = req.owned;
}

void Endpoint::stage_for_retransmit(int dst, Request& req) {
  if (is_internal_tag(req.tag) ||
      (req.force_flags & queue::kRetransmit) != 0 || req.owned.empty()) {
    return;
  }
  auto& staged = staged_copies_[static_cast<std::size_t>(dst)];
  StagedCopy copy;
  copy.seq = req.seq;
  copy.tag = req.tag;
  copy.synchronous = req.synchronous;
  copy.data = std::move(req.owned);
  copy.chunk_crcs = std::move(req.chunk_crcs);
  staged_bytes_[static_cast<std::size_t>(dst)] += copy.data.size();
  staged.push_back(std::move(copy));
  // Dual bound — entry count and bytes — so neither many small messages
  // nor one long stream of large ones grows host memory without limit.
  // The newest copy always survives: the message just staged must be
  // NAKable at least once.
  while ((staged.size() > kRetransmitStagingDepth ||
          staged_bytes_[static_cast<std::size_t>(dst)] >
              kRetransmitStagingBytes) &&
         staged.size() > 1) {
    staged_bytes_[static_cast<std::size_t>(dst)] -=
        staged.front().data.size();
    staged.pop_front();
    CMPI_OBS_COUNT("p2p.staging_evictions", 1);
  }
}

void Endpoint::send_control(int dst, int tag, std::uint32_t seq) {
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kSend;
  request->peer = dst;
  request->tag = tag;
  request->seq = send_seq_[static_cast<std::size_t>(dst)]++;
  request->owned.resize(sizeof(seq));
  std::memcpy(request->owned.data(), &seq, sizeof(seq));
  request->send_data = request->owned;
  send_queues_[static_cast<std::size_t>(dst)].push_back(std::move(request));
  push_sends(dst);
}

void Endpoint::queue_retransmit(int dst, const StagedCopy& copy) {
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kSend;
  request->peer = dst;
  request->tag = copy.tag;
  request->seq = copy.seq;  // SAME sequence: the receiver keys retries on it
  request->force_flags =
      queue::kRetransmit | (copy.synchronous ? queue::kSyncSend : 0u);
  // The request owns its payload: the staging entry may be evicted while
  // this retransmission still sits in the send queue.
  request->owned = copy.data;
  request->chunk_crcs = copy.chunk_crcs;
  request->send_data = request->owned;
  CMPI_OBS_INSTANT_ARG("p2p.retransmit", "seq", copy.seq);
  send_queues_[static_cast<std::size_t>(dst)].push_back(std::move(request));
  push_sends(dst);
}

void Endpoint::handle_control(int src, int tag,
                              std::span<const std::byte> payload) {
  if (payload.size() != sizeof(std::uint32_t)) {
    return;  // damaged control message: drop (NAKing a NAK cannot converge)
  }
  std::uint32_t seq = 0;
  std::memcpy(&seq, payload.data(), sizeof(seq));
  if (tag == kRdvzFinTag) {
    // The receiver finished pulling rendezvous message `seq`: its slab is
    // ours again. An unknown seq is benign (the slot was already destroyed
    // by scavenge_peer or teardown).
    auto& inflight = rdvz_inflight_[static_cast<std::size_t>(src)];
    const auto it =
        std::find_if(inflight.begin(), inflight.end(),
                     [&](const RdvzInflight& e) { return e.seq == seq; });
    if (it != inflight.end()) {
      CMPI_OBS_INSTANT_ARG("p2p.rdvz_fin", "seq", seq);
      CMPI_OBS_HIST("p2p.rdvz_rts_to_fin_ns",
                    ctx_->clock().now() - it->staged_ns);
      release_rdvz_slot(src, std::move(it->slot));
      inflight.erase(it);
    }
    return;
  }
  if (tag == kNakTag) {
    // The receiver saw a corrupt payload for our message `seq`.
    auto& staged = staged_copies_[static_cast<std::size_t>(src)];
    const auto it =
        std::find_if(staged.begin(), staged.end(),
                     [&](const StagedCopy& c) { return c.seq == seq; });
    if (it == staged.end()) {
      // Copy evicted: the data is unrecoverable on this side.
      ctx_->recovery_counters().retransmit_rejects.fetch_add(1);
      send_control(src, kRejectTag, seq);
      return;
    }
    ctx_->recovery_counters().retransmits.fetch_add(1);
    queue_retransmit(src, *it);
    return;
  }
  // kRejectTag: our NAK cannot be served — surface kDataPoisoned to
  // whoever is waiting for message `seq`.
  const auto rit = retry_.find({src, seq});
  if (rit == retry_.end()) {
    return;
  }
  const RetryState retry = rit->second;
  retry_.erase(rit);
  Status verdict = status::data_poisoned(
      "payload from rank " + std::to_string(src) +
      " unrecoverable: sender's retransmit staging copy was evicted");
  if (const RequestPtr req = retry.request.lock()) {
    if (posted_recvs_.remove(req.get()) != nullptr) {
      complete_recv(*req, src, retry.tag, 0, std::move(verdict));
    }
  } else if (const std::shared_ptr<UnexpectedMsg> msg =
                 retry.unexpected.lock()) {
    msg->received = msg->total;  // finalize: matchable, delivers the error
    msg->retry_pending = false;
    msg->data_error = std::move(verdict);
  }
}

bool Endpoint::begin_retry(int src, int tag, Assembly& assembly) {
  const auto key = std::make_pair(src, assembly.seq);
  RetryState& retry = retry_[key];
  if (retry.attempts >= kMaxRetransmits) {
    retry_.erase(key);
    return false;  // budget exhausted: the caller surfaces the error
  }
  ++retry.attempts;
  retry.tag = tag;
  retry.synchronous = assembly.synchronous;
  retry.ssend_counter = assembly.ssend_counter;
  if (assembly.request != nullptr) {
    // Un-match: move the keepalive reference back to the HEAD of the
    // posted queue so the retransmission finds the same request first.
    const auto held = std::find_if(
        matched_keepalive_.begin(), matched_keepalive_.end(),
        [&](const RequestPtr& r) { return r.get() == assembly.request; });
    CMPI_ASSERT(held != matched_keepalive_.end());
    RequestPtr req = *held;
    matched_keepalive_.erase(held);
    req->matched = false;
    retry.request = req;
    retry.unexpected.reset();
    const int filter_src = req->peer;
    const int filter_tag = req->tag;
    posted_recvs_.repost_front(std::move(req), filter_src, filter_tag);
  } else if (assembly.unexpected != nullptr) {
    // Park the unexpected message: it stays queued (FIFO position kept)
    // but is unmatchable until the retransmission rewrites it.
    assembly.unexpected->retry_pending = true;
    retry.unexpected = assembly.unexpected;
    retry.request.reset();
  }
  CMPI_OBS_INSTANT_ARG("p2p.nak", "seq", assembly.seq);
  send_control(src, kNakTag, assembly.seq);
  ctx_->recovery_counters().naks_sent.fetch_add(1);
  return true;
}

void Endpoint::attach_retransmit(int src, const queue::CellHeader& header,
                                 Assembly& assembly) {
  const auto it = retry_.find({src, header.msg_seq});
  if (it == retry_.end()) {
    // Unsolicited retransmission (we gave up, or the receive was
    // cancelled): consume and discard via the detached path.
    return;
  }
  RetryState& retry = it->second;
  assembly.synchronous = retry.synchronous;
  assembly.ssend_counter = retry.ssend_counter;
  if (RequestPtr req = retry.request.lock()) {
    if (posted_recvs_.remove(req.get()) != nullptr) {
      req->matched = true;
      assembly.request = req.get();
      matched_keepalive_.push_back(std::move(req));
      return;
    }
  }
  if (std::shared_ptr<UnexpectedMsg> msg = retry.unexpected.lock()) {
    msg->received = 0;  // the retransmission rewrites the buffer in place
    msg->data_error = Status::ok();
    assembly.unexpected = std::move(msg);
    return;
  }
  // The waiting party vanished (cancelled receive): discard detached.
  retry_.erase(it);
}

// ---------- Receive path ----------

RequestPtr Endpoint::irecv(int src, int tag, std::span<std::byte> buffer) {
  CMPI_EXPECTS(src == kAnySource || (src >= 0 && src < nranks()));
  CMPI_EXPECTS(tag == kAnyTag || tag >= 0);
  ctx_->charge_mpi_overhead();
  auto request = std::make_shared<Request>();
  request->kind = Request::Kind::kRecv;
  request->peer = src;
  request->tag = tag;
  request->recv_buffer = buffer;
  if (!match_unexpected(*request)) {
    posted_recvs_.post(request, src, tag);
  }
  return request;
}

Result<RecvInfo> Endpoint::recv(int src, int tag,
                                std::span<std::byte> buffer) {
  CMPI_OBS_SPAN_ARG("p2p.recv", "bytes", buffer.size());
  const RequestPtr request = irecv(src, tag, buffer);
  const Status status = wait(request);
  if (!status.is_ok()) {
    return status;
  }
  return request->info();
}

bool Endpoint::match_unexpected(Request& request) {
  std::size_t probe = 0;
  const UnexpectedMsgPtr found = unexpected_.find_match(
      request.peer, request.tag, /*require_full=*/true, &probe);
  if (found == nullptr) {
    return false;
  }
  CMPI_OBS_HIST("p2p.match_probe_len", probe);
  UnexpectedMsg& msg = *found;
  if (msg.rendezvous) {
    // Deferred one-copy delivery: the payload waited in the sender's
    // slab; pull it pool→user now that the destination is known, then
    // FIN so the sender can recycle the slot.
    Status delivery = Status::ok();
    bool corrupt = false;
    bool truncated = false;
    if (msg.data_error.is_ok()) {
      for (const RdvzSegment& seg : msg.rdvz_segs) {
        pull_rendezvous_segment(
            seg.pool_offset,
            static_cast<std::size_t>(seg.pool_offset -
                                     msg.rdvz_slot_offset),
            seg.bytes, seg.crc, request.recv_buffer, corrupt, truncated);
      }
      if (ctx_->acc().poison_pending()) {
        delivery = ctx_->acc().take_poison_status(
            "recv payload from rank " + std::to_string(msg.source));
      } else if (corrupt) {
        delivery = status::data_poisoned(
            "payload from rank " + std::to_string(msg.source) +
            " still corrupt after " + std::to_string(kMaxRetransmits) +
            " re-reads");
      } else if (truncated || msg.total > request.recv_buffer.size()) {
        delivery = status::truncated("message larger than recv buffer");
      }
    } else {
      delivery = msg.data_error;
    }
    complete_recv(request, msg.source, msg.tag,
                  std::min(msg.total, request.recv_buffer.size()),
                  std::move(delivery));
    if (msg.synchronous) {
      send_ssend_ack(msg.source, msg.ssend_counter);
    }
    send_control(msg.source, kRdvzFinTag, msg.rdvz_seq);
    unexpected_.remove(found.get());
    return true;
  }
  const std::size_t copy = std::min(msg.total, request.recv_buffer.size());
  // One extra host copy — the cost of an unexpected arrival, same as in
  // MPICH. The CXL-side copy was already charged when the chunk was
  // drained.
  if (copy > 0) {
    std::memcpy(request.recv_buffer.data(), msg.data.data(), copy);
    ctx_->clock().advance(
        static_cast<double>(copy) /
        ctx_->device().timing().params().local_mem_bytes_per_ns);
  }
  const bool truncated = msg.total > request.recv_buffer.size();
  Status delivery = Status::ok();
  if (!msg.data_error.is_ok()) {
    delivery = msg.data_error;  // poison recorded at drain time
  } else if (truncated) {
    delivery = status::truncated("message larger than recv buffer");
  }
  complete_recv(request, msg.source, msg.tag, copy, std::move(delivery));
  if (msg.synchronous) {
    // The sender's Ssend may complete now: the message is matched.
    send_ssend_ack(msg.source, msg.ssend_counter);
  }
  unexpected_.remove(found.get());
  return true;
}

void Endpoint::complete_recv(Request& request, int src, int tag,
                             std::size_t bytes, Status status) {
  if (!is_internal_tag(tag)) {
    ++stats_->messages_received;
    stats_->bytes_received += bytes;
  }
  request.info_.source = src;
  request.info_.tag = tag;
  request.info_.bytes = bytes;
  request.result_ = std::move(status);
  request.complete_ = true;
  request.recv_buffer = {};  // done with the caller's buffer
}

Endpoint::DrainOutcome Endpoint::drain_source(int src,
                                              std::size_t max_cells) {
  queue::SpscRing& ring = matrix_.ring(ctx_->acc(), rank(), src);
  Assembly& assembly = assembly_[static_cast<std::size_t>(src)];
  // Batched reaping: the head publish (and with it the invalidate-sweep
  // setup the consumer pays per published head) is deferred across the
  // whole batch and flushed once at every exit below.
  const bool defer = !legacy_;
  if (defer) {
    ring.defer_head_publish(true);
    // Fused header+payload-line reads on the fault-free hot path only:
    // the fault/recovery suites pin the pre-change access pattern (their
    // scripted poison/kill points count individual pool touches), and the
    // legacy ablation must model the pre-change engine.
    ring.enable_fused_small_reads(ctx_->device().fault_injector() == nullptr);
  }
  std::size_t reaped = 0;
  while (reaped < max_cells) {
    std::optional<queue::CellHeader> header = ring.peek(ctx_->acc());
    if (!header.has_value() && defer) {
      // Publish our true head BEFORE concluding empty: the producer's
      // edge detection compares against the published head, and a stale
      // one makes it suppress the doorbell for cells we have not seen —
      // flush, then re-peek, and only a still-empty ring is really empty
      // (its next publish will ring).
      ring.flush_head(ctx_->acc());
      header = ring.peek(ctx_->acc());
    }
    if (!header.has_value()) {
      break;
    }
    const int tag = static_cast<int>(header->tag);
    if (assembly.active &&
        header->src_incarnation != assembly.src_incarnation) {
      // The producer died mid-message and its next incarnation is already
      // publishing into the same ring: the stale assembly's remaining
      // chunks will never arrive. Abandon it (a matched receive fails with
      // kPeerFailed; fenced/unexpected partials vanish silently) and treat
      // this cell as a fresh message start.
      if (assembly.request != nullptr) {
        Request& req = *assembly.request;
        complete_recv(req, src, req.tag, 0,
                      status::peer_failed("recv: rank " +
                                          std::to_string(src) +
                                          " died mid-message"));
        std::erase_if(matched_keepalive_,
                      [&](const RequestPtr& r) { return r.get() == &req; });
      }
      if (assembly.unexpected != nullptr) {
        unexpected_.remove(assembly.unexpected.get());
      }
      assembly = Assembly{};
    }
    if (!assembly.active) {
      // First chunk of a new message: match against posted receives.
      assembly.active = true;
      assembly.total = header->total_bytes;
      assembly.received = 0;
      assembly.seq = header->msg_seq;
      assembly.src_incarnation = header->src_incarnation;
      assembly.truncated = false;
      assembly.corrupt = false;
      assembly.fenced = false;
      assembly.control = false;
      assembly.request = nullptr;
      assembly.unexpected = nullptr;
      assembly.data_error = Status::ok();
      assembly.synchronous = (header->flags & queue::kSyncSend) != 0;
      assembly.rendezvous = (header->flags & queue::kRendezvous) != 0;
      if (header->src_incarnation != ctx_->incarnation(src)) {
        // Incarnation fence: this message was published by a previous
        // (dead) life of `src`. Consume and discard it whole — stale
        // writes must not leak into the new epoch's traffic.
        assembly.fenced = true;
        ctx_->recovery_counters().stale_fenced.fetch_add(1);
      } else if (tag == kNakTag || tag == kRejectTag || tag == kRdvzFinTag) {
        // Retransmission/rendezvous control traffic: consumed, acted on,
        // never delivered to matching.
        assembly.control = true;
        assembly.control_data.assign(header->total_bytes, std::byte{0});
      } else if ((header->flags & queue::kRetransmit) != 0) {
        // Re-sent payload: reattach to whoever NAKed it (no new ssend
        // counter — the original arrival already consumed one).
        attach_retransmit(src, *header, assembly);
      } else {
        if (assembly.synchronous) {
          // Arrival order mirrors the sender's issend order (FIFO ring).
          assembly.ssend_counter =
              ssend_seen_[static_cast<std::size_t>(src)]++;
        }
        std::size_t probe = 0;
        RequestPtr posted = posted_recvs_.take_match(src, tag, &probe);
        CMPI_OBS_HIST("p2p.match_probe_len", probe);
        if (posted != nullptr) {
          assembly.request = posted.get();
          assembly.request->matched = true;
          // Keep the shared_ptr alive through assembly.
          assembly.unexpected = nullptr;
          matched_keepalive_.push_back(std::move(posted));
        } else {
          auto msg = std::make_shared<UnexpectedMsg>();
          if (!is_internal_tag(tag)) {
            ++stats_->unexpected_messages;
          }
          msg->source = src;
          msg->tag = tag;
          msg->total = header->total_bytes;
          if (assembly.rendezvous) {
            // Deferred pull: the payload stays parked in the sender's slab
            // until a receive matches — the one copy happens pool→user.
            msg->rendezvous = true;
            msg->rdvz_seq = header->msg_seq;
          } else {
            msg->data.resize(header->total_bytes);
          }
          msg->synchronous = assembly.synchronous;
          msg->ssend_counter = assembly.ssend_counter;
          assembly.unexpected = msg;
          unexpected_.push(msg);
        }
      }
    }

    // Deliver this chunk.
    queue::CellHeader consumed{};
    if (assembly.control) {
      ring.try_dequeue(ctx_->acc(), consumed,
                       std::span<std::byte>(assembly.control_data)
                           .subspan(header->chunk_offset,
                                    header->chunk_bytes));
    } else if (assembly.rendezvous) {
      // The cell is an RTS descriptor, not payload: decode it, then pull
      // the announced segment straight from the sender's slab.
      RdvzDescriptor desc{};
      scratch_.resize(
          std::max<std::size_t>(header->chunk_bytes, sizeof(desc)));
      ring.try_dequeue(
          ctx_->acc(), consumed,
          std::span<std::byte>(scratch_).subspan(0, header->chunk_bytes));
      bool desc_ok = ring.last_dequeue_intact() &&
                     header->chunk_bytes == sizeof(RdvzDescriptor);
      if (desc_ok) {
        std::memcpy(&desc, scratch_.data(), sizeof(desc));
        desc_ok = desc.total_bytes == assembly.total &&
                  desc.seg_offset + desc.seg_bytes <= assembly.total;
      }
      if (!desc_ok) {
        // A torn descriptor leaves the segment unlocatable; the slab was
        // never touched, so only this message is damaged, not the ring.
        assembly.corrupt = true;
      } else {
        if (assembly.request != nullptr) {
          pull_rendezvous_segment(desc.slot_offset + desc.seg_offset,
                                  desc.seg_offset, desc.seg_bytes,
                                  desc.seg_crc, assembly.request->recv_buffer,
                                  assembly.corrupt, assembly.truncated);
        } else if (assembly.unexpected != nullptr) {
          UnexpectedMsg& msg = *assembly.unexpected;
          msg.rdvz_slot_offset = desc.slot_offset;
          msg.rdvz_segs.push_back(RdvzSegment{
              desc.slot_offset + desc.seg_offset, desc.seg_bytes,
              desc.seg_crc});
          msg.received += desc.seg_bytes;
        }
        // Fenced/detached: descriptor consumed, slab left untouched.
        assembly.received += desc.seg_bytes;
      }
    } else if (assembly.request != nullptr) {
      std::span<std::byte> buffer = assembly.request->recv_buffer;
      if (header->chunk_offset + header->chunk_bytes <= buffer.size()) {
        ring.try_dequeue(ctx_->acc(), consumed,
                         buffer.subspan(header->chunk_offset,
                                        header->chunk_bytes));
      } else {
        // Truncation: consume through a scratch buffer, keep what fits.
        scratch_.resize(header->chunk_bytes);
        ring.try_dequeue(ctx_->acc(), consumed, scratch_);
        assembly.truncated = true;
        if (header->chunk_offset < buffer.size()) {
          const std::size_t fits = buffer.size() - header->chunk_offset;
          std::memcpy(buffer.data() + header->chunk_offset, scratch_.data(),
                      fits);
        }
      }
    } else if (assembly.unexpected != nullptr) {
      ring.try_dequeue(
          ctx_->acc(), consumed,
          std::span<std::byte>(assembly.unexpected->data)
              .subspan(header->chunk_offset, header->chunk_bytes));
      assembly.unexpected->received += header->chunk_bytes;
    } else {
      // Detached: the matched receive was cancelled (deadline/failure)
      // mid-assembly, the message is incarnation-fenced, or a
      // retransmission found no waiting party. Keep the FIFO coherent by
      // consuming and discarding the rest of the message.
      scratch_.resize(header->chunk_bytes);
      ring.try_dequeue(ctx_->acc(), consumed, scratch_);
    }
    if (!ring.last_dequeue_intact()) {
      assembly.corrupt = true;
      ctx_->recovery_counters().crc_failures.fetch_add(1);
    }
    if (ctx_->acc().poison_pending() && assembly.data_error.is_ok()) {
      assembly.data_error = ctx_->acc().take_poison_status(
          "recv payload from rank " + std::to_string(src));
    }
    if (!assembly.rendezvous) {
      assembly.received += header->chunk_bytes;
    }
    ++reaped;

    if ((header->flags & queue::kLastChunk) != 0) {
      // A torn RTS descriptor loses that segment's byte count, so a
      // corrupt rendezvous assembly may legitimately undercount.
      CMPI_ASSERT(assembly.received == assembly.total ||
                  (assembly.rendezvous && assembly.corrupt));
      const bool damaged = assembly.corrupt || !assembly.data_error.is_ok();
      if (assembly.control) {
        if (!damaged) {
          handle_control(src, tag, assembly.control_data);
        }
        // A damaged control message is dropped: retransmitting NAKs of
        // NAKs cannot converge, and the peer's next NAK retries anyway.
      } else if (assembly.request != nullptr) {
        // Rendezvous damage never NAKs: pull_rendezvous_segment already
        // exhausted its re-read budget against the live slab.
        if (damaged && !assembly.rendezvous && begin_retry(src, tag, assembly)) {
          // The request went back to the head of posted_recvs_; the
          // retransmission (or a REJECT) completes it later.
        } else {
          Request& req = *assembly.request;
          Status delivery = Status::ok();
          if (!assembly.data_error.is_ok()) {
            delivery = assembly.data_error;
          } else if (assembly.corrupt) {
            delivery = status::data_poisoned(
                "payload from rank " + std::to_string(src) +
                " still corrupt after " + std::to_string(kMaxRetransmits) +
                (assembly.rendezvous ? " re-reads" : " retransmissions"));
          } else if (assembly.truncated) {
            delivery = status::truncated("message larger than recv buffer");
          }
          complete_recv(req, src, tag,
                        std::min(assembly.total, req.recv_buffer.size()),
                        std::move(delivery));
          std::erase_if(matched_keepalive_, [&](const RequestPtr& r) {
            return r.get() == &req;
          });
          retry_.erase({src, assembly.seq});
          if (assembly.synchronous) {
            send_ssend_ack(src, assembly.ssend_counter);
          }
          if (assembly.rendezvous) {
            // FIN even when damaged: the sender's slab has nothing more
            // to give, so holding its slot hostage helps nobody.
            send_control(src, kRdvzFinTag, assembly.seq);
          }
        }
      } else if (assembly.unexpected != nullptr) {
        if (damaged && !assembly.rendezvous && begin_retry(src, tag, assembly)) {
          // Parked in unexpected_ with retry_pending; the retransmission
          // rewrites it in place.
        } else {
          UnexpectedMsg& msg = *assembly.unexpected;
          msg.retry_pending = false;
          msg.data_error = assembly.data_error;
          if (msg.data_error.is_ok() && assembly.corrupt) {
            msg.data_error = status::data_poisoned(
                "payload from rank " + std::to_string(src) +
                " still corrupt after " + std::to_string(kMaxRetransmits) +
                " retransmissions");
          }
          retry_.erase({src, assembly.seq});
          if (assembly.rendezvous) {
            // A torn descriptor undercounts `received`; force the message
            // matchable so the error (if any) can be delivered.
            msg.received = msg.total;
          }
          // The unexpected message is now complete: a posted wildcard may
          // have been waiting for it.
          if (RequestPtr req = posted_recvs_.take_match(src, tag)) {
            const bool found = match_unexpected(*req);
            CMPI_ASSERT(found);
          }
        }
      } else if (assembly.rendezvous && !assembly.fenced) {
        // Detached rendezvous (the matched receive was cancelled): the
        // payload will never be pulled — FIN now so the sender's slot is
        // not pinned forever.
        send_control(src, kRdvzFinTag, assembly.seq);
      }
      // (Other detached and all fenced assemblies complete silently — the
      // message was consumed on behalf of a cancelled receive, or belongs
      // to a dead incarnation.)
      assembly = Assembly{};
    }
  }
  if (defer) {
    // One head publish covers the whole batch — including the reap-cap
    // exit, so a crashed receiver's unpublished-head window never spans
    // calls (at-least-once redelivery stays confined to one drain).
    ring.flush_head(ctx_->acc());
    ring.defer_head_publish(false);
  }
  DrainOutcome out;
  out.drained_any = reaped > 0;
  out.more = reaped >= max_cells && ring.peek(ctx_->acc()).has_value();
  if (reaped > 0) {
    CMPI_OBS_HIST("p2p.cells_per_reap", reaped);
  }
  if (out.drained_any) {
    ctx_->doorbell().ring();
  }
  return out;
}

// ---------- Progress / completion ----------

void Endpoint::progress() {
  if (controller_ != nullptr) {
    const simtime::Ns now = ctx_->clock().now();
    if (controller_->due(now)) {
      controller_->poll(
          now, policy_,
          tune::gather_global_signals(
              ctx_->recovery_counters().retransmits.load(
                  std::memory_order_relaxed)));
    }
  }
  if (legacy_) {
    // Ablation baseline: visit every peer, drain each ring dry.
    for (int src = 0; src < nranks(); ++src) {
      if (src != rank()) {
        drain_source(src, std::numeric_limits<std::size_t>::max());
      }
    }
  } else {
    ++progress_calls_;
    // Periodic full scan: the doorbell hint is an unfenced fire-and-forget
    // store, so its staleness must be bounded by something fenced — this
    // is it (the flush-head-before-empty handshake in drain_source makes
    // losses rare; this makes them harmless).
    const bool full_scan = progress_calls_ % kFullScanInterval == 0;
    const int n = nranks();
    for (int i = 0; i < n; ++i) {
      // Rotating start: two saturating senders hitting the reap cap are
      // served round-robin instead of lowest-rank-first.
      const int src = (scan_start_ + i) % n;
      if (src == rank()) {
        continue;
      }
      const auto s = static_cast<std::size_t>(src);
      const std::uint64_t bell = dbell_.peek(ctx_->acc(), rank(), src);
      const bool rung = bell != dbell_seen_[s];
      if (!rung && drain_pending_[s] == 0 && !full_scan) {
        continue;  // the common case: one free peek, no ring touch
      }
      if (rung) {
        CMPI_OBS_COUNT("p2p.doorbell_visits", 1);
      }
      const DrainOutcome out = drain_source(src, kReapBatchCells);
      if (rung && !out.drained_any) {
        CMPI_OBS_COUNT("p2p.doorbell_spurious", 1);
      }
      drain_pending_[s] = out.more ? 1 : 0;
      if (!out.more) {
        // Advance past the value read BEFORE the drain: a ring landing
        // during the drain keeps slot != seen, forcing a revisit.
        dbell_seen_[s] = bell;
      }
    }
    scan_start_ = (scan_start_ + 1) % n;
  }
  for (int dst = 0; dst < nranks(); ++dst) {
    if (!send_queues_[static_cast<std::size_t>(dst)].empty()) {
      push_sends(dst);
    }
  }
  // Flush at engine EXIT, not entry: callers block on the doorbell right
  // after progress() returns, and a parked batch held across that sleep
  // would stall the peer (and with it, us).
  flush_publishes();
  // Synchronous sends complete once their match ack arrived. Drop the
  // internal ack request with the pending entry — a completed Ssend held
  // by the caller must not pin endpoint bookkeeping.
  std::erase_if(pending_ssends_, [](const RequestPtr& req) {
    if (req->ack != nullptr && req->ack->complete_) {
      req->ack.reset();
      req->complete_ = true;
      return true;
    }
    return false;
  });
  // Defensive sweep: a matched receive is normally unpinned the moment its
  // last chunk completes it (drain_source), but nothing else guarantees
  // that, so keep the invariant "no completed request lingers" here too.
  std::erase_if(matched_keepalive_,
                [](const RequestPtr& req) { return req->complete_; });
}

Endpoint::DebugQueueSizes Endpoint::debug_queue_sizes() const noexcept {
  DebugQueueSizes sizes;
  sizes.posted_recvs = posted_recvs_.size();
  sizes.unexpected = unexpected_.size();
  sizes.matched_keepalive = matched_keepalive_.size();
  sizes.pending_ssends = pending_ssends_.size();
  for (const auto& queue : send_queues_) {
    sizes.send_queued += queue.size();
  }
  for (const std::size_t bytes : staged_bytes_) {
    sizes.staged_bytes += bytes;
  }
  for (const auto& inflight : rdvz_inflight_) {
    sizes.rendezvous_inflight += inflight.size();
  }
  for (const auto& cache : rdvz_slot_cache_) {
    sizes.rendezvous_cached += cache.size();
  }
  return sizes;
}

std::vector<Endpoint::DebugRdvzSlot> Endpoint::debug_rendezvous_inflight(
    int dst) const {
  CMPI_EXPECTS(dst >= 0 && dst < nranks());
  std::vector<DebugRdvzSlot> out;
  for (const RdvzInflight& entry :
       rdvz_inflight_[static_cast<std::size_t>(dst)]) {
    out.push_back(DebugRdvzSlot{entry.seq, entry.slot.pool_offset,
                                entry.slot.size});
  }
  return out;
}

bool Endpoint::test(const RequestPtr& request) {
  CMPI_EXPECTS(request != nullptr);
  ctx_->charge_mpi_overhead();
  // Even an already-complete staged send may still hold a parked publish
  // batch; the application regaining control is a flush point.
  flush_publishes();
  if (request->complete_) {
    return true;
  }
  progress();
  return request->complete_;
}

Status Endpoint::wait_uncharged(const RequestPtr& request) {
  CMPI_EXPECTS(request != nullptr);
  CMPI_OBS_SPAN("p2p.wait");
  const double entered = ctx_->clock().now();
  // A fully-staged isend is already complete and skips the loop below —
  // its cells may still be parked, so flush before possibly returning.
  flush_publishes();
  while (!request->complete_) {
    // Arm-then-check: a peer's ring landing between progress() and the
    // sleep bumps the generation past `armed`, so wait_past returns
    // immediately instead of losing the wakeup (see Doorbell::epoch).
    const std::uint64_t armed = ctx_->doorbell().epoch();
    progress();
    if (request->complete_) {
      break;
    }
    ctx_->doorbell().wait_past(armed);
  }
  stats_->wait_ns += ctx_->clock().now() - entered;
  return request->result_;
}

Status Endpoint::wait(const RequestPtr& request) {
  ctx_->charge_mpi_overhead();
  return wait_uncharged(request);
}

Status Endpoint::wait_all(std::span<const RequestPtr> requests) {
  // MPI_Waitall is ONE library call no matter how many requests it
  // retires: charge the entry overhead once, then run the uncharged
  // blocking loop per request.
  ctx_->charge_mpi_overhead();
  CMPI_OBS_SPAN_ARG("p2p.wait_all", "requests", requests.size());
  Status first_error;
  for (const RequestPtr& r : requests) {
    const Status s = wait_uncharged(r);
    if (!s.is_ok() && first_error.is_ok()) {
      first_error = s;
    }
  }
  return first_error;
}

Status Endpoint::check_request_liveness(const Request& request) {
  const int peer = request.peer;
  if (peer == kAnySource) {
    return Status::ok();  // no single peer to watch
  }
  runtime::FailureDetector& detector = ctx_->failure_detector();
  if (!detector.dead(ctx_->acc(), peer)) {
    return Status::ok();
  }
  if (request.kind == Request::Kind::kRecv) {
    return status::peer_failed(
        request.matched
            ? "recv: rank " + std::to_string(peer) + " died mid-message"
            : "recv: rank " + std::to_string(peer) +
                  " died before sending a match");
  }
  return status::peer_failed(
      request.staged
          ? "send: rank " + std::to_string(peer) +
                " died before acknowledging the match"
          : "send: rank " + std::to_string(peer) +
                " died with its receive ring full");
}

bool Endpoint::cancel_request(const RequestPtr& request, Status verdict) {
  Request& req = *request;
  const bool peer_dead = verdict.code() == ErrorCode::kPeerFailed;
  if (peer_dead) {
    CMPI_OBS_INSTANT_ARG("p2p.peer_failed", "peer",
                         static_cast<std::uint64_t>(req.peer));
    CMPI_OBS_FLIGHT("p2p: request cancelled with kPeerFailed");
  }
  if (req.kind == Request::Kind::kRecv) {
    posted_recvs_.remove(&req);
    // A receive parked for retransmission is abandoned with its retry
    // state; the retransmission (if any) drains detached.
    std::erase_if(retry_, [&](const auto& entry) {
      const auto waiting = entry.second.request.lock();
      return waiting.get() == &req;
    });
    if (req.matched) {
      // Detach the half-delivered assembly; if the producer is still
      // alive, drain_source discards the remaining chunks into scratch.
      for (Assembly& a : assembly_) {
        if (a.request == &req) {
          a.request = nullptr;
        }
      }
      std::erase_if(matched_keepalive_,
                    [&](const RequestPtr& r) { return r.get() == &req; });
    }
  } else {
    auto& queue = send_queues_[static_cast<std::size_t>(req.peer)];
    const auto queued = std::find_if(
        queue.begin(), queue.end(),
        [&](const RequestPtr& r) { return r.get() == &req; });
    if (queued != queue.end()) {
      if (req.bytes_pushed > 0 && !req.staged && !peer_dead) {
        // Chunks already sit in the ring: withdrawing would desynchronize
        // the live consumer's assembly. The deadline verdict stands, but
        // the request must stay pending.
        return false;
      }
      queue.erase(queued);
    }
    if (req.rdvz_slot.has_value()) {
      // Slot acquired but nothing announced yet (an announced send either
      // stayed pending above or moved the slot to the inflight list).
      release_rdvz_slot(req.peer, std::move(*req.rdvz_slot));
      req.rdvz_slot.reset();
    }
    if (req.synchronous) {
      std::erase_if(pending_ssends_,
                    [&](const RequestPtr& r) { return r.get() == &req; });
      if (req.ack != nullptr) {
        // Withdraw the internal ack receive with its Ssend.
        posted_recvs_.remove(req.ack.get());
        req.ack->complete_ = true;
        req.ack.reset();
      }
    }
  }
  req.send_data = {};
  req.recv_buffer = {};
  req.result_ = std::move(verdict);
  req.complete_ = true;
  return true;
}

Status Endpoint::wait_for(const RequestPtr& request,
                          std::chrono::milliseconds timeout) {
  CMPI_EXPECTS(request != nullptr);
  ctx_->charge_mpi_overhead();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const double entered = ctx_->clock().now();
  runtime::FailureDetector& detector = ctx_->failure_detector();
  flush_publishes();  // same early-complete staged-send case as wait()
  while (!request->complete_) {
    const std::uint64_t armed = ctx_->doorbell().epoch();
    progress();
    if (request->complete_) {
      break;
    }
    detector.beat(ctx_->acc());
    Status alive = check_request_liveness(*request);
    if (!alive.is_ok()) {
      // A dead peer cancels unconditionally — there is no live consumer
      // left for a partially-staged send to corrupt.
      cancel_request(request, std::move(alive));
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      Status timed = status::timed_out(
          (request->kind == Request::Kind::kRecv ? "recv" : "send") +
          std::string(" involving rank ") + std::to_string(request->peer) +
          " missed its deadline");
      if (!cancel_request(request, timed)) {
        stats_->wait_ns += ctx_->clock().now() - entered;
        return timed;  // request left pending (see header)
      }
      break;
    }
    ctx_->doorbell().wait_past(armed);
  }
  stats_->wait_ns += ctx_->clock().now() - entered;
  return request->result_;
}

Result<RecvInfo> Endpoint::recv_for(int src, int tag,
                                    std::span<std::byte> buffer,
                                    std::chrono::milliseconds timeout) {
  const RequestPtr request = irecv(src, tag, buffer);
  const Status status = wait_for(request, timeout);
  if (!status.is_ok()) {
    return status;
  }
  return request->info();
}

Status Endpoint::send_for(int dst, int tag, std::span<const std::byte> data,
                          std::chrono::milliseconds timeout) {
  return wait_for(isend(dst, tag, data), timeout);
}

Status Endpoint::ssend_for(int dst, int tag, std::span<const std::byte> data,
                           std::chrono::milliseconds timeout) {
  return wait_for(issend(dst, tag, data), timeout);
}

RecvInfo Endpoint::probe(int src, int tag) {
  CMPI_OBS_SPAN("p2p.probe");
  std::optional<RecvInfo> found;
  ctx_->doorbell().wait_until([&] {
    found = iprobe(src, tag);
    return found.has_value();
  });
  return *found;
}

Status Endpoint::sendrecv(int dst, int send_tag,
                          std::span<const std::byte> out, int src,
                          int recv_tag, std::span<std::byte> in,
                          RecvInfo* info) {
  CMPI_OBS_SPAN("p2p.sendrecv");
  const RequestPtr send_req = isend(dst, send_tag, out);
  const RequestPtr recv_req = irecv(src, recv_tag, in);
  const Status send_status = wait(send_req);
  const Status recv_status = wait(recv_req);
  if (info != nullptr) {
    *info = recv_req->info();
  }
  return send_status.is_ok() ? recv_status : send_status;
}

Endpoint::PeerScavengeReport Endpoint::scavenge_peer(int dead_rank) {
  CMPI_EXPECTS(dead_rank >= 0 && dead_rank < nranks() &&
               dead_rank != rank());
  const auto dead = static_cast<std::size_t>(dead_rank);
  PeerScavengeReport report;

  // Inbound: fsck the corpse's producer ring (this endpoint is its sole
  // consumer) — half-written cells are detected and tombstoned, the head
  // is republished so the next incarnation finds an empty ring.
  queue::SpscRing& ring = matrix_.ring(ctx_->acc(), rank(), dead_rank);
  const queue::SpscRing::ScavengeCounts counts =
      ring.scavenge_producer(ctx_->acc());
  report.cells_drained = counts.drained;
  report.cells_torn = counts.torn;
  ctx_->recovery_counters().ring_cells_tombstoned.fetch_add(counts.drained +
                                                            counts.torn);

  // The half-assembled inbound message (if any) is abandoned: its
  // remaining chunks died with the producer.
  Assembly& assembly = assembly_[dead];
  if (assembly.active) {
    if (assembly.request != nullptr) {
      Request& req = *assembly.request;
      complete_recv(req, dead_rank, req.tag, 0,
                    status::peer_failed("recv: rank " +
                                        std::to_string(dead_rank) +
                                        " died mid-message"));
      std::erase_if(matched_keepalive_,
                    [&](const RequestPtr& r) { return r.get() == &req; });
      ++report.requests_failed;
    }
    if (assembly.unexpected != nullptr) {
      unexpected_.remove(assembly.unexpected.get());
    }
    assembly = Assembly{};
  }
  // Partial or retry-parked unexpected messages from the corpse can never
  // complete; fully-arrived intact ones were sent before the death and
  // stay deliverable. Rendezvous arrivals are the exception: their bytes
  // still sit in the corpse's slab, which the pool scavenge is about to
  // reclaim — a deferred pull would read freed (or reused) memory.
  unexpected_.remove_if([&](const UnexpectedMsgPtr& m) {
    return m->source == dead_rank &&
           (!m->full() || m->retry_pending || m->rendezvous);
  });

  // Outbound: nothing queued for the corpse will ever be consumed.
  auto& pending = send_queues_[dead];
  for (const RequestPtr& req : pending) {
    if (req->rdvz_slot.has_value()) {
      // Half-announced rendezvous send: the slab is ours to destroy (no
      // live consumer can ever pull from it).
      destroy_rdvz_slot(std::move(*req->rdvz_slot));
      req->rdvz_slot.reset();
      ++report.rendezvous_slots_freed;
    }
    if (!req->complete_) {
      req->send_data = {};
      req->result_ = status::peer_failed(
          "send: rank " + std::to_string(dead_rank) + " died");
      req->complete_ = true;
      ++report.requests_failed;
    }
  }
  pending.clear();
  staged_copies_[dead].clear();
  staged_bytes_[dead] = 0;
  // In-flight rendezvous slots toward the corpse will never be FINed, and
  // its cached (idle) slots are dead weight: both are our own arena
  // objects, destroyed here rather than leaked until pool teardown.
  auto& inflight = rdvz_inflight_[dead];
  for (RdvzInflight& entry : inflight) {
    destroy_rdvz_slot(std::move(entry.slot));
    ++report.rendezvous_slots_freed;
  }
  inflight.clear();
  auto& cache = rdvz_slot_cache_[dead];
  for (arena::ObjectHandle& slot : cache) {
    destroy_rdvz_slot(std::move(slot));
    ++report.rendezvous_slots_freed;
  }
  cache.clear();
  if (report.rendezvous_slots_freed > 0) {
    ctx_->recovery_counters().rendezvous_slots_scavenged.fetch_add(
        report.rendezvous_slots_freed);
  }
  std::erase_if(pending_ssends_, [&](const RequestPtr& req) {
    if (req->peer != dead_rank) {
      return false;
    }
    if (req->ack != nullptr) {
      posted_recvs_.remove(req->ack.get());
      req->ack->complete_ = true;
      req->ack.reset();
    }
    req->result_ = status::peer_failed(
        "ssend: rank " + std::to_string(dead_rank) +
        " died before acknowledging the match");
    req->complete_ = true;
    ++report.requests_failed;
    return true;
  });
  // Posted receives waiting on the corpse specifically cannot complete.
  for (const RequestPtr& r : posted_recvs_.remove_if([&](const RequestPtr& r) {
         return r->peer == dead_rank && !r->complete_;
       })) {
    complete_recv(*r, dead_rank, r->tag, 0,
                  status::peer_failed("recv: rank " +
                                      std::to_string(dead_rank) +
                                      " died before sending a match"));
    ++report.requests_failed;
  }
  // Retry state keyed to the corpse will never be served.
  std::erase_if(retry_, [&](const auto& entry) {
    return entry.first.first == dead_rank;
  });
  if (!legacy_) {
    // PoolRecovery clears the corpse's doorbell slots; resync our local
    // cursor so the respawned incarnation's FIRST ring is not mistaken
    // for already-seen (and drop any pending-revisit debt — the ring was
    // just tombstoned empty).
    dbell_seen_[dead] = dbell_.peek(ctx_->acc(), rank(), dead_rank) - 1;
    drain_pending_[dead] = 0;
  }
  return report;
}

std::optional<RecvInfo> Endpoint::iprobe(int src, int tag) {
  ctx_->charge_mpi_overhead();
  progress();
  // Probing needs an envelope, not a complete payload: match partially-
  // arrived messages too (require_full=false).
  const UnexpectedMsgPtr msg =
      unexpected_.find_match(src, tag, /*require_full=*/false);
  if (msg != nullptr) {
    RecvInfo info;
    info.source = msg->source;
    info.tag = msg->tag;
    info.bytes = msg->total;
    return info;
  }
  return std::nullopt;
}

}  // namespace cmpi::p2p
