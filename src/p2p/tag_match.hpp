// Sharded MPI tag matching for the message-rate engine (paper §3.3).
//
// The naive posted-receive and unexpected-message queues are flat deques
// scanned linearly per arrival; at fan-in message rates the scan length
// grows with the number of outstanding receives and dominates the match
// path. These containers shard both queues into hash buckets keyed on the
// packed (source, tag) envelope while preserving MPI matching semantics
// exactly:
//
//  * PostedRecvQueue — every posted receive carries a monotonic post-order
//    stamp and lives in the one bucket its own (source, tag) filter keys
//    (wildcards key their own buckets: a filter is a point in the same
//    keyspace). An arrival (src, tag) can only match four filters —
//    (src,tag), (ANY,tag), (src,ANY), (ANY,ANY) — so the probe inspects at
//    most four bucket fronts and takes the minimum post-order stamp:
//    exactly the earliest matching posted receive the linear scan would
//    have found, in O(1) instead of O(posted).
//
//  * UnexpectedQueue — messages live in a global arrival-order list AND in
//    their (source, tag) bucket. A fully-specified receive probes its one
//    bucket (per-bucket order is arrival order for that envelope, which is
//    the only order MPI requires); a wildcard receive walks the global
//    list, so ANY_SOURCE/ANY_TAG matching is in true arrival order across
//    all senders — sharding never reorders the wildcard view.
//
// Re-posting after a NAK (retransmission protocol) must put a receive back
// AT THE FRONT of the match order; repost_front() stamps a decreasing
// order below every live stamp, which sorts it first without touching
// other buckets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/status.hpp"

namespace cmpi::p2p {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// MPI envelope matching: does a posted (src, tag) filter accept an
/// arrival from `src` with `tag`?
constexpr bool tags_match(int posted_src, int posted_tag, int src,
                          int tag) noexcept {
  return (posted_src == kAnySource || posted_src == src) &&
         (posted_tag == kAnyTag || posted_tag == tag);
}

class Request;
using RequestPtr = std::shared_ptr<Request>;

/// Receiver-side record of one announced rendezvous segment.
struct RdvzSegment {
  std::uint64_t pool_offset = 0;  ///< absolute pool offset of the segment
  std::uint32_t bytes = 0;
  std::uint32_t crc = 0;
};

/// A message that arrived (fully or partially) with no matching posted
/// receive yet.
struct UnexpectedMsg {
  int source;
  int tag;
  std::size_t total = 0;
  std::size_t received = 0;
  std::vector<std::byte> data;
  bool synchronous = false;  // sender awaits a match ack
  std::uint32_t ssend_counter = 0;
  /// Large-message rendezvous: the payload stays parked in the sender's
  /// slab (not copied into `data`); `rdvz_segs` records where each
  /// announced segment lives. Pulled into the user buffer — and FINed —
  /// only when a receive finally matches.
  bool rendezvous = false;
  std::uint64_t rdvz_slot_offset = 0;  // slab base (segment->msg offsets)
  std::uint32_t rdvz_seq = 0;          // sender's msg_seq (FIN payload)
  std::vector<RdvzSegment> rdvz_segs;
  /// The payload arrived corrupt and a retransmission was requested; the
  /// message is not matchable until the retransmit lands (or a REJECT
  /// finalizes it with kDataPoisoned).
  bool retry_pending = false;
  /// Media error recorded while chunks were drained (kDataPoisoned).
  Status data_error;
  [[nodiscard]] bool full() const noexcept { return received == total; }
};

using UnexpectedMsgPtr = std::shared_ptr<UnexpectedMsg>;

/// Posted receives, sharded on the (source, tag) filter, matched in post
/// order (see file header). The queue never reads Request fields — the
/// caller passes the filter envelope in, so this container stays decoupled
/// from the endpoint's request internals.
class PostedRecvQueue {
 public:
  /// Append `req` (filter `src`/`tag`, wildcards allowed) at the back of
  /// the post order.
  void post(RequestPtr req, int src, int tag);

  /// Re-insert `req` at the FRONT of the match order (NAK retry path: the
  /// retransmission must find the same request before anything else).
  void repost_front(RequestPtr req, int src, int tag);

  /// Earliest-posted receive matching an arrival (`src` and `tag` are
  /// concrete), removed from the queue; nullptr when none matches. Writes
  /// the number of bucket fronts inspected (≤4) to `probe_len` if given.
  RequestPtr take_match(int src, int tag, std::size_t* probe_len = nullptr);

  /// Remove a specific request. Returns the owning pointer (nullptr when
  /// absent). Cold path (cancellation, ack withdrawal): scans buckets.
  RequestPtr remove(const Request* req);

  /// Remove every request the predicate accepts; returns them in post
  /// order. Cold path (peer scavenge).
  std::vector<RequestPtr> remove_if(
      const std::function<bool(const RequestPtr&)>& pred);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  struct Entry {
    std::int64_t order = 0;
    RequestPtr req;
  };
  static std::uint64_t key(int src, int tag) noexcept {
    return mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) |
                 static_cast<std::uint32_t>(tag));
  }

  std::unordered_map<std::uint64_t, std::deque<Entry>> buckets_;
  std::int64_t next_order_ = 1;   // back of the post order
  std::int64_t front_order_ = 0;  // decreasing stamps for repost_front
  std::size_t size_ = 0;
};

/// Unexpected messages, sharded on the (source, tag) envelope with a
/// global arrival-order view for wildcard receives (see file header).
class UnexpectedQueue {
 public:
  /// Append at the back of the arrival order.
  void push(UnexpectedMsgPtr msg);

  /// Earliest-arrival message matching the posted filter (`src`/`tag` may
  /// be wildcards) that is not parked for retry and — when `require_full`
  /// — has fully arrived. Not removed (the caller delivers, then calls
  /// remove()). Writes the number of entries inspected to `probe_len` if
  /// given.
  UnexpectedMsgPtr find_match(int src, int tag, bool require_full,
                              std::size_t* probe_len = nullptr) const;

  /// Remove a specific message. Returns true when it was present.
  bool remove(const UnexpectedMsg* msg);

  /// Remove every message the predicate accepts; returns how many.
  std::size_t remove_if(
      const std::function<bool(const UnexpectedMsgPtr&)>& pred);

  [[nodiscard]] std::size_t size() const noexcept { return arrival_.size(); }
  [[nodiscard]] bool empty() const noexcept { return arrival_.empty(); }

 private:
  static std::uint64_t key(int src, int tag) noexcept {
    return mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) |
                 static_cast<std::uint32_t>(tag));
  }

  std::deque<UnexpectedMsgPtr> arrival_;  // global arrival order
  std::unordered_map<std::uint64_t, std::deque<UnexpectedMsgPtr>> buckets_;
};

}  // namespace cmpi::p2p
