#include "simtime/busy_resource.hpp"

#include <algorithm>
#include <cmath>

namespace cmpi::simtime {

void BusyResource::advance_base(std::int64_t new_base) {
  // Clear slots that wrap around into the new window region.
  while (base_slot_ < new_base) {
    slot_used(base_slot_) = 0.0;
    for (ClassShare& share : shares_) {
      class_used(share, base_slot_) = 0.0;
    }
    ++base_slot_;
  }
}

void BusyResource::set_share(unsigned cls, double fraction) {
  CMPI_EXPECTS(cls > 0);
  CMPI_EXPECTS(fraction > 0.0 && fraction < 1.0);
  std::lock_guard lock(mutex_);
  double total = fraction;
  for (const ClassShare& share : shares_) {
    if (share.cls != cls) {
      total += share.fraction;
    }
  }
  CMPI_EXPECTS(total <= 1.0 + 1e-9);
  for (ClassShare& share : shares_) {
    if (share.cls == cls) {
      share.fraction = fraction;
      return;
    }
  }
  ClassShare share;
  share.cls = cls;
  share.fraction = fraction;
  share.used.resize(kWindowSlots, 0.0);
  shares_.push_back(std::move(share));
}

void BusyResource::clear_share(unsigned cls) {
  std::lock_guard lock(mutex_);
  shares_.erase(std::remove_if(shares_.begin(), shares_.end(),
                               [cls](const ClassShare& share) {
                                 return share.cls == cls;
                               }),
                shares_.end());
}

double BusyResource::share(unsigned cls) const {
  std::lock_guard lock(mutex_);
  for (const ClassShare& share : shares_) {
    if (share.cls == cls) {
      return share.fraction;
    }
  }
  return 0.0;
}

Ns BusyResource::reserve_for(unsigned cls, Ns ready, std::size_t bytes) {
  CMPI_EXPECTS(ready >= 0);
  if (bytes == 0) {
    return ready;
  }
  double need = uncontended_cost(bytes);  // service nanoseconds
  std::lock_guard lock(mutex_);

  std::int64_t slot = static_cast<std::int64_t>(ready / kSlotNs);
  // Reservations older than the window land at its start (bounded error;
  // only reachable under pathological thread skew).
  slot = std::max(slot, base_slot_);

  ClassShare* own = nullptr;
  for (ClassShare& share : shares_) {
    if (share.cls == cls) {
      own = &share;
      break;
    }
  }

  Ns completion = ready;
  for (;;) {
    const Ns slot_start = static_cast<Ns>(slot) * kSlotNs;
    if (slot >= base_slot_ + static_cast<std::int64_t>(kWindowSlots)) {
      // Slide the window forward, retiring the oldest slots.
      advance_base(slot - static_cast<std::int64_t>(kWindowSlots) + 1);
    }
    double& used = slot_used(slot);
    const Ns begin = std::max({ready, slot_start + used});
    const Ns slot_end = slot_start + kSlotNs;
    if (begin < slot_end) {
      // Capacity reserved in this slot for other classes' unmet
      // guarantees: a recently-active guaranteed class must always be
      // able to claim its fraction of the slot no matter who reserved
      // first; guarantees of classes idle past the activity window lapse
      // (work conservation).
      double reserved_for_others = 0.0;
      for (ClassShare& share : shares_) {
        if (&share == own) {
          continue;
        }
        if (share.last_active_slot < 0 ||
            share.last_active_slot + kActivityWindowSlots < slot) {
          continue;
        }
        const double guarantee = share.fraction * kSlotNs;
        reserved_for_others +=
            std::max(0.0, guarantee - class_used(share, slot));
      }
      const double open = static_cast<double>(slot_end - begin);
      const double take = std::min(need, open - reserved_for_others);
      if (take > 0) {
        used += take;
        if (own != nullptr) {
          class_used(*own, slot) += take;
        }
        need -= take;
        completion = begin + static_cast<Ns>(take);
        if (need <= 0) {
          if (own != nullptr) {
            own->last_active_slot = std::max(own->last_active_slot, slot);
          }
          break;
        }
      }
    }
    if (own != nullptr) {
      // Mark activity on every slot the class *attempts*, so a guaranteed
      // class queueing behind a backlog keeps its reservation alive.
      own->last_active_slot = std::max(own->last_active_slot, slot);
    }
    ++slot;
  }
  return completion;
}

void BusyResource::reset() {
  std::lock_guard lock(mutex_);
  std::fill(slots_.begin(), slots_.end(), 0.0);
  for (ClassShare& share : shares_) {
    std::fill(share.used.begin(), share.used.end(), 0.0);
    share.last_active_slot = -1;
  }
  base_slot_ = 0;
}

}  // namespace cmpi::simtime
