#include "simtime/busy_resource.hpp"

#include <algorithm>
#include <cmath>

namespace cmpi::simtime {

void BusyResource::advance_base(std::int64_t new_base) {
  // Clear slots that wrap around into the new window region.
  while (base_slot_ < new_base) {
    slot_used(base_slot_) = 0.0;
    ++base_slot_;
  }
}

Ns BusyResource::reserve(Ns ready, std::size_t bytes) {
  CMPI_EXPECTS(ready >= 0);
  if (bytes == 0) {
    return ready;
  }
  double need = uncontended_cost(bytes);  // service nanoseconds
  std::lock_guard lock(mutex_);

  std::int64_t slot = static_cast<std::int64_t>(ready / kSlotNs);
  // Reservations older than the window land at its start (bounded error;
  // only reachable under pathological thread skew).
  slot = std::max(slot, base_slot_);

  Ns completion = ready;
  for (;;) {
    const Ns slot_start = static_cast<Ns>(slot) * kSlotNs;
    if (slot >= base_slot_ + static_cast<std::int64_t>(kWindowSlots)) {
      // Slide the window forward, retiring the oldest slots.
      advance_base(slot - static_cast<std::int64_t>(kWindowSlots) + 1);
    }
    double& used = slot_used(slot);
    const Ns begin = std::max({ready, slot_start + used});
    const Ns slot_end = slot_start + kSlotNs;
    if (begin < slot_end) {
      const double take = std::min(need, slot_end - begin);
      used += take;
      need -= take;
      completion = begin + take;
      if (need <= 0) {
        break;
      }
    }
    ++slot;
  }
  return completion;
}

void BusyResource::reset() {
  std::lock_guard lock(mutex_);
  std::fill(slots_.begin(), slots_.end(), 0.0);
  base_slot_ = 0;
}

}  // namespace cmpi::simtime
