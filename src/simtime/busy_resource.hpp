// A shared bandwidth resource in virtual time (a DDR channel group, a NIC
// wire, a PCIe link).
//
// Rank threads run concurrently in wall-clock time, so reservations arrive
// in arbitrary order relative to their *virtual* ready times. A naive
// FCFS busy-until server would serialize a virtually-early transfer behind
// a virtually-late one just because the late rank's thread got scheduled
// first — skew that compounds over a run. Instead the resource models
// fluid capacity over fixed virtual-time slots: a transfer consumes
// capacity starting at its own ready time, wherever free capacity exists,
// independent of call order. Uncontended transfers complete at
// ready + size/rate exactly; under contention aggregate throughput is
// capped at the service rate (processor sharing, which also matches how
// DRAM/NIC hardware interleaves concurrent streams better than strict
// FCFS would).
//
// Weighted fair queueing (multi-tenant pools): callers may register
// guaranteed capacity fractions per class (set_share) and attribute
// reservations to a class (reserve_for). In every capacity slot a class
// must leave untouched the unmet guarantees of *other* classes that were
// recently active, so a saturating tenant cannot push a guaranteed tenant
// below its share — while idle guarantees age out after a short activity
// window, keeping the server work-conserving. With no shares registered
// the reservation path is exactly the classic free-capacity scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/contracts.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::simtime {

class BusyResource {
 public:
  /// `bytes_per_ns`: service rate (e.g. 9.9 GB/s = 9.9 bytes/ns).
  explicit BusyResource(double bytes_per_ns) : bytes_per_ns_(bytes_per_ns) {
    CMPI_EXPECTS(bytes_per_ns > 0);
    slots_.resize(kWindowSlots, 0.0);
  }

  /// Reserve capacity for a `bytes`-sized transfer that becomes ready at
  /// virtual time `ready`. Returns the completion time. Thread-safe.
  Ns reserve(Ns ready, std::size_t bytes) { return reserve_for(0, ready, bytes); }

  /// Reserve capacity on behalf of `cls` (0 = unattributed; never carries a
  /// guarantee). Identical to reserve() when no shares are registered.
  Ns reserve_for(unsigned cls, Ns ready, std::size_t bytes);

  /// Guarantee `fraction` of the capacity (0 < fraction < 1) to `cls`
  /// (cls > 0). The sum of registered fractions must stay <= 1. Replaces
  /// any earlier share for the class. Thread-safe.
  void set_share(unsigned cls, double fraction);

  /// Withdraw a class's guarantee (tenant leave). No-op if unregistered.
  void clear_share(unsigned cls);

  /// Registered guarantee of a class (0.0 when none).
  [[nodiscard]] double share(unsigned cls) const;

  /// Completion time for a transfer if no contention existed.
  [[nodiscard]] Ns uncontended_cost(std::size_t bytes) const noexcept {
    return static_cast<Ns>(bytes) / bytes_per_ns_;
  }

  /// Forget all reserved capacity (benchmark iteration boundaries).
  void reset();

  [[nodiscard]] double bytes_per_ns() const noexcept { return bytes_per_ns_; }

 private:
  /// Virtual nanoseconds per capacity slot. Small enough that completion
  /// rounding is negligible against the microsecond-scale transfers the
  /// models deal in; large enough to keep the window cheap.
  static constexpr Ns kSlotNs = 2048;
  /// Slots kept live; earlier slots are considered fully used. Covers
  /// ~130 virtual milliseconds of lookback, far beyond any legitimate
  /// thread skew.
  static constexpr std::size_t kWindowSlots = 1 << 16;

  /// An idle class's guarantee stops being reserved after this many slots
  /// without a reservation from it (~128 virtual microseconds): long
  /// enough to bridge the gaps of a continuously-offered stream, short
  /// enough that a departed/idle tenant doesn't strand capacity.
  static constexpr std::int64_t kActivityWindowSlots = 64;

  /// A registered class's guarantee and recent-activity bookkeeping.
  struct ClassShare {
    unsigned cls = 0;
    double fraction = 0.0;
    /// Used service-ns per slot for this class, parallel to slots_.
    std::vector<double> used;
    /// Highest slot this class reserved into (-1: never active).
    std::int64_t last_active_slot = -1;
  };

  [[nodiscard]] double& slot_used(std::int64_t slot) {
    return slots_[static_cast<std::size_t>(slot) % kWindowSlots];
  }
  [[nodiscard]] static double& class_used(ClassShare& share,
                                          std::int64_t slot) {
    return share.used[static_cast<std::size_t>(slot) % kWindowSlots];
  }
  void advance_base(std::int64_t new_base);

  const double bytes_per_ns_;
  mutable std::mutex mutex_;
  std::vector<double> slots_;  // used service-ns per slot, ring-buffer
  std::int64_t base_slot_ = 0;  // smallest live slot index
  std::vector<ClassShare> shares_;  // registered WFQ classes (usually few)
};

}  // namespace cmpi::simtime
