// A shared bandwidth resource in virtual time (a DDR channel group, a NIC
// wire, a PCIe link).
//
// Rank threads run concurrently in wall-clock time, so reservations arrive
// in arbitrary order relative to their *virtual* ready times. A naive
// FCFS busy-until server would serialize a virtually-early transfer behind
// a virtually-late one just because the late rank's thread got scheduled
// first — skew that compounds over a run. Instead the resource models
// fluid capacity over fixed virtual-time slots: a transfer consumes
// capacity starting at its own ready time, wherever free capacity exists,
// independent of call order. Uncontended transfers complete at
// ready + size/rate exactly; under contention aggregate throughput is
// capped at the service rate (processor sharing, which also matches how
// DRAM/NIC hardware interleaves concurrent streams better than strict
// FCFS would).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/contracts.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::simtime {

class BusyResource {
 public:
  /// `bytes_per_ns`: service rate (e.g. 9.9 GB/s = 9.9 bytes/ns).
  explicit BusyResource(double bytes_per_ns) : bytes_per_ns_(bytes_per_ns) {
    CMPI_EXPECTS(bytes_per_ns > 0);
    slots_.resize(kWindowSlots, 0.0);
  }

  /// Reserve capacity for a `bytes`-sized transfer that becomes ready at
  /// virtual time `ready`. Returns the completion time. Thread-safe.
  Ns reserve(Ns ready, std::size_t bytes);

  /// Completion time for a transfer if no contention existed.
  [[nodiscard]] Ns uncontended_cost(std::size_t bytes) const noexcept {
    return static_cast<Ns>(bytes) / bytes_per_ns_;
  }

  /// Forget all reserved capacity (benchmark iteration boundaries).
  void reset();

  [[nodiscard]] double bytes_per_ns() const noexcept { return bytes_per_ns_; }

 private:
  /// Virtual nanoseconds per capacity slot. Small enough that completion
  /// rounding is negligible against the microsecond-scale transfers the
  /// models deal in; large enough to keep the window cheap.
  static constexpr Ns kSlotNs = 2048;
  /// Slots kept live; earlier slots are considered fully used. Covers
  /// ~130 virtual milliseconds of lookback, far beyond any legitimate
  /// thread skew.
  static constexpr std::size_t kWindowSlots = 1 << 16;

  [[nodiscard]] double& slot_used(std::int64_t slot) {
    return slots_[static_cast<std::size_t>(slot) % kWindowSlots];
  }
  void advance_base(std::int64_t new_base);

  const double bytes_per_ns_;
  std::mutex mutex_;
  std::vector<double> slots_;  // used service-ns per slot, ring-buffer
  std::int64_t base_slot_ = 0;  // smallest live slot index
};

}  // namespace cmpi::simtime
