// LogGP-style network cost model (Alexandrov et al.), extended with MTU
// segmentation cost to capture TCP's CPU-side packetization. Used by the
// fabric baselines (TCP over Ethernet / Mellanox, RoCEv2, InfiniBand).
//
// A message of k bytes sent at sender virtual time t costs:
//   sender CPU:   o_s + ceil(k / mtu) * o_seg          (charged to sender)
//   wire:         FCFS reservation of k bytes on the shared wire resource
//   delivery:     wire completion + L
//   receiver CPU: o_r                                  (charged to receiver)
// NIC-offloaded paths (RoCE/IB and, after packetization, TCP on a SmartNIC)
// keep the CPU free while the wire streams — which is why the paper's TCP
// baselines keep scaling with process count while the CPU-driven CXL copy
// path does not (§4.2).
#pragma once

#include <cstddef>

#include "simtime/busy_resource.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::simtime {

struct LogGPParams {
  Ns wire_latency = 0;          ///< L: propagation + switch latency
  Ns send_overhead = 0;         ///< o_s: fixed per-message CPU cost, sender
  Ns recv_overhead = 0;         ///< o_r: fixed per-message CPU cost, receiver
  Ns per_message_gap = 0;       ///< g: minimum injection spacing per sender
  double wire_bytes_per_ns = 1;  ///< 1/G: shared wire bandwidth
  std::size_t mtu = 1500;       ///< segmentation unit
  Ns per_segment_overhead = 0;  ///< CPU cost per MTU segment (packetization)
};

/// Result of pushing one message through the model.
struct MessageTiming {
  Ns sender_done;    ///< sender CPU free again (may inject next message)
  Ns delivered;      ///< data visible at receiver NIC (+L after wire)
  Ns receiver_done;  ///< receiver CPU done processing (delivered + o_r)
};

/// Shared-state LogGP evaluator. One instance per physical link; safe to
/// call from multiple rank threads (the wire is a BusyResource).
class LogGPModel {
 public:
  explicit LogGPModel(const LogGPParams& params)
      : params_(params), wire_(params.wire_bytes_per_ns) {
    CMPI_EXPECTS(params.mtu > 0);
    CMPI_EXPECTS(params.wire_bytes_per_ns > 0);
  }

  /// Cost of injecting `bytes` at sender time `send_time`.
  MessageTiming send(Ns send_time, std::size_t bytes);

  /// Sender-side CPU cost only (packetization), without wire effects.
  [[nodiscard]] Ns sender_cpu_cost(std::size_t bytes) const noexcept;

  /// Zero-load end-to-end latency for `bytes` (no contention, no queueing).
  [[nodiscard]] Ns zero_load_latency(std::size_t bytes) const noexcept;

  [[nodiscard]] const LogGPParams& params() const noexcept { return params_; }

  /// Drop queued wire history (benchmark iteration boundaries).
  void reset() { wire_.reset(); }

 private:
  const LogGPParams params_;
  BusyResource wire_;
};

}  // namespace cmpi::simtime
