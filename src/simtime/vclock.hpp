// Virtual time.
//
// The reproduction measures a simulated CXL device and simulated NICs, so
// wall-clock timing is meaningless (and the CI host has one core). Instead,
// every rank carries a virtual clock denominated in nanoseconds. Functional
// operations charge model time with advance(); causality across ranks uses
// max-plus propagation: when rank B observes a value rank A published at
// virtual time t, B calls observe(t) so its clock is at least t. This is the
// standard conservative PDES treatment and is exactly how SimGrid-style
// simulators (which the paper itself uses for scaling, §4.4) account time.
#pragma once

#include <algorithm>

#include "common/contracts.hpp"

namespace cmpi::simtime {

/// Virtual nanoseconds. Double keeps sub-ns bandwidth costs exact enough
/// (53-bit mantissa ≈ 0.1 ns resolution over multi-hour horizons).
using Ns = double;

inline constexpr Ns kNsPerUs = 1e3;
inline constexpr Ns kNsPerMs = 1e6;
inline constexpr Ns kNsPerSec = 1e9;

/// Per-rank virtual clock. Not thread-safe: each clock is owned by exactly
/// one rank thread; cross-rank interaction happens by exchanging timestamps
/// through messages/flags and calling observe().
class VClock {
 public:
  VClock() noexcept = default;
  explicit VClock(Ns start) noexcept : now_(start) { CMPI_EXPECTS(start >= 0); }

  /// Current virtual time.
  [[nodiscard]] Ns now() const noexcept { return now_; }

  /// Charge `dt` nanoseconds of local work.
  void advance(Ns dt) noexcept {
    CMPI_EXPECTS(dt >= 0);
    now_ += dt;
  }

  /// Incorporate a remote completion stamp: this rank cannot have observed
  /// the effect before it happened.
  void observe(Ns remote_completion) noexcept {
    now_ = std::max(now_, remote_completion);
  }

  /// Reset to a given time (benchmark iteration boundaries).
  void reset(Ns t = 0) noexcept {
    CMPI_EXPECTS(t >= 0);
    now_ = t;
  }

 private:
  Ns now_ = 0;
};

}  // namespace cmpi::simtime
