#include "simtime/loggp.hpp"

#include "common/align.hpp"

namespace cmpi::simtime {

Ns LogGPModel::sender_cpu_cost(std::size_t bytes) const noexcept {
  const std::size_t segments =
      bytes == 0 ? 1 : ceil_div(bytes, params_.mtu);
  return params_.send_overhead +
         static_cast<Ns>(segments) * params_.per_segment_overhead;
}

Ns LogGPModel::zero_load_latency(std::size_t bytes) const noexcept {
  return sender_cpu_cost(bytes) + params_.wire_latency +
         wire_.uncontended_cost(bytes) + params_.recv_overhead;
}

MessageTiming LogGPModel::send(Ns send_time, std::size_t bytes) {
  MessageTiming t{};
  const Ns injected = send_time + sender_cpu_cost(bytes);
  // The sender CPU is free once packetization hands off to the NIC, but it
  // may not inject the next message before the per-message gap elapses.
  t.sender_done = injected + params_.per_message_gap;
  const Ns wire_done = wire_.reserve(injected, bytes);
  t.delivered = wire_done + params_.wire_latency;
  t.receiver_done = t.delivered + params_.recv_overhead;
  return t;
}

}  // namespace cmpi::simtime
