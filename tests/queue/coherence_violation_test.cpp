// Failure injection: what happens when a producer VIOLATES the §3.5
// software-coherence discipline. These tests manipulate the documented
// ring layout directly (tail flag at +0, head at +64, cells at +192) to
// build broken producers, and show exactly the corruption the paper's
// protocol placement prevents — evidence that the discipline in SpscRing
// is load-bearing, not ceremonial.
#include <gtest/gtest.h>

#include <cstring>

#include "common/units.hpp"
#include "queue/spsc_ring.hpp"

namespace cmpi::queue {
namespace {

constexpr std::size_t kCells = 4;
constexpr std::size_t kPayload = 256;
constexpr std::uint64_t kTailFlag = 0;
constexpr std::uint64_t kCellsAt = 192;

class CoherenceViolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(cxlsim::DaxDevice::create(8_MiB));
    producer_cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    consumer_cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    producer_ = std::make_unique<cxlsim::Accessor>(*device_,
                                                   *producer_cache_,
                                                   producer_clock_);
    consumer_ = std::make_unique<cxlsim::Accessor>(*device_,
                                                   *consumer_cache_,
                                                   consumer_clock_);
    SpscRing::format(*producer_, 0, kCells, kPayload);
    ring_ = std::make_unique<SpscRing>(check_ok(SpscRing::attach(*consumer_, 0)));
  }

  CellHeader header_for(std::size_t bytes) {
    CellHeader h{};
    h.src_rank = 1;
    h.total_bytes = bytes;
    h.chunk_bytes = bytes;
    h.flags = kLastChunk;
    return h;
  }

  simtime::VClock producer_clock_;
  simtime::VClock consumer_clock_;
  std::unique_ptr<cxlsim::DaxDevice> device_;
  std::unique_ptr<cxlsim::CacheSim> producer_cache_;
  std::unique_ptr<cxlsim::CacheSim> consumer_cache_;
  std::unique_ptr<cxlsim::Accessor> producer_;
  std::unique_ptr<cxlsim::Accessor> consumer_;
  std::unique_ptr<SpscRing> ring_;  // consumer view
};

TEST_F(CoherenceViolationTest, UnflushedPayloadIsStaleAtConsumer) {
  // Rogue producer: writes header and payload with plain CACHED stores
  // (no flush), then publishes the tail. The consumer observes the flag
  // (NT, pool-visible) but reads the cell's pool bytes — which are still
  // the old zeros because the payload sits dirty in the producer's cache.
  const std::vector<std::byte> payload(kPayload, std::byte{0xAB});
  CellHeader h = header_for(kPayload);
  producer_->store(kCellsAt, {reinterpret_cast<const std::byte*>(&h),
                              sizeof h});  // cached, never flushed
  producer_->store(kCellsAt + sizeof(CellHeader), payload);
  producer_->publish_flag(kTailFlag, 1);  // flag IS visible (NT)

  CellHeader out{};
  std::vector<std::byte> got(kPayload, std::byte{0x55});
  // The ring believes a message is available...
  ASSERT_TRUE(ring_->try_dequeue(*consumer_, out, got));
  // ...but the payload is stale zeros, not 0xAB: data corruption.
  EXPECT_NE(std::to_integer<int>(got[0]), 0xAB);
  // The header is corrupt too (all zeros ⇒ chunk_bytes 0).
  EXPECT_EQ(out.chunk_bytes, 0u);
}

TEST_F(CoherenceViolationTest, FlushWithoutFenceOrderingHoleIsClosedByPublish) {
  // A correct producer's publish_flag fences first; this test shows the
  // fence is what guarantees the payload reached the pool before the flag
  // did. We emulate the correct path piecewise and check pool contents at
  // each step.
  const std::vector<std::byte> payload(kPayload, std::byte{0x7E});
  producer_->store(kCellsAt + sizeof(CellHeader), payload);
  // Not yet flushed: pool holds zeros.
  std::vector<std::byte> probe(kPayload);
  consumer_->nt_load(kCellsAt + sizeof(CellHeader), probe);
  EXPECT_EQ(std::to_integer<int>(probe[0]), 0);
  producer_->clflushopt(kCellsAt + sizeof(CellHeader), kPayload);
  producer_->sfence();
  // Flushed + fenced: pool holds the data, and only now may the flag go up.
  consumer_->nt_load(kCellsAt + sizeof(CellHeader), probe);
  EXPECT_EQ(std::to_integer<int>(probe[0]), 0x7E);
}

TEST_F(CoherenceViolationTest, ConsumerCachedReadsWouldGoStaleAcrossReuse) {
  // If the consumer read payloads with plain cached loads (instead of the
  // ring's pool-coherent bulk reads), the SECOND message through the same
  // cell would be served from its stale cache. Demonstrate with raw
  // accessors on a reused cell.
  const std::vector<std::byte> first(kPayload, std::byte{0x01});
  producer_->nt_store(kCellsAt + sizeof(CellHeader), first);
  std::vector<std::byte> got(kPayload);
  consumer_->load(kCellsAt + sizeof(CellHeader), got);  // caches the lines
  EXPECT_EQ(std::to_integer<int>(got[0]), 0x01);

  const std::vector<std::byte> second(kPayload, std::byte{0x02});
  producer_->nt_store(kCellsAt + sizeof(CellHeader), second);
  consumer_->load(kCellsAt + sizeof(CellHeader), got);  // stale hit!
  EXPECT_EQ(std::to_integer<int>(got[0]), 0x01);

  // The ring's actual read path (bulk/NT) sees the fresh bytes.
  consumer_->bulk_read(kCellsAt + sizeof(CellHeader), got);
  EXPECT_EQ(std::to_integer<int>(got[0]), 0x02);
}

TEST_F(CoherenceViolationTest, CorrectRingSurvivesCellReuseManyTimes) {
  // Control experiment: the real protocol re-uses every cell repeatedly
  // with no staleness (contrast with the violations above).
  auto producer_ring = check_ok(SpscRing::attach(*producer_, 0));
  std::vector<std::byte> out(kPayload);
  for (int i = 0; i < 40; ++i) {
    const std::vector<std::byte> payload(kPayload,
                                         static_cast<std::byte>(i + 1));
    ASSERT_TRUE(producer_ring.try_enqueue(*producer_, header_for(kPayload),
                                          payload));
    CellHeader h{};
    ASSERT_TRUE(ring_->try_dequeue(*consumer_, h, out));
    ASSERT_EQ(std::to_integer<int>(out[0]), i + 1);
    ASSERT_EQ(std::to_integer<int>(out[kPayload - 1]), i + 1);
  }
}

}  // namespace
}  // namespace cmpi::queue
