#include "queue/queue_matrix.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace cmpi::queue {
namespace {

class QueueMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(cxlsim::DaxDevice::create(32_MiB));
    cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    acc_ = std::make_unique<cxlsim::Accessor>(*device_, *cache_, clock_);
    arena::Arena::Params p;
    p.levels = 3;
    p.level1_buckets = 31;
    p.max_participants = 8;
    arena_ = std::make_unique<arena::Arena>(
        check_ok(arena::Arena::format(*acc_, 0, 16_MiB, 0, p)));
  }

  simtime::VClock clock_;
  std::unique_ptr<cxlsim::DaxDevice> device_;
  std::unique_ptr<cxlsim::CacheSim> cache_;
  std::unique_ptr<cxlsim::Accessor> acc_;
  std::unique_ptr<arena::Arena> arena_;
};

TEST_F(QueueMatrixTest, FootprintScalesQuadratically) {
  const auto f2 = QueueMatrix::footprint(2, 4, 256);
  const auto f4 = QueueMatrix::footprint(4, 4, 256);
  EXPECT_EQ(f4, 4 * f2);
}

TEST_F(QueueMatrixTest, CreateThenOpenSeeSameGeometry) {
  auto created = check_ok(QueueMatrix::create(*arena_, *acc_, 4, 4, 256));
  auto opened = check_ok(QueueMatrix::open(*arena_, *acc_, 4));
  EXPECT_EQ(opened.base(), created.base());
  EXPECT_EQ(opened.cell_payload(), 256u);
  EXPECT_EQ(opened.nranks(), 4);
}

TEST_F(QueueMatrixTest, OpenWithoutCreateFails) {
  EXPECT_FALSE(QueueMatrix::open(*arena_, *acc_, 4).is_ok());
}

TEST_F(QueueMatrixTest, DoubleCreateFails) {
  check_ok(QueueMatrix::create(*arena_, *acc_, 2, 4, 256));
  EXPECT_EQ(QueueMatrix::create(*arena_, *acc_, 2, 4, 256).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(QueueMatrixTest, PairwiseRingsAreIndependent) {
  auto matrix = check_ok(QueueMatrix::create(*arena_, *acc_, 3, 4, 256));
  const std::byte payload[8] = {};
  CellHeader h{};
  h.chunk_bytes = 8;
  h.total_bytes = 8;
  h.flags = kLastChunk;

  // Fill ring (receiver=1, sender=0) only.
  h.tag = 100;
  ASSERT_TRUE(matrix.ring(*acc_, 1, 0).try_enqueue(*acc_, h, payload));
  // Other rings are unaffected.
  EXPECT_FALSE(matrix.ring(*acc_, 0, 1).can_dequeue(*acc_));
  EXPECT_FALSE(matrix.ring(*acc_, 2, 0).can_dequeue(*acc_));
  EXPECT_FALSE(matrix.ring(*acc_, 1, 2).can_dequeue(*acc_));
  EXPECT_TRUE(matrix.ring(*acc_, 1, 0).can_dequeue(*acc_));
}

TEST_F(QueueMatrixTest, AllPairsFunctional) {
  constexpr int kRanks = 3;
  auto writer = check_ok(QueueMatrix::create(*arena_, *acc_, kRanks, 2, 64));
  auto reader = check_ok(QueueMatrix::open(*arena_, *acc_, kRanks));
  for (int r = 0; r < kRanks; ++r) {
    for (int s = 0; s < kRanks; ++s) {
      if (r == s) {
        continue;
      }
      CellHeader h{};
      h.src_rank = static_cast<std::uint64_t>(s);
      h.tag = static_cast<std::uint64_t>(r * 10 + s);
      h.total_bytes = 0;
      h.chunk_bytes = 0;
      h.flags = kLastChunk;
      ASSERT_TRUE(writer.ring(*acc_, r, s).try_enqueue(*acc_, h, {}));
      CellHeader out{};
      ASSERT_TRUE(reader.ring(*acc_, r, s).try_dequeue(*acc_, out, {}));
      EXPECT_EQ(out.tag, static_cast<std::uint64_t>(r * 10 + s));
    }
  }
}

}  // namespace
}  // namespace cmpi::queue
