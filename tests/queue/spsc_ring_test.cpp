#include "queue/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace cmpi::queue {
namespace {

class SpscRingTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kCells = 4;
  static constexpr std::size_t kPayload = 256;

  void SetUp() override {
    device_ = check_ok(cxlsim::DaxDevice::create(8_MiB));
    producer_cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    consumer_cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    producer_acc_ = std::make_unique<cxlsim::Accessor>(
        *device_, *producer_cache_, producer_clock_);
    consumer_acc_ = std::make_unique<cxlsim::Accessor>(
        *device_, *consumer_cache_, consumer_clock_);
    SpscRing::format(*producer_acc_, 0, kCells, kPayload);
    producer_ = std::make_unique<SpscRing>(
        check_ok(SpscRing::attach(*producer_acc_, 0)));
    consumer_ = std::make_unique<SpscRing>(
        check_ok(SpscRing::attach(*consumer_acc_, 0)));
  }

  static CellHeader header_for(std::span<const std::byte> payload,
                               int tag = 0, bool last = true) {
    CellHeader h{};
    h.src_rank = 1;
    h.tag = static_cast<std::uint64_t>(tag);
    h.total_bytes = payload.size();
    h.chunk_offset = 0;
    h.chunk_bytes = payload.size();
    h.flags = last ? kLastChunk : 0;
    return h;
  }

  static std::vector<std::byte> pattern(std::size_t n, int seed) {
    std::vector<std::byte> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::byte>((seed + 7 * i) & 0xFF);
    }
    return out;
  }

  simtime::VClock producer_clock_;
  simtime::VClock consumer_clock_;
  std::unique_ptr<cxlsim::DaxDevice> device_;
  std::unique_ptr<cxlsim::CacheSim> producer_cache_;
  std::unique_ptr<cxlsim::CacheSim> consumer_cache_;
  std::unique_ptr<cxlsim::Accessor> producer_acc_;
  std::unique_ptr<cxlsim::Accessor> consumer_acc_;
  std::unique_ptr<SpscRing> producer_;
  std::unique_ptr<SpscRing> consumer_;
};

TEST_F(SpscRingTest, AttachReadsGeometry) {
  EXPECT_EQ(producer_->capacity(), kCells);
  EXPECT_EQ(producer_->cell_payload(), kPayload);
}

TEST_F(SpscRingTest, EmptyRingHasNothingToDequeue) {
  EXPECT_FALSE(consumer_->can_dequeue(*consumer_acc_));
  CellHeader h{};
  EXPECT_FALSE(consumer_->try_dequeue(*consumer_acc_, h, {}));
  EXPECT_FALSE(consumer_->peek(*consumer_acc_).has_value());
}

TEST_F(SpscRingTest, SingleMessageRoundTrip) {
  const auto payload = pattern(100, 3);
  ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, header_for(payload, 42),
                                     payload));
  CellHeader out{};
  std::vector<std::byte> got(kPayload);
  ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
  EXPECT_EQ(out.tag, 42u);
  EXPECT_EQ(out.chunk_bytes, 100u);
  EXPECT_EQ(out.src_rank, 1u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), got.begin()));
}

TEST_F(SpscRingTest, FifoOrderPreserved) {
  for (int i = 0; i < static_cast<int>(kCells); ++i) {
    const auto payload = pattern(64, i);
    ASSERT_TRUE(producer_->try_enqueue(*producer_acc_,
                                       header_for(payload, i), payload));
  }
  for (int i = 0; i < static_cast<int>(kCells); ++i) {
    CellHeader out{};
    std::vector<std::byte> got(kPayload);
    ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
    EXPECT_EQ(out.tag, static_cast<std::uint64_t>(i));
    const auto expected = pattern(64, i);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()));
  }
}

TEST_F(SpscRingTest, FullRingRejectsEnqueue) {
  const auto payload = pattern(16, 0);
  for (std::size_t i = 0; i < kCells; ++i) {
    ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, header_for(payload),
                                       payload));
  }
  EXPECT_FALSE(producer_->can_enqueue(*producer_acc_));
  EXPECT_FALSE(
      producer_->try_enqueue(*producer_acc_, header_for(payload), payload));
  // Draining one cell frees space.
  CellHeader out{};
  std::vector<std::byte> got(kPayload);
  ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
  EXPECT_TRUE(producer_->can_enqueue(*producer_acc_));
}

TEST_F(SpscRingTest, WrapAroundManyTimes) {
  std::vector<std::byte> got(kPayload);
  for (int i = 0; i < 100; ++i) {
    const auto payload = pattern(32, i);
    ASSERT_TRUE(producer_->try_enqueue(*producer_acc_,
                                       header_for(payload, i), payload));
    CellHeader out{};
    ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
    EXPECT_EQ(out.tag, static_cast<std::uint64_t>(i));
    const auto expected = pattern(32, i);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()));
  }
}

TEST_F(SpscRingTest, ZeroBytePayload) {
  CellHeader h{};
  h.src_rank = 0;
  h.tag = 5;
  h.total_bytes = 0;
  h.chunk_bytes = 0;
  h.flags = kLastChunk;
  ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, h, {}));
  CellHeader out{};
  ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, {}));
  EXPECT_EQ(out.tag, 5u);
  EXPECT_EQ(out.chunk_bytes, 0u);
}

TEST_F(SpscRingTest, PeekDoesNotConsume) {
  const auto payload = pattern(10, 1);
  ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, header_for(payload, 9),
                                     payload));
  const auto peeked = consumer_->peek(*consumer_acc_);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->tag, 9u);
  // Still dequeueable.
  CellHeader out{};
  std::vector<std::byte> got(kPayload);
  ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
  EXPECT_EQ(out.tag, 9u);
}

TEST_F(SpscRingTest, RepeatedPeekOfSameCellIsTimeFree) {
  const auto payload = pattern(10, 1);
  ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, header_for(payload, 9),
                                     payload));
  // First peek charges the header read (and absorbs the producer stamp).
  const auto first = consumer_->peek(*consumer_acc_);
  ASSERT_TRUE(first.has_value());
  const double after_first = consumer_clock_.now();
  EXPECT_GT(after_first, 0.0);
  // An iprobe/probe polling loop re-peeks the same unconsumed cell many
  // times; every re-peek must return the cached header and advance virtual
  // time by exactly zero.
  for (int i = 0; i < 100; ++i) {
    const auto again = consumer_->peek(*consumer_acc_);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->tag, first->tag);
    EXPECT_EQ(again->stamp, first->stamp);
  }
  EXPECT_EQ(consumer_clock_.now(), after_first);
  // Consuming the cell invalidates the cached header; the next message is
  // peeked (and charged) fresh.
  CellHeader out{};
  std::vector<std::byte> got(kPayload);
  ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
  EXPECT_FALSE(consumer_->peek(*consumer_acc_).has_value());
  const auto next = pattern(12, 2);
  ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, header_for(next, 10),
                                     next));
  const auto fresh = consumer_->peek(*consumer_acc_);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->tag, 10u);
}

TEST_F(SpscRingTest, IndexWraparoundAtUint64Max) {
  // Free-running u64 counters cross 2^64 mid-traffic. Rebase both views
  // near the top and stream enough messages to wrap several times around
  // both the ring and the counter space.
  const std::uint64_t start = std::uint64_t{0} - 3 * kCells - 1;
  producer_->debug_rebase_counters(*producer_acc_, start);
  consumer_->debug_rebase_counters(*consumer_acc_, start);
  std::vector<std::byte> got(kPayload);
  for (int i = 0; i < static_cast<int>(8 * kCells); ++i) {
    const auto payload = pattern(48, i);
    ASSERT_TRUE(producer_->try_enqueue(*producer_acc_,
                                       header_for(payload, i), payload))
        << "message " << i;
    CellHeader out{};
    ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got))
        << "message " << i;
    EXPECT_EQ(out.tag, static_cast<std::uint64_t>(i));
    const auto expected = pattern(48, i);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()))
        << "message " << i;
  }
}

TEST_F(SpscRingTest, IndexWraparoundWithFullRingBackpressure) {
  // Wrap the counters while exercising the full/empty arithmetic:
  // tail - head must stay correct across the discontinuity.
  const std::uint64_t start = std::uint64_t{0} - kCells + 1;
  producer_->debug_rebase_counters(*producer_acc_, start);
  consumer_->debug_rebase_counters(*consumer_acc_, start);
  const auto payload = pattern(16, 0);
  for (std::size_t i = 0; i < kCells; ++i) {
    ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, header_for(payload),
                                       payload));
  }
  // Ring full exactly as tail_local_ wrapped past zero.
  EXPECT_FALSE(producer_->can_enqueue(*producer_acc_));
  CellHeader out{};
  std::vector<std::byte> got(kPayload);
  ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
  EXPECT_TRUE(producer_->can_enqueue(*producer_acc_));
  for (std::size_t i = 1; i < kCells; ++i) {
    ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
  }
  EXPECT_FALSE(consumer_->can_dequeue(*consumer_acc_));
}

TEST_F(SpscRingTest, AttachRejectsCorruptGeometry) {
  // Corrupt the on-pool constants the way a buggy peer or reused arena
  // block would, and check attach() fails with a Status instead of
  // arithmetic on garbage.
  constexpr std::uint64_t kConstAt = 128;  // documented layout: +128
  // Non-power-of-two cell count.
  producer_acc_->nt_store_u64(kConstAt, 3);
  EXPECT_FALSE(SpscRing::attach(*consumer_acc_, 0).is_ok());
  // Zero / out-of-range cell count.
  producer_acc_->nt_store_u64(kConstAt, 0);
  EXPECT_FALSE(SpscRing::attach(*consumer_acc_, 0).is_ok());
  producer_acc_->nt_store_u64(kConstAt, SpscRing::kMaxCells * 2);
  EXPECT_FALSE(SpscRing::attach(*consumer_acc_, 0).is_ok());
  // Restore cells, corrupt payload: unaligned, then absurdly large.
  producer_acc_->nt_store_u64(kConstAt, kCells);
  producer_acc_->nt_store_u64(kConstAt + 8, 100);
  EXPECT_FALSE(SpscRing::attach(*consumer_acc_, 0).is_ok());
  producer_acc_->nt_store_u64(kConstAt + 8, SpscRing::kMaxCellPayload + 64);
  EXPECT_FALSE(SpscRing::attach(*consumer_acc_, 0).is_ok());
  // Geometry valid per-field but footprint exceeding the device.
  producer_acc_->nt_store_u64(kConstAt, 1 << 16);
  producer_acc_->nt_store_u64(kConstAt + 8, 1 << 20);
  EXPECT_FALSE(SpscRing::attach(*consumer_acc_, 0).is_ok());
  // Unaligned base is rejected before any pool read.
  EXPECT_FALSE(SpscRing::attach(*consumer_acc_, 8).is_ok());
  // Base beyond the device is rejected before reading the constants.
  EXPECT_FALSE(
      SpscRing::attach(*consumer_acc_, device_->size() - 64).is_ok());
  // Restoring the real geometry makes attach succeed again.
  producer_acc_->nt_store_u64(kConstAt, kCells);
  producer_acc_->nt_store_u64(kConstAt + 8, kPayload);
  EXPECT_TRUE(SpscRing::attach(*consumer_acc_, 0).is_ok());
}

TEST_F(SpscRingTest, TimestampPropagatesProducerTimeToConsumer) {
  producer_clock_.advance(500000);
  const auto payload = pattern(64, 2);
  ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, header_for(payload),
                                     payload));
  CellHeader out{};
  std::vector<std::byte> got(kPayload);
  ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
  EXPECT_GE(consumer_clock_.now(), 500000.0);
}

TEST_F(SpscRingTest, BackpressurePropagatesConsumerTimeToProducer) {
  const auto payload = pattern(16, 0);
  for (std::size_t i = 0; i < kCells; ++i) {
    ASSERT_TRUE(producer_->try_enqueue(*producer_acc_, header_for(payload),
                                       payload));
  }
  // Consumer drains one cell late in virtual time.
  consumer_clock_.advance(2e6);
  CellHeader out{};
  std::vector<std::byte> got(kPayload);
  ASSERT_TRUE(consumer_->try_dequeue(*consumer_acc_, out, got));
  // Producer blocked on a full ring observes the consumer's progress time.
  ASSERT_TRUE(producer_->can_enqueue(*producer_acc_));
  EXPECT_GE(producer_clock_.now(), 2e6);
}

TEST_F(SpscRingTest, ConcurrentProducerConsumerStress) {
  constexpr int kMessages = 500;
  std::thread producer_thread([&] {
    for (int i = 0; i < kMessages; ++i) {
      const auto payload = pattern(128, i);
      while (!producer_->try_enqueue(*producer_acc_, header_for(payload, i),
                                     payload)) {
        std::this_thread::yield();
      }
    }
  });
  std::thread consumer_thread([&] {
    std::vector<std::byte> got(kPayload);
    for (int i = 0; i < kMessages; ++i) {
      CellHeader out{};
      while (!consumer_->try_dequeue(*consumer_acc_, out, got)) {
        std::this_thread::yield();
      }
      ASSERT_EQ(out.tag, static_cast<std::uint64_t>(i));
      const auto expected = pattern(128, i);
      ASSERT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()))
          << "message " << i;
    }
  });
  producer_thread.join();
  consumer_thread.join();
}

}  // namespace
}  // namespace cmpi::queue
