#include "simtime/vclock.hpp"

#include <gtest/gtest.h>

namespace cmpi::simtime {
namespace {

TEST(VClock, StartsAtZero) {
  VClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(VClock, AdvanceAccumulates) {
  VClock clock;
  clock.advance(100);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 100.5);
}

TEST(VClock, ObserveTakesMax) {
  VClock clock(50);
  clock.observe(30);  // stale stamp: no effect
  EXPECT_DOUBLE_EQ(clock.now(), 50);
  clock.observe(80);  // remote completion in the future: jump
  EXPECT_DOUBLE_EQ(clock.now(), 80);
}

TEST(VClock, MaxPlusPingPong) {
  // Two ranks exchanging a message: latency accumulates along the
  // critical path regardless of which side is "ahead".
  VClock sender;
  VClock receiver;
  constexpr Ns kLatency = 790;
  for (int i = 0; i < 4; ++i) {
    sender.advance(kLatency);
    receiver.observe(sender.now());
    receiver.advance(kLatency);
    sender.observe(receiver.now());
  }
  EXPECT_DOUBLE_EQ(sender.now(), 8 * kLatency);
}

TEST(VClock, ResetForIterationBoundaries) {
  VClock clock(123);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0);
  clock.reset(7);
  EXPECT_DOUBLE_EQ(clock.now(), 7);
}

}  // namespace
}  // namespace cmpi::simtime
