#include "simtime/loggp.hpp"

#include <gtest/gtest.h>

namespace cmpi::simtime {
namespace {

LogGPParams ethernet_like() {
  LogGPParams p;
  p.wire_latency = 8000;
  p.send_overhead = 4000;
  p.recv_overhead = 4000;
  p.wire_bytes_per_ns = 0.1178;  // 117.8 MB/s
  p.mtu = 1500;
  p.per_segment_overhead = 500;
  return p;
}

TEST(LogGP, SenderCpuCostScalesWithSegments) {
  LogGPModel model(ethernet_like());
  // 1 segment.
  EXPECT_DOUBLE_EQ(model.sender_cpu_cost(100), 4000 + 500);
  // 3 segments (4000 bytes over 1500 MTU).
  EXPECT_DOUBLE_EQ(model.sender_cpu_cost(4000), 4000 + 3 * 500);
  // Zero-byte message still packetizes once.
  EXPECT_DOUBLE_EQ(model.sender_cpu_cost(0), 4000 + 500);
}

TEST(LogGP, ZeroLoadLatencyComposition) {
  LogGPModel model(ethernet_like());
  const Ns expected = (4000 + 500) + 8000 + 100 / 0.1178 + 4000;
  EXPECT_NEAR(model.zero_load_latency(100), expected, 1e-6);
}

TEST(LogGP, SendTimingOrdering) {
  LogGPModel model(ethernet_like());
  const MessageTiming t = model.send(0, 1000);
  EXPECT_GT(t.delivered, t.sender_done);  // wire + latency dominate here
  EXPECT_DOUBLE_EQ(t.receiver_done, t.delivered + 4000);
}

TEST(LogGP, WireIsSharedAcrossSenders) {
  LogGPModel model(ethernet_like());
  const MessageTiming a = model.send(0, 100000);
  const MessageTiming b = model.send(0, 100000);
  // Second message queues behind the first on the wire (within one
  // capacity-slot of quantization).
  EXPECT_GT(b.delivered, a.delivered);
  EXPECT_NEAR(b.delivered - a.delivered, 100000 / 0.1178, 2100.0);
}

TEST(LogGP, PerMessageGapDelaysSender) {
  LogGPParams p = ethernet_like();
  p.per_message_gap = 2000;
  LogGPModel model(p);
  const MessageTiming t = model.send(0, 100);
  EXPECT_DOUBLE_EQ(t.sender_done, 4000 + 500 + 2000);
}

TEST(LogGP, ResetDrainsWire) {
  LogGPModel model(ethernet_like());
  (void)model.send(0, 1000000);
  model.reset();
  const MessageTiming t = model.send(0, 100);
  EXPECT_NEAR(t.delivered, model.zero_load_latency(100) - 4000, 1e-6);
}

TEST(LogGP, OffloadedNicBeatsSlowNicForLargeMessages) {
  // A CX-6-Dx-like profile: higher per-message latency but ~100x the
  // bandwidth of commodity Ethernet. The crossover the paper's figures
  // show must emerge from the model.
  LogGPParams mlx = ethernet_like();
  mlx.wire_latency = 9000;
  mlx.send_overhead = 4500;
  mlx.recv_overhead = 4500;
  mlx.wire_bytes_per_ns = 11.5;
  LogGPModel slow(ethernet_like());
  LogGPModel fast(mlx);
  // Small message: commodity Ethernet's lower overheads win or tie.
  EXPECT_LT(slow.zero_load_latency(8) / fast.zero_load_latency(8), 1.2);
  // 1 MiB: the SmartNIC is far faster.
  EXPECT_GT(slow.zero_load_latency(1 << 20) / fast.zero_load_latency(1 << 20),
            10.0);
}

}  // namespace
}  // namespace cmpi::simtime
