#include "simtime/busy_resource.hpp"

#include <gtest/gtest.h>

namespace cmpi::simtime {
namespace {

TEST(BusyResource, UncontendedCost) {
  BusyResource wire(10.0);  // 10 bytes/ns
  EXPECT_DOUBLE_EQ(wire.uncontended_cost(1000), 100.0);
  EXPECT_DOUBLE_EQ(wire.uncontended_cost(0), 0.0);
}

TEST(BusyResource, IdleResourceServesImmediately) {
  BusyResource wire(1.0);
  EXPECT_DOUBLE_EQ(wire.reserve(50, 100), 150.0);
}

TEST(BusyResource, BackToBackRequestsQueue) {
  BusyResource wire(1.0);
  EXPECT_DOUBLE_EQ(wire.reserve(0, 100), 100.0);
  // Arrives while busy: waits for the first transfer.
  EXPECT_DOUBLE_EQ(wire.reserve(10, 100), 200.0);
  // Arrives after the queue drained: no wait.
  EXPECT_DOUBLE_EQ(wire.reserve(500, 100), 600.0);
}

TEST(BusyResource, SaturationEmergesFromQueueing) {
  // N producers each sending one message at t=0 finish at N * service —
  // aggregate bandwidth is capped at the resource rate.
  BusyResource wire(2.0);
  Ns last = 0;
  constexpr int kProducers = 8;
  constexpr std::size_t kBytes = 1000;
  for (int i = 0; i < kProducers; ++i) {
    last = wire.reserve(0, kBytes);
  }
  EXPECT_DOUBLE_EQ(last, kProducers * (kBytes / 2.0));
  const double aggregate_rate = kProducers * kBytes / last;
  EXPECT_DOUBLE_EQ(aggregate_rate, 2.0);
}

TEST(BusyResource, ResetClearsHistory) {
  BusyResource wire(1.0);
  (void)wire.reserve(0, 1000);
  wire.reset();
  EXPECT_DOUBLE_EQ(wire.reserve(0, 10), 10.0);
}

TEST(BusyResource, ZeroByteReservationIsFree) {
  BusyResource wire(1.0);
  EXPECT_DOUBLE_EQ(wire.reserve(42, 0), 42.0);
}

}  // namespace
}  // namespace cmpi::simtime
