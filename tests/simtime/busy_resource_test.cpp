#include "simtime/busy_resource.hpp"

#include <gtest/gtest.h>

namespace cmpi::simtime {
namespace {

TEST(BusyResource, UncontendedCost) {
  BusyResource wire(10.0);  // 10 bytes/ns
  EXPECT_DOUBLE_EQ(wire.uncontended_cost(1000), 100.0);
  EXPECT_DOUBLE_EQ(wire.uncontended_cost(0), 0.0);
}

TEST(BusyResource, IdleResourceServesImmediately) {
  BusyResource wire(1.0);
  EXPECT_DOUBLE_EQ(wire.reserve(50, 100), 150.0);
}

TEST(BusyResource, BackToBackRequestsQueue) {
  BusyResource wire(1.0);
  EXPECT_DOUBLE_EQ(wire.reserve(0, 100), 100.0);
  // Arrives while busy: waits for the first transfer.
  EXPECT_DOUBLE_EQ(wire.reserve(10, 100), 200.0);
  // Arrives after the queue drained: no wait.
  EXPECT_DOUBLE_EQ(wire.reserve(500, 100), 600.0);
}

TEST(BusyResource, SaturationEmergesFromQueueing) {
  // N producers each sending one message at t=0 finish at N * service —
  // aggregate bandwidth is capped at the resource rate.
  BusyResource wire(2.0);
  Ns last = 0;
  constexpr int kProducers = 8;
  constexpr std::size_t kBytes = 1000;
  for (int i = 0; i < kProducers; ++i) {
    last = wire.reserve(0, kBytes);
  }
  EXPECT_DOUBLE_EQ(last, kProducers * (kBytes / 2.0));
  const double aggregate_rate = kProducers * kBytes / last;
  EXPECT_DOUBLE_EQ(aggregate_rate, 2.0);
}

TEST(BusyResource, ResetClearsHistory) {
  BusyResource wire(1.0);
  (void)wire.reserve(0, 1000);
  wire.reset();
  EXPECT_DOUBLE_EQ(wire.reserve(0, 10), 10.0);
}

TEST(BusyResource, ZeroByteReservationIsFree) {
  BusyResource wire(1.0);
  EXPECT_DOUBLE_EQ(wire.reserve(42, 0), 42.0);
}

// --- Weighted fair queueing (multi-tenant guarantees) ---

TEST(BusyResource, GuaranteedShareSurvivesSaturation) {
  // 1 byte/ns, 2048-ns slots. Tenant 1 holds a 10% guarantee, tenant 2
  // holds 90% and saturates. Expected values are closed-form from the
  // slot model: tenant 2 may take at most
  // kSlotNs - max(0, 0.1 * kSlotNs - tenant1_used) = 1843.2 ns per slot.
  BusyResource wire(1.0);
  wire.set_share(1, 0.1);
  wire.set_share(2, 0.9);

  // Tenant 1 primes its activity window with a small transfer (an idle
  // guarantee would lapse — see IdleGuaranteeLapses below).
  EXPECT_DOUBLE_EQ(wire.reserve_for(1, 0, 100), 100.0);

  // Tenant 2 floods 100 KB. Slot 0 offers 2048 - 100 - 104.8 = 1843.2,
  // later slots 1843.2 each; the tail lands in slot 54:
  // 54 * 2048 + (100000 - 1843.2 - 53 * 1843.2) = 111059.2 — within 0.05%
  // of the fluid-limit 100000 / 0.9.
  const Ns saturator_done = wire.reserve_for(2, 0, 100000);
  EXPECT_NEAR(saturator_done, 111059.2, 0.5);
  EXPECT_NEAR(saturator_done, 100000 / 0.9, 0.05 * (100000 / 0.9));

  // Tenant 1 now offers 10 KB into the backlog. Its guarantee means every
  // slot still holds >= 204.8 ns for it: slot 0 has the 104.8 remainder,
  // slots 1..53 hold 204.8 each, the tail lands in slot 49's reserved
  // band: 49 * 2048 + 1843.2 + 64.8 = 102260.
  const Ns guaranteed_done = wire.reserve_for(1, 0, 10000);
  EXPECT_NEAR(guaranteed_done, 102260.0, 0.5);

  // The acceptance criterion: attainment vs the pure-share fluid ideal
  // (10000 bytes at 10% of 1 byte/ns = 100000 ns) stays above 80% — here
  // it is ~97.8%.
  const double attainment = 100000.0 / static_cast<double>(guaranteed_done);
  EXPECT_GE(attainment, 0.8);
  EXPECT_GE(attainment, 0.95);
}

TEST(BusyResource, IdleGuaranteeLapses) {
  // Work conservation: a guarantee only binds while its class was
  // recently active. Never-active and idle-past-the-window classes give
  // the full rate back to whoever is running.
  {
    BusyResource wire(1.0);
    wire.set_share(1, 0.5);
    wire.set_share(2, 0.5);
    // Class 1 never reserved: class 2 runs at full rate, not 50%.
    EXPECT_DOUBLE_EQ(wire.reserve_for(2, 0, 10000), 10000.0);
  }
  {
    BusyResource wire(1.0);
    wire.set_share(1, 0.5);
    wire.set_share(2, 0.5);
    EXPECT_DOUBLE_EQ(wire.reserve_for(1, 0, 100), 100.0);
    // 66 slots later — past the 64-slot activity window — class 1's
    // guarantee has aged out and class 2 again runs uncontended.
    const Ns ready = 66 * 2048;
    EXPECT_DOUBLE_EQ(wire.reserve_for(2, ready, 10000), ready + 10000.0);
  }
}

TEST(BusyResource, ActiveGuaranteeBindsWithinWindow) {
  // Inside the activity window the reservation holds: with class 1
  // recently active at 50%, class 2 gets at most half of each slot.
  BusyResource wire(1.0);
  wire.set_share(1, 0.5);
  wire.set_share(2, 0.5);
  EXPECT_DOUBLE_EQ(wire.reserve_for(1, 0, 100), 100.0);
  // Ten slots later (well inside 64): class 2's 10 KB is served at
  // ~half rate, so completion is close to ready + 20000, not ready + 10000.
  const Ns ready = 10 * 2048;
  const Ns done = wire.reserve_for(2, ready, 10000);
  EXPECT_GT(done, ready + 19000.0);
  EXPECT_LT(done, ready + 21000.0);
}

TEST(BusyResource, UnattributedPathMatchesLegacyReserve) {
  // With no shares registered, reserve_for is the classic scan: identical
  // completions to reserve() on a twin resource, call for call.
  BusyResource legacy(2.0);
  BusyResource attributed(2.0);
  EXPECT_DOUBLE_EQ(attributed.reserve_for(7, 0, 1000), legacy.reserve(0, 1000));
  EXPECT_DOUBLE_EQ(attributed.reserve_for(7, 10, 1000),
                   legacy.reserve(10, 1000));
  EXPECT_DOUBLE_EQ(attributed.reserve_for(0, 2000, 500),
                   legacy.reserve(2000, 500));
}

TEST(BusyResource, ShareRegistryReplaceAndClear) {
  BusyResource wire(1.0);
  EXPECT_DOUBLE_EQ(wire.share(3), 0.0);
  wire.set_share(3, 0.25);
  EXPECT_DOUBLE_EQ(wire.share(3), 0.25);
  wire.set_share(3, 0.4);  // replace, not accumulate
  EXPECT_DOUBLE_EQ(wire.share(3), 0.4);
  wire.set_share(4, 0.6);  // 0.4 + 0.6 = 1.0: still admissible
  wire.clear_share(3);
  EXPECT_DOUBLE_EQ(wire.share(3), 0.0);
  EXPECT_DOUBLE_EQ(wire.share(4), 0.6);
  wire.clear_share(99);  // unknown class: no-op
}

}  // namespace
}  // namespace cmpi::simtime
