// Regression: the shared-bandwidth server must be insensitive to the
// wall-clock ORDER reservations are issued in. Rank threads run
// concurrently, so a virtually-early transfer is often requested after a
// virtually-late one; a naive FCFS busy-until server would queue it
// behind the future and compound the skew across a run (observed as 2x
// bandwidth swings before the slotted fluid model).
#include <gtest/gtest.h>

#include "simtime/busy_resource.hpp"

namespace cmpi::simtime {
namespace {

TEST(OrderInsensitivity, EarlyReservationAfterLateOne) {
  BusyResource device(1.0);  // 1 byte/ns
  // A virtually-late transfer is requested first (its thread ran first).
  const Ns late = device.reserve(1'000'000, 1000);
  EXPECT_DOUBLE_EQ(late, 1'001'000.0);
  // The virtually-early transfer must still get the idle capacity at its
  // own ready time, not queue behind the future.
  const Ns early = device.reserve(0, 1000);
  EXPECT_LT(early, 10'000.0);
}

TEST(OrderInsensitivity, InterleavedTwoStreams) {
  // Two streams at disjoint virtual times, issued alternately: each must
  // see uncontended service.
  BusyResource device(2.0);
  for (int k = 0; k < 50; ++k) {
    const Ns a = device.reserve(k * 100'000, 1000);
    const Ns b = device.reserve(5'000'000 + k * 100'000, 1000);
    EXPECT_NEAR(a, k * 100'000 + 500, 2100);
    EXPECT_NEAR(b, 5'000'000 + k * 100'000 + 500, 2100);
  }
}

TEST(OrderInsensitivity, SameWindowStillContends) {
  // Order insensitivity must not break contention: N transfers ready at
  // the same instant still serialize at the capacity.
  BusyResource device(1.0);
  Ns last = 0;
  for (int k = 0; k < 16; ++k) {
    last = std::max(last, device.reserve(0, 1000));
  }
  EXPECT_NEAR(last, 16'000.0, 2100);
}

TEST(OrderInsensitivity, ReverseVirtualOrderMatchesForwardThroughput) {
  // Aggregate completion horizon is (near) identical whether requests
  // arrive in forward or reverse virtual order.
  const auto horizon = [](bool reversed) {
    BusyResource device(1.0);
    Ns last = 0;
    for (int k = 0; k < 32; ++k) {
      const int slot = reversed ? 31 - k : k;
      last = std::max(last, device.reserve(slot * 500, 2000));
    }
    return last;
  };
  EXPECT_NEAR(horizon(false), horizon(true), 4200);
}

}  // namespace
}  // namespace cmpi::simtime
