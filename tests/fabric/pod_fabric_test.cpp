#include "fabric/pod_fabric.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fabric/profiles.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::fabric {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 31 + i) & 0xFF);
  }
  return out;
}

PodFabricConfig config_for(int pods, int ranks_per_pod) {
  PodFabricConfig cfg;
  cfg.topo.pods = pods;
  cfg.topo.ranks_per_pod = ranks_per_pod;
  cfg.topo.router_local = 0;
  return cfg;
}

// ---- Satellite: profiles parameter validation (Status, not assert) ----

TEST(ProfileValidation, BuiltInProfilesAreValid) {
  for (const auto& p : {tcp_ethernet(), tcp_cx6dx(), rocev2_cx6dx(),
                        rocev2_cx3(), infiniband_cx6()}) {
    EXPECT_TRUE(validate(p).is_ok()) << p.name;
  }
}

TEST(ProfileValidation, RejectsNonFiniteAndNegativeInputs) {
  NicProfile p = tcp_cx6dx();
  p.loggp.wire_latency = -1.0;
  EXPECT_EQ(validate(p).code(), ErrorCode::kInvalidArgument);

  p = tcp_cx6dx();
  p.loggp.send_overhead = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(validate(p).code(), ErrorCode::kInvalidArgument);

  p = tcp_cx6dx();
  p.loggp.wire_bytes_per_ns = 0.0;
  EXPECT_EQ(validate(p).code(), ErrorCode::kInvalidArgument);

  p = tcp_cx6dx();
  p.loggp.wire_bytes_per_ns = std::numeric_limits<double>::infinity();
  EXPECT_EQ(validate(p).code(), ErrorCode::kInvalidArgument);

  p = tcp_cx6dx();
  p.loggp.mtu = 0;
  EXPECT_EQ(validate(p).code(), ErrorCode::kInvalidArgument);

  p = tcp_cx6dx();
  p.mpi_msg_overhead = -5.0;
  EXPECT_EQ(validate(p).code(), ErrorCode::kInvalidArgument);

  p = tcp_cx6dx();
  p.sndbuf = 0;
  EXPECT_EQ(validate(p).code(), ErrorCode::kInvalidArgument);
}

TEST(ProfileValidation, ErrorNamesTheOffendingField) {
  NicProfile p = tcp_cx6dx();
  p.loggp.recv_overhead = -1.0;
  const Status s = validate(p);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("recv_overhead"), std::string::npos)
      << s.message();
}

TEST(ProfileValidation, MakeProfileValidatesInputs) {
  EXPECT_EQ(make_profile("bad", -100.0, 10.0).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(make_profile("bad", 1000.0, 0.0).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(
      make_profile("bad", std::numeric_limits<double>::quiet_NaN(), 10.0)
          .status()
          .code(),
      ErrorCode::kInvalidArgument);

  auto good = make_profile("custom", 8000.0, 12.0, 500.0);
  ASSERT_TRUE(good.is_ok());
  const NicProfile& p = good.value();
  EXPECT_EQ(p.name, "custom");
  // Latency split: o_s + L + o_r reconstructs the requested one-way cost.
  EXPECT_DOUBLE_EQ(p.loggp.send_overhead + p.loggp.wire_latency +
                       p.loggp.recv_overhead,
                   8000.0);
  EXPECT_DOUBLE_EQ(p.loggp.wire_bytes_per_ns, 12.0);
  EXPECT_TRUE(validate(p).is_ok());
}

// ---- PodFabric creation and validation ----

TEST(PodFabric, CreateRejectsBadConfig) {
  PodFabricConfig cfg = config_for(0, 4);
  EXPECT_EQ(PodFabric::create(cfg).status().code(),
            ErrorCode::kInvalidArgument);

  cfg = config_for(2, 4);
  cfg.profile.loggp.wire_bytes_per_ns = -1.0;
  EXPECT_EQ(PodFabric::create(cfg).status().code(),
            ErrorCode::kInvalidArgument);

  cfg = config_for(2, 4);
  cfg.pod_hop_bytes_per_ns = 0.0;
  EXPECT_EQ(PodFabric::create(cfg).status().code(),
            ErrorCode::kInvalidArgument);

  EXPECT_TRUE(PodFabric::create(config_for(2, 4)).is_ok());
}

TEST(PodFabric, CrossPodRoundTripAndTiming) {
  auto fabric = check_ok(PodFabric::create(config_for(2, 2)));
  simtime::VClock sender;
  simtime::VClock receiver;
  const auto data = pattern(256, 3);
  // Rank 1 (pod 0, non-router) -> rank 3 (pod 1, non-router).
  ASSERT_TRUE(fabric->send(sender, 1, 3, 7, data).is_ok());
  EXPECT_GT(sender.now(), 0.0);

  std::vector<std::byte> got(256);
  auto info = fabric->recv(receiver, 3, 1, 7, got);
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().source, 1);
  EXPECT_EQ(info.value().tag, 7);
  EXPECT_EQ(info.value().bytes, 256u);
  EXPECT_EQ(got, data);
  // The receiver observed delivery: two pool hops + both routers + the
  // wire are all strictly positive costs.
  const PodFabricConfig cfg = config_for(2, 2);
  EXPECT_GT(receiver.now(), 2 * cfg.pod_hop_latency);
}

TEST(PodFabric, WildcardRecvDeliversEarliestFirst) {
  // Three senders at staggered virtual times; ANY_SOURCE receives must
  // drain in delivery-time order, not enqueue order.
  auto fabric = check_ok(PodFabric::create(config_for(4, 2)));
  // Senders: rank 2 (pod 1), rank 4 (pod 2), rank 6 (pod 3) -> rank 0.
  // Give the later-enqueued sends EARLIER start clocks.
  simtime::VClock late;
  late.advance(5.0e6);
  simtime::VClock mid;
  mid.advance(2.5e6);
  simtime::VClock early;
  const auto a = pattern(16, 1);
  const auto b = pattern(16, 2);
  const auto c = pattern(16, 3);
  ASSERT_TRUE(fabric->send(late, 2, 0, 9, a).is_ok());
  ASSERT_TRUE(fabric->send(mid, 4, 0, 9, b).is_ok());
  ASSERT_TRUE(fabric->send(early, 6, 0, 9, c).is_ok());

  simtime::VClock rc;
  std::vector<std::byte> got(16);
  auto first = fabric->recv(rc, 0, kAnyPodSource, kAnyPodTag, got);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().source, 6);
  EXPECT_EQ(got, c);
  auto second = fabric->recv(rc, 0, kAnyPodSource, kAnyPodTag, got);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().source, 4);
  EXPECT_EQ(got, b);
  auto third = fabric->recv(rc, 0, kAnyPodSource, kAnyPodTag, got);
  ASSERT_TRUE(third.is_ok());
  EXPECT_EQ(third.value().source, 2);
  EXPECT_EQ(got, a);
}

TEST(PodFabric, PerSourceOrderIsFifo) {
  auto fabric = check_ok(PodFabric::create(config_for(2, 2)));
  simtime::VClock sc;
  std::vector<std::vector<std::byte>> sent;
  for (int i = 0; i < 8; ++i) {
    sent.push_back(pattern(32, i));
    ASSERT_TRUE(fabric->send(sc, 2, 0, 5, sent.back()).is_ok());
  }
  simtime::VClock rc;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::byte> got(32);
    auto info = fabric->recv(rc, 0, 2, 5, got);
    ASSERT_TRUE(info.is_ok());
    EXPECT_EQ(got, sent[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(PodFabric, RouterSerializesConcurrentSenders) {
  // Two senders from the same pod at the same instant: the pod's router
  // forwards them one after the other, so the second delivery lands at
  // least router_fwd_ns after the first.
  PodFabricConfig cfg = config_for(2, 4);
  auto fabric = check_ok(PodFabric::create(cfg));
  simtime::VClock s1;
  simtime::VClock s2;
  const auto data = pattern(64, 1);
  ASSERT_TRUE(fabric->send(s1, 1, 4, 3, data).is_ok());
  ASSERT_TRUE(fabric->send(s2, 2, 4, 3, data).is_ok());

  simtime::VClock rc;
  std::vector<std::byte> got(64);
  auto first = fabric->recv(rc, 4, kAnyPodSource, 3, got);
  ASSERT_TRUE(first.is_ok());
  const double t1 = rc.now();
  auto second = fabric->recv(rc, 4, kAnyPodSource, 3, got);
  ASSERT_TRUE(second.is_ok());
  const double t2 = rc.now();
  EXPECT_GE(t2 - t1, cfg.router_fwd_ns * 0.99);
}

TEST(PodFabric, RouterDownFailsFast) {
  auto fabric = check_ok(PodFabric::create(config_for(2, 2)));
  bool down = false;
  fabric->set_router_down_probe([&](int pod) { return down && pod == 0; });
  simtime::VClock clock;
  const auto data = pattern(8, 1);
  ASSERT_TRUE(fabric->send(clock, 0, 2, 1, data).is_ok());
  down = true;
  EXPECT_EQ(fabric->send(clock, 0, 2, 1, data).code(),
            ErrorCode::kPeerFailed);
  // Receives that would route through the dead pod's router fail too.
  std::vector<std::byte> got(8);
  EXPECT_EQ(fabric->recv(clock, 3, 1, 99, got).status().code(),
            ErrorCode::kPeerFailed);
}

}  // namespace
}  // namespace cmpi::fabric
