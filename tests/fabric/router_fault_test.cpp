// Router-rank crash containment: a pod's router dying must fail
// cross-pod traffic fast with kPeerFailed while the blast radius stays
// inside its own pod — sibling pods (separate devices, separate failure
// domains) keep working, pod-local survivors scavenge the corpse, and a
// respawn restores full-cluster collectives in the next epoch.
//
// The binary name contains "fault_test" so the CI fault matrix reruns it
// under every CMPI_FAULT_SEED (the seed perturbs the crash's access
// index).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "coll/hier_collectives.hpp"
#include "fabric/pod_cluster.hpp"
#include "runtime/pool_recovery.hpp"

namespace cmpi::fabric {
namespace {

using namespace std::chrono_literals;

/// Crash access index, perturbed by the CI fault seed so reruns explore
/// different points of the victim's setup/communication sequence.
std::uint64_t crash_access_nth() {
  std::uint64_t nth = 400;
  if (const char* seed = std::getenv("CMPI_FAULT_SEED")) {
    nth += static_cast<std::uint64_t>(std::atoll(seed)) % 197;
  }
  return nth;
}

/// Spin (wall clock) until this pod's injector records the crash.
bool wait_for_crash(runtime::RankCtx& ctx, int global_rank,
                    std::chrono::milliseconds limit = 20000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  const cxlsim::FaultInjector* fi = ctx.device().fault_injector();
  while (std::chrono::steady_clock::now() < deadline) {
    if (fi != nullptr && fi->rank_crashed(global_rank)) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

TEST(RouterFault, CrashIsContainedToOnePodAndRespawnRecovers) {
  PodClusterConfig cfg;
  cfg.topo.pods = 2;
  cfg.topo.ranks_per_pod = 3;
  cfg.topo.router_local = 0;
  cfg.pod.nodes = 1;
  cfg.pod.ranks_per_node = 3;
  cfg.pod.failure_lease = 50ms;
  constexpr int kVictim = 0;  // pod 0's router, global rank 0
  cfg.fault_plans[0].crash_at_access.push_back(
      {.rank = kVictim, .nth = crash_access_nth()});
  auto cluster = check_ok(PodCluster::create(cfg));

  // --- Epoch 1: the router dies mid-communication ---
  cluster->run([&](PodCtx& ctx) {
    std::vector<std::byte> payload(64, std::byte{0x5A});
    std::vector<std::byte> buf(64);
    switch (ctx.grank()) {
      case kVictim: {
        // Keep touching the pool until the scripted access fires.
        for (int i = 0; i < 100000; ++i) {
          (void)ctx.ep().send(1, 1, payload);
        }
        FAIL() << "scripted router crash did not fire";
        break;
      }
      case 1:
      case 2: {
        // Pod-local survivors: detect the death, then scavenge the
        // corpse's pool state (exactly-once across the two of them is
        // PoolRecovery's job; both calls must succeed).
        if (ctx.grank() == 1) {
          std::vector<std::byte> sink(64);
          while (ctx.ep().recv_for(0, 1, sink, 50ms).is_ok()) {
          }
        }
        ASSERT_TRUE(wait_for_crash(ctx.local(), kVictim));
        // Pool traffic to the corpse fails instead of hanging.
        const auto r = ctx.ep().recv_for(0, 99, buf, 2000ms);
        EXPECT_FALSE(r.is_ok());
        runtime::PoolRecovery recovery(ctx.local());
        const auto rep = recovery.scavenge(ctx.topology().local_of(kVictim),
                                           10000ms);
        EXPECT_TRUE(rep.is_ok()) << rep.status().message();
        break;
      }
      default: {
        // Sibling pod: intra-pod traffic keeps flowing after the remote
        // router's death...
        const int peer = ctx.grank() == 3   ? 4
                         : ctx.grank() == 4 ? 3
                                            : -1;
        if (peer >= 0) {
          const int lp = ctx.topology().local_of(peer);
          ASSERT_TRUE(ctx.ep().send(lp, 7, payload).is_ok());
          ASSERT_TRUE(ctx.ep().recv(lp, 7, buf).is_ok());
          EXPECT_EQ(buf, payload);
        }
        // ...and cross-pod traffic into the dead pod surfaces
        // kPeerFailed once the failure record lands (never hangs).
        if (ctx.grank() == 5) {
          const auto deadline =
              std::chrono::steady_clock::now() + 20000ms;
          Status s = Status::ok();
          while (std::chrono::steady_clock::now() < deadline) {
            s = ctx.fabric_send(1, 11, payload);
            if (!s.is_ok()) {
              break;
            }
            std::this_thread::sleep_for(1ms);
          }
          EXPECT_EQ(s.code(), ErrorCode::kPeerFailed);
        }
        break;
      }
    }
  });

  // Blast radius: exactly the router, nothing in the sibling pod.
  EXPECT_EQ(cluster->failed_ranks(), (std::vector<int>{kVictim}));

  // --- Epoch 2: respawn the router; the cluster is whole again ---
  cluster->respawn(kVictim);
  EXPECT_TRUE(cluster->failed_ranks().empty());
  const int n = cfg.topo.nranks();
  cluster->run([&](PodCtx& ctx) {
    coll::HierColl coll(ctx);
    std::vector<double> v(5, static_cast<double>(ctx.grank() + 1));
    coll.allreduce(std::span<double>(v), coll::ReduceOp::kSum);
    for (const auto x : v) {
      EXPECT_DOUBLE_EQ(x, static_cast<double>(n) * (n + 1) / 2.0);
    }
  });
}

}  // namespace
}  // namespace cmpi::fabric
