#include "fabric/net_fabric.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace cmpi::fabric {
namespace {

NetConfig config_for(unsigned nodes, unsigned per_node,
                     NicProfile profile = tcp_ethernet()) {
  NetConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.profile = std::move(profile);
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 31 + i) & 0xFF);
  }
  return out;
}

TEST(Profiles, RawLatencyMatchesTable1) {
  // raw one-way latency = o_s + L + o_r.
  const auto raw = [](const NicProfile& p) {
    return p.loggp.send_overhead + p.loggp.wire_latency +
           p.loggp.recv_overhead;
  };
  EXPECT_DOUBLE_EQ(raw(tcp_ethernet()), 16000.0);
  EXPECT_DOUBLE_EQ(raw(tcp_cx6dx()), 18000.0);
  EXPECT_NEAR(raw(rocev2_cx6dx()), 1600.0, 1.0);
  EXPECT_NEAR(raw(rocev2_cx3()), 2000.0, 1.0);
  EXPECT_NEAR(raw(infiniband_cx6()), 600.0, 1.0);
}

TEST(Profiles, BandwidthMatchesTable1) {
  EXPECT_DOUBLE_EQ(tcp_ethernet().loggp.wire_bytes_per_ns, 0.1178);
  EXPECT_DOUBLE_EQ(tcp_cx6dx().loggp.wire_bytes_per_ns, 11.5);
  EXPECT_DOUBLE_EQ(rocev2_cx6dx().loggp.wire_bytes_per_ns, 10.8);
  EXPECT_DOUBLE_EQ(infiniband_cx6().loggp.wire_bytes_per_ns, 25.0);
}

TEST(NetFabric, SendRecvRoundTrip) {
  NetUniverse universe(config_for(2, 1));
  universe.run([&](NetCtx& ctx) {
    const auto data = pattern(200, 1);
    if (ctx.rank() == 0) {
      ctx.send(1, 7, data);
    } else {
      std::vector<std::byte> got(200);
      EXPECT_EQ(ctx.recv(0, 7, got), 200u);
      EXPECT_EQ(got, data);
    }
  });
}

TEST(NetFabric, TagFiltering) {
  NetUniverse universe(config_for(2, 1));
  universe.run([&](NetCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, pattern(8, 1));
      ctx.send(1, 2, pattern(8, 2));
    } else {
      std::vector<std::byte> got(8);
      ctx.recv(0, 2, got);  // out of order by tag
      EXPECT_EQ(got, pattern(8, 2));
      ctx.recv(0, 1, got);
      EXPECT_EQ(got, pattern(8, 1));
    }
  });
}

TEST(NetFabric, TwoSidedLatencyCalibratedToPaper) {
  // §4.2: small-message two-sided latency ≈ 160 us over Ethernet and
  // ≈ 55 us over TCP/CX-6 Dx.
  const auto measure = [](NicProfile profile) {
    NetUniverse universe(config_for(2, 1, std::move(profile)));
    double result = 0;
    universe.run([&](NetCtx& ctx) {
      constexpr int kIters = 20;
      std::array<std::byte, 8> buffer{};
      ctx.barrier();
      const double start = ctx.clock().now();
      for (int i = 0; i < kIters; ++i) {
        if (ctx.rank() == 0) {
          ctx.send(1, 0, buffer);
          ctx.recv(1, 0, buffer);
        } else {
          ctx.recv(0, 0, buffer);
          ctx.send(0, 0, buffer);
        }
      }
      if (ctx.rank() == 0) {
        result = (ctx.clock().now() - start) / kIters / 2.0;
      }
    });
    return result;
  };
  const double ethernet_us = measure(tcp_ethernet()) / 1000.0;
  EXPECT_GT(ethernet_us, 120.0);
  EXPECT_LT(ethernet_us, 200.0);
  const double cx6_us = measure(tcp_cx6dx()) / 1000.0;
  EXPECT_GT(cx6_us, 40.0);
  EXPECT_LT(cx6_us, 70.0);
}

TEST(NetFabric, WireSaturatesAcrossPairs) {
  // 4 sender/receiver pairs across 2 nodes share one wire: aggregate
  // bandwidth ~ the NIC rate, not 4x.
  NetConfig cfg = config_for(2, 4, tcp_cx6dx());
  NetUniverse universe(cfg);
  constexpr std::size_t kBytes = 4_MiB;
  std::array<double, 8> finish{};
  universe.run([&](NetCtx& ctx) {
    const auto data = pattern(kBytes, 0);
    std::vector<std::byte> buffer(kBytes);
    ctx.barrier();
    if (ctx.node() == 0) {
      const int dst = ctx.rank() + 4;
      for (int i = 0; i < 4; ++i) {
        ctx.send(dst, 0, data);
      }
    } else {
      const int src = ctx.rank() - 4;
      for (int i = 0; i < 4; ++i) {
        ctx.recv(src, 0, buffer);
      }
    }
    finish[static_cast<std::size_t>(ctx.rank())] = ctx.clock().now();
  });
  const double last = *std::max_element(finish.begin(), finish.end());
  const double aggregate =
      16.0 * kBytes / last;  // bytes/ns over all 16 messages
  // Capped by the shared wire (11.5 B/ns) from above; well above a single
  // pair's CPU-injection-limited ~1.5 B/ns from below (4 pairs scale).
  EXPECT_LT(aggregate, 11.5 * 1.05);
  EXPECT_GT(aggregate, 4.0);
}

TEST(NetFabric, FlowControlBlocksFastSender) {
  NicProfile profile = tcp_cx6dx();
  profile.sndbuf = 1_MiB;
  NetUniverse universe(config_for(2, 1, std::move(profile)));
  universe.run([&](NetCtx& ctx) {
    const std::size_t msg = 512_KiB;
    if (ctx.rank() == 0) {
      const auto data = pattern(msg, 1);
      for (int i = 0; i < 8; ++i) {
        ctx.send(1, 0, data);
      }
      // The receiver idles 1 ms per message; a flow-controlled sender
      // must have inherited some of that lag.
      EXPECT_GT(ctx.clock().now(), 2e6);
    } else {
      std::vector<std::byte> buffer(msg);
      for (int i = 0; i < 8; ++i) {
        ctx.clock().advance(1e6);
        ctx.recv(0, 0, buffer);
      }
    }
  });
}

TEST(NetFabric, IntraNodeMessagesSkipTheWire) {
  NetUniverse universe(config_for(1, 2, tcp_ethernet()));
  universe.run([&](NetCtx& ctx) {
    std::array<std::byte, 8> buffer{};
    if (ctx.rank() == 0) {
      ctx.send(1, 0, buffer);
    } else {
      ctx.recv(0, 0, buffer);
      // Far below the 16 us Ethernet raw latency (plus MPI overheads).
      EXPECT_LT(ctx.clock().now(), 2 * tcp_ethernet().mpi_msg_overhead +
                                       10000);
    }
  });
}

TEST(NetFabric, BarrierSynchronizesVirtualTime) {
  NetUniverse universe(config_for(2, 2));
  universe.run([&](NetCtx& ctx) {
    if (ctx.rank() == 3) {
      ctx.clock().advance(9e6);
    }
    ctx.barrier();
    EXPECT_GE(ctx.clock().now(), 9e6);
  });
}

TEST(NetWindow, PutPscwRoundTrip) {
  NetUniverse universe(config_for(2, 1, tcp_cx6dx()));
  universe.run([&](NetCtx& ctx) {
    NetWindow win(ctx, "w1", 4096);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    const auto data = pattern(256, 3);
    if (ctx.rank() == 0) {
      win.start(target);
      win.put(1, 64, data);
      win.complete(target);
    } else {
      win.post(origin);
      win.wait(origin);
      std::vector<std::byte> got(256);
      win.read_local(64, got);
      EXPECT_EQ(got, data);
    }
  });
}

TEST(NetWindow, OneSidedLatencyIsHundredsOfMicroseconds) {
  // §4.2: one-sided-over-TCP latency ~620-630 us for both NICs (progress
  // emulation dominates).
  const auto measure = [](NicProfile profile) {
    NetUniverse universe(config_for(2, 1, std::move(profile)));
    double result = 0;
    universe.run([&](NetCtx& ctx) {
      NetWindow win(ctx, "lat", 4096);
      const std::array<int, 1> origin{0};
      const std::array<int, 1> target{1};
      constexpr int kIters = 10;
      win.fence();
      const double start = ctx.clock().now();
      std::array<std::byte, 8> cell{};
      for (int i = 0; i < kIters; ++i) {
        if (ctx.rank() == 0) {
          win.start(target);
          win.put(1, 0, cell);
          win.complete(target);
        } else {
          win.post(origin);
          win.wait(origin);
        }
      }
      win.fence();
      if (ctx.rank() == 0) {
        result = (ctx.clock().now() - start) / kIters;
      }
    });
    return result;
  };
  const double ethernet_us = measure(tcp_ethernet()) / 1000.0;
  EXPECT_GT(ethernet_us, 400.0);
  EXPECT_LT(ethernet_us, 900.0);
  const double cx6_us = measure(tcp_cx6dx()) / 1000.0;
  EXPECT_GT(cx6_us, 400.0);
  EXPECT_LT(cx6_us, 900.0);
}

TEST(NetWindow, GetFetchesData) {
  NetUniverse universe(config_for(2, 1, tcp_cx6dx()));
  universe.run([&](NetCtx& ctx) {
    NetWindow win(ctx, "getwin", 1024);
    const auto data = pattern(128, 9);
    if (ctx.rank() == 1) {
      win.write_local(0, data);
    }
    win.fence();
    if (ctx.rank() == 0) {
      std::vector<std::byte> got(128);
      const double before = ctx.clock().now();
      win.get(1, 0, got);
      EXPECT_EQ(got, data);
      // A get costs a request round trip plus progress delay.
      EXPECT_GT(ctx.clock().now() - before,
                tcp_cx6dx().rma_sync_overhead);
    }
    win.fence();
  });
}

}  // namespace
}  // namespace cmpi::fabric
