// Minimal recursive-descent JSON parser for the obs tests: enough to
// validate the exporters' output (objects, arrays, strings, numbers,
// bools, null) without pulling a JSON dependency into the build. Throws
// std::runtime_error on malformed input, which the schema tests turn
// into failures — so "the artefact is valid JSON" is itself an assertion.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsonlite {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (!has(key)) {
      throw std::runtime_error("missing key: " + key);
    }
    return object.at(key);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      return object();
    }
    if (c == '[') {
      return array();
    }
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.string = string();
      return v;
    }
    if (consume_literal("true")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Value v;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) {
      return Value{};
    }
    return number();
  }

  Value object() {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("dangling escape");
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
          case 'f':
            break;
          case 'u':
            // The exporters never emit \u escapes; accept and skip.
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
            }
            pos_ += 4;
            out += '?';
            break;
          default:
            fail(std::string("bad escape: \\") + e);
        }
        continue;
      }
      out += c;
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a number");
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("unparseable number: " + text_.substr(start, pos_ - start));
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace jsonlite
