// Flight recorder: dumps carry the reason and recent trace events to
// stderr, the per-process budget caps a failure storm, the optional JSON
// file holds the FIRST failure, and a disabled recorder stays silent.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "json_lite.hpp"
#include "obs/obs.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::obs {
namespace {

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::instance().reset_for_test();
    flight_reset_for_test();
  }
  void TearDown() override {
    configure(Config{});
    flight_reset_for_test();
    TraceRecorder::instance().reset_for_test();
  }
  static Config flight_config() {
    Config config;
    config.flight = true;
    return config;
  }
};

TEST_F(FlightTest, DumpWritesReasonAndTailToStderr) {
  Config config = flight_config();
  config.trace = true;
  configure(config);
  simtime::VClock clock;
  RankScope scope(3, 1, &clock);
  clock.advance(1234);
  trace_event('i', "flight.breadcrumb");

  ::testing::internal::CaptureStderr();
  CMPI_OBS_FLIGHT("test: simulated failure");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("test: simulated failure"), std::string::npos);
  EXPECT_NE(err.find("flight.breadcrumb"), std::string::npos);
  EXPECT_NE(err.find("r3"), std::string::npos);
  EXPECT_EQ(flight_dump_count(), 1);
}

TEST_F(FlightTest, BudgetCapsDumpStorm) {
  configure(flight_config());
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < kMaxFlightDumps + 3; ++i) {
    flight_dump("test: storm");
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(flight_dump_count(), kMaxFlightDumps);
  std::size_t occurrences = 0;
  for (std::size_t at = err.find("test: storm"); at != std::string::npos;
       at = err.find("test: storm", at + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, static_cast<std::size_t>(kMaxFlightDumps));
}

TEST_F(FlightTest, FileHoldsFirstFailure) {
  const std::string path = ::testing::TempDir() + "cmpi_flight_test.json";
  Config config = flight_config();
  config.flight_path = path;
  configure(config);
  ::testing::internal::CaptureStderr();
  flight_dump("first failure");
  flight_dump("second failure");
  (void)::testing::internal::GetCapturedStderr();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const jsonlite::Value doc = jsonlite::parse(buffer.str());
  EXPECT_EQ(doc.at("reason").string, "first failure");
  EXPECT_TRUE(doc.at("metrics").is_object());
}

TEST_F(FlightTest, TenantDumpsLandInSuffixedFilesWithGlobalBudget) {
  // Multi-tenant service mode: each tenant's first failure claims its own
  // "flight.tenantN.json" (tenant 0 keeps the bare path), so concurrent
  // tenant failures never race for one file — while the dump BUDGET stays
  // a single process-wide cap.
  const std::string path = ::testing::TempDir() + "cmpi_flight_tenant.json";
  Config config = flight_config();
  config.flight_path = path;
  configure(config);
  simtime::VClock clock;
  ::testing::internal::CaptureStderr();
  {
    RankScope scope(0, 0, &clock, /*tenant=*/3);
    flight_dump("tenant three failure");
    flight_dump("tenant three again");  // first dump already owns the file
  }
  {
    RankScope scope(0, 0, &clock, /*tenant=*/7);
    flight_dump("tenant seven failure");
  }
  flight_dump("untenanted failure");
  (void)::testing::internal::GetCapturedStderr();

  const auto read_doc = [](const std::string& file) {
    std::ifstream in(file);
    EXPECT_TRUE(in.is_open()) << file;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return jsonlite::parse(buffer.str());
  };
  const std::string base = path.substr(0, path.size() - 5);  // strip .json
  const jsonlite::Value t3 = read_doc(base + ".tenant3.json");
  EXPECT_EQ(t3.at("reason").string, "tenant three failure");
  EXPECT_EQ(t3.at("tenant").number, 3.0);
  const jsonlite::Value t7 = read_doc(base + ".tenant7.json");
  EXPECT_EQ(t7.at("reason").string, "tenant seven failure");
  EXPECT_EQ(t7.at("tenant").number, 7.0);
  const jsonlite::Value t0 = read_doc(path);
  EXPECT_EQ(t0.at("reason").string, "untenanted failure");
  EXPECT_EQ(t0.at("tenant").number, 0.0);
  // Four dumps drew on ONE global budget, not one per tenant.
  EXPECT_EQ(flight_dump_count(), 4);
  static_assert(kMaxFlightDumps == 4,
                "budget expectation above tracks kMaxFlightDumps");
}

TEST_F(FlightTest, DisabledRecorderStaysSilent) {
  configure(Config{});  // flight off
  ::testing::internal::CaptureStderr();
  CMPI_OBS_FLIGHT("test: should not appear");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_EQ(flight_dump_count(), 0);
}

}  // namespace
}  // namespace cmpi::obs
