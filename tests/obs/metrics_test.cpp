// Metrics registry: shard summation, gauge/histogram semantics, snapshot
// providers (live and retired), JSON export, and the acceptance check
// that a metrics snapshot agrees with CacheSim::Stats.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "cxlsim/cache_sim.hpp"
#include "cxlsim/dax_device.hpp"
#include "json_lite.hpp"
#include "obs/obs.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Config config;
    config.metrics = true;
    configure(config);
    MetricsRegistry::instance().reset_for_test();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset_for_test();
    configure(Config{});
  }
};

TEST_F(MetricsTest, CounterSumsAcrossRankShards) {
  Counter& counter = MetricsRegistry::instance().counter("test.shards");
  std::vector<std::thread> threads;
  for (int r = 0; r < 8; ++r) {
    threads.emplace_back([&counter, r] {
      RankScope scope(r, r / 2, nullptr);
      for (int i = 0; i < 1000; ++i) {
        counter.add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.total(), 8000u);
}

TEST_F(MetricsTest, NonRankThreadUsesShardZeroWithoutLosingCounts) {
  Counter& counter = MetricsRegistry::instance().counter("test.shard0");
  counter.add(3);  // no RankScope installed: shard 0
  {
    RankScope scope(31, 0, nullptr);  // (31 + 1) % 32 == 0: same shard
    counter.add(4);
  }
  EXPECT_EQ(counter.total(), 7u);
}

TEST_F(MetricsTest, GaugeKeepsHighWaterMark) {
  Gauge& gauge = MetricsRegistry::instance().gauge("test.hwm");
  gauge.record(5);
  gauge.record(2);
  gauge.record(9);
  gauge.record(7);
  EXPECT_EQ(gauge.max(), 9u);
}

TEST_F(MetricsTest, HistogramBucketsByLog2AndClampsNegatives) {
  Histogram& hist = MetricsRegistry::instance().histogram("test.hist");
  hist.record(0);      // bucket 0
  hist.record(1);      // bucket 1: [1, 2)
  hist.record(1024);   // bucket 11: [1024, 2048)
  hist.record(1500);   // bucket 11
  hist.record(-12);    // clamps to 0: bucket 0
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0 + 1 + 1024 + 1500 + 0);
  const auto buckets = hist.buckets();
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[11], 2u);
}

TEST_F(MetricsTest, ProviderSamplesAppearInSnapshot) {
  ProviderRegistration registration([] {
    return std::vector<Sample>{{"test.provided", 42}};
  });
  EXPECT_EQ(MetricsRegistry::instance().snapshot().counter("test.provided"),
            42u);
}

TEST_F(MetricsTest, RetiredProviderTotalsStayCumulative) {
  {
    ProviderRegistration registration([] {
      return std::vector<Sample>{{"test.retired", 10}};
    });
    EXPECT_EQ(MetricsRegistry::instance().snapshot().counter("test.retired"),
              10u);
  }
  // Owner died: final samples folded into the retired accumulator.
  EXPECT_EQ(MetricsRegistry::instance().snapshot().counter("test.retired"),
            10u);
  // A second short-lived owner adds on top, not instead.
  {
    ProviderRegistration registration([] {
      return std::vector<Sample>{{"test.retired", 5}};
    });
    EXPECT_EQ(MetricsRegistry::instance().snapshot().counter("test.retired"),
              15u);
  }
  EXPECT_EQ(MetricsRegistry::instance().snapshot().counter("test.retired"),
            15u);
}

TEST_F(MetricsTest, NativeAndProviderCountsSumUnderOneName) {
  MetricsRegistry::instance().counter("test.merged").add(7);
  ProviderRegistration registration([] {
    return std::vector<Sample>{{"test.merged", 3}};
  });
  EXPECT_EQ(MetricsRegistry::instance().snapshot().counter("test.merged"),
            10u);
}

TEST_F(MetricsTest, WriteJsonIsValidAndCarriesValues) {
  MetricsRegistry::instance().counter("test.json_counter").add(11);
  MetricsRegistry::instance().gauge("test.json_gauge").record(6);
  MetricsRegistry::instance().histogram("test.json_hist").record(100);
  std::ostringstream out;
  MetricsRegistry::instance().write_json(out);
  const jsonlite::Value doc = jsonlite::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("test.json_counter").number, 11);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("test.json_gauge").number, 6);
  const jsonlite::Value& hist = doc.at("histograms").at("test.json_hist");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 1);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 100);
  ASSERT_TRUE(hist.at("buckets").is_array());
  EXPECT_FALSE(hist.at("buckets").array.empty());
}

TEST_F(MetricsTest, MacrosRecordNothingWhileDisabled) {
  configure(Config{});  // everything off
  CMPI_OBS_COUNT("test.disabled", 1);
  CMPI_OBS_GAUGE_MAX("test.disabled_gauge", 9);
  CMPI_OBS_HIST("test.disabled_hist", 5);
  Config config;
  config.metrics = true;
  configure(config);
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.count("test.disabled"), 0u);
  EXPECT_EQ(snap.gauges.count("test.disabled_gauge"), 0u);
  EXPECT_EQ(snap.histograms.count("test.disabled_hist"), 0u);
}

// Acceptance: the registry's cache.* family agrees with the CacheSim's
// own Stats. Deltas, not absolutes — other caches (bootstrap, scratch)
// may be registered in the same process.
TEST_F(MetricsTest, SnapshotAgreesWithCacheSimStats) {
  auto device = check_ok(cxlsim::DaxDevice::create(4_MiB, 4, {}));
  cxlsim::CacheSim cache(*device, {.sets = 16, .ways = 2});

  const MetricsSnapshot before = MetricsRegistry::instance().snapshot();
  std::vector<std::byte> buf(4096, std::byte{0x5A});
  cache.write(0, buf);
  std::vector<std::byte> out(4096);
  cache.read(0, out);          // hits: lines were just written
  cache.read(64_KiB, out);     // misses: cold lines
  const MetricsSnapshot after = MetricsRegistry::instance().snapshot();

  const cxlsim::CacheSim::Stats stats = cache.stats();
  EXPECT_EQ(after.counter("cache.hits") - before.counter("cache.hits"),
            stats.hits);
  EXPECT_EQ(after.counter("cache.misses") - before.counter("cache.misses"),
            stats.misses);
  EXPECT_EQ(
      after.counter("cache.evictions") - before.counter("cache.evictions"),
      stats.evictions);
  EXPECT_EQ(
      after.counter("cache.writebacks") - before.counter("cache.writebacks"),
      stats.writebacks);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST_F(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
  EXPECT_EQ(h.quantile(0.0), 0.0);
}

TEST_F(MetricsTest, QuantileSingleBucketReportsItsUpperBound) {
  Histogram h;
  // All samples in [64, 128): bucket 7, upper bound 128. Every quantile
  // of a one-bucket distribution is that bucket.
  for (int i = 0; i < 10; ++i) {
    h.record(100);
  }
  EXPECT_EQ(h.quantile(0.0), 128.0);
  EXPECT_EQ(h.quantile(0.5), 128.0);
  EXPECT_EQ(h.quantile(0.99), 128.0);
  EXPECT_EQ(h.quantile(1.0), 128.0);
}

TEST_F(MetricsTest, QuantileSeparatesP50FromP99) {
  Histogram h;
  // 98 fast samples in [64, 128), 2 slow ones in [1024, 2048): the median
  // sits in the fast bucket, the p99 in the slow tail.
  for (int i = 0; i < 98; ++i) {
    h.record(100);
  }
  h.record(1500);
  h.record(1500);
  EXPECT_EQ(h.quantile(0.5), 128.0);
  EXPECT_EQ(h.quantile(0.99), 2048.0);
}

TEST_F(MetricsTest, QuantileClampsArgumentAndHandlesZeroSample) {
  Histogram h;
  h.record(0);  // bucket 0: [0, 1)
  EXPECT_EQ(h.quantile(-1.0), 1.0);  // clamped to q=0
  EXPECT_EQ(h.quantile(2.0), 1.0);   // clamped to q=1
}

TEST_F(MetricsTest, SnapshotQuantileMatchesLiveHistogram) {
  Histogram& h = MetricsRegistry::instance().histogram("test.quantile");
  for (int i = 0; i < 9; ++i) {
    h.record(100);
  }
  h.record(5000);
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const auto it = snap.histograms.find("test.quantile");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.quantile(0.5), h.quantile(0.5));
  EXPECT_EQ(it->second.quantile(0.99), h.quantile(0.99));
  EXPECT_EQ(it->second.quantile(0.99), 8192.0);  // 5000 in [4096, 8192)
}

TEST_F(MetricsTest, ResetForTestZeroesButKeepsCachedReferences) {
  Counter& counter = MetricsRegistry::instance().counter("test.reset");
  counter.add(5);
  MetricsRegistry::instance().reset_for_test();
  EXPECT_EQ(counter.total(), 0u);
  counter.add(2);  // the cached reference is still live
  EXPECT_EQ(MetricsRegistry::instance().snapshot().counter("test.reset"), 2u);
}

}  // namespace
}  // namespace cmpi::obs
