// Trace exporter schema: a real 2-process OSU-style workload (eager small
// messages + rendezvous large messages) is recorded and exported, then
// the Chrome trace_event JSON is validated — parseable, monotone per-tid
// timestamps, strictly matched B/E pairs, and pid/tid attribution that
// maps events to the node/rank that produced them. Plus the bounded-ring
// repairs: stray 'E' events whose 'B' was overwritten are dropped and
// still-open spans get a synthetic 'E'.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "json_lite.hpp"
#include "obs/obs.hpp"
#include "p2p/endpoint.hpp"

namespace cmpi::obs {
namespace {

class TraceSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::instance().reset_for_test();
    Config config;
    config.trace = true;
    config.metrics = true;
    config.flight = false;
    configure(config);
  }
  void TearDown() override {
    configure(Config{});
    TraceRecorder::instance().reset_for_test();
  }
};

struct ParsedEvent {
  std::string phase;
  std::string name;
  double ts = 0;
  int pid = -1;
  int tid = -1;
};

std::vector<ParsedEvent> non_meta_events(const jsonlite::Value& doc) {
  std::vector<ParsedEvent> out;
  for (const jsonlite::Value& ev : doc.at("traceEvents").array) {
    const std::string phase = ev.at("ph").string;
    if (phase == "M") {
      continue;
    }
    ParsedEvent parsed;
    parsed.phase = phase;
    parsed.name = ev.at("name").string;
    parsed.ts = ev.at("ts").number;
    parsed.pid = static_cast<int>(ev.at("pid").number);
    parsed.tid = static_cast<int>(ev.at("tid").number);
    out.push_back(parsed);
  }
  return out;
}

TEST_F(TraceSchemaTest, TwoProcWorkloadExportsValidChromeTrace) {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = 4_KiB;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    std::vector<std::byte> small(512, std::byte{0x11});      // eager
    std::vector<std::byte> large(64_KiB, std::byte{0x22});   // rendezvous
    if (ctx.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        check_ok(ep.send(1, i, small));
      }
      check_ok(ep.send(1, 100, large));
      std::vector<std::byte> ack(1);
      check_ok(ep.recv(1, 200, ack));
    } else {
      std::vector<std::byte> buf(64_KiB);
      for (int i = 0; i < 4; ++i) {
        check_ok(ep.recv(0, i, {buf.data(), 512}));
      }
      check_ok(ep.recv(0, 100, buf));
      check_ok(ep.send(0, 200, {buf.data(), 1}));
    }
  });

  std::ostringstream out;
  TraceRecorder::instance().write_chrome_json(out);
  const jsonlite::Value doc = jsonlite::parse(out.str());

  // Top-level shape.
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ns");

  // Metadata names both processes (nodes) and threads (ranks).
  std::set<std::pair<int, int>> meta_pid_tid;
  for (const jsonlite::Value& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").string == "M" &&
        ev.at("name").string == "thread_name") {
      meta_pid_tid.emplace(static_cast<int>(ev.at("pid").number),
                           static_cast<int>(ev.at("tid").number));
    }
  }
  const std::set<std::pair<int, int>> expected{{0, 0}, {1, 1}};
  EXPECT_EQ(meta_pid_tid, expected);

  const std::vector<ParsedEvent> events = non_meta_events(doc);
  ASSERT_FALSE(events.empty());

  // Attribution: with 1 rank per node, every event's pid (node) equals
  // its tid (rank), and both ranks contributed.
  std::set<int> tids;
  for (const ParsedEvent& ev : events) {
    EXPECT_EQ(ev.pid, ev.tid);
    tids.insert(ev.tid);
  }
  EXPECT_EQ(tids, (std::set<int>{0, 1}));

  // Monotone non-decreasing ts per tid; matched B/E pairs per tid.
  std::map<int, double> last_ts;
  std::map<int, std::vector<std::string>> open;
  for (const ParsedEvent& ev : events) {
    const auto it = last_ts.find(ev.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ev.ts, it->second)
          << "ts regressed on tid " << ev.tid << " at " << ev.name;
    }
    last_ts[ev.tid] = ev.ts;
    if (ev.phase == "B") {
      open[ev.tid].push_back(ev.name);
    } else if (ev.phase == "E") {
      ASSERT_FALSE(open[ev.tid].empty())
          << "unmatched E on tid " << ev.tid;
      open[ev.tid].pop_back();
    } else {
      EXPECT_EQ(ev.phase, "i") << "unexpected phase for " << ev.name;
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }

  // The workload mixed both protocols: rank 0's timeline has eager and
  // rendezvous send spans, rank 1 saw the FIN handshake.
  std::set<std::string> rank0_spans;
  std::set<std::string> rank1_names;
  for (const ParsedEvent& ev : events) {
    if (ev.tid == 0 && ev.phase == "B") {
      rank0_spans.insert(ev.name);
    }
    if (ev.tid == 1) {
      rank1_names.insert(ev.name);
    }
  }
  EXPECT_TRUE(rank0_spans.count("p2p.isend_eager") == 1)
      << "no eager send span on rank 0";
  EXPECT_TRUE(rank0_spans.count("p2p.isend_rdvz") == 1)
      << "no rendezvous send span on rank 0";
  EXPECT_TRUE(rank1_names.count("p2p.recv") == 1)
      << "no recv span on rank 1";
}

TEST_F(TraceSchemaTest, OverflowedRingDropsStrayEndsAndClosesOpenSpans) {
  TraceRecorder::instance().reset_for_test();
  TraceRecorder::instance().set_capacity(4);
  TraceRing& ring = TraceRecorder::instance().ring(0, 0);
  ring.append(TraceEvent{"span.lost", nullptr, 10, 0, 'B'});
  for (int i = 0; i < 6; ++i) {
    // Overwrites the 'B' above: its 'E' below becomes a stray.
    ring.append(TraceEvent{"noise", nullptr, 20.0 + i, 0, 'i'});
  }
  ring.append(TraceEvent{"span.lost", nullptr, 90, 0, 'E'});
  ring.append(TraceEvent{"span.open", nullptr, 95, 0, 'B'});
  EXPECT_GT(ring.dropped(), 0u);

  std::ostringstream out;
  TraceRecorder::instance().write_chrome_json(out);
  const jsonlite::Value doc = jsonlite::parse(out.str());
  int begins = 0;
  int ends = 0;
  for (const jsonlite::Value& ev : doc.at("traceEvents").array) {
    const std::string phase = ev.at("ph").string;
    begins += phase == "B" ? 1 : 0;
    ends += phase == "E" ? 1 : 0;
  }
  // The stray E was dropped; the open B got a synthetic E.
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST_F(TraceSchemaTest, SpanArgsRideOnBeginEvents) {
  TraceRecorder::instance().reset_for_test();
  simtime::VClock clock;
  RankScope scope(0, 0, &clock);
  {
    SpanGuard span("test.args", "bytes", 4096);
    clock.advance(50);
  }
  std::ostringstream out;
  TraceRecorder::instance().write_chrome_json(out);
  const jsonlite::Value doc = jsonlite::parse(out.str());
  bool found = false;
  for (const jsonlite::Value& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").string == "B" && ev.at("name").string == "test.args") {
      found = true;
      EXPECT_DOUBLE_EQ(ev.at("args").at("bytes").number, 4096);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cmpi::obs
