// Message-rate engine regressions (doorbell-aggregated progress):
//
//  * Fairness — the rotating scan start must keep two saturating senders
//    advancing together; a fixed scan origin would systematically drain
//    one peer first and skew their completion clocks.
//  * Wildcard matching — the sharded posted/unexpected queues hash on
//    (source, tag), but MPI semantics are defined over global orders:
//    wildcard receives must take unexpected messages in ARRIVAL order and
//    posted receives must match in POSTED order, across shards.
//  * Doorbell accounting — edges ring, non-edges are suppressed, and the
//    legacy-scan ablation generates no doorbell traffic at all.
#include "p2p/endpoint.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

namespace cmpi::p2p {
namespace {

runtime::UniverseConfig engine_config(unsigned nodes,
                                      std::size_t cell_payload = 256,
                                      std::size_t ring_cells = 8) {
  runtime::UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = cell_payload;
  cfg.ring_cells = ring_cells;
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 31 + i * 11) & 0xFF);
  }
  return out;
}

TEST(ProgressFairness, SaturatingSendersCompleteWithBoundedSkew) {
  // Two senders saturate their rings toward one receiver. The rings are
  // deeper than one reap batch (32 cells vs kReapBatchCells = 16), so a
  // visit never drains a ring dry and the scan order decides who gets
  // served first each pass. With the rotating start both senders are
  // paced identically; their virtual completion clocks must land close.
  constexpr int kMessages = 96;
  constexpr std::size_t kSize = 64;
  runtime::Universe universe(engine_config(3, 256, 32));
  std::array<double, 2> done_ns{0.0, 0.0};
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    ctx.barrier();
    if (ctx.rank() < 2) {
      const int me = ctx.rank();
      for (int k = 0; k < kMessages; ++k) {
        check_ok(ep.send(2, k, pattern(kSize, me * 1000 + k)));
      }
      done_ns[static_cast<std::size_t>(me)] = ctx.clock().now();
    } else {
      std::vector<std::vector<std::byte>> buffers(
          2 * static_cast<std::size_t>(kMessages),
          std::vector<std::byte>(kSize));
      std::vector<RequestPtr> reqs;
      reqs.reserve(buffers.size());
      for (int k = 0; k < kMessages; ++k) {
        for (int s = 0; s < 2; ++s) {
          reqs.push_back(ep.irecv(
              s, k, buffers[static_cast<std::size_t>(2 * k + s)]));
        }
      }
      check_ok(ep.wait_all(reqs));
      for (int k = 0; k < kMessages; k += 17) {
        EXPECT_EQ(buffers[static_cast<std::size_t>(2 * k)],
                  pattern(kSize, k));
        EXPECT_EQ(buffers[static_cast<std::size_t>(2 * k + 1)],
                  pattern(kSize, 1000 + k));
      }
    }
  });
  ASSERT_GT(done_ns[0], 0.0);
  ASSERT_GT(done_ns[1], 0.0);
  const double skew = std::abs(done_ns[0] - done_ns[1]);
  const double slowest = std::max(done_ns[0], done_ns[1]);
  EXPECT_LE(skew, 0.25 * slowest)
      << "sender completion clocks " << done_ns[0] << " ns vs " << done_ns[1]
      << " ns — the progress loop is starving one saturating sender";
}

TEST(WildcardMatch, UnexpectedWildcardTakesArrivalOrderAcrossShards) {
  // Tags 5/3/9/7 hash to different buckets of the sharded unexpected
  // queue, but a wildcard receive must see the messages in the order they
  // arrived, not in bucket-iteration order. The go-message (tag 100) is
  // received first so all five predecessors are parked as unexpected
  // before any wildcard is posted.
  const std::array<int, 5> tags = {5, 3, 9, 3, 7};
  runtime::Universe universe(engine_config(2));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      for (std::size_t i = 0; i < tags.size(); ++i) {
        check_ok(ep.send(1, tags[i], pattern(48, static_cast<int>(i))));
      }
      check_ok(ep.send(1, 100, pattern(8, 99)));
    } else {
      std::vector<std::byte> go(8);
      check_ok(ep.recv(0, 100, go));
      for (std::size_t i = 0; i < tags.size(); ++i) {
        std::vector<std::byte> buf(48);
        const RecvInfo info = check_ok(ep.recv(kAnySource, kAnyTag, buf));
        EXPECT_EQ(info.source, 0);
        EXPECT_EQ(info.tag, tags[i]) << "wildcard receive " << i
                                     << " broke arrival order";
        EXPECT_EQ(buf, pattern(48, static_cast<int>(i)));
      }
    }
  });
}

TEST(WildcardMatch, EarliestPostedWinsAcrossShards) {
  // A specific (src, tag) receive posted before a wildcard must take the
  // first matching arrival even though the two live in different shards
  // of the posted queue; the wildcard gets the second.
  runtime::Universe universe(engine_config(2));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto m1 = pattern(32, 1);
    const auto m2 = pattern(32, 2);
    if (ctx.rank() == 0) {
      std::vector<std::byte> go(1);
      check_ok(ep.recv(1, 50, go));
      check_ok(ep.send(1, 3, m1));
      check_ok(ep.send(1, 3, m2));
    } else {
      std::vector<std::byte> a(32);
      std::vector<std::byte> b(32);
      const RequestPtr specific = ep.irecv(0, 3, a);
      const RequestPtr wildcard = ep.irecv(kAnySource, kAnyTag, b);
      std::byte go{0x1};
      check_ok(ep.send(0, 50, {&go, 1}));
      check_ok(ep.wait(specific));
      check_ok(ep.wait(wildcard));
      EXPECT_EQ(a, m1) << "earlier-posted specific receive lost the race";
      EXPECT_EQ(b, m2);
    }
  });
}

TEST(WildcardMatch, InterleavedSpecificAndWildcardPreserveMpiOrder) {
  // Posted (in order): specific tag 2, wildcard, specific tag 1,
  // wildcard. Arrivals (in order): tag 1, tag 2, tag 1, tag 2. MPI
  // matching: each arrival goes to the EARLIEST-posted receive it
  // matches, so the assignment is arrival0→wildcard#1, arrival1→tag-2,
  // arrival2→tag-1, arrival3→wildcard#2 — an interleaving that visits
  // three different shards of the posted queue.
  runtime::Universe universe(engine_config(2));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto m0 = pattern(24, 10);
    const auto m1 = pattern(24, 11);
    const auto m2 = pattern(24, 12);
    const auto m3 = pattern(24, 13);
    if (ctx.rank() == 0) {
      std::vector<std::byte> go(1);
      check_ok(ep.recv(1, 50, go));
      check_ok(ep.send(1, 1, m0));
      check_ok(ep.send(1, 2, m1));
      check_ok(ep.send(1, 1, m2));
      check_ok(ep.send(1, 2, m3));
    } else {
      std::vector<std::byte> a(24), b(24), c(24), d(24);
      const RequestPtr spec2 = ep.irecv(0, 2, a);
      const RequestPtr wild1 = ep.irecv(kAnySource, kAnyTag, b);
      const RequestPtr spec1 = ep.irecv(0, 1, c);
      const RequestPtr wild2 = ep.irecv(kAnySource, kAnyTag, d);
      std::byte go{0x1};
      check_ok(ep.send(0, 50, {&go, 1}));
      const std::array<RequestPtr, 4> reqs = {spec2, wild1, spec1, wild2};
      check_ok(ep.wait_all(reqs));
      EXPECT_EQ(a, m1);
      EXPECT_EQ(b, m0);
      EXPECT_EQ(c, m2);
      EXPECT_EQ(d, m3);
    }
  });
}

TEST(DoorbellStats, EdgesRingAndBurstsSuppress) {
  // A 16-message burst is published in batches; the empty→non-empty edge
  // rings the receiver's doorbell, publishes into a still-backed-up ring
  // are suppressed. Either way every publish is accounted exactly once.
  runtime::Universe universe(engine_config(2));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    constexpr int kBurst = 16;
    if (ctx.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(
          kBurst, std::vector<std::byte>(64));
      std::vector<RequestPtr> reqs;
      reqs.reserve(kBurst);
      for (int i = 0; i < kBurst; ++i) {
        for (std::size_t b = 0; b < 64; ++b) {
          bufs[static_cast<std::size_t>(i)][b] =
              static_cast<std::byte>(i + 1);
        }
        reqs.push_back(ep.isend(1, 7, bufs[static_cast<std::size_t>(i)]));
      }
      check_ok(ep.wait_all(reqs));
      const CommStats s = ep.stats();
      EXPECT_GE(s.doorbell_rings, 1u)
          << "the first publish of a burst must ring the doorbell";
      EXPECT_GE(s.doorbell_rings + s.doorbell_suppressed, 1u);
    } else {
      std::vector<std::byte> buf(64);
      for (int i = 0; i < kBurst; ++i) {
        check_ok(ep.recv(0, 7, buf));
        EXPECT_EQ(buf[0], static_cast<std::byte>(i + 1));
      }
    }
  });
}

TEST(PublishBatching, BurstOfNonblockingSendsCoalescesPublishes) {
  // Producer-side publish batching: a burst of isends stages cells and
  // parks the tail publish, so the burst reaches the receiver in a few
  // publish edges instead of one per cell. 24 one-cell messages against
  // kPublishBatchCells = 16 and a 32-deep ring should land in ~2 batches
  // (one threshold flush + one parked tail flushed by wait_all); anything
  // averaging > 1 cell per publish proves the batching engaged.
  constexpr int kBurst = 24;
  runtime::Universe universe(engine_config(2, 256, 32));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    ctx.barrier();
    if (ctx.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(
          kBurst, std::vector<std::byte>(64));
      std::vector<RequestPtr> reqs;
      reqs.reserve(kBurst);
      for (int i = 0; i < kBurst; ++i) {
        bufs[static_cast<std::size_t>(i)] = pattern(64, i);
        reqs.push_back(ep.isend(1, 5, bufs[static_cast<std::size_t>(i)]));
      }
      check_ok(ep.wait_all(reqs));
      const CommStats s = ep.stats();
      EXPECT_EQ(s.cells_published, static_cast<std::uint64_t>(kBurst));
      ASSERT_GT(s.publish_batches, 0u);
      EXPECT_LT(s.publish_batches, static_cast<std::uint64_t>(kBurst))
          << "every cell published alone: batching never engaged";
      const double cells_per_publish =
          static_cast<double>(s.cells_published) /
          static_cast<double>(s.publish_batches);
      EXPECT_GT(cells_per_publish, 1.0);
    } else {
      std::vector<std::byte> buf(64);
      for (int i = 0; i < kBurst; ++i) {
        check_ok(ep.recv(0, 5, buf));
        EXPECT_EQ(buf, pattern(64, i));
      }
    }
  });
}

TEST(PublishBatching, LegacyScanKeepsPerCellPublishes) {
  // The ablation baseline: the legacy engine publishes every cell
  // immediately, so cells-per-publish stays exactly 1.
  constexpr int kBurst = 8;
  runtime::UniverseConfig cfg = engine_config(2, 256, 32);
  cfg.progress_engine = runtime::ProgressEngine::kLegacyScan;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    ctx.barrier();
    if (ctx.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(
          kBurst, std::vector<std::byte>(64));
      std::vector<RequestPtr> reqs;
      reqs.reserve(kBurst);
      for (int i = 0; i < kBurst; ++i) {
        bufs[static_cast<std::size_t>(i)] = pattern(64, 100 + i);
        reqs.push_back(ep.isend(1, 6, bufs[static_cast<std::size_t>(i)]));
      }
      check_ok(ep.wait_all(reqs));
      const CommStats s = ep.stats();
      EXPECT_EQ(s.cells_published, static_cast<std::uint64_t>(kBurst));
      EXPECT_EQ(s.publish_batches, static_cast<std::uint64_t>(kBurst));
    } else {
      std::vector<std::byte> buf(64);
      for (int i = 0; i < kBurst; ++i) {
        check_ok(ep.recv(0, 6, buf));
        EXPECT_EQ(buf, pattern(64, 100 + i));
      }
    }
  });
}

TEST(DoorbellStats, LegacyScanGeneratesNoDoorbellTraffic) {
  // The before/after ablation knob: the legacy engine models the
  // pre-doorbell linear scan and must neither ring nor suppress.
  runtime::UniverseConfig cfg = engine_config(2);
  cfg.progress_engine = runtime::ProgressEngine::kLegacyScan;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 3, pattern(128, 5)));
      const CommStats s = ep.stats();
      EXPECT_EQ(s.doorbell_rings, 0u);
      EXPECT_EQ(s.doorbell_suppressed, 0u);
    } else {
      std::vector<std::byte> buf(128);
      check_ok(ep.recv(0, 3, buf));
      EXPECT_EQ(buf, pattern(128, 5));
    }
  });
}

}  // namespace
}  // namespace cmpi::p2p
