// Large-message one-copy rendezvous protocol: adaptive path selection,
// deferred (unexpected) pulls, slot recycling bounds, eager fallback when
// no slab is available, and the bounded retransmit-staging budget that
// rides along with the fused eager staging pass.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "p2p/endpoint.hpp"

namespace cmpi::p2p {
namespace {

runtime::UniverseConfig rdvz_config(std::size_t cell_payload = 4_KiB,
                                    std::size_t ring_cells = 8) {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = cell_payload;
  cfg.ring_cells = ring_cells;
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 13 + i * 7) & 0xFF);
  }
  return out;
}

TEST(Rendezvous, ThresholdRoutesLargeNotSmall) {
  runtime::Universe universe(rdvz_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    EXPECT_EQ(ep.rendezvous_threshold(), 4_KiB);  // default: one cell
    const auto small = pattern(4_KiB, 1);    // == threshold: eager
    const auto large = pattern(4_KiB + 1, 2);  // > threshold: rendezvous
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 0, small));
      check_ok(ep.send(1, 1, large));
      EXPECT_EQ(ep.stats().rendezvous_sent, 1u);
      EXPECT_EQ(ep.stats().rendezvous_fallbacks, 0u);
    } else {
      std::vector<std::byte> buf_s(small.size());
      std::vector<std::byte> buf_l(large.size());
      check_ok(ep.recv(0, 0, buf_s));
      check_ok(ep.recv(0, 1, buf_l));
      EXPECT_EQ(buf_s, small);
      EXPECT_EQ(buf_l, large);
      EXPECT_EQ(ep.stats().rendezvous_sent, 0u);
    }
  });
}

TEST(Rendezvous, ConfiguredThresholdOverridesDefault) {
  runtime::UniverseConfig cfg = rdvz_config();
  cfg.rendezvous_threshold = 1_MiB;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    EXPECT_EQ(ep.rendezvous_threshold(), 1_MiB);
    const auto data = pattern(64_KiB, 3);  // under the raised threshold
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 0, data));
      EXPECT_EQ(ep.stats().rendezvous_sent, 0u);
    } else {
      std::vector<std::byte> buf(data.size());
      check_ok(ep.recv(0, 0, buf));
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(Rendezvous, MultiSegmentMessageDeliversIntact) {
  // 2.5 MiB spans twenty 128 KiB segments — exercises the pipelined
  // announce-while-writing loop and CRC chaining across sub-chunks.
  runtime::Universe universe(rdvz_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(2 * 1024 * 1024 + 512 * 1024 + 37, 4);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 9, data));
      EXPECT_EQ(ep.stats().rendezvous_sent, 1u);
    } else {
      std::vector<std::byte> buf(data.size());
      const RecvInfo info = check_ok(ep.recv(0, 9, buf));
      EXPECT_EQ(info.bytes, data.size());
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(Rendezvous, UnexpectedArrivalPullsOnMatch) {
  // The receiver posts nothing until after the message has fully arrived:
  // the payload must wait parked in the sender's slab (no host-side copy
  // of the bytes) and be pulled pool→user at match time.
  runtime::Universe universe(rdvz_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(700 * 1000, 5);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 2, data));
      // The receiver FINs only when its late recv matches; wait for the
      // slot to come home so teardown sees a clean endpoint.
      check_ok(ep.recv(1, 3, {}).status());
      EXPECT_EQ(ep.debug_queue_sizes().rendezvous_inflight, 0u);
    } else {
      // Let the whole message land unexpected before posting the receive.
      while (!ep.iprobe(0, 2).has_value()) {
        ctx.doorbell().wait_once();
      }
      std::vector<std::byte> buf(data.size());
      check_ok(ep.recv(0, 2, buf));
      EXPECT_EQ(buf, data);
      check_ok(ep.send(0, 3, {}));
    }
  });
}

TEST(Rendezvous, TruncationReportsAndKeepsPrefix) {
  runtime::Universe universe(rdvz_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(300 * 1024, 6);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 0, data));
    } else {
      std::vector<std::byte> buf(100 * 1024);
      const auto r = ep.recv(0, 0, buf);
      ASSERT_FALSE(r.is_ok());
      EXPECT_EQ(r.status().code(), ErrorCode::kTruncated);
      EXPECT_TRUE(std::equal(buf.begin(), buf.end(), data.begin()));
    }
  });
}

TEST(Rendezvous, SynchronousSendCompletesOnMatch) {
  runtime::Universe universe(rdvz_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(512 * 1024, 7);
    if (ctx.rank() == 0) {
      check_ok(ep.ssend(1, 4, data));
      EXPECT_EQ(ep.stats().rendezvous_sent, 1u);
    } else {
      std::vector<std::byte> buf(data.size());
      check_ok(ep.recv(0, 4, buf));
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(Rendezvous, SlotRecyclingStaysBounded) {
  // A long stream of large messages must not accumulate arena slots: FINs
  // recycle slabs through the bounded per-destination cache, and inflight
  // never exceeds its cap.
  runtime::Universe universe(rdvz_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(96 * 1024, 8);
    constexpr int kRounds = 40;
    if (ctx.rank() == 0) {
      for (int i = 0; i < kRounds; ++i) {
        check_ok(ep.send(1, i, data));
        const auto sizes = ep.debug_queue_sizes();
        EXPECT_LE(sizes.rendezvous_inflight, Endpoint::kMaxRendezvousInflight);
        EXPECT_LE(sizes.rendezvous_cached,
                  2 * Endpoint::kRendezvousSlotCacheDepth);
      }
      EXPECT_EQ(ep.stats().rendezvous_sent,
                static_cast<std::uint64_t>(kRounds));
      check_ok(ep.recv(1, 999, {}).status());
      EXPECT_EQ(ep.debug_queue_sizes().rendezvous_inflight, 0u);
    } else {
      std::vector<std::byte> buf(data.size());
      for (int i = 0; i < kRounds; ++i) {
        check_ok(ep.recv(0, i, buf));
        EXPECT_EQ(buf, data);
      }
      check_ok(ep.send(0, 999, {}));
    }
  });
}

TEST(Rendezvous, FallsBackToEagerWhenArenaIsFull) {
  runtime::UniverseConfig cfg = rdvz_config();
  cfg.pool_size = 32_MiB;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(256 * 1024, 9);
    if (ctx.rank() == 0) {
      // Leave less free arena space than one slab needs.
      const std::uint64_t free = ctx.arena().free_bytes();
      ASSERT_GT(free, 300 * 1024u);
      auto hog = check_ok(
          ctx.arena().create("test.hog", free - 64 * 1024));
      check_ok(ep.send(1, 0, data));
      EXPECT_EQ(ep.stats().rendezvous_sent, 0u);
      EXPECT_EQ(ep.stats().rendezvous_fallbacks, 1u);
      check_ok(ctx.arena().destroy(hog));
    } else {
      std::vector<std::byte> buf(data.size());
      check_ok(ep.recv(0, 0, buf));
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(Rendezvous, EagerStagingBytesStayBounded) {
  // Satellite: a long one-way stream of eager messages must not grow the
  // retransmit staging without bound — the byte budget evicts old copies
  // (the newest always survives so the just-sent message stays NAKable).
  runtime::UniverseConfig cfg = rdvz_config();
  cfg.rendezvous_threshold = ~std::size_t{0};  // force everything eager
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(192 * 1024, 10);
    constexpr int kRounds = 30;
    if (ctx.rank() == 0) {
      for (int i = 0; i < kRounds; ++i) {
        check_ok(ep.send(1, i, data));
        EXPECT_LE(ep.debug_queue_sizes().staged_bytes,
                  Endpoint::kRetransmitStagingBytes);
      }
      EXPECT_EQ(ep.stats().rendezvous_sent, 0u);
    } else {
      std::vector<std::byte> buf(data.size());
      for (int i = 0; i < kRounds; ++i) {
        check_ok(ep.recv(0, i, buf));
        EXPECT_EQ(buf, data);
      }
    }
  });
}

}  // namespace
}  // namespace cmpi::p2p
