// Randomized traffic fuzz for the two-sided engine: a seeded global plan
// of messages (random sources, destinations, tags, sizes — including
// zero-byte and multi-chunk) is executed by every rank; FIFO-per-(src,tag)
// semantics determine exactly which payload each receive must deliver.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "p2p/endpoint.hpp"

namespace cmpi::p2p {
namespace {

struct PlannedMsg {
  int src;
  int dst;
  int tag;
  std::size_t size;
  std::uint64_t seed;
};

std::vector<std::byte> payload_for(const PlannedMsg& msg) {
  std::vector<std::byte> data(msg.size);
  Rng rng(msg.seed);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(256));
  }
  return data;
}

std::vector<PlannedMsg> make_plan(std::uint64_t seed, int nranks,
                                  int messages, std::size_t max_size) {
  Rng rng(seed);
  std::vector<PlannedMsg> plan;
  plan.reserve(static_cast<std::size_t>(messages));
  for (int i = 0; i < messages; ++i) {
    PlannedMsg msg{};
    msg.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    do {
      msg.dst = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(nranks)));
    } while (msg.dst == msg.src);
    msg.tag = static_cast<int>(rng.next_below(3));
    // Mix zero-byte, sub-cell and multi-chunk sizes.
    const auto bucket = rng.next_below(4);
    msg.size = bucket == 0 ? 0
               : bucket == 1
                   ? rng.next_below(64)
                   : bucket == 2 ? rng.next_below(2048)
                                 : rng.next_below(max_size);
    msg.seed = rng.next();
    plan.push_back(msg);
  }
  return plan;
}

class P2pFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, P2pFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST_P(P2pFuzz, RandomTrafficDeliversExactly) {
  constexpr int kRanks = 4;
  constexpr int kMessages = 120;
  constexpr std::size_t kMaxSize = 20000;

  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.pool_size = 128_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = 4_KiB;  // force chunking for the large bucket
  cfg.ring_cells = 4;
  runtime::Universe universe(cfg);

  const auto plan = make_plan(GetParam(), kRanks, kMessages, kMaxSize);

  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const int me = ctx.rank();

    // Sends: plan order; buffers stay alive until wait_all.
    std::vector<std::vector<std::byte>> send_buffers;
    std::vector<RequestPtr> requests;
    // Receives: plan order defines the FIFO expectation per (src, tag).
    struct Expected {
      std::size_t plan_index;
      std::vector<std::byte> buffer;
      RequestPtr request;
    };
    std::vector<Expected> inbox;

    for (std::size_t i = 0; i < plan.size(); ++i) {
      const PlannedMsg& msg = plan[i];
      if (msg.src == me) {
        send_buffers.push_back(payload_for(msg));
        requests.push_back(ep.isend(msg.dst, msg.tag, send_buffers.back()));
      }
      if (msg.dst == me) {
        Expected e;
        e.plan_index = i;
        e.buffer.resize(msg.size);
        e.request = ep.irecv(msg.src, msg.tag, e.buffer);
        requests.push_back(e.request);
        inbox.push_back(std::move(e));
      }
    }
    check_ok(ep.wait_all(requests));

    for (const Expected& e : inbox) {
      const PlannedMsg& msg = plan[e.plan_index];
      ASSERT_TRUE(e.request->complete());
      EXPECT_EQ(e.request->info().source, msg.src);
      EXPECT_EQ(e.request->info().tag, msg.tag);
      EXPECT_EQ(e.request->info().bytes, msg.size);
      EXPECT_EQ(e.buffer, payload_for(msg)) << "plan index " << e.plan_index;
    }
  });
}

TEST(P2pFuzz, SendBuffersMayBeReusedAfterWait) {
  // Local-completion semantics: once wait() returns for a send, the
  // buffer may be overwritten without corrupting the in-flight message.
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      std::vector<std::byte> buffer(1024);
      for (int i = 0; i < 10; ++i) {
        std::fill(buffer.begin(), buffer.end(),
                  static_cast<std::byte>(i));
        check_ok(ep.wait(ep.isend(1, 0, buffer)));
        // Clobber immediately: the message was already staged into cells.
        std::fill(buffer.begin(), buffer.end(), std::byte{0xFF});
      }
    } else {
      std::vector<std::byte> buffer(1024);
      for (int i = 0; i < 10; ++i) {
        check_ok(ep.recv(0, 0, buffer).status());
        for (const std::byte b : buffer) {
          ASSERT_EQ(std::to_integer<int>(b), i);
        }
      }
    }
  });
}

}  // namespace
}  // namespace cmpi::p2p
