// Randomized traffic fuzz for the two-sided engine: a seeded global plan
// of messages (random sources, destinations, tags, sizes — including
// zero-byte and multi-chunk) is executed by every rank; FIFO-per-(src,tag)
// semantics determine exactly which payload each receive must deliver.
//
// The kill-schedule fuzz (P2pKillFuzz) adds fault injection: a seeded
// choice of victim rank and pre-death traffic, with the victim crashed at
// a sync point and every survivor required to observe kPeerFailed (or
// kTimedOut) from its deadline-aware calls — never a hang. CI runs it
// under several seeds; set CMPI_FAULT_SEED to add an environment-supplied
// seed on top of the built-in parameterization.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "p2p/endpoint.hpp"

namespace cmpi::p2p {
namespace {

struct PlannedMsg {
  int src;
  int dst;
  int tag;
  std::size_t size;
  std::uint64_t seed;
};

std::vector<std::byte> payload_for(const PlannedMsg& msg) {
  std::vector<std::byte> data(msg.size);
  Rng rng(msg.seed);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(256));
  }
  return data;
}

std::vector<PlannedMsg> make_plan(std::uint64_t seed, int nranks,
                                  int messages, std::size_t max_size) {
  Rng rng(seed);
  std::vector<PlannedMsg> plan;
  plan.reserve(static_cast<std::size_t>(messages));
  for (int i = 0; i < messages; ++i) {
    PlannedMsg msg{};
    msg.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    do {
      msg.dst = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(nranks)));
    } while (msg.dst == msg.src);
    msg.tag = static_cast<int>(rng.next_below(3));
    // Mix zero-byte, sub-cell and multi-chunk sizes.
    const auto bucket = rng.next_below(4);
    msg.size = bucket == 0 ? 0
               : bucket == 1
                   ? rng.next_below(64)
                   : bucket == 2 ? rng.next_below(2048)
                                 : rng.next_below(max_size);
    msg.seed = rng.next();
    plan.push_back(msg);
  }
  return plan;
}

class P2pFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, P2pFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST_P(P2pFuzz, RandomTrafficDeliversExactly) {
  constexpr int kRanks = 4;
  constexpr int kMessages = 120;
  constexpr std::size_t kMaxSize = 20000;

  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.pool_size = 128_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = 4_KiB;  // force chunking for the large bucket
  cfg.ring_cells = 4;
  runtime::Universe universe(cfg);

  const auto plan = make_plan(GetParam(), kRanks, kMessages, kMaxSize);

  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const int me = ctx.rank();

    // Sends: plan order; buffers stay alive until wait_all.
    std::vector<std::vector<std::byte>> send_buffers;
    std::vector<RequestPtr> requests;
    // Receives: plan order defines the FIFO expectation per (src, tag).
    struct Expected {
      std::size_t plan_index;
      std::vector<std::byte> buffer;
      RequestPtr request;
    };
    std::vector<Expected> inbox;

    for (std::size_t i = 0; i < plan.size(); ++i) {
      const PlannedMsg& msg = plan[i];
      if (msg.src == me) {
        send_buffers.push_back(payload_for(msg));
        requests.push_back(ep.isend(msg.dst, msg.tag, send_buffers.back()));
      }
      if (msg.dst == me) {
        Expected e;
        e.plan_index = i;
        e.buffer.resize(msg.size);
        e.request = ep.irecv(msg.src, msg.tag, e.buffer);
        requests.push_back(e.request);
        inbox.push_back(std::move(e));
      }
    }
    check_ok(ep.wait_all(requests));

    for (const Expected& e : inbox) {
      const PlannedMsg& msg = plan[e.plan_index];
      ASSERT_TRUE(e.request->complete());
      EXPECT_EQ(e.request->info().source, msg.src);
      EXPECT_EQ(e.request->info().tag, msg.tag);
      EXPECT_EQ(e.request->info().bytes, msg.size);
      EXPECT_EQ(e.buffer, payload_for(msg)) << "plan index " << e.plan_index;
    }
  });
}

TEST(P2pFuzz, SendBuffersMayBeReusedAfterWait) {
  // Local-completion semantics: once wait() returns for a send, the
  // buffer may be overwritten without corrupting the in-flight message.
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      std::vector<std::byte> buffer(1024);
      for (int i = 0; i < 10; ++i) {
        std::fill(buffer.begin(), buffer.end(),
                  static_cast<std::byte>(i));
        check_ok(ep.wait(ep.isend(1, 0, buffer)));
        // Clobber immediately: the message was already staged into cells.
        std::fill(buffer.begin(), buffer.end(), std::byte{0xFF});
      }
    } else {
      std::vector<std::byte> buffer(1024);
      for (int i = 0; i < 10; ++i) {
        check_ok(ep.recv(0, 0, buffer).status());
        for (const std::byte b : buffer) {
          ASSERT_EQ(std::to_integer<int>(b), i);
        }
      }
    }
  });
}

// ---------------------------------------------------------------------
// Kill-schedule fuzz: one seeded victim dies mid-run; the survivors'
// deadline-aware calls must classify the death, and survivor-to-survivor
// traffic must be unaffected. The whole test runs under the suite's
// per-test ctest TIMEOUT, so any reintroduced infinite wait fails fast.

using namespace std::chrono_literals;

// Built-in seeds parameterize the suite; CMPI_FAULT_SEED (the CI fault
// matrix) shifts all of them so each matrix entry explores a fresh
// schedule without changing the test list.
std::uint64_t kill_seed(std::uint64_t param) {
  if (const char* env = std::getenv("CMPI_FAULT_SEED")) {
    return param + std::strtoull(env, nullptr, 10);
  }
  return param;
}

std::vector<std::byte> kill_payload(std::uint64_t seed, int survivor,
                                    int tag, std::size_t size) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(survivor) << 32) ^
          static_cast<std::uint64_t>(tag));
  std::vector<std::byte> data(size);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(256));
  }
  return data;
}

class P2pKillFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, P2pKillFuzz,
                         ::testing::Values(7u, 1311u, 90210u));

TEST_P(P2pKillFuzz, SurvivorsObserveFailureNotHang) {
  const std::uint64_t seed = kill_seed(GetParam());
  Rng rng(seed);
  constexpr int kRanks = 4;
  const int victim =
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(kRanks)));
  // Messages the victim fully stages to each survivor before dying: they
  // must still be delivered (the data lives in the pool, not the host).
  const int pre_death = static_cast<int>(rng.next_below(4));
  const std::size_t msg_size = 1 + rng.next_below(8192);

  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.failure_lease = 50ms;  // deadlines below are 100x longer
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = victim, .point = "test-kill", .occurrence = 1});
  runtime::Universe universe(cfg);

  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const int me = ctx.rank();
    std::vector<int> survivors;
    for (int r = 0; r < kRanks; ++r) {
      if (r != victim) {
        survivors.push_back(r);
      }
    }

    if (me == victim) {
      // Blocking send completes on full staging, so every pre-death
      // message is durably in the rings before the crash fires.
      for (const int s : survivors) {
        for (int k = 0; k < pre_death; ++k) {
          check_ok(ep.send(s, k, kill_payload(seed, s, k, msg_size)));
        }
      }
      ctx.acc().fault_sync_point("test-kill");
      FAIL() << "scripted crash did not fire for rank " << victim;
    }

    // Survivor: staged messages from the (possibly already dead) victim
    // still arrive intact and in FIFO order.
    for (int k = 0; k < pre_death; ++k) {
      std::vector<std::byte> buf(msg_size);
      const auto r = ep.recv_for(victim, k, buf, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(buf, kill_payload(seed, me, k, msg_size));
    }
    // A message the victim never sent: the lease (50 ms) classifies the
    // death well inside the 10 s deadline. kTimedOut is tolerated only
    // because a crash *during* the pre-death sends of another survivor's
    // traffic is not this rank's lease to observe first.
    std::vector<std::byte> buf(64);
    const auto dead = ep.recv_for(victim, /*tag=*/99, buf, 10000ms);
    ASSERT_FALSE(dead.is_ok());
    EXPECT_TRUE(dead.status().code() == ErrorCode::kPeerFailed ||
                dead.status().code() == ErrorCode::kTimedOut)
        << dead.status().message();

    // Survivor ring traffic is unaffected by the death: each survivor
    // sends to the next survivor and receives from the previous one,
    // all through the deadline-aware paths.
    const std::size_t my_idx = static_cast<std::size_t>(
        std::find(survivors.begin(), survivors.end(), me) -
        survivors.begin());
    const int next = survivors[(my_idx + 1) % survivors.size()];
    const int prev =
        survivors[(my_idx + survivors.size() - 1) % survivors.size()];
    const auto out = kill_payload(seed, me, 500, 2048);
    check_ok(ep.send_for(next, 500, out, 10000ms));
    std::vector<std::byte> in(2048);
    const auto r = ep.recv_for(prev, 500, in, 10000ms);
    ASSERT_TRUE(r.is_ok()) << r.status().message();
    EXPECT_EQ(in, kill_payload(seed, prev, 500, 2048));
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{victim}));
}

}  // namespace
}  // namespace cmpi::p2p
