#include "p2p/endpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace cmpi::p2p {
namespace {

runtime::UniverseConfig small_config(unsigned nodes, unsigned per_node,
                                     std::size_t cell_payload = 1_KiB,
                                     std::size_t ring_cells = 4) {
  runtime::UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = cell_payload;
  cfg.ring_cells = ring_cells;
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 13 + i * 7) & 0xFF);
  }
  return out;
}

TEST(Endpoint, SmallBlockingSendRecv) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(100, 1);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 7, data));
    } else {
      std::vector<std::byte> buffer(100);
      const RecvInfo info = check_ok(ep.recv(0, 7, buffer));
      EXPECT_EQ(info.source, 0);
      EXPECT_EQ(info.tag, 7);
      EXPECT_EQ(info.bytes, 100u);
      EXPECT_EQ(buffer, data);
    }
  });
}

TEST(Endpoint, LargeMessageIsChunkedAcrossCells) {
  // 10 KiB message through 1 KiB cells: 10 chunks over a 4-cell ring —
  // requires overlap between producer and consumer.
  runtime::Universe universe(small_config(2, 1, 1_KiB, 4));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(10 * 1024, 2);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 0, data));
    } else {
      std::vector<std::byte> buffer(10 * 1024);
      const RecvInfo info = check_ok(ep.recv(0, 0, buffer));
      EXPECT_EQ(info.bytes, data.size());
      EXPECT_EQ(buffer, data);
    }
  });
}

TEST(Endpoint, MessageLargerThanWholeRing) {
  runtime::Universe universe(small_config(2, 1, 256, 2));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto data = pattern(64 * 1024, 3);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 1, data));
    } else {
      std::vector<std::byte> buffer(64 * 1024);
      check_ok(ep.recv(0, 1, buffer));
      EXPECT_EQ(buffer, data);
    }
  });
}

TEST(Endpoint, ZeroByteMessage) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 3, {}));
    } else {
      const RecvInfo info = check_ok(ep.recv(0, 3, {}));
      EXPECT_EQ(info.bytes, 0u);
      EXPECT_EQ(info.tag, 3);
    }
  });
}

TEST(Endpoint, TagMatchingOutOfOrder) {
  // Sender sends tag 1 then tag 2; receiver posts tag 2 first. Tag-1 must
  // wait in the unexpected queue while tag 2 is... still behind tag 1 in
  // the ring, so the receiver's progress engine must buffer tag 1 to reach
  // tag 2.
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const auto msg1 = pattern(64, 10);
    const auto msg2 = pattern(64, 20);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 1, msg1));
      check_ok(ep.send(1, 2, msg2));
    } else {
      std::vector<std::byte> buf2(64);
      std::vector<std::byte> buf1(64);
      check_ok(ep.recv(0, 2, buf2));
      EXPECT_EQ(buf2, msg2);
      check_ok(ep.recv(0, 1, buf1));
      EXPECT_EQ(buf1, msg1);
    }
  });
}

TEST(Endpoint, SameTagFifoOrder) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    constexpr int kMessages = 20;
    if (ctx.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        std::uint32_t value = static_cast<std::uint32_t>(i);
        check_ok(ep.send(1, 5,
                         {reinterpret_cast<const std::byte*>(&value),
                          sizeof value}));
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        std::uint32_t value = 0;
        check_ok(ep.recv(0, 5,
                         {reinterpret_cast<std::byte*>(&value), sizeof value}));
        EXPECT_EQ(value, static_cast<std::uint32_t>(i));
      }
    }
  });
}

TEST(Endpoint, WildcardSourceAndTag) {
  runtime::Universe universe(small_config(3, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() != 0) {
      const auto data = pattern(32, ctx.rank());
      check_ok(ep.send(0, ctx.rank() * 11, data));
    } else {
      bool seen[3] = {false, true, true};
      for (int i = 0; i < 2; ++i) {
        std::vector<std::byte> buffer(32);
        const RecvInfo info =
            check_ok(ep.recv(kAnySource, kAnyTag, buffer));
        EXPECT_EQ(info.tag, info.source * 11);
        EXPECT_EQ(buffer, pattern(32, info.source));
        seen[info.source] = !seen[info.source] ? true : seen[info.source];
        seen[info.source] = true;
      }
      EXPECT_TRUE(seen[1]);
      EXPECT_TRUE(seen[2]);
    }
  });
}

TEST(Endpoint, NonblockingSendRecvWaitAll) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    constexpr int kCount = 8;
    if (ctx.rank() == 0) {
      std::vector<std::vector<std::byte>> buffers;
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < kCount; ++i) {
        buffers.push_back(pattern(512, i));
        reqs.push_back(ep.isend(1, i, buffers.back()));
      }
      check_ok(ep.wait_all(reqs));
    } else {
      std::vector<std::vector<std::byte>> buffers(kCount,
                                                  std::vector<std::byte>(512));
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < kCount; ++i) {
        reqs.push_back(ep.irecv(0, i, buffers[static_cast<std::size_t>(i)]));
      }
      check_ok(ep.wait_all(reqs));
      for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(buffers[static_cast<std::size_t>(i)], pattern(512, i));
      }
    }
  });
}

TEST(Endpoint, TestReportsCompletionEventually) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      const auto data = pattern(64, 1);
      check_ok(ep.send(1, 0, data));
    } else {
      std::vector<std::byte> buffer(64);
      const RequestPtr req = ep.irecv(0, 0, buffer);
      while (!ep.test(req)) {
        // spin via test(), the MPI_Test loop idiom
      }
      EXPECT_TRUE(req->complete());
      EXPECT_EQ(req->info().bytes, 64u);
    }
  });
}

TEST(Endpoint, TruncationReportsError) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      const auto data = pattern(256, 4);
      check_ok(ep.send(1, 0, data));
    } else {
      std::vector<std::byte> buffer(100);  // too small
      const auto result = ep.recv(0, 0, buffer);
      EXPECT_FALSE(result.is_ok());
      EXPECT_EQ(result.status().code(), ErrorCode::kTruncated);
      // The bytes that fit must still be correct.
      const auto expected = pattern(256, 4);
      EXPECT_EQ(std::memcmp(buffer.data(), expected.data(), 100), 0);
    }
  });
}

TEST(Endpoint, TruncationOfChunkedMessage) {
  runtime::Universe universe(small_config(2, 1, 256, 4));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 0, pattern(4096, 5)));
    } else {
      std::vector<std::byte> buffer(300);  // cuts mid-chunk
      const auto result = ep.recv(0, 0, buffer);
      EXPECT_EQ(result.status().code(), ErrorCode::kTruncated);
      const auto expected = pattern(4096, 5);
      EXPECT_EQ(std::memcmp(buffer.data(), expected.data(), 300), 0);
    }
  });
}

TEST(Endpoint, UnexpectedMessageBuffered) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 9, pattern(128, 6)));
      check_ok(ep.send(1, 9, pattern(128, 7)));  // both before any recv
    } else {
      // Ensure both messages are already drained as unexpected.
      std::optional<RecvInfo> probed;
      ctx.doorbell().wait_until([&] {
        probed = ep.iprobe(0, 9);
        return probed.has_value();
      });
      EXPECT_EQ(probed->bytes, 128u);
      std::vector<std::byte> a(128);
      std::vector<std::byte> b(128);
      check_ok(ep.recv(0, 9, a));
      check_ok(ep.recv(0, 9, b));
      EXPECT_EQ(a, pattern(128, 6));
      EXPECT_EQ(b, pattern(128, 7));
    }
  });
}

TEST(Endpoint, IprobeDoesNotConsume) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 2, pattern(64, 8)));
    } else {
      std::optional<RecvInfo> probed;
      ctx.doorbell().wait_until([&] {
        probed = ep.iprobe(kAnySource, kAnyTag);
        return probed.has_value();
      });
      // Probe again: still there.
      EXPECT_TRUE(ep.iprobe(0, 2).has_value());
      std::vector<std::byte> buffer(64);
      check_ok(ep.recv(0, 2, buffer));
      EXPECT_FALSE(ep.iprobe(0, 2).has_value());
    }
  });
}

TEST(Endpoint, BlockingProbeReportsEnvelope) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      check_ok(ep.send(1, 4, pattern(300, 2)));
    } else {
      const RecvInfo info = ep.probe(0, 4);
      EXPECT_EQ(info.source, 0);
      EXPECT_EQ(info.tag, 4);
      EXPECT_EQ(info.bytes, 300u);
      // Probe sizes the buffer, like the classic MPI_Probe idiom.
      std::vector<std::byte> buffer(info.bytes);
      check_ok(ep.recv(0, 4, buffer).status());
      EXPECT_EQ(buffer, pattern(300, 2));
    }
  });
}

TEST(Endpoint, SendrecvExchangesWithoutDeadlock) {
  runtime::Universe universe(small_config(2, 2));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const int n = ctx.nranks();
    // Shift pattern: everyone sendrecvs with both neighbors in a ring.
    const int right = (ctx.rank() + 1) % n;
    const int left = (ctx.rank() - 1 + n) % n;
    const auto mine = pattern(128, ctx.rank());
    std::vector<std::byte> from_left(128);
    RecvInfo info;
    check_ok(ep.sendrecv(right, 1, mine, left, 1, from_left, &info));
    EXPECT_EQ(info.source, left);
    EXPECT_EQ(from_left, pattern(128, left));
  });
}

TEST(Endpoint, BidirectionalExchangeDoesNotDeadlock) {
  // Both ranks blocking-send a message larger than the whole ring before
  // receiving — the progress engine inside the send wait loop must drain
  // incoming traffic to unexpected buffers.
  runtime::Universe universe(small_config(2, 1, 256, 2));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const int peer = 1 - ctx.rank();
    const auto mine = pattern(8 * 1024, ctx.rank());
    check_ok(ep.send(peer, 0, mine));
    std::vector<std::byte> buffer(8 * 1024);
    check_ok(ep.recv(peer, 0, buffer));
    EXPECT_EQ(buffer, pattern(8 * 1024, peer));
  });
}

TEST(Endpoint, AllToAllExchange) {
  constexpr unsigned kNodes = 2;
  constexpr unsigned kPerNode = 2;
  runtime::Universe universe(small_config(kNodes, kPerNode));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const int n = ctx.nranks();
    std::vector<RequestPtr> reqs;
    std::vector<std::vector<std::byte>> inbox(
        static_cast<std::size_t>(n), std::vector<std::byte>(64));
    std::vector<std::vector<std::byte>> outbox;
    for (int peer = 0; peer < n; ++peer) {
      if (peer == ctx.rank()) {
        continue;
      }
      reqs.push_back(ep.irecv(peer, 0, inbox[static_cast<std::size_t>(peer)]));
      outbox.push_back(pattern(64, ctx.rank() * 100 + peer));
      reqs.push_back(ep.isend(peer, 0, outbox.back()));
    }
    check_ok(ep.wait_all(reqs));
    for (int peer = 0; peer < n; ++peer) {
      if (peer == ctx.rank()) {
        continue;
      }
      EXPECT_EQ(inbox[static_cast<std::size_t>(peer)],
                pattern(64, peer * 100 + ctx.rank()));
    }
  });
}

TEST(Endpoint, VirtualLatencyIsMicrosecondScale) {
  // Sanity check on the modeled two-sided latency: a small-message
  // ping-pong should land in the ~5-30 us range the paper reports for
  // CXL SHM (Fig. 8: ~12 us), not ns or ms.
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    const int peer = 1 - ctx.rank();
    std::vector<std::byte> buffer(8);
    constexpr int kIters = 50;
    ctx.barrier();
    const double start = ctx.clock().now();
    for (int i = 0; i < kIters; ++i) {
      if (ctx.rank() == 0) {
        check_ok(ep.send(peer, 0, buffer));
        check_ok(ep.recv(peer, 0, buffer));
      } else {
        check_ok(ep.recv(peer, 0, buffer));
        check_ok(ep.send(peer, 0, buffer));
      }
    }
    const double one_way_us =
        (ctx.clock().now() - start) / kIters / 2.0 / 1000.0;
    EXPECT_GT(one_way_us, 2.0);
    EXPECT_LT(one_way_us, 40.0);
  });
}

}  // namespace
}  // namespace cmpi::p2p
