// Fan-in soak × faults: 16 senders stream mixed eager/rendezvous
// messages at one receiver while a seeded victim sender crashes
// mid-plan. The message-rate engine's bookkeeping (doorbell slots,
// per-peer drain state, sharded match queues) must neither lose nor
// duplicate a message:
//
//  * every survivor's full plan arrives intact and in tag order,
//  * the victim's delivered messages form an exact prefix of its plan
//    (published cells arrive; the cell it died staging does not),
//  * nothing is left parked in the receiver's unexpected queue, and
//  * PoolRecovery zeroes the dead sender's aggregated-doorbell slot so
//    its stale rings cannot wake the receiver forever.
//
// The CI fault matrix reruns this binary under several CMPI_FAULT_SEED
// values (the label regex selects *fault_test* binaries).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cmpi.hpp"
#include "cxlsim/fault_injector.hpp"
#include "runtime/doorbell.hpp"
#include "runtime/universe.hpp"

namespace cmpi {
namespace {

using namespace std::chrono_literals;

constexpr int kSenders = 16;
constexpr int kReceiver = kSenders;
constexpr int kPerSender = 8;
constexpr int kDoneTag = 200;

runtime::UniverseConfig fanin_config() {
  runtime::UniverseConfig cfg;
  cfg.nodes = kSenders + 1;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 128_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = 4_KiB;  // rendezvous threshold defaults to this
  cfg.ring_cells = 8;
  cfg.failure_lease = 50ms;
  return cfg;
}

/// Message size for (sender, index): straddles the rendezvous threshold
/// so the fan-in mixes the eager chunked path and the one-copy path.
std::size_t msg_size(int sender, int k) {
  constexpr std::size_t kSizes[] = {64, 2_KiB, 12_KiB, 512};
  return kSizes[static_cast<std::size_t>(sender + k) % 4];
}

std::uint64_t fuzz_seed(std::uint64_t param) {
  if (const char* env = std::getenv("CMPI_FAULT_SEED")) {
    return param + std::strtoull(env, nullptr, 10);
  }
  return param;
}

std::vector<std::byte> payload_for(std::uint64_t seed, int sender, int k) {
  std::vector<std::byte> data(msg_size(sender, k));
  Rng rng(seed ^ (static_cast<std::uint64_t>(sender) << 32) ^
          static_cast<std::uint64_t>(k));
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(256));
  }
  return data;
}

bool wait_for_crash(runtime::RankCtx& ctx, int rank,
                    std::chrono::milliseconds limit = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  const cxlsim::FaultInjector* fi = ctx.device().fault_injector();
  while (std::chrono::steady_clock::now() < deadline) {
    if (fi != nullptr && fi->rank_crashed(rank)) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

class FaninFault : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FaninFault, ::testing::Values(7u, 1234u));

TEST_P(FaninFault, SeededSenderCrashLosesNothingAndClearsDoorbell) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  Rng rng(seed);
  const int victim =
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(kSenders)));
  // Early enough that eager chunks remain in the victim's plan: every
  // sender's first four messages include at least three eager ones.
  const std::uint64_t crash_occurrence = 1 + rng.next_below(3);

  runtime::UniverseConfig cfg = fanin_config();
  cfg.fault_plan.crash_at_sync.push_back({.rank = victim,
                                          .point = "p2p-chunk-staged",
                                          .occurrence = crash_occurrence});
  runtime::Universe universe(cfg);
  std::atomic<int> victim_delivered{-1};

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const int me = ctx.rank();
    ctx.barrier();
    if (me == victim) {
      for (int k = 0; k < kPerSender; ++k) {
        (void)mpi.send(kReceiver, k, payload_for(seed, me, k));
      }
      FAIL() << "victim " << victim << " outlived its crash schedule";
      return;
    }
    if (me != kReceiver) {
      for (int k = 0; k < kPerSender; ++k) {
        check_ok(mpi.send(kReceiver, k, payload_for(seed, me, k)));
      }
      // Stay alive (heartbeating) until the receiver has drained and
      // audited everything — an early exit would read as a failure.
      std::byte done{};
      check_ok(mpi.recv_for(kReceiver, kDoneTag, {&done, 1}, 30000ms)
                   .status());
      return;
    }
    // Receiver: every survivor's plan must arrive complete, in tag
    // order, byte-exact.
    for (int s = 0; s < kSenders; ++s) {
      if (s == victim) {
        continue;
      }
      for (int k = 0; k < kPerSender; ++k) {
        const auto want = payload_for(seed, s, k);
        std::vector<std::byte> buf(want.size());
        const auto r = mpi.recv_for(s, k, buf, 10000ms);
        ASSERT_TRUE(r.is_ok())
            << "survivor " << s << " message " << k << ": "
            << r.status().message();
        ASSERT_EQ(r.value().bytes, want.size());
        ASSERT_EQ(buf, want) << "survivor " << s << " message " << k;
      }
    }
    // The victim's delivered messages form an exact prefix of its plan.
    int delivered = 0;
    for (int k = 0; k < kPerSender; ++k) {
      const auto want = payload_for(seed, victim, k);
      std::vector<std::byte> buf(want.size());
      const auto r = mpi.recv_for(victim, k, buf, 2000ms);
      if (!r.is_ok()) {
        break;
      }
      ASSERT_EQ(buf, want) << "victim message " << k << " corrupted";
      ++delivered;
    }
    victim_delivered = delivered;
    // No gaps past the prefix: a message AFTER the first missing one
    // arriving would mean the FIFO/doorbell bookkeeping resurrected or
    // reordered a cell.
    for (int k = delivered + 1; k < kPerSender; ++k) {
      std::vector<std::byte> buf(msg_size(victim, k));
      EXPECT_FALSE(mpi.recv_for(victim, k, buf, 150ms).is_ok())
          << "victim message " << k << " arrived after the prefix ended";
    }
    // Nothing parked: a duplicate delivery would strand a message in the
    // unexpected queue (its tag can never match again).
    EXPECT_EQ(mpi.endpoint().debug_queue_sizes().unexpected, 0u);
    ASSERT_TRUE(wait_for_crash(ctx, victim));
    const auto rep = mpi.scavenge(victim);
    ASSERT_TRUE(rep.is_ok()) << rep.status().message();
    ASSERT_TRUE(rep.value().pool.performed);
    EXPECT_TRUE(rep.value().pool.doorbell_cleared);
    // The dead sender's doorbell slot really is zero again — its stale
    // rings are gone and its next incarnation restarts the counter.
    runtime::AggDoorbell dbell(ctx.doorbell_base(), ctx.nranks());
    EXPECT_EQ(dbell.peek(ctx.acc(), ctx.rank(), victim), 0u);
    for (int s = 0; s < kSenders; ++s) {
      if (s != victim) {
        std::byte done{0x1};
        check_ok(mpi.send(s, kDoneTag, {&done, 1}));
      }
    }
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{victim}));
  EXPECT_GE(victim_delivered.load(), 0);
  EXPECT_LT(victim_delivered.load(), kPerSender)
      << "the scripted crash fired too late to test anything";
}

}  // namespace
}  // namespace cmpi
