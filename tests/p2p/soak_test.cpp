// Bounded-memory soak: an endpoint that streams many messages must not
// accumulate completed bookkeeping. Historically two containers could
// pin completed requests: matched_keepalive_ (posted receives matched
// into assembly) and pending_ssends_ (staged synchronous sends awaiting
// their ack). Completed requests also must drop their references to the
// caller's buffers. debug_queue_sizes() exposes the container sizes so
// the test can assert they return to zero between waves.
#include <gtest/gtest.h>

#include <vector>

#include "p2p/endpoint.hpp"

namespace cmpi::p2p {
namespace {

runtime::UniverseConfig soak_config() {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = 256;
  cfg.ring_cells = 8;
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 17 + i) & 0xFF);
  }
  return out;
}

void expect_drained(const Endpoint& ep, const char* where) {
  const auto sizes = ep.debug_queue_sizes();
  EXPECT_EQ(sizes.posted_recvs, 0u) << where;
  EXPECT_EQ(sizes.unexpected, 0u) << where;
  EXPECT_EQ(sizes.matched_keepalive, 0u) << where;
  EXPECT_EQ(sizes.pending_ssends, 0u) << where;
  EXPECT_EQ(sizes.send_queued, 0u) << where;
}

TEST(EndpointSoak, ManyEagerMessagesLeaveNoResidue) {
  runtime::Universe universe(soak_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    constexpr int kWaves = 50;
    constexpr int kPerWave = 20;
    for (int wave = 0; wave < kWaves; ++wave) {
      // Chunked messages (600 B through 256 B cells) so every message
      // exercises assembly and the matched-keepalive path.
      if (ctx.rank() == 0) {
        for (int i = 0; i < kPerWave; ++i) {
          check_ok(ep.send(1, wave, pattern(600, wave * kPerWave + i)));
        }
      } else {
        std::vector<std::byte> buffer(600);
        for (int i = 0; i < kPerWave; ++i) {
          const RecvInfo info = check_ok(ep.recv(0, wave, buffer));
          ASSERT_EQ(info.bytes, 600u);
          ASSERT_EQ(buffer, pattern(600, wave * kPerWave + i));
        }
      }
      ctx.barrier();
      expect_drained(ep, "after eager wave");
    }
  });
}

TEST(EndpointSoak, ManySynchronousSendsLeaveNoResidue) {
  runtime::Universe universe(soak_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    constexpr int kMessages = 200;
    for (int i = 0; i < kMessages; ++i) {
      if (ctx.rank() == 0) {
        check_ok(ep.ssend(1, 5, pattern(100, i)));
      } else {
        std::vector<std::byte> buffer(100);
        check_ok(ep.recv(0, 5, buffer));
        ASSERT_EQ(buffer, pattern(100, i));
      }
    }
    ctx.barrier();
    // A completed Ssend must not keep its internal ack request alive, and
    // the receiver must not accumulate matched keepalives.
    ep.progress();
    expect_drained(ep, "after ssend soak");
  });
}

TEST(EndpointSoak, PrepostedIrecvWavesLeaveNoResidue) {
  runtime::Universe universe(soak_config());
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    constexpr int kWaves = 40;
    constexpr int kPerWave = 8;
    for (int wave = 0; wave < kWaves; ++wave) {
      if (ctx.rank() == 1) {
        // Pre-post the whole wave so every message matches a posted recv
        // (the matched_keepalive_ path, not the unexpected queue).
        std::vector<std::vector<std::byte>> buffers(
            kPerWave, std::vector<std::byte>(600));
        std::vector<RequestPtr> recvs;
        for (int i = 0; i < kPerWave; ++i) {
          recvs.push_back(
              ep.irecv(0, wave * kPerWave + i,
                       buffers[static_cast<std::size_t>(i)]));
        }
        ctx.barrier();  // sender starts only once the recvs are posted
        check_ok(ep.wait_all(recvs));
        for (int i = 0; i < kPerWave; ++i) {
          ASSERT_EQ(buffers[static_cast<std::size_t>(i)],
                    pattern(600, wave * kPerWave + i));
        }
      } else {
        ctx.barrier();
        // isend keeps a span into the caller's buffer until completion.
        std::vector<std::vector<std::byte>> payloads;
        for (int i = 0; i < kPerWave; ++i) {
          payloads.push_back(pattern(600, wave * kPerWave + i));
        }
        std::vector<RequestPtr> sends;
        for (int i = 0; i < kPerWave; ++i) {
          sends.push_back(ep.isend(1, wave * kPerWave + i,
                                   payloads[static_cast<std::size_t>(i)]));
        }
        check_ok(ep.wait_all(sends));
      }
      ctx.barrier();
      expect_drained(ep, "after preposted wave");
    }
  });
}

}  // namespace
}  // namespace cmpi::p2p
