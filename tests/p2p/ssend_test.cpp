// Synchronous-send semantics (MPI_Ssend / MPI_Issend): completion implies
// the receiver matched the message — not merely that it was staged into
// cells or buffered as unexpected.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "p2p/endpoint.hpp"

namespace cmpi::p2p {
namespace {

runtime::UniverseConfig two_rank_config() {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

TEST(Ssend, BlockingRoundTrip) {
  runtime::Universe universe(two_rank_config());
  universe.run([](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    std::vector<std::byte> data(500, std::byte{7});
    if (ctx.rank() == 0) {
      check_ok(ep.ssend(1, 3, data));
    } else {
      std::vector<std::byte> inbox(500);
      const RecvInfo info = check_ok(ep.recv(0, 3, inbox));
      EXPECT_EQ(info.bytes, 500u);
      EXPECT_EQ(inbox, data);
    }
  });
}

TEST(Ssend, DoesNotCompleteUntilMatched) {
  runtime::Universe universe(two_rank_config());
  std::atomic<bool> receiver_posted{false};
  std::atomic<bool> completed_early{false};
  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      std::vector<std::byte> data(64, std::byte{1});
      const RequestPtr req = ep.issend(1, 0, data);
      // Pump progress while the receiver is still asleep: the message is
      // fully staged (and buffered as unexpected on the receiver once it
      // drains), yet the ssend must stay incomplete.
      for (int i = 0; i < 50; ++i) {
        ep.progress();
        if (req->complete() && !receiver_posted.load()) {
          completed_early = true;
        }
        std::this_thread::yield();
      }
      ctx.barrier();  // let the receiver post its recv
      check_ok(ep.wait(req));
      EXPECT_TRUE(receiver_posted.load());
    } else {
      // Drain the incoming message into the unexpected queue first.
      for (int i = 0; i < 50; ++i) {
        ep.progress();
        std::this_thread::yield();
      }
      ctx.barrier();
      receiver_posted = true;
      std::vector<std::byte> inbox(64);
      check_ok(ep.recv(0, 0, inbox).status());
    }
  });
  EXPECT_FALSE(completed_early.load());
}

TEST(Ssend, CompletesPromptlyWhenPrePosted) {
  runtime::Universe universe(two_rank_config());
  universe.run([](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 1) {
      std::vector<std::byte> inbox(8);
      const RequestPtr r = ep.irecv(0, 0, inbox);
      ctx.barrier();
      check_ok(ep.wait(r));
    } else {
      ctx.barrier();  // receiver has pre-posted
      std::vector<std::byte> data(8, std::byte{2});
      check_ok(ep.ssend(1, 0, data));
    }
  });
}

TEST(Ssend, ManyOutstandingIssendsCompleteInOrder) {
  runtime::Universe universe(two_rank_config());
  universe.run([](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    constexpr int kCount = 12;
    if (ctx.rank() == 0) {
      std::vector<std::vector<std::byte>> buffers;
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < kCount; ++i) {
        buffers.emplace_back(128, static_cast<std::byte>(i));
        reqs.push_back(ep.issend(1, i % 3, buffers.back()));
      }
      check_ok(ep.wait_all(reqs));
    } else {
      // Receive with mixed tag order; per-(src,tag) FIFO still holds.
      for (int round = 0; round < kCount / 3; ++round) {
        for (int tag = 2; tag >= 0; --tag) {
          std::vector<std::byte> inbox(128);
          check_ok(ep.recv(0, tag, inbox).status());
          // Messages with tag t are sent in order t, t+3, t+6, ...
          EXPECT_EQ(std::to_integer<int>(inbox[0]), tag + 3 * round);
        }
      }
    }
  });
}

TEST(Ssend, ZeroByteSynchronousSend) {
  runtime::Universe universe(two_rank_config());
  universe.run([](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      check_ok(ep.ssend(1, 9, {}));
    } else {
      const RecvInfo info = check_ok(ep.recv(0, 9, {}));
      EXPECT_EQ(info.bytes, 0u);
    }
  });
}

TEST(Ssend, MixedSendAndSsendTraffic) {
  runtime::Universe universe(two_rank_config());
  universe.run([](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<std::byte> data(32, static_cast<std::byte>(i));
        if (i % 2 == 0) {
          check_ok(ep.send(1, 0, data));
        } else {
          check_ok(ep.ssend(1, 0, data));
        }
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        std::vector<std::byte> inbox(32);
        check_ok(ep.recv(0, 0, inbox).status());
        EXPECT_EQ(std::to_integer<int>(inbox[0]), i);
      }
    }
  });
}

TEST(Ssend, AcksQueuedBehindFullRingSurviveReceiverTeardown) {
  // Regression for a teardown liveness hole: a receiver that matches many
  // ssends in one burst overflows the (small) ack ring, leaving acks
  // queued in its endpoint. If the receiver then returns and its endpoint
  // is destroyed without flushing them, the sender's wait blocks forever.
  // The scenario is forced deterministically: all messages arrive as
  // unexpected first (no acks yet), then the sender stops draining while
  // the receiver matches all twelve back-to-back and immediately tears
  // down — at most a ringful of acks can have left its queue.
  runtime::UniverseConfig cfg = two_rank_config();
  cfg.ring_cells = 4;
  runtime::Universe universe(cfg);
  constexpr int kCount = 12;
  std::atomic<bool> all_buffered{false};
  std::atomic<bool> receiver_done{false};

  universe.run([&](runtime::RankCtx& ctx) {
    Endpoint ep = Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      std::vector<std::vector<std::byte>> buffers;
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < kCount; ++i) {
        buffers.emplace_back(64, static_cast<std::byte>(i));
        reqs.push_back(ep.issend(1, i % 3, buffers.back()));
      }
      // Pump until every message sits in the receiver's unexpected queue,
      // then go quiet: nothing drains the ack ring while the receiver
      // matches, so its ack backlog must outlive its endpoint.
      while (!all_buffered) {
        ep.progress();
        std::this_thread::yield();
      }
      while (!receiver_done) {
        std::this_thread::yield();
      }
      for (const RequestPtr& req : reqs) {
        check_ok(ep.wait_for(req, std::chrono::milliseconds(10000)));
      }
    } else {
      while (ep.debug_queue_sizes().unexpected <
             static_cast<std::size_t>(kCount)) {
        ep.progress();
        std::this_thread::yield();
      }
      all_buffered = true;
      for (int round = 0; round < kCount / 3; ++round) {
        for (int tag = 2; tag >= 0; --tag) {
          std::vector<std::byte> inbox(64);
          check_ok(ep.recv(0, tag, inbox).status());
          EXPECT_EQ(std::to_integer<int>(inbox[0]), tag + 3 * round);
        }
      }
      receiver_done = true;
      // Fall out of the lambda: ~Endpoint must flush the queued acks.
    }
  });
}

}  // namespace
}  // namespace cmpi::p2p
