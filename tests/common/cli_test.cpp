#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace cmpi {
namespace {

CliArgs make(std::initializer_list<const char*> extra) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  return check_ok(CliArgs::parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, StringFlag) {
  const auto args = make({"--mode=cxl"});
  EXPECT_EQ(args.get_string("mode", "tcp"), "cxl");
  EXPECT_EQ(args.get_string("missing", "tcp"), "tcp");
}

TEST(Cli, IntFlag) {
  const auto args = make({"--procs=32"});
  EXPECT_EQ(args.get_int("procs", 2), 32);
  EXPECT_EQ(args.get_int("iters", 100), 100);
}

TEST(Cli, SizeFlagWithSuffixes) {
  const auto args = make({"--cell=64K", "--max=8M", "--raw=512"});
  EXPECT_EQ(args.get_size("cell", 0), 64u * 1024);
  EXPECT_EQ(args.get_size("max", 0), 8u * 1024 * 1024);
  EXPECT_EQ(args.get_size("raw", 0), 512u);
}

TEST(Cli, BoolFlag) {
  const auto args = make({"--verbose", "--csv=true", "--quiet=0"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_FALSE(args.get_bool("quiet"));
  EXPECT_FALSE(args.get_bool("absent"));
  EXPECT_TRUE(args.get_bool("absent2", true));
}

TEST(Cli, MalformedArgumentIsError) {
  const char* argv[] = {"prog", "procs=3"};
  EXPECT_FALSE(CliArgs::parse(2, argv).is_ok());
}

TEST(Cli, UnusedFlagsReported) {
  const auto args = make({"--known=1", "--typo=2"});
  (void)args.get_int("known", 0);
  const auto unused = args.unused_flags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ParseSize, Plain) {
  EXPECT_EQ(check_ok(parse_size("0")), 0u);
  EXPECT_EQ(check_ok(parse_size("123")), 123u);
}

TEST(ParseSize, Suffixes) {
  EXPECT_EQ(check_ok(parse_size("1K")), 1024u);
  EXPECT_EQ(check_ok(parse_size("2m")), 2u * 1024 * 1024);
  EXPECT_EQ(check_ok(parse_size("1g")), 1024u * 1024 * 1024);
}

TEST(ParseSize, Malformed) {
  EXPECT_FALSE(parse_size("").is_ok());
  EXPECT_FALSE(parse_size("K").is_ok());
  EXPECT_FALSE(parse_size("12x3").is_ok());
  EXPECT_FALSE(parse_size("-5").is_ok());
}

}  // namespace
}  // namespace cmpi
