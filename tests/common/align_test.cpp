#include "common/align.hpp"

#include <gtest/gtest.h>

namespace cmpi {
namespace {

TEST(Align, PowerOfTwoDetection) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_TRUE(is_pow2(kDaxAlignment));
  EXPECT_FALSE(is_pow2(kDaxAlignment + 1));
}

TEST(Align, AlignUpBasics) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
}

TEST(Align, AlignDownBasics) {
  EXPECT_EQ(align_down(0, 64), 0u);
  EXPECT_EQ(align_down(63, 64), 0u);
  EXPECT_EQ(align_down(64, 64), 64u);
  EXPECT_EQ(align_down(127, 64), 64u);
}

TEST(Align, AlignedPredicate) {
  EXPECT_TRUE(is_aligned(std::size_t{0}, 64));
  EXPECT_TRUE(is_aligned(std::size_t{128}, 64));
  EXPECT_FALSE(is_aligned(std::size_t{130}, 64));
}

TEST(Align, UpDownAgreeOnAlignedValues) {
  for (std::size_t v = 0; v < 4096; v += 64) {
    EXPECT_EQ(align_up(v, 64), v);
    EXPECT_EQ(align_down(v, 64), v);
  }
}

TEST(Align, CacheLinesSpannedZeroSize) {
  EXPECT_EQ(cache_lines_spanned(0, 0), 0u);
  EXPECT_EQ(cache_lines_spanned(100, 0), 0u);
}

TEST(Align, CacheLinesSpannedSingleLine) {
  EXPECT_EQ(cache_lines_spanned(0, 1), 1u);
  EXPECT_EQ(cache_lines_spanned(0, 64), 1u);
  EXPECT_EQ(cache_lines_spanned(63, 1), 1u);
}

TEST(Align, CacheLinesSpannedStraddling) {
  // One byte on each side of a line boundary.
  EXPECT_EQ(cache_lines_spanned(63, 2), 2u);
  // 64 bytes starting mid-line touch two lines.
  EXPECT_EQ(cache_lines_spanned(32, 64), 2u);
  EXPECT_EQ(cache_lines_spanned(0, 65), 2u);
  EXPECT_EQ(cache_lines_spanned(0, 128), 2u);
  EXPECT_EQ(cache_lines_spanned(1, 128), 3u);
}

TEST(Align, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 7), 0u);
  EXPECT_EQ(ceil_div(1, 7), 1u);
  EXPECT_EQ(ceil_div(7, 7), 1u);
  EXPECT_EQ(ceil_div(8, 7), 2u);
}

}  // namespace
}  // namespace cmpi
