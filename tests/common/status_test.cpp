#include "common/status.hpp"

#include <gtest/gtest.h>

namespace cmpi {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = status::not_found("object 'x'");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: object 'x'");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(status::not_found("a"), status::not_found("b"));
  EXPECT_FALSE(status::not_found("a") == status::closed("a"));
}

TEST(Status, AllCodesHaveNames) {
  for (const ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kOutOfMemory,
        ErrorCode::kCapacityExceeded, ErrorCode::kClosed,
        ErrorCode::kTruncated, ErrorCode::kUnsupported,
        ErrorCode::kInternal}) {
    EXPECT_FALSE(error_code_name(code).empty());
    EXPECT_NE(error_code_name(code), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(17);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 17);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(status::out_of_memory("arena full"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(Result, ValueOrPassesThrough) {
  Result<int> ok(5);
  EXPECT_EQ(ok.value_or(9), 5);
}

TEST(CheckOk, ReturnsValue) {
  EXPECT_EQ(check_ok(Result<int>(3)), 3);
}

}  // namespace
}  // namespace cmpi
