#include "common/status.hpp"

#include <gtest/gtest.h>

#include <iterator>

namespace cmpi {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = status::not_found("object 'x'");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: object 'x'");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(status::not_found("a"), status::not_found("b"));
  EXPECT_FALSE(status::not_found("a") == status::closed("a"));
}

TEST(Status, AllCodesHaveNames) {
  // Exhaustive: walk the enum numerically from kOk until the first value
  // error_code_name does not recognize, and require that every listed code
  // appears in that range. Adding an ErrorCode without a name (or without
  // updating this list) fails here.
  const ErrorCode all[] = {
      ErrorCode::kOk,           ErrorCode::kInvalidArgument,
      ErrorCode::kNotFound,     ErrorCode::kAlreadyExists,
      ErrorCode::kOutOfMemory,  ErrorCode::kCapacityExceeded,
      ErrorCode::kClosed,       ErrorCode::kTruncated,
      ErrorCode::kUnsupported,  ErrorCode::kInternal,
      ErrorCode::kTimedOut,     ErrorCode::kPeerFailed,
      ErrorCode::kDataPoisoned, ErrorCode::kCorruptPool,
      ErrorCode::kAdmissionRejected,
  };
  int named = 0;
  for (int raw = 0;; ++raw) {
    const auto name = error_code_name(static_cast<ErrorCode>(raw));
    if (name == "UNKNOWN") {
      break;
    }
    EXPECT_FALSE(name.empty());
    ++named;
  }
  EXPECT_EQ(named, static_cast<int>(std::size(all)))
      << "error_code_name covers a different number of codes than this "
         "test enumerates";
  for (std::size_t i = 0; i < std::size(all); ++i) {
    EXPECT_EQ(static_cast<int>(all[i]), static_cast<int>(i))
        << "enum values must stay dense for the numeric walk above";
    EXPECT_NE(error_code_name(all[i]), "UNKNOWN");
  }
}

TEST(Status, FailureCodesRoundTripThroughFactories) {
  EXPECT_EQ(status::timed_out("lease").code(), ErrorCode::kTimedOut);
  EXPECT_EQ(status::peer_failed("rank 1").code(), ErrorCode::kPeerFailed);
  EXPECT_EQ(status::data_poisoned("line").code(), ErrorCode::kDataPoisoned);
  EXPECT_EQ(status::timed_out("x").to_string(), "TIMED_OUT: x");
  EXPECT_EQ(status::peer_failed("x").to_string(), "PEER_FAILED: x");
  EXPECT_EQ(status::data_poisoned("x").to_string(), "DATA_POISONED: x");
}

TEST(Result, HoldsValue) {
  Result<int> r(17);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 17);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(status::out_of_memory("arena full"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(Result, ValueOrPassesThrough) {
  Result<int> ok(5);
  EXPECT_EQ(ok.value_or(9), 5);
}

TEST(CheckOk, ReturnsValue) {
  EXPECT_EQ(check_ok(Result<int>(3)), 3);
}

}  // namespace
}  // namespace cmpi
