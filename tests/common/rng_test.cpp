#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cmpi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) {
    hits[rng.next_below(8)]++;
  }
  for (const int h : hits) {
    EXPECT_GT(h, 700);  // each bucket near 1000
    EXPECT_LT(h, 1300);
  }
}

TEST(Rng, NextInInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.next_bool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace cmpi
