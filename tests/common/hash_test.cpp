#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace cmpi {
namespace {

TEST(Hash, Deterministic) {
  EXPECT_EQ(hash_string("rma_window_0"), hash_string("rma_window_0"));
  EXPECT_EQ(hash_string("x", 7), hash_string("x", 7));
}

TEST(Hash, SeedChangesValue) {
  EXPECT_NE(hash_string("object", 1), hash_string("object", 2));
}

TEST(Hash, DistinctKeysRarelyCollide) {
  std::set<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.insert(hash_string("key_" + std::to_string(i)));
  }
  EXPECT_EQ(values.size(), 10000u);
}

TEST(Hash, SeedsActAsIndependentFunctions) {
  // Two keys that collide modulo a small bucket count under one seed
  // should usually not collide under another — the property multi-level
  // hashing needs. Statistical check over many pairs.
  constexpr std::uint64_t kBuckets = 101;
  int both_collide = 0;
  int first_collide = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string b = "b" + std::to_string(i);
    const bool c1 = hash_string(a, 1) % kBuckets == hash_string(b, 1) % kBuckets;
    const bool c2 = hash_string(a, 2) % kBuckets == hash_string(b, 2) % kBuckets;
    first_collide += c1 ? 1 : 0;
    both_collide += (c1 && c2) ? 1 : 0;
  }
  // ~2000/101 ≈ 20 first-level collisions expected; double collisions
  // should be ~20/101 — essentially never above a handful.
  EXPECT_GT(first_collide, 0);
  EXPECT_LT(both_collide, first_collide);
  EXPECT_LE(both_collide, 3);
}

TEST(Hash, U64Avalanche) {
  // Flipping one input bit should change roughly half the output bits.
  const std::uint64_t base = hash_u64(0x1234);
  const std::uint64_t flipped = hash_u64(0x1235);
  const int differing = __builtin_popcountll(base ^ flipped);
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(Hash, EmptyString) {
  // Must be well-defined and seed-dependent.
  EXPECT_NE(hash_string("", 1), hash_string("", 2));
}

}  // namespace
}  // namespace cmpi
