#include "common/units.hpp"

#include <gtest/gtest.h>

namespace cmpi {
namespace {

TEST(Units, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(64_KiB, 65536u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(1_GiB, 1073741824u);
}

TEST(Units, FormatSizeUsesOsuLabels) {
  EXPECT_EQ(format_size(1), "1");
  EXPECT_EQ(format_size(512), "512");
  EXPECT_EQ(format_size(1024), "1K");
  EXPECT_EQ(format_size(65536), "64K");
  EXPECT_EQ(format_size(8_MiB), "8M");
}

TEST(Units, FormatSizeNonRoundFallsBackToBytes) {
  EXPECT_EQ(format_size(1500), "1500");
}

TEST(Units, FormatDurationPicksScale) {
  EXPECT_EQ(format_duration_ns(100), "100.0 ns");
  EXPECT_EQ(format_duration_ns(16000), "16.00 us");
  EXPECT_EQ(format_duration_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(format_duration_ns(1.5e9), "1.500 s");
}

TEST(Units, FormatBandwidthPicksScale) {
  EXPECT_EQ(format_bandwidth(117.8e6), "117.8 MB/s");
  EXPECT_EQ(format_bandwidth(9.9e9), "9.90 GB/s");
  EXPECT_EQ(format_bandwidth(500e3), "500.0 KB/s");
}

}  // namespace
}  // namespace cmpi
