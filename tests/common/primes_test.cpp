#include "common/primes.hpp"

#include <gtest/gtest.h>

namespace cmpi {
namespace {

TEST(Primes, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
}

TEST(Primes, PaperLevelOnePrime) {
  // §3.7: the level-1 slot cap of 200,000 rounds down to prime 199,999.
  EXPECT_EQ(prev_prime(200000), 199999u);
  EXPECT_TRUE(is_prime(199999));
}

TEST(Primes, PaperLevelTenPrime) {
  // §3.7: levels 1-10 range 199,999 down to 199,873.
  std::uint64_t p = 200000;
  for (int level = 0; level < 10; ++level) {
    p = prev_prime(p);
    if (level < 9) {
      --p;
    }
  }
  EXPECT_EQ(p, 199873u);
}

TEST(Primes, PaperTotalSlots) {
  // §3.7: 1,999,260 slots across all 10 levels.
  std::uint64_t total = 0;
  std::uint64_t p = 200000;
  for (int level = 0; level < 10; ++level) {
    p = prev_prime(p);
    total += p;
    --p;
  }
  EXPECT_EQ(total, 1999260u);
}

TEST(Primes, NextPrime) {
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(200000), 200003u);
}

TEST(Primes, PrevNextRoundTrip) {
  for (std::uint64_t n : {10u, 100u, 1000u, 12345u}) {
    const std::uint64_t p = prev_prime(n);
    EXPECT_LE(p, n);
    EXPECT_TRUE(is_prime(p));
    EXPECT_EQ(next_prime(p), p);
  }
}

}  // namespace
}  // namespace cmpi
