// CRC32C: known-answer vectors, chunked-seed chaining, and bit-for-bit
// agreement between the hardware (SSE4.2 / ARMv8 CRC) and slice-by-8
// software paths on random buffers of awkward lengths and alignments.
#include "common/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"

namespace cmpi {
namespace {

std::vector<std::byte> random_bytes(std::size_t size, std::uint64_t seed) {
  std::vector<std::byte> data(size);
  Rng rng(seed);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(256));
  }
  return data;
}

std::span<const std::byte> as_bytes(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(Crc32c, KnownAnswerVectors) {
  // RFC 3720 (iSCSI) appendix test patterns.
  EXPECT_EQ(crc32c({}), 0u);
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const std::vector<std::byte> ones(32, std::byte{0xFF});
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
  EXPECT_EQ(crc32c(as_bytes("123456789")), 0xE3069283u);
}

TEST(Crc32c, SeedChainsAcrossChunks) {
  const std::vector<std::byte> data = random_bytes(4096 + 13, 1);
  const std::uint32_t whole = crc32c(data);
  // Any chunking must give the same result when the seed is threaded
  // through — the rendezvous path checksums segments in sub-chunks whose
  // boundaries differ between sender and receiver.
  for (const std::size_t cut : {std::size_t{1}, std::size_t{7},
                                std::size_t{512}, std::size_t{4096}}) {
    std::uint32_t crc = 0;
    for (std::size_t off = 0; off < data.size(); off += cut) {
      const std::size_t n = std::min(cut, data.size() - off);
      crc = crc32c(std::span(data).subspan(off, n), crc);
    }
    EXPECT_EQ(crc, whole) << "chunk size " << cut;
  }
}

TEST(Crc32c, HardwareAgreesWithSoftware) {
  if (!detail::crc32c_hw_available()) {
    GTEST_SKIP() << "no CRC32C instruction on this host";
  }
  Rng rng(2);
  for (int round = 0; round < 64; ++round) {
    // Lengths straddling the 8-byte stride and a random sub-span start so
    // both head/tail scalar loops and unaligned reads are covered.
    const std::size_t size = rng.next_below(3000) + 1;
    const std::vector<std::byte> data = random_bytes(size, 100 + round);
    const std::size_t skip = rng.next_below(std::min<std::size_t>(size, 9));
    const auto span = std::span(data).subspan(skip);
    const auto seed = static_cast<std::uint32_t>(rng.next_below(1u << 31));
    EXPECT_EQ(detail::crc32c_hw(span, seed), detail::crc32c_sw(span, seed));
  }
}

TEST(Crc32c, FusedCopyMatchesMemcpyPlusCrc) {
  Rng rng(3);
  for (int round = 0; round < 32; ++round) {
    const std::size_t size = rng.next_below(2000) + 1;
    const std::vector<std::byte> src = random_bytes(size, 200 + round);
    std::vector<std::byte> dst(size, std::byte{0xAA});
    const auto seed = static_cast<std::uint32_t>(rng.next_below(1u << 31));
    const std::uint32_t fused = copy_and_crc32c(dst.data(), src, seed);
    EXPECT_EQ(fused, crc32c(src, seed));
    EXPECT_EQ(dst, src);
  }
}

TEST(Crc32c, FusedCopyHardwareAgreesWithSoftware) {
  if (!detail::crc32c_hw_available()) {
    GTEST_SKIP() << "no CRC32C instruction on this host";
  }
  Rng rng(4);
  for (int round = 0; round < 32; ++round) {
    const std::size_t size = rng.next_below(2000) + 1;
    const std::vector<std::byte> src = random_bytes(size, 300 + round);
    std::vector<std::byte> hw_dst(size), sw_dst(size);
    const auto seed = static_cast<std::uint32_t>(rng.next_below(1u << 31));
    const std::uint32_t hw =
        detail::copy_and_crc32c_hw(hw_dst.data(), src.data(), size, seed);
    const std::uint32_t sw =
        detail::copy_and_crc32c_sw(sw_dst.data(), src.data(), size, seed);
    EXPECT_EQ(hw, sw);
    EXPECT_EQ(hw_dst, sw_dst);
    EXPECT_EQ(hw_dst, src);
  }
}

}  // namespace
}  // namespace cmpi
